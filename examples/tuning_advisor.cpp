// tuning_advisor: the paper's Section-5 vision end to end.
//
// 1. Describe a workload to the RumWizard and get a ranked recommendation.
// 2. Run the workload on the recommended method and measure its RUM point.
// 3. Hand the measurement to the OnlineTuner with a target and apply the
//    knob changes it proposes; watch the measured point move.
//
// Usage: tuning_advisor [insert_frac] [scan_frac]
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "adaptive/tuner.h"
#include "adaptive/wizard.h"
#include "methods/factory.h"
#include "workload/runner.h"

int main(int argc, char** argv) {
  using namespace rum;
  double insert_frac = argc > 1 ? std::atof(argv[1]) : 0.4;
  double scan_frac = argc > 2 ? std::atof(argv[2]) : 0.05;

  const size_t kN = 50000;
  WorkloadSpec spec;
  spec.operations = 20000;
  spec.key_range = kN;
  spec.insert_fraction = insert_frac;
  spec.scan_fraction = scan_frac;

  Options options;
  options.block_size = 4096;

  // --- Step 1: ask the wizard.
  RumWizard wizard(options);
  std::printf("workload: %s\n\n", spec.ToString().c_str());
  std::printf("wizard ranking (top 5):\n");
  std::vector<Recommendation> ranked = wizard.Rank(spec, kN);
  for (size_t i = 0; i < ranked.size() && i < 5; ++i) {
    std::printf("  %zu. %-14s cost=%7.3f  (%s)\n", i + 1,
                ranked[i].method.c_str(), ranked[i].predicted_cost,
                ranked[i].rationale.c_str());
  }
  // Pick the best method the online tuner has knobs for (step 3 needs a
  // tunable structure).
  auto tunable = [](const std::string& m) {
    return m == "lsm-leveled" || m == "lsm-tiered" || m == "btree" ||
           m == "zonemap" || m == "bitmap" || m == "bitmap-delta";
  };
  std::string choice;
  for (const Recommendation& rec : ranked) {
    if (tunable(rec.method)) {
      choice = rec.method;
      break;
    }
  }
  std::printf("\nbest tunable method: %s\n", choice.c_str());

  // --- Step 2: measure the recommendation.
  auto measure = [&](const Options& opts) {
    std::unique_ptr<AccessMethod> method = MakeAccessMethod(choice, opts);
    Result<RumProfile> profile =
        WorkloadRunner::LoadAndRun(method.get(), kN, spec);
    return profile;
  };
  Result<RumProfile> first = measure(options);
  if (!first.ok()) {
    std::fprintf(stderr, "measurement failed: %s\n",
                 first.status().ToString().c_str());
    return 1;
  }
  std::printf("\nmeasured on %s: %s\n", choice.c_str(),
              first.value().point.ToString().c_str());

  // --- Step 3: iterate with the online tuner toward a read-leaning target.
  RumPoint target = first.value().point;
  target.read_overhead = std::max(1.0, target.read_overhead * 0.5);
  std::printf("target: halve the read overhead (RO <= %.2f)\n",
              target.read_overhead);

  OnlineTuner tuner(/*tolerance=*/0.15);
  Options tuned = options;
  RumPoint measured = first.value().point;
  for (int round = 1; round <= 4; ++round) {
    TuningAction action = tuner.Observe(choice, tuned, measured, target);
    std::printf("round %d: %s\n", round, action.reason.c_str());
    if (!action.changed) break;
    tuned = action.options;
    Result<RumProfile> next = measure(tuned);
    if (!next.ok()) break;
    measured = next.value().point;
    std::printf("         re-measured: %s\n", measured.ToString().c_str());
  }
  std::printf(
      "\nNote how the tuner trades the other overheads away to chase the\n"
      "read target -- it can slide along the RUM surface but never off it.\n");
  return 0;
}

// Quickstart: create an access method, load data, run operations, and read
// its RUM profile -- the 60-second tour of the rumlab API.
#include <cstdio>

#include "core/access_method.h"
#include "methods/factory.h"
#include "workload/distribution.h"

int main() {
  using namespace rum;

  // 1. Configure. Options holds every tuning knob; defaults are sane.
  Options options;
  options.block_size = 4096;

  // 2. Create any access method by name ("btree", "lsm-leveled", "hash",
  //    "zonemap", "cracking", ... -- see AllAccessMethodNames()).
  std::unique_ptr<AccessMethod> index = MakeAccessMethod("btree", options);

  // 3. Bulk-load sorted data, then read and write through the uniform API.
  std::vector<Entry> entries = MakeSortedEntries(/*n=*/100000);
  Status s = index->BulkLoad(entries);
  if (!s.ok()) {
    std::fprintf(stderr, "bulk load failed: %s\n", s.ToString().c_str());
    return 1;
  }

  (void)index->Insert(1000001, 42);          // Upsert.
  (void)index->Delete(77);                   // Idempotent delete.
  Result<Value> hit = index->Get(12345);     // Point query.
  std::printf("Get(12345) -> %s\n",
              hit.ok() ? std::to_string(hit.value()).c_str() : "not found");

  std::vector<Entry> range;
  (void)index->Scan(500, 550, &range);       // Inclusive range query.
  std::printf("Scan(500, 550) -> %zu entries\n", range.size());

  // 4. Every byte the structure touched was accounted. The three numbers
  //    below are the paper's RUM overheads.
  CounterSnapshot stats = index->stats();
  std::printf("\nRUM profile of %s after this session:\n",
              std::string(index->name()).c_str());
  std::printf("  read amplification  (RO): %.2f\n",
              stats.read_amplification());
  std::printf("  write amplification (UO): %.2f\n",
              stats.write_amplification());
  std::printf("  space amplification (MO): %.4f\n",
              stats.space_amplification());
  std::printf("  position in the RUM triangle: %s\n",
              index->rum_point().ToString().c_str());

  // 5. The RUM Conjecture in one sentence: pick a different method and at
  //    least one of those three numbers must get worse.
  return 0;
}

// kv_shell: an interactive (or scripted) shell over any rumlab access
// method, with live RUM accounting -- the downstream-user view of the
// library.
//
// Usage: kv_shell [method]            (default: btree)
// Commands on stdin, one per line:
//   put <key> <value>      upsert
//   get <key>              point query
//   del <key>              delete
//   scan <lo> <hi>         inclusive range query
//   load <n>               bulk-load n dense entries (empty store only)
//   stats                  cumulative RUM profile
//   reset                  reset traffic counters
//   methods                list available methods
//   help                   this text
//   quit
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "methods/factory.h"
#include "workload/distribution.h"

namespace {

void PrintStats(const rum::AccessMethod& method) {
  rum::CounterSnapshot s = method.stats();
  std::printf("method: %s, entries: %zu\n",
              std::string(method.name()).c_str(), method.size());
  std::printf("%s\n", s.ToString().c_str());
  std::printf("RUM point: %s\n", method.rum_point().ToString().c_str());
}

void PrintHelp() {
  std::printf(
      "commands: put <k> <v> | get <k> | del <k> | scan <lo> <hi> |\n"
      "          load <n> | stats | reset | methods | help | quit\n");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rum;
  const char* name = argc > 1 ? argv[1] : "btree";
  Options options;
  std::unique_ptr<AccessMethod> method = MakeAccessMethod(name, options);
  if (method == nullptr) {
    std::fprintf(stderr, "unknown method '%s'; try one of:\n", name);
    for (std::string_view m : AllAccessMethodNames()) {
      std::fprintf(stderr, "  %s\n", std::string(m).c_str());
    }
    return 1;
  }
  std::printf("rumlab kv_shell on '%s' -- type 'help' for commands\n", name);

  char line[256];
  while (std::fgets(line, sizeof(line), stdin) != nullptr) {
    char cmd[32] = {0};
    uint64_t a = 0, b = 0;
    int n = std::sscanf(line, "%31s %" SCNu64 " %" SCNu64, cmd, &a, &b);
    if (n < 1) continue;
    if (std::strcmp(cmd, "quit") == 0 || std::strcmp(cmd, "exit") == 0) {
      break;
    } else if (std::strcmp(cmd, "help") == 0) {
      PrintHelp();
    } else if (std::strcmp(cmd, "methods") == 0) {
      for (std::string_view m : AllAccessMethodNames()) {
        std::printf("  %s\n", std::string(m).c_str());
      }
    } else if (std::strcmp(cmd, "put") == 0 && n == 3) {
      Status s = method->Insert(a, b);
      std::printf(s.ok() ? "ok\n" : "error: %s\n", s.ToString().c_str());
    } else if (std::strcmp(cmd, "get") == 0 && n >= 2) {
      Result<Value> r = method->Get(a);
      if (r.ok()) {
        std::printf("%" PRIu64 "\n", r.value());
      } else {
        std::printf("(%s)\n", r.status().ToString().c_str());
      }
    } else if (std::strcmp(cmd, "del") == 0 && n >= 2) {
      Status s = method->Delete(a);
      std::printf(s.ok() ? "ok\n" : "error: %s\n", s.ToString().c_str());
    } else if (std::strcmp(cmd, "scan") == 0 && n == 3) {
      std::vector<Entry> out;
      Status s = method->Scan(a, b, &out);
      if (!s.ok()) {
        std::printf("error: %s\n", s.ToString().c_str());
        continue;
      }
      for (const Entry& e : out) {
        std::printf("  %" PRIu64 " -> %" PRIu64 "\n", e.key, e.value);
      }
      std::printf("(%zu entries)\n", out.size());
    } else if (std::strcmp(cmd, "load") == 0 && n >= 2) {
      std::vector<Entry> entries = MakeSortedEntries(a);
      Status s = method->BulkLoad(entries);
      if (s.ok()) {
        std::printf("loaded %" PRIu64 "\n", a);
      } else {
        std::printf("error: %s\n", s.ToString().c_str());
      }
    } else if (std::strcmp(cmd, "stats") == 0) {
      PrintStats(*method);
    } else if (std::strcmp(cmd, "reset") == 0) {
      method->ResetStats();
      std::printf("ok\n");
    } else {
      std::printf("? (help for commands)\n");
    }
  }
  return 0;
}

// rum_explorer: run a configurable workload against every access method
// and print the resulting RUM profiles side by side -- an interactive
// version of the paper's Figure 1.
//
// Usage: rum_explorer [mix] [n] [ops]
//   mix  one of: read-only, write-only, read-mostly, mixed, scan-heavy
//        (default: mixed)
//   n    entries to bulk-load (default 20000)
//   ops  operations to run (default 10000)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>

#include "methods/factory.h"
#include "workload/runner.h"

namespace {

rum::WorkloadSpec SpecFor(const char* mix, uint64_t ops, rum::Key range) {
  using rum::WorkloadSpec;
  if (std::strcmp(mix, "read-only") == 0) {
    return WorkloadSpec::ReadOnly(ops, range);
  }
  if (std::strcmp(mix, "write-only") == 0) {
    return WorkloadSpec::WriteOnly(ops, range);
  }
  if (std::strcmp(mix, "read-mostly") == 0) {
    return WorkloadSpec::ReadMostly(ops, range);
  }
  if (std::strcmp(mix, "scan-heavy") == 0) {
    return WorkloadSpec::ScanHeavy(ops, range);
  }
  return WorkloadSpec::Mixed(ops, range);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rum;
  const char* mix = argc > 1 ? argv[1] : "mixed";
  size_t n = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 20000;
  uint64_t ops = argc > 3 ? static_cast<uint64_t>(std::atoll(argv[3]))
                          : 10000;

  Options options;
  options.block_size = 4096;
  options.bitmap.key_domain = n;
  options.extremes.magic_array_domain = 4 * n;

  WorkloadSpec spec = SpecFor(mix, ops, n);
  std::printf("workload: %s\n", spec.ToString().c_str());
  std::printf("%-16s %8s %8s %8s   %10s %10s %7s  %9s %9s\n", "method",
              "RO", "UO", "MO", "read/op", "write/op", "wall",
              "rd p50/p99", "");

  for (std::string_view name : AllAccessMethodNames()) {
    // The pure-scan structures take a reduced load to stay interactive.
    size_t load = n;
    WorkloadSpec run_spec = spec;
    if (name == "pure-log" || name == "dense-array" ||
        name == "unsorted-column") {
      load = std::min<size_t>(n, 4000);
      run_spec.operations = std::min<uint64_t>(ops, 3000);
      run_spec.key_range = load;
    }
    std::unique_ptr<AccessMethod> method = MakeAccessMethod(name, options);
    Result<RumProfile> profile =
        WorkloadRunner::LoadAndRun(method.get(), load, run_spec);
    if (!profile.ok()) {
      std::printf("%-16s failed: %s\n", std::string(name).c_str(),
                  profile.status().ToString().c_str());
      continue;
    }
    const RumProfile& p = profile.value();
    std::printf(
        "%-16s %8.1f %8.2f %8.3f   %9.0fB %9.0fB %6.3fs  %6lluB/%-7lluB "
        "%s\n",
        p.method.c_str(), p.point.read_overhead, p.point.update_overhead,
        p.point.memory_overhead, p.bytes_read_per_op(),
        p.bytes_written_per_op(), p.wall_seconds,
        static_cast<unsigned long long>(p.read_cost.p50),
        static_cast<unsigned long long>(p.read_cost.p99),
        std::string(RumRegionName(p.point.Classify())).c_str());
  }
  std::printf(
      "\nReading the table: RO/UO/MO are the paper's read, update, and\n"
      "memory overheads (1.0 = theoretical optimum). No row wins all\n"
      "three -- that is the RUM Conjecture.\n");
  return 0;
}

// rum_explorer: run a configurable workload against every access method
// and print the resulting RUM profiles side by side -- an interactive
// version of the paper's Figure 1.
//
// Usage: rum_explorer [mix] [n] [ops]
//   mix  one of: read-only, write-only, read-mostly, mixed, scan-heavy
//        (default: mixed)
//   n    entries to bulk-load (default 20000)
//   ops  operations to run (default 10000)
//
// Or:    rum_explorer trace [method] [n] [ops]
//   Runs one method (default "btree") on a BlockDevice -> FaultyDevice ->
//   CachingDevice chaos stack with tracing and the metrics registry on,
//   then prints the drained event stream's tail, per-kind event counts
//   cross-checked against the device counters, per-op-class latency
//   percentiles, and the metrics registry JSON.
//
// Or:    rum_explorer serve [method] [n] [ops] [offered_ops_per_sec]
//                           [poisson|bursty]
//   Replays an open-loop arrival process through the request scheduler
//   (src/service/): requests arrive on the virtual clock at the offered
//   rate regardless of completions, the admission controller sheds what
//   the method cannot absorb, and the run ends with the service report
//   JSON -- ledger, sheds, deadline misses, queue-delay and end-to-end
//   latency summaries, goodput, and the RUM delta.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>

#include "core/trace.h"
#include "methods/factory.h"
#include "service/open_loop.h"
#include "storage/block_device.h"
#include "storage/caching_device.h"
#include "storage/faulty_device.h"
#include "workload/runner.h"

namespace {

rum::WorkloadSpec SpecFor(const char* mix, uint64_t ops, rum::Key range) {
  using rum::WorkloadSpec;
  if (std::strcmp(mix, "read-only") == 0) {
    return WorkloadSpec::ReadOnly(ops, range);
  }
  if (std::strcmp(mix, "write-only") == 0) {
    return WorkloadSpec::WriteOnly(ops, range);
  }
  if (std::strcmp(mix, "read-mostly") == 0) {
    return WorkloadSpec::ReadMostly(ops, range);
  }
  if (std::strcmp(mix, "scan-heavy") == 0) {
    return WorkloadSpec::ScanHeavy(ops, range);
  }
  return WorkloadSpec::Mixed(ops, range);
}

void PrintHistogramRow(const char* label, const rum::LatencyHistogram& h) {
  if (h.count() == 0) return;
  std::printf("  %-8s %8llu ops   p50=%8lluns p95=%8lluns p99=%8lluns "
              "max=%8lluns\n",
              label, static_cast<unsigned long long>(h.count()),
              static_cast<unsigned long long>(h.Percentile(0.50)),
              static_cast<unsigned long long>(h.Percentile(0.95)),
              static_cast<unsigned long long>(h.Percentile(0.99)),
              static_cast<unsigned long long>(h.max()));
}

int RunTrace(int argc, char** argv) {
  using namespace rum;
  const char* name = argc > 2 ? argv[2] : "btree";
  size_t n = argc > 3 ? static_cast<size_t>(std::atoll(argv[3])) : 20000;
  uint64_t ops =
      argc > 4 ? static_cast<uint64_t>(std::atoll(argv[4])) : 10000;

  Options options;
  options.block_size = 4096;
  options.bitmap.key_domain = n;
  options.extremes.magic_array_domain = 4 * n;
  options.observability.trace = true;
  options.observability.metrics = true;
  // Observability switches must be thrown before the stack is built so the
  // devices' MetricsGroups register their gauges.
  ApplyObservability(options);

  RumCounters device_counters;
  BlockDevice base(options.block_size, &device_counters);
  FaultyDevice faulty(&base);
  CachingDevice cache(&faulty, /*capacity_pages=*/64);

  std::unique_ptr<AccessMethod> method =
      MakeAccessMethod(name, options, &cache);
  if (method == nullptr) {
    std::fprintf(stderr, "unknown method: %s\n", name);
    return 1;
  }

  WorkloadSpec spec = WorkloadSpec::Mixed(ops, n);
  spec.error_mode = ErrorMode::kSkipAndCount;

  // Load clean, then arm a modest all-class chaos plan for the phase.
  std::vector<Entry> entries = MakeSortedEntries(n);
  Status s = method->BulkLoad(entries);
  if (s.ok()) s = method->Flush();
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  method->ResetStats();
  faulty.SetPlan(FaultPlan::Transient(/*seed=*/0xC4A05ULL, /*rate=*/0.01));

  Result<RumProfile> profile = WorkloadRunner::Run(method.get(), spec);
  if (!profile.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 profile.status().ToString().c_str());
    return 1;
  }
  const RumProfile& p = profile.value();

  std::vector<TraceEvent> events = Trace::Drain();
  std::map<TraceKind, uint64_t> by_kind;
  for (const TraceEvent& e : events) ++by_kind[e.kind];

  std::printf("method: %s  ops: %llu  errors: %s\n", p.method.c_str(),
              static_cast<unsigned long long>(ops),
              p.errors().ToString().c_str());
  std::printf("\nevent counts (vs device counters):\n");
  for (const auto& [kind, count] : by_kind) {
    std::printf("  %-22s %8llu\n", std::string(TraceKindName(kind)).c_str(),
                static_cast<unsigned long long>(count));
  }
  std::printf("  dropped (ring wrap)    %8llu\n",
              static_cast<unsigned long long>(Trace::dropped_events()));
  std::printf("  cache: hits=%llu misses=%llu evictions=%llu "
              "write_backs=%llu wb_failures=%llu\n",
              static_cast<unsigned long long>(cache.hits()),
              static_cast<unsigned long long>(cache.misses()),
              static_cast<unsigned long long>(cache.evictions()),
              static_cast<unsigned long long>(cache.write_backs()),
              static_cast<unsigned long long>(cache.write_back_failures()));
  std::printf("  faulty: injected=%llu torn=%llu\n",
              static_cast<unsigned long long>(faulty.faults_injected()),
              static_cast<unsigned long long>(faulty.torn_writes()));

  std::printf("\nlast events:\n");
  size_t tail = events.size() > 20 ? events.size() - 20 : 0;
  for (size_t i = tail; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    std::printf("  #%-8llu %-22s op=%-8s page=%-8u detail=%llu\n",
                static_cast<unsigned long long>(e.seq),
                std::string(TraceKindName(e.kind)).c_str(),
                std::string(TraceOpName(e.op)).c_str(),
                static_cast<unsigned>(e.page),
                static_cast<unsigned long long>(e.detail));
  }

  std::printf("\nper-op-class latency:\n");
  PrintHistogramRow("get", p.latency.point);
  PrintHistogramRow("scan", p.latency.scan);
  PrintHistogramRow("insert", p.latency.insert);
  PrintHistogramRow("update", p.latency.update);
  PrintHistogramRow("delete", p.latency.erase);

  std::printf("\nmetrics registry:\n%s\n",
              MetricsRegistry::Global().ToJson().c_str());
  return 0;
}

int RunServe(int argc, char** argv) {
  using namespace rum;
  const char* name = argc > 2 ? argv[2] : "btree";
  size_t n = argc > 3 ? static_cast<size_t>(std::atoll(argv[3])) : 20000;
  uint64_t ops =
      argc > 4 ? static_cast<uint64_t>(std::atoll(argv[4])) : 20000;
  double offered = argc > 5 ? std::atof(argv[5]) : 200000.0;
  bool bursty = argc > 6 && std::strcmp(argv[6], "bursty") == 0;

  Options options;
  options.block_size = 4096;
  options.bitmap.key_domain = n;
  options.extremes.magic_array_domain = 4 * n;

  // The method is built bare; RunOpenLoop owns the scheduler under test.
  std::unique_ptr<AccessMethod> method = MakeAccessMethod(name, options);
  if (method == nullptr) {
    std::fprintf(stderr, "unknown method: %s\n", name);
    return 1;
  }
  std::vector<Entry> entries = MakeSortedEntries(n);
  Status s = method->BulkLoad(entries);
  if (s.ok()) s = method->Flush();
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  method->ResetStats();

  Options serve_options = options;
  serve_options.service.enabled = true;
  serve_options.service.slo_us = 20000;

  WorkloadSpec spec = WorkloadSpec::Mixed(ops, n);
  spec.error_mode = ErrorMode::kSkipAndCount;
  spec.arrival = bursty ? ArrivalProcess::kBursty : ArrivalProcess::kPoisson;
  spec.offered_ops_per_sec = offered;

  Result<ServiceReport> report = RunOpenLoop(method.get(), spec, serve_options);
  if (!report.ok()) {
    std::fprintf(stderr, "serve failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("workload: %s\n", spec.ToString().c_str());
  std::printf("method: %s  offered: %.0f ops/s (%s)  slo: %lluus\n", name,
              offered, bursty ? "bursty" : "poisson",
              static_cast<unsigned long long>(serve_options.service.slo_us));
  std::printf("%s\n", report.value().ToJson().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rum;
  if (argc > 1 && std::strcmp(argv[1], "trace") == 0) {
    return RunTrace(argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
    return RunServe(argc, argv);
  }
  const char* mix = argc > 1 ? argv[1] : "mixed";
  size_t n = argc > 2 ? static_cast<size_t>(std::atoll(argv[2])) : 20000;
  uint64_t ops = argc > 3 ? static_cast<uint64_t>(std::atoll(argv[3]))
                          : 10000;

  Options options;
  options.block_size = 4096;
  options.bitmap.key_domain = n;
  options.extremes.magic_array_domain = 4 * n;

  WorkloadSpec spec = SpecFor(mix, ops, n);
  std::printf("workload: %s\n", spec.ToString().c_str());
  std::printf("%-16s %8s %8s %8s   %10s %10s %7s  %9s %9s\n", "method",
              "RO", "UO", "MO", "read/op", "write/op", "wall",
              "rd p50/p99", "");

  for (std::string_view name : AllAccessMethodNames()) {
    // The pure-scan structures take a reduced load to stay interactive.
    size_t load = n;
    WorkloadSpec run_spec = spec;
    if (name == "pure-log" || name == "dense-array" ||
        name == "unsorted-column") {
      load = std::min<size_t>(n, 4000);
      run_spec.operations = std::min<uint64_t>(ops, 3000);
      run_spec.key_range = load;
    }
    std::unique_ptr<AccessMethod> method = MakeAccessMethod(name, options);
    Result<RumProfile> profile =
        WorkloadRunner::LoadAndRun(method.get(), load, run_spec);
    if (!profile.ok()) {
      std::printf("%-16s failed: %s\n", std::string(name).c_str(),
                  profile.status().ToString().c_str());
      continue;
    }
    const RumProfile& p = profile.value();
    std::printf(
        "%-16s %8.1f %8.2f %8.3f   %9.0fB %9.0fB %6.3fs  %6lluB/%-7lluB "
        "%s\n",
        p.method.c_str(), p.point.read_overhead, p.point.update_overhead,
        p.point.memory_overhead, p.bytes_read_per_op(),
        p.bytes_written_per_op(), p.wall_seconds,
        static_cast<unsigned long long>(p.read_cost.p50),
        static_cast<unsigned long long>(p.read_cost.p99),
        std::string(RumRegionName(p.point.Classify())).c_str());
  }
  std::printf(
      "\nReading the table: RO/UO/MO are the paper's read, update, and\n"
      "memory overheads (1.0 = theoretical optimum). No row wins all\n"
      "three -- that is the RUM Conjecture.\n");
  return 0;
}

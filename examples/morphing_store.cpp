// morphing_store: a day in the life of a Figure-3 access method.
//
// One MorphingAccessMethod serves three consecutive workload phases --
// ingest-heavy, then read-heavy, then space-constrained -- re-targeting
// its RUM priorities at each phase boundary and migrating its data to the
// shape that fits.
#include <cstdio>
#include <memory>

#include "adaptive/morphing.h"
#include "workload/runner.h"

namespace {

void Report(const char* phase, const rum::MorphingAccessMethod& store,
            const rum::Result<rum::RumProfile>& profile) {
  if (!profile.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", phase,
                 profile.status().ToString().c_str());
    return;
  }
  std::printf("%-18s shape=%-12s %s\n", phase,
              std::string(MorphShapeName(store.shape())).c_str(),
              profile.value().point.ToString().c_str());
}

}  // namespace

int main() {
  using namespace rum;
  Options options;
  options.block_size = 4096;
  // Start life as a write-optimized store: the ingest phase comes first.
  options.morphing.read_priority = 1;
  options.morphing.write_priority = 8;
  options.morphing.space_priority = 1;
  MorphingAccessMethod store(options);

  const Key kRange = 1u << 16;

  // --- Phase 1: bulk ingest (append-heavy).
  WorkloadSpec ingest = WorkloadSpec::WriteOnly(40000, kRange);
  Result<RumProfile> p1 = WorkloadRunner::Run(&store, ingest);
  Report("phase 1 ingest", store, p1);

  // --- Phase 2: the analysts arrive; re-target for reads and migrate.
  (void)store.SetPriorities(8, 1, 1);
  std::printf("  -> morphed (%zu migrations so far)\n", store.morph_count());
  store.ResetStats();
  WorkloadSpec serve = WorkloadSpec::ReadMostly(20000, kRange);
  serve.scan_fraction = 0.10;
  Result<RumProfile> p2 = WorkloadRunner::Run(&store, serve);
  Report("phase 2 serving", store, p2);

  // --- Phase 3: storage pressure; shed auxiliary structure.
  (void)store.SetPriorities(1, 1, 8);
  std::printf("  -> morphed (%zu migrations so far)\n", store.morph_count());
  store.ResetStats();
  Result<RumProfile> p3 = WorkloadRunner::Run(&store, serve);
  Report("phase 3 squeezed", store, p3);

  std::printf(
      "\nOne store, three shapes: the write phase ran on sorted runs, the\n"
      "read phase on a B+-Tree, the squeezed phase on a zone-mapped dense\n"
      "column -- the paper's morphing access method, with every migration\n"
      "byte accounted.\n");
  return 0;
}

file(REMOVE_RECURSE
  "CMakeFiles/morphing_store.dir/morphing_store.cpp.o"
  "CMakeFiles/morphing_store.dir/morphing_store.cpp.o.d"
  "morphing_store"
  "morphing_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/morphing_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

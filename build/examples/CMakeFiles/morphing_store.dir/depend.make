# Empty dependencies file for morphing_store.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rum_explorer.dir/rum_explorer.cpp.o"
  "CMakeFiles/rum_explorer.dir/rum_explorer.cpp.o.d"
  "rum_explorer"
  "rum_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rum_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rum_explorer.
# This may be replaced when dependencies are built.

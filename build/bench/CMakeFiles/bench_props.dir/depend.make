# Empty dependencies file for bench_props.
# This may be replaced when dependencies are built.

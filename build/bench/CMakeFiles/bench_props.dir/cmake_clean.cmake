file(REMOVE_RECURSE
  "CMakeFiles/bench_props.dir/bench_props.cc.o"
  "CMakeFiles/bench_props.dir/bench_props.cc.o.d"
  "bench_props"
  "bench_props.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_cracking.
# This may be replaced when dependencies are built.

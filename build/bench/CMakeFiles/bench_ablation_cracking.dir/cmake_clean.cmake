file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_cracking.dir/bench_ablation_cracking.cc.o"
  "CMakeFiles/bench_ablation_cracking.dir/bench_ablation_cracking.cc.o.d"
  "bench_ablation_cracking"
  "bench_ablation_cracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_cracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_ablation_hotcold.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_tunable.dir/bench_fig3_tunable.cc.o"
  "CMakeFiles/bench_fig3_tunable.dir/bench_fig3_tunable.cc.o.d"
  "bench_fig3_tunable"
  "bench_fig3_tunable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_tunable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

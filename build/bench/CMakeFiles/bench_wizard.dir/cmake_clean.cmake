file(REMOVE_RECURSE
  "CMakeFiles/bench_wizard.dir/bench_wizard.cc.o"
  "CMakeFiles/bench_wizard.dir/bench_wizard.cc.o.d"
  "bench_wizard"
  "bench_wizard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wizard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_wizard.
# This may be replaced when dependencies are built.

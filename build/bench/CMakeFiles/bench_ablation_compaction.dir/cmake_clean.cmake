file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_compaction.dir/bench_ablation_compaction.cc.o"
  "CMakeFiles/bench_ablation_compaction.dir/bench_ablation_compaction.cc.o.d"
  "bench_ablation_compaction"
  "bench_ablation_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

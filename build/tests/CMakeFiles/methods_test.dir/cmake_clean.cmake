file(REMOVE_RECURSE
  "CMakeFiles/methods_test.dir/methods_test.cc.o"
  "CMakeFiles/methods_test.dir/methods_test.cc.o.d"
  "methods_test"
  "methods_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/methods_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

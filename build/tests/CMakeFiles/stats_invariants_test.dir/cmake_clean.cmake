file(REMOVE_RECURSE
  "CMakeFiles/stats_invariants_test.dir/stats_invariants_test.cc.o"
  "CMakeFiles/stats_invariants_test.dir/stats_invariants_test.cc.o.d"
  "stats_invariants_test"
  "stats_invariants_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stats_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

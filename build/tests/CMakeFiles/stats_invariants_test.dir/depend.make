# Empty dependencies file for stats_invariants_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rum_conjecture_test.dir/rum_conjecture_test.cc.o"
  "CMakeFiles/rum_conjecture_test.dir/rum_conjecture_test.cc.o.d"
  "rum_conjecture_test"
  "rum_conjecture_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rum_conjecture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

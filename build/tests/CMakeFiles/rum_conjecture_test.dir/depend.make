# Empty dependencies file for rum_conjecture_test.
# This may be replaced when dependencies are built.

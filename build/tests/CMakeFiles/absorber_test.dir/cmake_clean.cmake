file(REMOVE_RECURSE
  "CMakeFiles/absorber_test.dir/absorber_test.cc.o"
  "CMakeFiles/absorber_test.dir/absorber_test.cc.o.d"
  "absorber_test"
  "absorber_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/absorber_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

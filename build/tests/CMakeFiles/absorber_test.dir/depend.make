# Empty dependencies file for absorber_test.
# This may be replaced when dependencies are built.

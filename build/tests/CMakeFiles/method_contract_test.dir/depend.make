# Empty dependencies file for method_contract_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/method_contract_test.dir/method_contract_test.cc.o"
  "CMakeFiles/method_contract_test.dir/method_contract_test.cc.o.d"
  "method_contract_test"
  "method_contract_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/method_contract_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

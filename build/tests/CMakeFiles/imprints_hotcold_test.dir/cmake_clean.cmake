file(REMOVE_RECURSE
  "CMakeFiles/imprints_hotcold_test.dir/imprints_hotcold_test.cc.o"
  "CMakeFiles/imprints_hotcold_test.dir/imprints_hotcold_test.cc.o.d"
  "imprints_hotcold_test"
  "imprints_hotcold_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imprints_hotcold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

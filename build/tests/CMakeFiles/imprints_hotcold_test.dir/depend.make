# Empty dependencies file for imprints_hotcold_test.
# This may be replaced when dependencies are built.

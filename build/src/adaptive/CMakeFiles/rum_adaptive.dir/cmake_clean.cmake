file(REMOVE_RECURSE
  "CMakeFiles/rum_adaptive.dir/morphing.cc.o"
  "CMakeFiles/rum_adaptive.dir/morphing.cc.o.d"
  "CMakeFiles/rum_adaptive.dir/tuner.cc.o"
  "CMakeFiles/rum_adaptive.dir/tuner.cc.o.d"
  "CMakeFiles/rum_adaptive.dir/wizard.cc.o"
  "CMakeFiles/rum_adaptive.dir/wizard.cc.o.d"
  "librum_adaptive.a"
  "librum_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rum_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "librum_adaptive.a"
)

# Empty dependencies file for rum_adaptive.
# This may be replaced when dependencies are built.

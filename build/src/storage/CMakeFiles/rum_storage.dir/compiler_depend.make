# Empty compiler generated dependencies file for rum_storage.
# This may be replaced when dependencies are built.

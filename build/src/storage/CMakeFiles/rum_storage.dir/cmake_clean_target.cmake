file(REMOVE_RECURSE
  "librum_storage.a"
)

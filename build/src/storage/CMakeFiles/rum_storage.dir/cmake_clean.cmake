file(REMOVE_RECURSE
  "CMakeFiles/rum_storage.dir/append_log.cc.o"
  "CMakeFiles/rum_storage.dir/append_log.cc.o.d"
  "CMakeFiles/rum_storage.dir/block_device.cc.o"
  "CMakeFiles/rum_storage.dir/block_device.cc.o.d"
  "CMakeFiles/rum_storage.dir/caching_device.cc.o"
  "CMakeFiles/rum_storage.dir/caching_device.cc.o.d"
  "CMakeFiles/rum_storage.dir/heap_file.cc.o"
  "CMakeFiles/rum_storage.dir/heap_file.cc.o.d"
  "CMakeFiles/rum_storage.dir/page_format.cc.o"
  "CMakeFiles/rum_storage.dir/page_format.cc.o.d"
  "librum_storage.a"
  "librum_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rum_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

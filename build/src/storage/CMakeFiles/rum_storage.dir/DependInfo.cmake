
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/storage/append_log.cc" "src/storage/CMakeFiles/rum_storage.dir/append_log.cc.o" "gcc" "src/storage/CMakeFiles/rum_storage.dir/append_log.cc.o.d"
  "/root/repo/src/storage/block_device.cc" "src/storage/CMakeFiles/rum_storage.dir/block_device.cc.o" "gcc" "src/storage/CMakeFiles/rum_storage.dir/block_device.cc.o.d"
  "/root/repo/src/storage/caching_device.cc" "src/storage/CMakeFiles/rum_storage.dir/caching_device.cc.o" "gcc" "src/storage/CMakeFiles/rum_storage.dir/caching_device.cc.o.d"
  "/root/repo/src/storage/heap_file.cc" "src/storage/CMakeFiles/rum_storage.dir/heap_file.cc.o" "gcc" "src/storage/CMakeFiles/rum_storage.dir/heap_file.cc.o.d"
  "/root/repo/src/storage/page_format.cc" "src/storage/CMakeFiles/rum_storage.dir/page_format.cc.o" "gcc" "src/storage/CMakeFiles/rum_storage.dir/page_format.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rum_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "librum_core.a"
)

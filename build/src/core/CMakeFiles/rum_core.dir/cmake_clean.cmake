file(REMOVE_RECURSE
  "CMakeFiles/rum_core.dir/access_method.cc.o"
  "CMakeFiles/rum_core.dir/access_method.cc.o.d"
  "CMakeFiles/rum_core.dir/counters.cc.o"
  "CMakeFiles/rum_core.dir/counters.cc.o.d"
  "CMakeFiles/rum_core.dir/options.cc.o"
  "CMakeFiles/rum_core.dir/options.cc.o.d"
  "CMakeFiles/rum_core.dir/rum_point.cc.o"
  "CMakeFiles/rum_core.dir/rum_point.cc.o.d"
  "CMakeFiles/rum_core.dir/status.cc.o"
  "CMakeFiles/rum_core.dir/status.cc.o.d"
  "librum_core.a"
  "librum_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rum_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

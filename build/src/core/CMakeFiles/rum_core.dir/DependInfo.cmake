
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/access_method.cc" "src/core/CMakeFiles/rum_core.dir/access_method.cc.o" "gcc" "src/core/CMakeFiles/rum_core.dir/access_method.cc.o.d"
  "/root/repo/src/core/counters.cc" "src/core/CMakeFiles/rum_core.dir/counters.cc.o" "gcc" "src/core/CMakeFiles/rum_core.dir/counters.cc.o.d"
  "/root/repo/src/core/options.cc" "src/core/CMakeFiles/rum_core.dir/options.cc.o" "gcc" "src/core/CMakeFiles/rum_core.dir/options.cc.o.d"
  "/root/repo/src/core/rum_point.cc" "src/core/CMakeFiles/rum_core.dir/rum_point.cc.o" "gcc" "src/core/CMakeFiles/rum_core.dir/rum_point.cc.o.d"
  "/root/repo/src/core/status.cc" "src/core/CMakeFiles/rum_core.dir/status.cc.o" "gcc" "src/core/CMakeFiles/rum_core.dir/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

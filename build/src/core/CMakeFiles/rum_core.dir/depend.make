# Empty dependencies file for rum_core.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for rum_workload.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "librum_workload.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/rum_workload.dir/distribution.cc.o"
  "CMakeFiles/rum_workload.dir/distribution.cc.o.d"
  "CMakeFiles/rum_workload.dir/runner.cc.o"
  "CMakeFiles/rum_workload.dir/runner.cc.o.d"
  "CMakeFiles/rum_workload.dir/spec.cc.o"
  "CMakeFiles/rum_workload.dir/spec.cc.o.d"
  "librum_workload.a"
  "librum_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rum_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/methods/approx/bloom_column.cc" "src/methods/CMakeFiles/rum_methods.dir/approx/bloom_column.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/approx/bloom_column.cc.o.d"
  "/root/repo/src/methods/approx/update_absorber.cc" "src/methods/CMakeFiles/rum_methods.dir/approx/update_absorber.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/approx/update_absorber.cc.o.d"
  "/root/repo/src/methods/bitmap/bitmap_index.cc" "src/methods/CMakeFiles/rum_methods.dir/bitmap/bitmap_index.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/bitmap/bitmap_index.cc.o.d"
  "/root/repo/src/methods/bitmap/wah.cc" "src/methods/CMakeFiles/rum_methods.dir/bitmap/wah.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/bitmap/wah.cc.o.d"
  "/root/repo/src/methods/btree/btree.cc" "src/methods/CMakeFiles/rum_methods.dir/btree/btree.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/btree/btree.cc.o.d"
  "/root/repo/src/methods/btree/btree_node.cc" "src/methods/CMakeFiles/rum_methods.dir/btree/btree_node.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/btree/btree_node.cc.o.d"
  "/root/repo/src/methods/column/sorted_column.cc" "src/methods/CMakeFiles/rum_methods.dir/column/sorted_column.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/column/sorted_column.cc.o.d"
  "/root/repo/src/methods/column/unsorted_column.cc" "src/methods/CMakeFiles/rum_methods.dir/column/unsorted_column.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/column/unsorted_column.cc.o.d"
  "/root/repo/src/methods/cracking/cracking.cc" "src/methods/CMakeFiles/rum_methods.dir/cracking/cracking.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/cracking/cracking.cc.o.d"
  "/root/repo/src/methods/diff/stepped_merge.cc" "src/methods/CMakeFiles/rum_methods.dir/diff/stepped_merge.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/diff/stepped_merge.cc.o.d"
  "/root/repo/src/methods/extremes/dense_array.cc" "src/methods/CMakeFiles/rum_methods.dir/extremes/dense_array.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/extremes/dense_array.cc.o.d"
  "/root/repo/src/methods/extremes/magic_array.cc" "src/methods/CMakeFiles/rum_methods.dir/extremes/magic_array.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/extremes/magic_array.cc.o.d"
  "/root/repo/src/methods/extremes/pure_log.cc" "src/methods/CMakeFiles/rum_methods.dir/extremes/pure_log.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/extremes/pure_log.cc.o.d"
  "/root/repo/src/methods/factory.cc" "src/methods/CMakeFiles/rum_methods.dir/factory.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/factory.cc.o.d"
  "/root/repo/src/methods/hash/hash_index.cc" "src/methods/CMakeFiles/rum_methods.dir/hash/hash_index.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/hash/hash_index.cc.o.d"
  "/root/repo/src/methods/hotcold/hot_cold.cc" "src/methods/CMakeFiles/rum_methods.dir/hotcold/hot_cold.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/hotcold/hot_cold.cc.o.d"
  "/root/repo/src/methods/imprints/imprints.cc" "src/methods/CMakeFiles/rum_methods.dir/imprints/imprints.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/imprints/imprints.cc.o.d"
  "/root/repo/src/methods/lsm/lsm_tree.cc" "src/methods/CMakeFiles/rum_methods.dir/lsm/lsm_tree.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/lsm/lsm_tree.cc.o.d"
  "/root/repo/src/methods/lsm/sorted_run.cc" "src/methods/CMakeFiles/rum_methods.dir/lsm/sorted_run.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/lsm/sorted_run.cc.o.d"
  "/root/repo/src/methods/pbt/pbt.cc" "src/methods/CMakeFiles/rum_methods.dir/pbt/pbt.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/pbt/pbt.cc.o.d"
  "/root/repo/src/methods/sketch/blocked_bloom.cc" "src/methods/CMakeFiles/rum_methods.dir/sketch/blocked_bloom.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/sketch/blocked_bloom.cc.o.d"
  "/root/repo/src/methods/sketch/bloom_filter.cc" "src/methods/CMakeFiles/rum_methods.dir/sketch/bloom_filter.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/sketch/bloom_filter.cc.o.d"
  "/root/repo/src/methods/sketch/count_min.cc" "src/methods/CMakeFiles/rum_methods.dir/sketch/count_min.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/sketch/count_min.cc.o.d"
  "/root/repo/src/methods/sketch/quotient_filter.cc" "src/methods/CMakeFiles/rum_methods.dir/sketch/quotient_filter.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/sketch/quotient_filter.cc.o.d"
  "/root/repo/src/methods/skiplist/skiplist.cc" "src/methods/CMakeFiles/rum_methods.dir/skiplist/skiplist.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/skiplist/skiplist.cc.o.d"
  "/root/repo/src/methods/trie/trie.cc" "src/methods/CMakeFiles/rum_methods.dir/trie/trie.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/trie/trie.cc.o.d"
  "/root/repo/src/methods/zonemap/zonemap.cc" "src/methods/CMakeFiles/rum_methods.dir/zonemap/zonemap.cc.o" "gcc" "src/methods/CMakeFiles/rum_methods.dir/zonemap/zonemap.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/rum_core.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/rum_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

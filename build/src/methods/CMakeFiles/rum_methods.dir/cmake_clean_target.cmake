file(REMOVE_RECURSE
  "librum_methods.a"
)

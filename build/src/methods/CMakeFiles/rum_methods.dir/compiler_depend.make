# Empty compiler generated dependencies file for rum_methods.
# This may be replaced when dependencies are built.

// Differential parity tier for the zero-copy pinned-page path: the same
// fixed-seed operation stream is replayed against two instances of every
// factory method -- one on the legacy copying Read/Write path, one on the
// pinned-guard path -- plus the oracle map. The two instances must agree
// with the oracle on contents AND produce byte-identical RUM counter
// snapshots: pinning is an implementation detail, not an accounting change.
#include <cstdio>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/access_method.h"
#include "methods/factory.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using testing_util::GetMatchesReference;
using testing_util::ReferenceModel;
using testing_util::ScanMatchesReference;
using testing_util::SmallOptions;

// Same fixed seeds as the differential tier.
constexpr uint64_t kSeeds[] = {0xA11CEull, 0xB0B5EEDull, 0xC0FFEE42ull};

std::vector<std::string> AllMethodNames() {
  std::vector<std::string> names;
  for (std::string_view name : AllAccessMethodNames()) {
    names.emplace_back(name);
  }
  return names;
}

// Field-by-field comparison so a divergence names the counter that moved.
void ExpectSnapshotsEqual(const CounterSnapshot& copy,
                          const CounterSnapshot& pinned) {
  EXPECT_EQ(copy.bytes_read_base, pinned.bytes_read_base);
  EXPECT_EQ(copy.bytes_read_aux, pinned.bytes_read_aux);
  EXPECT_EQ(copy.bytes_written_base, pinned.bytes_written_base);
  EXPECT_EQ(copy.bytes_written_aux, pinned.bytes_written_aux);
  EXPECT_EQ(copy.blocks_read, pinned.blocks_read);
  EXPECT_EQ(copy.blocks_written, pinned.blocks_written);
  EXPECT_EQ(copy.space_base, pinned.space_base);
  EXPECT_EQ(copy.space_aux, pinned.space_aux);
  EXPECT_EQ(copy.logical_bytes_read, pinned.logical_bytes_read);
  EXPECT_EQ(copy.logical_bytes_written, pinned.logical_bytes_written);
  EXPECT_EQ(copy.point_queries, pinned.point_queries);
  EXPECT_EQ(copy.range_queries, pinned.range_queries);
  EXPECT_EQ(copy.inserts, pinned.inserts);
  EXPECT_EQ(copy.updates, pinned.updates);
  EXPECT_EQ(copy.deletes, pinned.deletes);
}

class PinParityTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(PinParityTest, PinnedAndCopyPathsAreIndistinguishable) {
  const std::string& name = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());

  Options copy_options = SmallOptions();
  copy_options.storage.pinned_pages = false;
  Options pinned_options = SmallOptions();
  pinned_options.storage.pinned_pages = true;

  auto copy_method = MakeAccessMethod(name, copy_options);
  auto pinned_method = MakeAccessMethod(name, pinned_options);
  ASSERT_NE(copy_method, nullptr) << "unknown method " << name;
  ASSERT_NE(pinned_method, nullptr) << "unknown method " << name;
  ReferenceModel oracle;

  Rng rng(seed);
  const Key kRange = 1u << 12;
  const int kOps = 1500;
  for (int i = 0; i < kOps; ++i) {
    SCOPED_TRACE(::testing::Message()
                 << name << " seed 0x" << std::hex << seed << std::dec
                 << " op " << i);
    Key key = rng.NextBelow(kRange);
    uint64_t dice = rng.NextBelow(100);
    if (dice < 40) {
      Value v = rng.Next();
      ASSERT_TRUE(copy_method->Insert(key, v).ok());
      ASSERT_TRUE(pinned_method->Insert(key, v).ok());
      oracle.Insert(key, v);
    } else if (dice < 55) {
      Value v = rng.Next();
      ASSERT_TRUE(copy_method->Update(key, v).ok());
      ASSERT_TRUE(pinned_method->Update(key, v).ok());
      oracle.Update(key, v);
    } else if (dice < 70) {
      ASSERT_TRUE(copy_method->Delete(key).ok());
      ASSERT_TRUE(pinned_method->Delete(key).ok());
      oracle.Delete(key);
    } else if (dice < 92) {
      ASSERT_TRUE(GetMatchesReference(copy_method.get(), oracle, key));
      ASSERT_TRUE(GetMatchesReference(pinned_method.get(), oracle, key));
    } else {
      Key hi = key + rng.NextBelow(200);
      ASSERT_TRUE(ScanMatchesReference(copy_method.get(), oracle, key, hi));
      ASSERT_TRUE(ScanMatchesReference(pinned_method.get(), oracle, key, hi));
    }
    if (i % 500 == 250) {
      ASSERT_TRUE(copy_method->Flush().ok());
      ASSERT_TRUE(pinned_method->Flush().ok());
    }
    // Periodic mid-stream parity check: catching the first divergent op
    // is far more diagnostic than one comparison at the end.
    if (i % 250 == 0) {
      ExpectSnapshotsEqual(copy_method->stats(), pinned_method->stats());
      if (::testing::Test::HasFailure()) return;
    }
  }

  ASSERT_EQ(copy_method->size(), oracle.size());
  ASSERT_EQ(pinned_method->size(), oracle.size());
  ExpectSnapshotsEqual(copy_method->stats(), pinned_method->stats());

  // Full-content sweep of the pinned instance against the oracle.
  for (const auto& [key, value] : oracle.map()) {
    SCOPED_TRACE(::testing::Message() << name << " final sweep key " << key);
    ASSERT_TRUE(GetMatchesReference(pinned_method.get(), oracle, key));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, PinParityTest,
    ::testing::Combine(::testing::ValuesIn(AllMethodNames()),
                       ::testing::ValuesIn(kSeeds)),
    [](const ::testing::TestParamInfo<PinParityTest::ParamType>& info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      char seed_tag[24];
      std::snprintf(seed_tag, sizeof(seed_tag), "_%llx",
                    static_cast<unsigned long long>(std::get<1>(info.param)));
      return name + seed_tag;
    });

}  // namespace
}  // namespace rum

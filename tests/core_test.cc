// Unit tests for the core layer: Status/Result, RUM counters, RumPoint.
#include <gtest/gtest.h>

#include "core/counters.h"
#include "core/rum_point.h"
#include "core/status.h"

namespace rum {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::NotFound("key 42");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.ToString(), "NotFound: key 42");
  EXPECT_EQ(Status::Corruption().code(), Code::kCorruption);
  EXPECT_EQ(Status::InvalidArgument().code(), Code::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange().code(), Code::kOutOfRange);
  EXPECT_EQ(Status::NotSupported().code(), Code::kNotSupported);
  EXPECT_EQ(Status::ResourceExhausted().code(), Code::kResourceExhausted);
  EXPECT_EQ(Status::IOError().code(), Code::kIOError);
  EXPECT_EQ(Status::AlreadyExists().code(), Code::kAlreadyExists);
}

TEST(StatusTest, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound() == Status::OK());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Code::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(CountersTest, AmplificationsComputeRatios) {
  RumCounters counters;
  counters.OnRead(DataClass::kBase, 100);
  counters.OnRead(DataClass::kAux, 60);
  counters.OnLogicalRead(40);
  counters.OnWrite(DataClass::kBase, 48);
  counters.OnWrite(DataClass::kAux, 16);
  counters.OnLogicalWrite(16);
  counters.SetSpace(DataClass::kBase, 1000);
  counters.SetSpace(DataClass::kAux, 500);

  const CounterSnapshot& snap = counters.snapshot();
  EXPECT_DOUBLE_EQ(snap.read_amplification(), 4.0);
  EXPECT_DOUBLE_EQ(snap.write_amplification(), 4.0);
  EXPECT_DOUBLE_EQ(snap.space_amplification(), 1.5);
  EXPECT_EQ(snap.total_bytes_read(), 160u);
  EXPECT_EQ(snap.total_bytes_written(), 64u);
  EXPECT_EQ(snap.total_space(), 1500u);
}

TEST(CountersTest, ZeroDenominatorsReturnZero) {
  CounterSnapshot snap;
  EXPECT_EQ(snap.read_amplification(), 0.0);
  EXPECT_EQ(snap.write_amplification(), 0.0);
  EXPECT_EQ(snap.space_amplification(), 0.0);
}

TEST(CountersTest, DeltaSubtractsTrafficKeepsSpace) {
  RumCounters counters;
  counters.OnRead(DataClass::kBase, 100);
  counters.OnLogicalRead(100);
  counters.OnPointQuery();
  CounterSnapshot before = counters.snapshot();
  counters.OnRead(DataClass::kBase, 60);
  counters.OnLogicalRead(20);
  counters.OnPointQuery();
  counters.SetSpace(DataClass::kBase, 777);
  CounterSnapshot delta = counters.snapshot() - before;
  EXPECT_EQ(delta.bytes_read_base, 60u);
  EXPECT_EQ(delta.logical_bytes_read, 20u);
  EXPECT_EQ(delta.point_queries, 1u);
  EXPECT_EQ(delta.space_base, 777u);  // Space is a level, not a delta.
}

TEST(CountersTest, ResetTrafficPreservesSpace) {
  RumCounters counters;
  counters.OnRead(DataClass::kAux, 10);
  counters.SetSpace(DataClass::kAux, 123);
  counters.ResetTraffic();
  EXPECT_EQ(counters.snapshot().bytes_read_aux, 0u);
  EXPECT_EQ(counters.snapshot().space_aux, 123u);
}

TEST(CountersTest, AdjustSpaceMovesBothWays) {
  RumCounters counters;
  counters.AdjustSpace(DataClass::kBase, 100);
  counters.AdjustSpace(DataClass::kBase, -40);
  EXPECT_EQ(counters.snapshot().space_base, 60u);
}

TEST(CountersTest, ReclassifyInsertAsUpdate) {
  RumCounters counters;
  counters.OnInsert();
  counters.ReclassifyInsertAsUpdate();
  EXPECT_EQ(counters.snapshot().inserts, 0u);
  EXPECT_EQ(counters.snapshot().updates, 1u);
  // No-op when there is no insert to rebook.
  counters.ReclassifyInsertAsUpdate();
  EXPECT_EQ(counters.snapshot().updates, 1u);
}

TEST(RumPointTest, PerfectPointSitsAtCentroid) {
  RumPoint p{1.0, 1.0, 1.0};
  double wr, wu, wm;
  p.BarycentricWeights(&wr, &wu, &wm);
  EXPECT_NEAR(wr, 1.0 / 3, 1e-9);
  EXPECT_NEAR(wu, 1.0 / 3, 1e-9);
  EXPECT_NEAR(wm, 1.0 / 3, 1e-9);
  EXPECT_EQ(p.Classify(), RumRegion::kBalanced);
  EXPECT_NEAR(p.triangle_x(), 0.5, 1e-9);
  EXPECT_NEAR(p.triangle_y(), 1.0 / 3, 1e-9);
}

TEST(RumPointTest, ReadOptimizedLeansToReadCorner) {
  // Cheap reads, expensive writes and space.
  RumPoint p{1.0, 50.0, 50.0};
  EXPECT_EQ(p.Classify(), RumRegion::kReadOptimized);
  EXPECT_GT(p.triangle_y(), 0.9);
}

TEST(RumPointTest, WriteOptimizedLeansToWriteCorner) {
  RumPoint p{50.0, 1.0, 50.0};
  EXPECT_EQ(p.Classify(), RumRegion::kWriteOptimized);
  EXPECT_LT(p.triangle_x(), 0.1);
}

TEST(RumPointTest, SpaceOptimizedLeansToSpaceCorner) {
  RumPoint p{50.0, 50.0, 1.0};
  EXPECT_EQ(p.Classify(), RumRegion::kSpaceOptimized);
  EXPECT_GT(p.triangle_x(), 0.9);
}

TEST(RumPointTest, SubUnitAmplificationsClampToOne) {
  CounterSnapshot snap;  // All zero: amplifications report 0.
  RumPoint p = RumPoint::FromSnapshot(snap);
  EXPECT_DOUBLE_EQ(p.read_overhead, 1.0);
  EXPECT_DOUBLE_EQ(p.update_overhead, 1.0);
  EXPECT_DOUBLE_EQ(p.memory_overhead, 1.0);
}

TEST(RumPointTest, TriangleDistanceIsMetricLike) {
  RumPoint read{1, 50, 50};
  RumPoint write{50, 1, 50};
  RumPoint mid{1, 1, 1};
  EXPECT_NEAR(RumPoint::TriangleDistance(read, read), 0.0, 1e-12);
  EXPECT_GT(RumPoint::TriangleDistance(read, write),
            RumPoint::TriangleDistance(read, mid));
}

TEST(RumPointTest, ToStringMentionsRegion) {
  RumPoint p{1.0, 50.0, 50.0};
  EXPECT_NE(p.ToString().find("read-optimized"), std::string::npos);
}

}  // namespace
}  // namespace rum

// Structure-specific tests for Column Imprints and the hot/cold store.
#include <gtest/gtest.h>

#include "methods/hotcold/hot_cold.h"
#include "methods/imprints/imprints.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using testing_util::SmallOptions;

TEST(ImprintsTest, IndexIsOneWordPerBlock) {
  Options options = SmallOptions();
  ImprintsColumn column(options);
  std::vector<Entry> entries = MakeSortedEntries(5000, 0, 3);
  ASSERT_TRUE(column.BulkLoad(entries).ok());
  size_t blocks = (5000 + 30) / 31;  // 31 entries per 512-byte block.
  EXPECT_EQ(column.imprint_count(), blocks);
  EXPECT_EQ(column.imprint_bytes(), blocks * 8);
  // Far smaller than the base data.
  EXPECT_LT(column.stats().space_aux, column.stats().space_base / 50);
}

TEST(ImprintsTest, RangeScansSkipNonMatchingBlocks) {
  Options options = SmallOptions();
  options.bitmap.key_domain = 1u << 16;
  ImprintsColumn column(options);
  // Clustered load: block i holds keys near i -- imprints are selective.
  std::vector<Entry> entries = MakeSortedEntries(10000, 0, 6);
  ASSERT_TRUE(column.BulkLoad(entries).ok());
  column.ResetStats();
  std::vector<Entry> out;
  ASSERT_TRUE(column.Scan(3000, 3300, &out).ok());
  EXPECT_EQ(out.size(), 51u);  // Keys 3000..3300 at stride 6.
  // A full scan would read ~323 blocks; the imprint narrows to the blocks
  // of 1-2 bins (~1/64 to 2/64 of the domain).
  EXPECT_LT(column.stats().blocks_read, 30u);
}

TEST(ImprintsTest, SurvivesUnclusteredData) {
  // The ZoneMap's min/max summaries die on interleaved data; imprints set
  // two bits and stay selective.
  Options options = SmallOptions();
  options.bitmap.key_domain = 1u << 16;
  ImprintsColumn column(options);
  // Alternate between two distant key regions (bins 0 and 63).
  Key high = (1u << 16) - 2000;
  for (Key i = 0; i < 2000; ++i) {
    ASSERT_TRUE(column.Insert(i % 2 == 0 ? i : high + i, i).ok());
  }
  column.ResetStats();
  std::vector<Entry> out;
  // Query a region NEITHER half touches.
  ASSERT_TRUE(column.Scan(30000, 31000, &out).ok());
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(column.stats().blocks_read, 0u);  // Every block pruned.
}

TEST(ImprintsTest, DeletesRebuildEventually) {
  Options options = SmallOptions();
  options.approx.rebuild_deleted_fraction = 0.2;
  ImprintsColumn column(options);
  std::vector<Entry> entries = MakeSortedEntries(2000);
  ASSERT_TRUE(column.BulkLoad(entries).ok());
  for (Key k = 0; k < 800; ++k) {
    ASSERT_TRUE(column.Delete(k).ok());
  }
  EXPECT_EQ(column.size(), 1200u);
  for (Key k = 800; k < 850; ++k) {
    EXPECT_EQ(column.Get(k).value(), ValueFor(k));
  }
}

TEST(HotColdTest, SkewPromotesHotKeys) {
  Options options = SmallOptions();
  options.hot_cold.hot_capacity = 64;
  options.hot_cold.promote_estimate = 3;
  HotColdStore store(options);
  std::vector<Entry> entries = MakeSortedEntries(4000);
  ASSERT_TRUE(store.BulkLoad(entries).ok());
  // Hammer a few keys.
  for (int round = 0; round < 10; ++round) {
    for (Key k = 100; k < 116; ++k) {
      ASSERT_TRUE(store.Get(k).ok());
    }
  }
  EXPECT_GE(store.promotions(), 16u);
  EXPECT_LE(store.hot_count(), 64u);
}

TEST(HotColdTest, HotReadsStopTouchingTheDevice) {
  Options options = SmallOptions();
  options.hot_cold.promote_estimate = 2;
  HotColdStore store(options);
  std::vector<Entry> entries = MakeSortedEntries(4000);
  ASSERT_TRUE(store.BulkLoad(entries).ok());
  // Warm one key past the promotion threshold.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Get(7).ok());
  }
  store.ResetStats();
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(store.Get(7).value(), ValueFor(7));
  }
  EXPECT_EQ(store.stats().blocks_read, 0u);  // Served from memory.
}

TEST(HotColdTest, DirtyHotWritesReachColdOnFlush) {
  Options options = SmallOptions();
  options.hot_cold.promote_estimate = 2;
  HotColdStore store(options);
  std::vector<Entry> entries = MakeSortedEntries(1000);
  ASSERT_TRUE(store.BulkLoad(entries).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(store.Get(42).ok());  // Promote.
  }
  ASSERT_TRUE(store.Insert(42, 9999).ok());  // Dirty the hot entry.
  ASSERT_TRUE(store.Flush().ok());
  // A scan (which consults the cold structure) must see the new value.
  std::vector<Entry> out;
  ASSERT_TRUE(store.Scan(42, 42, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 9999u);
}

TEST(HotColdTest, EvictionWritesBackAndBounds) {
  Options options = SmallOptions();
  options.hot_cold.hot_capacity = 16;
  options.hot_cold.promote_estimate = 2;
  HotColdStore store(options);
  std::vector<Entry> entries = MakeSortedEntries(2000);
  ASSERT_TRUE(store.BulkLoad(entries).ok());
  // Promote many more keys than the capacity.
  for (Key k = 0; k < 200; ++k) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(store.Get(k).ok());
    }
  }
  EXPECT_LE(store.hot_count(), 17u);
  EXPECT_GT(store.evictions(), 0u);
  // Nothing lost.
  for (Key k = 0; k < 200; k += 13) {
    EXPECT_EQ(store.Get(k).value(), ValueFor(k));
  }
}

TEST(HotColdTest, SpaceOverheadIsBoundedByCapacity) {
  Options options = SmallOptions();
  options.hot_cold.hot_capacity = 32;
  options.hot_cold.promote_estimate = 1;  // Promote everything touched.
  HotColdStore store(options);
  std::vector<Entry> entries = MakeSortedEntries(3000);
  ASSERT_TRUE(store.BulkLoad(entries).ok());
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(store.Get(rng.NextBelow(3000)).ok());
  }
  EXPECT_LE(store.hot_count(), 33u);
}

}  // namespace
}  // namespace rum

// Validation tests for the Options knobs.
#include <gtest/gtest.h>

#include "core/options.h"
#include "methods/factory.h"

namespace rum {
namespace {

TEST(OptionsTest, DefaultsAreValid) {
  EXPECT_TRUE(ValidateOptions(Options()).ok());
}

TEST(OptionsTest, RejectsTinyBlocks) {
  Options options;
  options.block_size = 32;
  EXPECT_EQ(ValidateOptions(options).code(), Code::kInvalidArgument);
}

TEST(OptionsTest, RejectsBadFractions) {
  Options options;
  options.btree.bulk_fill = 0.0;
  EXPECT_FALSE(ValidateOptions(options).ok());
  options = Options();
  options.btree.bulk_fill = 1.5;
  EXPECT_FALSE(ValidateOptions(options).ok());
  options = Options();
  options.btree.split_fraction = 1.0;
  EXPECT_FALSE(ValidateOptions(options).ok());
  options = Options();
  options.skiplist.promote_probability = 0.0;
  EXPECT_FALSE(ValidateOptions(options).ok());
  options = Options();
  options.approx.rebuild_deleted_fraction = 0.0;
  EXPECT_FALSE(ValidateOptions(options).ok());
}

TEST(OptionsTest, RejectsDegenerateStructureSizes) {
  Options options;
  options.lsm.size_ratio = 1;
  EXPECT_FALSE(ValidateOptions(options).ok());
  options = Options();
  options.stepped.runs_per_level = 1;
  EXPECT_FALSE(ValidateOptions(options).ok());
  options = Options();
  options.zonemap.zone_entries = 1;
  EXPECT_FALSE(ValidateOptions(options).ok());
  options = Options();
  options.skiplist.max_height = 0;
  EXPECT_FALSE(ValidateOptions(options).ok());
  options = Options();
  options.lsm.policy = LsmPolicy::kHybrid;
  options.lsm.hybrid_tiered_levels = 0;  // That would just be leveled.
  EXPECT_FALSE(ValidateOptions(options).ok());
  options.lsm.hybrid_tiered_levels = 2;
  EXPECT_TRUE(ValidateOptions(options).ok());
}

TEST(OptionsTest, RejectsNonDividingTrieSpan) {
  Options options;
  options.trie.span_bits = 7;  // Does not divide 64.
  EXPECT_FALSE(ValidateOptions(options).ok());
  options.trie.span_bits = 16;
  EXPECT_TRUE(ValidateOptions(options).ok());
}

TEST(OptionsTest, FactoryRejectsInvalidOptions) {
  Options options;
  options.block_size = 8;
  EXPECT_EQ(MakeAccessMethod("btree", options), nullptr);
}

TEST(OptionsTest, FactoryRejectsUnknownNames) {
  EXPECT_EQ(MakeAccessMethod("no-such-method", Options()), nullptr);
}

TEST(OptionsTest, EveryAdvertisedNameConstructs) {
  Options options;
  for (std::string_view name : AllAccessMethodNames()) {
    EXPECT_NE(MakeAccessMethod(name, options), nullptr) << name;
  }
}

}  // namespace
}  // namespace rum

// Fault-injection tests: an I/O error injected by a FaultyDevice must
// propagate as a Status through every layer -- cache, logs, heaps, and every
// access method -- without crashes or silent corruption.
#include <gtest/gtest.h>

#include "methods/btree/btree.h"
#include "methods/column/sorted_column.h"
#include "methods/factory.h"
#include "methods/lsm/lsm_tree.h"
#include "storage/append_log.h"
#include "storage/block_device.h"
#include "storage/caching_device.h"
#include "storage/faulty_device.h"
#include "storage/heap_file.h"
#include "storage/retry_device.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using testing_util::GetMatchesReference;
using testing_util::MustAllocate;
using testing_util::ReferenceModel;
using testing_util::SmallOptions;

TEST(FaultTest, DeviceFailsAfterBudget) {
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice device(&base);
  PageId p = MustAllocate(device, DataClass::kBase);
  std::vector<uint8_t> data(512, 1);
  device.InjectFailureAfter(2);
  EXPECT_TRUE(device.Write(p, data).ok());
  std::vector<uint8_t> out;
  EXPECT_TRUE(device.Read(p, &out).ok());
  EXPECT_TRUE(device.fault_active());
  EXPECT_EQ(device.Read(p, &out).code(), Code::kIOError);
  EXPECT_EQ(device.Write(p, data).code(), Code::kIOError);
  device.ClearFaults();
  EXPECT_TRUE(device.Read(p, &out).ok());
}

TEST(FaultTest, FaultyIoIsNotCharged) {
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice device(&base);
  PageId p = MustAllocate(device, DataClass::kBase);
  device.InjectFailureAfter(0);
  std::vector<uint8_t> out;
  EXPECT_FALSE(device.Read(p, &out).ok());
  EXPECT_EQ(counters.snapshot().blocks_read, 0u);
}

TEST(FaultTest, ReadPinConsumesBudgetExactlyOncePerAccess) {
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice device(&base);
  PageId p = MustAllocate(device, DataClass::kBase);
  std::vector<uint8_t> data(512, 1);
  ASSERT_TRUE(device.Write(p, data).ok());
  device.InjectFailureAfter(1);
  {
    PageReadGuard guard;
    ASSERT_TRUE(device.PinForRead(p, &guard).ok());  // Consumes the budget.
  }
  uint64_t reads_before = counters.snapshot().blocks_read;
  PageReadGuard guard;
  EXPECT_EQ(device.PinForRead(p, &guard).code(), Code::kIOError);
  EXPECT_FALSE(guard.valid());
  // The failed pin charged nothing and left nothing pinned.
  EXPECT_EQ(counters.snapshot().blocks_read, reads_before);
  EXPECT_EQ(device.pinned_pages(), 0u);
  device.ClearFaults();
}

TEST(FaultTest, DirtyUnpinFaultIsUnchargedAndGuardGoesInert) {
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice device(&base);
  PageId p = MustAllocate(device, DataClass::kBase);
  PageWriteGuard guard;
  ASSERT_TRUE(device.PinForWrite(p, &guard).ok());  // No budget consumed.
  std::fill(guard.bytes().begin(), guard.bytes().end(), 0x77);
  guard.MarkDirty();
  device.InjectFailureAfter(0);
  uint64_t writes_before = counters.snapshot().blocks_written;
  EXPECT_EQ(guard.Release().code(), Code::kIOError);
  EXPECT_EQ(counters.snapshot().blocks_written, writes_before);
  EXPECT_EQ(device.pinned_pages(), 0u);
  // The guard is inert after the failed release: releasing again is a
  // no-op, not a double unpin.
  EXPECT_TRUE(guard.Release().ok());
  EXPECT_FALSE(guard.valid());
  device.ClearFaults();
  // The page stays writable once the fault clears.
  PageWriteGuard retry;
  ASSERT_TRUE(device.PinForWrite(p, &retry).ok());
  std::fill(retry.bytes().begin(), retry.bytes().end(), 0x78);
  retry.MarkDirty();
  EXPECT_TRUE(retry.Release().ok());
}

TEST(FaultTest, CleanWritePinConsumesNoBudget) {
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice device(&base);
  PageId p = MustAllocate(device, DataClass::kBase);
  std::vector<uint8_t> data(512, 1);
  ASSERT_TRUE(device.Write(p, data).ok());
  device.InjectFailureAfter(1);
  {
    // Neither the write pin nor its clean release touches the budget.
    PageWriteGuard guard;
    ASSERT_TRUE(device.PinForWrite(p, &guard).ok());
    ASSERT_TRUE(guard.Release().ok());
  }
  std::vector<uint8_t> out;
  EXPECT_TRUE(device.Read(p, &out).ok());  // Budget spent here...
  EXPECT_EQ(device.Read(p, &out).code(), Code::kIOError);  // ...not before.
  device.ClearFaults();
}

TEST(FaultTest, CachePinMissPropagatesBaseFault) {
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice device(&base);
  CachingDevice cache(&device, /*capacity_pages=*/4);
  PageId p = MustAllocate(cache, DataClass::kBase);
  std::vector<uint8_t> data(512, 1);
  ASSERT_TRUE(device.Write(p, data).ok());
  device.InjectFailureAfter(0);
  PageReadGuard guard;
  EXPECT_EQ(cache.PinForRead(p, &guard).code(), Code::kIOError);
  EXPECT_EQ(cache.cached_pages(), 0u);  // Nothing half-inserted.
  EXPECT_EQ(cache.pinned_pages(), 0u);
  device.ClearFaults();
  ASSERT_TRUE(cache.PinForRead(p, &guard).ok());
  EXPECT_EQ(guard.bytes()[0], 1);
}

TEST(FaultTest, AppendLogPropagates) {
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice device(&base);
  AppendLog log(&device, DataClass::kBase, &counters);
  // Fill almost one block, then make the sealing write fail.
  for (size_t i = 0; i + 1 < log.records_per_block(); ++i) {
    ASSERT_TRUE(log.Append(LogRecord{i, i, LogOp::kPut}).ok());
  }
  device.InjectFailureAfter(0);
  Status s = log.Append(LogRecord{999, 0, LogOp::kPut});
  EXPECT_EQ(s.code(), Code::kIOError);
}

TEST(FaultTest, HeapFilePropagates) {
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice device(&base);
  HeapFile heap(&device, DataClass::kBase, &counters);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(heap.Append(Entry{i, i}).ok());
  }
  device.InjectFailureAfter(0);
  EXPECT_EQ(heap.At(0).code(), Code::kIOError);
  EXPECT_EQ(heap.Set(0, Entry{0, 1}).code(), Code::kIOError);
  device.ClearFaults();
  EXPECT_TRUE(heap.At(0).ok());
}

TEST(FaultTest, BTreePropagatesAndRecovers) {
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice device(&base);
  Options options = SmallOptions();
  BTree tree(options, &device);
  std::vector<Entry> entries = MakeSortedEntries(2000);
  ASSERT_TRUE(tree.BulkLoad(entries).ok());

  device.InjectFailureAfter(0);
  EXPECT_EQ(tree.Get(100).code(), Code::kIOError);
  std::vector<Entry> out;
  EXPECT_EQ(tree.Scan(0, 100, &out).code(), Code::kIOError);

  device.ClearFaults();
  EXPECT_EQ(tree.Get(100).value(), ValueFor(100));
}

TEST(FaultTest, LsmReadPathPropagates) {
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice device(&base);
  Options options = SmallOptions();
  options.lsm.bloom_bits_per_key = 0;  // Force page reads.
  LsmTree tree(options, &device);
  for (Key k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree.Insert(k, k).ok());
  }
  ASSERT_TRUE(tree.Flush().ok());
  device.InjectFailureAfter(0);
  EXPECT_EQ(tree.Get(500).code(), Code::kIOError);
  device.ClearFaults();
  EXPECT_TRUE(tree.Get(500).ok());
}

TEST(FaultTest, MidBulkLoadFailureSurfaces) {
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice device(&base);
  Options options = SmallOptions();
  SortedColumn column(options, &device);
  std::vector<Entry> entries = MakeSortedEntries(5000);
  device.InjectFailureAfter(10);
  Status s = column.BulkLoad(entries);
  EXPECT_EQ(s.code(), Code::kIOError);
}

TEST(FaultTest, InjectedErrorsCarryDeviceContext) {
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice device(&base);
  PageId p = MustAllocate(device, DataClass::kBase);
  device.InjectFailureAfter(0);
  std::vector<uint8_t> out;
  Status s = device.Read(p, &out);
  ASSERT_EQ(s.code(), Code::kIOError);
  EXPECT_NE(s.message().find("op=Read"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("page=" + std::to_string(p)), std::string::npos)
      << s.ToString();
}

// Every factory method, loaded clean and then probed under a total device
// outage: each Get either fails with an explicit error or returns the exact
// reference value -- reads cannot silently corrupt, and once the fault
// clears every method answers exactly again. In-memory methods simply never
// fault; the sweep asserts they stay exact throughout.
TEST(FaultTest, AllFactoryMethodsSurviveReadFaults) {
  constexpr Key kKeys = 800;
  uint64_t total_faulted = 0;
  for (std::string_view name : AllAccessMethodNames()) {
    RumCounters counters;
    BlockDevice base(512, &counters);
    FaultyDevice device(&base);
    Options options = SmallOptions();
    auto method = MakeAccessMethod(name, options, &device);
    ASSERT_NE(method, nullptr) << name;

    ReferenceModel reference;
    for (Key k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(method->Insert(k, ValueFor(k)).ok()) << name;
      reference.Insert(k, ValueFor(k));
    }
    ASSERT_TRUE(method->Flush().ok()) << name;

    device.InjectFailureAfter(0);
    uint64_t faulted = 0;
    for (Key k = 0; k < kKeys; k += 7) {
      Result<Value> r = method->Get(k);
      if (r.ok()) {
        Value expected;
        ASSERT_TRUE(reference.Get(k, &expected)) << name;
        EXPECT_EQ(r.value(), expected) << name << " key " << k;
      } else {
        // Explicit failure is the only alternative to the right answer.
        EXPECT_TRUE(r.code() == Code::kIOError ||
                    r.code() == Code::kCorruption)
            << name << " key " << k << ": " << r.status().ToString();
        ++faulted;
      }
    }
    device.ClearFaults();
    for (Key k = 0; k < kKeys; k += 7) {
      EXPECT_TRUE(GetMatchesReference(method.get(), reference, k)) << name;
    }
    total_faulted += faulted;
  }
  // Sanity: the outage was real -- the device-backed methods did fault.
  EXPECT_GT(total_faulted, 0u);
}

// ---------------------------------------------- Per-op-class retry policy

// Per-class retry overrides apply independently: reads retry to their own
// budget while writes keep the global fail-fast policy, and an exhausted
// real budget surfaces the terminal kUnavailable carrying the attempt count
// and total simulated backoff.
TEST(FaultTest, PerOpClassRetryPoliciesApplyIndependently) {
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice faulty(&base);
  Options options;
  options.storage.retry.max_attempts = 1;    // Global: fail fast.
  options.storage.retry.read.max_attempts = 4;
  options.storage.retry.read.backoff_base_us = 5;
  RetryingDevice device(&faulty, options, &counters);

  PageId p = testing_util::MustAllocate(device, DataClass::kBase);
  std::vector<uint8_t> data(512, 0x5a);
  ASSERT_TRUE(device.Write(p, data).ok());

  // Permanent read outage: the read budget (4 attempts) is consumed and the
  // failure surfaces as kUnavailable with the budget attached.
  faulty.SetPlan(FaultPlan::Transient(1234, 0.0).WithRate(FaultOp::kRead, 1.0));
  std::vector<uint8_t> out;
  Status r = device.Read(p, &out);
  EXPECT_EQ(r.code(), Code::kUnavailable) << r.ToString();
  EXPECT_NE(r.message().find("4 attempts"), std::string::npos) << r.ToString();
  // Backoff 5us doubling across 3 re-attempts: 5 + 10 + 20.
  EXPECT_EQ(device.simulated_backoff_us(), 35u);
  CounterSnapshot snap = counters.snapshot();
  EXPECT_EQ(snap.io_errors, 4u);
  EXPECT_EQ(snap.retries, 3u);

  // Writes inherit the fail-fast global policy: one attempt, raw kIOError
  // (a 1-attempt policy never upgrades to kUnavailable), no new retries.
  faulty.SetPlan(FaultPlan::Transient(1234, 0.0).WithRate(FaultOp::kWrite, 1.0));
  Status w = device.Write(p, data);
  EXPECT_EQ(w.code(), Code::kIOError) << w.ToString();
  EXPECT_EQ(counters.snapshot().retries, 3u);
  EXPECT_EQ(device.simulated_backoff_us(), 35u);
}

// unavailable_when_exhausted = false keeps the raw kIOError even for real
// budgets, for callers that want the legacy code.
TEST(FaultTest, RetryExhaustionKeepsIoErrorWhenUpgradeDisabled) {
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice faulty(&base);
  Options options;
  options.storage.retry.max_attempts = 3;
  options.storage.retry.unavailable_when_exhausted = false;
  RetryingDevice device(&faulty, options, &counters);

  PageId p = testing_util::MustAllocate(device, DataClass::kBase);
  faulty.SetPlan(FaultPlan::Transient(77, 0.0).WithRate(FaultOp::kRead, 1.0));
  std::vector<uint8_t> out;
  EXPECT_EQ(device.Read(p, &out).code(), Code::kIOError);
}

}  // namespace
}  // namespace rum

// Fault-injection tests: an I/O error at the device must propagate as a
// Status through every layer without crashes or silent corruption.
#include <gtest/gtest.h>

#include "methods/btree/btree.h"
#include "methods/column/sorted_column.h"
#include "methods/lsm/lsm_tree.h"
#include "storage/append_log.h"
#include "storage/block_device.h"
#include "storage/caching_device.h"
#include "storage/heap_file.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using testing_util::SmallOptions;

TEST(FaultTest, DeviceFailsAfterBudget) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  PageId p = device.Allocate(DataClass::kBase);
  std::vector<uint8_t> data(512, 1);
  device.InjectFailureAfter(2);
  EXPECT_TRUE(device.Write(p, data).ok());
  std::vector<uint8_t> out;
  EXPECT_TRUE(device.Read(p, &out).ok());
  EXPECT_TRUE(device.fault_active());
  EXPECT_EQ(device.Read(p, &out).code(), Code::kIOError);
  EXPECT_EQ(device.Write(p, data).code(), Code::kIOError);
  device.ClearFaults();
  EXPECT_TRUE(device.Read(p, &out).ok());
}

TEST(FaultTest, FaultyIoIsNotCharged) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  PageId p = device.Allocate(DataClass::kBase);
  device.InjectFailureAfter(0);
  std::vector<uint8_t> out;
  EXPECT_FALSE(device.Read(p, &out).ok());
  EXPECT_EQ(counters.snapshot().blocks_read, 0u);
}

TEST(FaultTest, ReadPinConsumesBudgetExactlyOncePerAccess) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  PageId p = device.Allocate(DataClass::kBase);
  std::vector<uint8_t> data(512, 1);
  ASSERT_TRUE(device.Write(p, data).ok());
  device.InjectFailureAfter(1);
  {
    PageReadGuard guard;
    ASSERT_TRUE(device.PinForRead(p, &guard).ok());  // Consumes the budget.
  }
  uint64_t reads_before = counters.snapshot().blocks_read;
  PageReadGuard guard;
  EXPECT_EQ(device.PinForRead(p, &guard).code(), Code::kIOError);
  EXPECT_FALSE(guard.valid());
  // The failed pin charged nothing and left nothing pinned.
  EXPECT_EQ(counters.snapshot().blocks_read, reads_before);
  EXPECT_EQ(device.pinned_pages(), 0u);
  device.ClearFaults();
}

TEST(FaultTest, DirtyUnpinFaultIsUnchargedAndGuardGoesInert) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  PageId p = device.Allocate(DataClass::kBase);
  PageWriteGuard guard;
  ASSERT_TRUE(device.PinForWrite(p, &guard).ok());  // No budget consumed.
  std::fill(guard.bytes().begin(), guard.bytes().end(), 0x77);
  guard.MarkDirty();
  device.InjectFailureAfter(0);
  uint64_t writes_before = counters.snapshot().blocks_written;
  EXPECT_EQ(guard.Release().code(), Code::kIOError);
  EXPECT_EQ(counters.snapshot().blocks_written, writes_before);
  EXPECT_EQ(device.pinned_pages(), 0u);
  // The guard is inert after the failed release: releasing again is a
  // no-op, not a double unpin.
  EXPECT_TRUE(guard.Release().ok());
  EXPECT_FALSE(guard.valid());
  device.ClearFaults();
  // The page stays writable once the fault clears.
  PageWriteGuard retry;
  ASSERT_TRUE(device.PinForWrite(p, &retry).ok());
  std::fill(retry.bytes().begin(), retry.bytes().end(), 0x78);
  retry.MarkDirty();
  EXPECT_TRUE(retry.Release().ok());
}

TEST(FaultTest, CleanWritePinConsumesNoBudget) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  PageId p = device.Allocate(DataClass::kBase);
  std::vector<uint8_t> data(512, 1);
  ASSERT_TRUE(device.Write(p, data).ok());
  device.InjectFailureAfter(1);
  {
    // Neither the write pin nor its clean release touches the budget.
    PageWriteGuard guard;
    ASSERT_TRUE(device.PinForWrite(p, &guard).ok());
    ASSERT_TRUE(guard.Release().ok());
  }
  std::vector<uint8_t> out;
  EXPECT_TRUE(device.Read(p, &out).ok());  // Budget spent here...
  EXPECT_EQ(device.Read(p, &out).code(), Code::kIOError);  // ...not before.
  device.ClearFaults();
}

TEST(FaultTest, CachePinMissPropagatesBaseFault) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  CachingDevice cache(&device, /*capacity_pages=*/4);
  PageId p = cache.Allocate(DataClass::kBase);
  std::vector<uint8_t> data(512, 1);
  ASSERT_TRUE(device.Write(p, data).ok());
  device.InjectFailureAfter(0);
  PageReadGuard guard;
  EXPECT_EQ(cache.PinForRead(p, &guard).code(), Code::kIOError);
  EXPECT_EQ(cache.cached_pages(), 0u);  // Nothing half-inserted.
  EXPECT_EQ(cache.pinned_pages(), 0u);
  device.ClearFaults();
  ASSERT_TRUE(cache.PinForRead(p, &guard).ok());
  EXPECT_EQ(guard.bytes()[0], 1);
}

TEST(FaultTest, AppendLogPropagates) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  AppendLog log(&device, DataClass::kBase, &counters);
  // Fill almost one block, then make the sealing write fail.
  for (size_t i = 0; i + 1 < log.records_per_block(); ++i) {
    ASSERT_TRUE(log.Append(LogRecord{i, i, LogOp::kPut}).ok());
  }
  device.InjectFailureAfter(0);
  Status s = log.Append(LogRecord{999, 0, LogOp::kPut});
  EXPECT_EQ(s.code(), Code::kIOError);
}

TEST(FaultTest, HeapFilePropagates) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  HeapFile heap(&device, DataClass::kBase, &counters);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(heap.Append(Entry{i, i}).ok());
  }
  device.InjectFailureAfter(0);
  EXPECT_EQ(heap.At(0).code(), Code::kIOError);
  EXPECT_EQ(heap.Set(0, Entry{0, 1}).code(), Code::kIOError);
  device.ClearFaults();
  EXPECT_TRUE(heap.At(0).ok());
}

TEST(FaultTest, BTreePropagatesAndRecovers) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  Options options = SmallOptions();
  BTree tree(options, &device);
  std::vector<Entry> entries = MakeSortedEntries(2000);
  ASSERT_TRUE(tree.BulkLoad(entries).ok());

  device.InjectFailureAfter(0);
  EXPECT_EQ(tree.Get(100).code(), Code::kIOError);
  std::vector<Entry> out;
  EXPECT_EQ(tree.Scan(0, 100, &out).code(), Code::kIOError);

  device.ClearFaults();
  EXPECT_EQ(tree.Get(100).value(), ValueFor(100));
}

TEST(FaultTest, LsmReadPathPropagates) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  Options options = SmallOptions();
  options.lsm.bloom_bits_per_key = 0;  // Force page reads.
  LsmTree tree(options, &device);
  for (Key k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree.Insert(k, k).ok());
  }
  ASSERT_TRUE(tree.Flush().ok());
  device.InjectFailureAfter(0);
  EXPECT_EQ(tree.Get(500).code(), Code::kIOError);
  device.ClearFaults();
  EXPECT_TRUE(tree.Get(500).ok());
}

TEST(FaultTest, MidBulkLoadFailureSurfaces) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  Options options = SmallOptions();
  SortedColumn column(options, &device);
  std::vector<Entry> entries = MakeSortedEntries(5000);
  device.InjectFailureAfter(10);
  Status s = column.BulkLoad(entries);
  EXPECT_EQ(s.code(), Code::kIOError);
}

}  // namespace
}  // namespace rum

// Chaos tier: every factory method is driven over a fault-injecting device
// stack (BlockDevice -> FaultyDevice -> CachingDevice) under seeded fault
// plans, and checked against an oracle for the only two acceptable
// behaviors: the exact right answer, or an explicit error Status. Silently
// wrong answers -- and crashes -- fail the tier. Fault decisions are pure
// functions of (seed, op class, attempt index), so every scenario here
// replays byte-identically; one test asserts exactly that.
#include <gtest/gtest.h>

#include <array>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "methods/factory.h"
#include "methods/lsm/compaction_policy.h"
#include "service/open_loop.h"
#include "methods/lsm/lsm_tree.h"
#include "storage/block_device.h"
#include "storage/caching_device.h"
#include "storage/faulty_device.h"
#include "storage/retry_device.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"
#include "workload/runner.h"

namespace rum {
namespace {

using testing_util::ReferenceModel;
using testing_util::SmallOptions;

constexpr uint64_t kChaosSeed = 0xC4A05ULL;

/// One method's device stack for chaos runs. The cache is deliberately tiny
/// so evictions and write-backs keep crossing the faulty layer.
struct ChaosStack {
  RumCounters counters;
  BlockDevice base;
  FaultyDevice faulty;
  CachingDevice cache;

  explicit ChaosStack(size_t block_size = 512, size_t cache_pages = 8)
      : base(block_size, &counters),
        faulty(&base),
        cache(&faulty, cache_pages) {}
};

bool IsExplicitFailure(Code code) {
  return code == Code::kIOError || code == Code::kCorruption;
}

/// Loads `n` keys clean (no faults armed) and flushes. Returns false if the
/// method rejected the load (a test bug, not a chaos finding).
bool LoadClean(AccessMethod* method, ReferenceModel* reference, Key n) {
  for (Key k = 0; k < n; ++k) {
    if (!method->Insert(k, ValueFor(k)).ok()) return false;
    reference->Insert(k, ValueFor(k));
  }
  return method->Flush().ok();
}

// ----------------------------------------------------------------- Reads

// Read-phase chaos: with only read-class faults armed, a query can never
// mutate anything, so the oracle is exact -- every ok Get/Scan must match
// the reference bit for bit, every failure must be an explicit error, and
// after the plan clears the method must answer exactly again.
TEST(ChaosTest, ReadFaultsAreExactOrExplicitForEveryMethod) {
  constexpr Key kKeys = 400;
  uint64_t total_faulted = 0;
  for (std::string_view name : AllAccessMethodNames()) {
    ChaosStack stack;
    Options options = SmallOptions();
    auto method = MakeAccessMethod(name, options, &stack.cache);
    ASSERT_NE(method, nullptr) << name;
    ReferenceModel reference;
    ASSERT_TRUE(LoadClean(method.get(), &reference, kKeys)) << name;

    stack.faulty.SetPlan(FaultPlan::Transient(kChaosSeed, 0.0)
                             .WithRate(FaultOp::kRead, 0.25)
                             .WithRate(FaultOp::kPin, 0.25));
    for (Key k = 0; k < kKeys; k += 3) {
      Result<Value> r = method->Get(k);
      if (r.ok()) {
        EXPECT_EQ(r.value(), ValueFor(k)) << name << " key " << k;
      } else {
        EXPECT_TRUE(r.code() == Code::kNotFound ? false
                                                : IsExplicitFailure(r.code()))
            << name << " key " << k << ": " << r.status().ToString();
        ++total_faulted;
      }
      std::vector<Entry> out;
      Status s = method->Scan(k, k + 10, &out);
      if (s.ok()) {
        std::vector<Entry> expected = reference.Scan(k, k + 10);
        ASSERT_EQ(out.size(), expected.size()) << name << " scan at " << k;
        for (size_t i = 0; i < out.size(); ++i) {
          EXPECT_EQ(out[i].key, expected[i].key) << name;
          EXPECT_EQ(out[i].value, expected[i].value) << name;
        }
      } else {
        EXPECT_TRUE(IsExplicitFailure(s.code()))
            << name << " scan at " << k << ": " << s.ToString();
        ++total_faulted;
      }
    }

    stack.faulty.ClearFaults();
    for (Key k = 0; k < kKeys; k += 3) {
      EXPECT_TRUE(testing_util::GetMatchesReference(method.get(), reference,
                                                    k))
          << name;
    }
  }
  EXPECT_GT(total_faulted, 0u);  // The chaos was real.
}

// -------------------------------------------------------------- Mutations

// Mutation-phase chaos: write/allocate faults can interrupt multi-page
// reorganizations (splits, cascades, merges), so acknowledged-ok data may
// legitimately be lost once a mutation has faulted. What must still hold:
//  - an ok Get returns a value that was actually written for that key at
//    some point (values are key-tagged, so cross-key mixups are caught);
//  - NotFound is only acceptable for keys never certainly inserted, keys
//    with a delete attempt, or after some mutation fault occurred;
//  - everything else is an explicit error Status -- never garbage, never a
//    crash.
TEST(ChaosTest, MutationFaultsNeverProduceUnwrittenValues) {
  constexpr Key kLoaded = 200;
  constexpr int kOps = 300;
  uint64_t total_faulted = 0;
  for (std::string_view name : AllAccessMethodNames()) {
    ChaosStack stack;
    Options options = SmallOptions();
    auto method = MakeAccessMethod(name, options, &stack.cache);
    ASSERT_NE(method, nullptr) << name;
    ReferenceModel reference;
    ASSERT_TRUE(LoadClean(method.get(), &reference, kLoaded)) << name;

    std::map<Key, std::set<Value>> history;
    std::set<Key> delete_attempted;
    for (Key k = 0; k < kLoaded; ++k) history[k].insert(ValueFor(k));

    stack.faulty.SetPlan(FaultPlan::Transient(kChaosSeed + 1, 0.0)
                             .WithRate(FaultOp::kWrite, 0.08)
                             .WithRate(FaultOp::kAllocate, 0.08));
    Rng rng(kChaosSeed + 2);
    bool mutation_faulted = false;
    for (int i = 0; i < kOps; ++i) {
      Key k = static_cast<Key>(rng.NextBelow(kLoaded * 2));
      double dice = rng.NextDouble();
      Status s;
      if (dice < 0.5) {
        Value v = ValueFor(k) + 1000000 + static_cast<Value>(i);
        history[k].insert(v);  // Recorded even if the write faults: a torn
                               // reorganization may still surface it.
        s = method->Insert(k, v);
      } else if (dice < 0.75) {
        delete_attempted.insert(k);
        s = method->Delete(k);
      } else {
        Result<Value> r = method->Get(k);
        s = r.ok() || r.code() == Code::kNotFound ? Status::OK() : r.status();
        if (r.ok()) {
          EXPECT_TRUE(history[k].count(r.value()))
              << name << " key " << k << " returned unwritten value";
        }
      }
      if (!s.ok() && s.code() != Code::kOutOfRange &&
          s.code() != Code::kNotFound) {
        EXPECT_TRUE(IsExplicitFailure(s.code()))
            << name << " op " << i << ": " << s.ToString();
        mutation_faulted = true;
        ++total_faulted;
      }
    }

    stack.faulty.ClearFaults();
    for (const auto& [k, values] : history) {
      Result<Value> r = method->Get(k);
      if (r.ok()) {
        EXPECT_TRUE(values.count(r.value()))
            << name << " key " << k << " returned unwritten value "
            << r.value();
      } else if (r.code() == Code::kNotFound) {
        EXPECT_TRUE(values.empty() || delete_attempted.count(k) ||
                    mutation_faulted)
            << name << " key " << k
            << " vanished with no delete and no mutation fault";
      } else {
        EXPECT_TRUE(IsExplicitFailure(r.code()))
            << name << " key " << k << ": " << r.status().ToString();
      }
    }
  }
  EXPECT_GT(total_faulted, 0u);
}

// ------------------------------------------------------------ Torn writes

TEST(ChaosTest, TornWritePoisonsPageUntilFullRewrite) {
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice device(&base);
  PageId p = testing_util::MustAllocate(device, DataClass::kBase);
  std::vector<uint8_t> data(512, 0xAB);
  ASSERT_TRUE(device.Write(p, data).ok());

  // Every write faults and every fault tears.
  device.SetPlan(FaultPlan::Transient(kChaosSeed, 0.0)
                     .WithRate(FaultOp::kWrite, 1.0)
                     .WithTornWrites(1.0, 64));
  std::vector<uint8_t> update(512, 0xCD);
  EXPECT_EQ(device.Write(p, update).code(), Code::kIOError);
  EXPECT_TRUE(device.page_torn(p));
  EXPECT_EQ(device.torn_writes(), 1u);

  // The checksum model: a torn page reads as corruption, not as bytes.
  std::vector<uint8_t> out;
  Status s = device.Read(p, &out);
  EXPECT_EQ(s.code(), Code::kCorruption);
  EXPECT_NE(s.message().find("page=" + std::to_string(p)), std::string::npos);
  PageReadGuard guard;
  EXPECT_EQ(device.PinForRead(p, &guard).code(), Code::kCorruption);

  // A full successful rewrite restores the page.
  device.ClearFaults();
  ASSERT_TRUE(device.Write(p, update).ok());
  EXPECT_FALSE(device.page_torn(p));
  ASSERT_TRUE(device.Read(p, &out).ok());
  EXPECT_EQ(out, update);
}

TEST(ChaosTest, TornDirtyReleasePoisonsInPlace) {
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice device(&base);
  PageId p = testing_util::MustAllocate(device, DataClass::kBase);
  device.SetPlan(FaultPlan::Transient(kChaosSeed, 0.0)
                     .WithRate(FaultOp::kWrite, 1.0)
                     .WithTornWrites(1.0, 32));
  PageWriteGuard guard;
  ASSERT_TRUE(device.PinForWrite(p, &guard).ok());
  std::fill(guard.bytes().begin(), guard.bytes().end(), 0x11);
  guard.MarkDirty();
  EXPECT_EQ(guard.Release().code(), Code::kIOError);
  EXPECT_TRUE(device.page_torn(p));
  std::vector<uint8_t> out;
  EXPECT_EQ(device.Read(p, &out).code(), Code::kCorruption);
  // Reallocation hands the id back zeroed and clean.
  ASSERT_TRUE(device.Free(p).ok());
  device.ClearFaults();
  PageId q = testing_util::MustAllocate(device, DataClass::kBase);
  EXPECT_EQ(q, p);  // Recycled.
  EXPECT_FALSE(device.page_torn(q));
  EXPECT_TRUE(device.Read(q, &out).ok());
}

// ----------------------------------------------------------------- Crash

// Crash at a flush boundary: everything acknowledged and flushed must
// survive a cache-and-below crash exactly; the cache must come back empty;
// abandoned pin guards must release as no-ops.
TEST(ChaosTest, CrashAfterFlushRecoversExactlyForEveryMethod) {
  constexpr Key kKeys = 300;
  for (std::string_view name : AllAccessMethodNames()) {
    ChaosStack stack;
    Options options = SmallOptions();
    auto method = MakeAccessMethod(name, options, &stack.cache);
    ASSERT_NE(method, nullptr) << name;
    ReferenceModel reference;
    ASSERT_TRUE(LoadClean(method.get(), &reference, kKeys)) << name;
    ASSERT_TRUE(stack.cache.FlushAll().ok()) << name;

    stack.cache.Crash();
    EXPECT_EQ(stack.cache.cached_pages(), 0u) << name;
    EXPECT_EQ(stack.cache.pinned_pages(), 0u) << name;

    for (Key k = 0; k < kKeys; k += 5) {
      EXPECT_TRUE(testing_util::GetMatchesReference(method.get(), reference,
                                                    k))
          << name << " after crash";
    }
    std::vector<Entry> out;
    ASSERT_TRUE(method->Scan(0, kKeys, &out).ok()) << name;
    EXPECT_EQ(out.size(), reference.Scan(0, kKeys).size()) << name;
  }
}

TEST(ChaosTest, CrashAbandonsOpenPinsWithoutDamage) {
  ChaosStack stack;
  PageId p = testing_util::MustAllocate(stack.cache, DataClass::kBase);
  std::vector<uint8_t> data(512, 0x42);
  ASSERT_TRUE(stack.cache.Write(p, data).ok());
  PageReadGuard read_guard;
  ASSERT_TRUE(stack.cache.PinForRead(p, &read_guard).ok());
  PageWriteGuard write_guard;
  ASSERT_TRUE(stack.cache.PinForWrite(p, &write_guard).ok());
  write_guard.MarkDirty();

  stack.cache.Crash();
  // Late releases of pre-crash guards are tolerated no-ops.
  read_guard.Release();
  EXPECT_TRUE(write_guard.Release().ok());
  EXPECT_EQ(stack.cache.pinned_pages(), 0u);
  EXPECT_EQ(stack.faulty.pinned_pages(), 0u);
}

// Dirty state that never reached the bottom is gone after a crash -- and
// that must be *visible* (stale pre-image), never a half-written block.
TEST(ChaosTest, CrashDropsUnflushedDirtyState) {
  ChaosStack stack;
  PageId p = testing_util::MustAllocate(stack.cache, DataClass::kBase);
  std::vector<uint8_t> v1(512, 0x01);
  ASSERT_TRUE(stack.cache.Write(p, v1).ok());
  ASSERT_TRUE(stack.cache.FlushAll().ok());
  std::vector<uint8_t> v2(512, 0x02);
  ASSERT_TRUE(stack.cache.Write(p, v2).ok());  // Dirty in cache only.

  stack.cache.Crash();
  std::vector<uint8_t> out;
  ASSERT_TRUE(stack.cache.Read(p, &out).ok());
  EXPECT_EQ(out, v1);  // The durable pre-image, exactly.
}

// ------------------------------------------------- Auxiliary-MO ledger

// The LSM's memory ledger under chaos: at all times, (1) the base device's
// charged space is exactly the pages held by live runs -- a fault-aborted
// run build or an early-failed Destroy must leak or double-free nothing --
// and (2) the tree's own charged space is exactly its in-memory terms
// (memtable + fences + filters + index segments). Pre-fix, an aborted
// Build leaked its just-allocated page and an early-failed Destroy leaked
// remaining pages plus the fence charge forever.
TEST(ChaosTest, LsmLedgerConservesAcrossFaultsAndCrash) {
  ChaosStack stack;
  Options options = SmallOptions();
  options.lsm.cross_run_index = true;
  LsmTree tree(options, &stack.cache);
  auto check = [&](const char* when) {
    // Flush cached state so the base device's space charges are current
    // (allocations pass through; only data bytes are deferred).
    LsmMemoryFootprint fp = tree.MemoryFootprint();
    EXPECT_EQ(stack.counters.snapshot().total_space(), fp.run_page_bytes)
        << when;
    EXPECT_EQ(tree.stats().total_space(),
              fp.memtable_bytes + fp.fence_bytes + fp.filter_bytes +
                  fp.index_bytes)
        << when;
  };
  for (Key k = 0; k < 600; ++k) {
    ASSERT_TRUE(tree.Insert(k, ValueFor(k)).ok());
  }
  std::vector<Entry> scanned;
  ASSERT_TRUE(tree.Scan(0, 600, &scanned).ok());  // Charges index segments.
  check("clean load");

  // Fault storm: allocation and write faults abort run builds and
  // invalidate compactions mid-merge; every failure must be explicit and
  // must leave the ledger exact.
  stack.faulty.SetPlan(FaultPlan::Transient(kChaosSeed + 11, 0.0)
                           .WithRate(FaultOp::kWrite, 0.2)
                           .WithRate(FaultOp::kAllocate, 0.1));
  uint64_t failed = 0;
  for (Key k = 600; k < 1400; ++k) {
    Status s = tree.Insert(k, ValueFor(k));
    if (!s.ok()) {
      EXPECT_TRUE(IsExplicitFailure(s.code())) << s.ToString();
      ++failed;
      check("mid-storm failure");
    }
  }
  EXPECT_GT(failed, 0u) << "storm never bit; the regression went untested";
  stack.faulty.ClearFaults();
  check("after storm");

  // Crash the cache: runs' pages live at the base and stay charged; the
  // tree's in-memory terms (fences/filters/index) survive untouched.
  stack.cache.Crash();
  check("after crash");

  // Post-crash operation: compactions may read lost pages and fail
  // explicitly, but the ledger stays conserved either way.
  for (Key k = 1400; k < 1700; ++k) {
    Status s = tree.Insert(k, ValueFor(k));
    if (!s.ok()) {
      EXPECT_TRUE(IsExplicitFailure(s.code())) << s.ToString();
    }
  }
  check("post-crash writes");
}

// ------------------------------------------------------- Eviction faults

// The cache must stay bounded under repeated write-back faults: once every
// resident page is dirty and unwritable, further inserts FAIL rather than
// grow the cache, and clearing the fault drains the backlog.
TEST(ChaosTest, CacheStaysBoundedUnderRepeatedWriteBackFaults) {
  constexpr size_t kCapacity = 4;
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice faulty(&base);
  CachingDevice cache(&faulty, kCapacity);
  std::vector<uint8_t> data(512, 0xEE);

  faulty.SetPlan(FaultPlan::Transient(kChaosSeed + 3, 0.0)
                     .WithRate(FaultOp::kWrite, 1.0));
  std::vector<PageId> cached, rejected;
  for (int i = 0; i < 32; ++i) {
    PageId p = testing_util::MustAllocate(cache, DataClass::kBase);
    Status s = cache.Write(p, data);
    if (s.ok()) {
      cached.push_back(p);
    } else {
      EXPECT_EQ(s.code(), Code::kIOError) << s.ToString();
      rejected.push_back(p);
    }
    ASSERT_LE(cache.cached_pages(), kCapacity) << "cache grew unboundedly";
  }
  // The first kCapacity writes filled the cache; every later insert needed
  // an eviction, every eviction needed a write-back, and every write-back
  // faulted -- so exactly the rest were rejected.
  EXPECT_EQ(cached.size(), kCapacity);
  EXPECT_EQ(rejected.size(), 32u - kCapacity);
  EXPECT_EQ(cache.cached_pages(), kCapacity);
  EXPECT_GT(cache.write_back_failures(), 0u);
  EXPECT_EQ(cache.evictions(), 0u);

  // Clearing the fault drains the dirty backlog and restores service.
  faulty.ClearFaults();
  ASSERT_TRUE(cache.FlushAll().ok());
  std::vector<uint8_t> out;
  for (PageId p : cached) {
    ASSERT_TRUE(base.Read(p, &out).ok());
    EXPECT_EQ(out, data);  // The retained dirty bytes, now durable.
  }
  PageId p = testing_util::MustAllocate(cache, DataClass::kBase);
  EXPECT_TRUE(cache.Write(p, data).ok());  // Evictions work again.
}

// A single unwritable dirty victim -- or a pinned one -- must not wedge
// eviction while clean victims exist: the sweep skips it and keeps serving.
TEST(ChaosTest, UnwritableOrPinnedDirtyVictimDoesNotWedgeEviction) {
  constexpr size_t kCapacity = 4;
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice faulty(&base);
  CachingDevice cache(&faulty, kCapacity);

  std::vector<PageId> pages;
  std::vector<uint8_t> clean(512, 0x01);
  for (int i = 0; i < 12; ++i) {
    PageId p = testing_util::MustAllocate(cache, DataClass::kBase);
    ASSERT_TRUE(cache.Write(p, clean).ok());
    pages.push_back(p);
  }
  ASSERT_TRUE(cache.FlushAll().ok());  // Everything durable and clean.

  // Dirty one resident page, then make every write-back fail.
  std::vector<uint8_t> dirty(512, 0xD1);
  ASSERT_TRUE(cache.Write(pages[0], dirty).ok());
  faulty.SetPlan(FaultPlan::Transient(kChaosSeed + 4, 0.0)
                     .WithRate(FaultOp::kWrite, 1.0));

  // Read-miss traffic across the other pages: each miss inserts a clean
  // entry, so eviction keeps finding clean victims past the stuck page.
  // Before the skip-and-continue sweep this wedged on the dirty LRU tail.
  std::vector<uint8_t> out;
  for (int round = 0; round < 3; ++round) {
    for (size_t i = 1; i < pages.size(); ++i) {
      ASSERT_TRUE(cache.Read(pages[i], &out).ok())
          << "round " << round << " page " << pages[i];
      ASSERT_LE(cache.cached_pages(), kCapacity);
    }
  }
  EXPECT_GT(cache.write_back_failures(), 0u);
  EXPECT_GT(cache.evictions(), 0u);  // Clean victims kept moving.

  // The stuck page still serves its unflushed contents from cache...
  ASSERT_TRUE(cache.Read(pages[0], &out).ok());
  EXPECT_EQ(out, dirty);
  // ...and a pinned page is likewise skipped, not spun on.
  PageWriteGuard guard;
  ASSERT_TRUE(cache.PinForWrite(pages[1], &guard).ok());
  std::fill(guard.bytes().begin(), guard.bytes().end(), 0x77);
  guard.MarkDirty();
  for (size_t i = 2; i < 8; ++i) {
    ASSERT_TRUE(cache.Read(pages[i], &out).ok());
  }
  ASSERT_TRUE(guard.Release().ok());  // Stays cached: release defers the
                                      // failed write-back, never loses it.

  // Fault gone: the whole backlog (stuck page + pinned mutation) flushes.
  faulty.ClearFaults();
  ASSERT_TRUE(cache.FlushAll().ok());
  ASSERT_TRUE(base.Read(pages[0], &out).ok());
  EXPECT_EQ(out, dirty);
  ASSERT_TRUE(base.Read(pages[1], &out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(512, 0x77));
}

// ----------------------------------------------------------------- Retry

TEST(ChaosTest, RetryingDeviceHealsTransientsAndChargesCounters) {
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice faulty(&base);
  Options options;
  options.storage.retry.max_attempts = 16;
  options.storage.retry.backoff_base_us = 10;
  RetryingDevice device(&faulty, options, &counters);

  faulty.SetPlan(FaultPlan::Transient(kChaosSeed, 0.0)
                     .WithRate(FaultOp::kRead, 0.5)
                     .WithRate(FaultOp::kWrite, 0.5)
                     .WithRate(FaultOp::kAllocate, 0.5));
  std::vector<uint8_t> data(512, 0x77);
  std::vector<uint8_t> out;
  uint64_t healed = 0;
  for (int i = 0; i < 50; ++i) {
    PageId p;
    ASSERT_TRUE(device.Allocate(DataClass::kBase, &p).ok());
    ASSERT_TRUE(device.Write(p, data).ok());
    ASSERT_TRUE(device.Read(p, &out).ok());
    EXPECT_EQ(out, data);
  }
  CounterSnapshot snap = counters.snapshot();
  healed = snap.retries;
  EXPECT_GT(snap.io_errors, 0u);
  EXPECT_GT(snap.retries, 0u);
  EXPECT_GE(snap.io_errors, snap.retries);  // Every retry follows an error.
  EXPECT_GT(device.simulated_backoff_us(), 0u);

  // kCorruption is never retried: a torn page stays corrupt.
  PageId p;
  faulty.ClearFaults();
  ASSERT_TRUE(device.Allocate(DataClass::kBase, &p).ok());
  faulty.SetPlan(FaultPlan::Transient(kChaosSeed, 0.0)
                     .WithRate(FaultOp::kWrite, 1.0)
                     .WithTornWrites(1.0, 16));
  EXPECT_FALSE(device.Write(p, data).ok());
  ASSERT_TRUE(faulty.page_torn(p));
  uint64_t retries_before = counters.snapshot().retries;
  EXPECT_EQ(device.Read(p, &out).code(), Code::kCorruption);
  EXPECT_EQ(counters.snapshot().retries, retries_before);  // No retry.
  EXPECT_GT(healed, 0u);
}

// Retry accounting replays exactly: two identical stacks under the same
// seeded plan charge identical io_errors/retries/backoff, io_errors equals
// the faults the faulty layer injected, and io_errors - retries equals the
// operations that ultimately failed with kIOError.
TEST(ChaosTest, RetryAccountingMatchesDeterministicReplay) {
  auto run_once = [](CounterSnapshot* snap, uint64_t* injected,
                     uint64_t* backoff, uint64_t* failed_ops) {
    RumCounters counters;
    BlockDevice base(512, &counters);
    FaultyDevice faulty(&base);
    Options options;
    options.storage.retry.max_attempts = 3;
    options.storage.retry.backoff_base_us = 7;
    RetryingDevice device(&faulty, options, &counters);

    std::vector<PageId> pages;
    for (int i = 0; i < 30; ++i) {
      pages.push_back(testing_util::MustAllocate(device, DataClass::kBase));
    }
    faulty.SetPlan(FaultPlan::Transient(kChaosSeed + 11, 0.0)
                       .WithRate(FaultOp::kRead, 0.45)
                       .WithRate(FaultOp::kWrite, 0.45));
    std::vector<uint8_t> data(512, 0x21);
    std::vector<uint8_t> out;
    *failed_ops = 0;
    for (PageId p : pages) {
      // A real retry budget (3 attempts) that never heals surfaces as the
      // terminal kUnavailable, not the per-attempt kIOError.
      Status w = device.Write(p, data);
      if (!w.ok()) {
        EXPECT_EQ(w.code(), Code::kUnavailable) << w.ToString();
        ++*failed_ops;
      }
      Status r = device.Read(p, &out);
      if (!r.ok()) {
        EXPECT_EQ(r.code(), Code::kUnavailable) << r.ToString();
        ++*failed_ops;
      }
    }
    *snap = counters.snapshot();
    *injected = faulty.faults_injected();
    *backoff = device.simulated_backoff_us();
  };

  CounterSnapshot s1, s2;
  uint64_t inj1 = 0, inj2 = 0, bo1 = 0, bo2 = 0, fail1 = 0, fail2 = 0;
  run_once(&s1, &inj1, &bo1, &fail1);
  run_once(&s2, &inj2, &bo2, &fail2);

  EXPECT_GT(s1.retries, 0u);
  EXPECT_GT(fail1, 0u);
  EXPECT_EQ(s1.io_errors, s2.io_errors);
  EXPECT_EQ(s1.retries, s2.retries);
  EXPECT_EQ(inj1, inj2);
  EXPECT_EQ(bo1, bo2);
  EXPECT_EQ(fail1, fail2);
  // The ledger closes: every injected fault is one io_errors tick, and the
  // ticks not covered by a retry are exactly the ops that surfaced failure.
  EXPECT_EQ(s1.io_errors, inj1);
  EXPECT_EQ(s1.io_errors - s1.retries, fail1);
}

// ----------------------------------------------------- Runner error modes

WorkloadSpec ChaosSpec(ErrorMode mode) {
  WorkloadSpec spec;
  spec.operations = 600;
  spec.key_range = 1 << 10;
  spec.insert_fraction = 0.4;
  spec.update_fraction = 0.1;
  spec.delete_fraction = 0.1;
  spec.scan_fraction = 0.05;
  spec.seed = kChaosSeed;
  spec.error_mode = mode;
  return spec;
}

FaultPlan RunnerPlan() {
  return FaultPlan::Transient(kChaosSeed + 7, 0.0)
      .WithRate(FaultOp::kRead, 0.05)
      .WithRate(FaultOp::kWrite, 0.05)
      .WithRate(FaultOp::kAllocate, 0.05);
}

TEST(ChaosTest, RunnerAbortModeSurfacesTheFault) {
  ChaosStack stack;
  auto method = MakeAccessMethod("btree", SmallOptions(), &stack.cache);
  ASSERT_NE(method, nullptr);
  stack.faulty.SetPlan(RunnerPlan());
  Result<RumProfile> r =
      WorkloadRunner::Run(method.get(), ChaosSpec(ErrorMode::kAbort));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(IsExplicitFailure(r.code())) << r.status().ToString();
}

TEST(ChaosTest, RunnerSkipAndCountAbsorbsAndTallies) {
  ChaosStack stack;
  auto method = MakeAccessMethod("btree", SmallOptions(), &stack.cache);
  ASSERT_NE(method, nullptr);
  stack.faulty.SetPlan(RunnerPlan());
  Result<RumProfile> r =
      WorkloadRunner::Run(method.get(), ChaosSpec(ErrorMode::kSkipAndCount));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(r.value().worker_errors.size(), 1u);
  EXPECT_GT(r.value().errors().failed(), 0u);
  EXPECT_EQ(r.value().errors().degraded_skips, 0u);
}

TEST(ChaosTest, RunnerDegradeModeStopsMutatingAfterFirstError) {
  ChaosStack stack;
  auto method = MakeAccessMethod("btree", SmallOptions(), &stack.cache);
  ASSERT_NE(method, nullptr);
  stack.faulty.SetPlan(RunnerPlan());
  Result<RumProfile> r =
      WorkloadRunner::Run(method.get(), ChaosSpec(ErrorMode::kDegrade));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ErrorTally tally = r.value().errors();
  EXPECT_GT(tally.failed(), 0u);
  EXPECT_GT(tally.degraded_skips, 0u);
}

// ---------------------------------------------------- Deterministic replay

// The whole point of seeded fault draws: two identical stacks running the
// same serial workload under the same plan inject identical faults, absorb
// identical errors, and end with byte-identical RUM traffic.
TEST(ChaosTest, SameSeedReplaysIdenticalErrorTallies) {
  auto run_once = [](ErrorTally* tally, CounterSnapshot* snap,
                     std::array<uint64_t, kFaultOpCount>* injected) {
    ChaosStack stack;
    auto method = MakeAccessMethod("btree", SmallOptions(), &stack.cache);
    ASSERT_NE(method, nullptr);
    stack.faulty.SetPlan(RunnerPlan());
    Result<RumProfile> r = WorkloadRunner::Run(
        method.get(), ChaosSpec(ErrorMode::kSkipAndCount));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    *tally = r.value().errors();
    *snap = stack.counters.snapshot();
    for (size_t i = 0; i < kFaultOpCount; ++i) {
      (*injected)[i] = stack.faulty.faults_injected(static_cast<FaultOp>(i));
    }
  };

  ErrorTally t1, t2;
  CounterSnapshot s1, s2;
  std::array<uint64_t, kFaultOpCount> i1{}, i2{};
  run_once(&t1, &s1, &i1);
  run_once(&t2, &s2, &i2);

  EXPECT_GT(t1.failed(), 0u);
  EXPECT_EQ(t1.io_errors, t2.io_errors);
  EXPECT_EQ(t1.corruption, t2.corruption);
  EXPECT_EQ(t1.other, t2.other);
  EXPECT_EQ(i1, i2);
  EXPECT_EQ(s1.blocks_read, s2.blocks_read);
  EXPECT_EQ(s1.blocks_written, s2.blocks_written);
  EXPECT_EQ(s1.bytes_read_base, s2.bytes_read_base);
  EXPECT_EQ(s1.bytes_written_base, s2.bytes_written_base);
  EXPECT_EQ(s1.io_errors, s2.io_errors);
}

// ----------------------------------------- New compaction policies

// The lazy-leveling and hybrid policies run multi-run merges, bottom-level
// normalization, and free run relocation that the classic policies never
// exercise; this section drives exactly those paths under chaos. (The
// name-list tests above already cover lsm-lazy/lsm-hybrid for the generic
// contracts; these pin the policy-specific structure.)

constexpr std::string_view kNewPolicyNames[] = {"lsm-lazy", "lsm-hybrid"};

// Write/allocate faults landing inside a flush cascade may abort a merge
// half-way. Acceptable outcomes are the usual two (right answer or explicit
// error) -- and once the plan clears, a single clean flush must restore
// every structural invariant the policy promises.
TEST(ChaosTest, NewPoliciesRestoreInvariantsAfterCompactionFaults) {
  for (std::string_view name : kNewPolicyNames) {
    ChaosStack stack;
    Options options = SmallOptions();
    auto method = MakeAccessMethod(name, options, &stack.cache);
    ASSERT_NE(method, nullptr) << name;
    auto* tree = dynamic_cast<LsmTree*>(method.get());
    ASSERT_NE(tree, nullptr) << name;
    ReferenceModel reference;
    ASSERT_TRUE(LoadClean(method.get(), &reference, 300)) << name;

    stack.faulty.SetPlan(FaultPlan::Transient(kChaosSeed + 20, 0.0)
                             .WithRate(FaultOp::kWrite, 0.10)
                             .WithRate(FaultOp::kAllocate, 0.10));
    uint64_t mutation_faults = 0;
    for (Key k = 300; k < 800; ++k) {
      Status s = method->Insert(k, ValueFor(k));
      if (!s.ok()) {
        EXPECT_TRUE(IsExplicitFailure(s.code()))
            << name << " key " << k << ": " << s.ToString();
        ++mutation_faults;
      }
    }
    EXPECT_GT(mutation_faults, 0u) << name << ": the chaos was real";

    // Clear the plan and push one clean memtable through: the cascade
    // walks every level, so any level a faulted merge left over-full is
    // re-merged and the policy's bounds hold again.
    stack.faulty.ClearFaults();
    for (Key k = 0; k < options.lsm.memtable_entries; ++k) {
      ASSERT_TRUE(method->Insert(k, ValueFor(k)).ok()) << name;
    }
    const CompactionPolicy& policy = tree->policy();
    for (size_t level = 0; level < tree->level_count(); ++level) {
      EXPECT_LE(tree->runs_at(level), policy.MaxRunsAt(level, *tree))
          << name << " level " << level << " after recovery flush";
    }
    // And reads are sane again: a merge a fault aborted may legitimately
    // have lost acknowledged data (the tier's documented contract), but an
    // ok Get must return the exact key-tagged value -- never garbage, and
    // never a non-explicit error now that the plan is clear.
    size_t survivors = 0;
    for (Key k = 0; k < 300; k += 7) {
      Result<Value> r = method->Get(k);
      if (r.ok()) {
        EXPECT_EQ(r.value(), ValueFor(k)) << name << " key " << k;
        ++survivors;
      } else {
        EXPECT_EQ(r.code(), Code::kNotFound)
            << name << " key " << k << ": " << r.status().ToString();
      }
    }
    EXPECT_GT(survivors, 0u) << name;
  }
}

// Crash() drops the cache mid-life; the recovered tree must answer exactly
// and keep compacting correctly -- post-crash inserts drive fresh cascades
// (including lazy normalization and hybrid's tiered-to-leveled handoff)
// over the recovered runs.
TEST(ChaosTest, NewPoliciesCompactCorrectlyAcrossCrash) {
  for (std::string_view name : kNewPolicyNames) {
    ChaosStack stack;
    Options options = SmallOptions();
    auto method = MakeAccessMethod(name, options, &stack.cache);
    ASSERT_NE(method, nullptr) << name;
    auto* tree = dynamic_cast<LsmTree*>(method.get());
    ASSERT_NE(tree, nullptr) << name;
    ReferenceModel reference;
    ASSERT_TRUE(LoadClean(method.get(), &reference, 400)) << name;
    ASSERT_TRUE(stack.cache.FlushAll().ok()) << name;
    uint64_t flushes_before = tree->flushes();

    stack.cache.Crash();
    EXPECT_EQ(stack.cache.cached_pages(), 0u) << name;

    for (Key k = 0; k < 400; k += 5) {
      EXPECT_TRUE(testing_util::GetMatchesReference(method.get(), reference,
                                                    k))
          << name << " after crash";
    }
    // Keep writing through several more flush cascades over the recovered
    // structure, then verify the policy's invariants and the data.
    for (Key k = 400; k < 700; ++k) {
      ASSERT_TRUE(method->Insert(k, ValueFor(k)).ok()) << name;
      reference.Insert(k, ValueFor(k));
    }
    ASSERT_TRUE(method->Flush().ok()) << name;
    EXPECT_GT(tree->flushes(), flushes_before) << name;
    const CompactionPolicy& policy = tree->policy();
    for (size_t level = 0; level < tree->level_count(); ++level) {
      EXPECT_LE(tree->runs_at(level), policy.MaxRunsAt(level, *tree))
          << name << " level " << level << " post-crash compaction";
    }
    for (Key k = 0; k < 700; k += 5) {
      EXPECT_TRUE(testing_util::GetMatchesReference(method.get(), reference,
                                                    k))
          << name << " post-crash compaction";
    }
  }
}

// Same seed, same policy, same plan: two runs inject identical faults and
// end with byte-identical traffic -- the new policies' merge scheduling
// must be as deterministic as everything else in the tier.
TEST(ChaosTest, NewPoliciesReplayIdenticallyUnderFaults) {
  for (std::string_view name : kNewPolicyNames) {
    auto run_once = [&](ErrorTally* tally, CounterSnapshot* snap,
                        uint64_t* flushes, uint64_t* compactions) {
      ChaosStack stack;
      auto method = MakeAccessMethod(name, SmallOptions(), &stack.cache);
      ASSERT_NE(method, nullptr) << name;
      auto* tree = dynamic_cast<LsmTree*>(method.get());
      ASSERT_NE(tree, nullptr) << name;
      stack.faulty.SetPlan(FaultPlan::Transient(kChaosSeed + 21, 0.0)
                               .WithRate(FaultOp::kRead, 0.03)
                               .WithRate(FaultOp::kWrite, 0.03)
                               .WithRate(FaultOp::kAllocate, 0.03));
      Result<RumProfile> r = WorkloadRunner::Run(
          method.get(), ChaosSpec(ErrorMode::kSkipAndCount));
      ASSERT_TRUE(r.ok()) << name << ": " << r.status().ToString();
      *tally = r.value().errors();
      *snap = stack.counters.snapshot();
      *flushes = tree->flushes();
      *compactions = tree->compactions();
    };

    ErrorTally t1, t2;
    CounterSnapshot s1, s2;
    uint64_t f1 = 0, f2 = 0, c1 = 0, c2 = 0;
    run_once(&t1, &s1, &f1, &c1);
    run_once(&t2, &s2, &f2, &c2);

    EXPECT_EQ(t1.io_errors, t2.io_errors) << name;
    EXPECT_EQ(t1.corruption, t2.corruption) << name;
    EXPECT_EQ(f1, f2) << name;
    EXPECT_EQ(c1, c2) << name;
    EXPECT_GT(f1, 0u) << name;
    EXPECT_EQ(s1.blocks_read, s2.blocks_read) << name;
    EXPECT_EQ(s1.blocks_written, s2.blocks_written) << name;
    EXPECT_EQ(s1.bytes_read_base, s2.bytes_read_base) << name;
    EXPECT_EQ(s1.bytes_written_base, s2.bytes_written_base) << name;
    EXPECT_EQ(s1.space_base, s2.space_base) << name;
    EXPECT_EQ(s1.space_aux, s2.space_aux) << name;
  }
}

// ------------------------------------------------------------- Concurrency

// Sharded methods over ONE shared faulty stack under concurrent chaos: the
// run must complete with no crash, no race (TSan tier), and absorbed errors
// in the tallies; after the plan clears, every probe answers exactly or
// explicitly.
TEST(ChaosTest, ConcurrentShardedChaosOverSharedStack) {
  ChaosStack stack(512, 16);
  Options options = SmallOptions();
  auto method =
      MakeAccessMethod("sharded-btree", options, &stack.cache);
  ASSERT_NE(method, nullptr);

  stack.faulty.SetPlan(FaultPlan::Transient(kChaosSeed + 9, 0.0)
                           .WithRate(FaultOp::kRead, 0.02)
                           .WithRate(FaultOp::kWrite, 0.02));
  WorkloadSpec spec = ChaosSpec(ErrorMode::kSkipAndCount);
  spec.concurrency = 4;
  spec.scan_fraction = 0;  // Scans cross shards; keep workers disjoint.
  Result<RumProfile> r = WorkloadRunner::Run(method.get(), spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().worker_errors.size(), 4u);

  stack.faulty.ClearFaults();
  for (Key k = 0; k < 256; ++k) {
    Result<Value> probe = method->Get(k);
    EXPECT_TRUE(probe.ok() || probe.code() == Code::kNotFound ||
                IsExplicitFailure(probe.code()))
        << "key " << k << ": " << probe.status().ToString();
  }
}

// ------------------------------------------------------- Cross-run index

// Index-on and index-off twins driven over separate-but-identical faulty
// stacks with the SAME seed and Write/Allocate-only fault rates. The two
// trees issue identical write traffic (the index changes only reads), so
// the deterministic fault plans make every compaction fail -- or survive --
// identically in both. After the plan clears, the index's incremental
// invalidation must have tracked every partially-failed compaction: scans
// from both twins must be byte-identical, and must agree with point Gets.
TEST(ChaosTest, CrossRunIndexSurvivesCompactionFaults) {
  auto options_for = [](bool cross_run_index) {
    Options options = SmallOptions();
    options.lsm.policy = LsmPolicy::kTiered;
    options.lsm.cross_run_index = cross_run_index;
    options.lsm.cross_run_segment_entries = 32;
    return options;
  };
  ChaosStack on_stack, off_stack;
  LsmTree indexed(options_for(true), &on_stack.cache);
  LsmTree fallback(options_for(false), &off_stack.cache);

  // No read faults: reads are the one place the twins' traffic differs,
  // and a read fault would desynchronize the deterministic plans.
  FaultPlan plan = FaultPlan::Transient(kChaosSeed + 11, 0.0)
                       .WithRate(FaultOp::kWrite, 0.05)
                       .WithRate(FaultOp::kAllocate, 0.05);
  on_stack.faulty.SetPlan(plan);
  off_stack.faulty.SetPlan(plan);

  Rng rng(kChaosSeed + 11);
  const Key kRange = 1u << 11;
  for (int i = 0; i < 1500; ++i) {
    Key key = rng.NextBelow(kRange);
    uint64_t dice = rng.NextBelow(100);
    Status s_on, s_off;
    if (dice < 70) {
      Value v = rng.Next();
      s_on = indexed.Insert(key, v);
      s_off = fallback.Insert(key, v);
    } else {
      s_on = indexed.Delete(key);
      s_off = fallback.Delete(key);
    }
    ASSERT_EQ(s_on.code(), s_off.code())
        << "op " << i << ": twins diverged (on=" << s_on.ToString()
        << ", off=" << s_off.ToString() << ")";
    ASSERT_TRUE(s_on.ok() || IsExplicitFailure(s_on.code()))
        << "op " << i << ": " << s_on.ToString();
    // A couple of mid-faults scans: either both fail explicitly and
    // identically, or both return the same bytes.
    if (i % 500 == 250) {
      std::vector<Entry> a, b;
      Key lo = rng.NextBelow(kRange);
      Status sa = indexed.Scan(lo, lo + 100, &a);
      Status sb = fallback.Scan(lo, lo + 100, &b);
      ASSERT_TRUE(sa.ok() || IsExplicitFailure(sa.code())) << sa.ToString();
      if (sa.ok() && sb.ok()) {
        ASSERT_EQ(a.size(), b.size()) << "op " << i;
      }
    }
  }

  on_stack.faulty.ClearFaults();
  off_stack.faulty.ClearFaults();

  // Steady state after the storm. A failed op may be partially applied
  // (e.g. a Delete whose flush failed still holds its tombstone), so there
  // is no exact external oracle -- the guarantees that DO hold are (1) the
  // twins issued identical write traffic, so their states are identical and
  // scans must be byte-identical, and (2) each tree's scans must agree with
  // its own point Gets.
  Rng probe(kChaosSeed + 12);
  for (int i = 0; i < 40; ++i) {
    Key lo = probe.NextBelow(kRange);
    Key hi = lo + probe.NextBelow(256);
    std::vector<Entry> a, b;
    ASSERT_TRUE(indexed.Scan(lo, hi, &a).ok()) << i;
    ASSERT_TRUE(fallback.Scan(lo, hi, &b).ok()) << i;
    ASSERT_EQ(a.size(), b.size()) << "scan [" << lo << ", " << hi << "]";
    for (size_t j = 0; j < a.size(); ++j) {
      ASSERT_EQ(a[j].key, b[j].key) << j;
      ASSERT_EQ(a[j].value, b[j].value) << j;
    }
    for (const Entry& e : a) {
      Result<Value> got = indexed.Get(e.key);
      ASSERT_TRUE(got.ok()) << "scan returned key " << e.key
                            << " but Get says " << got.status().ToString();
      ASSERT_EQ(got.value(), e.value) << e.key;
    }
  }
}

// Crash recovery: warm the index, crash the cache, and require that scans
// over the recovered pages agree with per-key Gets on the same tree -- the
// index must never serve offsets describing pages the crash rolled back.
TEST(ChaosTest, CrossRunIndexAgreesWithGetsAfterCrash) {
  ChaosStack stack;
  Options options = SmallOptions();
  options.lsm.policy = LsmPolicy::kLazyLeveled;
  options.lsm.cross_run_index = true;
  options.lsm.cross_run_segment_entries = 32;
  LsmTree tree(options, &stack.cache);
  ReferenceModel reference;
  ASSERT_TRUE(LoadClean(&tree, &reference, 600));
  // Warm: build segments against the pre-crash run set.
  std::vector<Entry> warm;
  ASSERT_TRUE(tree.Scan(0, 600, &warm).ok());
  ASSERT_TRUE(stack.cache.FlushAll().ok());

  stack.cache.Crash();

  std::vector<Entry> scanned;
  ASSERT_TRUE(tree.Scan(0, kMaxKey, &scanned).ok());
  // Scan result == { k : Get(k) answers }: same keys, same values.
  std::set<Key> scan_keys;
  for (const Entry& e : scanned) {
    Result<Value> got = tree.Get(e.key);
    ASSERT_TRUE(got.ok()) << "scan returned key " << e.key
                          << " but Get says " << got.status().ToString();
    ASSERT_EQ(got.value(), e.value) << e.key;
    scan_keys.insert(e.key);
  }
  for (Key k = 0; k < 600; ++k) {
    Result<Value> got = tree.Get(k);
    if (got.ok()) {
      ASSERT_TRUE(scan_keys.count(k)) << "Get answers key " << k
                                      << " but scan missed it";
    }
  }
  ASSERT_TRUE(testing_util::ScanMatchesReference(&tree, reference, 0, 600));
}

// ------------------------------------------- Fault storms through the
// service layer

/// Open-loop chaos run: the RunnerPlan fault storm underneath a scheduler
/// driving Poisson arrivals. Returns the full report for ledger and replay
/// assertions.
ServiceReport ServeThroughStorm(ErrorMode mode) {
  ChaosStack stack;
  auto method = MakeAccessMethod("btree", SmallOptions(), &stack.cache);
  EXPECT_NE(method, nullptr);
  stack.faulty.SetPlan(RunnerPlan());
  Options options = SmallOptions();
  options.service.enabled = true;
  options.service.queue_capacity = 64;
  WorkloadSpec spec = ChaosSpec(mode);
  spec.arrival = ArrivalProcess::kPoisson;
  spec.offered_ops_per_sec = 100000;
  Result<ServiceReport> r = RunOpenLoop(method.get(), spec, options);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? r.value() : ServiceReport{};
}

// A fault storm under open-loop arrivals keeps the two chaos guarantees:
// every submitted request resolves to exactly one ledger bucket (no request
// is lost to an error path), and every method failure the scheduler
// absorbed is an explicit, tallied Status -- the same exact-or-explicit
// contract the closed-loop tiers pin.
TEST(ChaosTest, SchedulerFaultStormKeepsLedgerExactAndTalliesExplicitly) {
  ServiceReport report = ServeThroughStorm(ErrorMode::kSkipAndCount);
  const ServiceStats& s = report.stats;
  EXPECT_EQ(s.submitted, 600u);
  EXPECT_EQ(s.submitted, s.completed + s.deadline_missed + s.shed);
  EXPECT_TRUE(s.LedgerHolds());
  // The storm landed: failures were absorbed, counted, and match between
  // the scheduler's books and the workload tally.
  EXPECT_GT(s.failed, 0u);
  EXPECT_EQ(s.failed, report.errors.failed());
  EXPECT_EQ(s.degraded_skips, 0u);
}

// Degraded service inside the scheduler: after the first non-benign
// failure, mutations complete as degraded skips without touching storage,
// and the skips appear in both the ServiceStats ledger and the ErrorTally.
TEST(ChaosTest, SchedulerDegradeModeWithholdsMutationsAfterFirstError) {
  ServiceReport report = ServeThroughStorm(ErrorMode::kDegrade);
  EXPECT_TRUE(report.stats.LedgerHolds());
  EXPECT_GT(report.stats.failed, 0u);
  EXPECT_GT(report.stats.degraded_skips, 0u);
  EXPECT_EQ(report.stats.degraded_skips, report.errors.degraded_skips);
}

// Same seed, same storm, same arrivals: the whole report -- ledger,
// latency summaries, error tally, RUM delta -- replays byte-for-byte.
TEST(ChaosTest, SchedulerFaultStormReplaysByteIdentically) {
  ServiceReport a = ServeThroughStorm(ErrorMode::kSkipAndCount);
  ServiceReport b = ServeThroughStorm(ErrorMode::kSkipAndCount);
  EXPECT_EQ(a.ToJson(), b.ToJson());
}

// Closed-loop differential under the same storm: the service front door
// (Options::service.enabled through the factory) must not change what the
// workload observes -- identical error tallies, identical injected-fault
// counts, byte-identical physical traffic.
TEST(ChaosTest, ServiceFrontDoorIsTransparentUnderFaultStorm) {
  auto run_once = [](bool service_enabled, ErrorTally* tally,
                     CounterSnapshot* snap) {
    ChaosStack stack;
    Options options = SmallOptions();
    options.service.enabled = service_enabled;
    auto method = MakeAccessMethod("btree", options, &stack.cache);
    ASSERT_NE(method, nullptr);
    stack.faulty.SetPlan(RunnerPlan());
    Result<RumProfile> r = WorkloadRunner::Run(
        method.get(), ChaosSpec(ErrorMode::kSkipAndCount));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    *tally = r.value().errors();
    *snap = stack.counters.snapshot();
  };

  ErrorTally direct, fronted;
  CounterSnapshot sd, sf;
  run_once(false, &direct, &sd);
  run_once(true, &fronted, &sf);

  EXPECT_GT(direct.failed(), 0u);
  EXPECT_EQ(direct.io_errors, fronted.io_errors);
  EXPECT_EQ(direct.corruption, fronted.corruption);
  EXPECT_EQ(direct.other, fronted.other);
  EXPECT_EQ(direct.shed, fronted.shed);
  EXPECT_EQ(sd.blocks_read, sf.blocks_read);
  EXPECT_EQ(sd.blocks_written, sf.blocks_written);
  EXPECT_EQ(sd.bytes_read_base, sf.bytes_read_base);
  EXPECT_EQ(sd.bytes_written_base, sf.bytes_written_base);
  EXPECT_EQ(sd.io_errors, sf.io_errors);
}

}  // namespace
}  // namespace rum

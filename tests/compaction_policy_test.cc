// Property/differential tier for the pluggable LSM compaction policies:
// every policy x seed runs a mixed insert/overwrite/delete stream against
// the exact ReferenceModel oracle (Get/Scan/Delete equivalence), and the
// structural invariants each policy promises -- MaxRunsAt respected and
// run sizes within the level's capacity -- are checked after every
// operation, i.e. after every flush the stream triggers.

#include <algorithm>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "methods/factory.h"
#include "methods/lsm/compaction_policy.h"
#include "methods/lsm/lsm_tree.h"
#include "tests/testing_util.h"

namespace rum {
namespace {

using testing_util::GetMatchesReference;
using testing_util::ReferenceModel;
using testing_util::ScanMatchesReference;
using testing_util::SmallOptions;

constexpr LsmPolicy kAllPolicies[] = {
    LsmPolicy::kLeveled,
    LsmPolicy::kTiered,
    LsmPolicy::kLazyLeveled,
    LsmPolicy::kHybrid,
};

const char* PolicyLabel(LsmPolicy policy) {
  switch (policy) {
    case LsmPolicy::kLeveled:
      return "leveled";
    case LsmPolicy::kTiered:
      return "tiered";
    case LsmPolicy::kLazyLeveled:
      return "lazy-leveled";
    case LsmPolicy::kHybrid:
      return "hybrid";
  }
  return "?";
}

// Deterministic xorshift stream, one per (policy, seed) run.
struct Rng {
  uint64_t state;
  uint64_t Next() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  }
};

// The structural contract every policy restores before HandleFlush
// returns: run counts bounded by MaxRunsAt, and every run within its
// level's (monotonically growing) record capacity.
::testing::AssertionResult StructureHoldsInvariants(LsmTree* tree) {
  const CompactionPolicy& policy = tree->policy();
  auto& levels = tree->levels();
  for (size_t level = 0; level < levels.size(); ++level) {
    size_t max_runs = policy.MaxRunsAt(level, *tree);
    if (levels[level].size() > max_runs) {
      return ::testing::AssertionFailure()
             << tree->name() << ": level " << level << " holds "
             << levels[level].size() << " runs, policy allows " << max_runs;
    }
    for (const auto& run : levels[level]) {
      if (run->record_count() > tree->LevelTarget(level)) {
        return ::testing::AssertionFailure()
               << tree->name() << ": level " << level << " run holds "
               << run->record_count() << " records, capacity "
               << tree->LevelTarget(level);
      }
    }
  }
  return ::testing::AssertionSuccess();
}

class CompactionPolicyDifferentialTest
    : public ::testing::TestWithParam<LsmPolicy> {};

TEST_P(CompactionPolicyDifferentialTest, MatchesOracleAcrossSeeds) {
  for (uint64_t seed : {0x1234ULL, 0xBEEFULL, 0x5EED5ULL}) {
    Options options = SmallOptions();
    options.lsm.policy = GetParam();
    LsmTree tree(options);
    ReferenceModel reference;
    Rng rng{seed};
    constexpr Key kKeySpace = 2048;
    constexpr size_t kOps = 4000;

    for (size_t op = 0; op < kOps; ++op) {
      Key key = rng.Next() % kKeySpace;
      uint64_t dice = rng.Next() % 10;
      if (dice < 7) {
        // Insert/overwrite (upsert semantics, like the oracle's map).
        Value value = rng.Next();
        ASSERT_TRUE(tree.Insert(key, value).ok());
        reference.Insert(key, value);
      } else {
        ASSERT_TRUE(tree.Delete(key).ok());
        reference.Delete(key);
      }
      ASSERT_TRUE(StructureHoldsInvariants(&tree))
          << PolicyLabel(GetParam()) << " seed " << seed << " op " << op;
      ASSERT_EQ(tree.size(), reference.size())
          << PolicyLabel(GetParam()) << " seed " << seed << " op " << op;

      if (op % 256 == 255) {
        for (size_t probe = 0; probe < 32; ++probe) {
          Key k = rng.Next() % kKeySpace;
          ASSERT_TRUE(GetMatchesReference(&tree, reference, k))
              << PolicyLabel(GetParam()) << " seed " << seed << " op " << op;
        }
        Key lo = rng.Next() % kKeySpace;
        Key hi = std::min<Key>(kKeySpace, lo + rng.Next() % 256);
        ASSERT_TRUE(ScanMatchesReference(&tree, reference, lo, hi))
            << PolicyLabel(GetParam()) << " seed " << seed << " op " << op;
      }
    }

    // Final full sweep, including across an explicit flush.
    ASSERT_TRUE(tree.Flush().ok());
    ASSERT_TRUE(StructureHoldsInvariants(&tree));
    for (Key k = 0; k < kKeySpace; ++k) {
      ASSERT_TRUE(GetMatchesReference(&tree, reference, k))
          << PolicyLabel(GetParam()) << " seed " << seed << " final sweep";
    }
    ASSERT_TRUE(ScanMatchesReference(&tree, reference, 0, kKeySpace));
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, CompactionPolicyDifferentialTest,
                         ::testing::ValuesIn(kAllPolicies),
                         [](const auto& info) {
                           std::string name = PolicyLabel(info.param);
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(CompactionPolicyTest, MakeReturnsMatchingStrategy) {
  for (LsmPolicy kind : kAllPolicies) {
    auto policy = CompactionPolicy::Make(kind);
    ASSERT_NE(policy, nullptr);
    EXPECT_EQ(policy->kind(), kind);
    EXPECT_FALSE(policy->name().empty());
  }
}

TEST(CompactionPolicyTest, FactoryNamesRoundTrip) {
  const std::pair<const char*, LsmPolicy> kNames[] = {
      {"lsm-leveled", LsmPolicy::kLeveled},
      {"lsm-tiered", LsmPolicy::kTiered},
      {"lsm-lazy", LsmPolicy::kLazyLeveled},
      {"lsm-hybrid", LsmPolicy::kHybrid},
  };
  for (const auto& [name, kind] : kNames) {
    auto method = MakeAccessMethod(name, SmallOptions());
    ASSERT_NE(method, nullptr) << name;
    EXPECT_EQ(method->name(), name);
    auto* tree = dynamic_cast<LsmTree*>(method.get());
    ASSERT_NE(tree, nullptr) << name;
    EXPECT_EQ(tree->policy().kind(), kind) << name;
  }
}

TEST(CompactionPolicyTest, LazyKeepsSingleRunAtLastPopulatedLevel) {
  Options options = SmallOptions();
  options.lsm.policy = LsmPolicy::kLazyLeveled;
  LsmTree tree(options);
  for (Key k = 0; k < 64 * 40; ++k) {
    ASSERT_TRUE(tree.Insert(k * 7919, k).ok());
  }
  ASSERT_GE(tree.level_count(), 2u);
  size_t last = 0;
  for (size_t level = 0; level < tree.level_count(); ++level) {
    if (tree.runs_at(level) > 0) last = level;
  }
  EXPECT_EQ(tree.runs_at(last), 1u) << "lazy bottom must stay one run";
  for (size_t level = 0; level < last; ++level) {
    EXPECT_LT(tree.runs_at(level), options.lsm.size_ratio);
  }
}

TEST(CompactionPolicyTest, HybridIsTieredShallowAndLeveledDeep) {
  Options options = SmallOptions();
  options.lsm.policy = LsmPolicy::kHybrid;
  options.lsm.hybrid_tiered_levels = 1;
  LsmTree tree(options);
  bool saw_multi_run_level0 = false;
  for (Key k = 0; k < 64 * 40; ++k) {
    ASSERT_TRUE(tree.Insert(k * 7919, k).ok());
    if (tree.level_count() > 0 && tree.runs_at(0) > 1) {
      saw_multi_run_level0 = true;
    }
  }
  EXPECT_TRUE(saw_multi_run_level0) << "level 0 should batch runs (tiered)";
  for (size_t level = 1; level < tree.level_count(); ++level) {
    EXPECT_LE(tree.runs_at(level), 1u)
        << "levels >= hybrid_tiered_levels must merge leveled";
  }
}

TEST(CompactionPolicyTest, MetricsCountersTrackFlushesAndCompactions) {
  Options options = SmallOptions();
  options.lsm.policy = LsmPolicy::kLeveled;
  LsmTree tree(options);
  MetricsRegistry::Counter* flushes =
      MetricsRegistry::Global().FindOrCreateCounter("lsm.flushes");
  MetricsRegistry::Counter* compactions =
      MetricsRegistry::Global().FindOrCreateCounter("lsm.compactions");
  uint64_t flushes_before = flushes->value();
  uint64_t compactions_before = compactions->value();
  for (Key k = 0; k < 64 * 10; ++k) {
    ASSERT_TRUE(tree.Insert(k, k).ok());
  }
  EXPECT_EQ(tree.flushes(), 10u);
  EXPECT_GT(tree.compactions(), 0u);
  EXPECT_GT(tree.compaction_input_records(), 0u);
  // The process-wide registry counters mirror the per-tree tallies -- the
  // signal stream the OnlineTuner consumes.
  EXPECT_EQ(flushes->value() - flushes_before, tree.flushes());
  EXPECT_EQ(compactions->value() - compactions_before, tree.compactions());
}

}  // namespace
}  // namespace rum

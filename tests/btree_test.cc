// Structural tests for the B+-Tree beyond the generic contract: node
// codecs, height growth, tuning knobs, leaf-chain integrity.
#include <gtest/gtest.h>

#include "methods/btree/btree.h"
#include "methods/btree/btree_node.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using testing_util::SmallOptions;

TEST(BTreeNodeTest, LeafRoundTrip) {
  BTreeLeaf leaf;
  leaf.entries = {{1, 10}, {5, 50}, {9, 90}};
  leaf.next = 77;
  std::vector<uint8_t> block;
  ASSERT_TRUE(leaf.EncodeTo(512, &block).ok());
  EXPECT_TRUE(IsLeafBlock(block));
  BTreeLeaf out;
  ASSERT_TRUE(BTreeLeaf::DecodeFrom(block, &out).ok());
  EXPECT_EQ(out.entries, leaf.entries);
  EXPECT_EQ(out.next, leaf.next);
}

TEST(BTreeNodeTest, InnerRoundTrip) {
  BTreeInner inner;
  inner.keys = {10, 20, 30};
  inner.children = {100, 101, 102, 103};
  std::vector<uint8_t> block;
  ASSERT_TRUE(inner.EncodeTo(512, &block).ok());
  EXPECT_FALSE(IsLeafBlock(block));
  BTreeInner out;
  ASSERT_TRUE(BTreeInner::DecodeFrom(block, &out).ok());
  EXPECT_EQ(out.keys, inner.keys);
  EXPECT_EQ(out.children, inner.children);
}

TEST(BTreeNodeTest, ChildIndexForRoutesBySeparator) {
  BTreeInner inner;
  inner.keys = {10, 20};
  inner.children = {0, 1, 2};
  EXPECT_EQ(inner.ChildIndexFor(5), 0u);
  EXPECT_EQ(inner.ChildIndexFor(10), 1u);  // Separator = lower bound right.
  EXPECT_EQ(inner.ChildIndexFor(15), 1u);
  EXPECT_EQ(inner.ChildIndexFor(20), 2u);
  EXPECT_EQ(inner.ChildIndexFor(99), 2u);
}

TEST(BTreeNodeTest, OverflowRejected) {
  BTreeLeaf leaf;
  leaf.entries.resize(BTreeLeaf::CapacityFor(512) + 1);
  std::vector<uint8_t> block;
  EXPECT_EQ(leaf.EncodeTo(512, &block).code(), Code::kResourceExhausted);
  BTreeInner inner;
  inner.keys.resize(BTreeInner::CapacityFor(512) + 1);
  inner.children.resize(inner.keys.size() + 1);
  EXPECT_EQ(inner.EncodeTo(512, &block).code(), Code::kResourceExhausted);
}

TEST(BTreeNodeTest, DecodeRejectsWrongType) {
  BTreeLeaf leaf;
  leaf.entries = {{1, 1}};
  std::vector<uint8_t> block;
  ASSERT_TRUE(leaf.EncodeTo(512, &block).ok());
  BTreeInner inner;
  EXPECT_EQ(BTreeInner::DecodeFrom(block, &inner).code(), Code::kCorruption);
}

TEST(BTreeTest, HeightGrowsLogarithmically) {
  Options options = SmallOptions();
  BTree tree(options);
  size_t leaf_cap = BTreeLeaf::CapacityFor(512);
  // Fill one leaf exactly: height 1.
  for (Key k = 0; k < leaf_cap; ++k) {
    ASSERT_TRUE(tree.Insert(k, k).ok());
  }
  EXPECT_EQ(tree.height(), 1u);
  ASSERT_TRUE(tree.Insert(leaf_cap, 0).ok());
  EXPECT_EQ(tree.height(), 2u);
  for (Key k = leaf_cap + 1; k < 20000; ++k) {
    ASSERT_TRUE(tree.Insert(k, k).ok());
  }
  // log_31(20000/31) ~ 3; allow 3..5.
  EXPECT_GE(tree.height(), 3u);
  EXPECT_LE(tree.height(), 5u);
}

TEST(BTreeTest, BulkLoadProducesShallowPackedTree) {
  Options options = SmallOptions();
  options.btree.bulk_fill = 1.0;
  BTree packed(options);
  std::vector<Entry> entries = MakeSortedEntries(10000);
  ASSERT_TRUE(packed.BulkLoad(entries).ok());

  options.btree.bulk_fill = 0.5;
  BTree loose(options);
  ASSERT_TRUE(loose.BulkLoad(entries).ok());

  // Half-full leaves double the base footprint.
  EXPECT_GT(loose.stats().space_base,
            packed.stats().space_base * 3 / 2);
  // Both answer queries identically.
  for (Key k = 0; k < 10000; k += 531) {
    ASSERT_EQ(packed.Get(k).value(), loose.Get(k).value());
  }
}

TEST(BTreeTest, LowBulkFillAbsorbsInsertsWithFewerSplits) {
  std::vector<Entry> entries = MakeSortedEntries(5000, 0, 2);
  Options options = SmallOptions();
  options.btree.bulk_fill = 1.0;
  BTree packed(options);
  ASSERT_TRUE(packed.BulkLoad(entries).ok());
  options.btree.bulk_fill = 0.6;
  BTree loose(options);
  ASSERT_TRUE(loose.BulkLoad(entries).ok());

  packed.ResetStats();
  loose.ResetStats();
  // Insert into the odd gaps: packed splits constantly, loose absorbs.
  Rng rng(3);
  for (int i = 0; i < 1500; ++i) {
    Key k = rng.NextBelow(5000) * 2 + 1;
    ASSERT_TRUE(packed.Insert(k, 1).ok());
    ASSERT_TRUE(loose.Insert(k, 1).ok());
  }
  EXPECT_LT(loose.stats().total_bytes_written(),
            packed.stats().total_bytes_written());
}

TEST(BTreeTest, NodeSizeKnobTradesReadBlocksForWriteBytes) {
  std::vector<Entry> entries = MakeSortedEntries(20000);
  Options small = SmallOptions();
  small.btree.node_size = 512;
  Options large = SmallOptions();
  large.btree.node_size = 8192;

  BTree small_tree(small);
  BTree large_tree(large);
  ASSERT_TRUE(small_tree.BulkLoad(entries).ok());
  ASSERT_TRUE(large_tree.BulkLoad(entries).ok());
  EXPECT_GT(small_tree.height(), large_tree.height());

  small_tree.ResetStats();
  large_tree.ResetStats();
  Rng rng(5);
  for (int i = 0; i < 500; ++i) {
    Key k = rng.NextBelow(20000);
    ASSERT_TRUE(small_tree.Get(k).ok());
    ASSERT_TRUE(large_tree.Get(k).ok());
  }
  // Big nodes: fewer blocks but more bytes per probe.
  EXPECT_LE(large_tree.stats().blocks_read, small_tree.stats().blocks_read);
  EXPECT_GT(large_tree.stats().total_bytes_read(),
            small_tree.stats().total_bytes_read());
}

TEST(BTreeTest, LeafChainSurvivesRandomDeletes) {
  Options options = SmallOptions();
  BTree tree(options);
  std::vector<Entry> entries = MakeSortedEntries(4000);
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  Rng rng(11);
  std::vector<bool> alive(4000, true);
  for (int i = 0; i < 3000; ++i) {
    Key k = rng.NextBelow(4000);
    ASSERT_TRUE(tree.Delete(k).ok());
    alive[k] = false;
    if (i % 500 == 0) {
      // A full scan must see exactly the live keys, in order.
      std::vector<Entry> scan;
      ASSERT_TRUE(tree.Scan(0, 4000, &scan).ok());
      size_t expected = 0;
      for (bool a : alive) expected += a ? 1 : 0;
      ASSERT_EQ(scan.size(), expected) << "after " << i << " deletes";
      for (size_t j = 1; j < scan.size(); ++j) {
        ASSERT_LT(scan[j - 1].key, scan[j].key);
      }
    }
  }
}

TEST(BTreeTest, SplitFractionNearOneFavorsSequentialInserts) {
  Options seq = SmallOptions();
  seq.btree.split_fraction = 0.9;  // Leave the left node nearly full.
  Options mid = SmallOptions();
  mid.btree.split_fraction = 0.5;

  BTree seq_tree(seq);
  BTree mid_tree(mid);
  for (Key k = 0; k < 10000; ++k) {
    ASSERT_TRUE(seq_tree.Insert(k, k).ok());
    ASSERT_TRUE(mid_tree.Insert(k, k).ok());
  }
  // Sequential fills: high split fraction packs leaves tighter.
  EXPECT_LT(seq_tree.stats().space_base, mid_tree.stats().space_base);
}

TEST(BTreeTest, InnerAndLeafSpaceSplitIsTagged) {
  Options options = SmallOptions();
  BTree tree(options);
  std::vector<Entry> entries = MakeSortedEntries(10000);
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  CounterSnapshot snap = tree.stats();
  EXPECT_GT(snap.space_base, 0u);  // Leaves.
  EXPECT_GT(snap.space_aux, 0u);   // Inner nodes.
  EXPECT_LT(snap.space_aux, snap.space_base);  // Fanout keeps inners small.
}

}  // namespace
}  // namespace rum

// Tests for the adaptive layer: morphing shape selection and migration,
// the wizard's predictions, the online tuner's knob moves.
#include <cmath>

#include <gtest/gtest.h>

#include "adaptive/cost_model.h"
#include "adaptive/morphing.h"
#include "adaptive/tuner.h"
#include "adaptive/wizard.h"
#include "methods/lsm/lsm_tree.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using testing_util::SmallOptions;

TEST(MorphShapeTest, SelectionRules) {
  EXPECT_EQ(MorphingAccessMethod::ChooseShape(1, 1, 10),
            MorphShape::kSpaceDense);
  EXPECT_EQ(MorphingAccessMethod::ChooseShape(10, 1, 1),
            MorphShape::kReadTree);
  EXPECT_EQ(MorphingAccessMethod::ChooseShape(1, 10, 1),
            MorphShape::kWriteLog);
  EXPECT_EQ(MorphingAccessMethod::ChooseShape(5, 5, 1),
            MorphShape::kBalanced);
  EXPECT_EQ(MorphingAccessMethod::ChooseShape(5, 5.5, 1),
            MorphShape::kBalanced);  // Within 25%.
  EXPECT_EQ(MorphingAccessMethod::ChooseShape(0, 0, 0),
            MorphShape::kBalanced);
}

TEST(MorphingTest, MorphPreservesEveryEntry) {
  Options options = SmallOptions();
  options.morphing.write_priority = 10;
  options.morphing.read_priority = 1;
  options.morphing.space_priority = 1;
  MorphingAccessMethod method(options);
  EXPECT_EQ(method.shape(), MorphShape::kWriteLog);

  Rng rng(1);
  std::map<Key, Value> reference;
  for (int i = 0; i < 3000; ++i) {
    Key k = rng.NextBelow(1u << 12);
    Value v = rng.Next();
    ASSERT_TRUE(method.Insert(k, v).ok());
    reference[k] = v;
  }
  // Morph through every shape; contents must survive each migration.
  for (auto [r, w, m] : {std::tuple<double, double, double>{10, 1, 1},
                         {1, 1, 10},
                         {5, 5, 1},
                         {1, 10, 1}}) {
    ASSERT_TRUE(method.SetPriorities(r, w, m).ok());
    ASSERT_EQ(method.size(), reference.size())
        << "shape " << MorphShapeName(method.shape());
    for (const auto& [k, v] : reference) {
      Result<Value> got = method.Get(k);
      ASSERT_TRUE(got.ok()) << "key " << k << " lost in "
                            << MorphShapeName(method.shape());
      ASSERT_EQ(got.value(), v);
    }
  }
  EXPECT_EQ(method.morph_count(), 4u);
}

TEST(MorphingTest, MorphCostIsMeasured) {
  Options options = SmallOptions();
  MorphingAccessMethod method(options);
  std::vector<Entry> entries = MakeSortedEntries(2000);
  ASSERT_TRUE(method.BulkLoad(entries).ok());
  CounterSnapshot before = method.stats();
  ASSERT_TRUE(method.SetPriorities(10, 1, 1).ok());
  CounterSnapshot after = method.stats();
  // Migration read the old shape and wrote the new one.
  EXPECT_GT(after.total_bytes_read(), before.total_bytes_read());
  EXPECT_GT(after.total_bytes_written(), before.total_bytes_written());
}

TEST(MorphingTest, NoMorphWhenShapeUnchanged) {
  Options options = SmallOptions();
  options.morphing.read_priority = 10;
  options.morphing.write_priority = 1;
  options.morphing.space_priority = 1;
  MorphingAccessMethod method(options);
  ASSERT_TRUE(method.Insert(1, 1).ok());
  ASSERT_TRUE(method.SetPriorities(20, 2, 2).ok());  // Same winner.
  EXPECT_EQ(method.morph_count(), 0u);
}

TEST(MorphingTest, ShapesMoveInRumSpace) {
  // The same workload measured under different shapes lands at different
  // RUM points -- Figure 3's arrow across the triangle.
  auto run_workload = [](MorphingAccessMethod* method) {
    Rng rng(2);
    for (int i = 0; i < 3000; ++i) {
      Key k = rng.NextBelow(1u << 12);
      (void)method->Insert(k, i);
    }
    for (int i = 0; i < 1000; ++i) {
      (void)method->Get(rng.NextBelow(1u << 12));
    }
  };
  Options options = SmallOptions();
  options.morphing.write_priority = 10;
  options.morphing.read_priority = 1;
  MorphingAccessMethod write_shape(options);
  run_workload(&write_shape);

  options.morphing.write_priority = 1;
  options.morphing.read_priority = 10;
  MorphingAccessMethod read_shape(options);
  run_workload(&read_shape);

  RumPoint wp = write_shape.rum_point();
  RumPoint rp = read_shape.rum_point();
  // The write shape writes less per logical write; the read shape reads
  // less per logical read.
  EXPECT_LT(wp.update_overhead, rp.update_overhead);
  EXPECT_LT(rp.read_overhead, wp.read_overhead);
}

TEST(WizardTest, WriteHeavyWorkloadAvoidsBTree) {
  Options options;
  RumWizard wizard(options);
  WorkloadSpec spec = WorkloadSpec::WriteOnly(10000, 1u << 20);
  std::vector<Recommendation> ranked = wizard.Rank(spec, 1u << 20);
  ASSERT_FALSE(ranked.empty());
  // The winner must be an append/differential family, not the B-tree.
  EXPECT_NE(ranked.front().method, "btree");
  EXPECT_NE(ranked.front().method, "sorted-column");
  // B-tree's predicted write cost exceeds the LSM's.
  Recommendation btree = wizard.Predict("btree", spec, 1u << 20, 0);
  Recommendation lsm = wizard.Predict("lsm-tiered", spec, 1u << 20, 0);
  EXPECT_GT(btree.write_cost, lsm.write_cost);
}

TEST(WizardTest, PointReadWorkloadLikesHashOverSortedScan) {
  Options options;
  RumWizard wizard(options);
  WorkloadSpec spec = WorkloadSpec::ReadOnly(10000, 1u << 20);
  Recommendation hash = wizard.Predict("hash", spec, 1u << 20, 0);
  Recommendation unsorted = wizard.Predict("unsorted-column", spec,
                                           1u << 20, 0);
  EXPECT_LT(hash.predicted_cost, unsorted.predicted_cost);
}

TEST(WizardTest, ScanHeavyWorkloadPrefersOrderedStructures) {
  Options options;
  RumWizard wizard(options);
  WorkloadSpec spec = WorkloadSpec::ScanHeavy(10000, 1u << 20);
  Recommendation btree = wizard.Predict("btree", spec, 1u << 20, 0);
  Recommendation hash = wizard.Predict("hash", spec, 1u << 20, 0);
  EXPECT_LT(btree.predicted_cost, hash.predicted_cost);
}

TEST(WizardTest, SpaceWeightElevatesSparseIndexes) {
  Options options;
  RumWizard wizard(options);
  WorkloadSpec spec = WorkloadSpec::ReadMostly(10000, 1u << 20);
  Recommendation zonemap_cheap = wizard.Predict("zonemap", spec, 1u << 20,
                                                /*space_weight=*/0.0);
  Recommendation trie_cheap = wizard.Predict("trie", spec, 1u << 20, 0.0);
  Recommendation zonemap_dear = wizard.Predict("zonemap", spec, 1u << 20,
                                               /*space_weight=*/50.0);
  Recommendation trie_dear = wizard.Predict("trie", spec, 1u << 20, 50.0);
  // With free space the trie's fast probes win; at heavy space weight the
  // ordering flips.
  EXPECT_LT(trie_cheap.predicted_cost, zonemap_cheap.predicted_cost);
  EXPECT_LT(zonemap_dear.predicted_cost, trie_dear.predicted_cost);
}

TEST(WizardTest, UnknownMethodGetsInfiniteCost) {
  Options options;
  RumWizard wizard(options);
  Recommendation rec = wizard.Predict("flux-capacitor",
                                      WorkloadSpec::ReadOnly(1, 10), 100, 0);
  EXPECT_TRUE(std::isinf(rec.predicted_cost));
}

TEST(WizardTest, RankIsSortedAndSkipsExtremes) {
  Options options;
  RumWizard wizard(options);
  std::vector<Recommendation> ranked =
      wizard.Rank(WorkloadSpec::Mixed(1000, 1u << 16), 1u << 16);
  for (size_t i = 1; i < ranked.size(); ++i) {
    EXPECT_LE(ranked[i - 1].predicted_cost, ranked[i].predicted_cost);
  }
  for (const Recommendation& rec : ranked) {
    EXPECT_NE(rec.method, "magic-array");
    EXPECT_NE(rec.method, "pure-log");
    EXPECT_NE(rec.method, "dense-array");
  }
}

TEST(TunerTest, WithinToleranceMakesNoChange) {
  OnlineTuner tuner(0.2);
  Options options;
  RumPoint measured{2.0, 3.0, 1.2};
  RumPoint target{2.0, 3.0, 1.2};
  TuningAction action = tuner.Observe("lsm-leveled", options, measured,
                                      target);
  EXPECT_FALSE(action.changed);
}

TEST(TunerTest, LsmReadPainSwitchesTieredToLeveled) {
  OnlineTuner tuner(0.2);
  Options options;
  options.lsm.policy = LsmPolicy::kTiered;
  RumPoint measured{20.0, 1.5, 1.3};
  RumPoint target{5.0, 1.5, 1.3};
  TuningAction action = tuner.Observe("lsm-tiered", options, measured,
                                      target);
  EXPECT_TRUE(action.changed);
  EXPECT_EQ(action.options.lsm.policy, LsmPolicy::kLeveled);
}

TEST(TunerTest, LsmWritePainSwitchesLeveledToTiered) {
  OnlineTuner tuner(0.2);
  Options options;
  options.lsm.policy = LsmPolicy::kLeveled;
  RumPoint measured{2.0, 30.0, 1.3};
  RumPoint target{2.0, 5.0, 1.3};
  TuningAction action = tuner.Observe("lsm-leveled", options, measured,
                                      target);
  EXPECT_TRUE(action.changed);
  EXPECT_EQ(action.options.lsm.policy, LsmPolicy::kTiered);
}

TEST(TunerTest, BTreeNodeSizeMovesWithPain) {
  OnlineTuner tuner(0.2);
  Options options;
  options.btree.node_size = 4096;
  TuningAction bigger = tuner.Observe(
      "btree", options, RumPoint{30, 2, 1.4}, RumPoint{5, 2, 1.4});
  EXPECT_TRUE(bigger.changed);
  EXPECT_EQ(bigger.options.btree.node_size, 8192u);
  TuningAction smaller = tuner.Observe(
      "btree", options, RumPoint{5, 40, 1.4}, RumPoint{5, 2, 1.4});
  EXPECT_TRUE(smaller.changed);
  EXPECT_EQ(smaller.options.btree.node_size, 2048u);
}

TEST(TunerTest, ClosedLoopDrivesLsmReadCostDown) {
  // The full Section-5 loop: measure -> observe -> re-tune -> re-measure.
  // A filterless tiered LSM has painful point reads; the tuner must steer
  // it (policy flip, filter bits) until measured reads genuinely improve.
  Options options = SmallOptions();
  options.lsm.policy = LsmPolicy::kTiered;
  options.lsm.bloom_bits_per_key = 0;

  auto measure = [](const Options& opts) {
    LsmTree tree(opts);
    Rng rng(51);
    for (int i = 0; i < 8000; ++i) {
      (void)tree.Insert(rng.NextBelow(1u << 13), i);
    }
    tree.ResetStats();
    for (int i = 0; i < 1500; ++i) {
      (void)tree.Get(rng.NextBelow(1u << 13));
    }
    return RumPoint::FromSnapshot(tree.stats());
  };

  RumPoint initial = measure(options);
  RumPoint target = initial;
  target.read_overhead = std::max(1.0, initial.read_overhead / 4);

  OnlineTuner tuner(0.15);
  Options tuned = options;
  RumPoint measured = initial;
  std::string_view name = "lsm-tiered";
  for (int round = 0; round < 6; ++round) {
    TuningAction action = tuner.Observe(name, tuned, measured, target);
    if (!action.changed) break;
    tuned = action.options;
    name = tuned.lsm.policy == LsmPolicy::kLeveled ? "lsm-leveled"
                                                          : "lsm-tiered";
    measured = measure(tuned);
  }
  // The loop must have reached a materially better read cost.
  EXPECT_LT(measured.read_overhead, initial.read_overhead / 2)
      << "initial RO=" << initial.read_overhead
      << " final RO=" << measured.read_overhead;
}

TEST(TunerTest, MixedPainConsultsCostModel) {
  // When reads AND writes are both over target, no single directional rule
  // applies; the tuner must defer to the analytical cost model and adopt
  // its ranked pick (the path that can land on lazy/hybrid).
  OnlineTuner tuner(0.2);
  Options options = SmallOptions();
  options.lsm.policy = LsmPolicy::kLeveled;
  RumPoint measured{30.0, 30.0, 1.2};
  RumPoint target{5.0, 5.0, 1.2};
  TuningAction action = tuner.Observe("lsm-leveled", options, measured,
                                      target);

  uint64_t nominal = options.lsm.memtable_entries;
  for (int i = 0; i < 3; ++i) nominal *= options.lsm.size_ratio;
  LsmPolicy expected = PickLsmPolicy(nominal, options, 5.0, 5.0, 0.0);
  if (expected != LsmPolicy::kLeveled) {
    ASSERT_TRUE(action.changed) << action.reason;
    EXPECT_EQ(action.options.lsm.policy, expected) << action.reason;
    EXPECT_NE(action.reason.find("cost model"), std::string::npos)
        << action.reason;
  } else {
    // Already optimal: the tuner falls through to the knob rules instead.
    EXPECT_TRUE(action.changed);
    EXPECT_EQ(action.options.lsm.policy, LsmPolicy::kLeveled);
  }
}

TEST(TunerTest, PhaseShiftRetunesPolicyAndBeatsStaticBaseline) {
  // Regression for the online re-tuning story: a tree tuned for a
  // read-heavy phase (leveled) hits a write-heavy phase; the tuner must
  // switch the compaction policy, and the re-tuned configuration must beat
  // the static starting policy on the measured RUM point of the new phase.
  Options options = SmallOptions();
  options.lsm.policy = LsmPolicy::kLeveled;

  // The write-heavy phase, measured from a warm tree.
  auto measure_write_phase = [](const Options& opts) {
    LsmTree tree(opts);
    Rng rng(77);
    for (int i = 0; i < 3000; ++i) {
      (void)tree.Insert(rng.NextBelow(1u << 13), i);
    }
    tree.ResetStats();
    for (int i = 0; i < 6000; ++i) {
      (void)tree.Insert(rng.NextBelow(1u << 13), i);
    }
    for (int i = 0; i < 300; ++i) {
      (void)tree.Get(rng.NextBelow(1u << 13));
    }
    return RumPoint::FromSnapshot(tree.stats());
  };

  auto method_name = [](LsmPolicy policy) -> std::string_view {
    switch (policy) {
      case LsmPolicy::kLeveled:
        return "lsm-leveled";
      case LsmPolicy::kTiered:
        return "lsm-tiered";
      case LsmPolicy::kLazyLeveled:
        return "lsm-lazy";
      case LsmPolicy::kHybrid:
        return "lsm-hybrid";
    }
    return "lsm-leveled";
  };

  RumPoint static_point = measure_write_phase(options);

  // The operator's target: reads were fine in the old phase and stay
  // uncritical (generous bound); writes must get far cheaper than any
  // default-knob policy delivers, so a bare policy flip is not enough and
  // the tuner has to keep working the knobs.
  RumPoint target = static_point;
  target.read_overhead = static_point.read_overhead * 2;
  target.update_overhead = std::max(1.0, static_point.update_overhead / 3);

  OnlineTuner tuner(0.15);
  Options tuned = options;
  RumPoint measured = static_point;
  for (int round = 0; round < 6; ++round) {
    TuningAction action =
        tuner.Observe(method_name(tuned.lsm.policy), tuned, measured,
                      target);
    if (!action.changed) break;
    tuned = action.options;
    measured = measure_write_phase(tuned);
  }

  EXPECT_NE(tuned.lsm.policy, LsmPolicy::kLeveled)
      << "tuner never left the read-optimized policy";
  EXPECT_LT(measured.update_overhead, static_point.update_overhead * 0.8)
      << "static UO=" << static_point.update_overhead
      << " re-tuned UO=" << measured.update_overhead;

  // The acceptance bar: on this phase, the re-tuned configuration beats
  // EVERY static policy at default knobs -- distance to the operator's
  // target (worst targeted-axis excess), not just raw write cost.
  auto score = [&target](const RumPoint& p) {
    return std::max(p.read_overhead / target.read_overhead,
                    p.update_overhead / target.update_overhead);
  };
  for (LsmPolicy policy :
       {LsmPolicy::kLeveled, LsmPolicy::kTiered, LsmPolicy::kLazyLeveled,
        LsmPolicy::kHybrid}) {
    Options static_options = SmallOptions();
    static_options.lsm.policy = policy;
    RumPoint static_measured = measure_write_phase(static_options);
    EXPECT_LT(score(measured), score(static_measured))
        << "re-tuned config does not beat static "
        << method_name(policy) << " (tuned UO="
        << measured.update_overhead
        << " static UO=" << static_measured.update_overhead << ")";
  }
}

TEST(TunerTest, UnknownMethodReportsNoKnobs) {
  OnlineTuner tuner(0.2);
  Options options;
  TuningAction action = tuner.Observe(
      "pure-log", options, RumPoint{100, 1, 100}, RumPoint{1, 1, 1});
  EXPECT_FALSE(action.changed);
  EXPECT_FALSE(action.reason.empty());
}

}  // namespace
}  // namespace rum

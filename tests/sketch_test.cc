// Unit and property tests for the probabilistic sketches: Bloom filter,
// Count-Min sketch, quotient filter.
#include <unordered_map>
#include <unordered_set>

#include <gtest/gtest.h>

#include "core/counters.h"
#include "methods/sketch/blocked_bloom.h"
#include "methods/sketch/bloom_filter.h"
#include "methods/sketch/count_min.h"
#include "methods/sketch/quotient_filter.h"
#include "workload/distribution.h"

namespace rum {
namespace {

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bloom(1000, 10, nullptr);
  for (Key k = 0; k < 1000; ++k) bloom.Add(k * 3);
  for (Key k = 0; k < 1000; ++k) {
    EXPECT_TRUE(bloom.MayContain(k * 3)) << k;
  }
}

TEST(BloomFilterTest, FalsePositiveRateNearTheory) {
  const size_t kKeys = 4096;
  BloomFilter bloom(kKeys, 10, nullptr);
  for (Key k = 0; k < kKeys; ++k) bloom.Add(k);
  size_t false_positives = 0;
  const size_t kProbes = 20000;
  for (Key k = 0; k < kProbes; ++k) {
    if (bloom.MayContain(kKeys + 1000 + k)) ++false_positives;
  }
  double rate = static_cast<double>(false_positives) / kProbes;
  // Theory: ~0.0082 for 10 bits/key, 7 probes. Allow generous slack.
  EXPECT_LT(rate, 0.03);
}

TEST(BloomFilterTest, FillRatioApproachesHalfAtOptimalK) {
  const size_t kKeys = 4096;
  BloomFilter bloom(kKeys, 10, nullptr);
  for (Key k = 0; k < kKeys; ++k) bloom.Add(k);
  EXPECT_GT(bloom.fill_ratio(), 0.35);
  EXPECT_LT(bloom.fill_ratio(), 0.60);
}

TEST(BloomFilterTest, AccountingChargesSpaceAndTraffic) {
  RumCounters counters;
  {
    BloomFilter bloom(100, 8, &counters);
    EXPECT_EQ(counters.snapshot().space_aux, bloom.space_bytes());
    bloom.Add(1);
    EXPECT_EQ(counters.snapshot().bytes_written_aux, bloom.probes());
    bloom.MayContain(1);
    EXPECT_EQ(counters.snapshot().bytes_read_aux, bloom.probes());
  }
  // Destruction releases the space.
  EXPECT_EQ(counters.snapshot().space_aux, 0u);
}

TEST(BloomFilterTest, MoveTransfersAccounting) {
  RumCounters counters;
  {
    BloomFilter a(100, 8, &counters);
    uint64_t space = counters.snapshot().space_aux;
    BloomFilter b = std::move(a);
    EXPECT_EQ(counters.snapshot().space_aux, space);  // Unchanged by move.
  }
  EXPECT_EQ(counters.snapshot().space_aux, 0u);  // Released once.
}

TEST(CountMinTest, NeverUndercounts) {
  CountMinSketch sketch(256, 4, nullptr);
  std::unordered_map<Key, uint64_t> truth;
  Rng rng(7);
  for (int i = 0; i < 5000; ++i) {
    Key k = rng.NextBelow(500);
    sketch.Add(k);
    ++truth[k];
  }
  for (const auto& [k, count] : truth) {
    EXPECT_GE(sketch.Estimate(k), count) << k;
  }
}

TEST(CountMinTest, HeavyHittersEstimatedTightly) {
  CountMinSketch sketch(1024, 4, nullptr);
  for (int i = 0; i < 10000; ++i) sketch.Add(42);
  for (int i = 0; i < 100; ++i) sketch.Add(static_cast<Key>(1000 + i));
  uint64_t est = sketch.Estimate(42);
  EXPECT_GE(est, 10000u);
  EXPECT_LE(est, 10000u + 200u);
}

TEST(CountMinTest, WeightedAdds) {
  CountMinSketch sketch(64, 3, nullptr);
  sketch.Add(5, 100);
  EXPECT_GE(sketch.Estimate(5), 100u);
}

TEST(CountMinTest, AccountingTracksSpace) {
  RumCounters counters;
  {
    CountMinSketch sketch(64, 4, &counters);
    EXPECT_EQ(counters.snapshot().space_aux, 64u * 4 * 8);
  }
  EXPECT_EQ(counters.snapshot().space_aux, 0u);
}

TEST(QuotientFilterTest, InsertThenContains) {
  QuotientFilter qf(10, 8, nullptr);
  for (Key k = 0; k < 500; ++k) {
    ASSERT_TRUE(qf.Insert(k)) << k;
  }
  for (Key k = 0; k < 500; ++k) {
    EXPECT_TRUE(qf.MayContain(k)) << k;
  }
  EXPECT_EQ(qf.element_count(), 500u);
}

TEST(QuotientFilterTest, FalsePositiveRateBounded) {
  QuotientFilter qf(12, 10, nullptr);
  const size_t kKeys = 2048;  // 50% load.
  for (Key k = 0; k < kKeys; ++k) ASSERT_TRUE(qf.Insert(k));
  size_t false_positives = 0;
  const size_t kProbes = 20000;
  for (Key k = 0; k < kProbes; ++k) {
    if (qf.MayContain(1000000 + k)) ++false_positives;
  }
  double rate = static_cast<double>(false_positives) / kProbes;
  // ~ load / 2^r = 0.5 / 1024; allow slack.
  EXPECT_LT(rate, 0.01);
}

TEST(QuotientFilterTest, DeleteRemovesAndKeepsOthers) {
  QuotientFilter qf(10, 8, nullptr);
  for (Key k = 0; k < 400; ++k) ASSERT_TRUE(qf.Insert(k));
  for (Key k = 0; k < 400; k += 2) {
    EXPECT_TRUE(qf.Delete(k)) << k;
  }
  for (Key k = 1; k < 400; k += 2) {
    EXPECT_TRUE(qf.MayContain(k)) << "lost key " << k;
  }
  EXPECT_EQ(qf.element_count(), 200u);
}

TEST(QuotientFilterTest, DeleteOfAbsentReturnsFalseUsually) {
  QuotientFilter qf(10, 12, nullptr);
  for (Key k = 0; k < 100; ++k) ASSERT_TRUE(qf.Insert(k));
  size_t spurious = 0;
  for (Key k = 10000; k < 10200; ++k) {
    if (qf.Delete(k)) ++spurious;
  }
  // A spurious delete needs a fingerprint collision: rare with r=12.
  EXPECT_LE(spurious, 3u);
  // No key we inserted may be lost by the absent-delete attempts...
  size_t retained = 0;
  for (Key k = 0; k < 100; ++k) {
    if (qf.MayContain(k)) ++retained;
  }
  // ...except those sharing a fingerprint with a spurious delete.
  EXPECT_GE(retained, 100u - spurious);
}

TEST(QuotientFilterTest, RandomizedDifferentialAgainstMultiset) {
  // The QF stores fingerprints; against a reference multiset of
  // fingerprint-equivalent keys it must behave exactly (same hash input =>
  // same fingerprint), with false positives only across distinct keys.
  QuotientFilter qf(8, 16, nullptr);  // 256 slots, roomy remainders.
  std::unordered_multiset<Key> reference;
  Rng rng(0xBEEF);
  const Key kRange = 180;  // Collisions in quotients guaranteed.
  for (int i = 0; i < 4000; ++i) {
    Key k = rng.NextBelow(kRange);
    uint64_t dice = rng.NextBelow(100);
    if (dice < 50) {
      if (qf.load_factor() < 0.85) {
        ASSERT_TRUE(qf.Insert(k));
        reference.insert(k);
      }
    } else if (dice < 75) {
      bool deleted = qf.Delete(k);
      bool expected = reference.find(k) != reference.end();
      // With r=16 spurious fingerprint collisions are ~0 at this scale.
      ASSERT_EQ(deleted, expected) << "key " << k << " at op " << i;
      if (expected) reference.erase(reference.find(k));
    } else {
      bool contains = qf.MayContain(k);
      bool expected = reference.find(k) != reference.end();
      if (expected) {
        ASSERT_TRUE(contains) << "false negative for " << k << " at op "
                              << i;
      }
      // False positives possible but vanishingly rare with r=16; enforce.
      ASSERT_EQ(contains, expected) << "key " << k << " at op " << i;
    }
    ASSERT_EQ(qf.element_count(), reference.size()) << "at op " << i;
  }
}

TEST(QuotientFilterTest, HighLoadChurnStressWithWraparound) {
  // A small table driven to its load limit and churned hard: clusters span
  // most of the table and wrap around the end, exercising the circular
  // arithmetic in run search, insert shifting, and cluster extraction.
  QuotientFilter qf(6, 16, nullptr);  // 64 slots.
  std::unordered_multiset<Key> reference;
  Rng rng(0x1234);
  const Key kRange = 48;
  for (int i = 0; i < 20000; ++i) {
    Key k = rng.NextBelow(kRange);
    if (rng.NextBelow(2) == 0) {
      if (qf.Insert(k)) reference.insert(k);
    } else {
      bool deleted = qf.Delete(k);
      bool expected = reference.find(k) != reference.end();
      ASSERT_EQ(deleted, expected) << "op " << i << " key " << k;
      if (expected) reference.erase(reference.find(k));
    }
    if (i % 500 == 0) {
      for (Key probe = 0; probe < kRange; ++probe) {
        bool contains = qf.MayContain(probe);
        bool expected = reference.find(probe) != reference.end();
        ASSERT_EQ(contains, expected)
            << "op " << i << " probe " << probe;
      }
    }
  }
}

TEST(QuotientFilterTest, DuplicateFingerprintsCountedCorrectly) {
  QuotientFilter qf(8, 12, nullptr);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(qf.Insert(77));
  }
  EXPECT_EQ(qf.element_count(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(qf.Delete(77)) << i;
  }
  EXPECT_FALSE(qf.Delete(77));
  EXPECT_FALSE(qf.MayContain(77));
  EXPECT_EQ(qf.element_count(), 0u);
}

TEST(QuotientFilterTest, FillsToLoadLimitThenRejects) {
  QuotientFilter qf(6, 8, nullptr);  // 64 slots.
  size_t inserted = 0;
  for (Key k = 0; k < 64; ++k) {
    if (qf.Insert(k)) ++inserted;
  }
  EXPECT_LT(inserted, 64u);  // Load limit kicked in.
  EXPECT_GE(inserted, 56u);
}

TEST(QuotientFilterTest, SpaceIsPackedSize) {
  RumCounters counters;
  {
    QuotientFilter qf(10, 9, &counters);
    // 1024 slots x (9+3) bits = 1536 bytes.
    EXPECT_EQ(qf.space_bytes(), 1536u);
    EXPECT_EQ(counters.snapshot().space_aux, 1536u);
  }
  EXPECT_EQ(counters.snapshot().space_aux, 0u);
}

TEST(BlockedBloomTest, NoFalseNegatives) {
  BlockedBloomFilter bloom(2000, 10, nullptr);
  for (Key k = 0; k < 2000; ++k) bloom.Add(k * 7);
  for (Key k = 0; k < 2000; ++k) {
    EXPECT_TRUE(bloom.MayContain(k * 7)) << k;
  }
}

TEST(BlockedBloomTest, FalsePositiveRateSlightlyAboveClassic) {
  const size_t kKeys = 8192;
  BloomFilter classic(kKeys, 10, nullptr);
  BlockedBloomFilter blocked(kKeys, 10, nullptr);
  for (Key k = 0; k < kKeys; ++k) {
    classic.Add(k);
    blocked.Add(k);
  }
  size_t classic_fp = 0, blocked_fp = 0;
  const size_t kProbes = 30000;
  for (Key k = 0; k < kProbes; ++k) {
    if (classic.MayContain(kKeys + 100 + k)) ++classic_fp;
    if (blocked.MayContain(kKeys + 100 + k)) ++blocked_fp;
  }
  // Blocked clusters bits, so it pays a modest fp penalty -- but stays in
  // the same ballpark.
  EXPECT_GE(blocked_fp + 20, classic_fp);
  EXPECT_LT(static_cast<double>(blocked_fp) / kProbes, 0.05);
}

TEST(BlockedBloomTest, OneCacheLinePerOperation) {
  RumCounters counters;
  BlockedBloomFilter bloom(1000, 10, &counters);
  bloom.Add(1);
  EXPECT_EQ(counters.snapshot().bytes_written_aux,
            BlockedBloomFilter::kBlockBytes);
  bloom.MayContain(1);
  EXPECT_EQ(counters.snapshot().bytes_read_aux,
            BlockedBloomFilter::kBlockBytes);
}

TEST(BlockedBloomTest, SpaceAccountedAndReleased) {
  RumCounters counters;
  {
    BlockedBloomFilter bloom(1000, 8, &counters);
    EXPECT_EQ(counters.snapshot().space_aux, bloom.space_bytes());
  }
  EXPECT_EQ(counters.snapshot().space_aux, 0u);
}

TEST(MixHashTest, IsDeterministicAndSpreads) {
  EXPECT_EQ(MixHash(42), MixHash(42));
  EXPECT_NE(MixHash(1), MixHash(2));
  // Low bits of sequential inputs should differ (avalanche).
  int same = 0;
  for (Key k = 0; k < 64; ++k) {
    if ((MixHash(k) & 1) == (MixHash(k + 1) & 1)) ++same;
  }
  EXPECT_GT(same, 10);
  EXPECT_LT(same, 54);
}

}  // namespace
}  // namespace rum

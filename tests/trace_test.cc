// Observability tier: the trace ring buffer, the latency histograms, and
// the metrics registry -- plus the contracts the tentpole fixes rely on:
// deterministic event order for seeded serial runs, exact agreement between
// drained event counts and device counters, byte-identical RUM accounting
// with tracing off, and the no-per-op-stats-merge sampling regression check.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/metrics.h"
#include "core/trace.h"
#include "methods/factory.h"
#include "storage/block_device.h"
#include "storage/caching_device.h"
#include "storage/faulty_device.h"
#include "storage/retry_device.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"
#include "workload/runner.h"

namespace rum {
namespace {

using testing_util::SmallOptions;

constexpr uint64_t kSeed = 0x7ACEULL;

/// Restores the process-wide trace switch to "off, drained" around a test so
/// tests compose regardless of execution order.
struct TraceGuard {
  ~TraceGuard() {
    Trace::Disable();
    Trace::Drain();
  }
};

/// The chaos stack the trace acceptance contract runs over: a tiny cache so
/// evictions and write-backs keep crossing the faulty layer.
struct Stack {
  RumCounters counters;
  BlockDevice base;
  FaultyDevice faulty;
  CachingDevice cache;

  explicit Stack(size_t cache_pages = 8)
      : base(512, &counters), faulty(&base), cache(&faulty, cache_pages) {}
};

WorkloadSpec ChaosSpec() {
  WorkloadSpec spec;
  spec.operations = 600;
  spec.key_range = 1 << 10;
  spec.insert_fraction = 0.4;
  spec.update_fraction = 0.1;
  spec.delete_fraction = 0.1;
  spec.scan_fraction = 0.05;
  spec.seed = kSeed;
  spec.error_mode = ErrorMode::kSkipAndCount;
  return spec;
}

FaultPlan ChaosPlan() {
  return FaultPlan::Transient(kSeed + 7, 0.0)
      .WithRate(FaultOp::kRead, 0.05)
      .WithRate(FaultOp::kWrite, 0.05)
      .WithRate(FaultOp::kAllocate, 0.05);
}

void ExpectSnapshotsEqual(const CounterSnapshot& a, const CounterSnapshot& b) {
  EXPECT_EQ(a.bytes_read_base, b.bytes_read_base);
  EXPECT_EQ(a.bytes_read_aux, b.bytes_read_aux);
  EXPECT_EQ(a.bytes_written_base, b.bytes_written_base);
  EXPECT_EQ(a.bytes_written_aux, b.bytes_written_aux);
  EXPECT_EQ(a.blocks_read, b.blocks_read);
  EXPECT_EQ(a.blocks_written, b.blocks_written);
  EXPECT_EQ(a.space_base, b.space_base);
  EXPECT_EQ(a.space_aux, b.space_aux);
  EXPECT_EQ(a.logical_bytes_read, b.logical_bytes_read);
  EXPECT_EQ(a.logical_bytes_written, b.logical_bytes_written);
  EXPECT_EQ(a.point_queries, b.point_queries);
  EXPECT_EQ(a.range_queries, b.range_queries);
  EXPECT_EQ(a.inserts, b.inserts);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.deletes, b.deletes);
  EXPECT_EQ(a.io_errors, b.io_errors);
  EXPECT_EQ(a.retries, b.retries);
}

// ------------------------------------------------------- LatencyHistogram

TEST(LatencyHistogramTest, SmallValuesAreExact) {
  for (uint64_t v = 0; v < LatencyHistogram::kSubBuckets; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(v), v);
  }
}

TEST(LatencyHistogramTest, BucketLowerBoundRoundTrips) {
  // Every bucket's lower bound maps back to that bucket, and lower bounds
  // are strictly increasing -- together that pins the bucketing scheme.
  uint64_t prev = 0;
  for (size_t i = 0; i < LatencyHistogram::kBucketCount; ++i) {
    uint64_t lo = LatencyHistogram::BucketLowerBound(i);
    EXPECT_EQ(LatencyHistogram::BucketIndex(lo), i) << "bucket " << i;
    if (i > 0) {
      EXPECT_GT(lo, prev) << "bucket " << i;
    }
    prev = lo;
  }
  // Values below 32 are still exact (the 16..31 group has 16 sub-buckets of
  // width 1); coalescing starts at 32, where sub-buckets widen to 2.
  EXPECT_NE(LatencyHistogram::BucketIndex(17),
            LatencyHistogram::BucketIndex(16));
  EXPECT_EQ(LatencyHistogram::BucketIndex(33),
            LatencyHistogram::BucketIndex(32));
  EXPECT_LT(LatencyHistogram::BucketIndex(~uint64_t{0}),
            LatencyHistogram::kBucketCount);
}

TEST(LatencyHistogramTest, RelativeErrorIsBounded) {
  // The bucket lower bound never understates by more than 1/kSubBuckets.
  for (uint64_t v : {100ull, 999ull, 4096ull, 123456789ull, 1ull << 40}) {
    uint64_t lo =
        LatencyHistogram::BucketLowerBound(LatencyHistogram::BucketIndex(v));
    EXPECT_LE(lo, v);
    EXPECT_GE(lo, v - v / LatencyHistogram::kSubBuckets) << v;
  }
}

TEST(LatencyHistogramTest, StatsAndPercentiles) {
  LatencyHistogram h;
  EXPECT_EQ(h.Percentile(0.5), 0u);  // Empty: all stats zero.
  EXPECT_EQ(h.min(), 0u);
  for (uint64_t v = 1; v <= 1000; ++v) h.Record(v);
  EXPECT_EQ(h.count(), 1000u);
  EXPECT_EQ(h.sum(), 500500u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 500.5);
  // Bucket lower bounds never overstate: p50 is in (500 * 15/16, 500].
  EXPECT_LE(h.Percentile(0.50), 500u);
  EXPECT_GE(h.Percentile(0.50), 468u);
  EXPECT_LE(h.Percentile(0.99), 990u);
  EXPECT_GE(h.Percentile(0.99), 927u);
  EXPECT_EQ(h.Percentile(0.0), 1u);
  // The top quantile reports the max's bucket lower bound, never more.
  EXPECT_EQ(h.Percentile(1.0), LatencyHistogram::BucketLowerBound(
                                   LatencyHistogram::BucketIndex(1000)));
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
  LatencyHistogram a, b, combined;
  for (uint64_t v = 0; v < 500; v += 3) {
    a.Record(v);
    combined.Record(v);
  }
  for (uint64_t v = 10000; v < 20000; v += 7) {
    b.Record(v);
    combined.Record(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), combined.count());
  EXPECT_EQ(a.sum(), combined.sum());
  EXPECT_EQ(a.min(), combined.min());
  EXPECT_EQ(a.max(), combined.max());
  for (double q : {0.1, 0.5, 0.9, 0.99}) {
    EXPECT_EQ(a.Percentile(q), combined.Percentile(q)) << q;
  }
}

// The p999 accessor and cumulative counts back the saturation tier's SLO
// arithmetic: completions at-or-under a latency bound must be exact for
// small values (where buckets are 1-wide), and p999 must land between p99
// and max and appear in the JSON export.
TEST(LatencyHistogramTest, TailAccessorsAndCumulativeCounts) {
  LatencyHistogram h;
  EXPECT_EQ(h.p999(), 0u);  // Empty histogram: all tails zero.
  EXPECT_EQ(h.CountAtOrBelow(100), 0u);
  for (uint64_t v = 1; v <= 60; ++v) h.Record(v);
  h.Record(5000);
  // Values <= 64 sit in exact 1-wide buckets.
  EXPECT_EQ(h.CountAtOrBelow(0), 0u);
  EXPECT_EQ(h.CountAtOrBelow(30), 30u);
  EXPECT_EQ(h.CountAtOrBelow(60), 60u);
  EXPECT_EQ(h.CountAtOrBelow(2500), 60u);  // Bound below the outlier's bucket.
  EXPECT_EQ(h.CountAtOrBelow(5000), 61u);
  EXPECT_GE(h.p999(), h.Percentile(0.99));
  EXPECT_LE(h.p999(), h.max());
  std::string json = h.ToJson();
  EXPECT_NE(json.find("\"p999\":"), std::string::npos);
}

// Empty and merged-empty histograms must answer every query with 0 -- the
// dashboards and SLO guards hit this case on any idle op class, and the
// percentile walk must not read past the bucket array doing it.
TEST(LatencyHistogramTest, EmptyAndMergedEmptyQueriesReturnZero) {
  LatencyHistogram a, b;
  a.Merge(b);  // Merging empties keeps count() == 0.
  EXPECT_EQ(a.count(), 0u);
  for (double q : {0.0, 0.5, 0.999, 1.0}) {
    EXPECT_EQ(a.Percentile(q), 0u) << q;
  }
  EXPECT_EQ(a.p999(), 0u);
  EXPECT_EQ(a.CountAtOrBelow(0), 0u);
  EXPECT_EQ(a.CountAtOrBelow(~uint64_t{0}), 0u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

// Degenerate quantiles and bounds must clamp, not index out of range: NaN
// and out-of-[0,1] quantiles, and a cumulative bound in the top bucket.
TEST(LatencyHistogramTest, DegenerateQuantilesAndBoundsClamp) {
  LatencyHistogram h;
  h.Record(7);
  h.Record(~uint64_t{0});  // Top bucket: CountAtOrBelow must include it.
  EXPECT_EQ(h.Percentile(std::numeric_limits<double>::quiet_NaN()),
            h.Percentile(0.0));
  EXPECT_EQ(h.Percentile(-1.0), h.Percentile(0.0));
  EXPECT_EQ(h.Percentile(2.0), h.Percentile(1.0));
  EXPECT_EQ(h.CountAtOrBelow(~uint64_t{0}), 2u);
  EXPECT_EQ(h.CountAtOrBelow(6), 0u);
  EXPECT_EQ(h.CountAtOrBelow(7), 1u);
}

// -------------------------------------------------------- MetricsRegistry

TEST(MetricsRegistryTest, OwnedCountersWorkRegardlessOfEnabled) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.set_enabled(false);
  MetricsRegistry::Counter* c =
      registry.FindOrCreateCounter("trace_test.disabled_counter");
  ASSERT_NE(c, nullptr);
  uint64_t before = c->value();
  c->Increment(3);
  EXPECT_EQ(c->value(), before + 3);
  // Same name, same counter.
  EXPECT_EQ(registry.FindOrCreateCounter("trace_test.disabled_counter"), c);
  EXPECT_NE(registry.ToJson().find("\"trace_test.disabled_counter\""),
            std::string::npos);
}

TEST(MetricsRegistryTest, CallbackInstrumentsGateOnEnabled) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.set_enabled(false);
  EXPECT_EQ(registry.RegisterGauge("trace_test.dead", [] { return 1u; }), 0u);
  EXPECT_EQ(registry.ToJson().find("trace_test.dead"), std::string::npos);

  registry.set_enabled(true);
  uint64_t id =
      registry.RegisterGauge("trace_test.live", [] { return 42u; });
  EXPECT_NE(id, 0u);
  EXPECT_NE(registry.ToJson().find("\"trace_test.live\":42"),
            std::string::npos);
  registry.Unregister(id);
  EXPECT_EQ(registry.ToJson().find("trace_test.live"), std::string::npos);
  registry.set_enabled(false);
}

TEST(MetricsRegistryTest, MetricsGroupRegistersAndTearsDown) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.set_enabled(true);
  std::string json;
  {
    MetricsGroup group;
    group.Init("trace_test_group");
    ASSERT_TRUE(group.active());
    group.Gauge("answer", [] { return 7u; });
    group.Histogram("lat", [] {
      LatencyHistogram h;
      h.Record(5);
      return h;
    });
    json = registry.ToJson();
    EXPECT_NE(json.find(".answer\":7"), std::string::npos);
    EXPECT_NE(json.find(".lat\":{\"count\":1"), std::string::npos);
  }
  // The group's destructor unregistered everything it owned.
  json = registry.ToJson();
  EXPECT_EQ(json.find("trace_test_group"), std::string::npos);
  registry.set_enabled(false);
}

TEST(MetricsRegistryTest, InstanceNamesAreUniquePerPrefix) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  std::string a = registry.InstanceName("trace_test_prefix");
  std::string b = registry.InstanceName("trace_test_prefix");
  EXPECT_NE(a, b);
  EXPECT_EQ(a.rfind("trace_test_prefix[", 0), 0u) << a;
}

TEST(MetricsRegistryTest, DeviceStackExportsGaugesWhileEnabled) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.set_enabled(true);
  {
    Stack stack;
    PageId p = testing_util::MustAllocate(stack.cache, DataClass::kBase);
    std::vector<uint8_t> data(512, 0x5A);
    ASSERT_TRUE(stack.cache.Write(p, data).ok());
    std::vector<uint8_t> out;
    ASSERT_TRUE(stack.cache.Read(p, &out).ok());
    std::string json = registry.ToJson();
    // Each layer registered an instance; names carry the layer prefix.
    EXPECT_NE(json.find("block_device["), std::string::npos);
    EXPECT_NE(json.find("faulty_device["), std::string::npos);
    EXPECT_NE(json.find("caching_device["), std::string::npos);
    EXPECT_NE(json.find(".hits\":1"), std::string::npos);
  }
  // Stack destruction unregistered every gauge (MetricsGroup RAII).
  std::string json = registry.ToJson();
  EXPECT_EQ(json.find("block_device["), std::string::npos);
  EXPECT_EQ(json.find("caching_device["), std::string::npos);
  registry.set_enabled(false);
}

// ------------------------------------------------------------- Trace ring

TEST(TraceTest, DisabledEmitIsANoOp) {
  TraceGuard guard;
  Trace::Disable();
  Trace::Drain();
  Trace::Emit(TraceKind::kCacheHit, TraceOp::kRead, 1, DataClass::kBase);
  EXPECT_TRUE(Trace::Drain().empty());
}

TEST(TraceTest, WraparoundKeepsNewestEvents) {
  TraceGuard guard;
  Trace::Enable(/*events_per_thread=*/4);
  for (uint64_t i = 0; i < 11; ++i) {
    Trace::Emit(TraceKind::kCacheMiss, TraceOp::kRead,
                static_cast<PageId>(i), DataClass::kBase, /*detail=*/i);
  }
  EXPECT_EQ(Trace::dropped_events(), 7u);
  std::vector<TraceEvent> events = Trace::Drain();
  ASSERT_EQ(events.size(), 4u);
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].detail, 7 + i);  // The newest four, in order.
    EXPECT_EQ(events[i].seq, 7 + i);
  }
  // Drain cleared the rings.
  EXPECT_TRUE(Trace::Drain().empty());
}

TEST(TraceTest, EnableResetsSequenceAndDropCounts) {
  TraceGuard guard;
  Trace::Enable(8);
  for (int i = 0; i < 20; ++i) {
    Trace::Emit(TraceKind::kCacheHit, TraceOp::kRead, 1, DataClass::kBase);
  }
  EXPECT_GT(Trace::dropped_events(), 0u);
  Trace::Enable(8);
  EXPECT_EQ(Trace::dropped_events(), 0u);
  Trace::Emit(TraceKind::kCacheHit, TraceOp::kRead, 1, DataClass::kBase);
  std::vector<TraceEvent> events = Trace::Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].seq, 0u);
}

// Two fresh fixed-seed serial chaos runs produce identical event streams:
// same kinds, ops, pages, classes, sequence numbers, and details -- except
// kPinRelease's detail, which is a wall-clock held-duration and is masked.
TEST(TraceTest, SerialChaosRunsReplayIdenticalEventStreams) {
  TraceGuard guard;
  auto run_once = [] {
    Trace::Enable(size_t{1} << 16);
    Stack stack;
    auto method = MakeAccessMethod("btree", SmallOptions(), &stack.cache);
    EXPECT_NE(method, nullptr);
    stack.faulty.SetPlan(ChaosPlan());
    Result<RumProfile> r = WorkloadRunner::Run(method.get(), ChaosSpec());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return Trace::Drain();
  };
  std::vector<TraceEvent> first = run_once();
  std::vector<TraceEvent> second = run_once();
  ASSERT_GT(first.size(), 0u);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].seq, second[i].seq) << i;
    EXPECT_EQ(first[i].kind, second[i].kind) << i;
    EXPECT_EQ(first[i].op, second[i].op) << i;
    EXPECT_EQ(first[i].page, second[i].page) << i;
    EXPECT_EQ(first[i].cls, second[i].cls) << i;
    if (first[i].kind != TraceKind::kPinRelease) {
      EXPECT_EQ(first[i].detail, second[i].detail)
          << i << " " << TraceKindName(first[i].kind);
    }
  }
}

// The acceptance contract: a fixed-seed chaos run's drained event counts
// agree exactly with the device layers' own counters, with nothing dropped.
TEST(TraceTest, ChaosEventCountsMatchDeviceCountersExactly) {
  TraceGuard guard;
  Trace::Enable(size_t{1} << 18);
  Stack stack;
  auto method = MakeAccessMethod("btree", SmallOptions(), &stack.cache);
  ASSERT_NE(method, nullptr);
  stack.faulty.SetPlan(ChaosPlan()
                           .WithRate(FaultOp::kPin, 0.03)
                           .WithTornWrites(0.5, 64));
  Result<RumProfile> r = WorkloadRunner::Run(method.get(), ChaosSpec());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_EQ(Trace::dropped_events(), 0u);

  std::vector<TraceEvent> events = Trace::Drain();
  std::map<TraceKind, uint64_t> by_kind;
  for (const TraceEvent& e : events) ++by_kind[e.kind];

  EXPECT_EQ(by_kind[TraceKind::kCacheHit], stack.cache.hits());
  EXPECT_EQ(by_kind[TraceKind::kCacheMiss], stack.cache.misses());
  EXPECT_EQ(by_kind[TraceKind::kCacheEvict], stack.cache.evictions());
  EXPECT_EQ(by_kind[TraceKind::kCacheWriteBack], stack.cache.write_backs());
  EXPECT_EQ(by_kind[TraceKind::kCacheWriteBackFail],
            stack.cache.write_back_failures());
  EXPECT_EQ(by_kind[TraceKind::kFaultInjected],
            stack.faulty.faults_injected());
  EXPECT_EQ(by_kind[TraceKind::kTornWrite], stack.faulty.torn_writes());
  EXPECT_EQ(by_kind[TraceKind::kPinAcquire], by_kind[TraceKind::kPinRelease]);
  EXPECT_GT(by_kind[TraceKind::kFaultInjected], 0u);  // The chaos was real.
  EXPECT_GT(by_kind[TraceKind::kCacheEvict], 0u);
}

// Tracing must observe, never perturb: the same seeded run with tracing on
// and off ends with byte-identical RUM counter snapshots.
TEST(TraceTest, DisabledTraceLeavesRumCountersByteIdentical) {
  TraceGuard guard;
  auto run_once = [](bool traced) {
    if (traced) {
      Trace::Enable(size_t{1} << 16);
    } else {
      Trace::Disable();
      Trace::Drain();
    }
    Stack stack;
    auto method = MakeAccessMethod("btree", SmallOptions(), &stack.cache);
    EXPECT_NE(method, nullptr);
    stack.faulty.SetPlan(ChaosPlan());
    Result<RumProfile> r = WorkloadRunner::Run(method.get(), ChaosSpec());
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return stack.counters.snapshot();
  };
  CounterSnapshot off = run_once(false);
  EXPECT_TRUE(Trace::Drain().empty());  // Nothing emitted while disabled.
  CounterSnapshot on = run_once(true);
  ExpectSnapshotsEqual(off, on);
}

// Concurrent emission: four workers over one shared stack, rings drained
// after the join. Sequence numbers must come back unique and increasing
// (Drain's merge contract); TSan validates the memory model in that tier.
TEST(TraceTest, ConcurrentEmissionDrainsCleanly) {
  TraceGuard guard;
  Trace::Enable(size_t{1} << 16);
  Stack stack(16);
  auto method =
      MakeAccessMethod("sharded-btree", SmallOptions(), &stack.cache);
  ASSERT_NE(method, nullptr);
  stack.faulty.SetPlan(FaultPlan::Transient(kSeed + 9, 0.0)
                           .WithRate(FaultOp::kRead, 0.02)
                           .WithRate(FaultOp::kWrite, 0.02));
  WorkloadSpec spec = ChaosSpec();
  spec.concurrency = 4;
  spec.scan_fraction = 0;  // Scans cross shards; keep workers disjoint.
  Result<RumProfile> r = WorkloadRunner::Run(method.get(), spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  std::vector<TraceEvent> events = Trace::Drain();
  ASSERT_GT(events.size(), 0u);
  std::set<uint64_t> seqs;
  uint64_t prev = 0;
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_TRUE(seqs.insert(events[i].seq).second) << "duplicate seq";
    if (i > 0) {
      EXPECT_GT(events[i].seq, prev);
    }
    prev = events[i].seq;
  }
}

// ------------------------------------------------- Retry event accounting

// kRetryAttempt events agree with the retries counter, io_errors agrees
// with the faulty layer's injection count (the satellite-c invariant), and
// io_errors - retries equals the operations that ultimately failed.
TEST(TraceTest, RetryEventsMatchCountersUnderDeterministicReplay) {
  TraceGuard guard;
  Trace::Enable(size_t{1} << 16);
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice faulty(&base);
  Options options;
  options.storage.retry.max_attempts = 3;
  options.storage.retry.backoff_base_us = 10;
  RetryingDevice device(&faulty, options, &counters);

  faulty.SetPlan(FaultPlan::Transient(kSeed, 0.0)
                     .WithRate(FaultOp::kRead, 0.6)
                     .WithRate(FaultOp::kWrite, 0.6));
  std::vector<uint8_t> data(512, 0x33);
  std::vector<uint8_t> out;
  uint64_t failed_ops = 0;
  std::vector<PageId> pages;
  for (int i = 0; i < 40; ++i) {
    pages.push_back(testing_util::MustAllocate(device, DataClass::kBase));
  }
  for (PageId p : pages) {
    if (!device.Write(p, data).ok()) ++failed_ops;
    if (!device.Read(p, &out).ok()) ++failed_ops;
  }

  CounterSnapshot snap = counters.snapshot();
  std::vector<TraceEvent> events = Trace::Drain();
  uint64_t retry_events = 0;
  for (const TraceEvent& e : events) {
    if (e.kind != TraceKind::kRetryAttempt) continue;
    ++retry_events;
    EXPECT_GE(e.detail, 2u);  // Attempt numbers start at the first re-try.
    EXPECT_LE(e.detail, options.storage.retry.max_attempts);
  }
  EXPECT_GT(snap.retries, 0u);
  EXPECT_GT(failed_ops, 0u);
  EXPECT_EQ(retry_events, snap.retries);
  EXPECT_EQ(snap.io_errors, faulty.faults_injected());
  EXPECT_EQ(snap.io_errors - snap.retries, failed_ops);
}

// kCorruption is not an I/O error: it must neither retry nor charge
// io_errors at the retry layer beyond the faults the faulty layer injected.
TEST(TraceTest, CorruptionChargesNoRetryAccounting) {
  TraceGuard guard;
  Trace::Enable(size_t{1} << 12);
  RumCounters counters;
  BlockDevice base(512, &counters);
  FaultyDevice faulty(&base);
  Options options;
  options.storage.retry.max_attempts = 5;
  RetryingDevice device(&faulty, options, &counters);

  PageId p = testing_util::MustAllocate(device, DataClass::kBase);
  std::vector<uint8_t> data(512, 0x44);
  ASSERT_TRUE(device.Write(p, data).ok());
  // One torn write poisons the page...
  faulty.SetPlan(FaultPlan::Transient(kSeed, 0.0)
                     .WithRate(FaultOp::kWrite, 1.0)
                     .WithTornWrites(1.0, 32));
  EXPECT_FALSE(device.Write(p, data).ok());
  faulty.ClearFaults();
  uint64_t io_errors_after_tear = counters.snapshot().io_errors;
  uint64_t retries_after_tear = counters.snapshot().retries;

  // ...and the corrupt read fails once: no retry events, no io_errors tick.
  std::vector<uint8_t> out;
  EXPECT_EQ(device.Read(p, &out).code(), Code::kCorruption);
  CounterSnapshot snap = counters.snapshot();
  EXPECT_EQ(snap.io_errors, io_errors_after_tear);
  EXPECT_EQ(snap.retries, retries_after_tear);
  for (const TraceEvent& e : Trace::Drain()) {
    if (e.kind == TraceKind::kRetryAttempt) {
      EXPECT_NE(e.op, TraceOp::kRead) << "corrupt read was retried";
    }
  }
}

// ------------------------------------------------ Runner latency sampling

TEST(TraceTest, SerialRunnerPopulatesLatencyHistograms) {
  WorkloadSpec spec;
  spec.operations = 500;
  spec.key_range = 1 << 10;
  spec.insert_fraction = 0.3;
  spec.update_fraction = 0.1;
  spec.delete_fraction = 0.1;
  spec.scan_fraction = 0.1;
  spec.seed = kSeed;
  auto method = MakeAccessMethod("btree", SmallOptions());
  ASSERT_NE(method, nullptr);
  Result<RumProfile> r =
      WorkloadRunner::LoadAndRun(method.get(), 1000, spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const OpLatencies& latency = r.value().latency;
  // Every executed op landed in exactly one class histogram.
  EXPECT_EQ(latency.Total().count(), spec.operations);
  EXPECT_GT(latency.point.count(), 0u);
  EXPECT_GT(latency.insert.count(), 0u);
  EXPECT_GT(latency.scan.count(), 0u);
  EXPECT_GT(latency.Total().max(), 0u);
  std::string json = latency.ToJson();
  EXPECT_NE(json.find("\"point\""), std::string::npos);
  EXPECT_NE(json.find("\"scan\""), std::string::npos);
}

TEST(TraceTest, ConcurrentRunnerMergesLatencyAndCostSamples) {
  WorkloadSpec spec;
  spec.operations = 2000;
  spec.key_range = 1 << 12;
  spec.insert_fraction = 0.3;
  spec.seed = kSeed;
  spec.concurrency = 4;
  auto method = MakeAccessMethod("sharded-btree", SmallOptions());
  ASSERT_NE(method, nullptr);
  Result<RumProfile> r =
      WorkloadRunner::LoadAndRun(method.get(), 2000, spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const RumProfile& p = r.value();
  EXPECT_EQ(p.latency.Total().count(), spec.operations);
  // Concurrent phases now carry per-op byte-cost percentiles too (sampled
  // from the per-thread I/O tally, merged after the join).
  EXPECT_GT(p.read_cost.max, 0u);
  EXPECT_GE(p.read_cost.p99, p.read_cost.p50);
  EXPECT_GE(p.read_cost.max, p.read_cost.p99);
}

// --------------------------------------------- Sampling regression check

// The satellite-a fix: RunSerial used to call method->stats() -- an
// O(shards) lock-and-merge -- once per operation to sample per-op costs.
// The per-thread I/O tally made sampling O(1); the stats_merges counter
// proves a phase run performs only a constant handful of full merges.
TEST(TraceTest, SerialRunnerDoesNotMergeShardStatsPerOp) {
  MetricsRegistry::Counter* merges =
      MetricsRegistry::Global().FindOrCreateCounter(
          "sharded_method.stats_merges");
  WorkloadSpec spec;
  spec.operations = 1000;
  spec.key_range = 1 << 10;
  spec.insert_fraction = 0.3;
  spec.seed = kSeed;
  auto method = MakeAccessMethod("sharded-btree", SmallOptions());
  ASSERT_NE(method, nullptr);
  uint64_t before = merges->value();
  Result<RumProfile> r =
      WorkloadRunner::LoadAndRun(method.get(), 1000, spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  uint64_t delta = merges->value() - before;
  // LoadAndRun brackets the load and run phases with a few snapshots; the
  // bound just has to be far below one merge per operation.
  EXPECT_LE(delta, 16u);
}

// ---------------------------------------------------- ApplyObservability

TEST(TraceTest, ApplyObservabilityThrowsBothSwitches) {
  TraceGuard guard;
  Options options;
  options.observability.trace = true;
  options.observability.trace_events_per_thread = 32;
  options.observability.metrics = true;
  ApplyObservability(options);
  EXPECT_TRUE(Trace::enabled());
  EXPECT_TRUE(MetricsRegistry::Global().enabled());
  Trace::Emit(TraceKind::kCacheHit, TraceOp::kRead, 1, DataClass::kBase);
  EXPECT_EQ(Trace::Drain().size(), 1u);

  options.observability.trace = false;
  options.observability.metrics = false;
  ApplyObservability(options);
  EXPECT_FALSE(Trace::enabled());
  EXPECT_FALSE(MetricsRegistry::Global().enabled());
}

}  // namespace
}  // namespace rum

// Memory-arbiter tier: the global adaptive memory arbiter's contracts --
// exact budget conservation, marginal-benefit steering with min-share
// floors and bounded per-replan movement, deterministic replay, the
// disabled/static differential, and the A10 acceptance experiment: on a
// phase-shifting workload the arbitrated budget beats every same-total
// static split, with the byte shares visibly migrating between hierarchy
// levels (the paper's Figure-2 trade, executed live).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "adaptive/memory_arbiter.h"
#include "core/memory_budget.h"
#include "methods/lsm/lsm_tree.h"
#include "storage/block_device.h"
#include "storage/caching_device.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"
#include "workload/runner.h"

namespace rum {
namespace {

using testing_util::SmallOptions;

// ------------------------------------------------------------ Fake pools

/// A scripted MemoryPool: the test controls the benefit signal directly.
class FakePool : public MemoryPool {
 public:
  FakePool(std::string name, MemoryPoolKind kind, uint64_t configured)
      : name_(std::move(name)), kind_(kind), bytes_(configured) {}

  std::string_view pool_name() const override { return name_; }
  MemoryPoolKind pool_kind() const override { return kind_; }
  uint64_t pool_bytes() const override { return bytes_; }
  void SetPoolBytes(uint64_t bytes) override {
    bytes_ = bytes;
    ++resizes_;
  }
  uint64_t BenefitSignal() const override { return signal_; }

  void AddSignal(uint64_t delta) { signal_ += delta; }
  uint64_t bytes() const { return bytes_; }
  uint64_t resizes() const { return resizes_; }

 private:
  std::string name_;
  MemoryPoolKind kind_;
  uint64_t bytes_;
  uint64_t signal_ = 0;
  uint64_t resizes_ = 0;
};

// ------------------------------------------------------- Seeding & floors

TEST(MemoryArbiterTest, SeedSplitIsProportionalAndExact) {
  MemoryArbiter arbiter({.budget_bytes = 1001});
  FakePool cache("c", MemoryPoolKind::kCache, 300);
  FakePool memtable("m", MemoryPoolKind::kMemtable, 100);
  arbiter.RegisterPool(&cache);
  arbiter.RegisterPool(&memtable);
  // 3:1 configured shape rescaled to the budget, conserved to the byte
  // (the flooring remainder lands on the earliest registration).
  EXPECT_EQ(cache.bytes() + memtable.bytes(), 1001u);
  EXPECT_EQ(cache.bytes(), 751u);  // floor(1001*3/4) = 750, +1 remainder.
  EXPECT_EQ(memtable.bytes(), 250u);
  MemorySplit split = arbiter.split();
  EXPECT_EQ(split.assigned_total(), 1001u);
  EXPECT_EQ(split.cache_bytes, 751u);
  EXPECT_EQ(split.memtable_bytes, 250u);
  EXPECT_EQ(split.replans, 0u);

  arbiter.UnregisterPool(&memtable);
  EXPECT_EQ(cache.bytes(), 1001u);  // Survivors inherit the freed bytes.
}

TEST(MemoryArbiterTest, ZeroConfiguredPoolsSeedEqually) {
  MemoryArbiter arbiter({.budget_bytes = 1000});
  FakePool a("a", MemoryPoolKind::kCache, 0);
  FakePool b("b", MemoryPoolKind::kMemtable, 0);
  FakePool c("c", MemoryPoolKind::kFilter, 0);
  arbiter.RegisterPool(&a);
  arbiter.RegisterPool(&b);
  arbiter.RegisterPool(&c);
  EXPECT_EQ(a.bytes() + b.bytes() + c.bytes(), 1000u);
  EXPECT_EQ(a.bytes(), 334u);  // 333 + the remainder byte.
  EXPECT_EQ(b.bytes(), 333u);
  EXPECT_EQ(c.bytes(), 333u);
}

TEST(MemoryArbiterTest, QuietEpochKeepsTheSplit) {
  MemoryArbiter arbiter({.budget_bytes = 1 << 20});
  FakePool cache("c", MemoryPoolKind::kCache, 100);
  FakePool memtable("m", MemoryPoolKind::kMemtable, 100);
  arbiter.RegisterPool(&cache);
  arbiter.RegisterPool(&memtable);
  MemorySplit before = arbiter.split();
  arbiter.Replan();  // No signal deltas: evidence of nothing.
  MemorySplit after = arbiter.split();
  EXPECT_EQ(after.cache_bytes, before.cache_bytes);
  EXPECT_EQ(after.memtable_bytes, before.memtable_bytes);
  EXPECT_EQ(after.replans, 0u);
}

TEST(MemoryArbiterTest, ReplanFollowsMarginalBenefitWithinBounds) {
  constexpr uint64_t kBudget = 1'000'000;
  MemoryArbiter arbiter({.budget_bytes = kBudget,
                         .min_share = 0.05,
                         .step_fraction = 0.25});
  FakePool cache("c", MemoryPoolKind::kCache, 100);
  FakePool memtable("m", MemoryPoolKind::kMemtable, 100);
  FakePool filter("f", MemoryPoolKind::kFilter, 100);
  arbiter.RegisterPool(&cache);
  arbiter.RegisterPool(&memtable);
  arbiter.RegisterPool(&filter);
  uint64_t cache_before = cache.bytes();

  // All the benefit evidence points at the cache.
  cache.AddSignal(1 << 20);
  arbiter.Replan();
  MemorySplit split = arbiter.split();
  EXPECT_EQ(split.assigned_total(), kBudget);  // Conserved to the byte.
  EXPECT_GT(cache.bytes(), cache_before);
  // One replan moves at most step_fraction of the budget.
  EXPECT_LE(cache.bytes() - cache_before,
            static_cast<uint64_t>(0.25 * kBudget) + 1);

  // Keep the evidence one-sided: the split converges toward the cache but
  // every kind keeps its min_share floor.
  for (int i = 0; i < 20; ++i) {
    cache.AddSignal(1 << 20);
    arbiter.Replan();
  }
  split = arbiter.split();
  EXPECT_EQ(split.assigned_total(), kBudget);
  EXPECT_GE(split.memtable_bytes, static_cast<uint64_t>(0.05 * kBudget) - 1);
  EXPECT_GE(split.filter_bytes, static_cast<uint64_t>(0.05 * kBudget) - 1);
  EXPECT_GE(split.cache_bytes, static_cast<uint64_t>(0.85 * kBudget) - 2);

  // Now the evidence flips to the memtable; bytes migrate back.
  uint64_t memtable_starved = split.memtable_bytes;
  for (int i = 0; i < 20; ++i) {
    memtable.AddSignal(1 << 20);
    arbiter.Replan();
  }
  split = arbiter.split();
  EXPECT_EQ(split.assigned_total(), kBudget);
  EXPECT_GT(split.memtable_bytes, memtable_starved);
  EXPECT_GE(split.memtable_bytes, static_cast<uint64_t>(0.80 * kBudget));
}

TEST(MemoryArbiterTest, WithinKindBytesSplitEquallyAcrossShards) {
  MemoryArbiter arbiter({.budget_bytes = 1003});
  FakePool shard0("s0", MemoryPoolKind::kCache, 100);
  FakePool shard1("s1", MemoryPoolKind::kCache, 100);
  FakePool memtable("m", MemoryPoolKind::kMemtable, 200);
  arbiter.RegisterPool(&shard0);
  arbiter.RegisterPool(&shard1);
  arbiter.RegisterPool(&memtable);
  shard0.AddSignal(4096);  // One shard's evidence benefits the whole kind.
  arbiter.Replan();
  // Sharded symmetry: the cache kind's bytes divide equally (remainder to
  // the earliest registration), regardless of which shard saw the misses.
  EXPECT_TRUE(shard0.bytes() == shard1.bytes() ||
              shard0.bytes() == shard1.bytes() + 1)
      << shard0.bytes() << " vs " << shard1.bytes();
  EXPECT_EQ(arbiter.split().assigned_total(), 1003u);
}

// --------------------------------------------------------- Determinism

// Same seed metrics trajectory, same epoch boundaries => byte-identical
// splits at every step. The replan must be pure arithmetic over the
// deltas: no wall-clock, no address-dependent ordering.
TEST(MemoryArbiterTest, IdenticalTrajectoriesReplayByteIdentically) {
  MemoryArbiter::Config config{.budget_bytes = 123456,
                               .epoch_ops = 64,
                               .min_share = 0.05,
                               .step_fraction = 0.25};
  MemoryArbiter a(config), b(config);
  FakePool ac("c", MemoryPoolKind::kCache, 300);
  FakePool am("m", MemoryPoolKind::kMemtable, 200);
  FakePool af("f", MemoryPoolKind::kFilter, 10);
  FakePool bc("c", MemoryPoolKind::kCache, 300);
  FakePool bm("m", MemoryPoolKind::kMemtable, 200);
  FakePool bf("f", MemoryPoolKind::kFilter, 10);
  a.RegisterPool(&ac);
  a.RegisterPool(&am);
  a.RegisterPool(&af);
  b.RegisterPool(&bc);
  b.RegisterPool(&bm);
  b.RegisterPool(&bf);

  uint64_t x = 0x9E3779B97F4A7C15ull;  // Deterministic signal "trajectory".
  auto next = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return x % 10000;
  };
  for (int step = 0; step < 200; ++step) {
    uint64_t dc = next(), dm = next(), df = next(), ops = 1 + next() % 40;
    ac.AddSignal(dc);
    bc.AddSignal(dc);
    am.AddSignal(dm);
    bm.AddSignal(dm);
    af.AddSignal(df);
    bf.AddSignal(df);
    a.NotePoolOps(ops);
    b.NotePoolOps(ops);
    ASSERT_EQ(ac.bytes(), bc.bytes()) << "step " << step;
    ASSERT_EQ(am.bytes(), bm.bytes()) << "step " << step;
    ASSERT_EQ(af.bytes(), bf.bytes()) << "step " << step;
    ASSERT_EQ(a.split().ToString(), b.split().ToString()) << "step " << step;
  }
  EXPECT_GT(a.replans(), 0u);
  EXPECT_EQ(a.replans(), b.replans());
}

// ----------------------------------------------- Disabled differential

/// One arbitrable stack: BlockDevice -> CachingDevice -> LsmTree, with the
/// base device's counters captured separately so tests can score exactly
/// the traffic that escaped the memory hierarchy.
struct ArbiterStack {
  RumCounters base_counters;
  BlockDevice base;
  CachingDevice cache;
  LsmTree tree;

  ArbiterStack(const Options& options, size_t cache_pages,
               MemoryRegistrar* registrar)
      : base(options.block_size, &base_counters),
        cache(&base, cache_pages, registrar),
        tree(options, &cache) {}

  /// Bytes that reached the base device (the level below every MO pool).
  uint64_t base_traffic() const {
    CounterSnapshot s = base_counters.snapshot();
    return s.bytes_read_base + s.bytes_read_aux + s.bytes_written_base +
           s.bytes_written_aux;
  }
};

/// Drives load + alternating hot-read / write-burst phases; returns base
/// traffic. Everything is seeded and serial: byte-identical run-to-run.
uint64_t RunPhaseShift(ArbiterStack* stack, MemoryArbiter* arbiter,
                       MemorySplit* after_read, MemorySplit* after_write) {
  constexpr Key kLoad = 4000;
  constexpr Key kHot = 1500;
  constexpr int kReadsPerPhase = 8000;
  constexpr Key kWritesPerPhase = 4000;
  Key next_key = kLoad;
  for (Key k = 0; k < kLoad; ++k) {
    EXPECT_TRUE(stack->tree.Insert(k, ValueFor(k)).ok());
  }
  for (int cycle = 0; cycle < 2; ++cycle) {
    // Hot-read phase: cyclic sweep over the hot prefix -- fits in a grown
    // cache, thrashes a small one.
    for (int i = 0; i < kReadsPerPhase; ++i) {
      Key k = static_cast<Key>(i) % kHot;
      (void)stack->tree.Get(k);
    }
    if (arbiter != nullptr && after_read != nullptr && cycle == 1) {
      *after_read = arbiter->split();
    }
    // Write-burst phase: fresh keys; a grown memtable absorbs more per
    // flush cascade.
    for (Key w = 0; w < kWritesPerPhase; ++w) {
      Key k = next_key++;
      EXPECT_TRUE(stack->tree.Insert(k, ValueFor(k)).ok());
    }
    if (arbiter != nullptr && after_write != nullptr && cycle == 1) {
      *after_write = arbiter->split();
    }
  }
  return stack->base_traffic();
}

Options PhaseShiftOptions(size_t memtable_entries, MemoryArbiter* arbiter) {
  Options options = SmallOptions();
  options.lsm.memtable_entries = memtable_entries;
  options.lsm.bloom_bits_per_key = 8;
  options.memory.enabled = arbiter != nullptr;
  options.memory.arbiter = arbiter;
  return options;
}

// memory.enabled=false must be byte-identical to the plain static
// configuration: the live-knob indirection (atomic limits, tick hooks,
// pool plumbing) must not perturb a single counter when arbitration is
// off.
TEST(MemoryArbiterTest, DisabledIsByteIdenticalToStatic) {
  ArbiterStack plain(PhaseShiftOptions(768, nullptr), 48, nullptr);
  Options disabled = PhaseShiftOptions(768, nullptr);
  MemoryArbiter unused({.budget_bytes = 1 << 20});
  disabled.memory.arbiter = &unused;  // Present but enabled=false: inert.
  disabled.memory.enabled = false;
  ArbiterStack off(disabled, 48, nullptr);

  uint64_t traffic_plain = RunPhaseShift(&plain, nullptr, nullptr, nullptr);
  uint64_t traffic_off = RunPhaseShift(&off, nullptr, nullptr, nullptr);
  EXPECT_EQ(traffic_plain, traffic_off);
  EXPECT_EQ(plain.tree.stats().total_space(), off.tree.stats().total_space());
  EXPECT_EQ(unused.pool_count(), 0u);  // Nothing ever registered.
}

// An *enabled* arbiter whose budget equals the static configuration's
// total, with epochs that never trip, seeds every pool at exactly its
// static size -- so the whole run stays byte-identical to the static
// stack. This pins the seeding arithmetic end to end through real pools.
TEST(MemoryArbiterTest, NeverReplanningArbiterMatchesStaticByteForByte) {
  constexpr size_t kCachePages = 48;
  constexpr size_t kMemtableEntries = 768;
  ArbiterStack plain(PhaseShiftOptions(kMemtableEntries, nullptr),
                     kCachePages, nullptr);
  // Budget = cache + memtable + filter configured bytes (the pools report
  // 512-byte pages, 32-byte entries, bits_per_key*entries/8 filter seed).
  const uint64_t budget = kCachePages * 512 + kMemtableEntries * 32 +
                          8 * kMemtableEntries / 8;
  MemoryArbiter arbiter(
      {.budget_bytes = budget, .epoch_ops = ~uint64_t{0} >> 1});
  ArbiterStack arbitrated(PhaseShiftOptions(kMemtableEntries, &arbiter),
                          kCachePages, &arbiter);
  EXPECT_EQ(arbiter.split().assigned_total(), budget);

  uint64_t traffic_plain = RunPhaseShift(&plain, nullptr, nullptr, nullptr);
  uint64_t traffic_arb =
      RunPhaseShift(&arbitrated, nullptr, nullptr, nullptr);
  EXPECT_EQ(traffic_plain, traffic_arb);
  EXPECT_EQ(plain.tree.stats().total_space(),
            arbitrated.tree.stats().total_space());
  EXPECT_EQ(arbiter.replans(), 0u);
}

// ------------------------------------------------- A10 acceptance case

// The EXPERIMENTS.md A10 experiment: a phase-shifting hot-read/write-burst
// workload over one global budget. Every static split must lose to the
// arbitrated run on base-device traffic, and the arbitrated byte shares
// must visibly migrate between the cache and the memtable as phases flip
// -- Figure 2's "move MO between levels" executed by the controller.
TEST(MemoryArbiterTest, ArbiterBeatsEveryStaticSplitOnPhaseShift) {
  // All configurations spend the same total budget:
  //   cache_pages * 512 + memtable_entries * 32 + filter seed bytes.
  const uint64_t budget = 48 * 512 + 768 * 32 + 8 * 768 / 8;

  struct StaticConfig {
    const char* name;
    size_t cache_pages;
    size_t memtable_entries;
  };
  // Equal-total static splits: read-tilted, balanced, write-tilted.
  // Each memtable entry costs 32 bytes plus 1 byte of filter seed at
  // 8 bits/key, so a cache page (512 bytes) trades against ~15.5 entries.
  const StaticConfig statics[] = {
      {"read-tilted", 80, 271},
      {"balanced", 48, 768},
      {"write-tilted", 16, 1264},
  };
  for (const StaticConfig& c : statics) {
    uint64_t total = c.cache_pages * 512 + c.memtable_entries * 32 +
                     8 * c.memtable_entries / 8;
    ASSERT_LE(total, budget) << c.name;
    ASSERT_GE(total, budget - 64) << c.name;  // Same total, byte-near.
  }

  MemoryArbiter arbiter({.budget_bytes = budget,
                         .epoch_ops = 512,
                         .min_share = 0.05,
                         .step_fraction = 0.25});
  ArbiterStack arbitrated(PhaseShiftOptions(768, &arbiter), 48, &arbiter);
  MemorySplit after_read, after_write;
  uint64_t arbitrated_traffic =
      RunPhaseShift(&arbitrated, &arbiter, &after_read, &after_write);

  for (const StaticConfig& c : statics) {
    ArbiterStack stack(PhaseShiftOptions(c.memtable_entries, nullptr),
                       c.cache_pages, nullptr);
    uint64_t static_traffic =
        RunPhaseShift(&stack, nullptr, nullptr, nullptr);
    EXPECT_LT(arbitrated_traffic, static_traffic)
        << "static split '" << c.name << "' (" << static_traffic
        << " bytes) beat the arbiter (" << arbitrated_traffic << " bytes)";
  }

  // The shares moved with the phases: more cache bytes at the end of the
  // hot-read phase, more memtable bytes at the end of the write burst.
  EXPECT_GT(arbiter.replans(), 0u);
  EXPECT_GT(after_read.cache_bytes, after_write.cache_bytes);
  EXPECT_GT(after_write.memtable_bytes, after_read.memtable_bytes);
  EXPECT_EQ(after_read.assigned_total(), budget);
  EXPECT_EQ(after_write.assigned_total(), budget);
}

// The runner overload samples the end-of-phase split into the profile, so
// experiment tables can report where the budget sat per phase.
TEST(MemoryArbiterTest, RunnerSamplesMemorySplitIntoProfile) {
  MemoryArbiter arbiter({.budget_bytes = 1 << 20, .epoch_ops = 256});
  Options options = PhaseShiftOptions(256, &arbiter);
  ArbiterStack stack(options, 32, &arbiter);
  WorkloadSpec spec;
  spec.operations = 2000;
  spec.key_range = 2000;
  spec.insert_fraction = 0.5;
  Result<RumProfile> profile =
      WorkloadRunner::Run(&stack.tree, spec, &arbiter);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile.value().memory_split.budget_bytes,
            uint64_t{1} << 20);
  EXPECT_EQ(profile.value().memory_split.assigned_total(), uint64_t{1} << 20);
  // And the no-registrar overload leaves it zeroed.
  Result<RumProfile> plain = WorkloadRunner::Run(&stack.tree, spec);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().memory_split.budget_bytes, 0u);
}

}  // namespace
}  // namespace rum

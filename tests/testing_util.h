#ifndef RUMLAB_TESTS_TESTING_UTIL_H_
#define RUMLAB_TESTS_TESTING_UTIL_H_

#include <map>
#include <vector>

#include "core/access_method.h"
#include "core/options.h"
#include "workload/distribution.h"

namespace rum {
namespace testing_util {

/// Options shrunk so small tests exercise page splits, memtable flushes,
/// zone splits, directory rehashes, and delta merges.
inline Options SmallOptions() {
  Options options;
  options.block_size = 512;
  options.lsm.memtable_entries = 64;
  options.lsm.size_ratio = 3;
  options.lsm.bloom_bits_per_key = 8;
  options.zonemap.zone_entries = 128;
  options.stepped.buffer_entries = 64;
  options.stepped.runs_per_level = 3;
  options.bitmap.cardinality = 16;
  options.bitmap.key_domain = 1u << 16;
  options.bitmap.delta_merge_threshold = 128;
  options.cracking.min_piece_entries = 16;
  options.cracking.delta_merge_threshold = 256;
  options.approx.zone_entries = 128;
  options.extremes.magic_array_domain = 1u << 16;
  options.hash.directory_fanout = 1.25;
  options.skiplist.max_height = 8;
  return options;
}

/// An exact reference model with the same semantics as AccessMethod.
class ReferenceModel {
 public:
  void Insert(Key key, Value value) { map_[key] = value; }
  void Update(Key key, Value value) { map_[key] = value; }
  void Delete(Key key) { map_.erase(key); }
  bool Get(Key key, Value* out) const {
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    *out = it->second;
    return true;
  }
  std::vector<Entry> Scan(Key lo, Key hi) const {
    std::vector<Entry> out;
    for (auto it = map_.lower_bound(lo); it != map_.end() && it->first <= hi;
         ++it) {
      out.push_back(Entry{it->first, it->second});
    }
    return out;
  }
  size_t size() const { return map_.size(); }
  const std::map<Key, Value>& map() const { return map_; }

 private:
  std::map<Key, Value> map_;
};

}  // namespace testing_util
}  // namespace rum

#endif  // RUMLAB_TESTS_TESTING_UTIL_H_

#ifndef RUMLAB_TESTS_TESTING_UTIL_H_
#define RUMLAB_TESTS_TESTING_UTIL_H_

#include <map>
#include <mutex>
#include <vector>

#include <gtest/gtest.h>

#include "core/access_method.h"
#include "core/options.h"
#include "storage/device.h"
#include "workload/distribution.h"

namespace rum {
namespace testing_util {

/// Allocates a page, asserting success. For tests running against stacks
/// with no allocation faults armed, where failure is a test bug.
inline PageId MustAllocate(Device& device, DataClass cls) {
  PageId page = kInvalidPageId;
  Status s = device.Allocate(cls, &page);
  EXPECT_TRUE(s.ok()) << "Allocate failed: " << s.ToString();
  return page;
}

/// Options shrunk so small tests exercise page splits, memtable flushes,
/// zone splits, directory rehashes, and delta merges.
inline Options SmallOptions() {
  Options options;
  options.block_size = 512;
  options.lsm.memtable_entries = 64;
  options.lsm.size_ratio = 3;
  options.lsm.bloom_bits_per_key = 8;
  options.zonemap.zone_entries = 128;
  options.stepped.buffer_entries = 64;
  options.stepped.runs_per_level = 3;
  options.bitmap.cardinality = 16;
  options.bitmap.key_domain = 1u << 16;
  options.bitmap.delta_merge_threshold = 128;
  options.cracking.min_piece_entries = 16;
  options.cracking.delta_merge_threshold = 256;
  options.approx.zone_entries = 128;
  options.extremes.magic_array_domain = 1u << 16;
  options.hash.directory_fanout = 1.25;
  options.skiplist.max_height = 8;
  return options;
}

/// An exact reference model with the same semantics as AccessMethod.
class ReferenceModel {
 public:
  void Insert(Key key, Value value) { map_[key] = value; }
  void Update(Key key, Value value) { map_[key] = value; }
  void Delete(Key key) { map_.erase(key); }
  bool Get(Key key, Value* out) const {
    auto it = map_.find(key);
    if (it == map_.end()) return false;
    *out = it->second;
    return true;
  }
  std::vector<Entry> Scan(Key lo, Key hi) const {
    std::vector<Entry> out;
    for (auto it = map_.lower_bound(lo); it != map_.end() && it->first <= hi;
         ++it) {
      out.push_back(Entry{it->first, it->second});
    }
    return out;
  }
  size_t size() const { return map_.size(); }
  const std::map<Key, Value>& map() const { return map_; }

 private:
  std::map<Key, Value> map_;
};

/// A mutex-guarded ReferenceModel for concurrency tests: worker threads
/// record their operations here while hammering the method under test, and
/// the final contents are compared at quiescence. Equivalent to the method
/// only when threads do not race on the same key with conflicting
/// operations (disjoint ranges, or commutative ops like idempotent deletes
/// and upserts of a key-determined value).
class ConcurrentReferenceModel {
 public:
  void Insert(Key key, Value value) {
    std::lock_guard<std::mutex> lock(mu_);
    model_.Insert(key, value);
  }
  void Delete(Key key) {
    std::lock_guard<std::mutex> lock(mu_);
    model_.Delete(key);
  }
  /// Locked point lookup, safe to call while writers are live (the tree
  /// nodes are shared even when the key sets are disjoint).
  bool Get(Key key, Value* out) const {
    std::lock_guard<std::mutex> lock(mu_);
    return model_.Get(key, out);
  }
  /// The underlying model; only call once writer threads have joined.
  const ReferenceModel& quiesced() const { return model_; }

 private:
  mutable std::mutex mu_;
  ReferenceModel model_;
};

/// Compares method->Get(key) against the reference (shared by the contract,
/// concurrency, and differential tests). Use as
///   ASSERT_TRUE(GetMatchesReference(method, reference, key)) << context;
inline ::testing::AssertionResult GetMatchesReference(
    AccessMethod* method, const ReferenceModel& reference, Key key) {
  Value expected;
  bool present = reference.Get(key, &expected);
  Result<Value> got = method->Get(key);
  if (present) {
    if (!got.ok()) {
      return ::testing::AssertionFailure()
             << method->name() << ": key " << key << " missing, status "
             << got.status().ToString();
    }
    if (got.value() != expected) {
      return ::testing::AssertionFailure()
             << method->name() << ": key " << key << " returned "
             << got.value() << ", expected " << expected;
    }
  } else {
    if (got.ok()) {
      return ::testing::AssertionFailure()
             << method->name() << ": key " << key
             << " should be absent but returned " << got.value();
    }
    if (!got.status().IsNotFound()) {
      return ::testing::AssertionFailure()
             << method->name() << ": key " << key
             << " absent but status is " << got.status().ToString()
             << ", expected NotFound";
    }
  }
  return ::testing::AssertionSuccess();
}

/// Compares method->Scan(lo, hi) against the reference, entry by entry.
inline ::testing::AssertionResult ScanMatchesReference(
    AccessMethod* method, const ReferenceModel& reference, Key lo, Key hi) {
  std::vector<Entry> got;
  Status s = method->Scan(lo, hi, &got);
  if (!s.ok()) {
    return ::testing::AssertionFailure()
           << method->name() << ": scan [" << lo << ", " << hi
           << "] failed: " << s.ToString();
  }
  std::vector<Entry> expected = reference.Scan(lo, hi);
  if (got.size() != expected.size()) {
    return ::testing::AssertionFailure()
           << method->name() << ": scan [" << lo << ", " << hi
           << "] returned " << got.size() << " entries, expected "
           << expected.size();
  }
  for (size_t i = 0; i < expected.size(); ++i) {
    if (got[i].key != expected[i].key) {
      return ::testing::AssertionFailure()
             << method->name() << ": scan [" << lo << ", " << hi
             << "] entry " << i << " has key " << got[i].key
             << ", expected " << expected[i].key;
    }
    if (got[i].value != expected[i].value) {
      return ::testing::AssertionFailure()
             << method->name() << ": scan [" << lo << ", " << hi
             << "] entry " << i << " (key " << got[i].key << ") has value "
             << got[i].value << ", expected " << expected[i].value;
    }
  }
  return ::testing::AssertionSuccess();
}

}  // namespace testing_util
}  // namespace rum

#endif  // RUMLAB_TESTS_TESTING_UTIL_H_

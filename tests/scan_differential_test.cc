// Scan differential tier: range scans are the one operation the cross-run
// index changes, so this tier hammers exactly that surface. Every scenario
// runs the same seeded stream against an index-on tree, an index-off twin,
// and the oracle map, over every compaction policy -- the acceptance bar is
// byte-identical output from all three, for every range shape we can think
// of: empty gaps, single keys, lo == hi, full-span hi = kMaxKey,
// tombstone-heavy key spaces, compressed runs, and post-crash recovery.
// Rerun a failure with the printed seed to reproduce the exact stream.
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "methods/lsm/lsm_tree.h"
#include "storage/block_device.h"
#include "storage/caching_device.h"
#include "storage/faulty_device.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using testing_util::GetMatchesReference;
using testing_util::ReferenceModel;
using testing_util::ScanMatchesReference;
using testing_util::SmallOptions;

constexpr LsmPolicy kAllPolicies[] = {
    LsmPolicy::kLeveled,
    LsmPolicy::kTiered,
    LsmPolicy::kLazyLeveled,
    LsmPolicy::kHybrid,
};

const char* PolicyName(LsmPolicy policy) {
  switch (policy) {
    case LsmPolicy::kLeveled:
      return "leveled";
    case LsmPolicy::kTiered:
      return "tiered";
    case LsmPolicy::kLazyLeveled:
      return "lazy";
    case LsmPolicy::kHybrid:
      return "hybrid";
  }
  return "?";
}

constexpr uint64_t kSeeds[] = {0x5CA11ull, 0x5CA22ull};

Options DiffOptions(LsmPolicy policy, bool cross_run_index,
                    bool compress = false) {
  Options options = SmallOptions();
  options.lsm.policy = policy;
  options.lsm.cross_run_index = cross_run_index;
  // Small segments: scans cross segment boundaries and trigger relayouts
  // within test-sized key counts.
  options.lsm.cross_run_segment_entries = 32;
  options.lsm.compress_runs = compress;
  return options;
}

/// Draws one range from the shapes a scan can take. Mostly narrow windows,
/// with a steady trickle of the degenerate shapes that break naive merges.
void DrawRange(Rng* rng, Key key_range, Key* lo, Key* hi) {
  uint64_t shape = rng->NextBelow(100);
  if (shape < 60) {  // Narrow window.
    *lo = rng->NextBelow(key_range);
    *hi = *lo + rng->NextBelow(64);
  } else if (shape < 75) {  // Single key / lo == hi.
    *lo = rng->NextBelow(key_range);
    *hi = *lo;
  } else if (shape < 85) {  // Likely-empty gap past the populated domain.
    *lo = key_range + rng->NextBelow(key_range);
    *hi = *lo + rng->NextBelow(256);
  } else if (shape < 95) {  // Wide window.
    *lo = rng->NextBelow(key_range);
    *hi = *lo + rng->NextBelow(key_range);
  } else {  // Full span to the top of the key space.
    *lo = rng->NextBelow(key_range);
    *hi = kMaxKey;
  }
}

/// Asserts both trees return byte-identical scans that also match the
/// oracle. The twin comparison is the differential guarantee the index
/// must keep; the oracle comparison says which twin is wrong when not.
::testing::AssertionResult TwinsAgree(LsmTree* indexed, LsmTree* fallback,
                                      const ReferenceModel& oracle, Key lo,
                                      Key hi) {
  ::testing::AssertionResult on = ScanMatchesReference(indexed, oracle, lo, hi);
  if (!on) return on;
  ::testing::AssertionResult off =
      ScanMatchesReference(fallback, oracle, lo, hi);
  if (!off) return off;
  std::vector<Entry> a, b;
  Status sa = indexed->Scan(lo, hi, &a);
  Status sb = fallback->Scan(lo, hi, &b);
  if (!sa.ok() || !sb.ok()) {
    return ::testing::AssertionFailure()
           << "rescan [" << lo << ", " << hi << "] failed: on="
           << sa.ToString() << " off=" << sb.ToString();
  }
  if (a.size() != b.size()) {
    return ::testing::AssertionFailure()
           << "scan [" << lo << ", " << hi << "]: index-on returned "
           << a.size() << " entries, index-off " << b.size();
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].key != b[i].key || a[i].value != b[i].value) {
      return ::testing::AssertionFailure()
             << "scan [" << lo << ", " << hi << "] entry " << i
             << " differs: index-on (" << a[i].key << ", " << a[i].value
             << "), index-off (" << b[i].key << ", " << b[i].value << ")";
    }
  }
  return ::testing::AssertionSuccess();
}

class ScanDifferentialTest
    : public ::testing::TestWithParam<std::tuple<LsmPolicy, uint64_t>> {};

// The core stream: inserts/updates/deletes interleaved with scans of every
// shape, applied identically to both twins and the oracle.
TEST_P(ScanDifferentialTest, RandomRangesMatchOracleAndTwin) {
  const LsmPolicy policy = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  LsmTree indexed(DiffOptions(policy, true));
  LsmTree fallback(DiffOptions(policy, false));
  ReferenceModel oracle;

  Rng rng(seed);
  const Key kRange = 1u << 12;
  const int kOps = 2000;
  for (int i = 0; i < kOps; ++i) {
    SCOPED_TRACE(::testing::Message()
                 << PolicyName(policy) << " seed 0x" << std::hex << seed
                 << std::dec << " op " << i);
    Key key = rng.NextBelow(kRange);
    uint64_t dice = rng.NextBelow(100);
    if (dice < 35) {
      Value v = rng.Next();
      ASSERT_TRUE(indexed.Insert(key, v).ok());
      ASSERT_TRUE(fallback.Insert(key, v).ok());
      oracle.Insert(key, v);
    } else if (dice < 45) {
      Value v = rng.Next();
      ASSERT_TRUE(indexed.Update(key, v).ok());
      ASSERT_TRUE(fallback.Update(key, v).ok());
      oracle.Update(key, v);
    } else if (dice < 60) {
      ASSERT_TRUE(indexed.Delete(key).ok());
      ASSERT_TRUE(fallback.Delete(key).ok());
      oracle.Delete(key);
    } else {
      Key lo, hi;
      DrawRange(&rng, kRange, &lo, &hi);
      ASSERT_TRUE(TwinsAgree(&indexed, &fallback, oracle, lo, hi));
    }
    if (i % 400 == 200) {
      ASSERT_TRUE(indexed.Flush().ok());
      ASSERT_TRUE(fallback.Flush().ok());
    }
  }
  ASSERT_EQ(indexed.size(), oracle.size());
  ASSERT_EQ(fallback.size(), oracle.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAndSeeds, ScanDifferentialTest,
    ::testing::Combine(::testing::ValuesIn(kAllPolicies),
                       ::testing::ValuesIn(kSeeds)),
    [](const ::testing::TestParamInfo<std::tuple<LsmPolicy, uint64_t>>&
           info) {
      return std::string(PolicyName(std::get<0>(info.param))) + "_seed" +
             std::to_string(std::get<1>(info.param) & 0xFF);
    });

// lo > hi is a caller bug, rejected identically by both paths without
// touching a run.
TEST(ScanDifferentialTest, InvertedRangeIsInvalidArgumentOnBothPaths) {
  for (bool index : {true, false}) {
    LsmTree tree(DiffOptions(LsmPolicy::kTiered, index));
    for (Key k = 0; k < 200; ++k) {
      ASSERT_TRUE(tree.Insert(k, ValueFor(k)).ok());
    }
    std::vector<Entry> out;
    EXPECT_EQ(tree.Scan(100, 99, &out).code(), Code::kInvalidArgument);
    EXPECT_TRUE(out.empty());
  }
}

// Tombstone-heavy: delete two thirds of a flushed key space, resurrect a
// slice, and verify scans agree over ranges that are mostly tombstones.
// Tombstones travel through run merges and must be dropped at emission on
// both paths -- never returned, never allowed to hide a resurrected key.
TEST(ScanDifferentialTest, TombstoneHeavyRangesMatch) {
  for (LsmPolicy policy : kAllPolicies) {
    SCOPED_TRACE(PolicyName(policy));
    LsmTree indexed(DiffOptions(policy, true));
    LsmTree fallback(DiffOptions(policy, false));
    ReferenceModel oracle;
    const Key kKeys = 1200;
    for (Key k = 0; k < kKeys; ++k) {
      ASSERT_TRUE(indexed.Insert(k, ValueFor(k)).ok());
      ASSERT_TRUE(fallback.Insert(k, ValueFor(k)).ok());
      oracle.Insert(k, ValueFor(k));
    }
    ASSERT_TRUE(indexed.Flush().ok());
    ASSERT_TRUE(fallback.Flush().ok());
    for (Key k = 0; k < kKeys; ++k) {
      if (k % 3 == 0) continue;  // Keep every third key.
      ASSERT_TRUE(indexed.Delete(k).ok());
      ASSERT_TRUE(fallback.Delete(k).ok());
      oracle.Delete(k);
    }
    ASSERT_TRUE(indexed.Flush().ok());
    ASSERT_TRUE(fallback.Flush().ok());
    for (Key k = 100; k < 200; ++k) {  // Resurrect a deleted slice.
      ASSERT_TRUE(indexed.Insert(k, ValueFor(k) + 1).ok());
      ASSERT_TRUE(fallback.Insert(k, ValueFor(k) + 1).ok());
      oracle.Insert(k, ValueFor(k) + 1);
    }
    Rng rng(0x70FB57ull);
    for (int i = 0; i < 60; ++i) {
      Key lo = rng.NextBelow(kKeys);
      Key hi = lo + rng.NextBelow(300);
      ASSERT_TRUE(TwinsAgree(&indexed, &fallback, oracle, lo, hi)) << i;
    }
    ASSERT_TRUE(TwinsAgree(&indexed, &fallback, oracle, 0, kMaxKey));
  }
}

// Compressed runs change the page payload the cursors decode, not the scan
// contract: the same differential identity must hold.
TEST(ScanDifferentialTest, CompressedRunsMatch) {
  LsmTree indexed(DiffOptions(LsmPolicy::kTiered, true, /*compress=*/true));
  LsmTree fallback(DiffOptions(LsmPolicy::kTiered, false, /*compress=*/true));
  ReferenceModel oracle;
  Rng rng(0xC0DECull);
  const Key kRange = 1u << 12;
  for (int i = 0; i < 1500; ++i) {
    Key key = rng.NextBelow(kRange);
    Value v = rng.Next();
    ASSERT_TRUE(indexed.Insert(key, v).ok());
    ASSERT_TRUE(fallback.Insert(key, v).ok());
    oracle.Insert(key, v);
  }
  ASSERT_TRUE(indexed.Flush().ok());
  ASSERT_TRUE(fallback.Flush().ok());
  for (int i = 0; i < 80; ++i) {
    Key lo, hi;
    DrawRange(&rng, kRange, &lo, &hi);
    ASSERT_TRUE(TwinsAgree(&indexed, &fallback, oracle, lo, hi)) << i;
  }
}

// A crash below the tree (cache dropped, durable pages intact) must leave
// both scan paths serving the exact flushed state: the index's lazily
// rebuilt segments must describe the recovered pages, not the pre-crash
// cache.
TEST(ScanDifferentialTest, PostCrashScansMatch) {
  struct Stack {
    RumCounters counters;
    BlockDevice base{512, &counters};
    FaultyDevice faulty{&base};
    CachingDevice cache{&faulty, 8};
  };
  Stack on_stack, off_stack;
  LsmTree indexed(DiffOptions(LsmPolicy::kTiered, true), &on_stack.cache);
  LsmTree fallback(DiffOptions(LsmPolicy::kTiered, false), &off_stack.cache);
  ReferenceModel oracle;
  const Key kKeys = 900;
  for (Key k = 0; k < kKeys; ++k) {
    Key key = (k * 37) % kKeys;  // Coprime stride: runs overlap.
    ASSERT_TRUE(indexed.Insert(key, ValueFor(key)).ok());
    ASSERT_TRUE(fallback.Insert(key, ValueFor(key)).ok());
    oracle.Insert(key, ValueFor(key));
  }
  ASSERT_TRUE(indexed.Flush().ok());
  ASSERT_TRUE(fallback.Flush().ok());
  // Warm the index so its pre-crash segments exist and must survive (or be
  // rebuilt consistently) across the crash.
  std::vector<Entry> warm;
  ASSERT_TRUE(indexed.Scan(0, kKeys, &warm).ok());
  ASSERT_TRUE(on_stack.cache.FlushAll().ok());
  ASSERT_TRUE(off_stack.cache.FlushAll().ok());

  on_stack.cache.Crash();
  off_stack.cache.Crash();

  Rng rng(0xCCAA5ull);
  for (int i = 0; i < 50; ++i) {
    Key lo = rng.NextBelow(kKeys);
    Key hi = lo + rng.NextBelow(200);
    ASSERT_TRUE(TwinsAgree(&indexed, &fallback, oracle, lo, hi)) << i;
  }
  ASSERT_TRUE(TwinsAgree(&indexed, &fallback, oracle, 0, kMaxKey));
  for (Key k = 0; k < kKeys; k += 7) {
    ASSERT_TRUE(GetMatchesReference(&indexed, oracle, k));
    ASSERT_TRUE(GetMatchesReference(&fallback, oracle, k));
  }
}

}  // namespace
}  // namespace rum

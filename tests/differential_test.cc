// Differential test tier: seed-driven random operation streams are replayed
// in order against every factory method plus the oracle map. Because the
// stream is applied sequentially and checked as it goes, the first assertion
// that fires names the minimal failing op index for that seed -- rerun with
// the printed seed to reproduce the exact stream.
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/access_method.h"
#include "methods/factory.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using testing_util::GetMatchesReference;
using testing_util::ReferenceModel;
using testing_util::ScanMatchesReference;
using testing_util::SmallOptions;

// Three fixed seeds per method, wired into ctest. To chase a flake from a
// different seed, add it here.
constexpr uint64_t kSeeds[] = {0xA11CEull, 0xB0B5EEDull, 0xC0FFEE42ull};

std::vector<std::string> AllMethodNames() {
  std::vector<std::string> names;
  for (std::string_view name : AllAccessMethodNames()) {
    names.emplace_back(name);
  }
  return names;
}

class DifferentialTest
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(DifferentialTest, RandomStreamMatchesOracle) {
  const std::string& name = std::get<0>(GetParam());
  const uint64_t seed = std::get<1>(GetParam());
  auto method = MakeAccessMethod(name, SmallOptions());
  ASSERT_NE(method, nullptr) << "unknown method " << name;
  ReferenceModel oracle;

  Rng rng(seed);
  const Key kRange = 1u << 12;
  const int kOps = 2500;
  for (int i = 0; i < kOps; ++i) {
    SCOPED_TRACE(::testing::Message()
                 << name << " seed 0x" << std::hex << seed << std::dec
                 << " op " << i);
    Key key = rng.NextBelow(kRange);
    uint64_t dice = rng.NextBelow(100);
    if (dice < 40) {
      Value v = rng.Next();
      ASSERT_TRUE(method->Insert(key, v).ok());
      oracle.Insert(key, v);
    } else if (dice < 55) {
      Value v = rng.Next();
      ASSERT_TRUE(method->Update(key, v).ok());
      oracle.Update(key, v);
    } else if (dice < 70) {
      ASSERT_TRUE(method->Delete(key).ok());
      oracle.Delete(key);
    } else if (dice < 92) {
      ASSERT_TRUE(GetMatchesReference(method.get(), oracle, key));
    } else if (dice < 97) {
      Key hi = key + rng.NextBelow(200);
      ASSERT_TRUE(ScanMatchesReference(method.get(), oracle, key, hi));
    } else {
      ASSERT_EQ(method->size(), oracle.size());
    }
    if (i % 500 == 250) {
      ASSERT_TRUE(method->Flush().ok());
    }
  }
  ASSERT_EQ(method->size(), oracle.size())
      << name << " seed 0x" << std::hex << seed << " after full stream";
  ASSERT_TRUE(ScanMatchesReference(method.get(), oracle, 0, kRange))
      << name << " seed 0x" << std::hex << seed << " after full stream";
}

INSTANTIATE_TEST_SUITE_P(
    AllMethodsTimesSeeds, DifferentialTest,
    ::testing::Combine(::testing::ValuesIn(AllMethodNames()),
                       ::testing::ValuesIn(kSeeds)),
    [](const ::testing::TestParamInfo<std::tuple<std::string, uint64_t>>&
           info) {
      std::string name = std::get<0>(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      char seed_tag[24];
      std::snprintf(seed_tag, sizeof(seed_tag), "_%llx",
                    static_cast<unsigned long long>(std::get<1>(info.param)));
      return name + seed_tag;
    });

}  // namespace
}  // namespace rum

// Unit tests for the storage substrate: block device, page codec, caching
// device, append log, heap file.
#include <gtest/gtest.h>

#include "core/counters.h"
#include "storage/append_log.h"
#include "storage/block_device.h"
#include "storage/caching_device.h"
#include "storage/heap_file.h"
#include "storage/page_format.h"
#include "tests/testing_util.h"

namespace rum {
namespace {

constexpr size_t kBlock = 512;

TEST(BlockDeviceTest, AllocateChargesSpaceByClass) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  PageId base = testing_util::MustAllocate(device, DataClass::kBase);
  PageId aux = testing_util::MustAllocate(device, DataClass::kAux);
  EXPECT_NE(base, aux);
  EXPECT_EQ(counters.snapshot().space_base, kBlock);
  EXPECT_EQ(counters.snapshot().space_aux, kBlock);
  EXPECT_EQ(device.live_pages(), 2u);
  EXPECT_EQ(device.live_pages(DataClass::kBase), 1u);
}

TEST(BlockDeviceTest, FreeReturnsSpaceAndRecyclesIds) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  PageId p = testing_util::MustAllocate(device, DataClass::kBase);
  ASSERT_TRUE(device.Free(p).ok());
  EXPECT_EQ(counters.snapshot().space_base, 0u);
  PageId q = testing_util::MustAllocate(device, DataClass::kAux);
  EXPECT_EQ(q, p);  // Recycled.
  EXPECT_EQ(counters.snapshot().space_aux, kBlock);
}

TEST(BlockDeviceTest, DoubleFreeFails) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  PageId p = testing_util::MustAllocate(device, DataClass::kBase);
  ASSERT_TRUE(device.Free(p).ok());
  EXPECT_FALSE(device.Free(p).ok());
}

TEST(BlockDeviceTest, ReadWriteRoundTripAndCharges) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  PageId p = testing_util::MustAllocate(device, DataClass::kBase);
  std::vector<uint8_t> data(kBlock, 0xAB);
  ASSERT_TRUE(device.Write(p, data).ok());
  std::vector<uint8_t> readback;
  ASSERT_TRUE(device.Read(p, &readback).ok());
  EXPECT_EQ(readback, data);
  EXPECT_EQ(counters.snapshot().bytes_written_base, kBlock);
  EXPECT_EQ(counters.snapshot().bytes_read_base, kBlock);
  EXPECT_EQ(counters.snapshot().blocks_read, 1u);
  EXPECT_EQ(counters.snapshot().blocks_written, 1u);
}

TEST(BlockDeviceTest, WriteWrongSizeRejected) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  PageId p = testing_util::MustAllocate(device, DataClass::kBase);
  std::vector<uint8_t> tiny(10);
  EXPECT_EQ(device.Write(p, tiny).code(), Code::kInvalidArgument);
}

TEST(BlockDeviceTest, ReadOfDeadPageFails) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  std::vector<uint8_t> out;
  EXPECT_FALSE(device.Read(0, &out).ok());
}

TEST(BlockDeviceTest, FreeAllocRoundTripKeepsAccountingStable) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  PageId p = testing_util::MustAllocate(device, DataClass::kBase);
  std::vector<uint8_t> data(kBlock, 0x5A);
  ASSERT_TRUE(device.Write(p, data).ok());
  CounterSnapshot before = counters.snapshot();
  ASSERT_TRUE(device.Free(p).ok());
  PageId q = testing_util::MustAllocate(device, DataClass::kBase);
  EXPECT_EQ(q, p);  // Recycled in place; the slot's capacity is retained.
  CounterSnapshot after = counters.snapshot();
  EXPECT_EQ(after.space_base, before.space_base);
  EXPECT_EQ(after.bytes_written_base, before.bytes_written_base);
  EXPECT_EQ(after.blocks_written, before.blocks_written);
  // The recycled page must read back zeroed even though the old buffer
  // was reused rather than reallocated.
  std::vector<uint8_t> out;
  ASSERT_TRUE(device.Read(q, &out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(kBlock, 0));
}

TEST(BlockDeviceTest, PinForReadChargesLikeRead) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  PageId p = testing_util::MustAllocate(device, DataClass::kBase);
  std::vector<uint8_t> data(kBlock, 0xAB);
  ASSERT_TRUE(device.Write(p, data).ok());
  CounterSnapshot before = counters.snapshot();
  PageReadGuard guard;
  ASSERT_TRUE(device.PinForRead(p, &guard).ok());
  EXPECT_EQ(device.pinned_pages(), 1u);
  EXPECT_TRUE(std::equal(guard.bytes().begin(), guard.bytes().end(),
                         data.begin()));
  CounterSnapshot after = counters.snapshot();
  EXPECT_EQ(after.bytes_read_base, before.bytes_read_base + kBlock);
  EXPECT_EQ(after.blocks_read, before.blocks_read + 1);
  guard.Release();
  EXPECT_EQ(device.pinned_pages(), 0u);
  // Release charges nothing further.
  EXPECT_EQ(counters.snapshot().bytes_read_base, after.bytes_read_base);
}

TEST(BlockDeviceTest, PinForWriteChargesOnlyOnDirtyRelease) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  PageId p = testing_util::MustAllocate(device, DataClass::kBase);
  CounterSnapshot before = counters.snapshot();
  {
    PageWriteGuard guard;
    ASSERT_TRUE(device.PinForWrite(p, &guard).ok());
    // Nothing charged at pin time.
    EXPECT_EQ(counters.snapshot().bytes_written_base,
              before.bytes_written_base);
    std::fill(guard.bytes().begin(), guard.bytes().end(), 0xCD);
    guard.MarkDirty();
    ASSERT_TRUE(guard.Release().ok());
  }
  CounterSnapshot after = counters.snapshot();
  EXPECT_EQ(after.bytes_written_base, before.bytes_written_base + kBlock);
  EXPECT_EQ(after.blocks_written, before.blocks_written + 1);
  std::vector<uint8_t> out;
  ASSERT_TRUE(device.Read(p, &out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(kBlock, 0xCD));
}

TEST(BlockDeviceTest, CleanWritePinChargesNothing) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  PageId p = testing_util::MustAllocate(device, DataClass::kBase);
  CounterSnapshot before = counters.snapshot();
  PageWriteGuard guard;
  ASSERT_TRUE(device.PinForWrite(p, &guard).ok());
  ASSERT_TRUE(guard.Release().ok());
  CounterSnapshot after = counters.snapshot();
  EXPECT_EQ(after.bytes_written_base, before.bytes_written_base);
  EXPECT_EQ(after.blocks_written, before.blocks_written);
  EXPECT_EQ(after.bytes_read_base, before.bytes_read_base);
}

TEST(BlockDeviceTest, FreeWhilePinnedRejected) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  PageId p = testing_util::MustAllocate(device, DataClass::kBase);
  PageReadGuard guard;
  ASSERT_TRUE(device.PinForRead(p, &guard).ok());
  EXPECT_EQ(device.Free(p).code(), Code::kInvalidArgument);
  guard.Release();
  EXPECT_TRUE(device.Free(p).ok());
}

TEST(BlockDeviceTest, ReclassifyMovesSpace) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  PageId p = testing_util::MustAllocate(device, DataClass::kBase);
  ASSERT_TRUE(device.Reclassify(p, DataClass::kAux).ok());
  EXPECT_EQ(counters.snapshot().space_base, 0u);
  EXPECT_EQ(counters.snapshot().space_aux, kBlock);
  EXPECT_EQ(device.live_pages(DataClass::kAux), 1u);
}

TEST(PageFormatTest, RoundTrip) {
  std::vector<Entry> entries = {{1, 10}, {2, 20}, {300, 3000}};
  std::vector<uint8_t> block;
  ASSERT_TRUE(PageFormat::Pack(entries, kBlock, &block).ok());
  EXPECT_EQ(block.size(), kBlock);
  EXPECT_EQ(PageFormat::PeekCount(block), 3u);
  std::vector<Entry> out;
  ASSERT_TRUE(PageFormat::Unpack(block, &out).ok());
  EXPECT_EQ(out, entries);
}

TEST(PageFormatTest, CapacityAndOverflow) {
  size_t cap = PageFormat::CapacityFor(kBlock);
  EXPECT_EQ(cap, (kBlock - 8) / 16);
  std::vector<Entry> too_many(cap + 1);
  std::vector<uint8_t> block;
  EXPECT_EQ(PageFormat::Pack(too_many, kBlock, &block).code(),
            Code::kResourceExhausted);
}

TEST(PageFormatTest, UnpackRejectsCorruptCount) {
  std::vector<uint8_t> block(kBlock, 0);
  EncodeU64(1u << 20, block.data());  // Absurd count.
  std::vector<Entry> out;
  EXPECT_EQ(PageFormat::Unpack(block, &out).code(), Code::kCorruption);
}

TEST(ScalarCodecTest, RoundTrip) {
  uint8_t buf[8];
  EncodeU64(0x0123456789ABCDEFULL, buf);
  EXPECT_EQ(DecodeU64(buf), 0x0123456789ABCDEFULL);
  EncodeU32(0xDEADBEEF, buf);
  EXPECT_EQ(DecodeU32(buf), 0xDEADBEEFu);
}

TEST(CachingDeviceTest, HitsAreServedWithoutBaseTraffic) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  CachingDevice cache(&device, /*capacity_pages=*/4);
  PageId p = testing_util::MustAllocate(cache, DataClass::kBase);
  std::vector<uint8_t> data(kBlock, 1);
  ASSERT_TRUE(cache.Write(p, data).ok());
  uint64_t base_reads_before = counters.snapshot().bytes_read_base;
  std::vector<uint8_t> out;
  ASSERT_TRUE(cache.Read(p, &out).ok());  // Hit: dirty page in cache.
  EXPECT_EQ(out, data);
  EXPECT_EQ(counters.snapshot().bytes_read_base, base_reads_before);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 0u);
}

TEST(CachingDeviceTest, EvictionWritesBackDirtyPages) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  CachingDevice cache(&device, /*capacity_pages=*/2);
  std::vector<PageId> pages;
  for (int i = 0; i < 3; ++i) {
    PageId p = testing_util::MustAllocate(cache, DataClass::kBase);
    std::vector<uint8_t> data(kBlock, static_cast<uint8_t>(i + 1));
    ASSERT_TRUE(cache.Write(p, data).ok());
    pages.push_back(p);
  }
  // Page 0 was evicted (capacity 2) and must have reached the device.
  EXPECT_EQ(cache.cached_pages(), 2u);
  std::vector<uint8_t> out;
  ASSERT_TRUE(device.Read(pages[0], &out).ok());
  EXPECT_EQ(out[0], 1);
  // Reading page 0 through the cache is now a miss.
  ASSERT_TRUE(cache.Read(pages[0], &out).ok());
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(CachingDeviceTest, FlushAllPushesDirtyPagesDown) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  CachingDevice cache(&device, 8);
  PageId p = testing_util::MustAllocate(cache, DataClass::kBase);
  std::vector<uint8_t> data(kBlock, 7);
  ASSERT_TRUE(cache.Write(p, data).ok());
  ASSERT_TRUE(cache.FlushAll().ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(device.Read(p, &out).ok());
  EXPECT_EQ(out, data);
}

TEST(CachingDeviceTest, ZeroCapacityIsWriteThrough) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  CachingDevice cache(&device, 0);
  PageId p = testing_util::MustAllocate(cache, DataClass::kBase);
  std::vector<uint8_t> data(kBlock, 9);
  ASSERT_TRUE(cache.Write(p, data).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(device.Read(p, &out).ok());
  EXPECT_EQ(out, data);
  EXPECT_EQ(cache.cached_pages(), 0u);
}

TEST(CachingDeviceTest, FreeDropsCachedCopy) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  CachingDevice cache(&device, 4);
  PageId p = testing_util::MustAllocate(cache, DataClass::kBase);
  std::vector<uint8_t> data(kBlock, 3);
  ASSERT_TRUE(cache.Write(p, data).ok());
  ASSERT_TRUE(cache.Free(p).ok());
  EXPECT_EQ(cache.cached_pages(), 0u);
}

TEST(CachingDeviceTest, LevelStatsTrackResidency) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  CachingDevice cache(&device, 4);
  PageId p = testing_util::MustAllocate(cache, DataClass::kBase);
  std::vector<uint8_t> data(kBlock, 3);
  ASSERT_TRUE(cache.Write(p, data).ok());
  EXPECT_EQ(cache.level_stats().space_aux, kBlock);
}

TEST(CachingDeviceTest, ReadPinMissChargesBaseHitChargesCache) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  CachingDevice cache(&device, /*capacity_pages=*/4);
  PageId p = testing_util::MustAllocate(cache, DataClass::kBase);
  std::vector<uint8_t> data(kBlock, 0x11);
  ASSERT_TRUE(device.Write(p, data).ok());  // Populate base, bypass cache.
  uint64_t base_reads = counters.snapshot().bytes_read_base;
  uint64_t cache_reads = cache.level_stats().bytes_read_aux;
  {
    PageReadGuard guard;
    ASSERT_TRUE(cache.PinForRead(p, &guard).ok());  // Miss: base charged.
    EXPECT_EQ(guard.bytes()[0], 0x11);
  }
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(counters.snapshot().bytes_read_base, base_reads + kBlock);
  EXPECT_EQ(cache.level_stats().bytes_read_aux, cache_reads);
  {
    PageReadGuard guard;
    ASSERT_TRUE(cache.PinForRead(p, &guard).ok());  // Hit: cache charged.
  }
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(counters.snapshot().bytes_read_base, base_reads + kBlock);
  EXPECT_EQ(cache.level_stats().bytes_read_aux, cache_reads + kBlock);
}

TEST(CachingDeviceTest, SpeculativeWritePinDropsOnCleanRelease) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  CachingDevice cache(&device, /*capacity_pages=*/4);
  PageId p = testing_util::MustAllocate(cache, DataClass::kBase);
  std::vector<uint8_t> data(kBlock, 0x22);
  ASSERT_TRUE(device.Write(p, data).ok());
  uint64_t base_reads = counters.snapshot().bytes_read_base;
  {
    // A write pin on an uncached page inserts a zero-filled speculative
    // entry without reading the base...
    PageWriteGuard guard;
    ASSERT_TRUE(cache.PinForWrite(p, &guard).ok());
    EXPECT_EQ(guard.bytes()[0], 0);
    ASSERT_TRUE(guard.Release().ok());  // ...and a clean release drops it.
  }
  EXPECT_EQ(counters.snapshot().bytes_read_base, base_reads);
  EXPECT_EQ(cache.cached_pages(), 0u);
  // The base copy was never clobbered by the speculative zeros.
  std::vector<uint8_t> out;
  ASSERT_TRUE(device.Read(p, &out).ok());
  EXPECT_EQ(out, data);
}

TEST(CachingDeviceTest, DirtyWritePinReachesBaseOnFlush) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  CachingDevice cache(&device, /*capacity_pages=*/4);
  PageId p = testing_util::MustAllocate(cache, DataClass::kBase);
  uint64_t base_writes = counters.snapshot().blocks_written;
  {
    PageWriteGuard guard;
    ASSERT_TRUE(cache.PinForWrite(p, &guard).ok());
    std::fill(guard.bytes().begin(), guard.bytes().end(), 0x33);
    guard.MarkDirty();
    ASSERT_TRUE(guard.Release().ok());
  }
  EXPECT_EQ(cache.cached_pages(), 1u);
  // Dirty release charged the cache level, not the base.
  EXPECT_EQ(counters.snapshot().blocks_written, base_writes);
  EXPECT_EQ(cache.level_stats().bytes_written_aux, kBlock);
  ASSERT_TRUE(cache.FlushAll().ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(device.Read(p, &out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(kBlock, 0x33));
}

TEST(CachingDeviceTest, ZeroCapacityPinWritesThroughAtRelease) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  CachingDevice cache(&device, /*capacity_pages=*/0);
  PageId p = testing_util::MustAllocate(cache, DataClass::kBase);
  {
    PageWriteGuard guard;
    ASSERT_TRUE(cache.PinForWrite(p, &guard).ok());
    std::fill(guard.bytes().begin(), guard.bytes().end(), 0x44);
    guard.MarkDirty();
    ASSERT_TRUE(guard.Release().ok());
  }
  // The transient entry was trimmed at last unpin; data reached the base.
  EXPECT_EQ(cache.cached_pages(), 0u);
  EXPECT_EQ(cache.pinned_pages(), 0u);
  std::vector<uint8_t> out;
  ASSERT_TRUE(device.Read(p, &out).ok());
  EXPECT_EQ(out, std::vector<uint8_t>(kBlock, 0x44));
}

TEST(CachingDeviceTest, EvictionSkipsPinnedPages) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  CachingDevice cache(&device, /*capacity_pages=*/1);
  PageId a = testing_util::MustAllocate(cache, DataClass::kBase);
  PageId b = testing_util::MustAllocate(cache, DataClass::kBase);
  PageReadGuard guard_a;
  std::vector<uint8_t> zeros(kBlock, 0);
  ASSERT_TRUE(device.Write(a, zeros).ok());
  ASSERT_TRUE(device.Write(b, zeros).ok());
  ASSERT_TRUE(cache.PinForRead(a, &guard_a).ok());
  {
    // Pinning a second page overshoots capacity transiently; the pinned
    // page `a` must not be the eviction victim.
    PageReadGuard guard_b;
    ASSERT_TRUE(cache.PinForRead(b, &guard_b).ok());
    EXPECT_EQ(guard_a.bytes().data()[0], 0);  // Still valid.
  }
  guard_a.Release();
  EXPECT_LE(cache.cached_pages(), 1u);
}

TEST(CachingDeviceTest, SetCapacityTrimsImmediately) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  CachingDevice cache(&device, /*capacity_pages=*/8);
  std::vector<PageId> pages;
  std::vector<uint8_t> data(kBlock, 9);
  for (int i = 0; i < 8; ++i) {
    PageId p = testing_util::MustAllocate(cache, DataClass::kBase);
    ASSERT_TRUE(cache.Write(p, data).ok());
    pages.push_back(p);
  }
  ASSERT_EQ(cache.cached_pages(), 8u);
  // Shrinking evicts (writing back dirty victims) down to the new cap now.
  ASSERT_TRUE(cache.SetCapacity(3).ok());
  EXPECT_EQ(cache.capacity_pages(), 3u);
  EXPECT_EQ(cache.cached_pages(), 3u);
  // Evicted dirty pages reached the base device.
  std::vector<uint8_t> out;
  ASSERT_TRUE(device.Read(pages[0], &out).ok());
  EXPECT_EQ(out[0], 9);
  // Growing never faults anything in.
  ASSERT_TRUE(cache.SetCapacity(16).ok());
  EXPECT_EQ(cache.cached_pages(), 3u);
}

TEST(CachingDeviceTest, SetCapacityBelowPinnedResidencyDoesNotWedge) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  CachingDevice cache(&device, /*capacity_pages=*/4);
  std::vector<uint8_t> zeros(kBlock, 0);
  std::vector<PageId> pages;
  for (int i = 0; i < 4; ++i) {
    PageId p = testing_util::MustAllocate(cache, DataClass::kBase);
    ASSERT_TRUE(device.Write(p, zeros).ok());
    pages.push_back(p);
  }
  // Pin three pages, then shrink to 1: the sweep must skip every pinned
  // entry (their guards stay valid), evict nothing it cannot, and still
  // return OK -- an all-pinned overshoot is not an error.
  PageReadGuard g0, g1, g2;
  ASSERT_TRUE(cache.PinForRead(pages[0], &g0).ok());
  ASSERT_TRUE(cache.PinForRead(pages[1], &g1).ok());
  ASSERT_TRUE(cache.PinForRead(pages[2], &g2).ok());
  std::vector<uint8_t> out;
  ASSERT_TRUE(cache.Read(pages[3], &out).ok());  // Unpinned 4th resident.
  ASSERT_EQ(cache.cached_pages(), 4u);
  ASSERT_TRUE(cache.SetCapacity(1).ok());
  EXPECT_EQ(cache.capacity_pages(), 1u);
  // Only the unpinned page could go; residency overshoots at 3 (pinned).
  EXPECT_EQ(cache.cached_pages(), 3u);
  EXPECT_EQ(cache.pinned_pages(), 3u);
  EXPECT_EQ(g0.bytes().data()[0], 0);  // Pinned views never invalidated.
  EXPECT_EQ(g1.bytes().data()[0], 0);
  EXPECT_EQ(g2.bytes().data()[0], 0);
  // Residency converges to the cap as pins release -- held across the
  // shrink, released after it.
  g0.Release();
  g1.Release();
  EXPECT_LE(cache.cached_pages(), 2u);
  g2.Release();
  EXPECT_LE(cache.cached_pages(), 1u);
}

TEST(AppendLogTest, AppendsAmortizeToOneWritePerRecord) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  AppendLog log(&device, DataClass::kBase, &counters);
  const uint64_t kRecords = 10 * log.records_per_block();
  for (uint64_t i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(log.Append(LogRecord{i, i * 2, LogOp::kPut}).ok());
  }
  EXPECT_EQ(log.record_count(), kRecords);
  EXPECT_EQ(log.page_count(), 10u);
  // Exactly 10 block writes: each sealed block written once.
  EXPECT_EQ(counters.snapshot().blocks_written, 10u);
}

TEST(AppendLogTest, ForEachReplaysInOrderIncludingTail) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  AppendLog log(&device, DataClass::kBase, &counters);
  const uint64_t kRecords = log.records_per_block() + 5;  // Partial tail.
  for (uint64_t i = 0; i < kRecords; ++i) {
    ASSERT_TRUE(log
                    .Append(LogRecord{i, i,
                                      i % 3 == 0 ? LogOp::kDelete
                                                 : LogOp::kPut})
                    .ok());
  }
  uint64_t next = 0;
  ASSERT_TRUE(log.ForEach([&](const LogRecord& r) {
                   EXPECT_EQ(r.key, next);
                   EXPECT_EQ(r.op,
                             next % 3 == 0 ? LogOp::kDelete : LogOp::kPut);
                   ++next;
                   return Status::OK();
                 })
                  .ok());
  EXPECT_EQ(next, kRecords);
}

TEST(AppendLogTest, FlushPersistsPartialTail) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  AppendLog log(&device, DataClass::kBase, &counters);
  ASSERT_TRUE(log.Append(LogRecord{1, 2, LogOp::kPut}).ok());
  uint64_t writes_before = counters.snapshot().blocks_written;
  ASSERT_TRUE(log.Flush().ok());
  EXPECT_EQ(counters.snapshot().blocks_written, writes_before + 1);
}

TEST(AppendLogTest, ClearFreesEverything) {
  RumCounters counters;
  BlockDevice device(kBlock, &counters);
  AppendLog log(&device, DataClass::kBase, &counters);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(log.Append(LogRecord{i, i, LogOp::kPut}).ok());
  }
  ASSERT_TRUE(log.Clear().ok());
  EXPECT_EQ(log.record_count(), 0u);
  EXPECT_EQ(device.live_pages(), 0u);
  EXPECT_EQ(counters.snapshot().space_base, 0u);
}

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest()
      : device_(kBlock, &counters_),
        heap_(&device_, DataClass::kBase, &counters_) {}

  RumCounters counters_;
  BlockDevice device_;
  HeapFile heap_;
};

TEST_F(HeapFileTest, AppendAssignsSequentialRows) {
  for (uint64_t i = 0; i < 100; ++i) {
    Result<RowId> row = heap_.Append(Entry{i, i * 10});
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(row.value(), i);
  }
  EXPECT_EQ(heap_.row_count(), 100u);
}

TEST_F(HeapFileTest, AtReadsAnyRow) {
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(heap_.Append(Entry{i, i * 10}).ok());
  }
  for (uint64_t i = 0; i < 100; i += 7) {
    Result<Entry> e = heap_.At(i);
    ASSERT_TRUE(e.ok());
    EXPECT_EQ(e.value().key, i);
    EXPECT_EQ(e.value().value, i * 10);
  }
  EXPECT_FALSE(heap_.At(100).ok());
}

TEST_F(HeapFileTest, SetOverwritesInPlace) {
  for (uint64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(heap_.Append(Entry{i, 0}).ok());
  }
  ASSERT_TRUE(heap_.Set(3, Entry{3, 999}).ok());
  EXPECT_EQ(heap_.At(3).value().value, 999u);
  ASSERT_TRUE(heap_.Set(63, Entry{63, 888}).ok());  // Tail row.
  EXPECT_EQ(heap_.At(63).value().value, 888u);
}

TEST_F(HeapFileTest, PopBackShrinksAcrossPageBoundary) {
  size_t per_page = heap_.rows_per_page();
  for (uint64_t i = 0; i < per_page + 1; ++i) {
    ASSERT_TRUE(heap_.Append(Entry{i, i}).ok());
  }
  ASSERT_TRUE(heap_.PopBack().ok());  // Tail row goes.
  ASSERT_TRUE(heap_.PopBack().ok());  // Unseals the full page.
  EXPECT_EQ(heap_.row_count(), per_page - 1);
  EXPECT_EQ(heap_.At(per_page - 2).value().key, per_page - 2);
  // Drain to empty.
  while (heap_.row_count() > 0) {
    ASSERT_TRUE(heap_.PopBack().ok());
  }
  EXPECT_EQ(device_.live_pages(), 0u);
}

TEST_F(HeapFileTest, PopBackOnEmptyFails) {
  EXPECT_EQ(heap_.PopBack().code(), Code::kOutOfRange);
}

TEST_F(HeapFileTest, ForEachVisitsEverythingInOrder) {
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(heap_.Append(Entry{i, i}).ok());
  }
  uint64_t next = 0;
  ASSERT_TRUE(heap_
                  .ForEach([&](RowId row, const Entry& e) {
                    EXPECT_EQ(row, next);
                    EXPECT_EQ(e.key, next);
                    ++next;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(next, 200u);
}

TEST_F(HeapFileTest, ForRowsReadsEachPageOnce) {
  size_t per_page = heap_.rows_per_page();
  for (uint64_t i = 0; i < 4 * per_page; ++i) {
    ASSERT_TRUE(heap_.Append(Entry{i, i}).ok());
  }
  uint64_t blocks_before = counters_.snapshot().blocks_read;
  // Three rows on the same (first) page.
  std::vector<RowId> rows = {0, 1, 2};
  size_t visited = 0;
  ASSERT_TRUE(heap_
                  .ForRows(rows,
                           [&](RowId, const Entry&) {
                             ++visited;
                             return Status::OK();
                           })
                  .ok());
  EXPECT_EQ(visited, 3u);
  EXPECT_EQ(counters_.snapshot().blocks_read, blocks_before + 1);
}

TEST_F(HeapFileTest, ClearFreesAllPages) {
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(heap_.Append(Entry{i, i}).ok());
  }
  ASSERT_TRUE(heap_.Clear().ok());
  EXPECT_EQ(heap_.row_count(), 0u);
  EXPECT_EQ(device_.live_pages(), 0u);
}

}  // namespace
}  // namespace rum

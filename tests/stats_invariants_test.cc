// Cross-cutting accounting invariants, checked for every access method:
// amplifications never dip below their physical floors, phase deltas are
// internally consistent, and every run replays bit-identically.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "methods/factory.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"
#include "workload/runner.h"

namespace rum {
namespace {

using testing_util::SmallOptions;

class StatsInvariantsTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<AccessMethod> Make() {
    return MakeAccessMethod(GetParam(), SmallOptions());
  }
};

TEST_P(StatsInvariantsTest, WriteAmplificationHasUnitFloor) {
  // Every logical write must be physically written at least once, at some
  // granularity -- UO < 1 would mean bytes vanished.
  auto method = Make();
  ASSERT_NE(method, nullptr);
  WorkloadSpec spec = WorkloadSpec::WriteOnly(3000, 1u << 12);
  Result<RumProfile> profile = WorkloadRunner::Run(method.get(), spec);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_GE(profile.value().delta.write_amplification(), 0.999)
      << GetParam();
}

TEST_P(StatsInvariantsTest, ReadAmplificationHasUnitFloor) {
  auto method = Make();
  ASSERT_NE(method, nullptr);
  std::vector<Entry> entries = MakeSortedEntries(3000);
  ASSERT_TRUE(method->BulkLoad(entries).ok());
  ASSERT_TRUE(method->Flush().ok());
  method->ResetStats();
  WorkloadSpec spec = WorkloadSpec::ReadOnly(1500, 3000);
  Result<RumProfile> profile = WorkloadRunner::Run(method.get(), spec);
  ASSERT_TRUE(profile.ok());
  // What you return, you must have read.
  EXPECT_GE(profile.value().delta.read_amplification(), 0.999)
      << GetParam();
  // And a read-only phase writes nothing... except structures that adapt
  // on reads (cracking reorganizes; hot-cold promotes). For everyone
  // else, zero.
  if (GetParam() != "cracking" && GetParam() != "hot-cold") {
    EXPECT_EQ(profile.value().delta.total_bytes_written(), 0u)
        << GetParam();
  }
}

TEST_P(StatsInvariantsTest, SpaceAtLeastCoversLiveEntries) {
  auto method = Make();
  ASSERT_NE(method, nullptr);
  std::vector<Entry> entries = MakeSortedEntries(2000);
  ASSERT_TRUE(method->BulkLoad(entries).ok());
  ASSERT_TRUE(method->Flush().ok());
  CounterSnapshot snap = method->stats();
  if (GetParam() == "lsm-compressed") {
    // Compression is the one legitimate way below the 16-bytes-per-entry
    // floor (the paper's §5 computation-for-size trade).
    EXPECT_GT(snap.total_space(), 0u);
    EXPECT_LT(snap.total_space(), 2000u * kEntrySize);
  } else {
    EXPECT_GE(snap.total_space(), 2000u * kEntrySize) << GetParam();
    EXPECT_GE(snap.space_amplification(), 0.999) << GetParam();
  }
}

TEST_P(StatsInvariantsTest, IdenticalRunsProduceIdenticalCounters) {
  WorkloadSpec spec = WorkloadSpec::Mixed(2500, 1u << 11);
  spec.distribution = KeyDistribution::kZipfian;
  auto a = Make();
  auto b = Make();
  ASSERT_NE(a, nullptr);
  Result<RumProfile> pa = WorkloadRunner::LoadAndRun(a.get(), 1500, spec);
  Result<RumProfile> pb = WorkloadRunner::LoadAndRun(b.get(), 1500, spec);
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  const CounterSnapshot& da = pa.value().delta;
  const CounterSnapshot& db = pb.value().delta;
  EXPECT_EQ(da.bytes_read_base, db.bytes_read_base) << GetParam();
  EXPECT_EQ(da.bytes_read_aux, db.bytes_read_aux) << GetParam();
  EXPECT_EQ(da.bytes_written_base, db.bytes_written_base) << GetParam();
  EXPECT_EQ(da.bytes_written_aux, db.bytes_written_aux) << GetParam();
  EXPECT_EQ(da.space_base, db.space_base) << GetParam();
  EXPECT_EQ(da.space_aux, db.space_aux) << GetParam();
  EXPECT_EQ(da.logical_bytes_read, db.logical_bytes_read) << GetParam();
}

TEST_P(StatsInvariantsTest, ResetClearsTrafficKeepsSpace) {
  auto method = Make();
  ASSERT_NE(method, nullptr);
  std::vector<Entry> entries = MakeSortedEntries(1000);
  ASSERT_TRUE(method->BulkLoad(entries).ok());
  ASSERT_TRUE(method->Flush().ok());
  uint64_t space = method->stats().total_space();
  method->ResetStats();
  CounterSnapshot snap = method->stats();
  EXPECT_EQ(snap.total_bytes_read(), 0u) << GetParam();
  EXPECT_EQ(snap.total_bytes_written(), 0u) << GetParam();
  EXPECT_EQ(snap.total_space(), space) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, StatsInvariantsTest,
    ::testing::Values("btree", "hash", "zonemap", "lsm-leveled",
                      "lsm-tiered", "lsm-lazy", "lsm-hybrid", "lsm-compressed", "sorted-column", "unsorted-column",
                      "skiplist", "trie", "bitmap", "bitmap-delta",
                      "cracking", "stepped-merge", "bloom-zones",
                      "imprints", "hot-cold", "pbt", "sparse-index",
                      "absorbed-btree", "absorbed-bitmap", "pure-log",
                      "dense-array", "sharded-btree", "sharded-hash",
                      "sharded-skiplist", "sharded-lsm-leveled"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace rum

// Differential contract tests: every access method must behave exactly like
// the reference model under bulk loads and long random operation sequences.
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/access_method.h"
#include "methods/factory.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using testing_util::GetMatchesReference;
using testing_util::ReferenceModel;
using testing_util::ScanMatchesReference;
using testing_util::SmallOptions;

class MethodContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override {
    method_ = MakeAccessMethod(GetParam(), SmallOptions());
    ASSERT_NE(method_, nullptr) << "unknown method " << GetParam();
  }

  std::unique_ptr<AccessMethod> method_;
  ReferenceModel reference_;

  void CheckGet(Key key) {
    ASSERT_TRUE(GetMatchesReference(method_.get(), reference_, key));
  }

  void CheckScan(Key lo, Key hi) {
    ASSERT_TRUE(ScanMatchesReference(method_.get(), reference_, lo, hi));
  }
};

TEST_P(MethodContractTest, EmptyStructure) {
  EXPECT_EQ(method_->size(), 0u);
  Result<Value> got = method_->Get(123);
  EXPECT_TRUE(got.status().IsNotFound());
  std::vector<Entry> scan;
  EXPECT_TRUE(method_->Scan(0, 1000, &scan).ok());
  EXPECT_TRUE(scan.empty());
  // Deleting from empty is OK (idempotent).
  EXPECT_TRUE(method_->Delete(7).ok());
}

TEST_P(MethodContractTest, ScanRejectsInvertedRange) {
  std::vector<Entry> scan;
  EXPECT_EQ(method_->Scan(10, 5, &scan).code(), Code::kInvalidArgument);
}

TEST_P(MethodContractTest, BulkLoadAndPointQueries) {
  const size_t kN = 3000;
  std::vector<Entry> entries = MakeSortedEntries(kN, /*first=*/5,
                                                 /*stride=*/7);
  ASSERT_TRUE(method_->BulkLoad(entries).ok());
  for (const Entry& e : entries) {
    reference_.Insert(e.key, e.value);
  }
  EXPECT_EQ(method_->size(), kN);
  // Every loaded key, plus misses between the strides.
  for (size_t i = 0; i < kN; i += 17) {
    CheckGet(entries[i].key);
    CheckGet(entries[i].key + 1);  // Never a multiple of the stride + 5.
  }
  CheckGet(0);
  CheckGet(entries.back().key + 7);
}

TEST_P(MethodContractTest, BulkLoadRejectsUnsortedInput) {
  std::vector<Entry> bad = {{10, 1}, {5, 2}};
  EXPECT_EQ(method_->BulkLoad(bad).code(), Code::kInvalidArgument);
  std::vector<Entry> dup = {{10, 1}, {10, 2}};
  EXPECT_EQ(method_->BulkLoad(dup).code(), Code::kInvalidArgument);
}

TEST_P(MethodContractTest, BulkLoadRejectsNonEmptyTarget) {
  ASSERT_TRUE(method_->Insert(1, 1).ok());
  std::vector<Entry> entries = MakeSortedEntries(10);
  EXPECT_EQ(method_->BulkLoad(entries).code(), Code::kInvalidArgument);
}

TEST_P(MethodContractTest, BulkLoadThenScans) {
  const size_t kN = 2000;
  std::vector<Entry> entries = MakeSortedEntries(kN, 0, 3);
  ASSERT_TRUE(method_->BulkLoad(entries).ok());
  for (const Entry& e : entries) reference_.Insert(e.key, e.value);
  CheckScan(0, 50);
  CheckScan(100, 400);
  CheckScan(entries.back().key - 10, entries.back().key + 100);
  CheckScan(0, entries.back().key);
  CheckScan(7000, 7000);  // Empty interior range (stride gap).
}

TEST_P(MethodContractTest, InsertIsUpsert) {
  ASSERT_TRUE(method_->Insert(42, 1).ok());
  ASSERT_TRUE(method_->Insert(42, 2).ok());
  EXPECT_EQ(method_->size(), 1u);
  Result<Value> got = method_->Get(42);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), 2u);
}

TEST_P(MethodContractTest, DeleteThenReinsert) {
  ASSERT_TRUE(method_->Insert(7, 70).ok());
  ASSERT_TRUE(method_->Delete(7).ok());
  EXPECT_TRUE(method_->Get(7).status().IsNotFound());
  EXPECT_EQ(method_->size(), 0u);
  ASSERT_TRUE(method_->Insert(7, 71).ok());
  Result<Value> got = method_->Get(7);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), 71u);
}

TEST_P(MethodContractTest, RandomizedOperationsMatchReference) {
  Rng rng(0xC0FFEE);
  const Key kRange = 1u << 12;
  const int kOps = 6000;
  for (int i = 0; i < kOps; ++i) {
    Key key = rng.NextBelow(kRange);
    uint64_t dice = rng.NextBelow(100);
    if (dice < 45) {
      Value v = rng.Next();
      ASSERT_TRUE(method_->Insert(key, v).ok());
      reference_.Insert(key, v);
    } else if (dice < 60) {
      Value v = rng.Next();
      ASSERT_TRUE(method_->Update(key, v).ok());
      reference_.Update(key, v);
    } else if (dice < 75) {
      ASSERT_TRUE(method_->Delete(key).ok());
      reference_.Delete(key);
    } else if (dice < 97) {
      CheckGet(key);
    } else {
      Key hi = key + rng.NextBelow(200);
      CheckScan(key, hi);
    }
    if (i % 997 == 0) {
      ASSERT_EQ(method_->size(), reference_.size())
          << method_->name() << " after op " << i;
    }
  }
  // Final full validation.
  ASSERT_EQ(method_->size(), reference_.size());
  CheckScan(0, kRange);
}

TEST_P(MethodContractTest, FlushPreservesContents) {
  Rng rng(0xFACE);
  const Key kRange = 1u << 10;
  for (int i = 0; i < 500; ++i) {
    Key key = rng.NextBelow(kRange);
    Value v = rng.Next();
    ASSERT_TRUE(method_->Insert(key, v).ok());
    reference_.Insert(key, v);
  }
  ASSERT_TRUE(method_->Flush().ok());
  CheckScan(0, kRange);
  for (Key k = 0; k < kRange; k += 37) CheckGet(k);
}

TEST_P(MethodContractTest, SequentialInsertThenFullScan) {
  // Ascending inserts stress split-at-tail paths.
  for (Key k = 0; k < 2000; ++k) {
    ASSERT_TRUE(method_->Insert(k, ValueFor(k)).ok());
    reference_.Insert(k, ValueFor(k));
  }
  CheckScan(0, 2000);
  EXPECT_EQ(method_->size(), 2000u);
}

TEST_P(MethodContractTest, DescendingInsertThenFullScan) {
  for (Key k = 2000; k-- > 0;) {
    ASSERT_TRUE(method_->Insert(k, ValueFor(k)).ok());
    reference_.Insert(k, ValueFor(k));
  }
  CheckScan(0, 2000);
}

TEST_P(MethodContractTest, MassDeleteToEmpty) {
  const size_t kN = 1500;
  std::vector<Entry> entries = MakeSortedEntries(kN, 0, 2);
  ASSERT_TRUE(method_->BulkLoad(entries).ok());
  for (const Entry& e : entries) reference_.Insert(e.key, e.value);
  // Delete in a scattered order.
  Rng rng(0xDEAD);
  std::vector<Key> keys;
  keys.reserve(kN);
  for (const Entry& e : entries) keys.push_back(e.key);
  for (size_t i = keys.size(); i > 1; --i) {
    std::swap(keys[i - 1], keys[rng.NextBelow(i)]);
  }
  for (size_t i = 0; i < keys.size(); ++i) {
    ASSERT_TRUE(method_->Delete(keys[i]).ok()) << "delete " << keys[i];
    reference_.Delete(keys[i]);
    if (i % 250 == 0) {
      ASSERT_EQ(method_->size(), reference_.size()) << "after " << i;
    }
  }
  EXPECT_EQ(method_->size(), 0u);
  CheckScan(0, 4 * kN);
}

TEST_P(MethodContractTest, BoundaryKeysRoundTrip) {
  // The extreme ends of the key domain stress shift arithmetic, sentinel
  // handling, and +1/-1 range math. Methods with a bounded domain (the
  // direct-address array) may reject out-of-domain keys with kOutOfRange;
  // everything they accept must behave exactly.
  const Key kBoundary[] = {0, 1, 2, kMaxKey - 2, kMaxKey - 1, kMaxKey};
  std::set<Key> rejected;
  for (Key k : kBoundary) {
    Status s = method_->Insert(k, ValueFor(k));
    if (s.code() == Code::kOutOfRange) {
      rejected.insert(k);
      continue;
    }
    ASSERT_TRUE(s.ok()) << method_->name() << " key " << k;
    reference_.Insert(k, ValueFor(k));
  }
  for (Key k : kBoundary) {
    if (rejected.count(k) != 0) {
      // Out-of-domain keys must keep failing consistently.
      EXPECT_FALSE(method_->Get(k).ok());
      continue;
    }
    CheckGet(k);
  }
  CheckScan(0, 2);
  CheckScan(kMaxKey - 2, kMaxKey);
  CheckScan(0, kMaxKey);
  // Delete the edges and verify.
  for (Key k : {Key{0}, kMaxKey}) {
    Status s = method_->Delete(k);
    if (s.code() == Code::kOutOfRange) continue;
    ASSERT_TRUE(s.ok());
    reference_.Delete(k);
  }
  CheckScan(0, kMaxKey);
}

TEST_P(MethodContractTest, StatsAreSane) {
  const size_t kN = 1000;
  std::vector<Entry> entries = MakeSortedEntries(kN);
  ASSERT_TRUE(method_->BulkLoad(entries).ok());
  ASSERT_TRUE(method_->Flush().ok());
  method_->ResetStats();
  for (Key k = 0; k < kN; k += 3) {
    ASSERT_TRUE(method_->Get(k).ok());
  }
  CounterSnapshot snap = method_->stats();
  EXPECT_GT(snap.total_bytes_read(), 0u) << method_->name();
  EXPECT_GT(snap.logical_bytes_read, 0u);
  // Read amplification can never be below 1: you must at least read what
  // you return.
  EXPECT_GE(snap.read_amplification(), 1.0) << method_->name();
  // Space: something is resident, and base data is accounted.
  EXPECT_GT(snap.total_space(), 0u) << method_->name();
  EXPECT_GT(snap.space_base, 0u) << method_->name();
  EXPECT_GE(snap.space_amplification(), 1.0) << method_->name();
  // Point queries were counted.
  EXPECT_EQ(snap.point_queries, (kN + 2) / 3);
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, MethodContractTest,
    ::testing::Values("btree", "hash", "zonemap", "lsm-leveled",
                      "lsm-tiered", "lsm-lazy", "lsm-hybrid", "lsm-compressed", "sorted-column", "unsorted-column",
                      "skiplist", "trie", "bitmap", "bitmap-delta",
                      "cracking", "stepped-merge", "bloom-zones", "imprints", "hot-cold", "pbt", "sparse-index", "absorbed-btree", "absorbed-bitmap",
                      "magic-array", "pure-log", "dense-array",
                      "sharded-btree", "sharded-hash", "sharded-skiplist",
                      "sharded-lsm-leveled"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace rum

// The paper's thesis as executable properties: no access method reaches
// the theoretical optimum on all three RUM overheads at once, and each
// extreme structure that does reach one optimum pays on the others.
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "methods/factory.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"
#include "workload/runner.h"

namespace rum {
namespace {

using testing_util::SmallOptions;

// Tolerance for "reached the theoretical optimum of 1.0". Block slack and
// structural headers mean even frugal methods sit a little above 1.0.
constexpr double kNearOptimal = 1.10;

class RumConjectureTest : public ::testing::TestWithParam<std::string> {};

// The conjecture, measured: run a mixed workload (so all three overheads
// are exercised) and require that at least one overhead stays clearly away
// from its optimum.
TEST_P(RumConjectureTest, NoMethodIsOptimalOnAllThreeOverheads) {
  Options options = SmallOptions();
  std::unique_ptr<AccessMethod> method =
      MakeAccessMethod(GetParam(), options);
  ASSERT_NE(method, nullptr);

  // Load then run a mixed read/write workload over a skewed key space.
  WorkloadSpec spec = WorkloadSpec::Mixed(8000, 1u << 13);
  spec.distribution = KeyDistribution::kZipfian;
  Result<RumProfile> profile =
      WorkloadRunner::LoadAndRun(method.get(), 6000, spec);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();

  RumPoint p = profile.value().point;
  SCOPED_TRACE(p.ToString());
  double worst =
      std::max({p.read_overhead, p.update_overhead, p.memory_overhead});
  EXPECT_GT(worst, kNearOptimal)
      << GetParam()
      << " appears optimal on all three overheads at once, refuting the "
         "RUM Conjecture (or the accounting)";
}

INSTANTIATE_TEST_SUITE_P(
    AllMethods, RumConjectureTest,
    ::testing::Values("btree", "hash", "zonemap", "lsm-leveled",
                      "lsm-tiered", "lsm-lazy", "lsm-hybrid", "lsm-compressed", "sorted-column", "unsorted-column",
                      "skiplist", "trie", "bitmap", "bitmap-delta",
                      "cracking", "stepped-merge", "bloom-zones", "imprints", "hot-cold", "pbt", "sparse-index", "absorbed-btree", "absorbed-bitmap",
                      "magic-array", "pure-log", "dense-array"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Proposition 1: optimal reads imply non-optimal space (and a 2x write for
// the paper's value-change operation, tested in methods_test).
TEST(RumPropositionsTest, ReadOptimalImpliesSpacePenalty) {
  Options options = SmallOptions();
  auto method = MakeAccessMethod("magic-array", options);
  WorkloadSpec spec = WorkloadSpec::ReadOnly(2000, 1u << 12);
  Result<RumProfile> profile =
      WorkloadRunner::LoadAndRun(method.get(), 4096, spec);
  ASSERT_TRUE(profile.ok());
  EXPECT_LE(profile.value().point.read_overhead, kNearOptimal);
  EXPECT_GT(profile.value().point.memory_overhead, 5.0);
}

// Proposition 2: optimal updates imply non-optimal reads and space.
TEST(RumPropositionsTest, WriteOptimalImpliesReadAndSpacePenalty) {
  Options options = SmallOptions();
  auto method = MakeAccessMethod("pure-log", options);
  // Updates first (all appends), then reads over the bloated log.
  WorkloadSpec writes = WorkloadSpec::WriteOnly(4000, 1u << 10);
  Result<RumProfile> wp =
      WorkloadRunner::LoadAndRun(method.get(), 1024, writes);
  ASSERT_TRUE(wp.ok());
  EXPECT_LE(wp.value().point.update_overhead, kNearOptimal);

  method->ResetStats();
  WorkloadSpec reads = WorkloadSpec::ReadOnly(200, 1u << 10);
  Result<RumProfile> rp = WorkloadRunner::Run(method.get(), reads);
  ASSERT_TRUE(rp.ok());
  EXPECT_GT(rp.value().point.read_overhead, 100.0);
  EXPECT_GT(rp.value().point.memory_overhead, 2.0);
}

// Proposition 3: optimal space implies linear reads (and in-place writes).
TEST(RumPropositionsTest, SpaceOptimalImpliesLinearReads) {
  Options options = SmallOptions();
  auto method = MakeAccessMethod("dense-array", options);
  WorkloadSpec spec = WorkloadSpec::ReadOnly(300, 1u << 12);
  Result<RumProfile> profile =
      WorkloadRunner::LoadAndRun(method.get(), 4096, spec);
  ASSERT_TRUE(profile.ok());
  EXPECT_LE(profile.value().point.memory_overhead, 1.0 + 1e-9);
  // Reading one entry costs ~N/2 entry reads: RO ~ 2048.
  EXPECT_GT(profile.value().point.read_overhead, 500.0);
}

// The design space is populated: the three practical families land in
// three different triangle regions under the same workload.
TEST(RumSpaceTest, FamiliesOccupyDistinctRegions) {
  Options options = SmallOptions();
  auto measure = [&](const char* name) {
    auto method = MakeAccessMethod(name, options);
    WorkloadSpec spec = WorkloadSpec::Mixed(8000, 1u << 13);
    Result<RumProfile> profile =
        WorkloadRunner::LoadAndRun(method.get(), 6000, spec);
    EXPECT_TRUE(profile.ok());
    return profile.value().point;
  };
  RumPoint btree = measure("btree");
  RumPoint lsm = measure("lsm-tiered");
  RumPoint zonemap = measure("zonemap");

  // Reads: the B-tree beats the zone map. Writes: the LSM beats the
  // B-tree. Space: the zone map beats the skiplist-backed LSM.
  EXPECT_LT(btree.read_overhead, zonemap.read_overhead);
  EXPECT_LT(lsm.update_overhead, btree.update_overhead);
  EXPECT_LT(zonemap.memory_overhead, lsm.memory_overhead);
}

}  // namespace
}  // namespace rum

// Structure-specific tests: the Proposition 1-3 extremes, zone maps, the
// hash directory, cracking convergence, the trie, columns, bloom-zones.
#include <gtest/gtest.h>

#include "methods/approx/bloom_column.h"
#include "methods/column/sorted_column.h"
#include "methods/column/unsorted_column.h"
#include "methods/cracking/cracking.h"
#include "methods/extremes/dense_array.h"
#include "methods/extremes/magic_array.h"
#include "methods/extremes/pure_log.h"
#include "methods/hash/hash_index.h"
#include "methods/pbt/pbt.h"
#include "methods/trie/trie.h"
#include "methods/zonemap/zonemap.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using testing_util::SmallOptions;

// ------------------------------------------------------------ Propositions

TEST(Prop1MagicArrayTest, ReadOverheadIsExactlyOne) {
  Options options = SmallOptions();
  MagicArray array(options);
  for (Key k = 100; k < 1100; ++k) {
    ASSERT_TRUE(array.Insert(k, ValueFor(k)).ok());
  }
  array.ResetStats();
  for (Key k = 100; k < 1100; ++k) {
    ASSERT_TRUE(array.Get(k).ok());
  }
  EXPECT_DOUBLE_EQ(array.stats().read_amplification(), 1.0);
}

TEST(Prop1MagicArrayTest, ChangeKeyCostsTwoWrites) {
  Options options = SmallOptions();
  MagicArray array(options);
  ASSERT_TRUE(array.Insert(10, 1).ok());
  array.ResetStats();
  ASSERT_TRUE(array.ChangeKey(10, 20).ok());
  // Prop 1: UO = 2.0 -- two physical slot writes for one logical change.
  EXPECT_DOUBLE_EQ(array.stats().write_amplification(), 2.0);
  EXPECT_TRUE(array.Get(10).status().IsNotFound());
  EXPECT_EQ(array.Get(20).value(), 1u);
}

TEST(Prop1MagicArrayTest, MemoryOverheadIsUnbounded) {
  Options options = SmallOptions();
  options.extremes.magic_array_domain = 1u << 16;
  MagicArray array(options);
  ASSERT_TRUE(array.Insert(5, 5).ok());
  // One live entry, 2^16 slots: MO = 65536.
  EXPECT_DOUBLE_EQ(array.stats().space_amplification(), 65536.0);
  // Ten times the data, a tenth the overhead: MO ~ domain / N.
  for (Key k = 100; k < 109; ++k) ASSERT_TRUE(array.Insert(k, k).ok());
  EXPECT_DOUBLE_EQ(array.stats().space_amplification(), 6553.6);
}

TEST(Prop1MagicArrayTest, DomainIsEnforced) {
  Options options = SmallOptions();
  options.extremes.magic_array_domain = 100;
  MagicArray array(options);
  EXPECT_EQ(array.Insert(100, 1).code(), Code::kOutOfRange);
  EXPECT_EQ(array.Get(1000).code(), Code::kOutOfRange);
}

TEST(Prop2PureLogTest, WriteOverheadIsExactlyOne) {
  Options options = SmallOptions();
  PureLog log(options);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    Key k = rng.NextBelow(100);
    if (i % 5 == 4) {
      ASSERT_TRUE(log.Delete(k).ok());
    } else {
      ASSERT_TRUE(log.Insert(k, i).ok());
    }
  }
  // Prop 2: min(UO) = 1.0 -- every operation appends exactly its bytes.
  EXPECT_DOUBLE_EQ(log.stats().write_amplification(), 1.0);
}

TEST(Prop2PureLogTest, ReadAndSpaceGrowWithUpdates) {
  Options options = SmallOptions();
  PureLog log(options);
  // The same key overwritten 1000 times: one live entry, 1000 records.
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(log.Insert(7, i).ok());
  }
  EXPECT_EQ(log.size(), 1u);
  EXPECT_EQ(log.record_count(), 1000u);
  // MO grows without bound: 1000 records of space over 1 live entry.
  EXPECT_DOUBLE_EQ(log.stats().space_amplification(), 1000.0);
  // A miss scans everything.
  log.ResetStats();
  EXPECT_TRUE(log.Get(8).status().IsNotFound());
  EXPECT_EQ(log.stats().total_bytes_read(), 1000u * kEntrySize);
}

TEST(Prop2PureLogTest, NewestVersionWins) {
  Options options = SmallOptions();
  PureLog log(options);
  ASSERT_TRUE(log.Insert(1, 10).ok());
  ASSERT_TRUE(log.Insert(1, 20).ok());
  EXPECT_EQ(log.Get(1).value(), 20u);
  ASSERT_TRUE(log.Delete(1).ok());
  EXPECT_TRUE(log.Get(1).status().IsNotFound());
  ASSERT_TRUE(log.Insert(1, 30).ok());
  EXPECT_EQ(log.Get(1).value(), 30u);
}

TEST(Prop3DenseArrayTest, MemoryOverheadIsExactlyOne) {
  Options options = SmallOptions();
  DenseArray array(options);
  for (Key k = 0; k < 1000; ++k) {
    ASSERT_TRUE(array.Insert(k, k).ok());
  }
  // Prop 3: min(MO) = 1.0 -- not one auxiliary byte.
  EXPECT_DOUBLE_EQ(array.stats().space_amplification(), 1.0);
  EXPECT_EQ(array.stats().space_aux, 0u);
  ASSERT_TRUE(array.Delete(500).ok());
  EXPECT_DOUBLE_EQ(array.stats().space_amplification(), 1.0);
}

TEST(Prop3DenseArrayTest, PointQueryScansHalfOnAverage) {
  Options options = SmallOptions();
  DenseArray array(options);
  const size_t kN = 1000;
  std::vector<Entry> entries = MakeSortedEntries(kN);
  ASSERT_TRUE(array.BulkLoad(entries).ok());
  array.ResetStats();
  Rng rng(2);
  const int kQueries = 500;
  for (int i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(array.Get(rng.NextBelow(kN)).ok());
  }
  double avg_entries_read =
      static_cast<double>(array.stats().total_bytes_read()) / kEntrySize /
      kQueries;
  EXPECT_GT(avg_entries_read, 0.3 * kN);
  EXPECT_LT(avg_entries_read, 0.7 * kN);
}

// ---------------------------------------------------------------- ZoneMaps

TEST(ZoneMapTest, ZonesSplitAsDataGrows) {
  Options options = SmallOptions();
  ZoneMapColumn column(options);
  for (Key k = 0; k < 2000; ++k) {
    ASSERT_TRUE(column.Insert(k, k).ok());
  }
  EXPECT_GT(column.zone_count(), 2000 / options.zonemap.zone_entries);
}

TEST(ZoneMapTest, IndexIsTiny) {
  Options options = SmallOptions();
  ZoneMapColumn column(options);
  std::vector<Entry> entries = MakeSortedEntries(10000);
  ASSERT_TRUE(column.BulkLoad(entries).ok());
  CounterSnapshot snap = column.stats();
  // Sparse index: far below 1% of the base data.
  EXPECT_LT(snap.space_aux, snap.space_base / 50);
}

TEST(ZoneMapTest, MinMaxPruningSkipsZoneReads) {
  Options options = SmallOptions();
  ZoneMapColumn column(options);
  std::vector<Entry> entries = MakeSortedEntries(5000, 0, 10);
  ASSERT_TRUE(column.BulkLoad(entries).ok());
  column.ResetStats();
  // Key far beyond every zone: descriptor scan only, no block reads.
  EXPECT_TRUE(column.Get(1u << 30).status().IsNotFound());
  EXPECT_EQ(column.stats().blocks_read, 0u);
}

TEST(ZoneMapTest, PointQueryReadsOneZone) {
  Options options = SmallOptions();
  ZoneMapColumn column(options);
  std::vector<Entry> entries = MakeSortedEntries(5000);
  ASSERT_TRUE(column.BulkLoad(entries).ok());
  column.ResetStats();
  ASSERT_TRUE(column.Get(2500).ok());
  size_t zone_blocks =
      (options.zonemap.zone_entries + 30) / 31;  // 31 entries/block at 512.
  EXPECT_LE(column.stats().blocks_read, zone_blocks);
}

// ------------------------------------------------------------- Hash index

TEST(HashIndexTest, DirectoryGrowsUnderLoad) {
  Options options = SmallOptions();
  HashIndex index(options);
  size_t slots_before = 0;
  for (Key k = 0; k < 2000; ++k) {
    ASSERT_TRUE(index.Insert(k, k).ok());
    if (k == 10) slots_before = index.slot_count();
  }
  EXPECT_GT(index.slot_count(), slots_before);
  EXPECT_LE(index.load_factor(), 0.7 + 0.01);
  // Everything still reachable after rehashes.
  for (Key k = 0; k < 2000; k += 111) {
    EXPECT_EQ(index.Get(k).value(), k) << k;
  }
}

TEST(HashIndexTest, PointQueryTouchesTwoBlocks) {
  Options options = SmallOptions();
  HashIndex index(options);
  std::vector<Entry> entries = MakeSortedEntries(5000);
  ASSERT_TRUE(index.BulkLoad(entries).ok());
  index.ResetStats();
  const int kQueries = 200;
  Rng rng(3);
  for (int i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(index.Get(rng.NextBelow(5000)).ok());
  }
  double blocks_per_query =
      static_cast<double>(index.stats().blocks_read) / kQueries;
  EXPECT_LT(blocks_per_query, 3.0);  // Directory page + heap page (+rare probe).
}

TEST(HashIndexTest, DeleteKeepsHeapDense) {
  Options options = SmallOptions();
  HashIndex index(options);
  for (Key k = 0; k < 500; ++k) {
    ASSERT_TRUE(index.Insert(k, k * 2).ok());
  }
  for (Key k = 0; k < 500; k += 2) {
    ASSERT_TRUE(index.Delete(k).ok());
  }
  EXPECT_EQ(index.size(), 250u);
  for (Key k = 1; k < 500; k += 2) {
    ASSERT_EQ(index.Get(k).value(), k * 2) << k;
  }
}

// --------------------------------------------------------------- Cracking

TEST(CrackingTest, QueriesConvergeToSmallReads) {
  Options options = SmallOptions();
  options.cracking.min_piece_entries = 64;
  CrackedColumn column(options);
  std::vector<Entry> entries = MakeSortedEntries(20000);
  ASSERT_TRUE(column.BulkLoad(entries).ok());

  // Two passes over the same query region: the first pass pays
  // partitioning cost, the second rides the cracks.
  std::vector<Entry> out;
  uint64_t pass_reads[2] = {0, 0};
  for (int pass = 0; pass < 2; ++pass) {
    column.ResetStats();
    for (int j = 0; j < 15; ++j) {
      out.clear();
      Key lo = 4000 + static_cast<Key>(j) * 64;
      ASSERT_TRUE(column.Scan(lo, lo + 100, &out).ok());
    }
    pass_reads[pass] = column.stats().total_bytes_read();
  }
  EXPECT_LT(pass_reads[1], pass_reads[0] / 10);
  EXPECT_GT(column.crack_count(), 10u);
}

TEST(CrackingTest, RepeatedQueriesAddNoCracks) {
  Options options = SmallOptions();
  CrackedColumn column(options);
  std::vector<Entry> entries = MakeSortedEntries(4096);
  ASSERT_TRUE(column.BulkLoad(entries).ok());
  std::vector<Entry> out;
  ASSERT_TRUE(column.Scan(1000, 1100, &out).ok());
  size_t cracks = column.crack_count();
  EXPECT_LE(cracks, 2u);  // One crack per bound at most.
  for (int i = 0; i < 10; ++i) {
    out.clear();
    ASSERT_TRUE(column.Scan(1000, 1100, &out).ok());
  }
  EXPECT_EQ(column.crack_count(), cracks);
}

TEST(CrackingTest, SmallPiecesAreScannedNotCracked) {
  Options options = SmallOptions();
  options.cracking.min_piece_entries = 1u << 20;  // Never crack.
  CrackedColumn column(options);
  std::vector<Entry> entries = MakeSortedEntries(2048);
  ASSERT_TRUE(column.BulkLoad(entries).ok());
  std::vector<Entry> out;
  ASSERT_TRUE(column.Scan(100, 200, &out).ok());
  EXPECT_EQ(column.crack_count(), 0u);
  EXPECT_EQ(out.size(), 101u);  // Filtering still yields exact results.
}

TEST(CrackingTest, PendingInsertsVisibleBeforeMerge) {
  Options options = SmallOptions();
  options.cracking.delta_merge_threshold = 1u << 20;
  CrackedColumn column(options);
  std::vector<Entry> entries = MakeSortedEntries(1000);
  ASSERT_TRUE(column.BulkLoad(entries).ok());
  ASSERT_TRUE(column.Insert(5000, 42).ok());
  EXPECT_EQ(column.Get(5000).value(), 42u);
  std::vector<Entry> out;
  ASSERT_TRUE(column.Scan(4990, 5010, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 42u);
}

TEST(CrackingTest, MergeResetsCracksAndAppliesDeletes) {
  Options options = SmallOptions();
  options.cracking.delta_merge_threshold = 1u << 20;
  CrackedColumn column(options);
  std::vector<Entry> entries = MakeSortedEntries(1000);
  ASSERT_TRUE(column.BulkLoad(entries).ok());
  std::vector<Entry> out;
  ASSERT_TRUE(column.Scan(100, 200, &out).ok());
  EXPECT_GT(column.crack_count(), 0u);
  ASSERT_TRUE(column.Delete(150).ok());
  ASSERT_TRUE(column.Flush().ok());  // Merge.
  EXPECT_EQ(column.crack_count(), 0u);
  out.clear();
  ASSERT_TRUE(column.Scan(149, 151, &out).ok());
  ASSERT_EQ(out.size(), 2u);  // 149 and 151; 150 gone.
}

// ------------------------------------------------------------------- Trie

TEST(TrieTest, ConstantDepthProbes) {
  Options options = SmallOptions();
  Trie trie(options);
  EXPECT_EQ(trie.depth(), 8u);  // 64 bits / 8-bit span.
  for (Key k = 0; k < 1000; ++k) {
    ASSERT_TRUE(trie.Insert(k * 1000003, k).ok());
  }
  trie.ResetStats();
  ASSERT_TRUE(trie.Get(999 * 1000003).ok());
  // Exactly depth pointer reads.
  EXPECT_EQ(trie.stats().bytes_read_aux, 8u * sizeof(void*));
}

TEST(TrieTest, SpaceIsPointerHeavy) {
  Options options = SmallOptions();
  Trie trie(options);
  for (Key k = 0; k < 1000; ++k) {
    ASSERT_TRUE(trie.Insert(k * 1000003, k).ok());
  }
  CounterSnapshot snap = trie.stats();
  // Node arrays dwarf the entries: the read-optimized corner pays in M.
  EXPECT_GT(snap.space_amplification(), 10.0);
}

TEST(TrieTest, DeletePrunesEmptyNodes) {
  Options options = SmallOptions();
  Trie trie(options);
  size_t empty_nodes = trie.inner_node_count();
  for (Key k = 0; k < 100; ++k) {
    ASSERT_TRUE(trie.Insert(k << 32, k).ok());
  }
  size_t full_nodes = trie.inner_node_count();
  EXPECT_GT(full_nodes, empty_nodes);
  for (Key k = 0; k < 100; ++k) {
    ASSERT_TRUE(trie.Delete(k << 32).ok());
  }
  EXPECT_EQ(trie.inner_node_count(), empty_nodes);
  EXPECT_EQ(trie.size(), 0u);
}

TEST(TrieTest, WideSpanIsShallower) {
  Options narrow = SmallOptions();
  narrow.trie.span_bits = 4;
  Options wide = SmallOptions();
  wide.trie.span_bits = 16;
  Trie narrow_trie(narrow);
  Trie wide_trie(wide);
  EXPECT_EQ(narrow_trie.depth(), 16u);
  EXPECT_EQ(wide_trie.depth(), 4u);
}

// ---------------------------------------------------------------- Columns

TEST(SortedColumnTest, StaysDenseAfterChurn) {
  Options options = SmallOptions();
  SortedColumn column(options);
  std::vector<Entry> entries = MakeSortedEntries(2000, 0, 2);
  ASSERT_TRUE(column.BulkLoad(entries).ok());
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(column.Insert(rng.NextBelow(4000) | 1, i).ok());
    ASSERT_TRUE(column.Delete(rng.NextBelow(2000) * 2).ok());
  }
  // Density invariant: pages = ceil(count / capacity).
  size_t capacity = (512 - 8) / 16;
  size_t expected_pages = (column.size() + capacity - 1) / capacity;
  EXPECT_EQ(column.page_count(), expected_pages);
}

TEST(SortedColumnTest, InsertCostGrowsLinearlyWithPosition) {
  Options options = SmallOptions();
  SortedColumn column(options);
  std::vector<Entry> entries = MakeSortedEntries(8000, 0, 2);
  ASSERT_TRUE(column.BulkLoad(entries).ok());
  column.ResetStats();
  ASSERT_TRUE(column.Insert(1, 0).ok());  // Front: shifts everything.
  uint64_t front_cost = column.stats().total_bytes_written();
  column.ResetStats();
  ASSERT_TRUE(column.Insert(15999, 0).ok());  // Back: one page.
  uint64_t back_cost = column.stats().total_bytes_written();
  EXPECT_GT(front_cost, 100 * back_cost);
}

TEST(UnsortedColumnTest, BlindAppendIsCheap) {
  Options options = SmallOptions();
  UnsortedColumn column(options);
  for (Key k = 0; k < 310; ++k) {  // 10 pages at 31 entries/page.
    ASSERT_TRUE(column.Append(k, k).ok());
  }
  // Amortized: one block write per 31 appends, no reads.
  EXPECT_EQ(column.stats().blocks_written, 10u);
  EXPECT_EQ(column.stats().blocks_read, 0u);
}

// --------------------------------------------------- Partitioned B-tree

TEST(PbtTest, PartitionsSealAndMerge) {
  Options options = SmallOptions();
  options.pbt.partition_entries = 200;
  options.pbt.max_partitions = 3;
  PartitionedBTree pbt(options);
  for (Key k = 0; k < 1500; ++k) {
    ASSERT_TRUE(pbt.Insert(k * 13 % 5000, k).ok());
  }
  EXPECT_LE(pbt.partition_count(), 4u);
  EXPECT_GT(pbt.merges(), 0u);
  EXPECT_EQ(pbt.size(), pbt.partition_count() >= 1
                            ? pbt.size()
                            : 0u);  // size() consistency checked below.
  // Everything readable (newest version wins).
  for (Key k = 0; k < 1500; k += 97) {
    Key key = k * 13 % 5000;
    ASSERT_TRUE(pbt.Get(key).ok()) << key;
  }
}

TEST(PbtTest, NewestPartitionShadowsOlder) {
  Options options = SmallOptions();
  options.pbt.partition_entries = 10;
  options.pbt.max_partitions = 100;  // Never merge during the test.
  PartitionedBTree pbt(options);
  ASSERT_TRUE(pbt.Insert(5, 1).ok());
  // Seal the first partition by filling it.
  for (Key k = 100; k < 110; ++k) {
    ASSERT_TRUE(pbt.Insert(k, k).ok());
  }
  ASSERT_TRUE(pbt.Insert(5, 2).ok());  // Lands in a newer partition.
  EXPECT_GE(pbt.partition_count(), 2u);
  EXPECT_EQ(pbt.Get(5).value(), 2u);
  std::vector<Entry> out;
  ASSERT_TRUE(pbt.Scan(5, 5, &out).ok());
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].value, 2u);
  EXPECT_EQ(pbt.size(), 11u);  // 10 fillers + key 5.
}

TEST(PbtTest, WritesCheaperThanMonolithicBTree) {
  Options options = SmallOptions();
  options.pbt.partition_entries = 512;
  options.pbt.max_partitions = 8;
  PartitionedBTree pbt(options);
  BTree monolith(options);
  // Random inserts over a wide keyspace: the monolith rewrites leaves all
  // over; each PBT insert touches a tiny active tree.
  Rng rng(23);
  for (int i = 0; i < 8000; ++i) {
    Key k = rng.NextBelow(1u << 16);
    ASSERT_TRUE(pbt.Insert(k, i).ok());
    ASSERT_TRUE(monolith.Insert(k, i).ok());
  }
  EXPECT_LT(pbt.stats().total_bytes_read(),
            monolith.stats().total_bytes_read());
}

// ------------------------------------------------------- Sparse index

TEST(SparseIndexTest, PointQueryReadsExactlyOneBlock) {
  Options options = SmallOptions();
  options.column.sparse_index = true;
  SortedColumn column(options);
  EXPECT_EQ(column.name(), "sparse-index");
  std::vector<Entry> entries = MakeSortedEntries(5000);
  ASSERT_TRUE(column.BulkLoad(entries).ok());
  column.ResetStats();
  for (Key k = 0; k < 5000; k += 111) {
    ASSERT_TRUE(column.Get(k).ok());
  }
  size_t queries = (5000 + 110) / 111;
  EXPECT_EQ(column.stats().blocks_read, queries);  // One block each.
}

TEST(SparseIndexTest, AuxSpaceIsOneKeyPerPage) {
  Options options = SmallOptions();
  options.column.sparse_index = true;
  SortedColumn column(options);
  std::vector<Entry> entries = MakeSortedEntries(3100);
  ASSERT_TRUE(column.BulkLoad(entries).ok());
  EXPECT_EQ(column.stats().space_aux, column.page_count() * sizeof(Key));
}

TEST(SparseIndexTest, FencesTrackChurn) {
  Options options = SmallOptions();
  options.column.sparse_index = true;
  SortedColumn column(options);
  std::vector<Entry> entries = MakeSortedEntries(1000, 0, 2);
  ASSERT_TRUE(column.BulkLoad(entries).ok());
  // Delete the whole front -- fences must shift with the cascades.
  for (Key k = 0; k < 400; ++k) {
    ASSERT_TRUE(column.Delete(k * 2).ok());
  }
  for (Key k = 400; k < 1000; k += 37) {
    ASSERT_EQ(column.Get(k * 2).value(), ValueFor(k * 2)) << k;
  }
  EXPECT_EQ(column.stats().space_aux, column.page_count() * sizeof(Key));
}

// ------------------------------------------------------------ Bloom zones

TEST(BloomZoneTest, PointQueriesSkipMostZones) {
  Options options = SmallOptions();
  BloomZoneColumn column(options);
  std::vector<Entry> entries = MakeSortedEntries(10000, 0, 2);
  ASSERT_TRUE(column.BulkLoad(entries).ok());
  column.ResetStats();
  const int kQueries = 200;
  Rng rng(17);
  for (int i = 0; i < kQueries; ++i) {
    ASSERT_TRUE(column.Get(rng.NextBelow(10000) * 2).ok());
  }
  // ~79 zones of 128 entries; a full scan would read ~323 blocks/query.
  double blocks_per_query =
      static_cast<double>(column.stats().blocks_read) / kQueries;
  EXPECT_LT(blocks_per_query, 15.0);
}

TEST(BloomZoneTest, DeletesTriggerRebuildAndReclaim) {
  Options options = SmallOptions();
  options.approx.rebuild_deleted_fraction = 0.1;
  BloomZoneColumn column(options);
  std::vector<Entry> entries = MakeSortedEntries(2000);
  ASSERT_TRUE(column.BulkLoad(entries).ok());
  for (Key k = 0; k < 500; ++k) {
    ASSERT_TRUE(column.Delete(k).ok());
  }
  // Rebuilds kept the tombstone set small.
  EXPECT_LT(column.deleted_count(), 250u);
  EXPECT_EQ(column.size(), 1500u);
  for (Key k = 500; k < 520; ++k) {
    EXPECT_EQ(column.Get(k).value(), ValueFor(k));
  }
}

}  // namespace
}  // namespace rum

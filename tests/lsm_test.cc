// Structural tests for the LSM-tree: run layout, compaction policies,
// Bloom-filter effect, tombstone GC, space accounting.
#include <gtest/gtest.h>

#include "methods/lsm/lsm_tree.h"
#include "methods/lsm/sorted_run.h"
#include "storage/block_device.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using testing_util::SmallOptions;

std::vector<LogRecord> MakeRecords(size_t n, Key first = 0, Key stride = 1) {
  std::vector<LogRecord> records;
  records.reserve(n);
  Key k = first;
  for (size_t i = 0; i < n; ++i) {
    records.push_back(LogRecord{k, ValueFor(k), LogOp::kPut});
    k += stride;
  }
  return records;
}

TEST(SortedRunTest, BuildAndGet) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  std::unique_ptr<SortedRun> run;
  ASSERT_TRUE(
      SortedRun::Build(&device, &counters, MakeRecords(1000, 0, 2), 10, &run)
          .ok());
  EXPECT_EQ(run->record_count(), 1000u);
  EXPECT_EQ(run->min_key(), 0u);
  EXPECT_EQ(run->max_key(), 1998u);
  Result<std::optional<LogRecord>> hit = run->Get(500);
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(hit.value().has_value());
  EXPECT_EQ(hit.value()->value, ValueFor(500));
  // A key in range but absent (odd).
  hit = run->Get(501);
  ASSERT_TRUE(hit.ok());
  EXPECT_FALSE(hit.value().has_value());
}

TEST(SortedRunTest, GetReadsOnePageViaFences) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  std::unique_ptr<SortedRun> run;
  ASSERT_TRUE(SortedRun::Build(&device, &counters, MakeRecords(5000), 0,
                               &run)
                  .ok());
  CounterSnapshot before = counters.snapshot();
  ASSERT_TRUE(run->Get(2500).ok());
  CounterSnapshot delta = counters.snapshot() - before;
  EXPECT_EQ(delta.blocks_read, 1u);  // Fences narrowed to one page.
}

TEST(SortedRunTest, BloomSkipsAbsentKeysWithoutIo) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  std::unique_ptr<SortedRun> run;
  ASSERT_TRUE(SortedRun::Build(&device, &counters, MakeRecords(2000, 0, 2),
                               12, &run)
                  .ok());
  CounterSnapshot before = counters.snapshot();
  size_t io_probes = 0;
  for (Key k = 1; k < 2000; k += 2) {  // All absent.
    ASSERT_TRUE(run->Get(k).ok());
  }
  CounterSnapshot delta = counters.snapshot() - before;
  io_probes = delta.blocks_read;
  // Nearly all misses are filtered before any page read.
  EXPECT_LT(io_probes, 50u);
}

TEST(SortedRunTest, SparseFencesTradeSpaceForPageReads) {
  RumCounters dense_counters, sparse_counters;
  BlockDevice dense_device(512, &dense_counters);
  BlockDevice sparse_device(512, &sparse_counters);
  std::unique_ptr<SortedRun> dense, sparse;
  // 31 records/page at 512 B; 8 pages per fence for the sparse run.
  ASSERT_TRUE(SortedRun::Build(&dense_device, &dense_counters,
                               MakeRecords(5000), 0, &dense,
                               /*fence_entries=*/0)
                  .ok());
  ASSERT_TRUE(SortedRun::Build(&sparse_device, &sparse_counters,
                               MakeRecords(5000), 0, &sparse,
                               /*fence_entries=*/31 * 8)
                  .ok());
  // Sparse fences are smaller auxiliary state...
  EXPECT_LT(sparse_counters.snapshot().space_aux,
            dense_counters.snapshot().space_aux);
  // ...but every lookup may scan up to the fence-group width.
  CounterSnapshot before_d = dense_counters.snapshot();
  CounterSnapshot before_s = sparse_counters.snapshot();
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    Key k = rng.NextBelow(5000);
    Result<std::optional<LogRecord>> d = dense->Get(k);
    Result<std::optional<LogRecord>> s = sparse->Get(k);
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(s.ok());
    // Same answers regardless of fence granularity.
    ASSERT_EQ(d.value().has_value(), s.value().has_value()) << k;
  }
  uint64_t dense_blocks =
      (dense_counters.snapshot() - before_d).blocks_read;
  uint64_t sparse_blocks =
      (sparse_counters.snapshot() - before_s).blocks_read;
  EXPECT_GT(sparse_blocks, dense_blocks);
}

TEST(SortedRunTest, CompressedRunsRoundTripExactly) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  // Irregular deltas, tombstones, and big jumps all survive the codec.
  std::vector<LogRecord> records;
  Rng rng(61);
  Key k = 0;
  for (int i = 0; i < 3000; ++i) {
    k += 1 + rng.NextBelow(1u << (1 + rng.NextBelow(20)));
    records.push_back(LogRecord{k, rng.Next(),
                                rng.NextBelow(5) == 0 ? LogOp::kDelete
                                                      : LogOp::kPut});
  }
  std::unique_ptr<SortedRun> run;
  ASSERT_TRUE(SortedRun::Build(&device, &counters, records, 0, &run, 0,
                               /*compress=*/true)
                  .ok());
  EXPECT_TRUE(run->compressed());
  // Every record readable via Get...
  for (size_t i = 0; i < records.size(); i += 97) {
    Result<std::optional<LogRecord>> hit = run->Get(records[i].key);
    ASSERT_TRUE(hit.ok());
    ASSERT_TRUE(hit.value().has_value()) << i;
    EXPECT_EQ(hit.value()->value, records[i].value);
    EXPECT_EQ(hit.value()->op, records[i].op);
  }
  // ...and the full stream replays in order.
  std::vector<LogRecord> replay;
  ASSERT_TRUE(
      run->VisitAll([&](const LogRecord& r) { replay.push_back(r); }).ok());
  ASSERT_EQ(replay.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ASSERT_EQ(replay[i].key, records[i].key) << i;
    ASSERT_EQ(replay[i].value, records[i].value) << i;
  }
}

TEST(SortedRunTest, CompressionShrinksDenseRuns) {
  RumCounters raw_counters, comp_counters;
  BlockDevice raw_device(512, &raw_counters);
  BlockDevice comp_device(512, &comp_counters);
  std::vector<LogRecord> records = MakeRecords(10000);  // Dense keys.
  std::unique_ptr<SortedRun> raw, comp;
  ASSERT_TRUE(
      SortedRun::Build(&raw_device, &raw_counters, records, 0, &raw).ok());
  ASSERT_TRUE(SortedRun::Build(&comp_device, &comp_counters, records, 0,
                               &comp, 0, /*compress=*/true)
                  .ok());
  // Dense keys: ~10 bytes/record vs 17 -- expect a solid page reduction.
  EXPECT_LT(comp->page_count(), raw->page_count() * 3 / 4);
  // Range reads touch proportionally fewer blocks.
  CounterSnapshot rb = raw_counters.snapshot();
  CounterSnapshot cb = comp_counters.snapshot();
  ASSERT_TRUE(raw->VisitRange(2000, 4000, [](const LogRecord&) {}).ok());
  ASSERT_TRUE(comp->VisitRange(2000, 4000, [](const LogRecord&) {}).ok());
  uint64_t raw_blocks = (raw_counters.snapshot() - rb).blocks_read;
  uint64_t comp_blocks = (comp_counters.snapshot() - cb).blocks_read;
  EXPECT_LT(comp_blocks, raw_blocks);
}

TEST(LsmTreeTest, CompressedTreeShrinksResidency) {
  Options raw_opts = SmallOptions();
  Options comp_opts = SmallOptions();
  comp_opts.lsm.compress_runs = true;
  LsmTree raw(raw_opts);
  LsmTree comp(comp_opts);
  EXPECT_EQ(comp.name(), "lsm-compressed");
  for (Key k = 0; k < 20000; ++k) {
    ASSERT_TRUE(raw.Insert(k, k).ok());
    ASSERT_TRUE(comp.Insert(k, k).ok());
  }
  ASSERT_TRUE(raw.Flush().ok());
  ASSERT_TRUE(comp.Flush().ok());
  EXPECT_LT(comp.stats().total_space(), raw.stats().total_space() * 3 / 4);
  // Same answers.
  for (Key k = 0; k < 20000; k += 977) {
    ASSERT_EQ(comp.Get(k).value(), raw.Get(k).value());
  }
}

TEST(SortedRunTest, VisitRangeHonorsBounds) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  std::unique_ptr<SortedRun> run;
  ASSERT_TRUE(
      SortedRun::Build(&device, &counters, MakeRecords(1000), 0, &run).ok());
  std::vector<Key> keys;
  ASSERT_TRUE(
      run->VisitRange(100, 110, [&](const LogRecord& r) {
           keys.push_back(r.key);
         }).ok());
  ASSERT_EQ(keys.size(), 11u);
  EXPECT_EQ(keys.front(), 100u);
  EXPECT_EQ(keys.back(), 110u);
}

TEST(SortedRunTest, DestroyReleasesAllSpace) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  {
    std::unique_ptr<SortedRun> run;
    ASSERT_TRUE(SortedRun::Build(&device, &counters, MakeRecords(1000), 10,
                                 &run)
                    .ok());
    EXPECT_GT(counters.snapshot().total_space(), 0u);
    ASSERT_TRUE(run->Destroy().ok());
  }
  EXPECT_EQ(counters.snapshot().total_space(), 0u);
  EXPECT_EQ(device.live_pages(), 0u);
}

TEST(SortedRunTest, EmptyBuildRejected) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  std::unique_ptr<SortedRun> run;
  EXPECT_EQ(
      SortedRun::Build(&device, &counters, {}, 10, &run).code(),
      Code::kInvalidArgument);
}

TEST(MergeStreamsTest, NewestStreamShadowsOlder) {
  std::vector<std::vector<LogRecord>> streams(2);
  streams[0] = {{1, 100, LogOp::kPut}, {3, 300, LogOp::kPut}};
  streams[1] = {{1, 1, LogOp::kPut}, {2, 2, LogOp::kPut}};
  std::vector<LogRecord> merged =
      LsmTree::MergeStreams(std::move(streams), false);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].key, 1u);
  EXPECT_EQ(merged[0].value, 100u);  // Newest wins.
  EXPECT_EQ(merged[1].key, 2u);
  EXPECT_EQ(merged[2].key, 3u);
}

TEST(MergeStreamsTest, TombstonesDroppedOnlyWhenAsked) {
  std::vector<std::vector<LogRecord>> streams(2);
  streams[0] = {{1, 0, LogOp::kDelete}};
  streams[1] = {{1, 11, LogOp::kPut}, {2, 22, LogOp::kPut}};
  std::vector<std::vector<LogRecord>> copy = streams;

  std::vector<LogRecord> keep = LsmTree::MergeStreams(std::move(copy), false);
  ASSERT_EQ(keep.size(), 2u);
  EXPECT_EQ(keep[0].op, LogOp::kDelete);

  std::vector<LogRecord> drop =
      LsmTree::MergeStreams(std::move(streams), true);
  ASSERT_EQ(drop.size(), 1u);
  EXPECT_EQ(drop[0].key, 2u);
}

TEST(LsmTreeTest, LeveledKeepsOneRunPerLevel) {
  Options options = SmallOptions();
  options.lsm.policy = LsmPolicy::kLeveled;
  LsmTree tree(options);
  for (Key k = 0; k < 5000; ++k) {
    ASSERT_TRUE(tree.Insert(k, k).ok());
  }
  for (size_t level = 0; level < tree.level_count(); ++level) {
    EXPECT_LE(tree.runs_at(level), 1u) << "level " << level;
  }
}

TEST(LsmTreeTest, TieredAccumulatesRunsPerLevel) {
  Options options = SmallOptions();
  options.lsm.policy = LsmPolicy::kTiered;
  LsmTree tree(options);
  for (Key k = 0; k < 5000; ++k) {
    ASSERT_TRUE(tree.Insert(k, k).ok());
  }
  for (size_t level = 0; level < tree.level_count(); ++level) {
    EXPECT_LT(tree.runs_at(level), options.lsm.size_ratio)
        << "level " << level;
  }
  EXPECT_GT(tree.total_runs(), 1u);
}

TEST(LsmTreeTest, TieredWritesLessThanLeveled) {
  Options options = SmallOptions();
  options.lsm.policy = LsmPolicy::kLeveled;
  LsmTree leveled(options);
  options.lsm.policy = LsmPolicy::kTiered;
  LsmTree tiered(options);
  Rng rng(21);
  for (int i = 0; i < 20000; ++i) {
    Key k = rng.NextBelow(1u << 14);
    ASSERT_TRUE(leveled.Insert(k, i).ok());
    ASSERT_TRUE(tiered.Insert(k, i).ok());
  }
  EXPECT_LT(tiered.stats().total_bytes_written(),
            leveled.stats().total_bytes_written());
}

TEST(LsmTreeTest, LeveledReadsLessThanTieredWithoutFilters) {
  Options options = SmallOptions();
  options.lsm.bloom_bits_per_key = 0;  // Isolate run-count effect.
  options.lsm.policy = LsmPolicy::kLeveled;
  LsmTree leveled(options);
  options.lsm.policy = LsmPolicy::kTiered;
  LsmTree tiered(options);
  Rng rng(22);
  for (int i = 0; i < 20000; ++i) {
    Key k = rng.NextBelow(1u << 14);
    ASSERT_TRUE(leveled.Insert(k, i).ok());
    ASSERT_TRUE(tiered.Insert(k, i).ok());
  }
  leveled.ResetStats();
  tiered.ResetStats();
  for (int i = 0; i < 2000; ++i) {
    Key k = rng.NextBelow(1u << 14);
    (void)leveled.Get(k);
    (void)tiered.Get(k);
  }
  EXPECT_LT(leveled.stats().total_bytes_read(),
            tiered.stats().total_bytes_read());
}

TEST(LsmTreeTest, BloomFiltersCutReadBytes) {
  Options with = SmallOptions();
  with.lsm.bloom_bits_per_key = 10;
  Options without = SmallOptions();
  without.lsm.bloom_bits_per_key = 0;
  LsmTree filtered(with);
  LsmTree naked(without);
  for (Key k = 0; k < 10000; k += 2) {
    ASSERT_TRUE(filtered.Insert(k, k).ok());
    ASSERT_TRUE(naked.Insert(k, k).ok());
  }
  filtered.ResetStats();
  naked.ResetStats();
  for (Key k = 1; k < 10000; k += 2) {  // All misses.
    (void)filtered.Get(k);
    (void)naked.Get(k);
  }
  EXPECT_LT(filtered.stats().blocks_read, naked.stats().blocks_read / 2);
}

TEST(LsmTreeTest, TombstonesCollectedAtBottomLevel) {
  Options options = SmallOptions();
  LsmTree tree(options);
  for (Key k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree.Insert(k, k).ok());
  }
  for (Key k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree.Delete(k).ok());
  }
  // Keep inserting a disjoint range so compaction keeps running and the
  // tombstones reach the bottom.
  for (Key k = 10000; k < 14000; ++k) {
    ASSERT_TRUE(tree.Insert(k, k).ok());
  }
  ASSERT_TRUE(tree.Flush().ok());
  EXPECT_EQ(tree.size(), 4000u);
  // Every original key really reads as absent.
  for (Key k = 0; k < 2000; k += 97) {
    EXPECT_TRUE(tree.Get(k).status().IsNotFound()) << k;
  }
}

TEST(LsmTreeTest, StatsSplitLiveFromStale) {
  Options options = SmallOptions();
  LsmTree tree(options);
  // Overwrite the same small key set many times: most bytes are stale.
  for (int round = 0; round < 20; ++round) {
    for (Key k = 0; k < 500; ++k) {
      ASSERT_TRUE(tree.Insert(k, round).ok());
    }
  }
  CounterSnapshot snap = tree.stats();
  EXPECT_EQ(snap.space_base, 500u * kEntrySize);
  EXPECT_GT(snap.space_aux, 0u);
  EXPECT_GT(snap.space_amplification(), 1.2);
}

TEST(LsmTreeTest, BulkLoadLandsInOneDeepRun) {
  Options options = SmallOptions();
  LsmTree tree(options);
  std::vector<Entry> entries = MakeSortedEntries(5000);
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  EXPECT_EQ(tree.total_runs(), 1u);
  EXPECT_EQ(tree.size(), 5000u);
  EXPECT_EQ(tree.Get(123).value(), ValueFor(123));
}

}  // namespace
}  // namespace rum

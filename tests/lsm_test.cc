// Structural tests for the LSM-tree: run layout, compaction policies,
// Bloom-filter effect, tombstone GC, space accounting.
#include <gtest/gtest.h>

#include "methods/lsm/lsm_tree.h"
#include "methods/lsm/sorted_run.h"
#include "storage/block_device.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using testing_util::SmallOptions;

std::vector<LogRecord> MakeRecords(size_t n, Key first = 0, Key stride = 1) {
  std::vector<LogRecord> records;
  records.reserve(n);
  Key k = first;
  for (size_t i = 0; i < n; ++i) {
    records.push_back(LogRecord{k, ValueFor(k), LogOp::kPut});
    k += stride;
  }
  return records;
}

TEST(SortedRunTest, BuildAndGet) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  std::unique_ptr<SortedRun> run;
  ASSERT_TRUE(
      SortedRun::Build(&device, &counters, MakeRecords(1000, 0, 2), 10, &run)
          .ok());
  EXPECT_EQ(run->record_count(), 1000u);
  EXPECT_EQ(run->min_key(), 0u);
  EXPECT_EQ(run->max_key(), 1998u);
  Result<std::optional<LogRecord>> hit = run->Get(500);
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(hit.value().has_value());
  EXPECT_EQ(hit.value()->value, ValueFor(500));
  // A key in range but absent (odd).
  hit = run->Get(501);
  ASSERT_TRUE(hit.ok());
  EXPECT_FALSE(hit.value().has_value());
}

TEST(SortedRunTest, GetReadsOnePageViaFences) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  std::unique_ptr<SortedRun> run;
  ASSERT_TRUE(SortedRun::Build(&device, &counters, MakeRecords(5000), 0,
                               &run)
                  .ok());
  CounterSnapshot before = counters.snapshot();
  ASSERT_TRUE(run->Get(2500).ok());
  CounterSnapshot delta = counters.snapshot() - before;
  EXPECT_EQ(delta.blocks_read, 1u);  // Fences narrowed to one page.
}

TEST(SortedRunTest, BloomSkipsAbsentKeysWithoutIo) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  std::unique_ptr<SortedRun> run;
  ASSERT_TRUE(SortedRun::Build(&device, &counters, MakeRecords(2000, 0, 2),
                               12, &run)
                  .ok());
  CounterSnapshot before = counters.snapshot();
  size_t io_probes = 0;
  for (Key k = 1; k < 2000; k += 2) {  // All absent.
    ASSERT_TRUE(run->Get(k).ok());
  }
  CounterSnapshot delta = counters.snapshot() - before;
  io_probes = delta.blocks_read;
  // Nearly all misses are filtered before any page read.
  EXPECT_LT(io_probes, 50u);
}

TEST(SortedRunTest, SparseFencesTradeSpaceForPageReads) {
  RumCounters dense_counters, sparse_counters;
  BlockDevice dense_device(512, &dense_counters);
  BlockDevice sparse_device(512, &sparse_counters);
  std::unique_ptr<SortedRun> dense, sparse;
  // 31 records/page at 512 B; 8 pages per fence for the sparse run.
  ASSERT_TRUE(SortedRun::Build(&dense_device, &dense_counters,
                               MakeRecords(5000), 0, &dense,
                               /*fence_entries=*/0)
                  .ok());
  ASSERT_TRUE(SortedRun::Build(&sparse_device, &sparse_counters,
                               MakeRecords(5000), 0, &sparse,
                               /*fence_entries=*/31 * 8)
                  .ok());
  // Sparse fences are smaller auxiliary state...
  EXPECT_LT(sparse_counters.snapshot().space_aux,
            dense_counters.snapshot().space_aux);
  // ...but every lookup may scan up to the fence-group width.
  CounterSnapshot before_d = dense_counters.snapshot();
  CounterSnapshot before_s = sparse_counters.snapshot();
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    Key k = rng.NextBelow(5000);
    Result<std::optional<LogRecord>> d = dense->Get(k);
    Result<std::optional<LogRecord>> s = sparse->Get(k);
    ASSERT_TRUE(d.ok());
    ASSERT_TRUE(s.ok());
    // Same answers regardless of fence granularity.
    ASSERT_EQ(d.value().has_value(), s.value().has_value()) << k;
  }
  uint64_t dense_blocks =
      (dense_counters.snapshot() - before_d).blocks_read;
  uint64_t sparse_blocks =
      (sparse_counters.snapshot() - before_s).blocks_read;
  EXPECT_GT(sparse_blocks, dense_blocks);
}

TEST(SortedRunTest, CompressedRunsRoundTripExactly) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  // Irregular deltas, tombstones, and big jumps all survive the codec.
  std::vector<LogRecord> records;
  Rng rng(61);
  Key k = 0;
  for (int i = 0; i < 3000; ++i) {
    k += 1 + rng.NextBelow(1u << (1 + rng.NextBelow(20)));
    records.push_back(LogRecord{k, rng.Next(),
                                rng.NextBelow(5) == 0 ? LogOp::kDelete
                                                      : LogOp::kPut});
  }
  std::unique_ptr<SortedRun> run;
  ASSERT_TRUE(SortedRun::Build(&device, &counters, records, 0, &run, 0,
                               /*compress=*/true)
                  .ok());
  EXPECT_TRUE(run->compressed());
  // Every record readable via Get...
  for (size_t i = 0; i < records.size(); i += 97) {
    Result<std::optional<LogRecord>> hit = run->Get(records[i].key);
    ASSERT_TRUE(hit.ok());
    ASSERT_TRUE(hit.value().has_value()) << i;
    EXPECT_EQ(hit.value()->value, records[i].value);
    EXPECT_EQ(hit.value()->op, records[i].op);
  }
  // ...and the full stream replays in order.
  std::vector<LogRecord> replay;
  ASSERT_TRUE(
      run->VisitAll([&](const LogRecord& r) { replay.push_back(r); }).ok());
  ASSERT_EQ(replay.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    ASSERT_EQ(replay[i].key, records[i].key) << i;
    ASSERT_EQ(replay[i].value, records[i].value) << i;
  }
}

TEST(SortedRunTest, CompressionShrinksDenseRuns) {
  RumCounters raw_counters, comp_counters;
  BlockDevice raw_device(512, &raw_counters);
  BlockDevice comp_device(512, &comp_counters);
  std::vector<LogRecord> records = MakeRecords(10000);  // Dense keys.
  std::unique_ptr<SortedRun> raw, comp;
  ASSERT_TRUE(
      SortedRun::Build(&raw_device, &raw_counters, records, 0, &raw).ok());
  ASSERT_TRUE(SortedRun::Build(&comp_device, &comp_counters, records, 0,
                               &comp, 0, /*compress=*/true)
                  .ok());
  // Dense keys: ~10 bytes/record vs 17 -- expect a solid page reduction.
  EXPECT_LT(comp->page_count(), raw->page_count() * 3 / 4);
  // Range reads touch proportionally fewer blocks.
  CounterSnapshot rb = raw_counters.snapshot();
  CounterSnapshot cb = comp_counters.snapshot();
  ASSERT_TRUE(raw->VisitRange(2000, 4000, [](const LogRecord&) {}).ok());
  ASSERT_TRUE(comp->VisitRange(2000, 4000, [](const LogRecord&) {}).ok());
  uint64_t raw_blocks = (raw_counters.snapshot() - rb).blocks_read;
  uint64_t comp_blocks = (comp_counters.snapshot() - cb).blocks_read;
  EXPECT_LT(comp_blocks, raw_blocks);
}

TEST(LsmTreeTest, CompressedTreeShrinksResidency) {
  Options raw_opts = SmallOptions();
  Options comp_opts = SmallOptions();
  comp_opts.lsm.compress_runs = true;
  LsmTree raw(raw_opts);
  LsmTree comp(comp_opts);
  EXPECT_EQ(comp.name(), "lsm-compressed");
  for (Key k = 0; k < 20000; ++k) {
    ASSERT_TRUE(raw.Insert(k, k).ok());
    ASSERT_TRUE(comp.Insert(k, k).ok());
  }
  ASSERT_TRUE(raw.Flush().ok());
  ASSERT_TRUE(comp.Flush().ok());
  EXPECT_LT(comp.stats().total_space(), raw.stats().total_space() * 3 / 4);
  // Same answers.
  for (Key k = 0; k < 20000; k += 977) {
    ASSERT_EQ(comp.Get(k).value(), raw.Get(k).value());
  }
}

TEST(SortedRunTest, VisitRangeHonorsBounds) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  std::unique_ptr<SortedRun> run;
  ASSERT_TRUE(
      SortedRun::Build(&device, &counters, MakeRecords(1000), 0, &run).ok());
  std::vector<Key> keys;
  ASSERT_TRUE(
      run->VisitRange(100, 110, [&](const LogRecord& r) {
           keys.push_back(r.key);
         }).ok());
  ASSERT_EQ(keys.size(), 11u);
  EXPECT_EQ(keys.front(), 100u);
  EXPECT_EQ(keys.back(), 110u);
}

TEST(SortedRunTest, DestroyReleasesAllSpace) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  {
    std::unique_ptr<SortedRun> run;
    ASSERT_TRUE(SortedRun::Build(&device, &counters, MakeRecords(1000), 10,
                                 &run)
                    .ok());
    EXPECT_GT(counters.snapshot().total_space(), 0u);
    ASSERT_TRUE(run->Destroy().ok());
  }
  EXPECT_EQ(counters.snapshot().total_space(), 0u);
  EXPECT_EQ(device.live_pages(), 0u);
}

TEST(SortedRunTest, EmptyBuildRejected) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  std::unique_ptr<SortedRun> run;
  EXPECT_EQ(
      SortedRun::Build(&device, &counters, {}, 10, &run).code(),
      Code::kInvalidArgument);
}

TEST(MergeStreamsTest, NewestStreamShadowsOlder) {
  std::vector<std::vector<LogRecord>> streams(2);
  streams[0] = {{1, 100, LogOp::kPut}, {3, 300, LogOp::kPut}};
  streams[1] = {{1, 1, LogOp::kPut}, {2, 2, LogOp::kPut}};
  std::vector<LogRecord> merged =
      LsmTree::MergeStreams(std::move(streams), false);
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].key, 1u);
  EXPECT_EQ(merged[0].value, 100u);  // Newest wins.
  EXPECT_EQ(merged[1].key, 2u);
  EXPECT_EQ(merged[2].key, 3u);
}

TEST(MergeStreamsTest, TombstonesDroppedOnlyWhenAsked) {
  std::vector<std::vector<LogRecord>> streams(2);
  streams[0] = {{1, 0, LogOp::kDelete}};
  streams[1] = {{1, 11, LogOp::kPut}, {2, 22, LogOp::kPut}};
  std::vector<std::vector<LogRecord>> copy = streams;

  std::vector<LogRecord> keep = LsmTree::MergeStreams(std::move(copy), false);
  ASSERT_EQ(keep.size(), 2u);
  EXPECT_EQ(keep[0].op, LogOp::kDelete);

  std::vector<LogRecord> drop =
      LsmTree::MergeStreams(std::move(streams), true);
  ASSERT_EQ(drop.size(), 1u);
  EXPECT_EQ(drop[0].key, 2u);
}

TEST(LsmTreeTest, LeveledKeepsOneRunPerLevel) {
  Options options = SmallOptions();
  options.lsm.policy = LsmPolicy::kLeveled;
  LsmTree tree(options);
  for (Key k = 0; k < 5000; ++k) {
    ASSERT_TRUE(tree.Insert(k, k).ok());
  }
  for (size_t level = 0; level < tree.level_count(); ++level) {
    EXPECT_LE(tree.runs_at(level), 1u) << "level " << level;
  }
}

TEST(LsmTreeTest, TieredAccumulatesRunsPerLevel) {
  Options options = SmallOptions();
  options.lsm.policy = LsmPolicy::kTiered;
  LsmTree tree(options);
  for (Key k = 0; k < 5000; ++k) {
    ASSERT_TRUE(tree.Insert(k, k).ok());
  }
  for (size_t level = 0; level < tree.level_count(); ++level) {
    EXPECT_LT(tree.runs_at(level), options.lsm.size_ratio)
        << "level " << level;
  }
  EXPECT_GT(tree.total_runs(), 1u);
}

TEST(LsmTreeTest, TieredWritesLessThanLeveled) {
  Options options = SmallOptions();
  options.lsm.policy = LsmPolicy::kLeveled;
  LsmTree leveled(options);
  options.lsm.policy = LsmPolicy::kTiered;
  LsmTree tiered(options);
  Rng rng(21);
  for (int i = 0; i < 20000; ++i) {
    Key k = rng.NextBelow(1u << 14);
    ASSERT_TRUE(leveled.Insert(k, i).ok());
    ASSERT_TRUE(tiered.Insert(k, i).ok());
  }
  EXPECT_LT(tiered.stats().total_bytes_written(),
            leveled.stats().total_bytes_written());
}

TEST(LsmTreeTest, LeveledReadsLessThanTieredWithoutFilters) {
  Options options = SmallOptions();
  options.lsm.bloom_bits_per_key = 0;  // Isolate run-count effect.
  options.lsm.policy = LsmPolicy::kLeveled;
  LsmTree leveled(options);
  options.lsm.policy = LsmPolicy::kTiered;
  LsmTree tiered(options);
  Rng rng(22);
  for (int i = 0; i < 20000; ++i) {
    Key k = rng.NextBelow(1u << 14);
    ASSERT_TRUE(leveled.Insert(k, i).ok());
    ASSERT_TRUE(tiered.Insert(k, i).ok());
  }
  leveled.ResetStats();
  tiered.ResetStats();
  for (int i = 0; i < 2000; ++i) {
    Key k = rng.NextBelow(1u << 14);
    (void)leveled.Get(k);
    (void)tiered.Get(k);
  }
  EXPECT_LT(leveled.stats().total_bytes_read(),
            tiered.stats().total_bytes_read());
}

TEST(LsmTreeTest, BloomFiltersCutReadBytes) {
  Options with = SmallOptions();
  with.lsm.bloom_bits_per_key = 10;
  Options without = SmallOptions();
  without.lsm.bloom_bits_per_key = 0;
  LsmTree filtered(with);
  LsmTree naked(without);
  for (Key k = 0; k < 10000; k += 2) {
    ASSERT_TRUE(filtered.Insert(k, k).ok());
    ASSERT_TRUE(naked.Insert(k, k).ok());
  }
  filtered.ResetStats();
  naked.ResetStats();
  for (Key k = 1; k < 10000; k += 2) {  // All misses.
    (void)filtered.Get(k);
    (void)naked.Get(k);
  }
  EXPECT_LT(filtered.stats().blocks_read, naked.stats().blocks_read / 2);
}

TEST(LsmTreeTest, TombstonesCollectedAtBottomLevel) {
  Options options = SmallOptions();
  LsmTree tree(options);
  for (Key k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree.Insert(k, k).ok());
  }
  for (Key k = 0; k < 2000; ++k) {
    ASSERT_TRUE(tree.Delete(k).ok());
  }
  // Keep inserting a disjoint range so compaction keeps running and the
  // tombstones reach the bottom.
  for (Key k = 10000; k < 14000; ++k) {
    ASSERT_TRUE(tree.Insert(k, k).ok());
  }
  ASSERT_TRUE(tree.Flush().ok());
  EXPECT_EQ(tree.size(), 4000u);
  // Every original key really reads as absent.
  for (Key k = 0; k < 2000; k += 97) {
    EXPECT_TRUE(tree.Get(k).status().IsNotFound()) << k;
  }
}

TEST(LsmTreeTest, StatsSplitLiveFromStale) {
  Options options = SmallOptions();
  LsmTree tree(options);
  // Overwrite the same small key set many times: most bytes are stale.
  for (int round = 0; round < 20; ++round) {
    for (Key k = 0; k < 500; ++k) {
      ASSERT_TRUE(tree.Insert(k, round).ok());
    }
  }
  CounterSnapshot snap = tree.stats();
  EXPECT_EQ(snap.space_base, 500u * kEntrySize);
  EXPECT_GT(snap.space_aux, 0u);
  EXPECT_GT(snap.space_amplification(), 1.2);
}

TEST(LsmTreeTest, BulkLoadLandsInOneDeepRun) {
  Options options = SmallOptions();
  LsmTree tree(options);
  std::vector<Entry> entries = MakeSortedEntries(5000);
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  EXPECT_EQ(tree.total_runs(), 1u);
  EXPECT_EQ(tree.size(), 5000u);
  EXPECT_EQ(tree.Get(123).value(), ValueFor(123));
}

// ------------------------------------------------------ SortedRun::Cursor

TEST(SortedRunCursorTest, WalksEveryRecordInOrder) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  std::unique_ptr<SortedRun> run;
  ASSERT_TRUE(
      SortedRun::Build(&device, &counters, MakeRecords(1000, 0, 2), 0, &run)
          .ok());
  SortedRun::Cursor cursor(run.get());
  ASSERT_TRUE(cursor.SeekTo(0, 0).ok());
  Key expected = 0;
  size_t seen = 0;
  while (cursor.Valid()) {
    EXPECT_EQ(cursor.record().key, expected);
    expected += 2;
    ++seen;
    ASSERT_TRUE(cursor.Next().ok());
  }
  EXPECT_EQ(seen, 1000u);
}

TEST(SortedRunCursorTest, SeekFirstAtLeastLandsOnLowerBound) {
  RumCounters counters;
  BlockDevice device(512, &counters);
  std::unique_ptr<SortedRun> run;
  ASSERT_TRUE(
      SortedRun::Build(&device, &counters, MakeRecords(1000, 0, 2), 0, &run)
          .ok());
  SortedRun::Cursor cursor(run.get());
  // Absent odd key: the next even key answers.
  ASSERT_TRUE(cursor.SeekFirstAtLeast(1001).ok());
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.record().key, 1002u);
  // Present key: exact hit.
  ASSERT_TRUE(cursor.SeekFirstAtLeast(500).ok());
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.record().key, 500u);
  // Below min: first record.
  ASSERT_TRUE(cursor.SeekFirstAtLeast(0).ok());
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.record().key, 0u);
  // Beyond max: invalid, not an error.
  ASSERT_TRUE(cursor.SeekFirstAtLeast(5000).ok());
  EXPECT_FALSE(cursor.Valid());
}

TEST(SortedRunCursorTest, AdvanceToAtLeastMovesForwardAcrossPages) {
  RumCounters counters;
  BlockDevice device(512, &counters);  // 29 records per page.
  std::unique_ptr<SortedRun> run;
  ASSERT_TRUE(
      SortedRun::Build(&device, &counters, MakeRecords(1000, 0, 2), 0, &run)
          .ok());
  SortedRun::Cursor cursor(run.get());
  ASSERT_TRUE(cursor.SeekTo(0, 0).ok());
  // Same page first, then a multi-page jump.
  ASSERT_TRUE(cursor.AdvanceToAtLeast(20).ok());
  EXPECT_EQ(cursor.record().key, 20u);
  ASSERT_TRUE(cursor.AdvanceToAtLeast(1500).ok());
  EXPECT_EQ(cursor.record().key, 1500u);
  // Advancing to a key already behind the cursor is a no-op.
  ASSERT_TRUE(cursor.AdvanceToAtLeast(10).ok());
  EXPECT_EQ(cursor.record().key, 1500u);
  ASSERT_TRUE(cursor.AdvanceToAtLeast(99999).ok());
  EXPECT_FALSE(cursor.Valid());
}

TEST(SortedRunCursorTest, SeekToClampsPastShortPositions) {
  RumCounters counters;
  BlockDevice device(512, &counters);  // 29 records per page.
  std::unique_ptr<SortedRun> run;
  ASSERT_TRUE(
      SortedRun::Build(&device, &counters, MakeRecords(100), 0, &run).ok());
  SortedRun::Cursor cursor(run.get());
  // Slot past the last page's record count clamps forward to the end.
  size_t last_page = run->page_count() - 1;
  ASSERT_TRUE(cursor.SeekTo(last_page, 1000).ok());
  EXPECT_FALSE(cursor.Valid());
  // Slot past a middle page's count clamps to the next page's first record.
  ASSERT_TRUE(cursor.SeekTo(0, 1000).ok());
  ASSERT_TRUE(cursor.Valid());
  EXPECT_EQ(cursor.record().key, 29u);
  // Page past the end is simply invalid.
  ASSERT_TRUE(cursor.SeekTo(run->page_count(), 0).ok());
  EXPECT_FALSE(cursor.Valid());
}

// --------------------------------------------------- Run bounds skipping

TEST(LsmTreeTest, DisjointRunsCostNoBlocksOnGetAndScan) {
  Options options = SmallOptions();
  LsmTree tree(options);
  // Two runs with a key gap between them, placed directly.
  ASSERT_TRUE(tree.BuildRun(1, MakeRecords(200, 0, 1)).ok());
  ASSERT_TRUE(tree.BuildRun(2, MakeRecords(200, 5000, 1)).ok());
  CounterSnapshot before = tree.stats();
  // A Get in the gap: both runs are skipped on [min, max] alone -- no
  // Bloom probe, no fence search, no page read.
  EXPECT_TRUE(tree.Get(3000).status().IsNotFound());
  CounterSnapshot delta = tree.stats() - before;
  // (The memtable probe still charges a few pointer bytes; the claim is
  // that no run page -- no block -- is touched.)
  EXPECT_EQ(delta.blocks_read, 0u);
  // A Scan over the gap likewise touches no run.
  before = tree.stats();
  std::vector<Entry> out;
  ASSERT_TRUE(tree.Scan(3000, 4000, &out).ok());
  EXPECT_TRUE(out.empty());
  delta = tree.stats() - before;
  EXPECT_EQ(delta.blocks_read, 0u);
  // A Scan over one run reads only that run's pages.
  before = tree.stats();
  out.clear();
  ASSERT_TRUE(tree.Scan(5050, 5060, &out).ok());
  EXPECT_EQ(out.size(), 11u);
  delta = tree.stats() - before;
  EXPECT_LE(delta.blocks_read, tree.levels()[2].back()->page_count());
  EXPECT_GT(delta.blocks_read, 0u);
}

// ------------------------------------------------------- Cross-run index

// Distinct, uniformly spread keys (Fibonacci hashing): every flushed run
// spans the whole key domain, so range scans pay every run -- the workload
// the cross-run index exists for.
Key ScrambledKey(uint64_t i) { return i * 0x9E3779B97F4A7C15ULL; }

Options ScanHeavyOptions(bool cross_run_index) {
  Options options = SmallOptions();  // block 512: 29 records per page.
  options.lsm.policy = LsmPolicy::kTiered;
  options.lsm.memtable_entries = 256;
  options.lsm.size_ratio = 8;
  options.lsm.cross_run_index = cross_run_index;
  options.lsm.cross_run_segment_entries = 64;
  return options;
}

// 15 flushes under tiered/ratio-8: seven level-0 runs plus the level-1 run
// from the 8th flush's merge -- exactly 8 resident runs, deterministic.
constexpr uint64_t kScanHeavyEntries = 15 * 256;

double MeasureScanRo(LsmTree* tree, uint64_t entries) {
  // Window sized for ~16 records at the keys' uniform 64-bit spacing.
  const Key span = (kMaxKey / entries) * 16;
  uint64_t probe = 0x9E3779B9ULL;
  auto next_lo = [&probe] {
    probe ^= probe << 13;
    probe ^= probe >> 7;
    probe ^= probe << 17;
    return probe;
  };
  // Warm-up pass with the same start keys: builds every segment the
  // measured pass will touch, so the measurement is steady-state.
  std::vector<Entry> out;
  uint64_t warm_probe = probe;
  for (int i = 0; i < 300; ++i) {
    Key lo = next_lo();
    out.clear();
    EXPECT_TRUE(tree->Scan(lo, lo + std::min(span, kMaxKey - lo), &out).ok());
  }
  probe = warm_probe;
  tree->ResetStats();
  for (int i = 0; i < 300; ++i) {
    Key lo = next_lo();
    out.clear();
    EXPECT_TRUE(tree->Scan(lo, lo + std::min(span, kMaxKey - lo), &out).ok());
  }
  return tree->stats().read_amplification();
}

TEST(CrossRunIndexTest, RangeRoDropsAtLeast3xAtEightRuns) {
  LsmTree indexed(ScanHeavyOptions(true));
  LsmTree fallback(ScanHeavyOptions(false));
  for (uint64_t i = 0; i < kScanHeavyEntries; ++i) {
    Key k = ScrambledKey(i);
    ASSERT_TRUE(indexed.Insert(k, i).ok());
    ASSERT_TRUE(fallback.Insert(k, i).ok());
  }
  ASSERT_GE(indexed.total_runs(), 8u);
  ASSERT_EQ(indexed.total_runs(), fallback.total_runs());

  double ro_indexed = MeasureScanRo(&indexed, kScanHeavyEntries);
  double ro_fallback = MeasureScanRo(&fallback, kScanHeavyEntries);
  ASSERT_GT(ro_indexed, 0.0);
  // The acceptance bar: at >= 8 overlapping runs the cross-run view cuts
  // range RO by at least 3x vs the per-run fence-search walk.
  EXPECT_GE(ro_fallback / ro_indexed, 3.0)
      << "indexed RO=" << ro_indexed << " fallback RO=" << ro_fallback;
}

TEST(CrossRunIndexTest, IndexSpaceIsChargedAsAuxiliaryMo) {
  LsmTree tree(ScanHeavyOptions(true));
  for (uint64_t i = 0; i < kScanHeavyEntries; ++i) {
    ASSERT_TRUE(tree.Insert(ScrambledKey(i), i).ok());
  }
  ASSERT_NE(tree.cross_run_index(), nullptr);
  // Lazy build: a scan-free workload pays zero index space.
  EXPECT_EQ(tree.cross_run_index()->charged_bytes(), 0u);
  uint64_t aux_before = tree.stats().space_aux;
  std::vector<Entry> out;
  Key mid = ScrambledKey(7);
  ASSERT_TRUE(tree.Scan(mid, mid + (kMaxKey / kScanHeavyEntries) * 64, &out)
                  .ok());
  uint64_t charged = tree.cross_run_index()->charged_bytes();
  EXPECT_GT(charged, 0u);
  // The segment table shows up in stats() as bought auxiliary space.
  EXPECT_GE(tree.stats().space_aux, aux_before + charged);
  EXPECT_GT(tree.cross_run_index()->segment_count(), 1u);
}

TEST(CrossRunIndexTest, DisabledTreeHasNoIndex) {
  LsmTree tree(ScanHeavyOptions(false));
  EXPECT_EQ(tree.cross_run_index(), nullptr);
}

// --------------------------------------------------- Auxiliary-MO ledger

// The conservation identity: with an owned device, every resident byte the
// tree's stats() report is exactly one LsmMemoryFootprint term -- memtable,
// run pages, fences, filters, index segments -- at every point in the
// tree's life (mid-memtable, post-flush, post-compaction, post-delete).
TEST(LsmTreeTest, MemoryFootprintLedgerConservesStatsSpace) {
  Options options = SmallOptions();
  options.lsm.cross_run_index = true;  // Exercise the index term too.
  LsmTree tree(options);
  auto check = [&](const char* when) {
    LsmMemoryFootprint fp = tree.MemoryFootprint();
    EXPECT_EQ(tree.stats().total_space(), fp.total()) << when;
  };
  check("empty");
  for (Key k = 0; k < 1000; ++k) {
    ASSERT_TRUE(tree.Insert(ScrambledKey(k), ValueFor(k)).ok());
    if (k % 97 == 0) check("mid-insert");
  }
  check("after inserts");
  std::vector<Entry> out;
  ASSERT_TRUE(tree.Scan(0, ~Key{0}, &out).ok());  // Builds index segments.
  check("after scan");
  for (Key k = 0; k < 500; ++k) {
    ASSERT_TRUE(tree.Delete(ScrambledKey(k)).ok());
  }
  check("after deletes");
  ASSERT_TRUE(tree.Flush().ok());
  check("after flush");
  // All five terms are actually in play in this configuration.
  LsmMemoryFootprint fp = tree.MemoryFootprint();
  EXPECT_GT(fp.run_page_bytes, 0u);
  EXPECT_GT(fp.fence_bytes, 0u);
  EXPECT_GT(fp.filter_bytes, 0u);
}

}  // namespace
}  // namespace rum

// Tests for the workload framework: RNG determinism, key distributions,
// spec mixes, the runner's profile accounting.
#include <unordered_map>

#include <gtest/gtest.h>

#include "methods/factory.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"
#include "workload/runner.h"
#include "workload/spec.h"

namespace rum {
namespace {

using testing_util::SmallOptions;

TEST(RngTest, DeterministicPerSeed) {
  Rng a(42), b(42), c(43);
  for (int i = 0; i < 100; ++i) {
    uint64_t av = a.Next();
    EXPECT_EQ(av, b.Next());
    (void)c;
  }
  Rng d(43);
  EXPECT_NE(Rng(42).Next(), d.Next());
}

TEST(RngTest, NextBelowInRangeAndRoughlyUniform) {
  Rng rng(7);
  std::vector<int> buckets(10, 0);
  for (int i = 0; i < 10000; ++i) {
    uint64_t v = rng.NextBelow(10);
    ASSERT_LT(v, 10u);
    ++buckets[v];
  }
  for (int count : buckets) {
    EXPECT_GT(count, 700);
    EXPECT_LT(count, 1300);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(KeyGeneratorTest, UniformCoversRange) {
  KeyGenerator gen(KeyDistribution::kUniform, 1000, 5);
  std::vector<bool> seen(1000, false);
  for (int i = 0; i < 20000; ++i) {
    Key k = gen.Next();
    ASSERT_LT(k, 1000u);
    seen[k] = true;
  }
  size_t covered = 0;
  for (bool s : seen) covered += s ? 1 : 0;
  EXPECT_GT(covered, 950u);
}

TEST(KeyGeneratorTest, ZipfianIsSkewed) {
  KeyGenerator gen(KeyDistribution::kZipfian, 100000, 5, 0.99);
  std::unordered_map<Key, int> counts;
  const int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) {
    ++counts[gen.Next()];
  }
  // The hottest key should take a noticeable share; uniform would give
  // ~0.5 hits per key.
  int hottest = 0;
  for (const auto& [k, c] : counts) hottest = std::max(hottest, c);
  EXPECT_GT(hottest, kDraws / 100);
  // And far fewer distinct keys than draws.
  EXPECT_LT(counts.size(), static_cast<size_t>(kDraws) / 2);
}

TEST(KeyGeneratorTest, SequentialWraps) {
  KeyGenerator gen(KeyDistribution::kSequential, 5, 1);
  for (Key expect : {0, 1, 2, 3, 4, 0, 1}) {
    EXPECT_EQ(gen.Next(), expect);
  }
}

TEST(KeyGeneratorTest, ClusteredStaysInRange) {
  KeyGenerator gen(KeyDistribution::kClustered, 10000, 3);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_LT(gen.Next(), 10000u);
  }
}

TEST(MakeSortedEntriesTest, StrideAndValues) {
  std::vector<Entry> entries = MakeSortedEntries(5, 10, 3);
  ASSERT_EQ(entries.size(), 5u);
  EXPECT_EQ(entries[0].key, 10u);
  EXPECT_EQ(entries[4].key, 22u);
  for (const Entry& e : entries) {
    EXPECT_EQ(e.value, ValueFor(e.key));
  }
}

TEST(WorkloadSpecTest, CannedMixesSumSanely) {
  for (const WorkloadSpec& spec :
       {WorkloadSpec::ReadOnly(10, 10), WorkloadSpec::WriteOnly(10, 10),
        WorkloadSpec::ReadMostly(10, 10), WorkloadSpec::Mixed(10, 10),
        WorkloadSpec::ScanHeavy(10, 10)}) {
    double total = spec.insert_fraction + spec.update_fraction +
                   spec.delete_fraction + spec.scan_fraction;
    EXPECT_GE(total, 0.0);
    EXPECT_LE(total, 1.0);
    EXPECT_FALSE(spec.ToString().empty());
  }
}

TEST(WorkloadRunnerTest, ProfilesCountOperations) {
  Options options = SmallOptions();
  auto method = MakeAccessMethod("btree", options);
  WorkloadSpec spec = WorkloadSpec::Mixed(2000, 1u << 12);
  Result<RumProfile> profile =
      WorkloadRunner::LoadAndRun(method.get(), 4000, spec);
  ASSERT_TRUE(profile.ok());
  const CounterSnapshot& delta = profile.value().delta;
  uint64_t total_ops = delta.point_queries + delta.range_queries +
                       delta.inserts + delta.updates + delta.deletes;
  EXPECT_EQ(total_ops, 2000u);
  // The mix has all operation kinds.
  EXPECT_GT(delta.point_queries, 0u);
  EXPECT_GT(delta.inserts, 0u);
  EXPECT_GT(delta.updates, 0u);
  EXPECT_GT(delta.deletes, 0u);
  EXPECT_GT(delta.range_queries, 0u);
  EXPECT_GT(profile.value().bytes_read_per_op(), 0.0);
}

TEST(WorkloadRunnerTest, ReadOnlyPhaseWritesNothing) {
  Options options = SmallOptions();
  auto method = MakeAccessMethod("sorted-column", options);
  WorkloadSpec spec = WorkloadSpec::ReadOnly(500, 1u << 10);
  Result<RumProfile> profile =
      WorkloadRunner::LoadAndRun(method.get(), 1024, spec);
  ASSERT_TRUE(profile.ok());
  EXPECT_EQ(profile.value().delta.total_bytes_written(), 0u);
  EXPECT_GT(profile.value().delta.total_bytes_read(), 0u);
}

TEST(CostPercentilesTest, OrderStatisticsFromSamples) {
  std::vector<uint64_t> samples;
  for (uint64_t i = 1; i <= 100; ++i) samples.push_back(i);
  CostPercentiles p = CostPercentiles::From(samples);
  EXPECT_EQ(p.p50, 51u);
  EXPECT_EQ(p.p95, 96u);
  EXPECT_EQ(p.p99, 100u);
  EXPECT_EQ(p.max, 100u);
  EXPECT_EQ(CostPercentiles::From({}).max, 0u);
}

TEST(WorkloadRunnerTest, TailCostsExposeCompactionSpikes) {
  // An LSM's median insert touches only the memtable; its p99/max insert
  // carries a flush or compaction. The percentiles must show that gap.
  Options options = SmallOptions();
  auto method = MakeAccessMethod("lsm-leveled", options);
  WorkloadSpec spec = WorkloadSpec::WriteOnly(5000, 1u << 13);
  Result<RumProfile> profile = WorkloadRunner::Run(method.get(), spec);
  ASSERT_TRUE(profile.ok());
  const CostPercentiles& w = profile.value().write_cost;
  EXPECT_LT(w.p50, 200u);          // Memtable-only writes.
  EXPECT_GT(w.max, 50u * w.p50 + 1);  // Compaction spike dwarfs the median.
}

TEST(WorkloadRunnerTest, DeterministicAcrossRuns) {
  Options options = SmallOptions();
  auto a = MakeAccessMethod("lsm-leveled", options);
  auto b = MakeAccessMethod("lsm-leveled", options);
  WorkloadSpec spec = WorkloadSpec::Mixed(3000, 1u << 12);
  Result<RumProfile> pa = WorkloadRunner::LoadAndRun(a.get(), 2000, spec);
  Result<RumProfile> pb = WorkloadRunner::LoadAndRun(b.get(), 2000, spec);
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  EXPECT_EQ(pa.value().delta.total_bytes_read(),
            pb.value().delta.total_bytes_read());
  EXPECT_EQ(pa.value().delta.total_bytes_written(),
            pb.value().delta.total_bytes_written());
}

}  // namespace
}  // namespace rum

// Tests for the UpdateAbsorber wrapper (Section 5's quotient-filter-guarded
// update buffering).
#include <gtest/gtest.h>

#include "methods/approx/update_absorber.h"
#include "methods/bitmap/bitmap_index.h"
#include "methods/btree/btree.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using testing_util::SmallOptions;

std::unique_ptr<UpdateAbsorber> MakeAbsorbedBTree(Options options) {
  return std::make_unique<UpdateAbsorber>(std::make_unique<BTree>(options),
                                          options);
}

TEST(UpdateAbsorberTest, UpdatesStayBufferedUntilThreshold) {
  Options options = SmallOptions();
  options.absorber.delta_entries = 100;
  auto absorber = MakeAbsorbedBTree(options);
  for (Key k = 0; k < 99; ++k) {
    ASSERT_TRUE(absorber->Insert(k, k).ok());
  }
  EXPECT_EQ(absorber->pending_updates(), 99u);
  ASSERT_TRUE(absorber->Insert(99, 99).ok());  // Hits the threshold.
  EXPECT_EQ(absorber->pending_updates(), 0u);
  // Everything readable after the drain.
  for (Key k = 0; k < 100; k += 7) {
    EXPECT_EQ(absorber->Get(k).value(), k);
  }
}

TEST(UpdateAbsorberTest, BufferedStateVisibleToReads) {
  Options options = SmallOptions();
  options.absorber.delta_entries = 1u << 20;  // Never drain.
  auto absorber = MakeAbsorbedBTree(options);
  std::vector<Entry> entries = MakeSortedEntries(1000);
  ASSERT_TRUE(absorber->BulkLoad(entries).ok());
  ASSERT_TRUE(absorber->Insert(5000, 1).ok());
  ASSERT_TRUE(absorber->Delete(10).ok());
  ASSERT_TRUE(absorber->Update(20, 99).ok());
  EXPECT_EQ(absorber->Get(5000).value(), 1u);
  EXPECT_TRUE(absorber->Get(10).status().IsNotFound());
  EXPECT_EQ(absorber->Get(20).value(), 99u);
  // Scans merge pending state with the base.
  std::vector<Entry> out;
  ASSERT_TRUE(absorber->Scan(0, 30, &out).ok());
  ASSERT_EQ(out.size(), 30u);  // 0..30 without 10.
  for (const Entry& e : out) {
    ASSERT_NE(e.key, 10u);
    if (e.key == 20) {
      EXPECT_EQ(e.value, 99u);
    }
  }
}

TEST(UpdateAbsorberTest, FilterKeepsReadOverheadNearTheBareBase) {
  Options options = SmallOptions();
  options.absorber.delta_entries = 1u << 20;
  auto absorber = MakeAbsorbedBTree(options);
  BTree bare(options);
  std::vector<Entry> entries = MakeSortedEntries(5000);
  ASSERT_TRUE(absorber->BulkLoad(entries).ok());
  ASSERT_TRUE(bare.BulkLoad(entries).ok());
  // A handful of pending updates on the absorber.
  for (Key k = 0; k < 32; ++k) {
    ASSERT_TRUE(absorber->Update(k, k + 1).ok());
  }
  absorber->ResetStats();
  bare.ResetStats();
  // Read keys far from the buffered ones: the filter answers "no" and the
  // only added cost over the bare base is its probes (a few bytes/read).
  const int kReads = 100;
  for (Key k = 1000; k < 2000; k += 10) {
    ASSERT_TRUE(absorber->Get(k).ok());
    ASSERT_TRUE(bare.Get(k).ok());
  }
  uint64_t absorbed_reads = absorber->stats().total_bytes_read();
  uint64_t bare_reads = bare.stats().total_bytes_read();
  EXPECT_GE(absorbed_reads, bare_reads);
  EXPECT_LT(absorbed_reads, bare_reads + kReads * 64);
}

TEST(UpdateAbsorberTest, CutsBaseWriteCostForExpensiveBases) {
  // The flagship use: a direct-mode bitmap index pays ~cardinality bits of
  // compressed-bitmap writes per insert; absorbed, inserts batch.
  Options options = SmallOptions();
  options.bitmap.cardinality = 128;
  options.bitmap.update_friendly = false;
  options.absorber.delta_entries = 2048;

  BitmapIndex direct(options);
  UpdateAbsorber absorbed(std::make_unique<BitmapIndex>(options), options);
  Rng rng(31);
  for (int i = 0; i < 1500; ++i) {
    Key k = rng.NextBelow(1u << 15);
    ASSERT_TRUE(direct.Insert(k, i).ok());
    ASSERT_TRUE(absorbed.Insert(k, i).ok());
  }
  // No drain yet: the absorber wrote only delta records and filter slots.
  EXPECT_LT(absorbed.stats().total_bytes_written(),
            direct.stats().total_bytes_written() / 2);
}

TEST(UpdateAbsorberTest, FlushDrainsAndBaseAnswers) {
  Options options = SmallOptions();
  options.absorber.delta_entries = 1u << 20;
  auto absorber = MakeAbsorbedBTree(options);
  for (Key k = 0; k < 500; ++k) {
    ASSERT_TRUE(absorber->Insert(k, ValueFor(k)).ok());
  }
  EXPECT_EQ(absorber->pending_updates(), 500u);
  ASSERT_TRUE(absorber->Flush().ok());
  EXPECT_EQ(absorber->pending_updates(), 0u);
  EXPECT_EQ(absorber->size(), 500u);
  for (Key k = 0; k < 500; k += 31) {
    EXPECT_EQ(absorber->Get(k).value(), ValueFor(k));
  }
  // The quotient filter drained too: it must be empty.
  EXPECT_EQ(absorber->filter().element_count(), 0u);
}

TEST(UpdateAbsorberTest, RepeatedOverwritesOfOneKeyDoNotGrowFilter) {
  Options options = SmallOptions();
  options.absorber.delta_entries = 1u << 20;
  auto absorber = MakeAbsorbedBTree(options);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(absorber->Insert(42, i).ok());
  }
  EXPECT_EQ(absorber->pending_updates(), 1u);
  EXPECT_EQ(absorber->filter().element_count(), 1u);
  EXPECT_EQ(absorber->Get(42).value(), 999u);
}

}  // namespace
}  // namespace rum

// Property sweeps: every access method must satisfy the reference-model
// contract under *every* configuration, not just the defaults -- tiny and
// large blocks, extreme split fractions, deep and shallow merge
// hierarchies, narrow and wide trie spans, degenerate buffer sizes.
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/access_method.h"
#include "methods/factory.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using testing_util::ReferenceModel;

struct SweepConfig {
  std::string label;
  std::string method;
  Options options;
};

Options BaseOptions(size_t block_size) {
  Options options = testing_util::SmallOptions();
  options.block_size = block_size;
  return options;
}

std::vector<SweepConfig> MakeConfigs() {
  std::vector<SweepConfig> configs;
  auto add = [&](std::string label, std::string method, Options options) {
    configs.push_back(SweepConfig{std::move(label), std::move(method),
                                  std::move(options)});
  };

  for (size_t block : {256u, 512u, 2048u}) {
    std::string suffix = "_blk" + std::to_string(block);
    add("btree" + suffix, "btree", BaseOptions(block));
    add("hash" + suffix, "hash", BaseOptions(block));
    add("zonemap" + suffix, "zonemap", BaseOptions(block));
    add("lsm_leveled" + suffix, "lsm-leveled", BaseOptions(block));
    add("sorted_column" + suffix, "sorted-column", BaseOptions(block));
  }

  {
    Options options = BaseOptions(512);
    options.btree.split_fraction = 0.1;
    add("btree_split10", "btree", options);
    options.btree.split_fraction = 0.9;
    add("btree_split90", "btree", options);
    options = BaseOptions(512);
    options.btree.node_size = 4096;  // Node larger than device default.
    add("btree_bignode", "btree", options);
  }
  {
    Options options = BaseOptions(512);
    options.lsm.memtable_entries = 8;  // Constant flushing.
    add("lsm_tinymem", "lsm-leveled", options);
    options = BaseOptions(512);
    options.lsm.size_ratio = 2;
    options.lsm.policy = LsmPolicy::kTiered;
    add("lsm_tiered_t2", "lsm-tiered", options);
    options.lsm.size_ratio = 8;
    add("lsm_tiered_t8", "lsm-tiered", options);
    options = BaseOptions(512);
    options.lsm.bloom_bits_per_key = 0;  // No filters.
    add("lsm_nofilter", "lsm-leveled", options);
    options = BaseOptions(512);
    options.lsm.fence_entries = 8;
    add("lsm_densefence", "lsm-leveled", options);
    options = BaseOptions(512);
    options.lsm.fence_entries = 4096;  // ~132 pages per fence group.
    add("lsm_sparsefence", "lsm-leveled", options);
    options = BaseOptions(512);
    options.lsm.fence_entries = 4096;
    options.lsm.bloom_bits_per_key = 0;
    options.lsm.policy = LsmPolicy::kTiered;
    add("lsm_sparse_naked_tiered", "lsm-tiered", options);
  }
  {
    Options options = BaseOptions(512);
    options.stepped.buffer_entries = 16;
    options.stepped.runs_per_level = 2;
    add("stepped_small", "stepped-merge", options);
    options.stepped.runs_per_level = 8;
    add("stepped_wide", "stepped-merge", options);
  }
  {
    Options options = BaseOptions(512);
    options.zonemap.zone_entries = 16;
    add("zonemap_tiny_zones", "zonemap", options);
    options.zonemap.zone_entries = 4096;
    add("zonemap_huge_zones", "zonemap", options);
  }
  {
    Options options = BaseOptions(512);
    options.trie.span_bits = 4;
    add("trie_span4", "trie", options);
    options.trie.span_bits = 16;
    add("trie_span16", "trie", options);
  }
  {
    Options options = BaseOptions(512);
    options.skiplist.promote_probability = 0.5;
    options.skiplist.max_height = 4;
    add("skiplist_shallow", "skiplist", options);
  }
  {
    Options options = BaseOptions(512);
    options.bitmap.cardinality = 1;  // Everything in one bin.
    add("bitmap_onebin", "bitmap", options);
    options = BaseOptions(512);
    options.bitmap.cardinality = 512;
    options.bitmap.delta_merge_threshold = 16;
    add("bitmap_manybins_eager", "bitmap-delta", options);
  }
  {
    Options options = BaseOptions(512);
    options.cracking.min_piece_entries = 1;
    add("cracking_fullcrack", "cracking", options);
    options = BaseOptions(512);
    options.cracking.delta_merge_threshold = 8;  // Merge constantly.
    add("cracking_eager_merge", "cracking", options);
  }
  {
    Options options = BaseOptions(512);
    options.approx.zone_entries = 32;
    options.approx.bits_per_key = 4;
    add("bloomzones_small", "bloom-zones", options);
  }
  {
    Options options = BaseOptions(512);
    options.absorber.delta_entries = 8;  // Drain constantly.
    add("absorbed_btree_tinydelta", "absorbed-btree", options);
    options = BaseOptions(512);
    options.absorber.qf_remainder_bits = 4;  // Frequent false positives.
    add("absorbed_btree_fuzzyqf", "absorbed-btree", options);
  }
  {
    Options options = BaseOptions(512);
    options.hash.directory_fanout = 0.5;  // Forces immediate growth.
    add("hash_undersized", "hash", options);
  }
  return configs;
}

class ParamSweepTest : public ::testing::TestWithParam<SweepConfig> {};

TEST_P(ParamSweepTest, RandomizedDifferential) {
  const SweepConfig& config = GetParam();
  ASSERT_TRUE(ValidateOptions(config.options).ok());
  std::unique_ptr<AccessMethod> method =
      MakeAccessMethod(config.method, config.options);
  ASSERT_NE(method, nullptr);
  ReferenceModel reference;

  Rng rng(0xABCD);
  const Key kRange = 1u << 11;
  for (int i = 0; i < 3000; ++i) {
    Key key = rng.NextBelow(kRange);
    uint64_t dice = rng.NextBelow(100);
    if (dice < 50) {
      Value v = rng.Next();
      ASSERT_TRUE(method->Insert(key, v).ok()) << config.label;
      reference.Insert(key, v);
    } else if (dice < 65) {
      ASSERT_TRUE(method->Delete(key).ok()) << config.label;
      reference.Delete(key);
    } else if (dice < 95) {
      Value expected;
      bool present = reference.Get(key, &expected);
      Result<Value> got = method->Get(key);
      ASSERT_EQ(got.ok(), present) << config.label << " key " << key
                                   << " at op " << i;
      if (present) {
        ASSERT_EQ(got.value(), expected) << config.label << " key " << key;
      }
    } else {
      Key hi = key + rng.NextBelow(64);
      std::vector<Entry> got;
      ASSERT_TRUE(method->Scan(key, hi, &got).ok()) << config.label;
      std::vector<Entry> expected = reference.Scan(key, hi);
      ASSERT_EQ(got.size(), expected.size())
          << config.label << " scan at op " << i;
      for (size_t j = 0; j < expected.size(); ++j) {
        ASSERT_EQ(got[j], expected[j]) << config.label << " at " << j;
      }
    }
  }
  ASSERT_EQ(method->size(), reference.size()) << config.label;
  // Full-range scan as the final invariant.
  std::vector<Entry> all;
  ASSERT_TRUE(method->Scan(0, kRange, &all).ok());
  ASSERT_EQ(all.size(), reference.size()) << config.label;
}

TEST_P(ParamSweepTest, BulkLoadRoundTrip) {
  const SweepConfig& config = GetParam();
  std::unique_ptr<AccessMethod> method =
      MakeAccessMethod(config.method, config.options);
  ASSERT_NE(method, nullptr);
  std::vector<Entry> entries = MakeSortedEntries(1200, 3, 3);
  ASSERT_TRUE(method->BulkLoad(entries).ok()) << config.label;
  ASSERT_TRUE(method->Flush().ok());
  EXPECT_EQ(method->size(), entries.size());
  for (size_t i = 0; i < entries.size(); i += 41) {
    Result<Value> got = method->Get(entries[i].key);
    ASSERT_TRUE(got.ok()) << config.label << " key " << entries[i].key;
    EXPECT_EQ(got.value(), entries[i].value);
  }
  std::vector<Entry> all;
  ASSERT_TRUE(method->Scan(0, kMaxKey, &all).ok()) << config.label;
  ASSERT_EQ(all.size(), entries.size());
  EXPECT_TRUE(std::equal(all.begin(), all.end(), entries.begin()));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParamSweepTest, ::testing::ValuesIn(MakeConfigs()),
    [](const ::testing::TestParamInfo<SweepConfig>& info) {
      return info.param.label;
    });

}  // namespace
}  // namespace rum

// Validates the analytical LSM amplification model against the simulator:
// for every compaction policy and several data sizes, the predicted
// read/update/memory amplifications must land within a stated tolerance of
// the amplifications RumCounters actually measure, and the predicted run
// layout must match the built tree exactly. A failure prints the full
// predicted-vs-measured table so drift is diagnosable from the log.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "adaptive/cost_model.h"
#include "methods/lsm/lsm_tree.h"
#include "tests/testing_util.h"

namespace rum {
namespace {

using testing_util::SmallOptions;

// Relative tolerances for |predicted - measured| / measured. The structure
// layer of the model is an exact replay of the flush cascade, so update and
// memory amplification (deterministic byte accounting plus the skiplist
// expected-tower-height approximation) get a tight bound; read
// amplification also rides on the Bloom fill/false-positive approximation
// and uniform key sampling, so it gets a looser one.
constexpr double kUpdateTol = 0.10;
constexpr double kMemoryTol = 0.10;
constexpr double kReadTol = 0.35;

constexpr LsmPolicy kAllPolicies[] = {
    LsmPolicy::kLeveled,
    LsmPolicy::kTiered,
    LsmPolicy::kLazyLeveled,
    LsmPolicy::kHybrid,
};

const char* PolicyLabel(LsmPolicy policy) {
  switch (policy) {
    case LsmPolicy::kLeveled:
      return "leveled";
    case LsmPolicy::kTiered:
      return "tiered";
    case LsmPolicy::kLazyLeveled:
      return "lazy";
    case LsmPolicy::kHybrid:
      return "hybrid";
  }
  return "?";
}

// Distinct, uniformly spread keys: multiplication by an odd constant is a
// bijection on 64-bit ints (Fibonacci hashing).
Key KeyAt(uint64_t i) { return i * 0x9E3779B97F4A7C15ULL; }

struct Row {
  std::string label;
  LsmCostPrediction predicted;
  double measured_ro = 0;
  double measured_uo = 0;
  double measured_mo = 0;
  size_t actual_levels = 0;
  size_t actual_runs = 0;
};

std::string FormatTable(const std::vector<Row>& rows) {
  std::string out =
      "\n  config                 |  RO pred/meas  |  UO pred/meas  |"
      "  MO pred/meas  | runs pred/act\n";
  for (const Row& row : rows) {
    char line[256];
    std::snprintf(line, sizeof(line),
                  "  %-22s | %6.1f /%6.1f | %6.2f /%6.2f | %5.3f /%5.3f |"
                  " %4.0f /%4zu\n",
                  row.label.c_str(), row.predicted.read_amp, row.measured_ro,
                  row.predicted.update_amp, row.measured_uo,
                  row.predicted.memory_amp, row.measured_mo,
                  row.predicted.runs, row.actual_runs);
    out += line;
  }
  return out;
}

double RelErr(double predicted, double measured) {
  if (measured <= 0) return predicted <= 0 ? 0 : 1e9;
  return std::abs(predicted - measured) / measured;
}

TEST(CostModelValidationTest, PredictionsMatchMeasurementWithinTolerance) {
  Options options = SmallOptions();
  const uint64_t memtable = options.lsm.memtable_entries;
  // Sizes spanning ~3 to ~5 populated levels at ratio 3, each an exact
  // multiple of the memtable so the load ends with it empty (the regime
  // the model assumes for the read phase). 27 and 243 are exact powers of
  // the ratio (tiered collapses to a single run there); 100 is a generic
  // mid-cascade snapshot.
  const uint64_t kSizes[] = {memtable * 27, memtable * 100, memtable * 243};

  std::vector<Row> rows;
  for (uint64_t entries : kSizes) {
    for (LsmPolicy policy : kAllPolicies) {
      options.lsm.policy = policy;
      LsmTree tree(options);
      for (uint64_t i = 0; i < entries; ++i) {
        ASSERT_TRUE(tree.Insert(KeyAt(i), i).ok());
      }
      Row row;
      row.label = std::string(PolicyLabel(policy)) + " N=" +
                  std::to_string(entries);
      row.predicted = PredictLsmCost(policy, entries, options);
      row.measured_uo = tree.stats().write_amplification();
      row.measured_mo = tree.stats().space_amplification();
      row.actual_levels = 0;
      row.actual_runs = 0;
      for (size_t level = 0; level < tree.level_count(); ++level) {
        if (tree.runs_at(level) > 0) {
          ++row.actual_levels;
          row.actual_runs += tree.runs_at(level);
        }
      }
      // Uniform point reads over the inserted keys, memtable empty.
      tree.ResetStats();
      uint64_t probe = 0x2545F4914F6CDD1DULL;
      constexpr size_t kReads = 400;
      for (size_t r = 0; r < kReads; ++r) {
        probe ^= probe << 13;
        probe ^= probe >> 7;
        probe ^= probe << 17;
        auto got = tree.Get(KeyAt(probe % entries));
        ASSERT_TRUE(got.ok());
      }
      row.measured_ro = tree.stats().read_amplification();
      rows.push_back(row);
    }
  }

  for (const Row& row : rows) {
    // The structure layer is an exact replay of the cascade, so the
    // predicted layout must match the tree exactly, not approximately.
    EXPECT_EQ(static_cast<size_t>(row.predicted.levels), row.actual_levels)
        << row.label;
    EXPECT_EQ(static_cast<size_t>(row.predicted.runs), row.actual_runs)
        << row.label;
    EXPECT_LE(RelErr(row.predicted.read_amp, row.measured_ro), kReadTol)
        << row.label << ": RO predicted " << row.predicted.read_amp
        << " measured " << row.measured_ro;
    EXPECT_LE(RelErr(row.predicted.update_amp, row.measured_uo), kUpdateTol)
        << row.label << ": UO predicted " << row.predicted.update_amp
        << " measured " << row.measured_uo;
    EXPECT_LE(RelErr(row.predicted.memory_amp, row.measured_mo), kMemoryTol)
        << row.label << ": MO predicted " << row.predicted.memory_amp
        << " measured " << row.measured_mo;
  }
  if (::testing::Test::HasFailure()) {
    ADD_FAILURE() << "predicted-vs-measured:" << FormatTable(rows);
  }
}

// Range-RO validation: the scan term models a steady-state 128-record
// window at a uniform start key, so the measurement warms up by replaying
// the exact lo sequence the measured pass uses (every touched segment is
// built before stats reset). Positioning noise is larger than on the point
// path -- where a probe lands inside a fence group is workload-dependent --
// hence the wider tolerance.
constexpr double kRangeTol = 0.40;

TEST(CostModelValidationTest, RangeRoMatchesMeasurementWithTheIndexOnAndOff) {
  Options base = SmallOptions();
  const uint64_t entries = base.lsm.memtable_entries * 100;
  const Key span =
      (kMaxKey / entries) * LsmCostPrediction::kRangeScanRecords;

  std::vector<std::string> lines;
  for (bool index : {true, false}) {
    for (LsmPolicy policy : kAllPolicies) {
      Options options = base;
      options.lsm.policy = policy;
      options.lsm.cross_run_index = index;
      LsmTree tree(options);
      for (uint64_t i = 0; i < entries; ++i) {
        ASSERT_TRUE(tree.Insert(KeyAt(i), i).ok());
      }
      LsmCostPrediction predicted = PredictLsmCost(policy, entries, options);

      constexpr size_t kScans = 300;
      uint64_t probe = 0x2545F4914F6CDD1DULL;
      auto run_scans = [&] {
        std::vector<Entry> out;
        for (size_t r = 0; r < kScans; ++r) {
          probe ^= probe << 13;
          probe ^= probe >> 7;
          probe ^= probe << 17;
          Key lo = probe;
          out.clear();
          ASSERT_TRUE(
              tree.Scan(lo, lo + std::min(span, kMaxKey - lo), &out).ok());
        }
      };
      // Warm-up replays the measured lo sequence so the measured pass hits
      // only built segments (the steady state the model prices).
      uint64_t start = probe;
      run_scans();
      probe = start;
      tree.ResetStats();
      run_scans();
      double measured = tree.stats().read_amplification();

      std::string label = std::string(PolicyLabel(policy)) +
                          (index ? " index-on" : " index-off");
      EXPECT_LE(RelErr(predicted.range_read_amp, measured), kRangeTol)
          << label << ": range RO predicted " << predicted.range_read_amp
          << " measured " << measured;
      lines.push_back(label + ": predicted " +
                      std::to_string(predicted.range_read_amp) +
                      " measured " + std::to_string(measured));
    }
  }
  if (::testing::Test::HasFailure()) {
    std::string table;
    for (const std::string& line : lines) table += "\n  " + line;
    ADD_FAILURE() << "range-RO predicted-vs-measured:" << table;
  }
}

TEST(CostModelTest, PickLsmPolicyPricesScanPain) {
  Options options = SmallOptions();
  options.lsm.bloom_bits_per_key = 0;
  uint64_t entries = options.lsm.memtable_entries * 100;

  // Degenerate scan weight reduces to the argmin on range RO.
  LsmCostPrediction best_scan;
  best_scan.range_read_amp = 1e18;
  for (LsmPolicy policy : kAllPolicies) {
    auto p = PredictLsmCost(policy, entries, options);
    if (p.range_read_amp < best_scan.range_read_amp) best_scan = p;
  }
  EXPECT_EQ(PickLsmPolicy(entries, options, 0.0, 0.0, 0.0, 1.0),
            best_scan.policy);

  // The term honors the cross-run index: the same tiered tree predicts
  // cheaper range scans with the index than without. Segment granularity
  // matters -- at this small resident count the default 1024-entry
  // segments cost more in-segment advance than a fence group's slack, so
  // use the scan-tuned granularity (the same trade the model must price:
  // finer segments buy range RO with auxiliary space).
  Options with = options, without = options;
  with.lsm.cross_run_segment_entries = 64;
  without.lsm.cross_run_index = false;
  auto tiered_on = PredictLsmCost(LsmPolicy::kTiered, entries, with);
  auto tiered_off = PredictLsmCost(LsmPolicy::kTiered, entries, without);
  EXPECT_LT(tiered_on.range_read_amp, tiered_off.range_read_amp);
}

TEST(CostModelTest, OrderingsFollowTheRumTradeoff) {
  // The qualitative shape the paper promises, at a fixed size: tiered
  // writes cheaper than leveled, leveled reads cheaper than tiered, and
  // the lazy/hybrid middle ground between them on both axes. Filters are
  // disabled so every resident run is actually probed -- with strong
  // Bloom filters the simulator prices skipped runs in auxiliary bytes,
  // which (correctly) compresses the read-cost gap between policies. The
  // size is deliberately not a power of the ratio: at exact powers the
  // tiered cascade momentarily collapses to a single run.
  Options options = SmallOptions();
  options.lsm.bloom_bits_per_key = 0;
  uint64_t entries = options.lsm.memtable_entries * 100;
  auto leveled = PredictLsmCost(LsmPolicy::kLeveled, entries, options);
  auto tiered = PredictLsmCost(LsmPolicy::kTiered, entries, options);
  auto lazy = PredictLsmCost(LsmPolicy::kLazyLeveled, entries, options);
  auto hybrid = PredictLsmCost(LsmPolicy::kHybrid, entries, options);

  EXPECT_LT(tiered.update_amp, leveled.update_amp);
  EXPECT_LT(leveled.read_amp, tiered.read_amp);
  EXPECT_LT(lazy.update_amp, leveled.update_amp);
  EXPECT_LT(lazy.read_amp, tiered.read_amp);
  EXPECT_LT(hybrid.update_amp, leveled.update_amp);
  EXPECT_LT(hybrid.read_amp, tiered.read_amp);
}

TEST(CostModelTest, PickLsmPolicyFollowsTheWeights) {
  Options options = SmallOptions();
  options.lsm.bloom_bits_per_key = 0;
  uint64_t entries = options.lsm.memtable_entries * 100;

  LsmCostPrediction best_read, best_write, best_space;
  best_read.read_amp = best_write.update_amp = best_space.memory_amp = 1e18;
  for (LsmPolicy policy : kAllPolicies) {
    auto p = PredictLsmCost(policy, entries, options);
    if (p.read_amp < best_read.read_amp) best_read = p;
    if (p.update_amp < best_write.update_amp) best_write = p;
    if (p.memory_amp < best_space.memory_amp) best_space = p;
  }
  // A degenerate weight vector must reduce to the argmin on that axis.
  EXPECT_EQ(PickLsmPolicy(entries, options, 1.0, 0.0, 0.0),
            best_read.policy);
  EXPECT_EQ(PickLsmPolicy(entries, options, 0.0, 1.0, 0.0),
            best_write.policy);
  EXPECT_EQ(PickLsmPolicy(entries, options, 0.0, 0.0, 1.0),
            best_space.policy);
  // Unfiltered writes are cheapest under tiering -- the degenerate write
  // pick must agree with the paper, not just with itself.
  EXPECT_EQ(best_write.policy, LsmPolicy::kTiered);
  // Mixed pain must not pick a policy that is worst on either hurting axis.
  LsmPolicy mixed = PickLsmPolicy(entries, options, 1.0, 1.0, 0.0);
  EXPECT_NE(mixed, LsmPolicy::kLeveled);
  EXPECT_NE(mixed, LsmPolicy::kTiered);
}

}  // namespace
}  // namespace rum

// Saturation and admission-control tests for the service layer
// (src/service/): open-loop overload behavior, the request-conservation
// ledger, scheduler mechanisms (priorities, group commit, read coalescing,
// deadlines), and the closed-loop pass-through contract.
//
// Everything here runs on the scheduler's *virtual* clock, so queueing
// dynamics -- p99s, sheds, goodput -- are deterministic functions of the
// seed and identical under ASan/TSan or any host load.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "methods/factory.h"
#include "service/open_loop.h"
#include "service/scheduled_method.h"
#include "service/scheduler.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"
#include "workload/runner.h"
#include "workload/spec.h"

namespace rum {
namespace {

using testing_util::SmallOptions;

constexpr uint64_t kSatSeed = 0x5A70ULL;

/// Service options with the cost model pinned explicitly, so capacity and
/// every latency assertion below are stable against default changes.
Options ServiceOptions() {
  Options options = SmallOptions();
  options.service.enabled = true;
  options.service.dispatch_overhead_us = 8;
  options.service.op_cost_us = 2;
  options.service.scan_cost_us = 16;
  options.service.batch_max_ops = 16;
  return options;
}

/// A get-heavy open-loop mix over a prefilled key space. Zipfian keys: the
/// skew is what makes read coalescing and per-shard queue imbalance real.
WorkloadSpec SaturationSpec(uint64_t ops, double offered_ops_per_sec) {
  WorkloadSpec spec;
  spec.operations = ops;
  spec.key_range = 1 << 12;
  spec.distribution = KeyDistribution::kZipfian;
  spec.insert_fraction = 0.1;
  spec.seed = kSatSeed;
  spec.error_mode = ErrorMode::kSkipAndCount;
  spec.arrival = ArrivalProcess::kPoisson;
  spec.offered_ops_per_sec = offered_ops_per_sec;
  return spec;
}

std::unique_ptr<AccessMethod> PrefilledMethod() {
  // The method itself is built with the service layer *disabled*: the
  // open-loop scheduler under test is the RequestScheduler RunOpenLoop
  // constructs, not a factory-installed wrapper.
  auto method = MakeAccessMethod("skiplist", SmallOptions());
  EXPECT_NE(method, nullptr);
  for (Key k = 0; k < (1 << 12); ++k) {
    EXPECT_TRUE(method->Insert(k, ValueFor(k)).ok());
  }
  return method;
}

void ExpectLedgerExact(const ServiceStats& s, uint64_t submitted) {
  EXPECT_EQ(s.submitted, submitted);
  EXPECT_EQ(s.submitted, s.completed + s.deadline_missed + s.shed);
  EXPECT_EQ(s.accepted, s.completed + s.deadline_missed + s.shed_codel);
  EXPECT_EQ(s.shed, s.shed_queue_full + s.shed_rate_gate + s.shed_codel);
  EXPECT_TRUE(s.LedgerHolds());
}

/// Measured capacity: drive far above any plausible capacity with admission
/// off and an unbounded queue, so the server never idles and sheds nothing;
/// completions per virtual second is the service rate.
double MeasureCapacity() {
  auto method = PrefilledMethod();
  Options options = ServiceOptions();
  options.service.admission = false;
  options.service.queue_capacity = 1u << 20;
  WorkloadSpec spec = SaturationSpec(20000, 50e6);
  Result<ServiceReport> r = RunOpenLoop(method.get(), spec, options);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  const ServiceStats& s = r.value().stats;
  EXPECT_EQ(s.completed, spec.operations);
  EXPECT_GT(s.end_us, 0u);
  return static_cast<double>(s.completed) * 1e6 /
         static_cast<double>(s.end_us);
}

// --------------------------------------------------- The acceptance study

// At 2x measured capacity, the admission package (bounded queue + CoDel)
// keeps accepted p99 inside the SLO and goodput >= 70% of capacity; the
// no-admission baseline -- same load into one big buffer -- demonstrably
// violates both. This is bufferbloat versus load shedding in one test.
TEST(SaturationTest, AdmissionHoldsSloAtTwiceCapacityWhereBaselineViolates) {
  const double capacity = MeasureCapacity();
  ASSERT_GT(capacity, 0.0);
  const uint64_t kSloUs = 20000;  // 20 virtual milliseconds.
  const uint64_t kOps = 80000;

  auto run = [&](bool admission, size_t queue_capacity) {
    auto method = PrefilledMethod();
    Options options = ServiceOptions();
    options.service.admission = admission;
    options.service.queue_capacity = queue_capacity;
    options.service.slo_us = kSloUs;
    options.service.codel_target_us = 1000;
    options.service.codel_interval_us = 5000;
    WorkloadSpec spec = SaturationSpec(kOps, 2.0 * capacity);
    Result<ServiceReport> r = RunOpenLoop(method.get(), spec, options);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  };

  ServiceReport with = run(true, 1024);
  ServiceReport without = run(false, 1u << 20);

  ExpectLedgerExact(with.stats, kOps);
  ExpectLedgerExact(without.stats, kOps);

  // The overload is real and admission responded to it -- including CoDel,
  // not just the queue bound.
  EXPECT_GT(with.stats.shed, 0u);
  EXPECT_GT(with.stats.shed_codel, 0u);
  EXPECT_EQ(with.stats.shed, with.errors.shed);

  // Admission: completed-request p99 inside the SLO, goodput >= 70% of the
  // measured service rate.
  EXPECT_LE(with.stats.total_us.Percentile(0.99), kSloUs);
  EXPECT_GE(with.stats.goodput_ops_per_sec(), 0.7 * capacity);

  // Baseline: nothing shed, everything eventually served -- and both SLO
  // criteria blown: the standing queue pushes p99 far past the SLO and
  // goodput collapses because late completions are worthless.
  EXPECT_EQ(without.stats.shed, 0u);
  EXPECT_EQ(without.stats.completed, kOps);
  EXPECT_GT(without.stats.total_us.Percentile(0.99), kSloUs);
  EXPECT_LT(without.stats.goodput_ops_per_sec(), 0.7 * capacity);
}

// Same seed, same spec, same options: the full report -- ledger, histogram
// summaries, RUM delta -- replays byte-for-byte.
TEST(SaturationTest, SameSeedReplayIsByteIdentical) {
  auto run = [&] {
    auto method = PrefilledMethod();
    Options options = ServiceOptions();
    options.service.queue_capacity = 512;
    options.service.slo_us = 10000;
    options.service.deadline_us = 50000;
    WorkloadSpec spec = SaturationSpec(20000, 600000);
    Result<ServiceReport> r = RunOpenLoop(method.get(), spec, options);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  };
  ServiceReport a = run();
  ServiceReport b = run();
  EXPECT_EQ(a.ToJson(), b.ToJson());
  ExpectLedgerExact(a.stats, 20000);
}

// Bursty arrivals at the same *average* load shed more than Poisson: the
// on-windows run far above capacity even when the mean is below it. This is
// why an arrival process, not just a mean rate, is part of WorkloadSpec.
TEST(SaturationTest, BurstyArrivalsStressAdmissionHarderThanPoisson) {
  const double capacity = MeasureCapacity();
  auto run = [&](ArrivalProcess arrival) {
    auto method = PrefilledMethod();
    Options options = ServiceOptions();
    options.service.queue_capacity = 256;
    WorkloadSpec spec = SaturationSpec(40000, 0.8 * capacity);
    spec.arrival = arrival;
    spec.burst_factor = 8.0;
    spec.burst_on_fraction = 0.25;
    spec.burst_period_us = 50000;
    Result<ServiceReport> r = RunOpenLoop(method.get(), spec, options);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.value();
  };
  ServiceReport poisson = run(ArrivalProcess::kPoisson);
  ServiceReport bursty = run(ArrivalProcess::kBursty);
  ExpectLedgerExact(poisson.stats, 40000);
  ExpectLedgerExact(bursty.stats, 40000);
  EXPECT_GT(bursty.stats.shed, poisson.stats.shed);
  EXPECT_GT(bursty.stats.max_queue_depth, poisson.stats.max_queue_depth);
}

// Below capacity, Poisson arrivals pace the run: virtual duration matches
// operations / offered rate, and with no standing queue the latency tail
// stays at batch scale.
TEST(SaturationTest, PoissonArrivalsMatchTheOfferedRate) {
  auto method = PrefilledMethod();
  Options options = ServiceOptions();
  WorkloadSpec spec = SaturationSpec(20000, 10000);  // Far below capacity.
  Result<ServiceReport> r = RunOpenLoop(method.get(), spec, options);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const ServiceStats& s = r.value().stats;
  ExpectLedgerExact(s, 20000);
  double expected_us = 20000.0 / 10000.0 * 1e6;
  EXPECT_GT(static_cast<double>(s.end_us), 0.85 * expected_us);
  EXPECT_LT(static_cast<double>(s.end_us), 1.15 * expected_us);
  EXPECT_LE(s.total_us.Percentile(0.99),
            options.service.dispatch_overhead_us +
                16 * options.service.op_cost_us);
}

// ------------------------------------------------- Scheduler mechanisms

Options UnitOptions() {
  Options options = ServiceOptions();
  options.service.admission = false;
  options.service.queue_capacity = 1u << 16;
  return options;
}

Request GetRequest(Key key, uint64_t arrival_us = 0, uint8_t priority = 0) {
  Request req;
  req.op = RequestOp::kGet;
  req.key = key;
  req.arrival_us = arrival_us;
  req.priority = priority;
  return req;
}

// High-priority requests dispatch before normal ones queued earlier.
TEST(SaturationTest, PriorityRequestsDispatchFirst) {
  auto method = PrefilledMethod();
  Options options = UnitOptions();
  options.service.batch_max_ops = 4;
  RequestScheduler scheduler(method.get(), options);
  std::vector<uint8_t> completion_priorities;
  scheduler.set_completion([&](const Request& rq, const RequestResult& r) {
    EXPECT_EQ(r.outcome, RequestOutcome::kCompleted);
    completion_priorities.push_back(rq.priority);
  });
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(scheduler.Submit(GetRequest(static_cast<Key>(i), 0, 1)));
  }
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(scheduler.Submit(GetRequest(static_cast<Key>(100 + i), 0, 0)));
  }
  scheduler.RunUntilIdle();
  ASSERT_EQ(completion_priorities.size(), 12u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(completion_priorities[i], 0u) << "position " << i;
  }
  for (size_t i = 6; i < 12; ++i) {
    EXPECT_EQ(completion_priorities[i], 1u) << "position " << i;
  }
  ExpectLedgerExact(scheduler.stats(), 12);
}

// Duplicate-key Gets inside one window share one method call: the physical
// read is charged once, every waiter gets the value, and service time
// covers one op, not eight.
TEST(SaturationTest, DuplicateGetsCoalesceToOneMethodCall) {
  auto method = PrefilledMethod();
  Options options = UnitOptions();
  options.service.batch_max_ops = 8;
  RequestScheduler scheduler(method.get(), options);
  uint64_t hits = 0;
  scheduler.set_completion([&](const Request&, const RequestResult& r) {
    EXPECT_TRUE(r.found);
    EXPECT_EQ(r.value, ValueFor(42));
    ++hits;
  });
  CounterSnapshot before = method->stats();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(scheduler.Submit(GetRequest(42)));
  }
  scheduler.RunUntilIdle();
  CounterSnapshot delta = method->stats() - before;
  EXPECT_EQ(hits, 8u);
  EXPECT_EQ(delta.point_queries, 1u);  // One inner Get served all eight.
  EXPECT_EQ(scheduler.stats().batches, 1u);
  EXPECT_EQ(scheduler.stats().batched_ops, 8u);
  EXPECT_EQ(scheduler.stats().coalesced_reads, 7u);
  // Service time: one dispatch window, one op charged.
  EXPECT_EQ(scheduler.stats().end_us, options.service.dispatch_overhead_us +
                                          options.service.op_cost_us);
  ExpectLedgerExact(scheduler.stats(), 8);
}

// With coalescing disabled the same traffic pays per-request.
TEST(SaturationTest, CoalescingOffServesEveryGetIndividually) {
  auto method = PrefilledMethod();
  Options options = UnitOptions();
  options.service.batch_max_ops = 8;
  options.service.coalesce_reads = false;
  RequestScheduler scheduler(method.get(), options);
  CounterSnapshot before = method->stats();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(scheduler.Submit(GetRequest(42)));
  }
  scheduler.RunUntilIdle();
  CounterSnapshot delta = method->stats() - before;
  EXPECT_EQ(delta.point_queries, 8u);
  EXPECT_EQ(scheduler.stats().coalesced_reads, 0u);
  EXPECT_EQ(scheduler.stats().end_us,
            options.service.dispatch_overhead_us +
                8 * options.service.op_cost_us);
}

// A request that expires in queue completes kDeadlineExceeded without the
// device ever seeing it, and costs the server nothing.
TEST(SaturationTest, ExpiredRequestsNeverTouchStorage) {
  auto method = PrefilledMethod();
  Options options = UnitOptions();
  options.service.batch_max_ops = 1;
  options.service.dispatch_overhead_us = 10;
  options.service.op_cost_us = 30;
  options.service.deadline_us = 50;
  RequestScheduler scheduler(method.get(), options);
  uint64_t expired = 0;
  scheduler.set_completion([&](const Request&, const RequestResult& r) {
    if (r.outcome == RequestOutcome::kDeadlineExceeded) {
      EXPECT_EQ(r.status.code(), Code::kDeadlineExceeded);
      ++expired;
    }
  });
  CounterSnapshot before = method->stats();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(scheduler.Submit(GetRequest(static_cast<Key>(i))));
  }
  scheduler.RunUntilIdle();
  CounterSnapshot delta = method->stats() - before;
  // Batches of one at 40us each: dispatches at t=0 and t=40 beat the 50us
  // deadline; the remaining three expire in queue.
  EXPECT_EQ(delta.point_queries, 2u);
  EXPECT_EQ(scheduler.stats().deadline_missed, 3u);
  EXPECT_EQ(expired, 3u);
  ExpectLedgerExact(scheduler.stats(), 5);
}

// Group commit batches runs of same-class requests; a class change closes
// the window.
TEST(SaturationTest, GroupCommitBatchesSameClassRuns) {
  auto method = PrefilledMethod();
  Options options = UnitOptions();
  RequestScheduler scheduler(method.get(), options);
  auto mutation = [](Key k) {
    Request req;
    req.op = RequestOp::kInsert;
    req.key = k;
    req.value = ValueFor(k);
    return req;
  };
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(scheduler.Submit(mutation(static_cast<Key>(9000 + i))));
  }
  ASSERT_TRUE(scheduler.Submit(GetRequest(1)));
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(scheduler.Submit(mutation(static_cast<Key>(9100 + i))));
  }
  scheduler.RunUntilIdle();
  // Three windows: the insert run, the get, the second insert run.
  EXPECT_EQ(scheduler.stats().batches, 3u);
  EXPECT_EQ(scheduler.stats().batched_ops, 9u);
  ExpectLedgerExact(scheduler.stats(), 9);
}

// The front-door token bucket sheds before storage is touched and the shed
// lands in the ledger, with the expected kResourceExhausted status.
TEST(SaturationTest, RateGateShedsAtTheFrontDoor) {
  auto method = PrefilledMethod();
  Options options = UnitOptions();
  options.service.admission = true;
  options.service.rate_ops_per_sec = 1000;
  options.service.rate_burst_ops = 2;
  RequestScheduler scheduler(method.get(), options);
  uint64_t shed = 0;
  scheduler.set_completion([&](const Request&, const RequestResult& r) {
    if (r.outcome == RequestOutcome::kShed) {
      EXPECT_EQ(r.status.code(), Code::kResourceExhausted);
      ++shed;
    }
  });
  CounterSnapshot before = method->stats();
  // Five simultaneous arrivals against a bucket of two.
  for (int i = 0; i < 5; ++i) {
    scheduler.Submit(GetRequest(static_cast<Key>(i)));
  }
  scheduler.RunUntilIdle();
  CounterSnapshot delta = method->stats() - before;
  EXPECT_EQ(shed, 3u);
  EXPECT_EQ(scheduler.stats().shed_rate_gate, 3u);
  EXPECT_EQ(delta.point_queries, 2u);  // Shed requests never reached it.
  ExpectLedgerExact(scheduler.stats(), 5);
}

// --------------------------------------------- Closed-loop pass-through

void ExpectSnapshotsEqual(const CounterSnapshot& a, const CounterSnapshot& b) {
  EXPECT_EQ(a.bytes_read_base, b.bytes_read_base);
  EXPECT_EQ(a.bytes_read_aux, b.bytes_read_aux);
  EXPECT_EQ(a.bytes_written_base, b.bytes_written_base);
  EXPECT_EQ(a.bytes_written_aux, b.bytes_written_aux);
  EXPECT_EQ(a.blocks_read, b.blocks_read);
  EXPECT_EQ(a.blocks_written, b.blocks_written);
  EXPECT_EQ(a.space_base, b.space_base);
  EXPECT_EQ(a.space_aux, b.space_aux);
  EXPECT_EQ(a.logical_bytes_read, b.logical_bytes_read);
  EXPECT_EQ(a.logical_bytes_written, b.logical_bytes_written);
  EXPECT_EQ(a.point_queries, b.point_queries);
  EXPECT_EQ(a.range_queries, b.range_queries);
  EXPECT_EQ(a.inserts, b.inserts);
  EXPECT_EQ(a.updates, b.updates);
  EXPECT_EQ(a.deletes, b.deletes);
  EXPECT_EQ(a.io_errors, b.io_errors);
  EXPECT_EQ(a.retries, b.retries);
}

// Options::service.enabled installs a ScheduledMethod front door whose
// closed-loop path is pure pass-through: the inner method's RUM accounting
// and returned contents are byte-identical to the undecorated stack, and
// disabled options produce the undecorated stack itself.
TEST(SaturationTest, ClosedLoopServiceLayerIsByteIdenticalPassThrough) {
  Options direct_options = SmallOptions();
  Options service_options = SmallOptions();
  service_options.service.enabled = true;

  auto direct = MakeAccessMethod("btree", direct_options);
  auto fronted = MakeAccessMethod("btree", service_options);
  ASSERT_NE(direct, nullptr);
  ASSERT_NE(fronted, nullptr);
  // Disabled options return the bare method; enabled ones the decorator.
  EXPECT_EQ(dynamic_cast<ScheduledMethod*>(direct.get()), nullptr);
  auto* wrapper = dynamic_cast<ScheduledMethod*>(fronted.get());
  ASSERT_NE(wrapper, nullptr);
  EXPECT_EQ(fronted->name(), direct->name());

  WorkloadSpec spec = WorkloadSpec::Mixed(5000, 1 << 12);
  spec.seed = kSatSeed;
  Result<RumProfile> rd = WorkloadRunner::Run(direct.get(), spec);
  Result<RumProfile> rf = WorkloadRunner::Run(fronted.get(), spec);
  ASSERT_TRUE(rd.ok()) << rd.status().ToString();
  ASSERT_TRUE(rf.ok()) << rf.status().ToString();

  ExpectSnapshotsEqual(rd.value().delta, rf.value().delta);
  ExpectSnapshotsEqual(direct->stats(), fronted->stats());
  ASSERT_EQ(direct->size(), fronted->size());
  for (Key k = 0; k < (1 << 12); k += 3) {
    Result<Value> a = direct->Get(k);
    Result<Value> b = fronted->Get(k);
    ASSERT_EQ(a.ok(), b.ok()) << "key " << k;
    if (a.ok()) {
      ASSERT_EQ(a.value(), b.value()) << "key " << k;
    }
  }

  // The wrapper kept full books while staying transparent. The extra Gets
  // above went through the front door too.
  ServiceStats stats = wrapper->service_stats();
  EXPECT_EQ(stats.submitted, stats.completed);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_TRUE(stats.LedgerHolds());
  EXPECT_GE(stats.submitted, spec.operations);
}

// Concurrent closed-loop traffic through the front door: four workers over
// a sharded inner with the service layer on. BulkLoad bypasses the front
// door as setup traffic, so the wrapper's ledger must account for exactly
// the phase's operations with no lost increments -- this is the
// configuration the TSan tier watches.
TEST(SaturationTest, ConcurrentClosedLoopKeepsExactBooks) {
  Options options = SmallOptions();
  options.service.enabled = true;
  options.sharded.shards = 4;
  auto method = MakeAccessMethod("sharded-btree", options);
  ASSERT_NE(method, nullptr);
  auto* wrapper = dynamic_cast<ScheduledMethod*>(method.get());
  ASSERT_NE(wrapper, nullptr);

  WorkloadSpec spec;
  spec.operations = 8000;
  spec.key_range = 1u << 12;
  spec.insert_fraction = 0.3;
  spec.update_fraction = 0.2;
  spec.delete_fraction = 0.1;
  spec.scan_fraction = 0;  // Scans cross partitions; see runner.h.
  spec.seed = kSatSeed;
  spec.concurrency = 4;
  Result<RumProfile> r = WorkloadRunner::LoadAndRun(method.get(), 1500, spec);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  ServiceStats stats = wrapper->service_stats();
  EXPECT_EQ(stats.submitted, spec.operations);
  EXPECT_EQ(stats.completed, spec.operations);
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_TRUE(stats.LedgerHolds());
  EXPECT_EQ(stats.total_us.count(), spec.operations);
}

}  // namespace
}  // namespace rum

// Concurrency test tier: N threads hammer a ShardedMethod over disjoint and
// overlapping key ranges, results are verified against a mutex-guarded
// std::map oracle at quiescence, and merged counter snapshots must satisfy
// the same stats invariants stats_invariants_test.cc checks serially.
// This tier is the one that must pass under ThreadSanitizer (see ci.sh).
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/access_method.h"
#include "methods/btree/btree.h"
#include "methods/factory.h"
#include "methods/sharded/sharded_method.h"
#include "storage/block_device.h"
#include "storage/caching_device.h"
#include "storage/faulty_device.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"
#include "workload/runner.h"

namespace rum {
namespace {

using testing_util::ConcurrentReferenceModel;
using testing_util::GetMatchesReference;
using testing_util::ScanMatchesReference;
using testing_util::SmallOptions;

constexpr int kThreads = 4;

class ConcurrencyTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<AccessMethod> MakeSharded() {
    auto method =
        MakeAccessMethod("sharded-" + GetParam(), SmallOptions());
    EXPECT_NE(method, nullptr) << "sharded-" << GetParam();
    return method;
  }
};

// Each thread owns a disjoint key range; inserts, deletes and point reads
// race only on shard locks, never on keys, so the mutex-guarded oracle is
// exactly equivalent to the method's final contents.
TEST_P(ConcurrencyTest, DisjointRangesMatchOracle) {
  auto method = MakeSharded();
  ASSERT_NE(method, nullptr);
  ConcurrentReferenceModel oracle;
  constexpr Key kRangePerThread = 4096;
  constexpr int kOpsPerThread = 4000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0x9000 + t);
      Key base = static_cast<Key>(t) * kRangePerThread;
      for (int i = 0; i < kOpsPerThread; ++i) {
        Key key = base + rng.NextBelow(kRangePerThread);
        uint64_t dice = rng.NextBelow(100);
        if (dice < 55) {
          Value v = rng.Next();
          ASSERT_TRUE(method->Insert(key, v).ok());
          oracle.Insert(key, v);
        } else if (dice < 80) {
          ASSERT_TRUE(method->Delete(key).ok());
          oracle.Delete(key);
        } else {
          // This thread's range is only mutated by this thread, so its own
          // point reads can be checked mid-flight against the oracle.
          Value expected;
          bool present = oracle.Get(key, &expected);
          Result<Value> got = method->Get(key);
          if (present) {
            ASSERT_TRUE(got.ok()) << "thread " << t << " key " << key;
            ASSERT_EQ(got.value(), expected);
          }
          // An oracle miss may race with this thread's... nothing: ranges
          // are disjoint, so a miss must be a real miss.
          if (!present) {
            ASSERT_TRUE(got.status().IsNotFound())
                << "thread " << t << " key " << key;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  ASSERT_EQ(method->size(), oracle.quiesced().size());
  ASSERT_TRUE(ScanMatchesReference(method.get(), oracle.quiesced(), 0,
                                   kThreads * kRangePerThread));
  Rng spot(0xFEED);
  for (int i = 0; i < 500; ++i) {
    Key key = spot.NextBelow(kThreads * kRangePerThread);
    ASSERT_TRUE(GetMatchesReference(method.get(), oracle.quiesced(), key));
  }
}

// All threads upsert the *same* key range with a key-determined value, then
// all threads delete the same overlapping subset. Both phases commute, so
// the final state is deterministic even though threads race on keys.
TEST_P(ConcurrencyTest, OverlappingUpsertsAndDeletesConverge) {
  auto method = MakeSharded();
  ASSERT_NE(method, nullptr);
  ConcurrentReferenceModel oracle;
  constexpr Key kRange = 8192;
  constexpr int kOpsPerThread = 4000;

  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(0xA000 + t);
        for (int i = 0; i < kOpsPerThread; ++i) {
          Key key = rng.NextBelow(kRange);
          ASSERT_TRUE(method->Insert(key, ValueFor(key)).ok());
          oracle.Insert(key, ValueFor(key));
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  ASSERT_EQ(method->size(), oracle.quiesced().size());
  ASSERT_TRUE(ScanMatchesReference(method.get(), oracle.quiesced(), 0,
                                   kRange));

  {
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&, t] {
        Rng rng(0xB000 + t);
        for (int i = 0; i < kOpsPerThread; ++i) {
          // Overlapping deleters: deletes are idempotent, so double deletes
          // from racing threads leave the same final state.
          Key key = rng.NextBelow(kRange / 2);
          ASSERT_TRUE(method->Delete(key).ok());
          oracle.Delete(key);
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  ASSERT_EQ(method->size(), oracle.quiesced().size());
  ASSERT_TRUE(ScanMatchesReference(method.get(), oracle.quiesced(), 0,
                                   kRange));
}

// Readers scan and probe while writers mutate: every value in rumlab
// concurrency tests is key-determined (ValueFor), so readers can validate
// whatever snapshot they observe. Even keys are never mutated after the
// bulk load and must be visible to every reader, always.
TEST_P(ConcurrencyTest, ReadersSeeConsistentStateUnderWrites) {
  auto method = MakeSharded();
  ASSERT_NE(method, nullptr);
  constexpr Key kRange = 8192;
  std::vector<Entry> stable;
  for (Key k = 0; k < kRange; k += 2) stable.push_back({k, ValueFor(k)});
  ASSERT_TRUE(method->BulkLoad(stable).ok());

  std::vector<std::thread> threads;
  for (int w = 0; w < 2; ++w) {
    threads.emplace_back([&, w] {
      // Writer w churns odd keys with k % 4 == 2w + 1 (disjoint between
      // writers); values stay key-determined.
      Rng rng(0xC000 + w);
      for (int i = 0; i < 6000; ++i) {
        Key key = rng.NextBelow(kRange / 4) * 4 + 2 * w + 1;
        if (rng.NextBelow(2) == 0) {
          ASSERT_TRUE(method->Insert(key, ValueFor(key)).ok());
        } else {
          ASSERT_TRUE(method->Delete(key).ok());
        }
      }
    });
  }
  for (int r = 0; r < 2; ++r) {
    threads.emplace_back([&, r] {
      Rng rng(0xD000 + r);
      for (int i = 0; i < 3000; ++i) {
        if (i % 17 == 0) {
          Key lo = rng.NextBelow(kRange - 512);
          Key hi = lo + 256;
          std::vector<Entry> out;
          ASSERT_TRUE(method->Scan(lo, hi, &out).ok());
          for (size_t j = 0; j < out.size(); ++j) {
            ASSERT_GE(out[j].key, lo);
            ASSERT_LE(out[j].key, hi);
            ASSERT_EQ(out[j].value, ValueFor(out[j].key));
            if (j > 0) ASSERT_LT(out[j - 1].key, out[j].key);
          }
          // Unmutated even keys must all be present in the observed range.
          size_t evens = 0;
          for (const Entry& e : out) evens += (e.key % 2 == 0);
          size_t expected_evens = (hi - lo) / 2 + (lo % 2 == 0 ? 1 : 0);
          ASSERT_EQ(evens, expected_evens) << "scan [" << lo << "," << hi
                                           << "] dropped stable keys";
        } else {
          Key key = rng.NextBelow(kRange);
          Result<Value> got = method->Get(key);
          if (key % 2 == 0) {
            ASSERT_TRUE(got.ok()) << "stable key " << key << " vanished";
            ASSERT_EQ(got.value(), ValueFor(key));
          } else if (got.ok()) {
            ASSERT_EQ(got.value(), ValueFor(key));
          } else {
            ASSERT_TRUE(got.status().IsNotFound());
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

// Merged counter snapshots after a concurrent phase must satisfy the same
// invariants stats_invariants_test.cc checks for serial phases -- and the
// operation counts must be *exact*, proving no increments were lost.
TEST_P(ConcurrencyTest, MergedSnapshotsSatisfyStatsInvariants) {
  WorkloadSpec write_spec = WorkloadSpec::WriteOnly(6000, 1u << 12);
  write_spec.concurrency = kThreads;
  auto method = MakeSharded();
  ASSERT_NE(method, nullptr);
  Result<RumProfile> writes = WorkloadRunner::Run(method.get(), write_spec);
  ASSERT_TRUE(writes.ok()) << writes.status().ToString();
  const CounterSnapshot& wd = writes.value().delta;
  EXPECT_EQ(wd.inserts, write_spec.operations);
  EXPECT_EQ(wd.logical_bytes_written, write_spec.operations * kEntrySize);
  EXPECT_GE(wd.write_amplification(), 0.999) << GetParam();
  EXPECT_GE(wd.total_space(), method->size() * kEntrySize) << GetParam();

  WorkloadSpec read_spec = WorkloadSpec::ReadOnly(6000, 3000);
  read_spec.concurrency = kThreads;
  auto loaded = MakeSharded();
  ASSERT_NE(loaded, nullptr);
  Result<RumProfile> reads =
      WorkloadRunner::LoadAndRun(loaded.get(), 3000, read_spec);
  ASSERT_TRUE(reads.ok()) << reads.status().ToString();
  const CounterSnapshot& rd = reads.value().delta;
  EXPECT_EQ(rd.point_queries, read_spec.operations);
  EXPECT_GE(rd.read_amplification(), 0.999) << GetParam();
  // A read-only phase writes nothing (no adaptive inners in this tier).
  EXPECT_EQ(rd.total_bytes_written(), 0u) << GetParam();
  EXPECT_GE(rd.space_amplification(), 0.999) << GetParam();
}

// The acceptance bar for deterministic parallel accounting: the same seed
// must produce a byte-identical counter delta across two concurrent runs.
TEST_P(ConcurrencyTest, ConcurrentProfilesAreDeterministic) {
  WorkloadSpec spec;
  spec.operations = 8000;
  spec.key_range = 1u << 12;
  spec.insert_fraction = 0.30;
  spec.update_fraction = 0.20;
  spec.delete_fraction = 0.10;
  spec.scan_fraction = 0;  // Scans cross partitions; see runner.h.
  spec.seed = 0x5EED5EED;
  spec.concurrency = kThreads;

  auto a = MakeSharded();
  auto b = MakeSharded();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  Result<RumProfile> pa = WorkloadRunner::LoadAndRun(a.get(), 1500, spec);
  Result<RumProfile> pb = WorkloadRunner::LoadAndRun(b.get(), 1500, spec);
  ASSERT_TRUE(pa.ok()) << pa.status().ToString();
  ASSERT_TRUE(pb.ok()) << pb.status().ToString();
  const CounterSnapshot& da = pa.value().delta;
  const CounterSnapshot& db = pb.value().delta;
  EXPECT_EQ(da.bytes_read_base, db.bytes_read_base) << GetParam();
  EXPECT_EQ(da.bytes_read_aux, db.bytes_read_aux) << GetParam();
  EXPECT_EQ(da.bytes_written_base, db.bytes_written_base) << GetParam();
  EXPECT_EQ(da.bytes_written_aux, db.bytes_written_aux) << GetParam();
  EXPECT_EQ(da.blocks_read, db.blocks_read) << GetParam();
  EXPECT_EQ(da.blocks_written, db.blocks_written) << GetParam();
  EXPECT_EQ(da.space_base, db.space_base) << GetParam();
  EXPECT_EQ(da.space_aux, db.space_aux) << GetParam();
  EXPECT_EQ(da.logical_bytes_read, db.logical_bytes_read) << GetParam();
  EXPECT_EQ(da.logical_bytes_written, db.logical_bytes_written) << GetParam();
  EXPECT_EQ(da.point_queries, db.point_queries) << GetParam();
  EXPECT_EQ(da.range_queries, db.range_queries) << GetParam();
  EXPECT_EQ(da.inserts, db.inserts) << GetParam();
  EXPECT_EQ(da.updates, db.updates) << GetParam();
  EXPECT_EQ(da.deletes, db.deletes) << GetParam();
}

// Four BTree shards share ONE CachingDevice: pins from different shards
// interleave on the shared LRU while each shard's page set stays disjoint.
// Exercises the documented pin contract under TSan -- pins hold the cache
// lock only for lookup/insert, and eviction skips pinned entries, so a
// small cache forces constant eviction traffic around live pins.
TEST(SharedCacheConcurrencyTest, ShardedBTreePinsOverOneCache) {
  struct Wiring {
    RumCounters counters;
    BlockDevice bottom;
    CachingDevice cache;
    Wiring() : bottom(512, &counters), cache(&bottom, /*capacity_pages=*/32) {}
  };
  auto wiring = std::make_unique<Wiring>();
  Options options = SmallOptions();
  std::vector<std::unique_ptr<AccessMethod>> shards;
  for (int t = 0; t < kThreads; ++t) {
    shards.push_back(std::make_unique<BTree>(options, &wiring->cache));
  }
  ShardedMethod method("sharded-btree-shared-cache", std::move(shards));
  ConcurrentReferenceModel oracle;
  constexpr Key kRangePerThread = 2048;
  constexpr int kOpsPerThread = 3000;

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(0xCAC4E0 + t);
      Key base = static_cast<Key>(t) * kRangePerThread;
      for (int i = 0; i < kOpsPerThread; ++i) {
        Key key = base + rng.NextBelow(kRangePerThread);
        uint64_t dice = rng.NextBelow(100);
        if (dice < 55) {
          Value v = rng.Next();
          ASSERT_TRUE(method.Insert(key, v).ok());
          oracle.Insert(key, v);
        } else if (dice < 75) {
          ASSERT_TRUE(method.Delete(key).ok());
          oracle.Delete(key);
        } else {
          Value expected;
          bool present = oracle.Get(key, &expected);
          Result<Value> got = method.Get(key);
          if (present) {
            ASSERT_TRUE(got.ok()) << "thread " << t << " key " << key;
            ASSERT_EQ(got.value(), expected);
          } else {
            ASSERT_TRUE(got.status().IsNotFound())
                << "thread " << t << " key " << key;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();

  // Quiescence: nothing left pinned, and the cache drains cleanly.
  EXPECT_EQ(wiring->cache.pinned_pages(), 0u);
  ASSERT_TRUE(wiring->cache.FlushAll().ok());
  ASSERT_EQ(method.size(), oracle.quiesced().size());
  Rng spot(0xFACADE);
  for (int i = 0; i < 500; ++i) {
    Key key = spot.NextBelow(kThreads * kRangePerThread);
    ASSERT_TRUE(GetMatchesReference(&method, oracle.quiesced(), key));
  }
}

TEST(ConcurrencyRunnerTest, RejectsUnpartitionedMethods) {
  auto method = MakeAccessMethod("btree", SmallOptions());
  ASSERT_NE(method, nullptr);
  WorkloadSpec spec = WorkloadSpec::Mixed(100, 1024);
  spec.concurrency = 2;
  Result<RumProfile> profile = WorkloadRunner::Run(method.get(), spec);
  EXPECT_EQ(profile.code(), Code::kInvalidArgument);
}

TEST(ConcurrencyRunnerTest, WorkerCountCapsAtPartitions) {
  Options options = SmallOptions();
  options.sharded.shards = 2;
  auto method = MakeAccessMethod("sharded-btree", options);
  ASSERT_NE(method, nullptr);
  WorkloadSpec spec = WorkloadSpec::WriteOnly(1000, 1u << 10);
  spec.concurrency = 8;  // More workers than shards: capped, not wedged.
  Result<RumProfile> profile = WorkloadRunner::Run(method.get(), spec);
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  EXPECT_EQ(profile.value().delta.inserts, spec.operations);
}

// Degraded service under concurrency: four workers over four independently
// faulted shards, ErrorMode::kDegrade. Each worker keeps its own tally
// (including the mutations it withheld after its shard's first failure),
// and for a fixed seed the per-worker tallies and their merge replay
// exactly -- degraded_skips is an accounting quantity, not a race artifact.
TEST(ConcurrencyRunnerTest, DegradedSkipsMergeDeterministicallyAcrossWorkers) {
  constexpr size_t kShards = 4;
  auto run_once = [&](std::vector<ErrorTally>* workers, ErrorTally* merged) {
    struct FaultedWiring {
      RumCounters counters;
      BlockDevice bottom;
      FaultyDevice faulty;
      FaultedWiring() : bottom(512, &counters), faulty(&bottom) {}
    };
    std::vector<std::unique_ptr<FaultedWiring>> wiring;
    std::vector<std::unique_ptr<AccessMethod>> shards;
    Options options = SmallOptions();
    for (size_t s = 0; s < kShards; ++s) {
      wiring.push_back(std::make_unique<FaultedWiring>());
      wiring.back()->faulty.SetPlan(FaultPlan::Transient(0xDE6 + s, 0.0)
                                        .WithRate(FaultOp::kWrite, 0.02)
                                        .WithRate(FaultOp::kAllocate, 0.02));
      shards.push_back(
          std::make_unique<BTree>(options, &wiring.back()->faulty));
    }
    // Declared after `wiring`, so the method dies before its devices.
    ShardedMethod method("sharded-btree-faulted", std::move(shards));

    WorkloadSpec spec;
    spec.operations = 4000;
    spec.key_range = 1u << 12;
    spec.insert_fraction = 0.5;
    spec.update_fraction = 0.1;
    spec.delete_fraction = 0.1;
    spec.scan_fraction = 0;  // Scans cross partitions; see runner.h.
    spec.seed = 0xD16E5;
    spec.concurrency = kShards;
    spec.error_mode = ErrorMode::kDegrade;
    Result<RumProfile> r = WorkloadRunner::Run(&method, spec);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    *workers = r.value().worker_errors;
    *merged = r.value().errors();
  };

  std::vector<ErrorTally> w1, w2;
  ErrorTally m1, m2;
  run_once(&w1, &m1);
  run_once(&w2, &m2);

  ASSERT_EQ(w1.size(), kShards);
  ASSERT_EQ(w2.size(), kShards);
  uint64_t summed_skips = 0;
  for (size_t i = 0; i < kShards; ++i) {
    EXPECT_EQ(w1[i].io_errors, w2[i].io_errors) << "worker " << i;
    EXPECT_EQ(w1[i].corruption, w2[i].corruption) << "worker " << i;
    EXPECT_EQ(w1[i].other, w2[i].other) << "worker " << i;
    EXPECT_EQ(w1[i].degraded_skips, w2[i].degraded_skips) << "worker " << i;
    EXPECT_EQ(w1[i].shed, w2[i].shed) << "worker " << i;
    summed_skips += w1[i].degraded_skips;
  }
  // The storm degraded at least one worker, and the merge is the exact
  // field-wise sum of what the workers saw.
  EXPECT_GT(m1.failed(), 0u);
  EXPECT_GT(m1.degraded_skips, 0u);
  EXPECT_EQ(m1.degraded_skips, summed_skips);
  EXPECT_EQ(m1.degraded_skips, m2.degraded_skips);
  EXPECT_EQ(m1.io_errors, m2.io_errors);
}

INSTANTIATE_TEST_SUITE_P(
    ShardedInners, ConcurrencyTest,
    ::testing::Values("btree", "hash", "skiplist", "lsm-leveled"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace rum

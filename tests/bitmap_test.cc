// Tests for WAH compression and the bitmap index's delta machinery.
#include <set>

#include <gtest/gtest.h>

#include "methods/bitmap/bitmap_index.h"
#include "methods/bitmap/wah.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using testing_util::SmallOptions;

std::vector<uint64_t> Decode(const WahBitmap& bitmap) {
  std::vector<uint64_t> out;
  bitmap.ForEachSetBit([&](uint64_t pos) { out.push_back(pos); });
  return out;
}

TEST(WahBitmapTest, AppendBitRoundTrip) {
  WahBitmap bitmap;
  std::vector<uint64_t> expected;
  Rng rng(9);
  for (uint64_t i = 0; i < 1000; ++i) {
    bool bit = rng.NextBelow(10) == 0;
    bitmap.AppendBit(bit);
    if (bit) expected.push_back(i);
  }
  EXPECT_EQ(Decode(bitmap), expected);
  EXPECT_EQ(bitmap.bit_count(), 1000u);
  EXPECT_EQ(bitmap.set_count(), expected.size());
}

TEST(WahBitmapTest, LongRunsCompressToFills) {
  WahBitmap bitmap;
  bitmap.AppendRun(false, 31 * 1000);
  bitmap.AppendBit(true);
  bitmap.AppendRun(false, 31 * 1000);
  // Two fill words + one literal + partial active word.
  EXPECT_LE(bitmap.word_count(), 4u);
  std::vector<uint64_t> set = Decode(bitmap);
  ASSERT_EQ(set.size(), 1u);
  EXPECT_EQ(set[0], 31u * 1000);
}

TEST(WahBitmapTest, AllOnesRunsCompress) {
  WahBitmap bitmap;
  bitmap.AppendRun(true, 31 * 500);
  EXPECT_LE(bitmap.word_count(), 2u);
  EXPECT_EQ(bitmap.set_count(), 31u * 500);
}

TEST(WahBitmapTest, MixedAppendsMatchReference) {
  WahBitmap bitmap;
  std::vector<uint64_t> expected;
  uint64_t pos = 0;
  Rng rng(77);
  for (int i = 0; i < 200; ++i) {
    if (rng.NextBelow(2) == 0) {
      uint64_t run = rng.NextBelow(100);
      bool bit = rng.NextBelow(4) == 0;
      bitmap.AppendRun(bit, run);
      if (bit) {
        for (uint64_t j = 0; j < run; ++j) expected.push_back(pos + j);
      }
      pos += run;
    } else {
      bool bit = rng.NextBelow(3) == 0;
      bitmap.AppendBit(bit);
      if (bit) expected.push_back(pos);
      ++pos;
    }
  }
  EXPECT_EQ(Decode(bitmap), expected);
  EXPECT_EQ(bitmap.bit_count(), pos);
}

TEST(WahBitmapTest, SparseBitmapsAreTiny) {
  WahBitmap bitmap;
  for (uint64_t i = 0; i < 100000; ++i) {
    bitmap.AppendBit(i % 10000 == 0);  // 10 set bits in 100k.
  }
  // Raw: 12.5 KB. Compressed: tens of bytes.
  EXPECT_LT(bitmap.space_bytes(), 200u);
}

TEST(WahBitmapTest, ClearResets) {
  WahBitmap bitmap;
  bitmap.AppendRun(true, 100);
  bitmap.Clear();
  EXPECT_EQ(bitmap.bit_count(), 0u);
  EXPECT_EQ(bitmap.set_count(), 0u);
  EXPECT_TRUE(Decode(bitmap).empty());
}

TEST(BitmapIndexTest, DeltaModeDefersCompressedWrites) {
  Options options = SmallOptions();
  // With many bins, a direct insert appends a bit to every bin while a
  // delta insert records a single row id.
  options.bitmap.cardinality = 256;
  options.bitmap.update_friendly = true;
  options.bitmap.delta_merge_threshold = 1u << 30;  // Never merge.
  BitmapIndex deferred(options);

  options.bitmap.update_friendly = false;
  BitmapIndex direct(options);

  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    Key k = rng.NextBelow(1u << 15);
    ASSERT_TRUE(deferred.Insert(k, i).ok());
    ASSERT_TRUE(direct.Insert(k, i).ok());
  }
  // Direct mode appends a bit to every bin per insert; delta mode writes
  // one row id.
  EXPECT_LT(deferred.stats().bytes_written_aux,
            direct.stats().bytes_written_aux);
  EXPECT_GT(deferred.pending_deltas(), 0u);
  EXPECT_EQ(direct.pending_deltas(), 0u);
}

TEST(BitmapIndexTest, MergeEmptiesDeltas) {
  Options options = SmallOptions();
  options.bitmap.update_friendly = true;
  options.bitmap.delta_merge_threshold = 100;
  BitmapIndex index(options);
  for (Key k = 0; k < 1000; ++k) {
    ASSERT_TRUE(index.Insert(k * 13 % (1u << 15), k).ok());
  }
  EXPECT_LT(index.pending_deltas(), 100u);  // Merges fired.
}

TEST(BitmapIndexTest, CompressionBeatsRawBits) {
  Options options = SmallOptions();
  options.bitmap.cardinality = 16;
  BitmapIndex index(options);
  std::vector<Entry> entries = MakeSortedEntries(20000, 0, 3);
  ASSERT_TRUE(index.BulkLoad(entries).ok());
  // Raw: 16 bins x 20000 bits = 40 KB. Sorted keys make bins contiguous:
  // WAH crushes them.
  EXPECT_LT(index.compressed_bytes(), 8000u);
}

}  // namespace
}  // namespace rum

// Memory-hierarchy tests (the paper's Figure 2): stacking caches under an
// access method trades space at level n-1 for read overhead at level n.
#include <map>

#include <gtest/gtest.h>

#include "methods/btree/btree.h"
#include "methods/lsm/lsm_tree.h"
#include "storage/block_device.h"
#include "storage/caching_device.h"
#include "tests/testing_util.h"
#include "workload/distribution.h"

namespace rum {
namespace {

using testing_util::SmallOptions;

// Runs a fixed point-query workload on a B+-Tree whose pages sit under an
// LRU cache of `cache_pages` and returns device blocks actually read.
uint64_t DeviceReadsWithCache(size_t cache_pages, uint64_t* cache_bytes) {
  Options options = SmallOptions();
  // Wire explicitly: method counters -> bottom device; cache in between.
  struct Wiring {
    RumCounters counters;
    BlockDevice bottom;
    CachingDevice cache;
    Wiring(size_t block, size_t pages)
        : bottom(block, &counters), cache(&bottom, pages) {}
  };
  static constexpr size_t kBlock = 512;
  auto wiring = std::make_unique<Wiring>(kBlock, cache_pages);

  BTree cached_tree(options, &wiring->cache);
  std::vector<Entry> entries = MakeSortedEntries(20000);
  EXPECT_TRUE(cached_tree.BulkLoad(entries).ok());
  EXPECT_TRUE(wiring->cache.FlushAll().ok());
  wiring->counters.ResetTraffic();
  wiring->cache.ResetLevelStats();

  KeyGenerator keys(KeyDistribution::kZipfian, 20000, 7, 0.99);
  for (int i = 0; i < 3000; ++i) {
    (void)cached_tree.Get(keys.Next());
  }
  *cache_bytes = wiring->cache.level_stats().space_aux;
  // Blocks read at the bottom device = this level's read overhead.
  return wiring->counters.snapshot().blocks_read;
}

TEST(HierarchyTest, GrowingCacheMonotonicallyCutsDeviceReads) {
  uint64_t prev = ~0ULL;
  for (size_t pages : {0u, 16u, 64u, 256u, 1024u}) {
    uint64_t cache_bytes = 0;
    uint64_t reads = DeviceReadsWithCache(pages, &cache_bytes);
    EXPECT_LE(reads, prev) << "cache " << pages << " pages";
    prev = reads;
    if (pages > 0) {
      EXPECT_GT(cache_bytes, 0u);
    }
  }
}

TEST(HierarchyTest, LargeEnoughCacheAbsorbsAlmostEverything) {
  uint64_t cache_bytes = 0;
  uint64_t cold = DeviceReadsWithCache(0, &cache_bytes);
  uint64_t warm = DeviceReadsWithCache(4096, &cache_bytes);
  // With the whole tree cached, device reads collapse to the initial
  // fill (compulsory misses).
  EXPECT_LT(warm, cold / 3);
}

TEST(HierarchyTest, LsmUnderCacheStaysCorrect) {
  // Composition check: a write-heavy differential structure through a
  // write-back cache must stay exactly correct (evictions and FlushAll
  // ordering included).
  RumCounters counters;
  BlockDevice bottom(512, &counters);
  CachingDevice cache(&bottom, 16);
  Options options = SmallOptions();
  LsmTree tree(options, &cache);
  std::map<Key, Value> reference;
  Rng rng(5);
  for (int i = 0; i < 4000; ++i) {
    Key k = rng.NextBelow(1u << 11);
    if (rng.NextBelow(10) < 7) {
      Value v = rng.Next();
      ASSERT_TRUE(tree.Insert(k, v).ok());
      reference[k] = v;
    } else {
      ASSERT_TRUE(tree.Delete(k).ok());
      reference.erase(k);
    }
  }
  ASSERT_TRUE(tree.Flush().ok());
  ASSERT_TRUE(cache.FlushAll().ok());
  std::vector<Entry> all;
  ASSERT_TRUE(tree.Scan(0, 1u << 11, &all).ok());
  ASSERT_EQ(all.size(), reference.size());
  for (const Entry& e : all) {
    auto it = reference.find(e.key);
    ASSERT_NE(it, reference.end()) << e.key;
    ASSERT_EQ(it->second, e.value) << e.key;
  }
  // The cache actually absorbed traffic.
  EXPECT_GT(cache.hits(), 0u);
}

TEST(HierarchyTest, TwoStackedCachesCompose) {
  RumCounters counters;
  BlockDevice bottom(512, &counters);
  CachingDevice l2(&bottom, 64);
  CachingDevice l1(&l2, 8);

  Options options = SmallOptions();
  BTree tree(options, &l1);
  std::vector<Entry> entries = MakeSortedEntries(5000);
  ASSERT_TRUE(tree.BulkLoad(entries).ok());
  ASSERT_TRUE(l1.FlushAll().ok());
  counters.ResetTraffic();
  l1.ResetLevelStats();
  l2.ResetLevelStats();

  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    (void)tree.Get(rng.NextBelow(5000));
  }
  uint64_t l1_hits = l1.hits();
  uint64_t l2_hits = l2.hits();
  uint64_t device_reads = counters.snapshot().blocks_read;
  // Every access is served somewhere, and each level filters the next:
  // whatever misses L2 is exactly what reaches the device.
  EXPECT_GT(l1_hits, 0u);
  EXPECT_GT(l2_hits, 0u);
  EXPECT_GT(device_reads, 0u);
  EXPECT_EQ(device_reads, l2.misses());
  EXPECT_EQ(l2_hits + l2.misses(), l1.misses());
}

}  // namespace
}  // namespace rum

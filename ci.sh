#!/usr/bin/env bash
# rumlab CI: the tier-1 suite in Release, then the same suite under
# AddressSanitizer, then the concurrency tier under ThreadSanitizer.
#
#   ./ci.sh            # all three stages
#   ./ci.sh release    # just the Release build + tests
#   ./ci.sh asan       # just the ASan build + tests
#   ./ci.sh tsan       # just the TSan build + concurrency tier
#
# The TSan stage runs the concurrency and differential tests by default
# (TSan's ~10x slowdown makes the full suite take tens of minutes); set
# RUMLAB_CI_FULL_TSAN=1 to run everything under TSan as well.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
STAGE="${1:-all}"
case "${STAGE}" in
  all|release|asan|tsan) ;;
  *)
    echo "usage: $0 [all|release|asan|tsan]" >&2
    exit 2
    ;;
esac

run_stage() {
  local name="$1" build_dir="$2" sanitize="$3" test_filter="$4"
  echo "=== ${name}: configure + build (${build_dir}) ==="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE="${5}" \
    -DRUMLAB_SANITIZE="${sanitize}"
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  (cd "${build_dir}" && ctest --output-on-failure -j "${JOBS}" ${test_filter})
}

if [[ "${STAGE}" == "all" || "${STAGE}" == "release" ]]; then
  run_stage "release" "build-ci" "" "" "Release"
  # The saturation tier is re-run with an explicit ctest timeout: these
  # tests drive open-loop overload through the request scheduler, and a
  # scheduler bug that stalls the virtual clock (a batch that never
  # dispatches, a ledger that never closes) would otherwise hang ctest
  # instead of failing it.
  echo "=== release: saturation tier (explicit, with timeout) ==="
  (cd build-ci && ctest --output-on-failure --timeout 120 -R saturation_test)
  # The memory-arbiter tier is re-run explicitly: its differential cases
  # (enabled=false byte-identical to static; a never-replanning arbiter
  # byte-identical to the unarbitrated twin) and the A10 acceptance case
  # (arbitrated budget beats every static split, shares migrating with the
  # phases) are the PR's contract, and a filtered config must never drop
  # them silently.
  echo "=== release: memory-arbiter tier (explicit) ==="
  (cd build-ci && ctest --output-on-failure -R memory_arbiter_test)
  echo "=== release: machine-readable bench smoke ==="
  # The two JSON-emitting benches must run and produce parseable output; no
  # thresholds are enforced here (wall-clock is not comparable across CI
  # hosts), only the schema contract.
  (cd build-ci/bench &&
    ./bench_wallclock --benchmark_filter='(Get|Insert)/(btree|lsm-leveled)$' \
      --benchmark_min_time=0.02 >/dev/null &&
    ./bench_concurrency --smoke >/dev/null &&
    python3 -m json.tool BENCH_wallclock.json >/dev/null &&
    python3 -m json.tool BENCH_concurrency.json >/dev/null &&
    echo "BENCH_wallclock.json + BENCH_concurrency.json parse OK")
  # Disabled-layers overhead guard: with tracing, metrics, AND the service
  # layer off (all defaults), the Get path must stay within 3% (geomean) of
  # the committed BENCH_wallclock.json baseline. This is what makes
  # "tracing is cheap when disabled" and "Options::service.enabled=false is
  # a true no-op" enforced contracts rather than comments. Wall-clock
  # baselines are host-specific: set RUMLAB_SKIP_BENCH_GUARD=1 on hosts
  # that did not produce the committed baseline, and refresh the baseline
  # (run bench_wallclock, commit the JSON) when it moves for a good reason.
  if [[ "${RUMLAB_SKIP_BENCH_GUARD:-0}" == "1" ]]; then
    echo "=== release: bench guard skipped (RUMLAB_SKIP_BENCH_GUARD=1) ==="
  else
    echo "=== release: disabled-Get-path guard (<3%: observability AND scheduler off) ==="
    # Three passes, per-benchmark minimum: wall clock on a shared host
    # swings +-8% with transient load, and the *floor* over a few runs is
    # the stable estimator. One slow pass must not fail the guard.
    (cd build-ci/bench &&
      for pass in 1 2 3; do
        ./bench_wallclock --benchmark_filter='^Get/' \
          --benchmark_min_time=0.25 \
          --benchmark_out="BENCH_wallclock_guard${pass}.json" \
          --benchmark_out_format=json >/dev/null
      done)
    python3 - BENCH_wallclock.json \
        build-ci/bench/BENCH_wallclock_guard1.json \
        build-ci/bench/BENCH_wallclock_guard2.json \
        build-ci/bench/BENCH_wallclock_guard3.json <<'PYEOF'
import json, math, sys
baseline_path, fresh_paths = sys.argv[1], sys.argv[2:]
def get_times(path):
    with open(path) as f:
        doc = json.load(f)
    return {b["name"]: b["real_time"] for b in doc.get("benchmarks", [])
            if b["name"].startswith("Get/") and b.get("real_time")}
runs = [get_times(p) for p in fresh_paths]
fresh = {name: min(r[name] for r in runs)
         for name in set.intersection(*(set(r) for r in runs))}
baseline = get_times(baseline_path)
shared = sorted(set(fresh) & set(baseline))
if not shared:
    sys.exit("bench guard: no shared Get/ benchmarks between fresh run "
             "and committed baseline")
log_sum = 0.0
for name in shared:
    ratio = fresh[name] / baseline[name]
    log_sum += math.log(ratio)
    print(f"  {name:<24} {ratio:6.3f}x")
geomean = math.exp(log_sum / len(shared))
print(f"  geomean over {len(shared)} Get benchmarks: {geomean:.4f}x "
      f"(limit 1.03)")
if geomean > 1.03:
    sys.exit("bench guard FAILED: disabled-observability Get path "
             f"regressed {100 * (geomean - 1):.1f}% vs baseline")
print("bench guard OK")
PYEOF
    # Scan-path guard: the one-seek range scan (cross-run index + k-way
    # merge) must not regress either -- same 3-pass floor estimator, same
    # 3% geomean limit, over the Scan/ScanHot families on the structures
    # the refactor touched plus the sorted ideal.
    echo "=== release: Scan-path guard (<3%) ==="
    (cd build-ci/bench &&
      for pass in 1 2 3; do
        ./bench_wallclock \
          --benchmark_filter='^Scan(16|128|4K)/(btree|lsm-leveled|lsm-tiered|sorted-column)$|^ScanHot' \
          --benchmark_min_time=0.25 \
          --benchmark_out="BENCH_scan_guard${pass}.json" \
          --benchmark_out_format=json >/dev/null
      done)
    python3 - BENCH_wallclock.json \
        build-ci/bench/BENCH_scan_guard1.json \
        build-ci/bench/BENCH_scan_guard2.json \
        build-ci/bench/BENCH_scan_guard3.json <<'PYEOF'
import json, math, sys
baseline_path, fresh_paths = sys.argv[1], sys.argv[2:]
def get_times(path):
    with open(path) as f:
        doc = json.load(f)
    return {b["name"]: b["real_time"] for b in doc.get("benchmarks", [])
            if b["name"].startswith("Scan") and b.get("real_time")}
runs = [get_times(p) for p in fresh_paths]
fresh = {name: min(r[name] for r in runs)
         for name in set.intersection(*(set(r) for r in runs))}
baseline = get_times(baseline_path)
shared = sorted(set(fresh) & set(baseline))
if not shared:
    sys.exit("scan guard: no shared Scan benchmarks between fresh run "
             "and committed baseline")
log_sum = 0.0
for name in shared:
    ratio = fresh[name] / baseline[name]
    log_sum += math.log(ratio)
    print(f"  {name:<32} {ratio:6.3f}x")
geomean = math.exp(log_sum / len(shared))
print(f"  geomean over {len(shared)} Scan benchmarks: {geomean:.4f}x "
      f"(limit 1.03)")
if geomean > 1.03:
    sys.exit("scan guard FAILED: Scan path regressed "
             f"{100 * (geomean - 1):.1f}% vs baseline")
print("scan guard OK")
PYEOF
  fi
fi

if [[ "${STAGE}" == "all" || "${STAGE}" == "asan" ]]; then
  # pin_parity_test runs inside the full ASan ctest sweep below, but is also
  # named explicitly so a filtered/parallel config can never silently drop
  # the accounting-parity gate for the zero-copy pin path.
  run_stage "asan" "build-asan" "address" "" "Debug"
  echo "=== asan: pin parity (explicit) ==="
  (cd build-asan && ctest --output-on-failure -R pin_parity_test)
  # The chaos tier is likewise named explicitly: every factory method under
  # seeded fault plans must answer exactly or with an explicit error Status,
  # and ChaosTest.SameSeedReplaysIdenticalErrorTallies is the deterministic
  # replay gate (same fault seed => byte-identical error and RUM tallies).
  echo "=== asan: chaos tier (explicit) ==="
  (cd build-asan && ctest --output-on-failure -R chaos_test)
  # The scan differential tier is named explicitly: the cross-run index's
  # byte-identical-to-fallback contract (every policy, every range shape,
  # tombstones, compressed runs, post-crash) must hold with ASan watching
  # the cursor/segment machinery.
  echo "=== asan: scan differential tier (explicit) ==="
  (cd build-asan && ctest --output-on-failure -R scan_differential_test)
  # The observability tier is named explicitly too: ring wraparound, drain,
  # and the event-counts-match-device-counters acceptance contract must hold
  # with ASan watching the ring and registry memory.
  echo "=== asan: trace tier (explicit) ==="
  (cd build-asan && ctest --output-on-failure -R trace_test)
  # The compaction-policy tier (every policy differential against the
  # std::map oracle + structural invariants after every flush) and the
  # cost-model validation (predicted vs measured amplifications within
  # tolerance) are named explicitly so the policy/merge machinery always
  # runs with ASan watching the run-shuffling unique_ptr moves.
  echo "=== asan: compaction policy + cost model tiers (explicit) ==="
  (cd build-asan &&
    ctest --output-on-failure -R "compaction_policy_test|cost_model_test")
  # The saturation tier is named explicitly: the scheduler's queue churn
  # (deque pops, batch vectors, coalescing scratch) and the admission
  # controllers must hold their exact ledgers with ASan watching, and the
  # virtual clock keeps the queueing dynamics identical to the Release run.
  echo "=== asan: saturation tier (explicit, with timeout) ==="
  (cd build-asan && ctest --output-on-failure --timeout 300 -R saturation_test)
  # The memory-arbiter tier runs under ASan with the live-resize machinery
  # watched: SetCapacity trims evict real pages, filter rebuilds swap real
  # bloom blocks, and the ledger tests walk every footprint term.
  echo "=== asan: memory-arbiter tier (explicit) ==="
  (cd build-asan && ctest --output-on-failure -R memory_arbiter_test)
fi

if [[ "${STAGE}" == "all" || "${STAGE}" == "tsan" ]]; then
  # chaos_test rides in the TSan tier for its concurrent case: sharded
  # methods hammering one shared FaultyDevice + CachingDevice stack while
  # faults inject, with per-worker error tallies absorbing the failures.
  # trace_test rides along for concurrent trace emission: four workers
  # appending to per-thread rings while drawing the shared sequence number.
  # compaction_policy_test rides in the TSan tier too: the chaos tier's
  # concurrent case exercises lsm-lazy/lsm-hybrid merges under sharding,
  # and the differential tier keeps the policy oracle checks in the sweep.
  # scan_differential_test is listed explicitly (the differential_test
  # pattern would match it as a substring, but the dependence should not
  # be load-bearing).
  # saturation_test rides in the TSan tier for the closed-loop front door:
  # ScheduledMethod's mutex-guarded bookkeeping around unlocked inner calls
  # is exactly the shape TSan exists to check.
  # memory_arbiter_test rides along for the arbiter's lock discipline: the
  # lock-free epoch clock, the replan's arbiter-mutex -> component-atomics
  # ordering, and the pool registration/unregistration paths.
  TSAN_FILTER="-R concurrency_test|differential_test|scan_differential_test|chaos_test|trace_test|compaction_policy_test|saturation_test|memory_arbiter_test"
  if [[ "${RUMLAB_CI_FULL_TSAN:-0}" == "1" ]]; then
    TSAN_FILTER=""
  fi
  run_stage "tsan" "build-tsan" "thread" "${TSAN_FILTER}" "Debug"
fi

echo "=== ci.sh: all requested stages passed ==="

#!/usr/bin/env bash
# rumlab CI: the tier-1 suite in Release, then the same suite under
# AddressSanitizer, then the concurrency tier under ThreadSanitizer.
#
#   ./ci.sh            # all three stages
#   ./ci.sh release    # just the Release build + tests
#   ./ci.sh asan       # just the ASan build + tests
#   ./ci.sh tsan       # just the TSan build + concurrency tier
#
# The TSan stage runs the concurrency and differential tests by default
# (TSan's ~10x slowdown makes the full suite take tens of minutes); set
# RUMLAB_CI_FULL_TSAN=1 to run everything under TSan as well.
set -euo pipefail
cd "$(dirname "$0")"

JOBS="${JOBS:-$(nproc 2>/dev/null || echo 4)}"
STAGE="${1:-all}"
case "${STAGE}" in
  all|release|asan|tsan) ;;
  *)
    echo "usage: $0 [all|release|asan|tsan]" >&2
    exit 2
    ;;
esac

run_stage() {
  local name="$1" build_dir="$2" sanitize="$3" test_filter="$4"
  echo "=== ${name}: configure + build (${build_dir}) ==="
  cmake -B "${build_dir}" -S . \
    -DCMAKE_BUILD_TYPE="${5}" \
    -DRUMLAB_SANITIZE="${sanitize}"
  cmake --build "${build_dir}" -j "${JOBS}"
  echo "=== ${name}: ctest ==="
  (cd "${build_dir}" && ctest --output-on-failure -j "${JOBS}" ${test_filter})
}

if [[ "${STAGE}" == "all" || "${STAGE}" == "release" ]]; then
  run_stage "release" "build-ci" "" "" "Release"
  echo "=== release: machine-readable bench smoke ==="
  # The two JSON-emitting benches must run and produce parseable output; no
  # thresholds are enforced here (wall-clock is not comparable across CI
  # hosts), only the schema contract.
  (cd build-ci/bench &&
    ./bench_wallclock --benchmark_filter='(Get|Insert)/(btree|lsm-leveled)$' \
      --benchmark_min_time=0.02 >/dev/null &&
    ./bench_concurrency --smoke >/dev/null &&
    python3 -m json.tool BENCH_wallclock.json >/dev/null &&
    python3 -m json.tool BENCH_concurrency.json >/dev/null &&
    echo "BENCH_wallclock.json + BENCH_concurrency.json parse OK")
fi

if [[ "${STAGE}" == "all" || "${STAGE}" == "asan" ]]; then
  # pin_parity_test runs inside the full ASan ctest sweep below, but is also
  # named explicitly so a filtered/parallel config can never silently drop
  # the accounting-parity gate for the zero-copy pin path.
  run_stage "asan" "build-asan" "address" "" "Debug"
  echo "=== asan: pin parity (explicit) ==="
  (cd build-asan && ctest --output-on-failure -R pin_parity_test)
  # The chaos tier is likewise named explicitly: every factory method under
  # seeded fault plans must answer exactly or with an explicit error Status,
  # and ChaosTest.SameSeedReplaysIdenticalErrorTallies is the deterministic
  # replay gate (same fault seed => byte-identical error and RUM tallies).
  echo "=== asan: chaos tier (explicit) ==="
  (cd build-asan && ctest --output-on-failure -R chaos_test)
fi

if [[ "${STAGE}" == "all" || "${STAGE}" == "tsan" ]]; then
  # chaos_test rides in the TSan tier for its concurrent case: sharded
  # methods hammering one shared FaultyDevice + CachingDevice stack while
  # faults inject, with per-worker error tallies absorbing the failures.
  TSAN_FILTER="-R concurrency_test|differential_test|chaos_test"
  if [[ "${RUMLAB_CI_FULL_TSAN:-0}" == "1" ]]; then
    TSAN_FILTER=""
  fi
  run_stage "tsan" "build-tsan" "thread" "${TSAN_FILTER}" "Debug"
fi

echo "=== ci.sh: all requested stages passed ==="

#include "workload/distribution.h"

#include <cassert>
#include <cmath>

namespace rum {

uint64_t Rng::Next() {
  state_ ^= state_ >> 12;
  state_ ^= state_ << 25;
  state_ ^= state_ >> 27;
  return state_ * 0x2545F4914F6CDD1DULL;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  return Next() % bound;
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) /
         static_cast<double>(1ULL << 53);
}

namespace {
double Zeta(uint64_t n, double theta) {
  double sum = 0;
  for (uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}
}  // namespace

KeyGenerator::KeyGenerator(KeyDistribution distribution, Key key_range,
                           uint64_t seed, double theta)
    : distribution_(distribution),
      key_range_(key_range),
      rng_(seed),
      theta_(theta) {
  assert(key_range_ > 0);
  if (distribution_ == KeyDistribution::kZipfian) {
    // Cap the harmonic precomputation; beyond this the tail contributes
    // negligibly and we fold larger ranges onto the precomputed prefix.
    uint64_t n = key_range_;
    if (n > (1u << 22)) n = 1u << 22;
    zipf_n_ = n;
    zetan_ = Zeta(n, theta_);
    zeta2_ = Zeta(2, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
  }
}

Key KeyGenerator::NextZipfian() {
  // Gray et al., "Quickly generating billion-record synthetic databases".
  double u = rng_.NextDouble();
  double uz = u * zetan_;
  uint64_t n = zipf_n_;
  uint64_t rank;
  if (uz < 1.0) {
    rank = 0;
  } else if (uz < 1.0 + std::pow(0.5, theta_)) {
    rank = 1;
  } else {
    rank = static_cast<uint64_t>(
        static_cast<double>(n) *
        std::pow(eta_ * u - eta_ + 1.0, alpha_));
    if (rank >= n) rank = n - 1;
  }
  // Scatter ranks over the key range so hot keys are not clustered.
  return (rank * 0x9E3779B97F4A7C15ULL) % key_range_;
}

Key KeyGenerator::Next() {
  switch (distribution_) {
    case KeyDistribution::kUniform:
      return rng_.NextBelow(key_range_);
    case KeyDistribution::kZipfian:
      return NextZipfian();
    case KeyDistribution::kSequential: {
      Key k = cursor_;
      cursor_ = (cursor_ + 1) % key_range_;
      return k;
    }
    case KeyDistribution::kClustered: {
      // 1/64th-of-range window that slides forward.
      Key window = key_range_ / 64 + 1;
      Key base = cursor_;
      cursor_ = (cursor_ + window / 16 + 1) % key_range_;
      return (base + rng_.NextBelow(window)) % key_range_;
    }
  }
  return 0;
}

std::vector<Entry> MakeSortedEntries(size_t n, Key first, Key stride) {
  std::vector<Entry> entries;
  entries.reserve(n);
  Key k = first;
  for (size_t i = 0; i < n; ++i) {
    entries.push_back(Entry{k, ValueFor(k)});
    k += stride;
  }
  return entries;
}

Value ValueFor(Key key) { return key * 0x100000001B3ULL + 0xCBF29CE4ULL; }

}  // namespace rum

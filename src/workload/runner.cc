#include "workload/runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "workload/distribution.h"

namespace rum {

CostPercentiles CostPercentiles::From(std::vector<uint64_t> samples) {
  CostPercentiles out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    size_t idx = static_cast<size_t>(q * static_cast<double>(samples.size()));
    if (idx >= samples.size()) idx = samples.size() - 1;
    return samples[idx];
  };
  out.p50 = at(0.50);
  out.p95 = at(0.95);
  out.p99 = at(0.99);
  out.max = samples.back();
  return out;
}

void ErrorTally::Count(const Status& s) {
  switch (s.code()) {
    case Code::kIOError:
      ++io_errors;
      break;
    case Code::kCorruption:
      ++corruption;
      break;
    case Code::kResourceExhausted:
      // Service-layer admission control refused the request before storage
      // was touched (ScheduledMethod / RequestScheduler shed).
      ++shed;
      break;
    default:
      ++other;
      break;
  }
}

ErrorTally& ErrorTally::operator+=(const ErrorTally& o) {
  io_errors += o.io_errors;
  corruption += o.corruption;
  other += o.other;
  degraded_skips += o.degraded_skips;
  shed += o.shed;
  return *this;
}

std::string ErrorTally::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "io=%llu corruption=%llu other=%llu degraded_skips=%llu "
                "shed=%llu",
                static_cast<unsigned long long>(io_errors),
                static_cast<unsigned long long>(corruption),
                static_cast<unsigned long long>(other),
                static_cast<unsigned long long>(degraded_skips),
                static_cast<unsigned long long>(shed));
  return std::string(buf);
}

void OpLatencies::Merge(const OpLatencies& o) {
  point.Merge(o.point);
  scan.Merge(o.scan);
  insert.Merge(o.insert);
  update.Merge(o.update);
  erase.Merge(o.erase);
}

LatencyHistogram OpLatencies::Total() const {
  LatencyHistogram all;
  all.Merge(point);
  all.Merge(scan);
  all.Merge(insert);
  all.Merge(update);
  all.Merge(erase);
  return all;
}

std::string OpLatencies::ToJson() const {
  std::string out = "{\"point\":" + point.ToJson();
  out += ",\"scan\":" + scan.ToJson();
  out += ",\"insert\":" + insert.ToJson();
  out += ",\"update\":" + update.ToJson();
  out += ",\"delete\":" + erase.ToJson();
  out += "}";
  return out;
}

ErrorTally RumProfile::errors() const {
  ErrorTally merged;
  for (const ErrorTally& t : worker_errors) merged += t;
  return merged;
}

double RumProfile::bytes_read_per_op() const {
  uint64_t ops = delta.point_queries + delta.range_queries + delta.inserts +
                 delta.updates + delta.deletes;
  return ops == 0 ? 0.0
                  : static_cast<double>(delta.total_bytes_read()) /
                        static_cast<double>(ops);
}

double RumProfile::bytes_written_per_op() const {
  uint64_t ops = delta.point_queries + delta.range_queries + delta.inserts +
                 delta.updates + delta.deletes;
  return ops == 0 ? 0.0
                  : static_cast<double>(delta.total_bytes_written()) /
                        static_cast<double>(ops);
}

std::string RumProfile::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "%-16s RO=%8.2f UO=%8.2f MO=%8.3f  read/op=%10.1fB "
                "write/op=%10.1fB  (%.3fs)",
                method.c_str(), point.read_overhead, point.update_overhead,
                point.memory_overhead, bytes_read_per_op(),
                bytes_written_per_op(), wall_seconds);
  return std::string(buf);
}

namespace {

/// SplitMix64 finalizer, used to derive independent per-worker seed streams
/// from (spec.seed, worker index) without correlation between workers.
uint64_t SplitMix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

Key ScanWidthFor(const WorkloadSpec& spec) {
  Key width = static_cast<Key>(static_cast<double>(spec.key_range) *
                               spec.scan_selectivity);
  return width == 0 ? 1 : width;
}

/// Executes one operation of the spec's mix against `method`. `dice` picks
/// the operation, `key` its target. Tolerates the same benign statuses the
/// serial runner always has (kOutOfRange for bounded-domain methods,
/// kNotFound for point-query misses).
Status ExecuteOne(AccessMethod* method, const WorkloadSpec& spec, double dice,
                  Key key, Key scan_width, Rng* value_rng,
                  std::vector<Entry>* scan_buffer) {
  if (dice < spec.insert_fraction) {
    Status s = method->Insert(key, value_rng->Next());
    if (!s.ok() && s.code() != Code::kOutOfRange) return s;
  } else if (dice < spec.insert_fraction + spec.update_fraction) {
    Status s = method->Update(key, value_rng->Next());
    if (!s.ok() && s.code() != Code::kOutOfRange) return s;
  } else if (dice < spec.insert_fraction + spec.update_fraction +
                        spec.delete_fraction) {
    Status s = method->Delete(key);
    if (!s.ok() && s.code() != Code::kOutOfRange) return s;
  } else if (dice < spec.insert_fraction + spec.update_fraction +
                        spec.delete_fraction + spec.scan_fraction) {
    Key hi = key > kMaxKey - scan_width ? kMaxKey : key + scan_width;
    scan_buffer->clear();
    Status s = method->Scan(key, hi, scan_buffer);
    if (!s.ok()) return s;
  } else {
    Result<Value> r = method->Get(key);
    if (!r.ok() && r.code() != Code::kNotFound &&
        r.code() != Code::kOutOfRange) {
      return r.status();
    }
  }
  return Status::OK();
}

/// True when `dice` selects a mutation (insert/update/delete) in the mix.
bool IsMutation(const WorkloadSpec& spec, double dice) {
  return dice <
         spec.insert_fraction + spec.update_fraction + spec.delete_fraction;
}

/// The latency histogram for the op class `dice` selects -- the same
/// thresholds ExecuteOne uses to dispatch.
LatencyHistogram* ClassHistogram(OpLatencies* lat, const WorkloadSpec& spec,
                                 double dice) {
  if (dice < spec.insert_fraction) return &lat->insert;
  if (dice < spec.insert_fraction + spec.update_fraction) return &lat->update;
  if (dice < spec.insert_fraction + spec.update_fraction +
                 spec.delete_fraction) {
    return &lat->erase;
  }
  if (dice < spec.insert_fraction + spec.update_fraction +
                 spec.delete_fraction + spec.scan_fraction) {
    return &lat->scan;
  }
  return &lat->point;
}

/// ExecuteOne wrapped in the spec's error policy. Returns non-OK only when
/// the phase must abort; otherwise failures land in `tally` (and, under
/// kDegrade, flip `degraded`, after which mutations are withheld).
Status ExecuteOnePolicied(AccessMethod* method, const WorkloadSpec& spec,
                          double dice, Key key, Key scan_width,
                          Rng* value_rng, std::vector<Entry>* scan_buffer,
                          ErrorTally* tally, bool* degraded) {
  if (spec.error_mode == ErrorMode::kDegrade && *degraded &&
      IsMutation(spec, dice)) {
    ++tally->degraded_skips;
    return Status::OK();
  }
  Status s =
      ExecuteOne(method, spec, dice, key, scan_width, value_rng, scan_buffer);
  if (s.ok() || spec.error_mode == ErrorMode::kAbort) return s;
  tally->Count(s);
  // A service-layer shed (kResourceExhausted) is transient overload, not
  // structural damage: it never flips degraded service.
  if (spec.error_mode == ErrorMode::kDegrade &&
      s.code() != Code::kResourceExhausted) {
    *degraded = true;
  }
  return Status::OK();
}

/// The classic single-threaded phase, with per-op cost sampling.
Result<RumProfile> RunSerial(AccessMethod* method, const WorkloadSpec& spec) {
  KeyGenerator keys(spec.distribution, spec.key_range, spec.seed + 1,
                    spec.zipf_theta);
  Rng op_rng(spec.seed + 2);
  Rng value_rng(spec.seed + 3);

  CounterSnapshot before = method->stats();
  auto start = std::chrono::steady_clock::now();

  Key scan_width = ScanWidthFor(spec);

  std::vector<uint64_t> read_samples;
  std::vector<uint64_t> write_samples;
  read_samples.reserve(spec.operations);
  write_samples.reserve(spec.operations);
  // Sample per-op costs from the thread-local traffic tally: two plain
  // reads per op, independent of the method's shape. The old path called
  // method->stats() per op, which for ShardedMethod locks and merges every
  // shard -- O(shards) mutex acquisitions per operation (trace_test pins
  // the fixed behavior via the sharded_method.stats_merges metric).
  const ThreadIoTally& io = ThisThreadIo();
  uint64_t last_read = io.bytes_read;
  uint64_t last_written = io.bytes_written;

  OpLatencies latency;
  ErrorTally tally;
  bool degraded = false;
  std::vector<Entry> scan_buffer;
  for (uint64_t i = 0; i < spec.operations; ++i) {
    double dice = op_rng.NextDouble();
    Key key = keys.Next();
    auto op_start = std::chrono::steady_clock::now();
    Status s =
        ExecuteOnePolicied(method, spec, dice, key, scan_width, &value_rng,
                           &scan_buffer, &tally, &degraded);
    auto op_end = std::chrono::steady_clock::now();
    if (!s.ok()) return s;
    ClassHistogram(&latency, spec, dice)
        ->Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(op_end -
                                                                 op_start)
                .count()));
    read_samples.push_back(io.bytes_read - last_read);
    write_samples.push_back(io.bytes_written - last_written);
    last_read = io.bytes_read;
    last_written = io.bytes_written;
  }

  auto end = std::chrono::steady_clock::now();
  RumProfile profile;
  profile.method = std::string(method->name());
  profile.spec = spec;
  profile.delta = method->stats() - before;
  profile.point = RumPoint::FromSnapshot(profile.delta);
  profile.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  profile.read_cost = CostPercentiles::From(std::move(read_samples));
  profile.write_cost = CostPercentiles::From(std::move(write_samples));
  profile.latency = latency;
  if (spec.error_mode != ErrorMode::kAbort) {
    profile.worker_errors.push_back(tally);
  }
  return profile;
}

/// One worker's slice of a concurrent phase. The worker owns partitions
/// {p : p % workers == t} and draws keys by rejection sampling until one
/// lands in an owned partition -- so each partition is driven by exactly
/// one thread in a deterministic order, which is what makes the merged
/// counter delta reproducible. (Scans still fan out to every partition;
/// with scan_fraction > 0 contents stay exact but physical read traffic
/// depends on interleaving.)
Status RunWorker(AccessMethod* method, const WorkloadSpec& spec,
                 const KeyPartitioned* parts, uint32_t workers, uint32_t t,
                 ErrorTally* tally, OpLatencies* latency,
                 std::vector<uint64_t>* read_samples,
                 std::vector<uint64_t>* write_samples) {
  uint64_t ops = spec.operations / workers +
                 (t < spec.operations % workers ? 1 : 0);
  uint64_t worker_seed = SplitMix64(spec.seed ^ SplitMix64(t + 1));
  KeyGenerator keys(spec.distribution, spec.key_range, worker_seed + 1,
                    spec.zipf_theta);
  Rng op_rng(worker_seed + 2);
  Rng value_rng(worker_seed + 3);
  Key scan_width = ScanWidthFor(spec);

  auto next_owned_key = [&]() {
    // With P >= workers partitions roughly workers draws land one in an
    // owned partition; the cap only guards against pathological hashes.
    for (int attempt = 0; attempt < 4096; ++attempt) {
      Key key = keys.Next();
      if (parts->PartitionOf(key) % workers == t) return key;
    }
    return keys.Next();
  };

  // This worker's thread-local tally: deltas capture exactly the bytes this
  // thread charged during the op, no cross-thread probes, no locks.
  const ThreadIoTally& io = ThisThreadIo();
  uint64_t last_read = io.bytes_read;
  uint64_t last_written = io.bytes_written;
  read_samples->reserve(ops);
  write_samples->reserve(ops);

  bool degraded = false;
  std::vector<Entry> scan_buffer;
  for (uint64_t i = 0; i < ops; ++i) {
    double dice = op_rng.NextDouble();
    Key key = next_owned_key();
    auto op_start = std::chrono::steady_clock::now();
    Status s = ExecuteOnePolicied(method, spec, dice, key, scan_width,
                                  &value_rng, &scan_buffer, tally, &degraded);
    auto op_end = std::chrono::steady_clock::now();
    if (!s.ok()) return s;
    ClassHistogram(latency, spec, dice)
        ->Record(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(op_end -
                                                                 op_start)
                .count()));
    read_samples->push_back(io.bytes_read - last_read);
    write_samples->push_back(io.bytes_written - last_written);
    last_read = io.bytes_read;
    last_written = io.bytes_written;
  }
  return Status::OK();
}

/// Concurrent phase: a worker pool over a partition-aware method. Each
/// worker samples per-op costs from its own thread-local tally and records
/// latencies into a private OpLatencies; the join is the happens-before
/// edge under which everything merges exactly.
Result<RumProfile> RunConcurrent(AccessMethod* method,
                                 const WorkloadSpec& spec) {
  const auto* parts = dynamic_cast<const KeyPartitioned*>(method);
  if (parts == nullptr) {
    return Status::InvalidArgument(
        "concurrency > 1 requires a partition-aware method "
        "(e.g. sharded-*); " +
        std::string(method->name()) + " is not");
  }
  uint32_t workers = spec.concurrency;
  if (parts->partitions() < workers) {
    // More workers than partitions would leave some with nothing to own.
    workers = static_cast<uint32_t>(parts->partitions());
  }

  CounterSnapshot before = method->stats();
  auto start = std::chrono::steady_clock::now();

  std::vector<Status> statuses(workers, Status::OK());
  std::vector<ErrorTally> tallies(workers);
  std::vector<OpLatencies> latencies(workers);
  std::vector<std::vector<uint64_t>> read_samples(workers);
  std::vector<std::vector<uint64_t>> write_samples(workers);
  {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (uint32_t t = 0; t < workers; ++t) {
      pool.emplace_back([method, &spec, parts, workers, t, &statuses,
                         &tallies, &latencies, &read_samples,
                         &write_samples] {
        statuses[t] =
            RunWorker(method, spec, parts, workers, t, &tallies[t],
                      &latencies[t], &read_samples[t], &write_samples[t]);
      });
    }
    for (std::thread& worker : pool) worker.join();
  }
  // The joins above are the happens-before edge that makes the merged
  // counter snapshot below exact.
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }

  auto end = std::chrono::steady_clock::now();
  RumProfile profile;
  profile.method = std::string(method->name());
  profile.spec = spec;
  profile.delta = method->stats() - before;
  profile.point = RumPoint::FromSnapshot(profile.delta);
  profile.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  std::vector<uint64_t> all_reads;
  std::vector<uint64_t> all_writes;
  for (uint32_t t = 0; t < workers; ++t) {
    profile.latency.Merge(latencies[t]);
    all_reads.insert(all_reads.end(), read_samples[t].begin(),
                     read_samples[t].end());
    all_writes.insert(all_writes.end(), write_samples[t].begin(),
                      write_samples[t].end());
  }
  profile.read_cost = CostPercentiles::From(std::move(all_reads));
  profile.write_cost = CostPercentiles::From(std::move(all_writes));
  if (spec.error_mode != ErrorMode::kAbort) {
    profile.worker_errors = std::move(tallies);
  }
  return profile;
}

}  // namespace

Result<RumProfile> WorkloadRunner::Run(AccessMethod* method,
                                       const WorkloadSpec& spec) {
  if (spec.concurrency > 1) return RunConcurrent(method, spec);
  return RunSerial(method, spec);
}

Result<RumProfile> WorkloadRunner::Run(AccessMethod* method,
                                       const WorkloadSpec& spec,
                                       MemoryRegistrar* registrar) {
  Result<RumProfile> profile = Run(method, spec);
  if (profile.ok() && registrar != nullptr) {
    profile.value().memory_split = registrar->split();
  }
  return profile;
}

Result<RumProfile> WorkloadRunner::LoadAndRun(AccessMethod* method, size_t n,
                                              const WorkloadSpec& spec) {
  std::vector<Entry> entries = MakeSortedEntries(n);
  Status s = method->BulkLoad(entries);
  if (!s.ok()) return s;
  s = method->Flush();
  if (!s.ok()) return s;
  method->ResetStats();
  return Run(method, spec);
}

}  // namespace rum

#include "workload/runner.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "workload/distribution.h"

namespace rum {

CostPercentiles CostPercentiles::From(std::vector<uint64_t> samples) {
  CostPercentiles out;
  if (samples.empty()) return out;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    size_t idx = static_cast<size_t>(q * static_cast<double>(samples.size()));
    if (idx >= samples.size()) idx = samples.size() - 1;
    return samples[idx];
  };
  out.p50 = at(0.50);
  out.p95 = at(0.95);
  out.p99 = at(0.99);
  out.max = samples.back();
  return out;
}

double RumProfile::bytes_read_per_op() const {
  uint64_t ops = delta.point_queries + delta.range_queries + delta.inserts +
                 delta.updates + delta.deletes;
  return ops == 0 ? 0.0
                  : static_cast<double>(delta.total_bytes_read()) /
                        static_cast<double>(ops);
}

double RumProfile::bytes_written_per_op() const {
  uint64_t ops = delta.point_queries + delta.range_queries + delta.inserts +
                 delta.updates + delta.deletes;
  return ops == 0 ? 0.0
                  : static_cast<double>(delta.total_bytes_written()) /
                        static_cast<double>(ops);
}

std::string RumProfile::ToString() const {
  char buf[320];
  std::snprintf(buf, sizeof(buf),
                "%-16s RO=%8.2f UO=%8.2f MO=%8.3f  read/op=%10.1fB "
                "write/op=%10.1fB  (%.3fs)",
                method.c_str(), point.read_overhead, point.update_overhead,
                point.memory_overhead, bytes_read_per_op(),
                bytes_written_per_op(), wall_seconds);
  return std::string(buf);
}

Result<RumProfile> WorkloadRunner::Run(AccessMethod* method,
                                       const WorkloadSpec& spec) {
  KeyGenerator keys(spec.distribution, spec.key_range, spec.seed + 1,
                    spec.zipf_theta);
  Rng op_rng(spec.seed + 2);
  Rng value_rng(spec.seed + 3);

  CounterSnapshot before = method->stats();
  auto start = std::chrono::steady_clock::now();

  Key scan_width = static_cast<Key>(
      static_cast<double>(spec.key_range) * spec.scan_selectivity);
  if (scan_width == 0) scan_width = 1;

  std::vector<uint64_t> read_samples;
  std::vector<uint64_t> write_samples;
  read_samples.reserve(spec.operations);
  write_samples.reserve(spec.operations);
  uint64_t last_read = before.total_bytes_read();
  uint64_t last_written = before.total_bytes_written();

  std::vector<Entry> scan_buffer;
  for (uint64_t i = 0; i < spec.operations; ++i) {
    double dice = op_rng.NextDouble();
    Key key = keys.Next();
    if (dice < spec.insert_fraction) {
      Status s = method->Insert(key, value_rng.Next());
      if (!s.ok() && s.code() != Code::kOutOfRange) return s;
    } else if (dice < spec.insert_fraction + spec.update_fraction) {
      Status s = method->Update(key, value_rng.Next());
      if (!s.ok() && s.code() != Code::kOutOfRange) return s;
    } else if (dice < spec.insert_fraction + spec.update_fraction +
                          spec.delete_fraction) {
      Status s = method->Delete(key);
      if (!s.ok() && s.code() != Code::kOutOfRange) return s;
    } else if (dice < spec.insert_fraction + spec.update_fraction +
                          spec.delete_fraction + spec.scan_fraction) {
      Key hi = key > kMaxKey - scan_width ? kMaxKey : key + scan_width;
      scan_buffer.clear();
      Status s = method->Scan(key, hi, &scan_buffer);
      if (!s.ok()) return s;
    } else {
      Result<Value> r = method->Get(key);
      if (!r.ok() && r.code() != Code::kNotFound &&
          r.code() != Code::kOutOfRange) {
        return r.status();
      }
    }
    CounterSnapshot now = method->stats();
    read_samples.push_back(now.total_bytes_read() - last_read);
    write_samples.push_back(now.total_bytes_written() - last_written);
    last_read = now.total_bytes_read();
    last_written = now.total_bytes_written();
  }

  auto end = std::chrono::steady_clock::now();
  RumProfile profile;
  profile.method = std::string(method->name());
  profile.spec = spec;
  profile.delta = method->stats() - before;
  profile.point = RumPoint::FromSnapshot(profile.delta);
  profile.wall_seconds =
      std::chrono::duration<double>(end - start).count();
  profile.read_cost = CostPercentiles::From(std::move(read_samples));
  profile.write_cost = CostPercentiles::From(std::move(write_samples));
  return profile;
}

Result<RumProfile> WorkloadRunner::LoadAndRun(AccessMethod* method, size_t n,
                                              const WorkloadSpec& spec) {
  std::vector<Entry> entries = MakeSortedEntries(n);
  Status s = method->BulkLoad(entries);
  if (!s.ok()) return s;
  s = method->Flush();
  if (!s.ok()) return s;
  method->ResetStats();
  return Run(method, spec);
}

}  // namespace rum

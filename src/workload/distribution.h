#ifndef RUMLAB_WORKLOAD_DISTRIBUTION_H_
#define RUMLAB_WORKLOAD_DISTRIBUTION_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "core/types.h"

namespace rum {

/// A deterministic pseudo-random source (xorshift64*). All rumlab
/// randomness flows through this so every experiment replays exactly.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed == 0 ? 0x9E3779B9ULL : seed) {}

  /// Uniform 64-bit value.
  uint64_t Next();
  /// Uniform in [0, bound).
  uint64_t NextBelow(uint64_t bound);
  /// Uniform in [0, 1).
  double NextDouble();

 private:
  uint64_t state_;
};

/// Key distributions for workload generation.
enum class KeyDistribution {
  kUniform,     ///< Uniform over the key range.
  kZipfian,     ///< Zipf-skewed: few keys dominate (theta ~ 0.99).
  kSequential,  ///< Monotonically increasing (append pattern).
  kClustered,   ///< Uniform within a small moving window (locality).
};

/// Draws keys in [0, key_range) under a given distribution.
class KeyGenerator {
 public:
  /// `theta` applies to kZipfian (higher = more skew, in (0,1)).
  KeyGenerator(KeyDistribution distribution, Key key_range, uint64_t seed,
               double theta = 0.99);

  /// Next key under the distribution.
  Key Next();

  Key key_range() const { return key_range_; }

 private:
  Key NextZipfian();

  KeyDistribution distribution_;
  Key key_range_;
  Rng rng_;
  double theta_;
  // Zipfian (Gray et al. method) precomputed constants.
  uint64_t zipf_n_ = 0;
  double zetan_ = 0;
  double zeta2_ = 0;
  double alpha_ = 0;
  double eta_ = 0;
  // Sequential / clustered state.
  Key cursor_ = 0;
};

/// Builds `n` strictly-ascending entries with deterministic values, spaced
/// `stride` apart starting at `first` -- the canonical bulk-load input.
std::vector<Entry> MakeSortedEntries(size_t n, Key first = 0,
                                     Key stride = 1);

/// Deterministic value derived from a key (so tests can validate payloads).
Value ValueFor(Key key);

}  // namespace rum

#endif  // RUMLAB_WORKLOAD_DISTRIBUTION_H_

#ifndef RUMLAB_WORKLOAD_RUNNER_H_
#define RUMLAB_WORKLOAD_RUNNER_H_

#include <string>

#include "core/access_method.h"
#include "core/counters.h"
#include "core/memory_budget.h"
#include "core/metrics.h"
#include "core/rum_point.h"
#include "core/status.h"
#include "workload/spec.h"

namespace rum {

/// Order statistics of a per-operation cost distribution (bytes touched).
struct CostPercentiles {
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;

  /// Computes percentiles from raw per-op samples (sorted internally).
  static CostPercentiles From(std::vector<uint64_t> samples);
};

/// Per-worker tally of operation errors absorbed during a phase run with
/// ErrorMode::kSkipAndCount or kDegrade. Deterministic for a deterministic
/// fault plan and serial op order.
struct ErrorTally {
  uint64_t io_errors = 0;    ///< Operations failed with kIOError.
  uint64_t corruption = 0;   ///< Operations failed with kCorruption.
  uint64_t other = 0;        ///< Any other non-benign failure.
  uint64_t degraded_skips = 0;  ///< Mutations withheld in degraded service.
  uint64_t shed = 0;  ///< Requests refused by service-layer admission control
                      ///< or queue overflow before touching storage.

  uint64_t failed() const { return io_errors + corruption + other; }
  void Count(const Status& s);
  ErrorTally& operator+=(const ErrorTally& o);
  std::string ToString() const;
};

/// Wall-clock latency distributions per operation class, in nanoseconds.
/// Each worker records into its own copy (plain adds, no sharing); the
/// runner merges per-worker copies after the join, so concurrent phases get
/// latency tails too. Values are wall-clock and therefore not deterministic
/// run-to-run -- unlike the byte-cost percentiles, which are.
struct OpLatencies {
  LatencyHistogram point;   ///< Get
  LatencyHistogram scan;    ///< Scan
  LatencyHistogram insert;  ///< Insert
  LatencyHistogram update;  ///< Update
  LatencyHistogram erase;   ///< Delete

  void Merge(const OpLatencies& o);
  /// All classes folded together.
  LatencyHistogram Total() const;
  /// {"point":{...},"scan":{...},...} -- class keys with histogram summaries.
  std::string ToJson() const;
};

/// Result of running a workload phase against an access method: the
/// counter delta over the phase plus derived RUM coordinates.
struct RumProfile {
  std::string method;
  WorkloadSpec spec;
  CounterSnapshot delta;  ///< Traffic during the phase; space = at end.
  RumPoint point;         ///< Derived from `delta`.
  double wall_seconds = 0;
  /// Per-operation bytes-read distribution: means hide tails (an LSM's
  /// occasional compaction, a sorted column's shift cascade); these don't.
  /// Sampled from the per-thread traffic tally (ThisThreadIo), so both
  /// serial and concurrent phases get samples without any cross-thread
  /// probing. The tally counts every byte the op's thread charged anywhere
  /// in the stack, so for device-injected stacks the samples include
  /// cache-layer charges alongside the method's own.
  CostPercentiles read_cost;
  /// Per-operation bytes-written distribution (same sampling path).
  CostPercentiles write_cost;
  /// Wall-clock latency histograms per op class (serial and concurrent).
  OpLatencies latency;
  /// One tally per worker (one entry for serial phases). Empty unless the
  /// spec ran with kSkipAndCount or kDegrade.
  std::vector<ErrorTally> worker_errors;
  /// End-of-phase global memory split (all zeros unless the phase ran via
  /// the registrar-sampling Run overload): how the arbiter had the byte
  /// budget divided when the phase finished, with `replans` counting its
  /// adaptations so far. Phase-by-phase deltas of this are the experiment
  /// evidence that memory overhead migrates between hierarchy levels.
  MemorySplit memory_split{};

  /// All workers' tallies merged.
  ErrorTally errors() const;

  /// Per-operation averages.
  double bytes_read_per_op() const;
  double bytes_written_per_op() const;

  std::string ToString() const;
};

/// Executes workload specs against access methods and snapshots RUM
/// accounting around each phase.
class WorkloadRunner {
 public:
  /// Runs `spec` against `method`, returning the phase profile. The method
  /// may already contain data (e.g. bulk-loaded); the profile measures only
  /// this phase's traffic.
  ///
  /// With spec.concurrency > 1 the phase is driven by a worker pool;
  /// `method` must implement KeyPartitioned (ShardedMethod does) or the run
  /// fails with kInvalidArgument. Each worker derives an independent seed
  /// stream from (spec.seed, worker) and owns a disjoint set of partitions,
  /// so every partition sees a deterministic operation order and the phase's
  /// counter delta is byte-identical run-to-run (for specs without scans;
  /// scans cross partitions, so their physical read traffic depends on the
  /// interleaving while contents stay exact). The worker count is capped at
  /// the method's partition count.
  static Result<RumProfile> Run(AccessMethod* method,
                                const WorkloadSpec& spec);

  /// As Run, but samples `registrar->split()` into the profile's
  /// memory_split when the phase ends (null registrar = plain Run), so
  /// arbitrated experiments report where the budget sat per phase.
  static Result<RumProfile> Run(AccessMethod* method, const WorkloadSpec& spec,
                                MemoryRegistrar* registrar);

  /// Convenience: bulk-loads `n` dense entries, then runs `spec`.
  static Result<RumProfile> LoadAndRun(AccessMethod* method, size_t n,
                                       const WorkloadSpec& spec);
};

}  // namespace rum

#endif  // RUMLAB_WORKLOAD_RUNNER_H_

#ifndef RUMLAB_WORKLOAD_SPEC_H_
#define RUMLAB_WORKLOAD_SPEC_H_

#include <cstdint>
#include <string>

#include "core/types.h"
#include "workload/distribution.h"

namespace rum {

/// How the runner responds to an operation failing with a real error (the
/// mix always tolerates the benign kNotFound/kOutOfRange statuses).
enum class ErrorMode {
  /// Stop the phase and return the error (the classic behavior).
  kAbort,
  /// Tally the error by code in the worker's ErrorTally and continue --
  /// the "keep serving through faults" stance of a chaos run.
  kSkipAndCount,
  /// Like kSkipAndCount, but after the first error the worker stops issuing
  /// mutations (each one tallied as degraded-skipped) and serves reads
  /// only: degraded service instead of risking compound damage on a
  /// structure that may be mid-reorganization.
  kDegrade,
};

/// How requests arrive in time. Closed loop is the classic runner: the next
/// operation issues the instant the previous one returns, so offered load
/// always equals capacity. The open-loop processes issue requests on their
/// own (virtual) clock regardless of completions -- the only shape under
/// which offered load can *exceed* capacity, which is what the service
/// layer's admission control exists to survive.
enum class ArrivalProcess {
  kClosedLoop,
  /// Poisson arrivals: i.i.d. exponential inter-arrival gaps at
  /// `offered_ops_per_sec` (virtual time, seeded, deterministic).
  kPoisson,
  /// On/off modulated Poisson: within each `burst_period_us` window the
  /// first `burst_on_fraction` runs at `burst_factor` times the base rate
  /// and the remainder runs slower, preserving the configured average.
  kBursty,
};

/// Declarative description of a workload phase: an operation mix over a key
/// space, plus scan selectivity. Fractions must sum to <= 1; the remainder
/// is point queries.
struct WorkloadSpec {
  /// Operations to execute.
  uint64_t operations = 10000;
  /// Key space [0, key_range).
  Key key_range = 1u << 16;
  /// Key distribution for every operation's key.
  KeyDistribution distribution = KeyDistribution::kUniform;
  /// Zipfian skew (when distribution == kZipfian).
  double zipf_theta = 0.99;

  /// Fraction of operations that are inserts.
  double insert_fraction = 0;
  /// Fraction that are updates (value overwrite).
  double update_fraction = 0;
  /// Fraction that are deletes.
  double delete_fraction = 0;
  /// Fraction that are range scans.
  double scan_fraction = 0;
  // The remaining fraction is point queries (Get).

  /// Width of each range scan as a fraction of the key range.
  double scan_selectivity = 0.001;

  /// RNG seed (operation choice and keys derive from it).
  uint64_t seed = 42;

  /// Worker threads driving the phase. 1 = the classic serial runner.
  /// Values > 1 require a partition-aware method (ShardedMethod): each
  /// worker gets a deterministic seed split plus a disjoint set of
  /// partitions, so concurrent RUM accounting replays exactly run-to-run
  /// (see WorkloadRunner). Capped at the method's partition count.
  uint32_t concurrency = 1;

  /// Response to operation errors (fault injection); see ErrorMode.
  ErrorMode error_mode = ErrorMode::kAbort;

  /// Arrival process driving the phase (see ArrivalProcess). Open-loop
  /// shapes are consumed by service::RunOpenLoop; the classic runner only
  /// accepts kClosedLoop.
  ArrivalProcess arrival = ArrivalProcess::kClosedLoop;
  /// Open-loop offered load, in requests per virtual second. Must be > 0
  /// for kPoisson/kBursty.
  double offered_ops_per_sec = 0;
  /// kBursty modulation: peak multiplier, on-fraction, and period.
  double burst_factor = 8.0;
  double burst_on_fraction = 0.25;
  uint64_t burst_period_us = 100000;

  /// Canonical mixes used across the benches.
  static WorkloadSpec ReadOnly(uint64_t ops, Key key_range);
  static WorkloadSpec WriteOnly(uint64_t ops, Key key_range);
  static WorkloadSpec ReadMostly(uint64_t ops, Key key_range);
  static WorkloadSpec Mixed(uint64_t ops, Key key_range);
  static WorkloadSpec ScanHeavy(uint64_t ops, Key key_range);

  std::string ToString() const;
};

}  // namespace rum

#endif  // RUMLAB_WORKLOAD_SPEC_H_

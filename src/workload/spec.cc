#include "workload/spec.h"

#include <cstdio>

namespace rum {

WorkloadSpec WorkloadSpec::ReadOnly(uint64_t ops, Key key_range) {
  WorkloadSpec spec;
  spec.operations = ops;
  spec.key_range = key_range;
  return spec;
}

WorkloadSpec WorkloadSpec::WriteOnly(uint64_t ops, Key key_range) {
  WorkloadSpec spec;
  spec.operations = ops;
  spec.key_range = key_range;
  spec.insert_fraction = 1.0;
  return spec;
}

WorkloadSpec WorkloadSpec::ReadMostly(uint64_t ops, Key key_range) {
  WorkloadSpec spec;
  spec.operations = ops;
  spec.key_range = key_range;
  spec.insert_fraction = 0.05;
  spec.update_fraction = 0.05;
  return spec;
}

WorkloadSpec WorkloadSpec::Mixed(uint64_t ops, Key key_range) {
  WorkloadSpec spec;
  spec.operations = ops;
  spec.key_range = key_range;
  spec.insert_fraction = 0.25;
  spec.update_fraction = 0.15;
  spec.delete_fraction = 0.05;
  spec.scan_fraction = 0.05;
  return spec;
}

WorkloadSpec WorkloadSpec::ScanHeavy(uint64_t ops, Key key_range) {
  WorkloadSpec spec;
  spec.operations = ops;
  spec.key_range = key_range;
  spec.scan_fraction = 0.5;
  spec.insert_fraction = 0.1;
  return spec;
}

std::string WorkloadSpec::ToString() const {
  double reads = 1.0 - insert_fraction - update_fraction - delete_fraction -
                 scan_fraction;
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "ops=%llu keys=%llu get=%.2f ins=%.2f upd=%.2f del=%.2f "
                "scan=%.2f(sel=%.4f) conc=%u",
                static_cast<unsigned long long>(operations),
                static_cast<unsigned long long>(key_range), reads,
                insert_fraction, update_fraction, delete_fraction,
                scan_fraction, scan_selectivity, concurrency);
  return std::string(buf);
}

}  // namespace rum

#ifndef RUMLAB_METHODS_IMPRINTS_IMPRINTS_H_
#define RUMLAB_METHODS_IMPRINTS_IMPRINTS_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "core/access_method.h"
#include "core/options.h"
#include "storage/block_device.h"
#include "storage/heap_file.h"

namespace rum {

/// Column Imprints (Sidirourgos & Kersten, SIGMOD 2013 -- paper reference
/// [50]): a secondary index of one small bit mask per storage block, where
/// bit b is set iff the block contains a key in histogram bin b.
///
/// Like ZoneMaps it is a sparse, space-optimized structure (one 64-bit
/// mask per block vs. the bitmap index's one bitvector per bin), but
/// unlike min/max summaries it survives *unclustered* data: a block
/// containing keys from two distant bins produces two set bits rather
/// than one useless giant [min,max] interval.
///
/// Queries AND a bin mask for the predicate against every imprint and read
/// only matching blocks. Appends are cheap -- OR one bit into the tail
/// block's mask. Deletes set conservative state (masks never clear), so a
/// deleted-row set is kept and the structure rebuilds once
/// `approx.rebuild_deleted_fraction` of rows are dead.
///
/// The key domain `[0, bitmap.key_domain)` is split into 64 equi-width
/// bins (one machine word per imprint).
class ImprintsColumn : public AccessMethod {
 public:
  explicit ImprintsColumn(const Options& options);
  ImprintsColumn(const Options& options, Device* device);

  ~ImprintsColumn() override;

  std::string_view name() const override { return "imprints"; }

  Status Insert(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  Status BulkLoad(std::span<const Entry> entries) override;
  Status Flush() override;
  size_t size() const override { return live_; }

  size_t imprint_count() const { return imprints_.size(); }
  uint64_t imprint_bytes() const {
    return static_cast<uint64_t>(imprints_.size()) * sizeof(uint64_t);
  }

 private:
  static constexpr size_t kBins = 64;

  size_t BinOf(Key key) const;
  /// Mask with every bin overlapping [lo, hi] set.
  uint64_t MaskFor(Key lo, Key hi) const;
  /// Charges a scan of the whole imprint vector and collects the rows of
  /// blocks whose imprint intersects `mask` (deleted rows filtered).
  void CandidateRows(uint64_t mask, std::vector<RowId>* rows);
  /// Marks the imprint covering `row` for `key` (tail appends).
  void Stamp(RowId row, Key key);
  /// Rewrites the heap without dead rows and recomputes all imprints.
  Status Rebuild();
  void RecountAuxSpace();
  Result<RowId> FindRow(Key key);

  Options options_;
  std::unique_ptr<BlockDevice> owned_device_;
  Device* device_;
  std::unique_ptr<HeapFile> heap_;
  Key bin_width_;
  std::vector<uint64_t> imprints_;  // One mask per heap block.
  std::unordered_set<RowId> deleted_rows_;
  size_t live_ = 0;
};

}  // namespace rum

#endif  // RUMLAB_METHODS_IMPRINTS_IMPRINTS_H_

#include "methods/imprints/imprints.h"

#include <algorithm>

namespace rum {

ImprintsColumn::ImprintsColumn(const Options& options)
    : options_(options),
      owned_device_(
          std::make_unique<BlockDevice>(options.block_size, &counters())),
      device_(owned_device_.get()),
      heap_(std::make_unique<HeapFile>(device_, DataClass::kBase, &counters(),
                                       options.storage.pinned_pages)) {
  bin_width_ = std::max<Key>(1, options_.bitmap.key_domain / kBins);
}

ImprintsColumn::ImprintsColumn(const Options& options, Device* device)
    : options_(options),
      device_(device),
      heap_(std::make_unique<HeapFile>(device_, DataClass::kBase, &counters(),
                                       options.storage.pinned_pages)) {
  bin_width_ = std::max<Key>(1, options_.bitmap.key_domain / kBins);
}

ImprintsColumn::~ImprintsColumn() = default;

size_t ImprintsColumn::BinOf(Key key) const {
  return std::min<size_t>(static_cast<size_t>(key / bin_width_), kBins - 1);
}

uint64_t ImprintsColumn::MaskFor(Key lo, Key hi) const {
  size_t first = BinOf(lo);
  size_t last = BinOf(hi);
  uint64_t mask = 0;
  for (size_t b = first; b <= last; ++b) {
    mask |= 1ULL << b;
  }
  return mask;
}

void ImprintsColumn::RecountAuxSpace() {
  counters().SetSpace(
      DataClass::kAux,
      imprint_bytes() +
          static_cast<uint64_t>(deleted_rows_.size()) * sizeof(RowId));
}

void ImprintsColumn::Stamp(RowId row, Key key) {
  size_t block = static_cast<size_t>(row / heap_->rows_per_page());
  if (imprints_.size() <= block) {
    imprints_.resize(block + 1, 0);
  }
  uint64_t bit = 1ULL << BinOf(key);
  if ((imprints_[block] & bit) == 0) {
    imprints_[block] |= bit;
    counters().OnWrite(DataClass::kAux, sizeof(uint64_t));
  }
}

void ImprintsColumn::CandidateRows(uint64_t mask, std::vector<RowId>* rows) {
  // The whole imprint vector is scanned -- it is tiny (8 bytes per block).
  counters().OnRead(DataClass::kAux, imprint_bytes());
  size_t per_page = heap_->rows_per_page();
  for (size_t block = 0; block < imprints_.size(); ++block) {
    if ((imprints_[block] & mask) == 0) continue;
    RowId first = static_cast<RowId>(block) * per_page;
    RowId last = std::min<RowId>(first + per_page, heap_->row_count());
    for (RowId row = first; row < last; ++row) {
      if (deleted_rows_.find(row) == deleted_rows_.end()) {
        rows->push_back(row);
      }
    }
  }
}

Result<RowId> ImprintsColumn::FindRow(Key key) {
  std::vector<RowId> rows;
  CandidateRows(1ULL << BinOf(key), &rows);
  RowId found = kInvalidRowId;
  Status s = heap_->ForRows(rows, [&](RowId row, const Entry& e) {
    if (e.key == key) found = row;
    return Status::OK();
  });
  if (!s.ok()) return s;
  return found;
}

Status ImprintsColumn::Rebuild() {
  std::vector<Entry> entries;
  entries.reserve(heap_->row_count());
  Status s = heap_->ForEach([&](RowId row, const Entry& e) {
    if (deleted_rows_.find(row) == deleted_rows_.end()) {
      entries.push_back(e);
    }
    return Status::OK();
  });
  if (!s.ok()) return s;
  s = heap_->Clear();
  if (!s.ok()) return s;
  imprints_.clear();
  deleted_rows_.clear();
  for (const Entry& e : entries) {
    Result<RowId> row = heap_->Append(e);
    if (!row.ok()) return row.status();
    Stamp(row.value(), e.key);
  }
  s = heap_->Flush();
  RecountAuxSpace();
  return s;
}

Status ImprintsColumn::Insert(Key key, Value value) {
  counters().OnInsert();
  counters().OnLogicalWrite(kEntrySize);
  Result<RowId> existing = FindRow(key);
  if (!existing.ok()) return existing.status();
  if (existing.value() != kInvalidRowId) {
    return heap_->Set(existing.value(), Entry{key, value});
  }
  Result<RowId> row = heap_->Append(Entry{key, value});
  if (!row.ok()) return row.status();
  Stamp(row.value(), key);
  ++live_;
  RecountAuxSpace();
  return Status::OK();
}

Status ImprintsColumn::Delete(Key key) {
  counters().OnDelete();
  counters().OnLogicalWrite(kEntrySize);
  Result<RowId> existing = FindRow(key);
  if (!existing.ok()) return existing.status();
  if (existing.value() == kInvalidRowId) return Status::OK();
  deleted_rows_.insert(existing.value());
  counters().OnWrite(DataClass::kAux, sizeof(RowId));
  --live_;
  RecountAuxSpace();
  if (static_cast<double>(deleted_rows_.size()) >
      options_.approx.rebuild_deleted_fraction *
          static_cast<double>(std::max<uint64_t>(1, heap_->row_count()))) {
    return Rebuild();
  }
  return Status::OK();
}

Result<Value> ImprintsColumn::Get(Key key) {
  counters().OnPointQuery();
  Result<RowId> row = FindRow(key);
  if (!row.ok()) return row.status();
  if (row.value() == kInvalidRowId) return Status::NotFound();
  Result<Entry> entry = heap_->At(row.value());
  if (!entry.ok()) return entry.status();
  counters().OnLogicalRead(kEntrySize);
  return entry.value().value;
}

Status ImprintsColumn::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  counters().OnRangeQuery();
  std::vector<RowId> rows;
  CandidateRows(MaskFor(lo, hi), &rows);
  std::vector<Entry> hits;
  Status s = heap_->ForRows(rows, [&](RowId, const Entry& e) {
    if (e.key >= lo && e.key <= hi) hits.push_back(e);
    return Status::OK();
  });
  if (!s.ok()) return s;
  std::sort(hits.begin(), hits.end());
  counters().OnLogicalRead(static_cast<uint64_t>(hits.size()) * kEntrySize);
  out->insert(out->end(), hits.begin(), hits.end());
  return Status::OK();
}

Status ImprintsColumn::BulkLoad(std::span<const Entry> entries) {
  Status s = CheckBulkLoadPreconditions(entries);
  if (!s.ok()) return s;
  for (const Entry& e : entries) {
    Result<RowId> row = heap_->Append(e);
    if (!row.ok()) return row.status();
    Stamp(row.value(), e.key);
  }
  s = heap_->Flush();
  if (!s.ok()) return s;
  live_ = entries.size();
  counters().OnLogicalWrite(static_cast<uint64_t>(entries.size()) *
                            kEntrySize);
  RecountAuxSpace();
  return Status::OK();
}

Status ImprintsColumn::Flush() { return heap_->Flush(); }

}  // namespace rum

#include "methods/cracking/cracking.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace rum {

CrackedColumn::CrackedColumn(const Options& options)
    : min_piece_(std::max<size_t>(1, options.cracking.min_piece_entries)),
      merge_threshold_(options.cracking.delta_merge_threshold) {}

size_t CrackedColumn::size() const { return live_keys_.size(); }

void CrackedColumn::RecountSpace() {
  uint64_t total =
      static_cast<uint64_t>(column_.size() + pending_.size()) * kEntrySize +
      static_cast<uint64_t>(cracks_.size()) * kCrackNodeSize +
      static_cast<uint64_t>(deleted_.size()) * sizeof(Key);
  uint64_t base =
      std::min(static_cast<uint64_t>(live_keys_.size()) * kEntrySize, total);
  counters().SetSpace(DataClass::kBase, base);
  counters().SetSpace(DataClass::kAux, total - base);
}

void CrackedColumn::PieceFor(Key key, size_t* start, size_t* end) const {
  // cracks_ maps crack key -> first position >= crack key. The piece
  // containing `key` spans from the position of the greatest crack <= key
  // to the position of the smallest crack > key.
  *start = 0;
  *end = column_.size();
  auto it = cracks_.upper_bound(key);
  if (it != cracks_.end()) *end = it->second;
  if (it != cracks_.begin()) {
    --it;
    *start = it->second;
  }
}

size_t CrackedColumn::CrackAt(Key key) {
  // Index probe: descending the cracker index reads O(log) nodes.
  counters().OnRead(DataClass::kAux,
                    kCrackNodeSize * (1 + static_cast<uint64_t>(
                                              cracks_.empty()
                                                  ? 0
                                                  : std::bit_width(
                                                        cracks_.size()))));
  auto exact = cracks_.find(key);
  if (exact != cracks_.end()) return exact->second;

  size_t start, end;
  PieceFor(key, &start, &end);
  if (end - start <= min_piece_) {
    return start;  // Piece small enough: scan instead of cracking.
  }
  // Partition the piece: elements < key to the front. Reads the whole
  // piece; every swap rewrites two entries.
  counters().OnRead(DataClass::kBase,
                    static_cast<uint64_t>(end - start) * kEntrySize);
  size_t lo = start;
  size_t hi = end;
  while (lo < hi) {
    if (column_[lo].key < key) {
      ++lo;
    } else {
      --hi;
      if (lo != hi) {
        std::swap(column_[lo], column_[hi]);
        counters().OnWrite(DataClass::kBase, 2 * kEntrySize);
      }
    }
  }
  cracks_[key] = lo;
  // One cracker-index node written.
  counters().OnWrite(DataClass::kAux, kCrackNodeSize);
  RecountSpace();
  return lo;
}

Status CrackedColumn::MergePending() {
  // Fold the delta in: newest pending version of a key wins over the
  // column; deleted keys vanish. The column is rebuilt and the cracker
  // index reset -- adaptive indexing pays for updates by re-learning.
  counters().OnRead(DataClass::kBase,
                    static_cast<uint64_t>(column_.size() + pending_.size()) *
                        kEntrySize);
  std::unordered_set<Key> overridden;
  overridden.reserve(pending_.size());
  for (const Entry& e : pending_) overridden.insert(e.key);

  std::vector<Entry> fresh;
  fresh.reserve(column_.size() + pending_.size());
  for (const Entry& e : column_) {
    if (deleted_.find(e.key) == deleted_.end() &&
        overridden.find(e.key) == overridden.end()) {
      fresh.push_back(e);
    }
  }
  // Newest pending version of each key wins.
  std::unordered_set<Key> seen;
  for (size_t i = pending_.size(); i-- > 0;) {
    const Entry& e = pending_[i];
    if (deleted_.find(e.key) != deleted_.end()) continue;
    if (seen.insert(e.key).second) fresh.push_back(e);
  }
  column_ = std::move(fresh);
  pending_.clear();
  deleted_.clear();
  cracks_.clear();
  counters().OnWrite(DataClass::kBase,
                     static_cast<uint64_t>(column_.size()) * kEntrySize);
  RecountSpace();
  return Status::OK();
}

Status CrackedColumn::Insert(Key key, Value value) {
  counters().OnInsert();
  counters().OnLogicalWrite(kEntrySize);
  deleted_.erase(key);
  pending_.push_back(Entry{key, value});
  counters().OnWrite(DataClass::kBase, kEntrySize);
  live_keys_.insert(key);
  if (pending_.size() + deleted_.size() >= merge_threshold_) {
    return MergePending();
  }
  RecountSpace();
  return Status::OK();
}

Status CrackedColumn::Delete(Key key) {
  counters().OnDelete();
  counters().OnLogicalWrite(kEntrySize);
  deleted_.insert(key);
  counters().OnWrite(DataClass::kAux, sizeof(Key));
  live_keys_.erase(key);
  if (pending_.size() + deleted_.size() >= merge_threshold_) {
    return MergePending();
  }
  RecountSpace();
  return Status::OK();
}

Result<Value> CrackedColumn::Get(Key key) {
  counters().OnPointQuery();
  // Pending delta first (newest wins), scanned backwards.
  counters().OnRead(DataClass::kBase,
                    static_cast<uint64_t>(pending_.size()) * kEntrySize);
  for (size_t i = pending_.size(); i-- > 0;) {
    if (pending_[i].key == key) {
      if (deleted_.find(key) != deleted_.end()) return Status::NotFound();
      counters().OnLogicalRead(kEntrySize);
      return pending_[i].value;
    }
  }
  if (deleted_.find(key) != deleted_.end()) return Status::NotFound();

  if (key == kMaxKey) {
    // Cannot crack at key+1; scan the last piece.
    size_t start, end;
    PieceFor(key, &start, &end);
    counters().OnRead(DataClass::kBase,
                      static_cast<uint64_t>(end - start) * kEntrySize);
    for (size_t i = start; i < end; ++i) {
      if (column_[i].key == key) {
        counters().OnLogicalRead(kEntrySize);
        return column_[i].value;
      }
    }
    return Status::NotFound();
  }

  size_t lo_pos = CrackAt(key);
  size_t hi_pos = CrackAt(key + 1);
  size_t start, end;
  if (cracks_.find(key) != cracks_.end() &&
      cracks_.find(key + 1) != cracks_.end()) {
    start = lo_pos;
    end = hi_pos;
  } else {
    // At least one bound fell in a small piece; scan that piece.
    PieceFor(key, &start, &end);
  }
  counters().OnRead(DataClass::kBase,
                    static_cast<uint64_t>(end - start) * kEntrySize);
  for (size_t i = start; i < end; ++i) {
    if (column_[i].key == key) {
      counters().OnLogicalRead(kEntrySize);
      return column_[i].value;
    }
  }
  return Status::NotFound();
}

Status CrackedColumn::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  counters().OnRangeQuery();

  size_t start_hint = CrackAt(lo);
  size_t end_hint =
      hi == kMaxKey ? column_.size() : CrackAt(hi + 1);
  size_t start, end;
  PieceFor(lo, &start, &end);
  size_t scan_start = cracks_.count(lo) != 0 ? start_hint : start;
  size_t scan_end;
  if (hi == kMaxKey) {
    scan_end = column_.size();
  } else if (cracks_.count(hi + 1) != 0) {
    scan_end = end_hint;
  } else {
    size_t hstart, hend;
    PieceFor(hi, &hstart, &hend);
    scan_end = hend;
  }

  counters().OnRead(DataClass::kBase,
                    static_cast<uint64_t>(scan_end - scan_start) *
                        kEntrySize);
  std::vector<Entry> hits;
  std::unordered_set<Key> shadowed;
  // Pending versions shadow column versions.
  counters().OnRead(DataClass::kBase,
                    static_cast<uint64_t>(pending_.size()) * kEntrySize);
  std::unordered_set<Key> seen;
  for (size_t i = pending_.size(); i-- > 0;) {
    const Entry& e = pending_[i];
    shadowed.insert(e.key);
    if (e.key < lo || e.key > hi) continue;
    if (deleted_.find(e.key) != deleted_.end()) continue;
    if (seen.insert(e.key).second) hits.push_back(e);
  }
  for (size_t i = scan_start; i < scan_end; ++i) {
    const Entry& e = column_[i];
    if (e.key < lo || e.key > hi) continue;
    if (deleted_.find(e.key) != deleted_.end()) continue;
    if (shadowed.find(e.key) != shadowed.end()) continue;
    hits.push_back(e);
  }
  std::sort(hits.begin(), hits.end());
  counters().OnLogicalRead(static_cast<uint64_t>(hits.size()) * kEntrySize);
  out->insert(out->end(), hits.begin(), hits.end());
  return Status::OK();
}

Status CrackedColumn::BulkLoad(std::span<const Entry> entries) {
  Status s = CheckBulkLoadPreconditions(entries);
  if (!s.ok()) return s;
  column_.assign(entries.begin(), entries.end());
  // Cracking famously does *not* sort on load -- shuffle deterministically
  // so the adaptive behaviour is observable. (A sorted column would make
  // every piece trivially sorted.)
  uint64_t state = 0x9E3779B97F4A7C15ULL;
  for (size_t i = column_.size(); i > 1; --i) {
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    size_t j = static_cast<size_t>((state * 0x2545F4914F6CDD1DULL) % i);
    std::swap(column_[i - 1], column_[j]);
  }
  for (const Entry& e : column_) live_keys_.insert(e.key);
  counters().OnWrite(DataClass::kBase,
                     static_cast<uint64_t>(column_.size()) * kEntrySize);
  counters().OnLogicalWrite(static_cast<uint64_t>(column_.size()) *
                            kEntrySize);
  RecountSpace();
  return Status::OK();
}

Status CrackedColumn::Flush() { return MergePending(); }

}  // namespace rum

#ifndef RUMLAB_METHODS_CRACKING_CRACKING_H_
#define RUMLAB_METHODS_CRACKING_CRACKING_H_

#include <map>
#include <unordered_set>
#include <vector>

#include "core/access_method.h"
#include "core/options.h"

namespace rum {

/// Database cracking (Idreos et al., CIDR 2007): the adaptive access method
/// in the middle of the paper's Figure 1.
///
/// The column starts unsorted and each range query *cracks* it: the pieces
/// containing the query bounds are physically partitioned at those bounds,
/// and the bound positions are remembered in a cracker index. Early queries
/// pay near-scan cost plus partitioning writes; later queries touch
/// ever-smaller pieces -- index creation cost amortized across the query
/// stream, exactly the adaptive trade the paper describes (read overhead
/// falls while update overhead and, slowly, memory overhead rise).
///
/// Updates arrive in a pending delta (consulted by every query, charged)
/// and merge once `cracking.delta_merge_threshold` accumulate; a merge
/// rebuilds the column and discards the cracks, making update cost visible
/// ("updating a cracked database").
///
/// Pieces at or below `cracking.min_piece_entries` are scanned rather than
/// cracked further, bounding the cracker index size.
class CrackedColumn : public AccessMethod {
 public:
  explicit CrackedColumn(const Options& options);

  std::string_view name() const override { return "cracking"; }

  Status Insert(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  Status BulkLoad(std::span<const Entry> entries) override;
  Status Flush() override;
  size_t size() const override;

  /// Number of crack boundaries currently indexed.
  size_t crack_count() const { return cracks_.size(); }

 private:
  /// Approximate bytes of one cracker-index node (key, position, tree
  /// pointers).
  static constexpr uint64_t kCrackNodeSize = 48;

  /// Ensures a crack exists at `key` (all elements < key precede it).
  /// Returns the first position whose element is >= key. Skips cracking
  /// for pieces at or below the minimum piece size, returning the piece
  /// start instead (callers filter).
  size_t CrackAt(Key key);

  /// Piece [start, end) that would contain `key`.
  void PieceFor(Key key, size_t* start, size_t* end) const;

  /// Folds pending inserts and deletes into the column, resetting cracks.
  Status MergePending();

  void RecountSpace();

  size_t min_piece_;
  size_t merge_threshold_;
  std::vector<Entry> column_;   // Base data, physically cracked.
  std::map<Key, size_t> cracks_;  // Crack key -> first position >= key.
  std::vector<Entry> pending_;  // Unmerged inserts (newest last).
  std::unordered_set<Key> deleted_;  // Unmerged deletes.
  // Simulator-side bookkeeping (unaccounted): exact live-key set for
  // size() and the stats() base/aux space split.
  std::unordered_set<Key> live_keys_;
};

}  // namespace rum

#endif  // RUMLAB_METHODS_CRACKING_CRACKING_H_

#include "methods/skiplist/skiplist.h"

#include <cassert>

namespace rum {

namespace {
constexpr uint64_t kPointerSize = sizeof(void*);
}  // namespace

struct SkipListMap::Node {
  Key key;
  Value value;
  bool tombstone;
  std::vector<Node*> next;  // Tower of forward pointers.

  Node(Key k, Value v, bool t, size_t height)
      : key(k), value(v), tombstone(t), next(height, nullptr) {}
};

SkipListMap::SkipListMap(const Options::SkipList& options,
                         RumCounters* counters)
    : options_(options), counters_(counters), rng_state_(options.seed | 1) {
  assert(counters_ != nullptr);
  assert(options_.max_height >= 1);
  head_ = new Node(kMinKey, 0, false, options_.max_height);
  tower_slots_ += options_.max_height;
  PublishSpace();
}

SkipListMap::~SkipListMap() {
  Node* node = head_;
  while (node != nullptr) {
    Node* next = node->next[0];
    delete node;
    node = next;
  }
}

size_t SkipListMap::RandomHeight() {
  size_t height = 1;
  while (height < options_.max_height) {
    // xorshift64*
    rng_state_ ^= rng_state_ >> 12;
    rng_state_ ^= rng_state_ << 25;
    rng_state_ ^= rng_state_ >> 27;
    uint64_t r = rng_state_ * 0x2545F4914F6CDD1DULL;
    double u = static_cast<double>(r >> 11) / static_cast<double>(1ULL << 53);
    if (u >= options_.promote_probability) break;
    ++height;
  }
  return height;
}

SkipListMap::Node* SkipListMap::FindGreaterOrEqual(Key key,
                                                   std::vector<Node*>* prev) {
  Node* node = head_;
  size_t level = height_;
  while (level-- > 0) {
    while (true) {
      // Following one forward pointer reads the pointer slot...
      counters_->OnRead(DataClass::kAux, kPointerSize);
      Node* next = node->next[level];
      if (next == nullptr) break;
      // ...and comparing at the target reads its key.
      counters_->OnRead(DataClass::kBase, sizeof(Key));
      if (next->key >= key) break;
      node = next;
    }
    if (prev != nullptr) (*prev)[level] = node;
  }
  return node->next[0];
}

void SkipListMap::Put(Key key, Value value, bool tombstone) {
  std::vector<Node*> prev(options_.max_height, head_);
  Node* node = FindGreaterOrEqual(key, &prev);
  if (node != nullptr && node->key == key) {
    // In-place overwrite.
    bool was_tombstone = node->tombstone;
    node->value = value;
    node->tombstone = tombstone;
    counters_->OnWrite(
        tombstone ? DataClass::kAux : DataClass::kBase, kEntrySize);
    if (was_tombstone && !tombstone) {
      ++live_count_;
    } else if (!was_tombstone && tombstone) {
      --live_count_;
    }
    PublishSpace();
    return;
  }
  size_t h = RandomHeight();
  if (h > height_) height_ = h;
  Node* fresh = new Node(key, value, tombstone, h);
  tower_slots_ += h;
  for (size_t level = 0; level < h; ++level) {
    fresh->next[level] = prev[level]->next[level];
    prev[level]->next[level] = fresh;
    // Each spliced level writes two pointer slots.
    counters_->OnWrite(DataClass::kAux, 2 * kPointerSize);
  }
  counters_->OnWrite(tombstone ? DataClass::kAux : DataClass::kBase,
                     kEntrySize);
  ++record_count_;
  if (!tombstone) ++live_count_;
  PublishSpace();
}

bool SkipListMap::Find(Key key, Record* out) {
  Node* node = FindGreaterOrEqual(key, nullptr);
  if (node == nullptr || node->key != key) return false;
  counters_->OnRead(DataClass::kBase, sizeof(Value));
  out->key = node->key;
  out->value = node->value;
  out->tombstone = node->tombstone;
  return true;
}

void SkipListMap::Erase(Key key) {
  std::vector<Node*> prev(options_.max_height, head_);
  Node* node = FindGreaterOrEqual(key, &prev);
  if (node == nullptr || node->key != key) return;
  for (size_t level = 0; level < node->next.size(); ++level) {
    if (prev[level]->next[level] == node) {
      prev[level]->next[level] = node->next[level];
      counters_->OnWrite(DataClass::kAux, kPointerSize);
    }
  }
  tower_slots_ -= node->next.size();
  --record_count_;
  if (!node->tombstone) --live_count_;
  delete node;
  PublishSpace();
}

void SkipListMap::VisitRange(Key lo, Key hi,
                             const std::function<void(const Record&)>& visit) {
  Node* node = FindGreaterOrEqual(lo, nullptr);
  while (node != nullptr && node->key <= hi) {
    counters_->OnRead(DataClass::kBase, kEntrySize);
    visit(Record{node->key, node->value, node->tombstone});
    counters_->OnRead(DataClass::kAux, kPointerSize);
    node = node->next[0];
  }
}

void SkipListMap::VisitAllUnaccounted(
    const std::function<void(const Record&)>& visit) const {
  for (Node* node = head_->next[0]; node != nullptr; node = node->next[0]) {
    visit(Record{node->key, node->value, node->tombstone});
  }
}

void SkipListMap::Clear() {
  Node* node = head_->next[0];
  while (node != nullptr) {
    Node* next = node->next[0];
    delete node;
    node = next;
  }
  for (size_t level = 0; level < options_.max_height; ++level) {
    head_->next[level] = nullptr;
  }
  height_ = 1;
  tower_slots_ = options_.max_height;
  record_count_ = 0;
  live_count_ = 0;
  PublishSpace();
}

uint64_t SkipListMap::aux_bytes() const {
  uint64_t tombstones = record_count_ - live_count_;
  return tower_slots_ * kPointerSize + tombstones * kEntrySize;
}

uint64_t SkipListMap::base_bytes() const {
  return static_cast<uint64_t>(live_count_) * kEntrySize;
}

void SkipListMap::PublishSpace() {
  counters_->SetSpace(DataClass::kBase, base_bytes());
  counters_->SetSpace(DataClass::kAux, aux_bytes());
}

// ----------------------------------------------------------- SkipListMethod

SkipListMethod::SkipListMethod(const Options& options)
    : map_(std::make_unique<SkipListMap>(options.skiplist, &counters())) {}

SkipListMethod::~SkipListMethod() = default;

Status SkipListMethod::Insert(Key key, Value value) {
  counters().OnInsert();
  counters().OnLogicalWrite(kEntrySize);
  map_->Put(key, value, /*tombstone=*/false);
  return Status::OK();
}

Status SkipListMethod::Delete(Key key) {
  counters().OnDelete();
  counters().OnLogicalWrite(kEntrySize);
  map_->Erase(key);
  return Status::OK();
}

Result<Value> SkipListMethod::Get(Key key) {
  counters().OnPointQuery();
  SkipListMap::Record record;
  if (!map_->Find(key, &record) || record.tombstone) {
    return Status::NotFound();
  }
  counters().OnLogicalRead(kEntrySize);
  return record.value;
}

Status SkipListMethod::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  counters().OnRangeQuery();
  uint64_t found = 0;
  map_->VisitRange(lo, hi, [&](const SkipListMap::Record& r) {
    if (!r.tombstone) {
      out->push_back(Entry{r.key, r.value});
      ++found;
    }
  });
  counters().OnLogicalRead(found * kEntrySize);
  return Status::OK();
}

size_t SkipListMethod::size() const { return map_->live_count(); }

}  // namespace rum

#ifndef RUMLAB_METHODS_SKIPLIST_SKIPLIST_H_
#define RUMLAB_METHODS_SKIPLIST_SKIPLIST_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/access_method.h"
#include "core/counters.h"
#include "core/options.h"

namespace rum {

/// A probabilistic skiplist over (key -> value|tombstone), with byte-level
/// RUM accounting charged to a borrowed RumCounters.
///
/// This is the in-memory, read-optimized structure of the paper's Figure 1
/// and the LSM-tree's memtable. Accounting model: each node stores its
/// entry (base data, kEntrySize bytes; tombstone nodes are pure auxiliary)
/// plus a tower of forward pointers (auxiliary, 8 bytes per level).
/// Traversal charges one pointer read per hop and one key read per
/// comparison.
class SkipListMap {
 public:
  /// One record as stored in the list.
  struct Record {
    Key key;
    Value value;
    bool tombstone;
  };

  SkipListMap(const Options::SkipList& options, RumCounters* counters);
  ~SkipListMap();

  SkipListMap(const SkipListMap&) = delete;
  SkipListMap& operator=(const SkipListMap&) = delete;

  /// Upserts a value or a tombstone for `key`.
  void Put(Key key, Value value, bool tombstone);

  /// Finds the newest record for `key`; false if the key was never written.
  /// (A tombstone is returned as a record with tombstone=true.)
  bool Find(Key key, Record* out);

  /// Physically removes a key's node (used by the standalone access method,
  /// which does not need tombstones).
  void Erase(Key key);

  /// Visits records with lo <= key <= hi in ascending order, charging reads.
  void VisitRange(Key lo, Key hi,
                  const std::function<void(const Record&)>& visit);

  /// Visits all records in ascending order WITHOUT charging reads (used for
  /// memtable flushes, whose cost is charged by the destination run).
  void VisitAllUnaccounted(
      const std::function<void(const Record&)>& visit) const;

  /// Removes every node; space accounting drops to zero.
  void Clear();

  /// Records currently stored (including tombstones).
  size_t record_count() const { return record_count_; }
  /// Records that are live entries (not tombstones).
  size_t live_count() const { return live_count_; }
  /// Bytes of auxiliary structure (towers + tombstone records).
  uint64_t aux_bytes() const;
  /// Bytes of live base data.
  uint64_t base_bytes() const;

  /// Re-publishes this structure's space into the counters.
  void PublishSpace();

 private:
  struct Node;

  /// Deterministic tower-height generator (xorshift on a seeded state).
  size_t RandomHeight();
  /// Descends toward `key`, charging reads; fills `prev` per level when
  /// non-null. Returns the first node with node->key >= key (may be null).
  Node* FindGreaterOrEqual(Key key, std::vector<Node*>* prev);

  Options::SkipList options_;
  RumCounters* counters_;  // Not owned.
  Node* head_;
  size_t height_ = 1;
  size_t record_count_ = 0;
  size_t live_count_ = 0;
  uint64_t tower_slots_ = 0;  // Total forward-pointer slots allocated.
  uint64_t rng_state_;
};

/// The standalone skiplist access method of Figure 1 (read-optimized,
/// memory-resident, pointer-heavy).
class SkipListMethod : public AccessMethod {
 public:
  explicit SkipListMethod(const Options& options);
  ~SkipListMethod() override;

  std::string_view name() const override { return "skiplist"; }

  Status Insert(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  size_t size() const override;

 private:
  std::unique_ptr<SkipListMap> map_;
};

}  // namespace rum

#endif  // RUMLAB_METHODS_SKIPLIST_SKIPLIST_H_

#ifndef RUMLAB_METHODS_COLUMN_SORTED_COLUMN_H_
#define RUMLAB_METHODS_COLUMN_SORTED_COLUMN_H_

#include <memory>
#include <vector>

#include "core/access_method.h"
#include "core/options.h"
#include "storage/block_device.h"

namespace rum {

/// The "sorted column" base-data organization of the paper's Table 1:
/// entries kept globally sorted and dense across device blocks, with no
/// auxiliary structure.
///
/// With `column.sparse_index` set, it becomes Figure 1's "Sparse Index":
/// an in-memory array of one fence key per page replaces the device-level
/// binary search, so point lookups read exactly one block at the cost of
/// 8 auxiliary bytes per page (charged as reads per probe and as resident
/// space). Update costs are unchanged -- the sparse index rides along.
///
/// Costs (Table 1): point query O(log2 N) via binary search (block-level
/// probes here), range query O(log2 N + m), insert/delete O(N/B/2) -- every
/// page after the insertion point shifts by one entry, the linear update
/// price of keeping data sorted in place. Updates that change only the
/// value rewrite a single page.
///
/// All pages are full except the last one (density is maintained by the
/// shift cascades), so space amplification stays at the block-rounding
/// minimum.
class SortedColumn : public AccessMethod {
 public:
  explicit SortedColumn(const Options& options);
  SortedColumn(const Options& options, Device* device);

  ~SortedColumn() override;

  std::string_view name() const override {
    return sparse_ ? "sparse-index" : "sorted-column";
  }

  Status Insert(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  Status BulkLoad(std::span<const Entry> entries) override;
  size_t size() const override { return count_; }

  size_t page_count() const { return pages_.size(); }

 private:
  /// Binary search at block granularity for the page that contains (or
  /// would contain) `key`; every probe reads one page. Returns the page
  /// index (0..pages-1), or 0 when empty.
  Result<size_t> FindPage(Key key);

  Status LoadPage(size_t page_index, std::vector<Entry>* out);
  Status StorePage(size_t page_index, const std::vector<Entry>& entries);

  void RecountAuxSpace();

  std::unique_ptr<BlockDevice> owned_device_;
  Device* device_;
  bool pinned_pages_;
  size_t capacity_;  // Entries per page.
  bool sparse_;
  std::vector<PageId> pages_;
  std::vector<Key> fences_;  // First key per page (sparse mode only).
  size_t count_ = 0;
};

}  // namespace rum

#endif  // RUMLAB_METHODS_COLUMN_SORTED_COLUMN_H_

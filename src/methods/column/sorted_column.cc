#include "methods/column/sorted_column.h"

#include <algorithm>
#include <cassert>

#include "storage/page_format.h"

namespace rum {

SortedColumn::SortedColumn(const Options& options)
    : owned_device_(
          std::make_unique<BlockDevice>(options.block_size, &counters())),
      device_(owned_device_.get()),
      pinned_pages_(options.storage.pinned_pages),
      capacity_(PageFormat::CapacityFor(options.block_size)),
      sparse_(options.column.sparse_index) {}

SortedColumn::SortedColumn(const Options& options, Device* device)
    : device_(device),
      pinned_pages_(options.storage.pinned_pages),
      capacity_(PageFormat::CapacityFor(device->block_size())),
      sparse_(options.column.sparse_index) {}

void SortedColumn::RecountAuxSpace() {
  counters().SetSpace(DataClass::kAux,
                      static_cast<uint64_t>(fences_.size()) * sizeof(Key));
}

SortedColumn::~SortedColumn() = default;

Status SortedColumn::LoadPage(size_t page_index, std::vector<Entry>* out) {
  assert(page_index < pages_.size());
  Status s;
  if (pinned_pages_) {
    PageReadGuard guard;
    s = device_->PinForRead(pages_[page_index], &guard);
    if (!s.ok()) return s;
    return PageFormat::Unpack(guard.bytes(), out);
  }
  std::vector<uint8_t> block;
  s = device_->Read(pages_[page_index], &block);
  if (!s.ok()) return s;
  return PageFormat::Unpack(block, out);
}

Status SortedColumn::StorePage(size_t page_index,
                               const std::vector<Entry>& entries) {
  assert(page_index < pages_.size());
  Status s;
  if (pinned_pages_) {
    PageWriteGuard guard;
    s = device_->PinForWrite(pages_[page_index], &guard);
    if (!s.ok()) return s;
    s = PageFormat::PackInto(entries, guard.bytes());
    if (!s.ok()) return s;
    guard.MarkDirty();
    s = guard.Release();
    if (!s.ok()) return s;
  } else {
    std::vector<uint8_t> block;
    s = PageFormat::Pack(entries, device_->block_size(), &block);
    if (!s.ok()) return s;
    s = device_->Write(pages_[page_index], block);
    if (!s.ok()) return s;
  }
  if (sparse_ && !entries.empty()) {
    if (fences_.size() <= page_index) {
      fences_.resize(page_index + 1, 0);
    }
    if (fences_[page_index] != entries.front().key) {
      fences_[page_index] = entries.front().key;
      counters().OnWrite(DataClass::kAux, sizeof(Key));
    }
    RecountAuxSpace();
  }
  return Status::OK();
}

Result<size_t> SortedColumn::FindPage(Key key) {
  if (pages_.empty()) return static_cast<size_t>(0);
  if (sparse_) {
    // Binary search the in-memory fences: one aux key read per probe, no
    // device I/O until the single target page is fetched by the caller.
    size_t lo = 0;
    size_t hi = fences_.size();
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      counters().OnRead(DataClass::kAux, sizeof(Key));
      if (fences_[mid] <= key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo == 0 ? 0 : lo - 1;
  }
  size_t lo = 0;
  size_t hi = pages_.size() - 1;
  std::vector<Entry> entries;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    Key last_key;
    if (pinned_pages_) {
      // Each probe needs only the page's last key; read it off the pinned
      // block instead of materializing the page.
      PageReadGuard guard;
      Status s = device_->PinForRead(pages_[mid], &guard);
      if (!s.ok()) return s;
      size_t n = PageFormat::PeekCount(guard.bytes());
      assert(n > 0);
      last_key = PageFormat::EntryAt(guard.bytes(), n - 1).key;
    } else {
      Status s = LoadPage(mid, &entries);
      if (!s.ok()) return s;
      assert(!entries.empty());
      last_key = entries.back().key;
    }
    if (last_key < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status SortedColumn::Insert(Key key, Value value) {
  counters().OnInsert();
  counters().OnLogicalWrite(kEntrySize);
  if (pages_.empty()) {
    PageId first;
    Status alloc = device_->Allocate(DataClass::kBase, &first);
    if (!alloc.ok()) return alloc;
    pages_.push_back(first);
    Status s = StorePage(0, {Entry{key, value}});
    if (!s.ok()) return s;
    ++count_;
    return Status::OK();
  }
  Result<size_t> page = FindPage(key);
  if (!page.ok()) return page.status();
  size_t p = page.value();

  std::vector<Entry> entries;
  Status s = LoadPage(p, &entries);
  if (!s.ok()) return s;

  // Upsert: replace in place when the key exists.
  auto it = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const Entry& e, Key k) { return e.key < k; });
  if (it != entries.end() && it->key == key) {
    it->value = value;
    return StorePage(p, entries);
  }
  entries.insert(it, Entry{key, value});
  ++count_;

  // Shift cascade: push the overflow entry of each full page into the next
  // page, all the way to the tail. This is Table 1's O(N/B/2) insert.
  Entry carry{};
  bool have_carry = false;
  if (entries.size() > capacity_) {
    carry = entries.back();
    entries.pop_back();
    have_carry = true;
  }
  s = StorePage(p, entries);
  if (!s.ok()) return s;
  size_t q = p + 1;
  while (have_carry) {
    if (q == pages_.size()) {
      PageId tail;
      s = device_->Allocate(DataClass::kBase, &tail);
      if (!s.ok()) return s;
      pages_.push_back(tail);
      s = StorePage(q, {carry});
      if (!s.ok()) return s;
      break;
    }
    std::vector<Entry> next;
    s = LoadPage(q, &next);
    if (!s.ok()) return s;
    next.insert(next.begin(), carry);
    have_carry = false;
    if (next.size() > capacity_) {
      carry = next.back();
      next.pop_back();
      have_carry = true;
    }
    s = StorePage(q, next);
    if (!s.ok()) return s;
    ++q;
  }
  return Status::OK();
}

Status SortedColumn::Delete(Key key) {
  counters().OnDelete();
  counters().OnLogicalWrite(kEntrySize);
  if (pages_.empty()) return Status::OK();
  Result<size_t> page = FindPage(key);
  if (!page.ok()) return page.status();
  size_t p = page.value();

  std::vector<Entry> entries;
  Status s = LoadPage(p, &entries);
  if (!s.ok()) return s;
  auto it = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const Entry& e, Key k) { return e.key < k; });
  if (it == entries.end() || it->key != key) return Status::OK();
  entries.erase(it);
  --count_;

  // Borrow cascade: pull the first entry of every following page back so
  // all pages but the last stay full.
  for (size_t q = p + 1; q < pages_.size(); ++q) {
    std::vector<Entry> next;
    s = LoadPage(q, &next);
    if (!s.ok()) return s;
    assert(!next.empty());
    entries.push_back(next.front());
    next.erase(next.begin());
    s = StorePage(p, entries);
    if (!s.ok()) return s;
    entries = std::move(next);
    p = q;
  }
  if (entries.empty()) {
    s = device_->Free(pages_[p]);
    if (!s.ok()) return s;
    pages_.erase(pages_.begin() + static_cast<ptrdiff_t>(p));
    if (sparse_ && p < fences_.size()) {
      fences_.erase(fences_.begin() + static_cast<ptrdiff_t>(p));
      RecountAuxSpace();
    }
  } else {
    s = StorePage(p, entries);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Result<Value> SortedColumn::Get(Key key) {
  counters().OnPointQuery();
  if (pages_.empty()) return Status::NotFound();
  Result<size_t> page = FindPage(key);
  if (!page.ok()) return page.status();
  if (pinned_pages_) {
    // Binary search the pinned page in place: no entry materialization.
    PageReadGuard guard;
    Status s = device_->PinForRead(pages_[page.value()], &guard);
    if (!s.ok()) return s;
    size_t lo = 0;
    size_t hi = PageFormat::PeekCount(guard.bytes());
    size_t n = hi;
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (PageFormat::EntryAt(guard.bytes(), mid).key < key) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo >= n) return Status::NotFound();
    Entry e = PageFormat::EntryAt(guard.bytes(), lo);
    if (e.key != key) return Status::NotFound();
    counters().OnLogicalRead(kEntrySize);
    return e.value;
  }
  std::vector<Entry> entries;
  Status s = LoadPage(page.value(), &entries);
  if (!s.ok()) return s;
  auto it = std::lower_bound(
      entries.begin(), entries.end(), key,
      [](const Entry& e, Key k) { return e.key < k; });
  if (it == entries.end() || it->key != key) return Status::NotFound();
  counters().OnLogicalRead(kEntrySize);
  return it->value;
}

Status SortedColumn::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  counters().OnRangeQuery();
  if (pages_.empty()) return Status::OK();
  Result<size_t> page = FindPage(lo);
  if (!page.ok()) return page.status();
  uint64_t found = 0;
  std::vector<Entry> entries;
  for (size_t p = page.value(); p < pages_.size(); ++p) {
    Status s = LoadPage(p, &entries);
    if (!s.ok()) return s;
    bool past_end = false;
    for (const Entry& e : entries) {
      if (e.key > hi) {
        past_end = true;
        break;
      }
      if (e.key >= lo) {
        out->push_back(e);
        ++found;
      }
    }
    if (past_end) break;
  }
  counters().OnLogicalRead(found * kEntrySize);
  return Status::OK();
}

Status SortedColumn::BulkLoad(std::span<const Entry> entries) {
  Status s = CheckBulkLoadPreconditions(entries);
  if (!s.ok()) return s;
  std::vector<Entry> page;
  page.reserve(capacity_);
  for (const Entry& e : entries) {
    page.push_back(e);
    if (page.size() == capacity_) {
      PageId id;
      s = device_->Allocate(DataClass::kBase, &id);
      if (!s.ok()) return s;
      pages_.push_back(id);
      s = StorePage(pages_.size() - 1, page);
      if (!s.ok()) return s;
      page.clear();
    }
  }
  if (!page.empty()) {
    PageId id;
    s = device_->Allocate(DataClass::kBase, &id);
    if (!s.ok()) return s;
    pages_.push_back(id);
    s = StorePage(pages_.size() - 1, page);
    if (!s.ok()) return s;
  }
  count_ = entries.size();
  counters().OnLogicalWrite(static_cast<uint64_t>(entries.size()) *
                            kEntrySize);
  return Status::OK();
}

}  // namespace rum

#include "methods/column/unsorted_column.h"

#include <algorithm>

namespace rum {

namespace {
// Sentinel used to stop a HeapFile::ForEach early once a match is found.
Status StopIteration() { return Status(Code::kAlreadyExists, "stop"); }
bool IsStop(const Status& s) { return s.code() == Code::kAlreadyExists; }
}  // namespace

UnsortedColumn::UnsortedColumn(const Options& options)
    : owned_device_(
          std::make_unique<BlockDevice>(options.block_size, &counters())),
      device_(owned_device_.get()),
      heap_(std::make_unique<HeapFile>(device_, DataClass::kBase, &counters(),
                                       options.storage.pinned_pages)) {}

UnsortedColumn::UnsortedColumn(const Options& options, Device* device)
    : device_(device),
      heap_(std::make_unique<HeapFile>(device_, DataClass::kBase, &counters(),
                                       options.storage.pinned_pages)) {}

UnsortedColumn::~UnsortedColumn() = default;

Result<RowId> UnsortedColumn::FindRow(Key key) {
  RowId found = kInvalidRowId;
  Status s = heap_->ForEach([&](RowId row, const Entry& e) {
    if (e.key == key) {
      found = row;
      return StopIteration();
    }
    return Status::OK();
  });
  if (!s.ok() && !IsStop(s)) return s;
  return found;
}

Status UnsortedColumn::Append(Key key, Value value) {
  counters().OnInsert();
  counters().OnLogicalWrite(kEntrySize);
  Result<RowId> row = heap_->Append(Entry{key, value});
  return row.status();
}

Status UnsortedColumn::Insert(Key key, Value value) {
  counters().OnInsert();
  counters().OnLogicalWrite(kEntrySize);
  Result<RowId> row = FindRow(key);
  if (!row.ok()) return row.status();
  if (row.value() != kInvalidRowId) {
    return heap_->Set(row.value(), Entry{key, value});
  }
  Result<RowId> appended = heap_->Append(Entry{key, value});
  return appended.status();
}

Status UnsortedColumn::Delete(Key key) {
  counters().OnDelete();
  counters().OnLogicalWrite(kEntrySize);
  Result<RowId> row = FindRow(key);
  if (!row.ok()) return row.status();
  if (row.value() == kInvalidRowId) return Status::OK();  // Idempotent.
  RowId last = heap_->row_count() - 1;
  if (row.value() != last) {
    Result<Entry> tail = heap_->At(last);
    if (!tail.ok()) return tail.status();
    Status s = heap_->Set(row.value(), tail.value());
    if (!s.ok()) return s;
  }
  return heap_->PopBack();
}

Result<Value> UnsortedColumn::Get(Key key) {
  counters().OnPointQuery();
  Value found = 0;
  bool hit = false;
  Status s = heap_->ForEach([&](RowId, const Entry& e) {
    if (e.key == key) {
      found = e.value;
      hit = true;
      return StopIteration();
    }
    return Status::OK();
  });
  if (!s.ok() && !IsStop(s)) return s;
  if (!hit) return Status::NotFound();
  counters().OnLogicalRead(kEntrySize);
  return found;
}

Status UnsortedColumn::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  counters().OnRangeQuery();
  std::vector<Entry> hits;
  Status s = heap_->ForEach([&](RowId, const Entry& e) {
    if (e.key >= lo && e.key <= hi) hits.push_back(e);
    return Status::OK();
  });
  if (!s.ok()) return s;
  std::sort(hits.begin(), hits.end());
  counters().OnLogicalRead(static_cast<uint64_t>(hits.size()) * kEntrySize);
  out->insert(out->end(), hits.begin(), hits.end());
  return Status::OK();
}

Status UnsortedColumn::BulkLoad(std::span<const Entry> entries) {
  Status s = CheckBulkLoadPreconditions(entries);
  if (!s.ok()) return s;
  for (const Entry& e : entries) {
    Result<RowId> row = heap_->Append(e);
    if (!row.ok()) return row.status();
  }
  counters().OnLogicalWrite(static_cast<uint64_t>(entries.size()) *
                            kEntrySize);
  return heap_->Flush();
}

Status UnsortedColumn::Flush() { return heap_->Flush(); }

}  // namespace rum

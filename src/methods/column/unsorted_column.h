#ifndef RUMLAB_METHODS_COLUMN_UNSORTED_COLUMN_H_
#define RUMLAB_METHODS_COLUMN_UNSORTED_COLUMN_H_

#include <memory>
#include <vector>

#include "core/access_method.h"
#include "core/options.h"
#include "storage/block_device.h"
#include "storage/heap_file.h"

namespace rum {

/// The "unsorted column" base-data organization of the paper's Table 1: a
/// heap of entries in device blocks with no structure at all.
///
/// Costs (Table 1): bulk creation O(1) per entry (append), index size O(1)
/// (none), point query O(N/B/2) expected, range query O(N/B), insert O(1)
/// amortized (append). Upserts and deletes must first locate the key, which
/// is the linear-scan price the paper attributes to the structure-free
/// layout; `Append` provides the blind O(1) path used for bulk ingest.
class UnsortedColumn : public AccessMethod {
 public:
  /// Creates a column on its own simulated device.
  explicit UnsortedColumn(const Options& options);
  /// Creates a column on a borrowed device (e.g. under a cache).
  UnsortedColumn(const Options& options, Device* device);

  ~UnsortedColumn() override;

  std::string_view name() const override { return "unsorted-column"; }

  Status Insert(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  Status BulkLoad(std::span<const Entry> entries) override;
  Status Flush() override;
  size_t size() const override { return heap_->row_count(); }

  /// Blind append without the upsert existence check -- the O(1) insert of
  /// Table 1. The caller must guarantee the key is not already present.
  Status Append(Key key, Value value);

 private:
  /// Linear scan for a key; returns the row or kInvalidRowId.
  Result<RowId> FindRow(Key key);

  std::unique_ptr<BlockDevice> owned_device_;
  Device* device_;
  std::unique_ptr<HeapFile> heap_;
};

}  // namespace rum

#endif  // RUMLAB_METHODS_COLUMN_UNSORTED_COLUMN_H_

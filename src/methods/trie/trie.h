#ifndef RUMLAB_METHODS_TRIE_TRIE_H_
#define RUMLAB_METHODS_TRIE_TRIE_H_

#include <vector>

#include "core/access_method.h"
#include "core/options.h"

namespace rum {

/// A fixed-span radix trie over the 64-bit key space -- Figure 1's Trie,
/// deep in the read-optimized corner: lookups cost a constant
/// 64/`trie.span_bits` pointer chases regardless of N, paid for with heavy
/// pointer space (every inner node materializes 2^span child slots).
///
/// Keys are consumed most-significant-first so in-order traversal yields
/// ascending keys and range scans prune subtrees by prefix bounds.
///
/// Accounting: inner nodes are auxiliary (2^span pointers each); stored
/// entries are base data. Each level descended charges one pointer read.
class Trie : public AccessMethod {
 public:
  explicit Trie(const Options& options);
  ~Trie() override;

  std::string_view name() const override { return "trie"; }

  Status Insert(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  size_t size() const override { return count_; }

  /// Levels from root to leaf (= 64 / span_bits).
  size_t depth() const { return depth_; }
  size_t inner_node_count() const { return inner_nodes_; }

 private:
  struct Node {
    std::vector<Node*> children;
    Value value = 0;
    bool has_value = false;
  };

  /// Child slot of `key` at `level` (0 = root, most significant bits).
  size_t SlotAt(Key key, size_t level) const;
  void FreeSubtree(Node* node);
  /// In-order DFS over [lo, hi]; `prefix` holds the key bits above `level`.
  void ScanNode(const Node* node, size_t level, Key prefix, Key lo, Key hi,
                std::vector<Entry>* out, uint64_t* found);
  void RecountSpace();

  size_t span_bits_;
  size_t fanout_;
  size_t depth_;
  Node* root_;
  size_t count_ = 0;
  size_t inner_nodes_ = 0;
};

}  // namespace rum

#endif  // RUMLAB_METHODS_TRIE_TRIE_H_

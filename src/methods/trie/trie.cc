#include "methods/trie/trie.h"

#include <cassert>

namespace rum {

namespace {
constexpr uint64_t kPointerSize = sizeof(void*);
}  // namespace

Trie::Trie(const Options& options)
    : span_bits_(options.trie.span_bits),
      fanout_(static_cast<size_t>(1) << options.trie.span_bits),
      depth_(64 / options.trie.span_bits) {
  assert(span_bits_ >= 1 && span_bits_ <= 16 && 64 % span_bits_ == 0);
  root_ = new Node();
  root_->children.assign(fanout_, nullptr);
  inner_nodes_ = 1;
  RecountSpace();
}

Trie::~Trie() { FreeSubtree(root_); }

void Trie::FreeSubtree(Node* node) {
  if (node == nullptr) return;
  for (Node* child : node->children) {
    FreeSubtree(child);
  }
  delete node;
}

size_t Trie::SlotAt(Key key, size_t level) const {
  size_t shift = 64 - span_bits_ * (level + 1);
  return static_cast<size_t>((key >> shift) & (fanout_ - 1));
}

void Trie::RecountSpace() {
  counters().SetSpace(DataClass::kAux,
                      static_cast<uint64_t>(inner_nodes_) * fanout_ *
                          kPointerSize);
  counters().SetSpace(DataClass::kBase,
                      static_cast<uint64_t>(count_) * kEntrySize);
}

Status Trie::Insert(Key key, Value value) {
  counters().OnInsert();
  counters().OnLogicalWrite(kEntrySize);
  Node* node = root_;
  for (size_t level = 0; level + 1 < depth_; ++level) {
    size_t slot = SlotAt(key, level);
    counters().OnRead(DataClass::kAux, kPointerSize);
    if (node->children[slot] == nullptr) {
      Node* fresh = new Node();
      fresh->children.assign(fanout_, nullptr);
      node->children[slot] = fresh;
      ++inner_nodes_;
      counters().OnWrite(DataClass::kAux, kPointerSize);
    }
    node = node->children[slot];
  }
  size_t slot = SlotAt(key, depth_ - 1);
  counters().OnRead(DataClass::kAux, kPointerSize);
  if (node->children[slot] == nullptr) {
    Node* leaf = new Node();  // Leaf: no child array.
    node->children[slot] = leaf;
    counters().OnWrite(DataClass::kAux, kPointerSize);
  }
  Node* leaf = node->children[slot];
  if (!leaf->has_value) ++count_;
  leaf->value = value;
  leaf->has_value = true;
  counters().OnWrite(DataClass::kBase, kEntrySize);
  RecountSpace();
  return Status::OK();
}

Status Trie::Delete(Key key) {
  counters().OnDelete();
  counters().OnLogicalWrite(kEntrySize);
  // Descend, remembering the path for pruning.
  std::vector<Node*> path;
  std::vector<size_t> slots;
  Node* node = root_;
  for (size_t level = 0; level < depth_; ++level) {
    size_t slot = SlotAt(key, level);
    counters().OnRead(DataClass::kAux, kPointerSize);
    if (node->children[slot] == nullptr) return Status::OK();  // Absent.
    path.push_back(node);
    slots.push_back(slot);
    node = node->children[slot];
  }
  if (!node->has_value) return Status::OK();
  node->has_value = false;
  --count_;
  counters().OnWrite(DataClass::kBase, kEntrySize);
  // Prune now-empty nodes bottom-up (the leaf, then inner nodes with no
  // children left).
  delete node;
  path.back()->children[slots.back()] = nullptr;
  counters().OnWrite(DataClass::kAux, kPointerSize);
  for (size_t i = path.size(); i-- > 1;) {
    Node* parent = path[i];
    bool empty = true;
    for (Node* child : parent->children) {
      if (child != nullptr) {
        empty = false;
        break;
      }
    }
    if (!empty) break;
    delete parent;
    --inner_nodes_;
    path[i - 1]->children[slots[i - 1]] = nullptr;
    counters().OnWrite(DataClass::kAux, kPointerSize);
  }
  RecountSpace();
  return Status::OK();
}

Result<Value> Trie::Get(Key key) {
  counters().OnPointQuery();
  Node* node = root_;
  for (size_t level = 0; level < depth_; ++level) {
    size_t slot = SlotAt(key, level);
    counters().OnRead(DataClass::kAux, kPointerSize);
    node = node->children[slot];
    if (node == nullptr) return Status::NotFound();
  }
  if (!node->has_value) return Status::NotFound();
  counters().OnLogicalRead(kEntrySize);
  return node->value;
}

void Trie::ScanNode(const Node* node, size_t level, Key prefix, Key lo,
                    Key hi, std::vector<Entry>* out, uint64_t* found) {
  if (level == depth_) {
    if (node->has_value) {
      counters().OnRead(DataClass::kBase, kEntrySize);
      out->push_back(Entry{prefix, node->value});
      ++*found;
    }
    return;
  }
  size_t shift = 64 - span_bits_ * (level + 1);
  for (size_t slot = 0; slot < fanout_; ++slot) {
    const Node* child = node->children[slot];
    if (child == nullptr) continue;
    Key child_prefix = prefix | (static_cast<Key>(slot) << shift);
    // Bounds of the subtree rooted at this child.
    Key subtree_lo = child_prefix;
    Key subtree_hi =
        child_prefix | ((shift == 64) ? ~0ULL : ((1ULL << shift) - 1));
    if (subtree_hi < lo || subtree_lo > hi) continue;
    counters().OnRead(DataClass::kAux, kPointerSize);
    ScanNode(child, level + 1, child_prefix, lo, hi, out, found);
  }
}

Status Trie::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  counters().OnRangeQuery();
  uint64_t found = 0;
  ScanNode(root_, 0, 0, lo, hi, out, &found);
  counters().OnLogicalRead(found * kEntrySize);
  return Status::OK();
}

}  // namespace rum

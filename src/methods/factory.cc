#include "methods/factory.h"

#include "methods/approx/bloom_column.h"
#include "methods/approx/update_absorber.h"
#include "methods/bitmap/bitmap_index.h"
#include "methods/btree/btree.h"
#include "methods/column/sorted_column.h"
#include "methods/column/unsorted_column.h"
#include "methods/cracking/cracking.h"
#include "methods/diff/stepped_merge.h"
#include "methods/extremes/dense_array.h"
#include "methods/extremes/magic_array.h"
#include "methods/extremes/pure_log.h"
#include "methods/hash/hash_index.h"
#include "methods/hotcold/hot_cold.h"
#include "methods/imprints/imprints.h"
#include "methods/lsm/lsm_tree.h"
#include "methods/pbt/pbt.h"
#include "methods/sharded/sharded_method.h"
#include "methods/skiplist/skiplist.h"
#include "methods/trie/trie.h"
#include "methods/zonemap/zonemap.h"

namespace rum {

std::unique_ptr<AccessMethod> MakeAccessMethod(std::string_view name,
                                               const Options& options) {
  if (!ValidateOptions(options).ok()) return nullptr;
  // "sharded-<inner>" wraps options.sharded.shards instances of <inner> in
  // a ShardedMethod (hash partitioning + per-shard locking).
  constexpr std::string_view kShardedPrefix = "sharded-";
  if (name.substr(0, kShardedPrefix.size()) == kShardedPrefix) {
    std::string_view inner = name.substr(kShardedPrefix.size());
    if (inner.substr(0, kShardedPrefix.size()) == kShardedPrefix) {
      return nullptr;  // No nested sharding.
    }
    std::vector<std::unique_ptr<AccessMethod>> shards;
    shards.reserve(options.sharded.shards);
    for (size_t i = 0; i < options.sharded.shards; ++i) {
      auto method = MakeAccessMethod(inner, options);
      if (method == nullptr) return nullptr;
      shards.push_back(std::move(method));
    }
    return std::make_unique<ShardedMethod>(std::string(name),
                                           std::move(shards));
  }
  if (name == "btree") return std::make_unique<BTree>(options);
  if (name == "hash") return std::make_unique<HashIndex>(options);
  if (name == "zonemap") return std::make_unique<ZoneMapColumn>(options);
  if (name == "lsm-leveled") {
    Options opts = options;
    opts.lsm.policy = CompactionPolicy::kLeveled;
    return std::make_unique<LsmTree>(opts);
  }
  if (name == "lsm-tiered") {
    Options opts = options;
    opts.lsm.policy = CompactionPolicy::kTiered;
    return std::make_unique<LsmTree>(opts);
  }
  if (name == "lsm-compressed") {
    Options opts = options;
    opts.lsm.policy = CompactionPolicy::kLeveled;
    opts.lsm.compress_runs = true;
    return std::make_unique<LsmTree>(opts);
  }
  if (name == "sorted-column") {
    return std::make_unique<SortedColumn>(options);
  }
  if (name == "unsorted-column") {
    return std::make_unique<UnsortedColumn>(options);
  }
  if (name == "skiplist") return std::make_unique<SkipListMethod>(options);
  if (name == "trie") return std::make_unique<Trie>(options);
  if (name == "bitmap") {
    Options opts = options;
    opts.bitmap.update_friendly = false;
    return std::make_unique<BitmapIndex>(opts);
  }
  if (name == "bitmap-delta") {
    Options opts = options;
    opts.bitmap.update_friendly = true;
    return std::make_unique<BitmapIndex>(opts);
  }
  if (name == "cracking") return std::make_unique<CrackedColumn>(options);
  if (name == "stepped-merge") {
    return std::make_unique<SteppedMergeTree>(options);
  }
  if (name == "bloom-zones") {
    return std::make_unique<BloomZoneColumn>(options);
  }
  if (name == "imprints") return std::make_unique<ImprintsColumn>(options);
  if (name == "pbt") return std::make_unique<PartitionedBTree>(options);
  if (name == "sparse-index") {
    Options opts = options;
    opts.column.sparse_index = true;
    return std::make_unique<SortedColumn>(opts);
  }
  if (name == "hot-cold") return std::make_unique<HotColdStore>(options);
  if (name == "absorbed-btree") {
    return std::make_unique<UpdateAbsorber>(
        std::make_unique<BTree>(options), options);
  }
  if (name == "absorbed-bitmap") {
    Options opts = options;
    opts.bitmap.update_friendly = false;  // The absorber buffers instead.
    return std::make_unique<UpdateAbsorber>(
        std::make_unique<BitmapIndex>(opts), options);
  }
  if (name == "magic-array") return std::make_unique<MagicArray>(options);
  if (name == "pure-log") return std::make_unique<PureLog>(options);
  if (name == "dense-array") return std::make_unique<DenseArray>(options);
  return nullptr;
}

std::vector<std::string_view> AllAccessMethodNames() {
  return {
      "btree",         "hash",          "zonemap",       "lsm-leveled",
      "lsm-tiered",    "lsm-compressed", "sorted-column", "unsorted-column", "skiplist",
      "trie",          "bitmap",        "bitmap-delta",  "cracking",
      "stepped-merge", "bloom-zones",   "imprints",      "hot-cold",
      "pbt",           "sparse-index",
      "absorbed-btree", "absorbed-bitmap",
      "magic-array",   "pure-log",      "dense-array",
      "sharded-btree", "sharded-hash",  "sharded-skiplist",
      "sharded-lsm-leveled",
  };
}

}  // namespace rum

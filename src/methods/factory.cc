#include "methods/factory.h"

#include "methods/approx/bloom_column.h"
#include "methods/approx/update_absorber.h"
#include "methods/bitmap/bitmap_index.h"
#include "methods/btree/btree.h"
#include "methods/column/sorted_column.h"
#include "methods/column/unsorted_column.h"
#include "methods/cracking/cracking.h"
#include "methods/diff/stepped_merge.h"
#include "methods/extremes/dense_array.h"
#include "methods/extremes/magic_array.h"
#include "methods/extremes/pure_log.h"
#include "methods/hash/hash_index.h"
#include "methods/hotcold/hot_cold.h"
#include "methods/imprints/imprints.h"
#include "methods/lsm/lsm_tree.h"
#include "methods/pbt/pbt.h"
#include "methods/sharded/sharded_method.h"
#include "methods/skiplist/skiplist.h"
#include "methods/trie/trie.h"
#include "methods/zonemap/zonemap.h"
#include "service/scheduled_method.h"

namespace rum {

namespace {

/// Constructs with an external device when one was supplied and the method
/// supports it; otherwise the method owns a private BlockDevice.
template <typename Method>
std::unique_ptr<AccessMethod> MakeBacked(const Options& options,
                                         Device* device) {
  if (device != nullptr) return std::make_unique<Method>(options, device);
  return std::make_unique<Method>(options);
}

std::unique_ptr<AccessMethod> MakeImpl(std::string_view name,
                                       const Options& options,
                                       Device* device) {
  if (!ValidateOptions(options).ok()) return nullptr;
  // "sharded-<inner>" wraps options.sharded.shards instances of <inner> in
  // a ShardedMethod (hash partitioning + per-shard locking). All shards
  // share `device` when one is given; the stack below serializes itself.
  // The one shared Options also carries options.memory.arbiter, so every
  // shard's pools (and a shared CachingDevice's) register with the same
  // global memory arbiter -- one budget across the whole sharded stack.
  constexpr std::string_view kShardedPrefix = "sharded-";
  if (name.substr(0, kShardedPrefix.size()) == kShardedPrefix) {
    std::string_view inner = name.substr(kShardedPrefix.size());
    if (inner.substr(0, kShardedPrefix.size()) == kShardedPrefix) {
      return nullptr;  // No nested sharding.
    }
    std::vector<std::unique_ptr<AccessMethod>> shards;
    shards.reserve(options.sharded.shards);
    for (size_t i = 0; i < options.sharded.shards; ++i) {
      auto method = MakeImpl(inner, options, device);
      if (method == nullptr) return nullptr;
      shards.push_back(std::move(method));
    }
    return std::make_unique<ShardedMethod>(std::string(name),
                                           std::move(shards));
  }
  if (name == "btree") return MakeBacked<BTree>(options, device);
  if (name == "hash") return MakeBacked<HashIndex>(options, device);
  if (name == "zonemap") return MakeBacked<ZoneMapColumn>(options, device);
  if (name == "lsm-leveled") {
    Options opts = options;
    opts.lsm.policy = LsmPolicy::kLeveled;
    return MakeBacked<LsmTree>(opts, device);
  }
  if (name == "lsm-tiered") {
    Options opts = options;
    opts.lsm.policy = LsmPolicy::kTiered;
    return MakeBacked<LsmTree>(opts, device);
  }
  if (name == "lsm-lazy") {
    Options opts = options;
    opts.lsm.policy = LsmPolicy::kLazyLeveled;
    return MakeBacked<LsmTree>(opts, device);
  }
  if (name == "lsm-hybrid") {
    Options opts = options;
    opts.lsm.policy = LsmPolicy::kHybrid;
    return MakeBacked<LsmTree>(opts, device);
  }
  if (name == "lsm-compressed") {
    Options opts = options;
    opts.lsm.policy = LsmPolicy::kLeveled;
    opts.lsm.compress_runs = true;
    return MakeBacked<LsmTree>(opts, device);
  }
  if (name == "sorted-column") {
    return MakeBacked<SortedColumn>(options, device);
  }
  if (name == "unsorted-column") {
    return MakeBacked<UnsortedColumn>(options, device);
  }
  if (name == "skiplist") return std::make_unique<SkipListMethod>(options);
  if (name == "trie") return std::make_unique<Trie>(options);
  if (name == "bitmap") {
    Options opts = options;
    opts.bitmap.update_friendly = false;
    return MakeBacked<BitmapIndex>(opts, device);
  }
  if (name == "bitmap-delta") {
    Options opts = options;
    opts.bitmap.update_friendly = true;
    return MakeBacked<BitmapIndex>(opts, device);
  }
  if (name == "cracking") return std::make_unique<CrackedColumn>(options);
  if (name == "stepped-merge") {
    return MakeBacked<SteppedMergeTree>(options, device);
  }
  if (name == "bloom-zones") {
    return MakeBacked<BloomZoneColumn>(options, device);
  }
  if (name == "imprints") return MakeBacked<ImprintsColumn>(options, device);
  if (name == "pbt") return std::make_unique<PartitionedBTree>(options);
  if (name == "sparse-index") {
    Options opts = options;
    opts.column.sparse_index = true;
    return MakeBacked<SortedColumn>(opts, device);
  }
  if (name == "hot-cold") return std::make_unique<HotColdStore>(options);
  if (name == "absorbed-btree") {
    return std::make_unique<UpdateAbsorber>(
        device != nullptr ? std::make_unique<BTree>(options, device)
                          : std::make_unique<BTree>(options),
        options);
  }
  if (name == "absorbed-bitmap") {
    Options opts = options;
    opts.bitmap.update_friendly = false;  // The absorber buffers instead.
    return std::make_unique<UpdateAbsorber>(
        device != nullptr ? std::make_unique<BitmapIndex>(opts, device)
                          : std::make_unique<BitmapIndex>(opts),
        options);
  }
  if (name == "magic-array") return std::make_unique<MagicArray>(options);
  if (name == "pure-log") return std::make_unique<PureLog>(options);
  if (name == "dense-array") return std::make_unique<DenseArray>(options);
  return nullptr;
}

/// Installs the service-layer front door around the finished stack when
/// Options::service.enabled. Applied only at the public entry points -- the
/// recursive MakeImpl never wraps inner shards, so one scheduler fronts the
/// whole method.
std::unique_ptr<AccessMethod> MaybeSchedule(
    std::unique_ptr<AccessMethod> method, const Options& options) {
  if (method == nullptr || !options.service.enabled) return method;
  return std::make_unique<ScheduledMethod>(std::move(method), options);
}

}  // namespace

std::unique_ptr<AccessMethod> MakeAccessMethod(std::string_view name,
                                               const Options& options) {
  return MaybeSchedule(MakeImpl(name, options, nullptr), options);
}

std::unique_ptr<AccessMethod> MakeAccessMethod(std::string_view name,
                                               const Options& options,
                                               Device* device) {
  return MaybeSchedule(MakeImpl(name, options, device), options);
}

std::vector<std::string_view> AllAccessMethodNames() {
  return {
      "btree",         "hash",          "zonemap",       "lsm-leveled",
      "lsm-tiered",    "lsm-lazy",      "lsm-hybrid",
      "lsm-compressed", "sorted-column", "unsorted-column", "skiplist",
      "trie",          "bitmap",        "bitmap-delta",  "cracking",
      "stepped-merge", "bloom-zones",   "imprints",      "hot-cold",
      "pbt",           "sparse-index",
      "absorbed-btree", "absorbed-bitmap",
      "magic-array",   "pure-log",      "dense-array",
      "sharded-btree", "sharded-hash",  "sharded-skiplist",
      "sharded-lsm-leveled",
  };
}

}  // namespace rum

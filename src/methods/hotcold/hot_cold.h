#ifndef RUMLAB_METHODS_HOTCOLD_HOT_COLD_H_
#define RUMLAB_METHODS_HOTCOLD_HOT_COLD_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/access_method.h"
#include "core/options.h"
#include "methods/sketch/count_min.h"

namespace rum {

/// The paper's "dynamic RUM balance" (Section 5) applied at key
/// granularity: a store that keeps its *hot* keys in a read-optimized
/// in-memory table and its cold mass in a write/space-optimized LSM,
/// deciding hotness online with a Count-Min sketch.
///
/// Skewed workloads (the common case the paper's Zipf-shaped motivation
/// assumes) concentrate accesses on few keys; promoting exactly those keys
/// buys most of a hash index's read performance for a small fraction of
/// its memory overhead. The sketch is the paper's space-optimized
/// auxiliary structure doing the steering: frequencies are approximate
/// (never under-counted) and cost O(1) space per key tracked.
///
/// Mechanics: reads and writes of a key raise its sketch estimate; once it
/// crosses `hot_cold.promote_estimate` the entry moves into the hot table
/// (write-back, dirty-tracked). When the table exceeds
/// `hot_cold.hot_capacity`, a sampled-coldest victim is written back to
/// the LSM. Scans merge the hot overlay with the cold structure.
class HotColdStore : public AccessMethod {
 public:
  explicit HotColdStore(const Options& options);
  ~HotColdStore() override;

  std::string_view name() const override { return "hot-cold"; }

  Status Insert(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  Status BulkLoad(std::span<const Entry> entries) override;
  Status Flush() override;
  size_t size() const override { return live_keys_.size(); }

  CounterSnapshot stats() const override;
  void ResetStats() override;

  size_t hot_count() const { return hot_.size(); }
  uint64_t promotions() const { return promotions_; }
  uint64_t evictions() const { return evictions_; }

 private:
  struct HotEntry {
    Value value;
    bool dirty;
  };

  /// Approximate in-memory footprint of one hot entry (key, value, flag,
  /// hash-map overhead).
  static constexpr uint64_t kHotEntrySize = 32;

  /// Records one access and promotes the key if it is hot enough.
  /// `known_value`/`have_value` let callers promote without a re-read.
  Status Track(Key key, bool have_value, Value known_value);
  /// Moves the sampled-coldest hot entry back to the LSM.
  Status EvictOne();
  void RepublishHotSpace();

  Options options_;
  std::unique_ptr<AccessMethod> cold_;
  RumCounters own_;  // Hot-table + sketch traffic.
  std::unique_ptr<CountMinSketch> sketch_;
  std::unordered_map<Key, HotEntry> hot_;
  uint64_t promotions_ = 0;
  uint64_t evictions_ = 0;
  uint64_t evict_cursor_ = 0;  // Deterministic sampling state.
  // Simulator-side bookkeeping (unaccounted): exact live-key set.
  std::unordered_set<Key> live_keys_;
};

}  // namespace rum

#endif  // RUMLAB_METHODS_HOTCOLD_HOT_COLD_H_

#include "methods/hotcold/hot_cold.h"

#include <algorithm>

#include "methods/lsm/lsm_tree.h"

namespace rum {

HotColdStore::HotColdStore(const Options& options)
    : options_(options),
      cold_(std::make_unique<LsmTree>(options)),
      sketch_(std::make_unique<CountMinSketch>(options.hot_cold.sketch_width,
                                               options.hot_cold.sketch_depth,
                                               &own_)) {}

HotColdStore::~HotColdStore() = default;

void HotColdStore::RepublishHotSpace() {
  // The hot table duplicates (or shadows) cold data: pure overhead bought
  // for read performance. Sketch space is charged by the sketch itself.
  own_.SetSpace(DataClass::kAux,
                sketch_->space_bytes() +
                    static_cast<uint64_t>(hot_.size()) * kHotEntrySize);
}

Status HotColdStore::EvictOne() {
  if (hot_.empty()) return Status::OK();
  // Sample a few entries deterministically and evict the coldest.
  auto it = hot_.begin();
  std::advance(it, static_cast<long>(evict_cursor_ % hot_.size()));
  evict_cursor_ = evict_cursor_ * 6364136223846793005ULL + 1;
  auto victim = it;
  uint64_t victim_freq = sketch_->Estimate(it->first);
  for (int samples = 1; samples < 4; ++samples) {
    ++it;
    if (it == hot_.end()) it = hot_.begin();
    uint64_t freq = sketch_->Estimate(it->first);
    if (freq < victim_freq) {
      victim = it;
      victim_freq = freq;
    }
  }
  if (victim->second.dirty) {
    Status s = cold_->Insert(victim->first, victim->second.value);
    if (!s.ok()) return s;
  }
  own_.OnWrite(DataClass::kAux, kHotEntrySize);
  hot_.erase(victim);
  ++evictions_;
  RepublishHotSpace();
  return Status::OK();
}

Status HotColdStore::Track(Key key, bool have_value, Value known_value) {
  sketch_->Add(key);
  if (sketch_->Estimate(key) < options_.hot_cold.promote_estimate) {
    return Status::OK();
  }
  if (hot_.find(key) != hot_.end()) return Status::OK();
  if (!live_keys_.contains(key)) return Status::OK();
  Value value = known_value;
  if (!have_value) {
    Result<Value> from_cold = cold_->Get(key);
    if (!from_cold.ok()) return Status::OK();  // Raced with delete; skip.
    value = from_cold.value();
  }
  // A clean promotion: the cold copy stays authoritative until the hot
  // entry is dirtied.
  hot_.emplace(key, HotEntry{value, /*dirty=*/false});
  own_.OnWrite(DataClass::kAux, kHotEntrySize);
  ++promotions_;
  RepublishHotSpace();
  if (hot_.size() > options_.hot_cold.hot_capacity) {
    return EvictOne();
  }
  return Status::OK();
}

Status HotColdStore::Insert(Key key, Value value) {
  counters().OnInsert();
  counters().OnLogicalWrite(kEntrySize);
  live_keys_.insert(key);
  own_.OnRead(DataClass::kAux, kHotEntrySize);  // Hot-table probe.
  auto it = hot_.find(key);
  if (it != hot_.end()) {
    // Hot write: absorbed in memory, written back on eviction/flush.
    it->second = HotEntry{value, /*dirty=*/true};
    own_.OnWrite(DataClass::kAux, kHotEntrySize);
    sketch_->Add(key);
    return Status::OK();
  }
  Status s = cold_->Insert(key, value);
  if (!s.ok()) return s;
  return Track(key, /*have_value=*/true, value);
}

Status HotColdStore::Delete(Key key) {
  counters().OnDelete();
  counters().OnLogicalWrite(kEntrySize);
  live_keys_.erase(key);
  own_.OnRead(DataClass::kAux, kHotEntrySize);
  auto it = hot_.find(key);
  if (it != hot_.end()) {
    hot_.erase(it);
    own_.OnWrite(DataClass::kAux, kHotEntrySize);
    RepublishHotSpace();
  }
  return cold_->Delete(key);
}

Result<Value> HotColdStore::Get(Key key) {
  counters().OnPointQuery();
  own_.OnRead(DataClass::kAux, kHotEntrySize);
  auto it = hot_.find(key);
  if (it != hot_.end()) {
    counters().OnLogicalRead(kEntrySize);
    sketch_->Add(key);
    return it->second.value;
  }
  Result<Value> result = cold_->Get(key);
  if (result.ok()) {
    counters().OnLogicalRead(kEntrySize);
    Status s = Track(key, /*have_value=*/true, result.value());
    if (!s.ok()) return s;
  }
  return result;
}

Status HotColdStore::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  counters().OnRangeQuery();
  std::vector<Entry> cold_hits;
  Status s = cold_->Scan(lo, hi, &cold_hits);
  if (!s.ok()) return s;
  // Overlay dirty hot entries (clean ones agree with the cold copy) and
  // add hot-only keys.
  own_.OnRead(DataClass::kAux,
              static_cast<uint64_t>(hot_.size()) * kHotEntrySize);
  std::unordered_map<Key, Value> overlay;
  for (const auto& [key, entry] : hot_) {
    if (key >= lo && key <= hi && entry.dirty) overlay[key] = entry.value;
  }
  std::vector<Entry> merged;
  merged.reserve(cold_hits.size());
  for (const Entry& e : cold_hits) {
    auto it = overlay.find(e.key);
    if (it != overlay.end()) {
      merged.push_back(Entry{e.key, it->second});
      overlay.erase(it);
    } else {
      merged.push_back(e);
    }
  }
  for (const auto& [key, value] : overlay) {
    merged.push_back(Entry{key, value});
  }
  std::sort(merged.begin(), merged.end());
  counters().OnLogicalRead(static_cast<uint64_t>(merged.size()) *
                           kEntrySize);
  out->insert(out->end(), merged.begin(), merged.end());
  return Status::OK();
}

Status HotColdStore::BulkLoad(std::span<const Entry> entries) {
  if (size() != 0) {
    return Status::InvalidArgument("BulkLoad requires an empty structure");
  }
  counters().OnLogicalWrite(static_cast<uint64_t>(entries.size()) *
                            kEntrySize);
  for (const Entry& e : entries) live_keys_.insert(e.key);
  return cold_->BulkLoad(entries);
}

Status HotColdStore::Flush() {
  // Write back every dirty hot entry; the table stays populated (clean).
  for (auto& [key, entry] : hot_) {
    if (entry.dirty) {
      Status s = cold_->Insert(key, entry.value);
      if (!s.ok()) return s;
      entry.dirty = false;
    }
  }
  return cold_->Flush();
}

CounterSnapshot HotColdStore::stats() const {
  CounterSnapshot snap = cold_->stats();
  snap += own_.snapshot();
  const CounterSnapshot& wrapper = AccessMethod::stats();
  snap.logical_bytes_read = wrapper.logical_bytes_read;
  snap.logical_bytes_written = wrapper.logical_bytes_written;
  snap.point_queries = wrapper.point_queries;
  snap.range_queries = wrapper.range_queries;
  snap.inserts = wrapper.inserts;
  snap.updates = wrapper.updates;
  snap.deletes = wrapper.deletes;
  return snap;
}

void HotColdStore::ResetStats() {
  AccessMethod::ResetStats();
  cold_->ResetStats();
  own_.ResetTraffic();
}

}  // namespace rum

#ifndef RUMLAB_METHODS_BITMAP_BITMAP_INDEX_H_
#define RUMLAB_METHODS_BITMAP_BITMAP_INDEX_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "core/access_method.h"
#include "core/options.h"
#include "methods/bitmap/wah.h"
#include "storage/block_device.h"
#include "storage/heap_file.h"

namespace rum {

/// A bitmap index with WAH compression over a heap file, plus the paper's
/// Section-5 "update-friendly bitmap indexes, where updates are absorbed
/// using additional, highly compressible, bitvectors which are gradually
/// merged".
///
/// The key domain `[0, bitmap.key_domain)` is partitioned into
/// `bitmap.cardinality` equal bins; bin b's bitvector marks the heap rows
/// whose key falls in bin b. Queries decode the qualifying bins' bitvectors
/// (auxiliary reads proportional to their *compressed* size -- the space
/// win of Figure 1's right corner) and fetch only the candidate heap pages.
///
/// Updates are where the classic structure hurts: a direct insert appends
/// one bit to *every* bin's bitvector, and a direct delete rebuilds the
/// deletion bitvector. With `bitmap.update_friendly` set, inserts go to a
/// per-bin uncompressed delta row list and deletes to a deleted-row set;
/// both merge into the compressed bitmaps once
/// `bitmap.delta_merge_threshold` pending updates accumulate.
class BitmapIndex : public AccessMethod {
 public:
  explicit BitmapIndex(const Options& options);
  BitmapIndex(const Options& options, Device* device);

  ~BitmapIndex() override;

  std::string_view name() const override {
    return update_friendly_ ? "bitmap-delta" : "bitmap";
  }

  Status Insert(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  Status BulkLoad(std::span<const Entry> entries) override;
  Status Flush() override;
  size_t size() const override { return live_; }

  size_t bin_count() const { return bins_.size(); }
  /// Total compressed bytes across all bin bitvectors.
  uint64_t compressed_bytes() const;
  /// Pending (unmerged) delta updates.
  size_t pending_deltas() const;

 private:
  struct Bin {
    WahBitmap bitmap;
    std::vector<RowId> add_delta;  // Rows added since the last merge.
  };

  size_t BinOf(Key key) const;
  /// Charges a decode of a bitmap's compressed words.
  void ChargeDecode(const WahBitmap& bitmap);
  /// Candidate rows of one bin: compressed bits + add-delta - deletions.
  void CollectBin(size_t bin, std::vector<RowId>* rows);
  /// Merges all pending deltas into the compressed bitmaps (rebuild).
  Status MergeDeltas();
  /// Appends row bits for a new row with key `key` directly to every bin.
  void DirectAppendRow(Key key);
  /// Rebuilds `deleted_bitmap_` from `deleted_rows_` (direct mode delete).
  void RebuildDeletedBitmap();
  void RecountAuxSpace();
  /// Locates the live row holding `key`, if any (charged).
  Result<RowId> FindRow(Key key);

  std::unique_ptr<BlockDevice> owned_device_;
  Device* device_;
  bool update_friendly_;
  size_t merge_threshold_;
  Key key_domain_;
  Key bin_width_;

  std::unique_ptr<HeapFile> heap_;
  std::vector<Bin> bins_;
  WahBitmap deleted_bitmap_;               // Rows deleted, merged form.
  std::unordered_set<RowId> deleted_rows_;  // Rows deleted, pending.
  uint64_t indexed_rows_ = 0;  // Rows covered by the compressed bitmaps.
  size_t live_ = 0;
};

}  // namespace rum

#endif  // RUMLAB_METHODS_BITMAP_BITMAP_INDEX_H_

#ifndef RUMLAB_METHODS_BITMAP_WAH_H_
#define RUMLAB_METHODS_BITMAP_WAH_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace rum {

/// A Word-Aligned Hybrid (WAH) compressed bitvector, the encoding behind
/// FastBit-style bitmap indexes (paper reference [51]).
///
/// 32-bit words: a literal word (MSB 0) carries 31 raw bits; a fill word
/// (MSB 1) carries a fill bit and a 30-bit count of 31-bit groups. Bits are
/// append-only; position-ordered appends keep runs maximally merged.
class WahBitmap {
 public:
  WahBitmap() = default;

  /// Appends one bit at the next position.
  void AppendBit(bool bit);
  /// Appends `count` copies of `bit`.
  void AppendRun(bool bit, uint64_t count);

  /// Calls `visit(position)` for every set bit, in order.
  void ForEachSetBit(const std::function<void(uint64_t)>& visit) const;

  /// Bits appended so far.
  uint64_t bit_count() const { return bit_count_; }
  /// Set bits (popcount).
  uint64_t set_count() const { return set_count_; }
  /// Compressed size: words plus the active group.
  uint64_t space_bytes() const {
    return (words_.size() + 1) * sizeof(uint32_t);
  }
  size_t word_count() const { return words_.size(); }

  /// Removes all bits.
  void Clear();

 private:
  static constexpr uint32_t kFillFlag = 0x80000000u;
  static constexpr uint32_t kFillBit = 0x40000000u;
  static constexpr uint32_t kCountMask = 0x3FFFFFFFu;
  static constexpr size_t kGroupBits = 31;

  /// Emits the full active group as a literal or merges it into a fill.
  void FlushGroup();

  std::vector<uint32_t> words_;
  uint32_t active_ = 0;       // Bits of the in-progress group (LSB first).
  size_t active_bits_ = 0;    // How many bits of `active_` are in use.
  uint64_t bit_count_ = 0;
  uint64_t set_count_ = 0;
};

}  // namespace rum

#endif  // RUMLAB_METHODS_BITMAP_WAH_H_

#include "methods/bitmap/bitmap_index.h"

#include <algorithm>
#include <cassert>

namespace rum {

BitmapIndex::BitmapIndex(const Options& options)
    : owned_device_(
          std::make_unique<BlockDevice>(options.block_size, &counters())),
      device_(owned_device_.get()),
      update_friendly_(options.bitmap.update_friendly),
      merge_threshold_(options.bitmap.delta_merge_threshold),
      key_domain_(options.bitmap.key_domain),
      heap_(std::make_unique<HeapFile>(device_, DataClass::kBase, &counters(),
                                       options.storage.pinned_pages)) {
  bins_.resize(std::max<size_t>(1, options.bitmap.cardinality));
  bin_width_ = std::max<Key>(1, key_domain_ / bins_.size());
  RecountAuxSpace();
}

BitmapIndex::BitmapIndex(const Options& options, Device* device)
    : device_(device),
      update_friendly_(options.bitmap.update_friendly),
      merge_threshold_(options.bitmap.delta_merge_threshold),
      key_domain_(options.bitmap.key_domain),
      heap_(std::make_unique<HeapFile>(device_, DataClass::kBase, &counters(),
                                       options.storage.pinned_pages)) {
  bins_.resize(std::max<size_t>(1, options.bitmap.cardinality));
  bin_width_ = std::max<Key>(1, key_domain_ / bins_.size());
  RecountAuxSpace();
}

BitmapIndex::~BitmapIndex() = default;

size_t BitmapIndex::BinOf(Key key) const {
  size_t bin = static_cast<size_t>(key / bin_width_);
  return std::min(bin, bins_.size() - 1);
}

uint64_t BitmapIndex::compressed_bytes() const {
  uint64_t total = deleted_bitmap_.space_bytes();
  for (const Bin& bin : bins_) {
    total += bin.bitmap.space_bytes();
  }
  return total;
}

size_t BitmapIndex::pending_deltas() const {
  size_t total = deleted_rows_.size();
  for (const Bin& bin : bins_) {
    total += bin.add_delta.size();
  }
  return total;
}

void BitmapIndex::ChargeDecode(const WahBitmap& bitmap) {
  counters().OnRead(DataClass::kAux, bitmap.space_bytes());
}

void BitmapIndex::RecountAuxSpace() {
  uint64_t bytes = compressed_bytes();
  for (const Bin& bin : bins_) {
    bytes += static_cast<uint64_t>(bin.add_delta.size()) * sizeof(RowId);
  }
  bytes += static_cast<uint64_t>(deleted_rows_.size()) * sizeof(RowId);
  counters().SetSpace(DataClass::kAux, bytes);
}

void BitmapIndex::CollectBin(size_t bin_index, std::vector<RowId>* rows) {
  const Bin& bin = bins_[bin_index];
  ChargeDecode(bin.bitmap);
  // Deleted rows come from both the merged deletion bitmap and the pending
  // set.
  std::unordered_set<RowId> dead(deleted_rows_.begin(), deleted_rows_.end());
  ChargeDecode(deleted_bitmap_);
  deleted_bitmap_.ForEachSetBit(
      [&](uint64_t row) { dead.insert(static_cast<RowId>(row)); });
  bin.bitmap.ForEachSetBit([&](uint64_t row) {
    if (dead.find(static_cast<RowId>(row)) == dead.end()) {
      rows->push_back(static_cast<RowId>(row));
    }
  });
  counters().OnRead(
      DataClass::kAux,
      static_cast<uint64_t>(bin.add_delta.size()) * sizeof(RowId));
  for (RowId row : bin.add_delta) {
    if (dead.find(row) == dead.end()) rows->push_back(row);
  }
  std::sort(rows->begin(), rows->end());
}

void BitmapIndex::DirectAppendRow(Key key) {
  size_t target = BinOf(key);
  for (size_t b = 0; b < bins_.size(); ++b) {
    size_t words_before = bins_[b].bitmap.word_count();
    bins_[b].bitmap.AppendBit(b == target);
    size_t emitted = bins_[b].bitmap.word_count() - words_before;
    // Every bin's tail word is touched (appending a bit is a
    // read-modify-write of the active word, or of a fill word it merges
    // into), plus any newly emitted words.
    counters().OnWrite(DataClass::kAux,
                       (1 + emitted) * sizeof(uint32_t));
  }
  ++indexed_rows_;
}

void BitmapIndex::RebuildDeletedBitmap() {
  // Decode, OR in the pending deletions, re-encode -- the full price of
  // updating a compressed bitmap in place.
  ChargeDecode(deleted_bitmap_);
  std::vector<bool> bits(heap_->row_count(), false);
  deleted_bitmap_.ForEachSetBit([&](uint64_t row) {
    if (row < bits.size()) bits[row] = true;
  });
  for (RowId row : deleted_rows_) {
    if (row < bits.size()) bits[row] = true;
  }
  deleted_rows_.clear();
  deleted_bitmap_.Clear();
  for (bool bit : bits) deleted_bitmap_.AppendBit(bit);
  counters().OnWrite(DataClass::kAux, deleted_bitmap_.space_bytes());
}

Status BitmapIndex::MergeDeltas() {
  // Extend every bin's compressed bitmap to cover all heap rows: pending
  // added rows get their bit, everything else extends with zeros. Then fold
  // pending deletions into the deletion bitmap.
  uint64_t rows = heap_->row_count();
  for (Bin& bin : bins_) {
    std::sort(bin.add_delta.begin(), bin.add_delta.end());
    uint64_t cursor = bin.bitmap.bit_count();
    size_t words_before = bin.bitmap.word_count();
    for (RowId row : bin.add_delta) {
      if (row < cursor) continue;  // Already covered (defensive).
      bin.bitmap.AppendRun(false, row - cursor);
      bin.bitmap.AppendBit(true);
      cursor = row + 1;
    }
    bin.bitmap.AppendRun(false, rows - cursor);
    bin.add_delta.clear();
    size_t emitted = bin.bitmap.word_count() - words_before;
    counters().OnWrite(DataClass::kAux, emitted * sizeof(uint32_t));
  }
  indexed_rows_ = rows;
  if (!deleted_rows_.empty()) {
    RebuildDeletedBitmap();
  }
  RecountAuxSpace();
  return Status::OK();
}

Result<RowId> BitmapIndex::FindRow(Key key) {
  std::vector<RowId> rows;
  CollectBin(BinOf(key), &rows);
  RowId found = kInvalidRowId;
  Status s = heap_->ForRows(rows, [&](RowId row, const Entry& e) {
    if (e.key == key) found = row;
    return Status::OK();
  });
  if (!s.ok()) return s;
  return found;
}

Status BitmapIndex::Insert(Key key, Value value) {
  counters().OnInsert();
  counters().OnLogicalWrite(kEntrySize);
  // Upsert: a live row with this key is updated in place (the bitmaps do
  // not change -- the key keeps its bin).
  Result<RowId> existing = FindRow(key);
  if (!existing.ok()) return existing.status();
  if (existing.value() != kInvalidRowId) {
    return heap_->Set(existing.value(), Entry{key, value});
  }
  Result<RowId> row = heap_->Append(Entry{key, value});
  if (!row.ok()) return row.status();
  ++live_;
  if (update_friendly_) {
    Bin& bin = bins_[BinOf(key)];
    bin.add_delta.push_back(row.value());
    counters().OnWrite(DataClass::kAux, sizeof(RowId));
    if (pending_deltas() >= merge_threshold_) {
      Status s = MergeDeltas();
      if (!s.ok()) return s;
    }
  } else {
    // Direct mode: every bin's bitmap is extended for the new row. First
    // catch up any rows not yet indexed (from bulk load boundaries).
    DirectAppendRow(key);
  }
  RecountAuxSpace();
  return Status::OK();
}

Status BitmapIndex::Delete(Key key) {
  counters().OnDelete();
  counters().OnLogicalWrite(kEntrySize);
  Result<RowId> existing = FindRow(key);
  if (!existing.ok()) return existing.status();
  if (existing.value() == kInvalidRowId) return Status::OK();
  deleted_rows_.insert(existing.value());
  counters().OnWrite(DataClass::kAux, sizeof(RowId));
  --live_;
  if (update_friendly_) {
    if (pending_deltas() >= merge_threshold_) {
      Status s = MergeDeltas();
      if (!s.ok()) return s;
    }
  } else {
    RebuildDeletedBitmap();
  }
  RecountAuxSpace();
  return Status::OK();
}

Result<Value> BitmapIndex::Get(Key key) {
  counters().OnPointQuery();
  std::vector<RowId> rows;
  CollectBin(BinOf(key), &rows);
  Value value = 0;
  bool hit = false;
  Status s = heap_->ForRows(rows, [&](RowId, const Entry& e) {
    if (e.key == key) {
      value = e.value;
      hit = true;
    }
    return Status::OK();
  });
  if (!s.ok()) return s;
  if (!hit) return Status::NotFound();
  counters().OnLogicalRead(kEntrySize);
  return value;
}

Status BitmapIndex::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  counters().OnRangeQuery();
  size_t first_bin = BinOf(lo);
  size_t last_bin = BinOf(hi);
  std::vector<RowId> rows;
  for (size_t b = first_bin; b <= last_bin; ++b) {
    CollectBin(b, &rows);
  }
  std::sort(rows.begin(), rows.end());
  rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
  std::vector<Entry> hits;
  Status s = heap_->ForRows(rows, [&](RowId, const Entry& e) {
    if (e.key >= lo && e.key <= hi) hits.push_back(e);
    return Status::OK();
  });
  if (!s.ok()) return s;
  std::sort(hits.begin(), hits.end());
  counters().OnLogicalRead(static_cast<uint64_t>(hits.size()) * kEntrySize);
  out->insert(out->end(), hits.begin(), hits.end());
  return Status::OK();
}

Status BitmapIndex::BulkLoad(std::span<const Entry> entries) {
  Status s = CheckBulkLoadPreconditions(entries);
  if (!s.ok()) return s;
  for (const Entry& e : entries) {
    Result<RowId> row = heap_->Append(e);
    if (!row.ok()) return row.status();
    bins_[BinOf(e.key)].add_delta.push_back(row.value());
  }
  s = heap_->Flush();
  if (!s.ok()) return s;
  live_ = entries.size();
  counters().OnLogicalWrite(static_cast<uint64_t>(entries.size()) *
                            kEntrySize);
  return MergeDeltas();
}

Status BitmapIndex::Flush() {
  Status s = MergeDeltas();
  if (!s.ok()) return s;
  return heap_->Flush();
}

}  // namespace rum

#include "methods/bitmap/wah.h"

#include <cassert>

namespace rum {

void WahBitmap::FlushGroup() {
  assert(active_bits_ == kGroupBits);
  uint32_t literal_mask = (1u << kGroupBits) - 1;
  if (active_ == 0 || active_ == literal_mask) {
    bool fill_bit = active_ != 0;
    // Merge into a preceding fill of the same bit when possible.
    if (!words_.empty() && (words_.back() & kFillFlag) != 0 &&
        ((words_.back() & kFillBit) != 0) == fill_bit &&
        (words_.back() & kCountMask) < kCountMask) {
      ++words_.back();
    } else {
      words_.push_back(kFillFlag | (fill_bit ? kFillBit : 0) | 1u);
    }
  } else {
    words_.push_back(active_);
  }
  active_ = 0;
  active_bits_ = 0;
}

void WahBitmap::AppendBit(bool bit) {
  if (bit) {
    active_ |= 1u << active_bits_;
    ++set_count_;
  }
  ++active_bits_;
  ++bit_count_;
  if (active_bits_ == kGroupBits) FlushGroup();
}

void WahBitmap::AppendRun(bool bit, uint64_t count) {
  // Fill the active group bit-by-bit until aligned, then emit whole fills.
  while (count > 0 && active_bits_ != 0) {
    AppendBit(bit);
    --count;
  }
  while (count >= kGroupBits) {
    uint64_t groups = count / kGroupBits;
    // Emit as one (or more) fill words directly.
    uint64_t emit = groups;
    while (emit > 0) {
      uint32_t chunk = static_cast<uint32_t>(
          emit > kCountMask ? kCountMask : emit);
      if (!words_.empty() && (words_.back() & kFillFlag) != 0 &&
          ((words_.back() & kFillBit) != 0) == bit &&
          (words_.back() & kCountMask) + chunk <= kCountMask) {
        words_.back() += chunk;
      } else {
        words_.push_back(kFillFlag | (bit ? kFillBit : 0) | chunk);
      }
      emit -= chunk;
    }
    uint64_t bits = groups * kGroupBits;
    bit_count_ += bits;
    if (bit) set_count_ += bits;
    count -= bits;
  }
  while (count > 0) {
    AppendBit(bit);
    --count;
  }
}

void WahBitmap::ForEachSetBit(
    const std::function<void(uint64_t)>& visit) const {
  uint64_t position = 0;
  for (uint32_t word : words_) {
    if ((word & kFillFlag) != 0) {
      uint64_t bits =
          static_cast<uint64_t>(word & kCountMask) * kGroupBits;
      if ((word & kFillBit) != 0) {
        for (uint64_t i = 0; i < bits; ++i) visit(position + i);
      }
      position += bits;
    } else {
      uint32_t payload = word;
      while (payload != 0) {
        int bit = __builtin_ctz(payload);
        visit(position + static_cast<uint64_t>(bit));
        payload &= payload - 1;
      }
      position += kGroupBits;
    }
  }
  uint32_t payload = active_;
  while (payload != 0) {
    int bit = __builtin_ctz(payload);
    visit(position + static_cast<uint64_t>(bit));
    payload &= payload - 1;
  }
}

void WahBitmap::Clear() {
  words_.clear();
  active_ = 0;
  active_bits_ = 0;
  bit_count_ = 0;
  set_count_ = 0;
}

}  // namespace rum

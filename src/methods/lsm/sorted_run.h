#ifndef RUMLAB_METHODS_LSM_SORTED_RUN_H_
#define RUMLAB_METHODS_LSM_SORTED_RUN_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/counters.h"
#include "core/status.h"
#include "core/types.h"
#include "methods/sketch/bloom_filter.h"
#include "storage/append_log.h"
#include "storage/device.h"

namespace rum {

/// An immutable sorted run of LogRecords on a device -- rumlab's SSTable.
///
/// Data pages (base class) hold key-ordered records (puts and tombstones).
/// Two auxiliary structures accelerate reads, both of the paper's
/// space-for-read trades:
///  - fence pointers: the first key of every page, binary-searched per
///    lookup (charged as auxiliary byte reads);
///  - an optional Bloom filter over the run's keys, probed before any page
///    is read (0 bits/key disables it).
class SortedRun {
 public:
  /// Builds a run from key-ascending records (duplicates not allowed).
  /// All accounting (page writes, filter space) is charged to `counters`
  /// via `device` and directly. `fence_entries` sets the fence-pointer
  /// granularity: one fence per that many records (rounded up to whole
  /// pages; 0 = one fence per page) -- sparser fences save auxiliary space
  /// and pay extra page reads per lookup.
  /// With `compress` set, pages store varint key deltas instead of fixed
  /// 17-byte records (the paper's Section-5 compression/computation trade):
  /// sorted keys have small deltas, so runs shrink -- fewer resident blocks
  /// and fewer blocks per range read -- at decode CPU cost.
  /// `pinned_pages` selects the zero-copy guard path for page writes here
  /// and page reads in Get/Visit*; accounting is identical either way.
  static Status Build(Device* device, RumCounters* counters,
                      const std::vector<LogRecord>& records,
                      size_t bloom_bits_per_key,
                      std::unique_ptr<SortedRun>* out,
                      size_t fence_entries = 0, bool compress = false,
                      bool pinned_pages = true);

  /// Frees the run's pages. Build() owns nothing until it succeeds.
  ~SortedRun();

  SortedRun(const SortedRun&) = delete;
  SortedRun& operator=(const SortedRun&) = delete;

  /// Point lookup; nullopt when the key is not in this run. `*io_pages` (if
  /// non-null) is incremented by the data pages read.
  Result<std::optional<LogRecord>> Get(Key key);

  /// A forward iterator over the run's records, positioned by (page, slot)
  /// and advanced one record at a time. Page loads are charged exactly like
  /// Get/VisitRange reads; fence searches (SeekFirstAtLeast) charge the
  /// usual auxiliary probe bytes. Offsets are stable for the run's lifetime
  /// (runs are immutable), which is what lets the cross-run index persist
  /// them across scans. A cursor whose stored offset points past a page's
  /// record count (possible only when crash recovery lost page contents)
  /// clamps forward to the next readable record instead of failing.
  class Cursor {
   public:
    Cursor() = default;
    explicit Cursor(SortedRun* run) : run_(run) {}

    /// Positions at (page, slot), clamping forward past short or empty
    /// pages; past-the-end positions leave the cursor invalid.
    Status SeekTo(size_t page, size_t slot);
    /// Positions at the first record with key >= `key` (fence search plus
    /// page reads, all charged); invalid when no such record exists.
    Status SeekFirstAtLeast(Key key);
    /// Advances forward to the first record with key >= `key` (no-op when
    /// already there). Requires a prior successful Seek*.
    Status AdvanceToAtLeast(Key key);
    /// Steps to the next record; the cursor becomes invalid at the end.
    Status Next();

    bool Valid() const { return run_ != nullptr && page_ < run_->pages_.size(); }
    const LogRecord& record() const { return records_[slot_]; }
    size_t page_index() const { return page_; }
    size_t slot_index() const { return slot_; }
    const SortedRun* run() const { return run_; }

   private:
    /// Loads page `page_` into records_, skipping forward past empty pages.
    Status LoadCurrent();

    SortedRun* run_ = nullptr;
    size_t page_ = 0;
    size_t slot_ = 0;
    std::vector<LogRecord> records_;  // Decoded records of page `page_`.
  };

  /// Visits records with lo <= key <= hi in ascending order.
  Status VisitRange(Key lo, Key hi,
                    const std::function<void(const LogRecord&)>& visit);

  /// Visits every record in order (compaction input); fully charged.
  Status VisitAll(const std::function<void(const LogRecord&)>& visit);

  /// Frees all pages and releases auxiliary space. Called by the
  /// destructor; safe to call once explicitly.
  Status Destroy();

  uint64_t record_count() const { return record_count_; }
  size_t page_count() const { return pages_.size(); }
  Key min_key() const { return min_key_; }
  Key max_key() const { return max_key_; }
  bool has_bloom() const { return bloom_ != nullptr; }
  const BloomFilter* bloom() const { return bloom_.get(); }
  bool compressed() const { return compressed_; }

  /// In-memory fence-pointer bytes currently charged as auxiliary space
  /// (0 before the Build-time charge lands and after Destroy) -- one term
  /// of the owner's memory-footprint ledger.
  uint64_t fence_bytes() const {
    return fences_charged_ ? fences_.size() * sizeof(Key) : 0;
  }
  /// Bloom-filter bytes currently charged (0 without a filter or after
  /// Destroy).
  uint64_t filter_bytes() const {
    return bloom_ == nullptr ? 0 : bloom_->space_bytes();
  }

  /// Attaches a shared bloom-outcome tally; Get records every filter
  /// verdict into it (may be null to detach).
  void set_filter_stats(FilterStats* stats) { filter_stats_ = stats; }

 private:
  SortedRun(Device* device, RumCounters* counters);

  Status LoadPage(size_t page_index, std::vector<LogRecord>* out);
  /// Charged binary search over the in-memory fence keys; returns the
  /// index of the *page group* the key may live in (first page =
  /// group * pages_per_fence_).
  size_t FenceSearch(Key key) const;
  /// Records a post-bloom lookup verdict into the attached tally.
  void NoteFilterOutcome(bool found) {
    if (bloom_ == nullptr || filter_stats_ == nullptr) return;
    (found ? filter_stats_->true_positives : filter_stats_->false_positives)
        .fetch_add(1, std::memory_order_relaxed);
  }

  Device* device_;         // Not owned.
  RumCounters* counters_;  // Not owned.
  bool pinned_pages_ = true;
  std::vector<PageId> pages_;
  std::vector<Key> fences_;  // First key of each fence group.
  size_t pages_per_fence_ = 1;
  std::unique_ptr<BloomFilter> bloom_;
  FilterStats* filter_stats_ = nullptr;  // Not owned; may be null.
  size_t records_per_page_ = 0;
  bool compressed_ = false;
  uint64_t record_count_ = 0;
  Key min_key_ = 0;
  Key max_key_ = 0;
  /// Build charges the fence bytes only once every page landed; a run
  /// abandoned mid-Build must not *release* a charge that never happened.
  bool fences_charged_ = false;
  bool destroyed_ = false;
};

/// Encodes records (count header + wire records) into device blocks of
/// `block_size`; shared by SortedRun and tests.
void PackLogRecords(const std::vector<LogRecord>& records, size_t begin,
                    size_t end, size_t block_size, std::vector<uint8_t>* out);
/// In-place variant: encodes into a caller-owned block (e.g. a pinned
/// page); zeroes the block first.
void PackLogRecordsInto(const std::vector<LogRecord>& records, size_t begin,
                        size_t end, std::span<uint8_t> block);
Status UnpackLogRecords(std::span<const uint8_t> block,
                        std::vector<LogRecord>* out);

}  // namespace rum

#endif  // RUMLAB_METHODS_LSM_SORTED_RUN_H_

#include "methods/lsm/compaction_policy.h"

#include <cassert>
#include <limits>

#include "core/types.h"

namespace rum {

std::vector<LogRecord> MergeLogStreams(
    std::vector<std::vector<LogRecord>> streams, bool drop_tombstones) {
  // Streams are ordered newest first; a newer version of a key shadows all
  // older ones.
  std::vector<size_t> pos(streams.size(), 0);
  std::vector<LogRecord> out;
  while (true) {
    Key best = kMaxKey;
    size_t winner = streams.size();
    bool any = false;
    for (size_t i = 0; i < streams.size(); ++i) {
      if (pos[i] >= streams[i].size()) continue;
      Key k = streams[i][pos[i]].key;
      if (!any || k < best) {
        best = k;
        winner = i;
        any = true;
      }
    }
    if (!any) break;
    LogRecord chosen = streams[winner][pos[winner]];
    // Skip every (older) duplicate of this key.
    for (size_t i = 0; i < streams.size(); ++i) {
      while (pos[i] < streams[i].size() && streams[i][pos[i]].key == best) {
        ++pos[i];
      }
    }
    if (drop_tombstones && chosen.op == LogOp::kDelete) continue;
    out.push_back(chosen);
  }
  return out;
}

std::vector<LogRecord> GatherSortedRun(SortedRun* run) {
  std::vector<LogRecord> records;
  records.reserve(run->record_count());
  // Charged: compaction reads every input page.
  Status s = run->VisitAll(
      [&](const LogRecord& r) { records.push_back(r); });
  assert(s.ok());
  (void)s;
  return records;
}

std::vector<LogRecord> MergeSortedRuns(const std::vector<SortedRun*>& inputs,
                                       bool drop_tombstones) {
  std::vector<std::vector<LogRecord>> streams;
  streams.reserve(inputs.size());
  for (SortedRun* run : inputs) {
    streams.push_back(GatherSortedRun(run));
  }
  return MergeLogStreams(std::move(streams), drop_tombstones);
}

namespace {

using Levels = std::vector<std::vector<std::unique_ptr<SortedRun>>>;

uint64_t TotalRecords(const std::vector<SortedRun*>& runs) {
  uint64_t n = 0;
  for (const SortedRun* run : runs) n += run->record_count();
  return n;
}

/// All of one level's runs, newest first (runs are stored newest last).
std::vector<SortedRun*> LevelRunsNewestFirst(const Levels& levels,
                                             size_t level) {
  std::vector<SortedRun*> runs;
  runs.reserve(levels[level].size());
  for (size_t i = levels[level].size(); i-- > 0;) {
    runs.push_back(levels[level][i].get());
  }
  return runs;
}

Status DestroyLevel(CompactionContext* ctx, Levels* levels, size_t level) {
  for (auto& run : (*levels)[level]) {
    ctx->NoteRunRetiring(run.get());
    Status s = run->Destroy();
    if (!s.ok()) return s;
  }
  (*levels)[level].clear();
  return Status::OK();
}

/// Index of the deepest populated level, or levels.size() when empty.
size_t LastPopulatedIndex(const Levels& levels) {
  for (size_t i = levels.size(); i-- > 0;) {
    if (!levels[i].empty()) return i;
  }
  return levels.size();
}

/// Leveled, tiered, and hybrid are one discipline parameterized by how many
/// shallow levels merge tiered: 0 = leveled everywhere, SIZE_MAX = tiered
/// everywhere, H = CobbleDB-style per-level composition.
class ComposedPolicy : public CompactionPolicy {
 public:
  ComposedPolicy(LsmPolicy kind, std::string_view name, size_t tiered_levels)
      : kind_(kind), name_(name), tiered_levels_(tiered_levels) {}

  std::string_view name() const override { return name_; }
  LsmPolicy kind() const override { return kind_; }

  size_t MaxRunsAt(size_t level, const CompactionContext& ctx)
      const override {
    if (!Tiered(level, ctx)) return 1;
    return ctx.lsm_options().size_ratio - 1;
  }

  Status HandleFlush(CompactionContext* ctx,
                     std::vector<LogRecord> records) override {
    Levels& levels = ctx->levels();
    const size_t ratio = ctx->lsm_options().size_ratio;

    if (Tiered(0, *ctx)) {
      // The flush becomes a new level-0 run.
      Status s = ctx->BuildRun(0, std::move(records));
      if (!s.ok()) return s;
    } else {
      // Merge the flush into level 0 directly from memory (the memtable is
      // the newest stream).
      std::vector<std::vector<LogRecord>> streams;
      streams.push_back(std::move(records));
      if (!levels[0].empty()) {
        SortedRun* resident = levels[0].back().get();
        ctx->NoteCompaction(1, resident->record_count());
        streams.push_back(GatherSortedRun(resident));
        Status d = DestroyLevel(ctx, &levels, 0);
        if (!d.ok()) return d;
      }
      std::vector<LogRecord> merged =
          MergeLogStreams(std::move(streams), ctx->IsLastPopulated(0));
      Status s = ctx->BuildRun(0, std::move(merged));
      if (!s.ok()) return s;
    }

    // Cascade. BuildRun may extend the level array; the loop bound follows.
    for (size_t level = 0; level < levels.size(); ++level) {
      if (levels[level].empty()) continue;
      if (Tiered(level, *ctx)) {
        if (levels[level].size() < ratio) continue;
        std::vector<SortedRun*> inputs = LevelRunsNewestFirst(levels, level);
        if (levels.size() <= level + 1) levels.resize(level + 2);
        // A leveled destination absorbs its resident run in the same merge;
        // a tiered destination just gains a run.
        bool absorb = !Tiered(level + 1, *ctx) && !levels[level + 1].empty();
        if (absorb) {
          inputs.push_back(levels[level + 1].back().get());
        }
        bool drop = absorb ? ctx->IsLastPopulated(level + 1)
                           : ctx->IsLastPopulated(level);
        ctx->NoteCompaction(inputs.size(), TotalRecords(inputs));
        std::vector<LogRecord> merged = MergeSortedRuns(inputs, drop);
        Status s = DestroyLevel(ctx, &levels, level);
        if (!s.ok()) return s;
        if (absorb) {
          s = DestroyLevel(ctx, &levels, level + 1);
          if (!s.ok()) return s;
        }
        s = ctx->BuildRun(level + 1, std::move(merged));
        if (!s.ok()) return s;
      } else {
        // Leveled level: one run, pushed down when it overflows its target.
        if (levels[level].back()->record_count() <= ctx->LevelTarget(level)) {
          continue;
        }
        std::vector<SortedRun*> inputs;
        inputs.push_back(levels[level].back().get());
        if (levels.size() <= level + 1) levels.resize(level + 2);
        if (!levels[level + 1].empty()) {
          inputs.push_back(levels[level + 1].back().get());
        }
        ctx->NoteCompaction(inputs.size(), TotalRecords(inputs));
        std::vector<LogRecord> merged =
            MergeSortedRuns(inputs, ctx->IsLastPopulated(level + 1));
        Status s = DestroyLevel(ctx, &levels, level);
        if (!s.ok()) return s;
        s = DestroyLevel(ctx, &levels, level + 1);
        if (!s.ok()) return s;
        s = ctx->BuildRun(level + 1, std::move(merged));
        if (!s.ok()) return s;
      }
    }
    return Status::OK();
  }

 private:
  bool Tiered(size_t level, const CompactionContext& ctx) const {
    size_t boundary = tiered_levels_ == kFromOptions
                          ? ctx.lsm_options().hybrid_tiered_levels
                          : tiered_levels_;
    return level < boundary;
  }

  friend class CompactionPolicy;

 public:
  /// Sentinel: read the tiered/leveled boundary from Options::lsm at use
  /// time (the hybrid policy), so re-tuning the knob needs no new object.
  static constexpr size_t kFromOptions = std::numeric_limits<size_t>::max() - 1;

 private:
  LsmPolicy kind_;
  std::string_view name_;
  size_t tiered_levels_;
};

/// Dostoevsky-style lazy leveling: every level merges tiered except the
/// last populated one, which is kept a single run -- point reads see one
/// run plus Bloom-filtered upper levels while upper-level writes stay
/// tiered-cheap.
class LazyLeveledPolicy : public CompactionPolicy {
 public:
  std::string_view name() const override { return "lazy-leveled"; }
  LsmPolicy kind() const override { return LsmPolicy::kLazyLeveled; }

  size_t MaxRunsAt(size_t level, const CompactionContext& ctx)
      const override {
    const Levels& levels =
        const_cast<CompactionContext&>(ctx).levels();
    if (level == LastPopulatedIndex(levels)) return 1;
    return ctx.lsm_options().size_ratio - 1;
  }

  Status HandleFlush(CompactionContext* ctx,
                     std::vector<LogRecord> records) override {
    Levels& levels = ctx->levels();
    const size_t ratio = ctx->lsm_options().size_ratio;

    Status s = ctx->BuildRun(0, std::move(records));
    if (!s.ok()) return s;

    // Cascade full tiered levels; the last populated level absorbs into its
    // single resident run instead of gaining one.
    for (size_t level = 0; level < levels.size(); ++level) {
      if (levels[level].size() < ratio) continue;
      std::vector<SortedRun*> inputs = LevelRunsNewestFirst(levels, level);
      if (levels.size() <= level + 1) levels.resize(level + 2);
      bool absorb =
          !levels[level + 1].empty() && ctx->IsLastPopulated(level + 1);
      if (absorb) {
        inputs.push_back(levels[level + 1].back().get());
      }
      bool drop = absorb ? ctx->IsLastPopulated(level + 1)
                         : ctx->IsLastPopulated(level);
      ctx->NoteCompaction(inputs.size(), TotalRecords(inputs));
      std::vector<LogRecord> merged = MergeSortedRuns(inputs, drop);
      s = DestroyLevel(ctx, &levels, level);
      if (!s.ok()) return s;
      if (absorb) {
        s = DestroyLevel(ctx, &levels, level + 1);
        if (!s.ok()) return s;
      }
      s = ctx->BuildRun(level + 1, std::move(merged));
      if (!s.ok()) return s;
    }

    // Restore the lazy invariant: the last populated level holds exactly
    // one run. Multiple runs appear there when it is level 0 early in the
    // tree's life, or when tombstone GC emptied everything below it.
    while (true) {
      size_t last = LastPopulatedIndex(levels);
      if (last >= levels.size() || levels[last].size() <= 1) break;
      std::vector<SortedRun*> inputs = LevelRunsNewestFirst(levels, last);
      ctx->NoteCompaction(inputs.size(), TotalRecords(inputs));
      std::vector<LogRecord> merged =
          MergeSortedRuns(inputs, ctx->IsLastPopulated(last));
      s = DestroyLevel(ctx, &levels, last);
      if (!s.ok()) return s;
      s = ctx->BuildRun(last, std::move(merged));
      if (!s.ok()) return s;
    }

    // Deepen: an oversized bottom run is relocated (a pointer move, no
    // I/O) so level indices keep tracking the T^level size progression.
    for (size_t last = LastPopulatedIndex(levels); last < levels.size();
         ++last) {
      if (levels[last].size() != 1 ||
          levels[last].back()->record_count() <= ctx->LevelTarget(last)) {
        break;
      }
      if (levels.size() <= last + 1) levels.resize(last + 2);
      levels[last + 1].push_back(std::move(levels[last].back()));
      levels[last].clear();
    }
    return Status::OK();
  }
};

}  // namespace

std::unique_ptr<CompactionPolicy> CompactionPolicy::Make(LsmPolicy kind) {
  switch (kind) {
    case LsmPolicy::kLeveled:
      return std::make_unique<ComposedPolicy>(LsmPolicy::kLeveled, "leveled",
                                              0);
    case LsmPolicy::kTiered:
      return std::make_unique<ComposedPolicy>(
          LsmPolicy::kTiered, "tiered",
          std::numeric_limits<size_t>::max());
    case LsmPolicy::kLazyLeveled:
      return std::make_unique<LazyLeveledPolicy>();
    case LsmPolicy::kHybrid:
      return std::make_unique<ComposedPolicy>(LsmPolicy::kHybrid, "hybrid",
                                              ComposedPolicy::kFromOptions);
  }
  return nullptr;
}

}  // namespace rum

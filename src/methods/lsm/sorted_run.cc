#include "methods/lsm/sorted_run.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "storage/page_format.h"

namespace rum {

namespace {
constexpr size_t kRunHeaderSize = sizeof(uint64_t);

size_t RecordsPerBlock(size_t block_size) {
  return (block_size - kRunHeaderSize) / LogRecord::kWireSize;
}
}  // namespace

void PackLogRecordsInto(const std::vector<LogRecord>& records, size_t begin,
                        size_t end, std::span<uint8_t> block) {
  assert(end >= begin && end - begin <= RecordsPerBlock(block.size()));
  std::memset(block.data(), 0, block.size());
  EncodeU64(end - begin, block.data());
  uint8_t* cursor = block.data() + kRunHeaderSize;
  for (size_t i = begin; i < end; ++i) {
    EncodeU64(records[i].key, cursor);
    EncodeU64(records[i].value, cursor + 8);
    cursor[16] = static_cast<uint8_t>(records[i].op);
    cursor += LogRecord::kWireSize;
  }
}

void PackLogRecords(const std::vector<LogRecord>& records, size_t begin,
                    size_t end, size_t block_size, std::vector<uint8_t>* out) {
  out->resize(block_size);
  PackLogRecordsInto(records, begin, end, *out);
}

Status UnpackLogRecords(std::span<const uint8_t> block,
                        std::vector<LogRecord>* out) {
  if (block.size() < kRunHeaderSize) {
    return Status::Corruption("run block too small");
  }
  uint64_t n = DecodeU64(block.data());
  if (kRunHeaderSize + n * LogRecord::kWireSize > block.size()) {
    return Status::Corruption("run record count exceeds block");
  }
  out->clear();
  out->reserve(n);
  const uint8_t* cursor = block.data() + kRunHeaderSize;
  for (uint64_t i = 0; i < n; ++i) {
    LogRecord r;
    r.key = DecodeU64(cursor);
    r.value = DecodeU64(cursor + 8);
    r.op = static_cast<LogOp>(cursor[16]);
    out->push_back(r);
    cursor += LogRecord::kWireSize;
  }
  return Status::OK();
}

SortedRun::SortedRun(Device* device, RumCounters* counters)
    : device_(device), counters_(counters) {}

namespace {

// Compressed page layout: [0,8) record count, then per record a varint
// key delta (from the previous record in the page; the first record
// stores its full key), 8 raw value bytes, and an op byte.
void AppendCompressedRecord(const LogRecord& r, Key prev_key,
                            std::vector<uint8_t>* payload) {
  EncodeVarint64(r.key - prev_key, payload);
  uint8_t value_buf[8];
  EncodeU64(r.value, value_buf);
  payload->insert(payload->end(), value_buf, value_buf + 8);
  payload->push_back(static_cast<uint8_t>(r.op));
}

size_t CompressedRecordSize(const LogRecord& r, Key prev_key) {
  return VarintLength(r.key - prev_key) + 8 + 1;
}

Status UnpackCompressedRecords(std::span<const uint8_t> block,
                               std::vector<LogRecord>* out) {
  if (block.size() < kRunHeaderSize) {
    return Status::Corruption("run block too small");
  }
  uint64_t n = DecodeU64(block.data());
  out->clear();
  out->reserve(n);
  size_t offset = kRunHeaderSize;
  Key prev = 0;
  for (uint64_t i = 0; i < n; ++i) {
    if (offset + 9 > block.size()) {
      return Status::Corruption("compressed record truncated");
    }
    Key delta = DecodeVarint64(block.data(), block.size(), &offset);
    if (offset + 9 > block.size()) {
      return Status::Corruption("compressed record truncated");
    }
    LogRecord r;
    r.key = prev + delta;
    r.value = DecodeU64(block.data() + offset);
    offset += 8;
    r.op = static_cast<LogOp>(block[offset++]);
    out->push_back(r);
    prev = r.key;
  }
  return Status::OK();
}

}  // namespace

Status SortedRun::Build(Device* device, RumCounters* counters,
                        const std::vector<LogRecord>& records,
                        size_t bloom_bits_per_key,
                        std::unique_ptr<SortedRun>* out,
                        size_t fence_entries, bool compress,
                        bool pinned_pages) {
  assert(device != nullptr && counters != nullptr);
  assert(std::is_sorted(records.begin(), records.end(),
                        [](const LogRecord& a, const LogRecord& b) {
                          return a.key < b.key;
                        }));
  if (records.empty()) {
    return Status::InvalidArgument("cannot build an empty run");
  }
  auto run = std::unique_ptr<SortedRun>(new SortedRun(device, counters));
  run->pinned_pages_ = pinned_pages;
  run->records_per_page_ = RecordsPerBlock(device->block_size());
  run->record_count_ = records.size();
  run->min_key_ = records.front().key;
  run->max_key_ = records.back().key;

  if (bloom_bits_per_key > 0) {
    run->bloom_ = std::make_unique<BloomFilter>(records.size(),
                                                bloom_bits_per_key, counters);
    for (const LogRecord& r : records) {
      run->bloom_->Add(r.key);
    }
  }

  run->pages_per_fence_ = std::max<size_t>(
      1, (fence_entries + run->records_per_page_ - 1) /
             run->records_per_page_);
  run->compressed_ = compress;

  if (!compress) {
    std::vector<uint8_t> block;
    for (size_t i = 0; i < records.size(); i += run->records_per_page_) {
      size_t end = std::min(i + run->records_per_page_, records.size());
      PageId page;
      Status alloc = device->Allocate(DataClass::kBase, &page);
      if (!alloc.ok()) return alloc;
      if (pinned_pages) {
        // Encode directly into the pinned page; no staging copy.
        PageWriteGuard guard;
        Status s = device->PinForWrite(page, &guard);
        if (!s.ok()) {
          (void)device->Free(page);  // Un-tracked page must not leak space.
          return s;
        }
        PackLogRecordsInto(records, i, end, guard.bytes());
        guard.MarkDirty();
        s = guard.Release();
        if (!s.ok()) {
          (void)device->Free(page);
          return s;
        }
      } else {
        PackLogRecords(records, i, end, device->block_size(), &block);
        Status s = device->Write(page, block);
        if (!s.ok()) {
          (void)device->Free(page);
          return s;
        }
      }
      if (run->pages_.size() % run->pages_per_fence_ == 0) {
        run->fences_.push_back(records[i].key);
      }
      run->pages_.push_back(page);
    }
  } else {
    // Greedy variable packing: fill each page until the next record's
    // encoded form would overflow.
    size_t block_size = device->block_size();
    std::vector<uint8_t> payload;
    payload.reserve(block_size);
    uint64_t page_count = 0;
    Key prev = 0;
    Key first_key = 0;
    auto seal = [&]() -> Status {
      PageId page;
      Status alloc = device->Allocate(DataClass::kBase, &page);
      if (!alloc.ok()) return alloc;
      if (pinned_pages) {
        PageWriteGuard guard;
        Status s = device->PinForWrite(page, &guard);
        if (!s.ok()) {
          (void)device->Free(page);  // Un-tracked page must not leak space.
          return s;
        }
        std::memset(guard.bytes().data(), 0, guard.bytes().size());
        EncodeU64(page_count, guard.bytes().data());
        std::copy(payload.begin(), payload.end(),
                  guard.bytes().begin() + kRunHeaderSize);
        guard.MarkDirty();
        s = guard.Release();
        if (!s.ok()) {
          (void)device->Free(page);
          return s;
        }
      } else {
        std::vector<uint8_t> block(block_size, 0);
        EncodeU64(page_count, block.data());
        std::copy(payload.begin(), payload.end(),
                  block.begin() + kRunHeaderSize);
        Status s = device->Write(page, block);
        if (!s.ok()) {
          (void)device->Free(page);
          return s;
        }
      }
      if (run->pages_.size() % run->pages_per_fence_ == 0) {
        run->fences_.push_back(first_key);
      }
      run->pages_.push_back(page);
      payload.clear();
      page_count = 0;
      prev = 0;
      return Status::OK();
    };
    for (const LogRecord& r : records) {
      size_t need = CompressedRecordSize(r, page_count == 0 ? 0 : prev);
      if (page_count > 0 &&
          kRunHeaderSize + payload.size() + need > block_size) {
        Status s = seal();
        if (!s.ok()) return s;
      }
      if (page_count == 0) first_key = r.key;
      AppendCompressedRecord(r, page_count == 0 ? 0 : prev, &payload);
      prev = r.key;
      ++page_count;
    }
    if (page_count > 0) {
      Status s = seal();
      if (!s.ok()) return s;
    }
  }
  // Fence pointers are auxiliary structure held in memory. Charged exactly
  // once, here, and released exactly once (Destroy checks the flag): a run
  // abandoned before this point never held the charge.
  counters->AdjustSpace(
      DataClass::kAux,
      static_cast<int64_t>(run->fences_.size() * sizeof(Key)));
  run->fences_charged_ = true;
  *out = std::move(run);
  return Status::OK();
}

SortedRun::~SortedRun() {
  // Destroy() may already have run; it is idempotent via destroyed_.
  (void)Destroy();
}

Status SortedRun::Destroy() {
  if (destroyed_) return Status::OK();
  destroyed_ = true;
  // Free every page even when one Free fails (e.g. a page pinned in a cache
  // level above). Returning on the first failure used to leak the remaining
  // page frees AND skip the fence-space release below -- destroyed_ was
  // already set, so the destructor's retry no-oped and the auxiliary-MO
  // ledger drifted permanently. One stuck page must not wedge the rest of
  // the teardown; the first failure is still reported.
  Status first_failure = Status::OK();
  for (PageId page : pages_) {
    Status s = device_->Free(page);
    if (!s.ok() && first_failure.ok()) first_failure = s;
  }
  pages_.clear();
  if (fences_charged_) {
    counters_->AdjustSpace(
        DataClass::kAux, -static_cast<int64_t>(fences_.size() * sizeof(Key)));
    fences_charged_ = false;
  }
  fences_.clear();
  bloom_.reset();  // Releases its own space.
  return first_failure;
}

Status SortedRun::LoadPage(size_t page_index, std::vector<LogRecord>* out) {
  assert(page_index < pages_.size());
  if (pinned_pages_) {
    PageReadGuard guard;
    Status s = device_->PinForRead(pages_[page_index], &guard);
    if (!s.ok()) return s;
    if (compressed_) {
      return UnpackCompressedRecords(guard.bytes(), out);
    }
    return UnpackLogRecords(guard.bytes(), out);
  }
  std::vector<uint8_t> block;
  Status s = device_->Read(pages_[page_index], &block);
  if (!s.ok()) return s;
  if (compressed_) {
    return UnpackCompressedRecords(block, out);
  }
  return UnpackLogRecords(block, out);
}

size_t SortedRun::FenceSearch(Key key) const {
  // Binary search over fences; each probe reads one fence key.
  size_t lo = 0;
  size_t hi = fences_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    counters_->OnRead(DataClass::kAux, sizeof(Key));
    if (fences_[mid] <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

Result<std::optional<LogRecord>> SortedRun::Get(Key key) {
  if (key < min_key_ || key > max_key_) {
    return std::optional<LogRecord>();
  }
  if (bloom_ != nullptr && !bloom_->MayContain(key)) {
    if (filter_stats_ != nullptr) {
      filter_stats_->negatives.fetch_add(1, std::memory_order_relaxed);
    }
    return std::optional<LogRecord>();
  }
  size_t group = FenceSearch(key);
  size_t first_page = group * pages_per_fence_;
  size_t end_page = std::min(first_page + pages_per_fence_, pages_.size());
  if (pinned_pages_ && !compressed_) {
    // Fixed-width wire records allow binary search directly on the pinned
    // block: no record materialization on the lookup path.
    for (size_t p = first_page; p < end_page; ++p) {
      PageReadGuard guard;
      Status s = device_->PinForRead(pages_[p], &guard);
      if (!s.ok()) return s;
      std::span<const uint8_t> block = guard.bytes();
      if (block.size() < kRunHeaderSize) {
        return Status::Corruption("run block too small");
      }
      uint64_t n = DecodeU64(block.data());
      if (kRunHeaderSize + n * LogRecord::kWireSize > block.size()) {
        return Status::Corruption("run record count exceeds block");
      }
      if (n == 0) continue;
      auto key_at = [&](size_t i) {
        return DecodeU64(block.data() + kRunHeaderSize +
                         i * LogRecord::kWireSize);
      };
      if (key_at(n - 1) < key) continue;  // Key is further right.
      size_t lo = 0;
      size_t hi = n;
      while (lo < hi) {
        size_t mid = lo + (hi - lo) / 2;
        if (key_at(mid) < key) {
          lo = mid + 1;
        } else {
          hi = mid;
        }
      }
      if (lo >= n || key_at(lo) != key) {
        NoteFilterOutcome(/*found=*/false);
        return std::optional<LogRecord>();
      }
      const uint8_t* rec =
          block.data() + kRunHeaderSize + lo * LogRecord::kWireSize;
      LogRecord r;
      r.key = DecodeU64(rec);
      r.value = DecodeU64(rec + 8);
      r.op = static_cast<LogOp>(rec[16]);
      NoteFilterOutcome(/*found=*/true);
      return std::optional<LogRecord>(r);
    }
    NoteFilterOutcome(/*found=*/false);
    return std::optional<LogRecord>();
  }
  std::vector<LogRecord> records;
  for (size_t p = first_page; p < end_page; ++p) {
    Status s = LoadPage(p, &records);
    if (!s.ok()) return s;
    if (records.empty()) continue;
    if (records.back().key < key) continue;  // Key is further right.
    auto it = std::lower_bound(records.begin(), records.end(), key,
                               [](const LogRecord& r, Key k) {
                                 return r.key < k;
                               });
    if (it == records.end() || it->key != key) {
      NoteFilterOutcome(/*found=*/false);
      return std::optional<LogRecord>();
    }
    NoteFilterOutcome(/*found=*/true);
    return std::optional<LogRecord>(*it);
  }
  NoteFilterOutcome(/*found=*/false);
  return std::optional<LogRecord>();
}

Status SortedRun::Cursor::LoadCurrent() {
  while (page_ < run_->pages_.size()) {
    Status s = run_->LoadPage(page_, &records_);
    if (!s.ok()) return s;
    if (slot_ < records_.size()) return Status::OK();
    // Empty page, or a stored slot past this page's record count (possible
    // after crash recovery truncated page contents): clamp forward.
    ++page_;
    slot_ = 0;
  }
  records_.clear();
  return Status::OK();
}

Status SortedRun::Cursor::SeekTo(size_t page, size_t slot) {
  assert(run_ != nullptr);
  page_ = page;
  slot_ = slot;
  return LoadCurrent();
}

Status SortedRun::Cursor::SeekFirstAtLeast(Key key) {
  assert(run_ != nullptr);
  if (key <= run_->min_key_) return SeekTo(0, 0);
  if (key > run_->max_key_) {
    page_ = run_->pages_.size();
    slot_ = 0;
    return Status::OK();
  }
  // FenceSearch lands on the last group whose fence is <= key; the first
  // record >= key lives there or in a later group (when key exceeds the
  // group's last record), so AdvanceToAtLeast's forward walk finishes it.
  Status s = SeekTo(run_->FenceSearch(key) * run_->pages_per_fence_, 0);
  if (!s.ok()) return s;
  return AdvanceToAtLeast(key);
}

Status SortedRun::Cursor::AdvanceToAtLeast(Key key) {
  assert(run_ != nullptr);
  while (Valid()) {
    if (records_.back().key >= key) {
      auto it = std::lower_bound(records_.begin() + slot_, records_.end(),
                                 key, [](const LogRecord& r, Key k) {
                                   return r.key < k;
                                 });
      slot_ = static_cast<size_t>(it - records_.begin());
      if (slot_ < records_.size()) return Status::OK();
    }
    ++page_;
    slot_ = 0;
    Status s = LoadCurrent();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status SortedRun::Cursor::Next() {
  assert(Valid());
  ++slot_;
  if (slot_ >= records_.size()) {
    ++page_;
    slot_ = 0;
    return LoadCurrent();
  }
  return Status::OK();
}

Status SortedRun::VisitRange(Key lo, Key hi,
                             const std::function<void(const LogRecord&)>&
                                 visit) {
  if (hi < min_key_ || lo > max_key_) return Status::OK();
  size_t first_page = FenceSearch(lo) * pages_per_fence_;
  std::vector<LogRecord> records;
  for (size_t p = first_page; p < pages_.size(); ++p) {
    Status s = LoadPage(p, &records);
    if (!s.ok()) return s;
    for (const LogRecord& r : records) {
      if (r.key > hi) return Status::OK();
      if (r.key >= lo) visit(r);
    }
  }
  return Status::OK();
}

Status SortedRun::VisitAll(
    const std::function<void(const LogRecord&)>& visit) {
  std::vector<LogRecord> records;
  for (size_t p = 0; p < pages_.size(); ++p) {
    Status s = LoadPage(p, &records);
    if (!s.ok()) return s;
    for (const LogRecord& r : records) {
      visit(r);
    }
  }
  return Status::OK();
}

}  // namespace rum

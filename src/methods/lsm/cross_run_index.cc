#include "methods/lsm/cross_run_index.h"

#include <algorithm>
#include <cassert>

namespace rum {

CrossRunIndex::CrossRunIndex(RumCounters* counters, size_t segment_entries)
    : counters_(counters),
      segment_entries_(std::max<size_t>(1, segment_entries)) {
  assert(counters != nullptr);
}

CrossRunIndex::~CrossRunIndex() { SetCharge(0); }

void CrossRunIndex::SetCharge(uint64_t bytes) {
  if (bytes == charged_bytes_) return;
  counters_->AdjustSpace(DataClass::kAux,
                         static_cast<int64_t>(bytes) -
                             static_cast<int64_t>(charged_bytes_));
  charged_bytes_ = bytes;
}

void CrossRunIndex::InvalidateRange(Key min_key, Key max_key) {
  if (segments_.empty()) return;
  // Arithmetic only: maintenance consults no charged structure.
  size_t last_index = segments_.size() - 1;
  size_t first = min_key <= anchor_lo_
                     ? 0
                     : std::min(last_index, (min_key - anchor_lo_) / step_);
  size_t last = max_key <= anchor_lo_
                    ? 0
                    : std::min(last_index, (max_key - anchor_lo_) / step_);
  uint64_t charge = charged_bytes_;
  for (size_t i = first; i <= last; ++i) {
    Segment& seg = segments_[i];
    if (!seg.built) continue;
    charge -= seg.offsets.size() * kOffsetBytes;
    seg.offsets.clear();
    seg.offsets.shrink_to_fit();
    seg.built = false;
  }
  SetCharge(charge);
}

void CrossRunIndex::OnRunCreated(const SortedRun* run) {
  InvalidateRange(run->min_key(), run->max_key());
}

void CrossRunIndex::OnRunRetiring(const SortedRun* run) {
  InvalidateRange(run->min_key(), run->max_key());
}

void CrossRunIndex::MaybeRelayout(uint64_t total_records, Key global_min,
                                  Key global_max) {
  if (!segments_.empty() && global_min >= anchor_lo_ &&
      (global_max - anchor_lo_) / step_ < segments_.size() &&
      total_records <= layout_records_ * 2 &&
      total_records * 2 >= layout_records_) {
    return;
  }
  uint64_t nseg =
      std::max<uint64_t>(1, total_records / segment_entries_);
  // step >= 1 and anchor_lo + step * nseg > global_max: every key in
  // [global_min, global_max] maps to a segment below nseg.
  step_ = (global_max - global_min) / nseg + 1;
  anchor_lo_ = global_min;
  layout_records_ = total_records;
  segments_.assign(static_cast<size_t>(nseg), Segment{});
  ++relayouts_;
  SetCharge(nseg * kSegmentBytes);
}

size_t CrossRunIndex::SegmentFor(Key key) {
  // Binary search over segment anchors, charged one anchor key per probe
  // -- the same convention as SortedRun's fence-pointer search. (The
  // fixed-width layout could resolve this arithmetically; the charge
  // models the general variable-anchor structure.)
  size_t lo = 0;
  size_t hi = segments_.size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    counters_->OnRead(DataClass::kAux, sizeof(Key));
    if (AnchorOf(mid) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == 0 ? 0 : lo - 1;
}

Status CrossRunIndex::EnsureSegment(size_t segment,
                                    const std::vector<SortedRun*>& all_runs) {
  Segment& seg = segments_[segment];
  if (!seg.built) {
    Key anchor = AnchorOf(segment);
    Key span_end = SpanEndOf(segment);
    seg.offsets.clear();
    for (SortedRun* run : all_runs) {
      if (run->max_key() < anchor || run->min_key() > span_end) continue;
      SortedRun::Cursor cursor(run);
      Status s = cursor.SeekFirstAtLeast(anchor);
      if (!s.ok()) return s;
      if (!cursor.Valid()) continue;
      seg.offsets.push_back(Offset{run,
                                   static_cast<uint32_t>(cursor.page_index()),
                                   static_cast<uint32_t>(cursor.slot_index())});
    }
    seg.built = true;
    SetCharge(charged_bytes_ + seg.offsets.size() * kOffsetBytes);
  }
  // Consulting the segment reads its offset entries.
  counters_->OnRead(DataClass::kAux, seg.offsets.size() * kOffsetBytes);
  return Status::OK();
}

Status CrossRunIndex::PositionCursors(
    const std::vector<SortedRun*>& runs_newest_first, Key lo, Key hi,
    std::vector<SortedRun::Cursor>* out) {
  out->clear();
  if (runs_newest_first.empty()) return Status::OK();
  uint64_t total = 0;
  Key global_min = kMaxKey;
  Key global_max = 0;
  std::vector<SortedRun*> overlapping;
  for (SortedRun* run : runs_newest_first) {
    total += run->record_count();
    global_min = std::min(global_min, run->min_key());
    global_max = std::max(global_max, run->max_key());
    // O(1) bounds: runs disjoint from [lo, hi] cost nothing.
    if (run->max_key() >= lo && run->min_key() <= hi) {
      overlapping.push_back(run);
    }
  }
  if (overlapping.empty()) return Status::OK();
  MaybeRelayout(total, global_min, global_max);

  // The segment table is consulted only when some run needs mid-run
  // positioning; runs whose records all lie at or beyond lo start at
  // their first page, no lookup required.
  bool need_segment = false;
  for (SortedRun* run : overlapping) {
    if (run->min_key() < lo) {
      need_segment = true;
      break;
    }
  }
  size_t segment = 0;
  if (need_segment) {
    segment = SegmentFor(lo);
    Status s = EnsureSegment(segment, runs_newest_first);
    if (!s.ok()) return s;
  }

  out->reserve(overlapping.size());
  for (SortedRun* run : overlapping) {
    SortedRun::Cursor cursor(run);
    Status s;
    if (run->min_key() >= lo) {
      s = cursor.SeekTo(0, 0);
    } else {
      const Offset* offset = nullptr;
      for (const Offset& o : segments_[segment].offsets) {
        if (o.run == run) {
          offset = &o;
          break;
        }
      }
      if (offset != nullptr) {
        s = cursor.SeekTo(offset->page, offset->slot);
        if (s.ok()) s = cursor.AdvanceToAtLeast(lo);
      } else {
        // Defensive: an overlapping run always has a segment entry (the
        // invalidation hooks guarantee it); fall back to a fence search.
        s = cursor.SeekFirstAtLeast(lo);
      }
    }
    if (!s.ok()) return s;
    out->push_back(std::move(cursor));
  }
  return Status::OK();
}

}  // namespace rum

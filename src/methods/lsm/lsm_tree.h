#ifndef RUMLAB_METHODS_LSM_LSM_TREE_H_
#define RUMLAB_METHODS_LSM_LSM_TREE_H_

#include <atomic>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/access_method.h"
#include "core/memory_budget.h"
#include "core/metrics.h"
#include "core/options.h"
#include "methods/lsm/compaction_policy.h"
#include "methods/lsm/cross_run_index.h"
#include "methods/lsm/sorted_run.h"
#include "methods/skiplist/skiplist.h"
#include "storage/block_device.h"

namespace rum {

/// The LSM tree's in-memory footprint decomposed into its auxiliary-MO
/// ledger terms. The conservation identity (pinned by lsm_test and the
/// chaos tier): with an owned device, stats().total_space() ==
/// total() exactly -- every resident byte is one of these five terms, and
/// stays so after Crash() recovery, mid-compaction invalidation, and
/// fault-aborted run builds.
struct LsmMemoryFootprint {
  /// Memtable bytes (skiplist entries + towers), from the mem counters.
  uint64_t memtable_bytes = 0;
  /// Device pages held by live runs (page_count * block_size summed).
  uint64_t run_page_bytes = 0;
  /// In-memory fence-pointer bytes across live runs.
  uint64_t fence_bytes = 0;
  /// Bloom-filter bytes across live runs.
  uint64_t filter_bytes = 0;
  /// CrossRunIndex segment/offset bytes (0 when the index is off).
  uint64_t index_bytes = 0;

  uint64_t total() const {
    return memtable_bytes + run_page_bytes + fence_bytes + filter_bytes +
           index_bytes;
  }
};

/// A log-structured merge tree -- the write-optimized corner of the paper's
/// Figure 1 and the "Levelled LSM" row of Table 1.
///
/// Writes buffer in a skiplist memtable; flushes produce immutable sorted
/// runs that cascade through exponentially growing levels (size ratio T =
/// `lsm.size_ratio`). The merge discipline is a pluggable CompactionPolicy
/// strategy (Section 5's "dynamic merge depth" knob, selected by
/// `lsm.policy`): leveled, tiered, lazy-leveled, or per-level hybrid --
/// see LsmPolicy in core/options.h for the tradeoffs. The tree implements
/// CompactionContext, handing the policy its level structure plus charged
/// BuildRun/merge services; cost_model.h predicts each policy's RO/UO/MO
/// and cost_model_test pins prediction against the measured counters.
///
/// Each run carries fence pointers and an optional Bloom filter
/// (`lsm.bloom_bits_per_key`) -- the paper's "logs enhanced by
/// probabilistic data structures" -- trading auxiliary space for read cost.
///
/// Deletes write tombstones; tombstones and shadowed versions are dropped
/// when a merge writes the lowest populated level. Stale versions are
/// accounted as auxiliary space in stats() (live entries are the base
/// data), so the LSM's MO visibly grows with update skew and shrinks at
/// every deep merge.
class LsmTree : public AccessMethod, public CompactionContext {
 public:
  explicit LsmTree(const Options& options);
  LsmTree(const Options& options, Device* device);

  ~LsmTree() override;

  std::string_view name() const override {
    if (options_.lsm.compress_runs) return "lsm-compressed";
    switch (options_.lsm.policy) {
      case LsmPolicy::kLeveled:
        return "lsm-leveled";
      case LsmPolicy::kTiered:
        return "lsm-tiered";
      case LsmPolicy::kLazyLeveled:
        return "lsm-lazy";
      case LsmPolicy::kHybrid:
        return "lsm-hybrid";
    }
    return "lsm";
  }

  Status Insert(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  Status BulkLoad(std::span<const Entry> entries) override;
  Status Flush() override;
  size_t size() const override { return live_keys_.size(); }

  CounterSnapshot stats() const override;
  void ResetStats() override;

  /// Number of levels currently holding runs.
  size_t level_count() const { return levels_.size(); }
  /// Runs at a level (0 <= level < level_count()).
  size_t runs_at(size_t level) const { return levels_[level].size(); }
  /// Total runs across all levels.
  size_t total_runs() const;

  /// The active merge strategy (also checkable via MaxRunsAt in tests).
  const CompactionPolicy& policy() const { return *policy_; }
  /// Memtable flushes since construction.
  uint64_t flushes() const { return flushes_; }
  /// Merges of existing on-device runs since construction (flush-run
  /// builds excluded). Also mirrored into the process-wide MetricsRegistry
  /// counters "lsm.flushes" / "lsm.compactions" / "lsm.compaction_records"
  /// -- the signals OnlineTuner reads to re-tune the policy.
  uint64_t compactions() const { return compactions_; }
  /// Records read out of existing runs by those merges.
  uint64_t compaction_input_records() const {
    return compaction_input_records_;
  }

  // CompactionContext (the services a policy reorganizes):
  const Options::Lsm& lsm_options() const override { return options_.lsm; }
  std::vector<std::vector<std::unique_ptr<SortedRun>>>& levels() override {
    return levels_;
  }
  uint64_t LevelTarget(size_t level) const override;
  bool IsLastPopulated(size_t level) const override;
  Status BuildRun(size_t level, std::vector<LogRecord> records) override;
  void NoteCompaction(size_t input_runs, uint64_t input_records) override;
  void NoteRunRetiring(SortedRun* run) override;

  /// The cross-run sorted view, or nullptr when lsm.cross_run_index is
  /// off (tests inspect segment counts and charged space through this).
  const CrossRunIndex* cross_run_index() const { return index_.get(); }

  // ------------------------------------------------- Live memory resizing
  // The global memory arbiter's control surface (core/memory_budget.h).
  // Both knobs are relaxed atomics: a replan may fire from another shard's
  // thread while this shard operates.

  /// Retargets the memtable flush threshold, effective at the next flush
  /// boundary: Put checks the live limit, so a shrink flushes on the next
  /// write and a growth simply lets the current memtable keep filling.
  void SetMemtableEntryLimit(size_t entries) {
    memtable_limit_.store(entries == 0 ? 1 : entries,
                          std::memory_order_relaxed);
  }
  size_t memtable_entry_limit() const {
    return memtable_limit_.load(std::memory_order_relaxed);
  }

  /// Retargets filter memory, effective on rebuild: runs built after this
  /// call size their bloom filters at the new bits-per-key; existing runs
  /// keep their filters until compaction retires them. 0 disables filters
  /// on future builds.
  void SetBloomBitsPerKey(size_t bits) {
    bloom_bits_.store(bits, std::memory_order_relaxed);
  }
  size_t bloom_bits_per_key() const {
    return bloom_bits_.load(std::memory_order_relaxed);
  }

  /// Bloom-probe outcome tally across all (live and retired) runs.
  const FilterStats& filter_stats() const { return filter_stats_; }

  /// The auxiliary-MO ledger decomposition (see LsmMemoryFootprint).
  LsmMemoryFootprint MemoryFootprint() const;

  /// Merges sorted record streams (newest first) into one; drops shadowed
  /// versions, and tombstones too when `drop_tombstones`.
  static std::vector<LogRecord> MergeStreams(
      std::vector<std::vector<LogRecord>> streams, bool drop_tombstones);
  /// Gathers `inputs` (newest first, charged reads) and merges them.
  static std::vector<LogRecord> MergeRuns(
      const std::vector<SortedRun*>& inputs, bool drop_tombstones);
  /// Gathers one run's records (charged).
  static std::vector<LogRecord> GatherRun(SortedRun* run);

 private:
  /// Approximate resident bytes per memtable entry (17-byte record plus
  /// average tower overhead), the unit converting an arbitrated byte
  /// budget into an entry limit. A modeling constant, not an accounting
  /// one: the ledger uses the memtable's exact charged bytes.
  static constexpr uint64_t kMemtableEntryFootprint = 32;

  /// The memtable as a resizable pool: assigned bytes map to the entry
  /// limit; the benefit signal is flush+merge bytes (VAT's buffer-size vs
  /// merge-cost trade -- more buffer, fewer and larger cascades).
  class MemtablePool : public MemoryPool {
   public:
    explicit MemtablePool(LsmTree* tree) : tree_(tree) {}
    std::string_view pool_name() const override { return "lsm_memtable"; }
    MemoryPoolKind pool_kind() const override {
      return MemoryPoolKind::kMemtable;
    }
    uint64_t pool_bytes() const override {
      return static_cast<uint64_t>(tree_->memtable_entry_limit()) *
             kMemtableEntryFootprint;
    }
    void SetPoolBytes(uint64_t bytes) override {
      tree_->SetMemtableEntryLimit(
          static_cast<size_t>(bytes / kMemtableEntryFootprint));
    }
    uint64_t BenefitSignal() const override {
      return tree_->merge_bytes_.load(std::memory_order_relaxed);
    }

   private:
    LsmTree* tree_;
  };

  /// Filter memory as a resizable pool: the assigned budget converts to
  /// bits-per-key against the (approximate, atomically published) live key
  /// count, applied to future run builds; the benefit signal is
  /// false-positive page bytes.
  class FilterPool : public MemoryPool {
   public:
    explicit FilterPool(LsmTree* tree) : tree_(tree) {}
    std::string_view pool_name() const override { return "lsm_filters"; }
    MemoryPoolKind pool_kind() const override {
      return MemoryPoolKind::kFilter;
    }
    uint64_t pool_bytes() const override {
      return tree_->filter_budget_bytes_.load(std::memory_order_relaxed);
    }
    void SetPoolBytes(uint64_t bytes) override;
    uint64_t BenefitSignal() const override {
      return tree_->filter_stats_.false_positives.load(
                 std::memory_order_relaxed) *
             tree_->options_.block_size;
    }

   private:
    LsmTree* tree_;
  };

  /// Ticks the arbiter's epoch clock (no-op when arbitration is off).
  /// Called at the end of each logical op, never while the tree holds a
  /// lock (it holds none) -- a replan fired here calls straight back into
  /// the Set* knobs above.
  void TickRegistrar() {
    if (registrar_ != nullptr) registrar_->NotePoolOps(1);
  }
  /// Registers the pools with Options::memory.arbiter when enabled.
  void MaybeRegisterPools();

  /// One write-buffered record enters the tree.
  Status Put(Key key, Value value, bool tombstone);
  /// Seals the memtable and hands it to the policy.
  Status FlushMemtable();
  /// Wires the MetricsRegistry counters and callback gauges.
  void InitMetrics();
  /// All runs in recency order: levels top-down, newest-first within a
  /// level -- exactly Get's probe order, which is what makes "lowest
  /// priority index wins" the correct newest-wins rule for scans.
  std::vector<SortedRun*> RunsNewestFirst();
  /// Disabled-index cursor positioning: per-run fence search with the
  /// same O(1) bounds skip; fills `out` for the shared MergeCursorSources
  /// template, which is what keeps it differentially identical to
  /// CrossRunIndex::PositionCursors.
  Status PositionRunsFallback(const std::vector<SortedRun*>& runs, Key lo,
                              Key hi,
                              std::vector<SortedRun::Cursor>* out);

  Options options_;
  std::unique_ptr<CompactionPolicy> policy_;
  std::unique_ptr<BlockDevice> owned_device_;
  Device* device_;

  RumCounters mem_counters_;  // The memtable's separate accounting.
  std::unique_ptr<SkipListMap> memtable_;
  // The REMIX-style cross-run sorted view (nullptr when disabled). Charges
  // its segment space to counters() as auxiliary MO; maintained by the
  // BuildRun/NoteRunRetiring hooks, consulted only by Scan.
  std::unique_ptr<CrossRunIndex> index_;
  // levels_[i] = runs at level i, newest last. Level 0 is the flush target.
  std::vector<std::vector<std::unique_ptr<SortedRun>>> levels_;

  // Simulator-side bookkeeping (unaccounted): exact live-key set for size()
  // and the stats() base/aux space split.
  std::unordered_set<Key> live_keys_;

  // ------------------------------------------------ Memory arbitration
  // Live knobs and signals (all relaxed atomics: replans fire from
  // whatever thread trips an arbiter epoch, possibly another shard's).
  std::atomic<size_t> memtable_limit_{1};  // Live flush threshold (entries).
  std::atomic<size_t> bloom_bits_{0};      // Live bits/key, future builds.
  /// Live-key count published for FilterPool's budget->bits conversion
  /// (live_keys_.size() itself is not safe to read cross-thread).
  std::atomic<uint64_t> approx_keys_{0};
  /// Flush + compaction record bytes: the memtable pool's benefit signal.
  std::atomic<uint64_t> merge_bytes_{0};
  /// Last filter budget the arbiter assigned (what pool_bytes() reports).
  std::atomic<uint64_t> filter_budget_bytes_{0};
  FilterStats filter_stats_;
  MemtablePool memtable_pool_{this};
  FilterPool filter_pool_{this};
  MemoryRegistrar* registrar_ = nullptr;  // Non-null once pools registered.
  bool filter_pool_registered_ = false;

  // Flush/compaction tallies, mirrored into registry-owned counters (always
  // available) and exported as gauges when the registry is enabled.
  uint64_t flushes_ = 0;
  uint64_t compactions_ = 0;
  uint64_t compaction_input_records_ = 0;
  MetricsRegistry::Counter* flush_counter_ = nullptr;
  MetricsRegistry::Counter* compaction_counter_ = nullptr;
  MetricsRegistry::Counter* compaction_records_counter_ = nullptr;
  MetricsGroup metrics_;  // Last member: unregisters before state dies.
};

}  // namespace rum

#endif  // RUMLAB_METHODS_LSM_LSM_TREE_H_

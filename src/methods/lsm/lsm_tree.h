#ifndef RUMLAB_METHODS_LSM_LSM_TREE_H_
#define RUMLAB_METHODS_LSM_LSM_TREE_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "core/access_method.h"
#include "core/options.h"
#include "methods/lsm/sorted_run.h"
#include "methods/skiplist/skiplist.h"
#include "storage/block_device.h"

namespace rum {

/// A log-structured merge tree -- the write-optimized corner of the paper's
/// Figure 1 and the "Levelled LSM" row of Table 1.
///
/// Writes buffer in a skiplist memtable; flushes produce immutable sorted
/// runs that cascade through exponentially growing levels (size ratio T =
/// `lsm.size_ratio`). Two merge policies implement the Section-5 "dynamic
/// merge depth" knob:
///  - kLeveled: one run per level; every flush merges eagerly (lower read
///    amplification, higher write amplification);
///  - kTiered: up to T runs per level, merged only when the level fills
///    (lower write amplification, higher read amplification).
///
/// Each run carries fence pointers and an optional Bloom filter
/// (`lsm.bloom_bits_per_key`) -- the paper's "logs enhanced by
/// probabilistic data structures" -- trading auxiliary space for read cost.
///
/// Deletes write tombstones; tombstones and shadowed versions are dropped
/// when a merge writes the lowest populated level. Stale versions are
/// accounted as auxiliary space in stats() (live entries are the base
/// data), so the LSM's MO visibly grows with update skew and shrinks at
/// every deep merge.
class LsmTree : public AccessMethod {
 public:
  explicit LsmTree(const Options& options);
  LsmTree(const Options& options, Device* device);

  ~LsmTree() override;

  std::string_view name() const override {
    if (options_.lsm.compress_runs) return "lsm-compressed";
    return policy_ == CompactionPolicy::kLeveled ? "lsm-leveled"
                                                 : "lsm-tiered";
  }

  Status Insert(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  Status BulkLoad(std::span<const Entry> entries) override;
  Status Flush() override;
  size_t size() const override { return live_keys_.size(); }

  CounterSnapshot stats() const override;
  void ResetStats() override;

  /// Number of levels currently holding runs.
  size_t level_count() const { return levels_.size(); }
  /// Runs at a level (0 <= level < level_count()).
  size_t runs_at(size_t level) const { return levels_[level].size(); }
  /// Total runs across all levels.
  size_t total_runs() const;

  /// Merges sorted record streams (newest first) into one; drops shadowed
  /// versions, and tombstones too when `drop_tombstones`.
  static std::vector<LogRecord> MergeStreams(
      std::vector<std::vector<LogRecord>> streams, bool drop_tombstones);
  /// Gathers `inputs` (newest first, charged reads) and merges them.
  static std::vector<LogRecord> MergeRuns(
      const std::vector<SortedRun*>& inputs, bool drop_tombstones);
  /// Gathers one run's records (charged).
  static std::vector<LogRecord> GatherRun(SortedRun* run);

 private:
  /// One write-buffered record enters the tree.
  Status Put(Key key, Value value, bool tombstone);
  /// Seals the memtable into a level-0 run and compacts as needed.
  Status FlushMemtable();
  /// Collects every input's records (charged), merges, and rebuilds.
  Status CompactInto(size_t level, std::vector<LogRecord> records);
  /// Target record capacity of a level.
  uint64_t LevelTarget(size_t level) const;
  /// True when no populated level exists below `level`.
  bool IsLastPopulated(size_t level) const;

  Options options_;
  CompactionPolicy policy_;
  std::unique_ptr<BlockDevice> owned_device_;
  Device* device_;

  RumCounters mem_counters_;  // The memtable's separate accounting.
  std::unique_ptr<SkipListMap> memtable_;
  // levels_[i] = runs at level i, newest last. Level 0 is the flush target.
  std::vector<std::vector<std::unique_ptr<SortedRun>>> levels_;

  // Simulator-side bookkeeping (unaccounted): exact live-key set for size()
  // and the stats() base/aux space split.
  std::unordered_set<Key> live_keys_;
};

}  // namespace rum

#endif  // RUMLAB_METHODS_LSM_LSM_TREE_H_

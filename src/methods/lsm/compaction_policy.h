#ifndef RUMLAB_METHODS_LSM_COMPACTION_POLICY_H_
#define RUMLAB_METHODS_LSM_COMPACTION_POLICY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "core/options.h"
#include "core/status.h"
#include "methods/lsm/sorted_run.h"

namespace rum {

/// The services and state a compaction policy reorganizes. LsmTree
/// implements this; the policy objects themselves stay stateless so one
/// instance could drive any number of trees.
///
/// Levels are vectors of immutable runs, newest last; level 0 is the flush
/// target. Relocating a run between levels is a pointer move (free);
/// rewriting records costs charged device I/O via BuildRun.
class CompactionContext {
 public:
  virtual ~CompactionContext() = default;

  virtual const Options::Lsm& lsm_options() const = 0;

  /// The level array itself; policies splice runs in and out directly.
  virtual std::vector<std::vector<std::unique_ptr<SortedRun>>>& levels() = 0;

  /// Target record capacity of a level (memtable_entries * T^(level+1)).
  virtual uint64_t LevelTarget(size_t level) const = 0;

  /// True when no populated level exists strictly below `level` -- the
  /// tombstone-GC gate: a merge writing the lowest populated data may drop
  /// tombstones because nothing older can resurface.
  virtual bool IsLastPopulated(size_t level) const = 0;

  /// Builds a run from `records` and appends it at `level` (charged device
  /// writes + filter/fence space). Empty input is a no-op.
  virtual Status BuildRun(size_t level, std::vector<LogRecord> records) = 0;

  /// Bookkeeping hook: a merge of `input_runs` existing on-device runs
  /// covering `input_records` records just ran (flush-run builds are not
  /// compactions). Feeds the MetricsRegistry signals the tuner watches.
  virtual void NoteCompaction(size_t input_runs, uint64_t input_records) = 0;

  /// Maintenance hook: `run` is about to be destroyed (compaction consumed
  /// it). The tree uses this to invalidate the cross-run index segments
  /// covering the run's key range; the default is a no-op so contexts
  /// without an index need not care. Relocating a run between levels is
  /// NOT a retirement (the run object, and so its stored cursor offsets,
  /// survive the pointer move).
  virtual void NoteRunRetiring(SortedRun* run) { (void)run; }
};

/// One merge discipline for an LSM-tree -- the strategy object behind
/// Options::lsm.policy. HandleFlush absorbs a sealed memtable into the
/// level structure, cascading merges however the policy dictates;
/// MaxRunsAt states the structural invariant the policy restores before
/// returning (compaction_policy_test checks it after every flush).
class CompactionPolicy {
 public:
  virtual ~CompactionPolicy() = default;

  /// Policy name without the "lsm-" prefix ("leveled", "tiered", ...).
  virtual std::string_view name() const = 0;
  virtual LsmPolicy kind() const = 0;

  /// Hard bound on runs `level` may hold once HandleFlush returns.
  virtual size_t MaxRunsAt(size_t level, const CompactionContext& ctx)
      const = 0;

  /// Absorbs one sealed memtable (key-sorted records, the newest data in
  /// the tree) and restores the policy's run-count invariants.
  virtual Status HandleFlush(CompactionContext* ctx,
                             std::vector<LogRecord> records) = 0;

  /// The strategy for an LsmPolicy value.
  static std::unique_ptr<CompactionPolicy> Make(LsmPolicy kind);
};

/// Merges sorted record streams (newest first) into one; drops shadowed
/// versions, and tombstones too when `drop_tombstones`. Shared by the
/// policies and exposed through LsmTree's static wrappers for tests.
std::vector<LogRecord> MergeLogStreams(
    std::vector<std::vector<LogRecord>> streams, bool drop_tombstones);

/// Gathers one run's records (charged: compaction reads every input page).
std::vector<LogRecord> GatherSortedRun(SortedRun* run);

/// Gathers `inputs` (newest first, charged reads) and merges them.
std::vector<LogRecord> MergeSortedRuns(const std::vector<SortedRun*>& inputs,
                                       bool drop_tombstones);

}  // namespace rum

#endif  // RUMLAB_METHODS_LSM_COMPACTION_POLICY_H_

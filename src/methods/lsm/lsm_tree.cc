#include "methods/lsm/lsm_tree.h"

#include <algorithm>
#include <cassert>

#include "core/trace.h"

namespace rum {

LsmTree::LsmTree(const Options& options)
    : options_(options),
      policy_(CompactionPolicy::Make(options.lsm.policy)),
      owned_device_(
          std::make_unique<BlockDevice>(options.block_size, &counters())),
      device_(owned_device_.get()),
      memtable_(
          std::make_unique<SkipListMap>(options.skiplist, &mem_counters_)) {
  if (options_.lsm.cross_run_index) {
    index_ = std::make_unique<CrossRunIndex>(
        &counters(), options_.lsm.cross_run_segment_entries);
  }
  InitMetrics();
  MaybeRegisterPools();
}

LsmTree::LsmTree(const Options& options, Device* device)
    : options_(options),
      policy_(CompactionPolicy::Make(options.lsm.policy)),
      device_(device),
      memtable_(
          std::make_unique<SkipListMap>(options.skiplist, &mem_counters_)) {
  if (options_.lsm.cross_run_index) {
    index_ = std::make_unique<CrossRunIndex>(
        &counters(), options_.lsm.cross_run_segment_entries);
  }
  InitMetrics();
  MaybeRegisterPools();
}

LsmTree::~LsmTree() {
  if (registrar_ != nullptr) {
    registrar_->UnregisterPool(&memtable_pool_);
    if (filter_pool_registered_) registrar_->UnregisterPool(&filter_pool_);
  }
}

void LsmTree::MaybeRegisterPools() {
  // Seed the live knobs from the static configuration; without an arbiter
  // they never change, which is what makes memory.enabled=false byte-
  // identical to the pre-arbiter behavior.
  memtable_limit_.store(std::max<size_t>(1, options_.lsm.memtable_entries),
                        std::memory_order_relaxed);
  bloom_bits_.store(options_.lsm.bloom_bits_per_key,
                    std::memory_order_relaxed);
  filter_budget_bytes_.store(
      static_cast<uint64_t>(options_.lsm.bloom_bits_per_key) *
          std::max<uint64_t>(1, options_.lsm.memtable_entries) / 8,
      std::memory_order_relaxed);
  if (!options_.memory.enabled || options_.memory.arbiter == nullptr) return;
  registrar_ = options_.memory.arbiter;
  registrar_->RegisterPool(&memtable_pool_);
  // Filter memory is only arbitrable when the configuration asked for
  // filters at all: 0 bits/key keeps the paper's filterless baseline.
  if (options_.lsm.bloom_bits_per_key > 0) {
    registrar_->RegisterPool(&filter_pool_);
    filter_pool_registered_ = true;
  }
}

void LsmTree::FilterPool::SetPoolBytes(uint64_t bytes) {
  tree_->filter_budget_bytes_.store(bytes, std::memory_order_relaxed);
  // Convert the byte budget into bits-per-key against the published live
  // key count (the static memtable size stands in before any key lands).
  uint64_t keys = tree_->approx_keys_.load(std::memory_order_relaxed);
  if (keys == 0) {
    keys = std::max<uint64_t>(1, tree_->options_.lsm.memtable_entries);
  }
  uint64_t bits = bytes * 8 / keys;
  if (bits > 64) bits = 64;  // Past ~20 bits/key the FP-rate gain is nil.
  tree_->SetBloomBitsPerKey(static_cast<size_t>(bits));
}

void LsmTree::InitMetrics() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  flush_counter_ = registry.FindOrCreateCounter("lsm.flushes");
  compaction_counter_ = registry.FindOrCreateCounter("lsm.compactions");
  compaction_records_counter_ =
      registry.FindOrCreateCounter("lsm.compaction_records");
  if (options_.observability.metrics) {
    metrics_.Init("lsm");
    metrics_.Gauge("levels", [this] { return levels_.size(); });
    metrics_.Gauge("runs", [this] { return total_runs(); });
    metrics_.Gauge("flushes", [this] { return flushes_; });
    metrics_.Gauge("compactions", [this] { return compactions_; });
  }
}

size_t LsmTree::total_runs() const {
  size_t n = 0;
  for (const auto& level : levels_) n += level.size();
  return n;
}

uint64_t LsmTree::LevelTarget(size_t level) const {
  uint64_t target = options_.lsm.memtable_entries;
  for (size_t i = 0; i <= level; ++i) {
    target *= options_.lsm.size_ratio;
  }
  return target;
}

bool LsmTree::IsLastPopulated(size_t level) const {
  for (size_t i = level + 1; i < levels_.size(); ++i) {
    if (!levels_[i].empty()) return false;
  }
  return true;
}

Status LsmTree::Put(Key key, Value value, bool tombstone) {
  counters().OnLogicalWrite(kEntrySize);
  memtable_->Put(key, value, tombstone);
  if (tombstone) {
    live_keys_.erase(key);
  } else {
    live_keys_.insert(key);
  }
  approx_keys_.store(live_keys_.size(), std::memory_order_relaxed);
  // The *live* limit, not the configured one: a replan shrink flushes on
  // the very next write, a growth lets the memtable keep filling.
  if (memtable_->record_count() >= memtable_entry_limit()) {
    return FlushMemtable();
  }
  return Status::OK();
}

Status LsmTree::Insert(Key key, Value value) {
  TickRegistrar();
  counters().OnInsert();
  return Put(key, value, /*tombstone=*/false);
}

Status LsmTree::Delete(Key key) {
  TickRegistrar();
  counters().OnDelete();
  return Put(key, 0, /*tombstone=*/true);
}

std::vector<LogRecord> LsmTree::GatherRun(SortedRun* run) {
  return GatherSortedRun(run);
}

std::vector<LogRecord> LsmTree::MergeRuns(
    const std::vector<SortedRun*>& inputs, bool drop_tombstones) {
  return MergeSortedRuns(inputs, drop_tombstones);
}

std::vector<LogRecord> LsmTree::MergeStreams(
    std::vector<std::vector<LogRecord>> streams, bool drop_tombstones) {
  return MergeLogStreams(std::move(streams), drop_tombstones);
}

Status LsmTree::BuildRun(size_t level, std::vector<LogRecord> records) {
  if (levels_.size() <= level) levels_.resize(level + 1);
  if (records.empty()) return Status::OK();
  Trace::Emit(TraceKind::kLsmCompaction, TraceOp::kWrite, kInvalidPageId,
              DataClass::kBase, level);
  std::unique_ptr<SortedRun> run;
  // bloom_bits_per_key() (the live knob), not the configured value: the
  // arbiter re-budgets filters at exactly this rebuild boundary.
  Status s = SortedRun::Build(device_, &counters(), records,
                              bloom_bits_per_key(), &run,
                              options_.lsm.fence_entries,
                              options_.lsm.compress_runs,
                              options_.storage.pinned_pages);
  if (!s.ok()) return s;
  run->set_filter_stats(&filter_stats_);
  if (index_ != nullptr) index_->OnRunCreated(run.get());
  levels_[level].push_back(std::move(run));
  return Status::OK();
}

void LsmTree::NoteRunRetiring(SortedRun* run) {
  if (index_ != nullptr) index_->OnRunRetiring(run);
}

void LsmTree::NoteCompaction(size_t input_runs, uint64_t input_records) {
  (void)input_runs;
  ++compactions_;
  compaction_input_records_ += input_records;
  compaction_counter_->Increment();
  compaction_records_counter_->Increment(input_records);
  merge_bytes_.fetch_add(input_records * kEntrySize,
                         std::memory_order_relaxed);
}

Status LsmTree::FlushMemtable() {
  if (memtable_->record_count() == 0) return Status::OK();
  std::vector<LogRecord> records;
  records.reserve(memtable_->record_count());
  memtable_->VisitAllUnaccounted([&](const SkipListMap::Record& r) {
    records.push_back(LogRecord{
        r.key, r.value, r.tombstone ? LogOp::kDelete : LogOp::kPut});
  });
  memtable_->Clear();
  Trace::Emit(TraceKind::kLsmFlush, TraceOp::kFlush, kInvalidPageId,
              DataClass::kBase, records.size());

  if (levels_.empty()) levels_.resize(1);
  ++flushes_;
  flush_counter_->Increment();
  // The memtable pool's benefit signal: bytes this flush pushes into the
  // merge machinery (a bigger buffer would have absorbed more first).
  merge_bytes_.fetch_add(records.size() * kEntrySize,
                         std::memory_order_relaxed);
  return policy_->HandleFlush(this, std::move(records));
}

Result<Value> LsmTree::Get(Key key) {
  TickRegistrar();
  counters().OnPointQuery();
  SkipListMap::Record mem_record;
  if (memtable_->Find(key, &mem_record)) {
    if (mem_record.tombstone) return Status::NotFound();
    counters().OnLogicalRead(kEntrySize);
    return mem_record.value;
  }
  for (const auto& level : levels_) {
    for (size_t i = level.size(); i-- > 0;) {
      // O(1) bounds skip: a run whose [min, max] misses the key costs
      // nothing -- no Bloom probe, no fence search.
      if (key < level[i]->min_key() || key > level[i]->max_key()) continue;
      Result<std::optional<LogRecord>> hit = level[i]->Get(key);
      if (!hit.ok()) return hit.status();
      if (hit.value().has_value()) {
        if (hit.value()->op == LogOp::kDelete) return Status::NotFound();
        counters().OnLogicalRead(kEntrySize);
        return hit.value()->value;
      }
    }
  }
  return Status::NotFound();
}

std::vector<SortedRun*> LsmTree::RunsNewestFirst() {
  std::vector<SortedRun*> runs;
  runs.reserve(total_runs());
  for (auto& level : levels_) {
    for (size_t i = level.size(); i-- > 0;) {
      runs.push_back(level[i].get());
    }
  }
  return runs;
}

Status LsmTree::PositionRunsFallback(const std::vector<SortedRun*>& runs,
                                     Key lo, Key hi,
                                     std::vector<SortedRun::Cursor>* out) {
  out->clear();
  out->reserve(runs.size());
  for (SortedRun* run : runs) {
    // O(1) bounds skip, same rule as the index path.
    if (run->max_key() < lo || run->min_key() > hi) continue;
    SortedRun::Cursor cursor(run);
    Status s = cursor.SeekFirstAtLeast(lo);
    if (!s.ok()) return s;
    out->push_back(std::move(cursor));
  }
  return Status::OK();
}

Status LsmTree::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  TickRegistrar();
  counters().OnRangeQuery();
  // The memtable is the newest stream of all; gather its window (charged
  // skiplist reads) and two-way merge it against the ordered run stream.
  std::vector<SkipListMap::Record> mem;
  memtable_->VisitRange(lo, hi, [&](const SkipListMap::Record& r) {
    mem.push_back(r);
  });
  size_t mem_pos = 0;
  uint64_t hits = 0;
  auto emit = [&](Key key, Value value, bool tombstone) {
    if (tombstone) return;
    out->push_back(Entry{key, value});
    ++hits;
  };
  // The run stream arrives ascending with the newest version per key
  // (tombstones included, so a delete shadows older puts). Memtable
  // entries interleave by key and win ties.
  auto on_run_record = [&](const LogRecord& r) {
    while (mem_pos < mem.size() && mem[mem_pos].key <= r.key) {
      const SkipListMap::Record& m = mem[mem_pos++];
      bool shadows = m.key == r.key;
      emit(m.key, m.value, m.tombstone);
      if (shadows) return;
    }
    emit(r.key, r.value, r.op == LogOp::kDelete);
  };
  // Positioning (index segment lookup or per-run fence search) stays
  // behind a call; the per-record merge runs here so `on_run_record`
  // inlines instead of paying a std::function dispatch per record.
  std::vector<SortedRun*> runs = RunsNewestFirst();
  std::vector<SortedRun::Cursor> cursors;
  Status s = index_ != nullptr
                 ? index_->PositionCursors(runs, lo, hi, &cursors)
                 : PositionRunsFallback(runs, lo, hi, &cursors);
  if (!s.ok()) return s;
  if (!cursors.empty()) {
    s = MergeCursorSources(&cursors, hi, on_run_record);
    if (!s.ok()) return s;
  }
  // Memtable entries beyond the last run record.
  for (; mem_pos < mem.size(); ++mem_pos) {
    emit(mem[mem_pos].key, mem[mem_pos].value, mem[mem_pos].tombstone);
  }
  counters().OnLogicalRead(hits * kEntrySize);
  return Status::OK();
}

Status LsmTree::BulkLoad(std::span<const Entry> entries) {
  Status s = CheckBulkLoadPreconditions(entries);
  if (!s.ok()) return s;
  if (entries.empty()) return Status::OK();
  std::vector<LogRecord> records;
  records.reserve(entries.size());
  for (const Entry& e : entries) {
    records.push_back(LogRecord{e.key, e.value, LogOp::kPut});
    live_keys_.insert(e.key);
  }
  approx_keys_.store(live_keys_.size(), std::memory_order_relaxed);
  // Place the run at the shallowest level whose target accommodates it.
  size_t level = 0;
  while (LevelTarget(level) < records.size()) ++level;
  counters().OnLogicalWrite(static_cast<uint64_t>(entries.size()) *
                            kEntrySize);
  return BuildRun(level, std::move(records));
}

Status LsmTree::Flush() { return FlushMemtable(); }

void LsmTree::ResetStats() {
  AccessMethod::ResetStats();
  mem_counters_.ResetTraffic();
}

LsmMemoryFootprint LsmTree::MemoryFootprint() const {
  LsmMemoryFootprint fp;
  fp.memtable_bytes = mem_counters_.snapshot().total_space();
  for (const auto& level : levels_) {
    for (const auto& run : level) {
      fp.run_page_bytes +=
          static_cast<uint64_t>(run->page_count()) * options_.block_size;
      fp.fence_bytes += run->fence_bytes();
      fp.filter_bytes += run->filter_bytes();
    }
  }
  if (index_ != nullptr) fp.index_bytes = index_->charged_bytes();
  return fp;
}

CounterSnapshot LsmTree::stats() const {
  CounterSnapshot snap = AccessMethod::stats();
  const CounterSnapshot& mem = mem_counters_.snapshot();
  // Merge the memtable's traffic and space into the device-side snapshot.
  snap.bytes_read_base += mem.bytes_read_base;
  snap.bytes_read_aux += mem.bytes_read_aux;
  snap.bytes_written_base += mem.bytes_written_base;
  snap.bytes_written_aux += mem.bytes_written_aux;
  uint64_t total_space = snap.total_space() + mem.total_space();
  // Live entries are the base data; everything else (stale versions,
  // tombstones, filters, fences, block slack, memtable towers) is overhead.
  uint64_t base = static_cast<uint64_t>(live_keys_.size()) * kEntrySize;
  base = std::min(base, total_space);
  snap.space_base = base;
  snap.space_aux = total_space - base;
  return snap;
}

}  // namespace rum

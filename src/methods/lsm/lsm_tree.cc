#include "methods/lsm/lsm_tree.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "core/trace.h"

namespace rum {

LsmTree::LsmTree(const Options& options)
    : options_(options),
      policy_(options.lsm.policy),
      owned_device_(
          std::make_unique<BlockDevice>(options.block_size, &counters())),
      device_(owned_device_.get()),
      memtable_(
          std::make_unique<SkipListMap>(options.skiplist, &mem_counters_)) {}

LsmTree::LsmTree(const Options& options, Device* device)
    : options_(options),
      policy_(options.lsm.policy),
      device_(device),
      memtable_(
          std::make_unique<SkipListMap>(options.skiplist, &mem_counters_)) {}

LsmTree::~LsmTree() = default;

size_t LsmTree::total_runs() const {
  size_t n = 0;
  for (const auto& level : levels_) n += level.size();
  return n;
}

uint64_t LsmTree::LevelTarget(size_t level) const {
  uint64_t target = options_.lsm.memtable_entries;
  for (size_t i = 0; i <= level; ++i) {
    target *= options_.lsm.size_ratio;
  }
  return target;
}

bool LsmTree::IsLastPopulated(size_t level) const {
  for (size_t i = level + 1; i < levels_.size(); ++i) {
    if (!levels_[i].empty()) return false;
  }
  return true;
}

Status LsmTree::Put(Key key, Value value, bool tombstone) {
  counters().OnLogicalWrite(kEntrySize);
  memtable_->Put(key, value, tombstone);
  if (tombstone) {
    live_keys_.erase(key);
  } else {
    live_keys_.insert(key);
  }
  if (memtable_->record_count() >= options_.lsm.memtable_entries) {
    return FlushMemtable();
  }
  return Status::OK();
}

Status LsmTree::Insert(Key key, Value value) {
  counters().OnInsert();
  return Put(key, value, /*tombstone=*/false);
}

Status LsmTree::Delete(Key key) {
  counters().OnDelete();
  return Put(key, 0, /*tombstone=*/true);
}

std::vector<LogRecord> LsmTree::GatherRun(SortedRun* run) {
  std::vector<LogRecord> records;
  records.reserve(run->record_count());
  // Charged: compaction reads every input page.
  Status s = run->VisitAll(
      [&](const LogRecord& r) { records.push_back(r); });
  assert(s.ok());
  (void)s;
  return records;
}

std::vector<LogRecord> LsmTree::MergeRuns(
    const std::vector<SortedRun*>& inputs, bool drop_tombstones) {
  std::vector<std::vector<LogRecord>> streams;
  streams.reserve(inputs.size());
  for (SortedRun* run : inputs) {
    streams.push_back(GatherRun(run));
  }
  return MergeStreams(std::move(streams), drop_tombstones);
}

std::vector<LogRecord> LsmTree::MergeStreams(
    std::vector<std::vector<LogRecord>> streams, bool drop_tombstones) {
  // Streams are ordered newest first; a newer version of a key shadows all
  // older ones.
  std::vector<size_t> pos(streams.size(), 0);
  std::vector<LogRecord> out;
  while (true) {
    Key best = kMaxKey;
    size_t winner = streams.size();
    bool any = false;
    for (size_t i = 0; i < streams.size(); ++i) {
      if (pos[i] >= streams[i].size()) continue;
      Key k = streams[i][pos[i]].key;
      if (!any || k < best) {
        best = k;
        winner = i;
        any = true;
      }
    }
    if (!any) break;
    LogRecord chosen = streams[winner][pos[winner]];
    // Skip every (older) duplicate of this key.
    for (size_t i = 0; i < streams.size(); ++i) {
      while (pos[i] < streams[i].size() && streams[i][pos[i]].key == best) {
        ++pos[i];
      }
    }
    if (drop_tombstones && chosen.op == LogOp::kDelete) continue;
    out.push_back(chosen);
  }
  return out;
}

Status LsmTree::CompactInto(size_t level, std::vector<LogRecord> records) {
  if (levels_.size() <= level) levels_.resize(level + 1);
  if (records.empty()) return Status::OK();
  Trace::Emit(TraceKind::kLsmCompaction, TraceOp::kWrite, kInvalidPageId,
              DataClass::kBase, level);
  std::unique_ptr<SortedRun> run;
  Status s = SortedRun::Build(device_, &counters(), records,
                              options_.lsm.bloom_bits_per_key, &run,
                              options_.lsm.fence_entries,
                              options_.lsm.compress_runs,
                              options_.storage.pinned_pages);
  if (!s.ok()) return s;
  levels_[level].push_back(std::move(run));
  return Status::OK();
}

Status LsmTree::FlushMemtable() {
  if (memtable_->record_count() == 0) return Status::OK();
  std::vector<LogRecord> records;
  records.reserve(memtable_->record_count());
  memtable_->VisitAllUnaccounted([&](const SkipListMap::Record& r) {
    records.push_back(LogRecord{
        r.key, r.value, r.tombstone ? LogOp::kDelete : LogOp::kPut});
  });
  memtable_->Clear();
  Trace::Emit(TraceKind::kLsmFlush, TraceOp::kFlush, kInvalidPageId,
              DataClass::kBase, records.size());

  if (levels_.empty()) levels_.resize(1);

  if (policy_ == CompactionPolicy::kLeveled) {
    // Merge the flush into level 0 directly from memory (the memtable is
    // the newest stream), then cascade any level that overflows its target
    // into the next one. One run per level.
    {
      std::vector<std::vector<LogRecord>> streams;
      streams.push_back(std::move(records));
      if (!levels_[0].empty()) {
        streams.push_back(GatherRun(levels_[0].back().get()));
        Status d = levels_[0].back()->Destroy();
        if (!d.ok()) return d;
        levels_[0].clear();
      }
      std::vector<LogRecord> merged =
          MergeStreams(std::move(streams), IsLastPopulated(0));
      Status s = CompactInto(0, std::move(merged));
      if (!s.ok()) return s;
    }
    // Cascade.
    for (size_t level = 0; level < levels_.size(); ++level) {
      if (levels_[level].empty()) continue;
      if (levels_[level].back()->record_count() <= LevelTarget(level)) {
        continue;
      }
      std::vector<SortedRun*> merge_inputs;
      merge_inputs.push_back(levels_[level].back().get());
      if (levels_.size() <= level + 1) levels_.resize(level + 2);
      if (!levels_[level + 1].empty()) {
        merge_inputs.push_back(levels_[level + 1].back().get());
      }
      std::vector<LogRecord> merged =
          MergeRuns(merge_inputs, IsLastPopulated(level + 1));
      Status s = levels_[level].back()->Destroy();
      if (!s.ok()) return s;
      levels_[level].clear();
      if (!levels_[level + 1].empty()) {
        s = levels_[level + 1].back()->Destroy();
        if (!s.ok()) return s;
        levels_[level + 1].clear();
      }
      s = CompactInto(level + 1, std::move(merged));
      if (!s.ok()) return s;
    }
    return Status::OK();
  }

  // Tiered: the flush becomes a new level-0 run; a level holding
  // `size_ratio` runs merges them into one run at the next level.
  Status s = CompactInto(0, std::move(records));
  if (!s.ok()) return s;
  for (size_t level = 0; level < levels_.size(); ++level) {
    if (levels_[level].size() < options_.lsm.size_ratio) continue;
    std::vector<SortedRun*> inputs;
    // Newest runs are at the back; MergeRuns wants newest first.
    for (size_t i = levels_[level].size(); i-- > 0;) {
      inputs.push_back(levels_[level][i].get());
    }
    std::vector<LogRecord> merged =
        MergeRuns(inputs, IsLastPopulated(level));
    for (auto& run : levels_[level]) {
      Status d = run->Destroy();
      if (!d.ok()) return d;
    }
    levels_[level].clear();
    s = CompactInto(level + 1, std::move(merged));
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Result<Value> LsmTree::Get(Key key) {
  counters().OnPointQuery();
  SkipListMap::Record mem_record;
  if (memtable_->Find(key, &mem_record)) {
    if (mem_record.tombstone) return Status::NotFound();
    counters().OnLogicalRead(kEntrySize);
    return mem_record.value;
  }
  for (const auto& level : levels_) {
    for (size_t i = level.size(); i-- > 0;) {
      Result<std::optional<LogRecord>> hit = level[i]->Get(key);
      if (!hit.ok()) return hit.status();
      if (hit.value().has_value()) {
        if (hit.value()->op == LogOp::kDelete) return Status::NotFound();
        counters().OnLogicalRead(kEntrySize);
        return hit.value()->value;
      }
    }
  }
  return Status::NotFound();
}

Status LsmTree::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  counters().OnRangeQuery();
  // Newest source wins per key: memtable, then levels top-down, runs
  // newest-first within a level.
  std::unordered_map<Key, std::pair<Value, bool>> newest;  // value, tombstone
  memtable_->VisitRange(lo, hi, [&](const SkipListMap::Record& r) {
    newest.emplace(r.key, std::make_pair(r.value, r.tombstone));
  });
  for (const auto& level : levels_) {
    for (size_t i = level.size(); i-- > 0;) {
      Status s = level[i]->VisitRange(lo, hi, [&](const LogRecord& r) {
        newest.emplace(r.key,
                       std::make_pair(r.value, r.op == LogOp::kDelete));
      });
      if (!s.ok()) return s;
    }
  }
  std::vector<Entry> hits;
  for (const auto& [k, vt] : newest) {
    if (!vt.second) hits.push_back(Entry{k, vt.first});
  }
  std::sort(hits.begin(), hits.end());
  counters().OnLogicalRead(static_cast<uint64_t>(hits.size()) * kEntrySize);
  out->insert(out->end(), hits.begin(), hits.end());
  return Status::OK();
}

Status LsmTree::BulkLoad(std::span<const Entry> entries) {
  Status s = CheckBulkLoadPreconditions(entries);
  if (!s.ok()) return s;
  if (entries.empty()) return Status::OK();
  std::vector<LogRecord> records;
  records.reserve(entries.size());
  for (const Entry& e : entries) {
    records.push_back(LogRecord{e.key, e.value, LogOp::kPut});
    live_keys_.insert(e.key);
  }
  // Place the run at the shallowest level whose target accommodates it.
  size_t level = 0;
  while (LevelTarget(level) < records.size()) ++level;
  counters().OnLogicalWrite(static_cast<uint64_t>(entries.size()) *
                            kEntrySize);
  return CompactInto(level, std::move(records));
}

Status LsmTree::Flush() { return FlushMemtable(); }

void LsmTree::ResetStats() {
  AccessMethod::ResetStats();
  mem_counters_.ResetTraffic();
}

CounterSnapshot LsmTree::stats() const {
  CounterSnapshot snap = AccessMethod::stats();
  const CounterSnapshot& mem = mem_counters_.snapshot();
  // Merge the memtable's traffic and space into the device-side snapshot.
  snap.bytes_read_base += mem.bytes_read_base;
  snap.bytes_read_aux += mem.bytes_read_aux;
  snap.bytes_written_base += mem.bytes_written_base;
  snap.bytes_written_aux += mem.bytes_written_aux;
  uint64_t total_space = snap.total_space() + mem.total_space();
  // Live entries are the base data; everything else (stale versions,
  // tombstones, filters, fences, block slack, memtable towers) is overhead.
  uint64_t base = static_cast<uint64_t>(live_keys_.size()) * kEntrySize;
  base = std::min(base, total_space);
  snap.space_base = base;
  snap.space_aux = total_space - base;
  return snap;
}

}  // namespace rum

#ifndef RUMLAB_METHODS_LSM_CROSS_RUN_INDEX_H_
#define RUMLAB_METHODS_LSM_CROSS_RUN_INDEX_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/counters.h"
#include "core/status.h"
#include "core/types.h"
#include "methods/lsm/sorted_run.h"

namespace rum {

/// Merges positioned cursors (newest source first) into one ascending
/// stream of records with key <= `hi`, newest-wins per key: when several
/// sources hold the same key, only the lowest-index source's record is
/// emitted and every source steps past the key. Tombstones ARE emitted
/// (the newest version of a key may be a delete that must shadow older
/// puts); the caller filters them. Shared by the cross-run-index scan path
/// and the disabled-index k-way fallback, which is what makes the two
/// paths differentially identical by construction. A template so the
/// caller's visitor inlines -- this runs once per emitted record, the
/// hottest loop on the scan path.
template <typename Visit>
Status MergeCursorSources(std::vector<SortedRun::Cursor>* sources, Key hi,
                          Visit&& visit) {
  std::vector<SortedRun::Cursor>& cur = *sources;
  // Single source (one run, or a leveled tree): no merge state at all,
  // just stream the cursor.
  if (cur.size() == 1) {
    SortedRun::Cursor& c = cur[0];
    while (c.Valid() && c.record().key <= hi) {
      visit(c.record());
      Status s = c.Next();
      if (!s.ok()) return s;
    }
    return Status::OK();
  }
  // Heap of source indices, min by (key, source index): ties break toward
  // the lower index, which the caller ordered newest-first.
  auto greater = [&cur](size_t a, size_t b) {
    Key ka = cur[a].record().key;
    Key kb = cur[b].record().key;
    if (ka != kb) return ka > kb;
    return a > b;
  };
  std::vector<size_t> heap;
  heap.reserve(cur.size());
  for (size_t i = 0; i < cur.size(); ++i) {
    if (cur[i].Valid() && cur[i].record().key <= hi) heap.push_back(i);
  }
  std::make_heap(heap.begin(), heap.end(), greater);

  auto step = [&](size_t src) -> Status {
    Status s = cur[src].Next();
    if (!s.ok()) return s;
    if (cur[src].Valid() && cur[src].record().key <= hi) {
      heap.push_back(src);
      std::push_heap(heap.begin(), heap.end(), greater);
    }
    return Status::OK();
  };

  while (!heap.empty()) {
    std::pop_heap(heap.begin(), heap.end(), greater);
    size_t winner = heap.back();
    heap.pop_back();
    Key key = cur[winner].record().key;
    visit(cur[winner].record());
    Status s = step(winner);
    if (!s.ok()) return s;
    // Step every older source holding the same (shadowed) key.
    while (!heap.empty()) {
      std::pop_heap(heap.begin(), heap.end(), greater);
      size_t dup = heap.back();
      if (cur[dup].record().key != key) {
        std::push_heap(heap.begin(), heap.end(), greater);
        break;
      }
      heap.pop_back();
      s = step(dup);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

/// A REMIX-style cross-run sorted view: the space-for-read RUM trade that
/// makes an LSM range scan one segment lookup plus a sequential walk
/// instead of a per-run fence search.
///
/// The key space [global_min, global_max] is partitioned into fixed-width
/// segments (~`segment_entries` records each at layout time). A *built*
/// segment stores, for every run overlapping its span, the (page, slot)
/// cursor offset of the first record >= the segment's anchor key. A scan
/// (PositionCursors + the shared MergeCursorSources template) then
/// locates lo's segment with one charged binary search, opens one
/// cursor per run overlapping [lo, hi] (disjoint runs are skipped without
/// any I/O), positions each cursor O(1) from the stored offset plus a
/// short in-segment advance, and k-way merges forward -- no per-run fence
/// search, no fence-group slack pages, no hash map, no re-sort.
///
/// Segments are built lazily on first touch and invalidated incrementally:
/// when a compaction creates or retires a run, only the segments whose
/// span overlaps that run's [min_key, max_key] are invalidated (the
/// CompactionPolicy hooks OnRunCreated/OnRunRetiring), so a compaction
/// confined to one key region leaves the rest of the view intact. The
/// whole layout is recomputed only when the tree outgrows it (total
/// records drift 2x from layout time, or the key domain escapes the
/// anchor coverage).
///
/// Accounting: segment structs and stored offsets are charged as auxiliary
/// space (bought MO, visible in stats()); segment binary-search probes and
/// offset-table consults are charged as auxiliary reads, exactly like
/// fence-pointer probes. Cursor positioning and page walks charge through
/// SortedRun as usual.
///
/// Run recency is NOT stored in the index: the caller passes runs in
/// recency order (levels top-down, newest-first within a level -- Get's
/// probe order), and merge priority is the position in that vector. A
/// lazy-leveled relocation that moves a run between levels therefore needs
/// no invalidation: offsets are per-run and priority is derived per scan.
class CrossRunIndex {
 public:
  /// `counters` receives the space/read charges; `segment_entries` sets
  /// the target records per segment (the MO-for-RO dial).
  CrossRunIndex(RumCounters* counters, size_t segment_entries);
  /// Releases all charged auxiliary space.
  ~CrossRunIndex();

  CrossRunIndex(const CrossRunIndex&) = delete;
  CrossRunIndex& operator=(const CrossRunIndex&) = delete;

  /// Incremental maintenance: a run entered the level structure.
  /// Invalidates the segments overlapping [run->min_key, run->max_key].
  void OnRunCreated(const SortedRun* run);
  /// A run is about to be destroyed; its stored offsets must go.
  void OnRunRetiring(const SortedRun* run);

  /// Positions one cursor per run overlapping [lo, hi] (recency order
  /// preserved from `runs_newest_first`; see class comment), filling
  /// `out` ready for MergeCursorSources. Lazily (re)builds the layout and
  /// the one segment the scan starts in. The merge stays with the caller
  /// so its visitor inlines.
  Status PositionCursors(const std::vector<SortedRun*>& runs_newest_first,
                         Key lo, Key hi,
                         std::vector<SortedRun::Cursor>* out);

  /// Segments in the current layout (0 before any scan).
  size_t segment_count() const { return segments_.size(); }
  /// Auxiliary bytes currently charged for the segment table.
  uint64_t charged_bytes() const { return charged_bytes_; }
  /// Layout rebuilds since construction (first build included).
  uint64_t relayouts() const { return relayouts_; }

 private:
  struct Offset {
    SortedRun* run;
    uint32_t page;
    uint32_t slot;
  };
  struct Segment {
    bool built = false;
    std::vector<Offset> offsets;
  };

  /// Accounting weight of one segment struct / one stored offset.
  static constexpr uint64_t kSegmentBytes = sizeof(Segment);
  static constexpr uint64_t kOffsetBytes = sizeof(Offset);

  Key AnchorOf(size_t segment) const { return anchor_lo_ + step_ * segment; }
  /// Inclusive end of a segment's span.
  Key SpanEndOf(size_t segment) const {
    return segment + 1 < segments_.size() ? AnchorOf(segment + 1) - 1
                                          : kMaxKey;
  }

  /// Recomputes the segment layout when the run set has outgrown it;
  /// drops every built segment.
  void MaybeRelayout(uint64_t total_records, Key global_min, Key global_max);
  /// Segment index covering `key` (charged binary-search probes).
  size_t SegmentFor(Key key);
  /// Builds `segment` if needed: one offset per run overlapping its span.
  Status EnsureSegment(size_t segment,
                       const std::vector<SortedRun*>& all_runs);
  /// Marks segments overlapping [min_key, max_key] unbuilt.
  void InvalidateRange(Key min_key, Key max_key);
  /// Adjusts the charged auxiliary space to `bytes`.
  void SetCharge(uint64_t bytes);

  RumCounters* counters_;  // Not owned.
  size_t segment_entries_;

  // Layout state; segments_ is empty until the first scan lays out.
  std::vector<Segment> segments_;
  Key anchor_lo_ = 0;
  Key step_ = 1;  // Key-space width per segment; always >= 1.
  uint64_t layout_records_ = 0;
  uint64_t charged_bytes_ = 0;
  uint64_t relayouts_ = 0;
};

}  // namespace rum

#endif  // RUMLAB_METHODS_LSM_CROSS_RUN_INDEX_H_

#ifndef RUMLAB_METHODS_SKETCH_QUOTIENT_FILTER_H_
#define RUMLAB_METHODS_SKETCH_QUOTIENT_FILTER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/counters.h"
#include "core/types.h"

namespace rum {

/// A quotient filter (Bender et al.): the *updatable* probabilistic filter
/// the paper's Section 5 proposes for absorbing updates in approximate
/// indexes -- unlike a Bloom filter it supports deletes.
///
/// A key's fingerprint is split into a q-bit quotient (its canonical slot)
/// and an r-bit remainder stored in the slot array with the classic three
/// metadata bits (occupied / continuation / shifted); collisions shift
/// right in sorted runs, forming clusters.
///
/// Deletion is implemented by locally rebuilding the (small) cluster that
/// contains the fingerprint: decode its (quotient, remainder) pairs, drop
/// one, reinsert. Clusters are O(log n) slots with high probability, so
/// deletes stay local.
///
/// Accounting: the filter is auxiliary data; space is charged at the packed
/// size (r + 3 bits per slot; the in-memory layout is expanded for
/// clarity), and every slot probe charges one auxiliary byte.
class QuotientFilter {
 public:
  /// 2^quotient_bits slots, remainder_bits per slot. `counters` may be
  /// null.
  QuotientFilter(size_t quotient_bits, size_t remainder_bits,
                 RumCounters* counters);
  ~QuotientFilter();

  QuotientFilter(const QuotientFilter&) = delete;
  QuotientFilter& operator=(const QuotientFilter&) = delete;

  /// Adds a key's fingerprint. Fails (returns false) when the filter is at
  /// its load limit. Duplicate fingerprints are stored multiple times, so
  /// Insert/Delete pairs balance.
  bool Insert(Key key);

  /// True if the key *may* be present; false is definitive.
  bool MayContain(Key key) const;

  /// Removes one instance of the key's fingerprint; false if absent.
  bool Delete(Key key);

  size_t slot_count() const { return slots_.size(); }
  size_t element_count() const { return elements_; }
  double load_factor() const {
    return static_cast<double>(elements_) /
           static_cast<double>(slots_.size());
  }
  /// Packed size in bytes: slots x (remainder_bits + 3) bits.
  uint64_t space_bytes() const;

 private:
  struct Slot {
    uint64_t remainder = 0;
    bool occupied = false;      // Some element has this slot as canonical.
    bool continuation = false;  // This slot continues the previous run.
    bool shifted = false;       // This slot's element is not in its
                                // canonical slot.
    bool empty() const { return !occupied && !continuation && !shifted; }
    /// True when the slot stores an element (occupied alone does not imply
    /// data; empty() is the standard all-bits-zero test).
    bool holds_data() const { return occupied || continuation || shifted; }
  };

  void Fingerprint(Key key, size_t* quotient, uint64_t* remainder) const;
  size_t Next(size_t i) const { return (i + 1) & mask_; }
  size_t Prev(size_t i) const { return (i + slots_.size() - 1) & mask_; }

  /// Charges `n` slot probes (1 auxiliary byte each).
  void ChargeProbes(size_t n) const;

  /// Start slot of the run whose canonical slot is `quotient` (which must
  /// have its occupied bit set).
  size_t FindRunStart(size_t quotient) const;

  /// Inserts a decoded fingerprint; no accounting, no load-limit check.
  void InsertFingerprint(size_t quotient, uint64_t remainder);

  /// Decodes the whole cluster containing slot `member` into
  /// (quotient, remainder) pairs and clears its slots and occupied bits.
  std::vector<std::pair<size_t, uint64_t>> ExtractCluster(size_t member);

  size_t quotient_bits_;
  size_t remainder_bits_;
  size_t mask_;  // slot_count - 1.
  std::vector<Slot> slots_;
  size_t elements_ = 0;
  RumCounters* counters_;  // Not owned; may be null.
};

}  // namespace rum

#endif  // RUMLAB_METHODS_SKETCH_QUOTIENT_FILTER_H_

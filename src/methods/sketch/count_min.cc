#include "methods/sketch/count_min.h"

#include <algorithm>
#include <cassert>

#include "methods/sketch/bloom_filter.h"

namespace rum {

CountMinSketch::CountMinSketch(size_t width, size_t depth,
                               RumCounters* counters)
    : width_(width), depth_(depth), counters_(counters) {
  assert(width_ > 0 && depth_ > 0);
  table_.assign(width_ * depth_, 0);
  if (counters_ != nullptr) {
    counters_->AdjustSpace(DataClass::kAux,
                           static_cast<int64_t>(space_bytes()));
  }
}

CountMinSketch::~CountMinSketch() {
  if (counters_ != nullptr) {
    counters_->AdjustSpace(DataClass::kAux,
                           -static_cast<int64_t>(space_bytes()));
  }
}

size_t CountMinSketch::CellIndex(size_t row, Key key) const {
  // Row-salted hash.
  uint64_t h = MixHash(key ^ (0x9E3779B97F4A7C15ULL * (row + 1)));
  return row * width_ + static_cast<size_t>(h % width_);
}

void CountMinSketch::Add(Key key, uint64_t amount) {
  for (size_t row = 0; row < depth_; ++row) {
    table_[CellIndex(row, key)] += amount;
    if (counters_ != nullptr) {
      counters_->OnWrite(DataClass::kAux, sizeof(uint64_t));
    }
  }
}

uint64_t CountMinSketch::Estimate(Key key) const {
  uint64_t best = ~0ULL;
  for (size_t row = 0; row < depth_; ++row) {
    if (counters_ != nullptr) {
      counters_->OnRead(DataClass::kAux, sizeof(uint64_t));
    }
    best = std::min(best, table_[CellIndex(row, key)]);
  }
  return best;
}

}  // namespace rum

#include "methods/sketch/blocked_bloom.h"

#include <algorithm>

#include "methods/sketch/bloom_filter.h"

namespace rum {

BlockedBloomFilter::BlockedBloomFilter(size_t expected_keys,
                                       size_t bits_per_key,
                                       RumCounters* counters)
    : counters_(counters) {
  uint64_t total_bits =
      std::max<uint64_t>(kBlockBits, expected_keys * bits_per_key);
  size_t block_count =
      static_cast<size_t>((total_bits + kBlockBits - 1) / kBlockBits);
  blocks_.assign(block_count, Block{});
  double k = static_cast<double>(bits_per_key) * 0.6931471805599453;  // ln 2
  probes_ = std::max<size_t>(1, static_cast<size_t>(k + 0.5));
  if (counters_ != nullptr) {
    counters_->AdjustSpace(DataClass::kAux,
                           static_cast<int64_t>(space_bytes()));
  }
}

BlockedBloomFilter::~BlockedBloomFilter() {
  if (counters_ != nullptr) {
    counters_->AdjustSpace(DataClass::kAux,
                           -static_cast<int64_t>(space_bytes()));
  }
}

void BlockedBloomFilter::Add(Key key) {
  uint64_t h1 = MixHash(key);
  // Block choice uses the upper half of the hash; bit positions use the
  // lower half, so they are independent of which block was picked.
  Block& block = blocks_[BlockFor(h1 >> 32)];
  uint64_t h2 = MixHash(h1) | 1;
  uint64_t h = h1 & 0xFFFFFFFFu;
  for (size_t i = 0; i < probes_; ++i) {
    h += h2;
    size_t bit = static_cast<size_t>(h % kBlockBits);
    block.words[bit / 64] |= 1ULL << (bit % 64);
  }
  // One cache line written, regardless of k.
  if (counters_ != nullptr) {
    counters_->OnWrite(DataClass::kAux, kBlockBytes);
  }
}

bool BlockedBloomFilter::MayContain(Key key) const {
  uint64_t h1 = MixHash(key);
  const Block& block = blocks_[BlockFor(h1 >> 32)];
  // One cache line read, regardless of k.
  if (counters_ != nullptr) {
    counters_->OnRead(DataClass::kAux, kBlockBytes);
  }
  uint64_t h2 = MixHash(h1) | 1;
  uint64_t h = h1 & 0xFFFFFFFFu;
  for (size_t i = 0; i < probes_; ++i) {
    h += h2;
    size_t bit = static_cast<size_t>(h % kBlockBits);
    if ((block.words[bit / 64] & (1ULL << (bit % 64))) == 0) return false;
  }
  return true;
}

}  // namespace rum

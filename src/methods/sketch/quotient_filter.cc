#include "methods/sketch/quotient_filter.h"

#include <algorithm>
#include <cassert>

#include "methods/sketch/bloom_filter.h"

namespace rum {

QuotientFilter::QuotientFilter(size_t quotient_bits, size_t remainder_bits,
                               RumCounters* counters)
    : quotient_bits_(quotient_bits),
      remainder_bits_(remainder_bits),
      counters_(counters) {
  assert(quotient_bits_ >= 1 && quotient_bits_ <= 30);
  assert(remainder_bits_ >= 1 && remainder_bits_ <= 60);
  slots_.assign(static_cast<size_t>(1) << quotient_bits_, Slot{});
  mask_ = slots_.size() - 1;
  if (counters_ != nullptr) {
    counters_->AdjustSpace(DataClass::kAux,
                           static_cast<int64_t>(space_bytes()));
  }
}

QuotientFilter::~QuotientFilter() {
  if (counters_ != nullptr) {
    counters_->AdjustSpace(DataClass::kAux,
                           -static_cast<int64_t>(space_bytes()));
  }
}

uint64_t QuotientFilter::space_bytes() const {
  uint64_t bits =
      static_cast<uint64_t>(slots_.size()) * (remainder_bits_ + 3);
  return (bits + 7) / 8;
}

void QuotientFilter::ChargeProbes(size_t n) const {
  if (counters_ != nullptr) {
    counters_->OnRead(DataClass::kAux, n);
  }
}

void QuotientFilter::Fingerprint(Key key, size_t* quotient,
                                 uint64_t* remainder) const {
  uint64_t fp = MixHash(key);
  *quotient = static_cast<size_t>(fp & mask_);
  *remainder = (fp >> quotient_bits_) &
               ((remainder_bits_ >= 64)
                    ? ~0ULL
                    : ((static_cast<uint64_t>(1) << remainder_bits_) - 1));
}

size_t QuotientFilter::FindRunStart(size_t quotient) const {
  // Walk back to the cluster head...
  size_t b = quotient;
  size_t probes = 0;
  while (slots_[b].shifted) {
    b = Prev(b);
    ++probes;
  }
  // ...then walk runs forward until we reach `quotient`'s run.
  size_t s = b;
  while (b != quotient) {
    // Skip the current run.
    do {
      s = Next(s);
      ++probes;
    } while (slots_[s].continuation);
    // Advance b to the next canonical slot with an occupied bit.
    do {
      b = Next(b);
      ++probes;
    } while (!slots_[b].occupied);
  }
  ChargeProbes(probes + 1);
  return s;
}

bool QuotientFilter::MayContain(Key key) const {
  size_t quotient;
  uint64_t remainder;
  Fingerprint(key, &quotient, &remainder);
  ChargeProbes(1);
  if (!slots_[quotient].occupied) return false;
  size_t s = FindRunStart(quotient);
  do {
    ChargeProbes(1);
    if (slots_[s].remainder == remainder) return true;
    if (slots_[s].remainder > remainder) return false;  // Runs are sorted.
    s = Next(s);
  } while (slots_[s].continuation);
  return false;
}

void QuotientFilter::InsertFingerprint(size_t quotient, uint64_t remainder) {
  Slot& canonical = slots_[quotient];
  if (canonical.empty() && !canonical.occupied) {
    canonical.remainder = remainder;
    canonical.occupied = true;
    canonical.continuation = false;
    canonical.shifted = false;
    ++elements_;
    return;
  }

  bool run_exists = canonical.occupied;
  canonical.occupied = true;

  // Find the insertion position.
  size_t pos;
  bool insert_as_continuation;
  if (run_exists) {
    size_t s = FindRunStart(quotient);
    // Keep remainders within the run sorted.
    size_t run_pos = s;
    bool at_head = true;
    while (slots_[run_pos].holds_data() &&
           (run_pos == s || slots_[run_pos].continuation)) {
      if (slots_[run_pos].remainder >= remainder) break;
      run_pos = Next(run_pos);
      at_head = false;
      if (!slots_[run_pos].continuation) break;  // Passed the end of run.
    }
    if (at_head) {
      // New element becomes the run head; the old head becomes a
      // continuation. We insert at `s` carrying continuation=false and flip
      // the displaced old head's continuation bit as it shifts.
      pos = s;
      insert_as_continuation = false;
    } else {
      pos = run_pos;
      insert_as_continuation = true;
    }
  } else {
    // New run: it starts where the run *would* be -- right after the runs
    // of smaller quotients in the same cluster.
    if (canonical.empty()) {
      pos = quotient;
    } else {
      // The canonical slot holds another run's element; our run must queue
      // behind every run currently in the cluster up to this quotient.
      // Walk exactly like FindRunStart but for a quotient with no run yet:
      // find the first slot after the last run belonging to a quotient
      // less than ours.
      size_t b = quotient;
      while (slots_[b].shifted) b = Prev(b);
      size_t s = b;
      while (true) {
        // Advance b to the next occupied canonical slot at or before
        // `quotient`.
        if (b == quotient) break;
        do {
          s = Next(s);
        } while (slots_[s].continuation);
        do {
          b = Next(b);
        } while (!slots_[b].occupied && b != quotient);
        if (b == quotient) break;
      }
      // Skip the run of the last smaller quotient if s still points at one.
      // After the loop, s is the start of the first run at/after our
      // quotient's order; since our run does not exist yet, s is where it
      // must begin.
      pos = s;
    }
    insert_as_continuation = false;
  }

  // Shift right from `pos` until an empty slot, inserting our element.
  uint64_t carry_rem = remainder;
  bool carry_cont = insert_as_continuation;
  bool carry_shift = (pos != quotient) || run_exists || slots_[pos].holds_data()
                         ? (pos != quotient)
                         : false;
  // The inserted element is shifted iff it does not land in its canonical
  // slot.
  carry_shift = (pos != quotient);
  size_t cur = pos;
  bool displacing_run_head = run_exists && !insert_as_continuation;
  while (true) {
    Slot& slot = slots_[cur];
    if (!slot.holds_data()) {
      slot.remainder = carry_rem;
      slot.continuation = carry_cont;
      slot.shifted = carry_shift;
      break;
    }
    uint64_t next_rem = slot.remainder;
    bool next_cont = slot.continuation;
    slot.remainder = carry_rem;
    slot.continuation = carry_cont;
    slot.shifted = carry_shift;
    carry_rem = next_rem;
    carry_cont = next_cont;
    if (displacing_run_head) {
      // The old head of our run becomes a continuation.
      carry_cont = true;
      displacing_run_head = false;
    }
    carry_shift = true;  // Everything pushed right is no longer canonical.
    cur = Next(cur);
  }
  ++elements_;
}

bool QuotientFilter::Insert(Key key) {
  if (elements_ >= slots_.size() - (slots_.size() >> 4)) {
    return false;  // ~94% load limit.
  }
  size_t quotient;
  uint64_t remainder;
  Fingerprint(key, &quotient, &remainder);
  if (counters_ != nullptr) {
    // One probe of the canonical slot plus amortized shifting traffic.
    counters_->OnWrite(DataClass::kAux, 1);
  }
  InsertFingerprint(quotient, remainder);
  return true;
}

std::vector<std::pair<size_t, uint64_t>> QuotientFilter::ExtractCluster(
    size_t member) {
  // Find the cluster head.
  size_t c = member;
  while (slots_[c].shifted) c = Prev(c);

  // Collect quotients (occupied bits) and slots of the cluster in order.
  std::vector<std::pair<size_t, uint64_t>> pairs;
  std::vector<size_t> quotients;
  std::vector<size_t> members;
  size_t i = c;
  size_t scan = c;
  // The cluster is the contiguous chain of data-holding slots from c.
  while (slots_[scan].holds_data()) {
    members.push_back(scan);
    scan = Next(scan);
    if (scan == c) break;  // Entire table is one cluster.
  }
  // Occupied bits within [c, end of cluster] give the run quotients.
  for (size_t slot : members) {
    if (slots_[slot].occupied) quotients.push_back(slot);
  }
  size_t run_index = static_cast<size_t>(-1);
  for (size_t slot : members) {
    if (!slots_[slot].continuation) {
      ++run_index;
    }
    assert(run_index < quotients.size());
    pairs.emplace_back(quotients[run_index], slots_[slot].remainder);
  }
  (void)i;
  // Clear the cluster.
  for (size_t slot : members) {
    slots_[slot] = Slot{};
  }
  elements_ -= members.size();
  ChargeProbes(2 * members.size());
  return pairs;
}

bool QuotientFilter::Delete(Key key) {
  size_t quotient;
  uint64_t remainder;
  Fingerprint(key, &quotient, &remainder);
  if (!MayContain(key)) return false;

  std::vector<std::pair<size_t, uint64_t>> pairs = ExtractCluster(quotient);
  auto it = std::find(pairs.begin(), pairs.end(),
                      std::make_pair(quotient, remainder));
  assert(it != pairs.end());
  pairs.erase(it);
  for (const auto& [q, r] : pairs) {
    InsertFingerprint(q, r);
    if (counters_ != nullptr) counters_->OnWrite(DataClass::kAux, 1);
  }
  if (counters_ != nullptr) counters_->OnWrite(DataClass::kAux, 1);
  return true;
}

}  // namespace rum

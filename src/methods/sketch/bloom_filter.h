#ifndef RUMLAB_METHODS_SKETCH_BLOOM_FILTER_H_
#define RUMLAB_METHODS_SKETCH_BLOOM_FILTER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "core/counters.h"
#include "core/types.h"

namespace rum {

/// Filter-probe outcome tally shared across a method's filters (filters
/// come and go with compaction/rebuild; the tally must survive them).
/// `false_positives` is the marginal-benefit signal filter memory is
/// arbitrated on: each one is a page-read's worth of traffic more filter
/// bits would likely have avoided. Relaxed atomics: written on the owner's
/// operation thread, read by the memory arbiter from whatever thread trips
/// an epoch.
struct FilterStats {
  /// Probes the filter answered "definitely absent" (pages saved).
  std::atomic<uint64_t> negatives{0};
  /// Probes answered "maybe" where the key was present.
  std::atomic<uint64_t> true_positives{0};
  /// Probes answered "maybe" where the key was absent (pages wasted).
  std::atomic<uint64_t> false_positives{0};
};

/// A classic Bloom filter (Bloom, CACM 1970): the paper's canonical
/// space-optimized, lossy auxiliary structure (Figure 1, right corner).
///
/// k hash probes per operation via double hashing. Accounting: the bit
/// array is auxiliary space; each probe charges one auxiliary byte read (a
/// bit access rounds up to byte granularity), each insert charges k
/// auxiliary byte writes.
class BloomFilter {
 public:
  /// Sizes the filter for `expected_keys` at `bits_per_key`; picks the
  /// optimal probe count k = bits_per_key * ln 2 (at least 1).
  /// `counters` may be null (no accounting, e.g. inside unit math tests).
  BloomFilter(size_t expected_keys, size_t bits_per_key,
              RumCounters* counters);

  BloomFilter(BloomFilter&& other) noexcept;
  BloomFilter& operator=(BloomFilter&& other) noexcept;

  /// Releases the filter's auxiliary space from the counters.
  ~BloomFilter();

  /// Adds a key.
  void Add(Key key);

  /// True if the key *may* have been added; false is definitive.
  bool MayContain(Key key) const;

  /// Bytes of the bit array.
  uint64_t space_bytes() const { return bits_.size(); }
  size_t probes() const { return probes_; }
  uint64_t bit_count() const { return static_cast<uint64_t>(bits_.size()) * 8; }

  /// Fraction of set bits (diagnostics; the false-positive rate is roughly
  /// this to the k-th power).
  double fill_ratio() const;

 private:
  uint64_t BitIndex(uint64_t h1, uint64_t h2, size_t probe) const;

  std::vector<uint8_t> bits_;
  size_t probes_;
  RumCounters* counters_;  // Not owned; may be null.
};

/// Stable 64-bit mix used by every sketch in rumlab (splitmix64 finalizer).
uint64_t MixHash(uint64_t x);

}  // namespace rum

#endif  // RUMLAB_METHODS_SKETCH_BLOOM_FILTER_H_

#ifndef RUMLAB_METHODS_SKETCH_COUNT_MIN_H_
#define RUMLAB_METHODS_SKETCH_COUNT_MIN_H_

#include <cstdint>
#include <vector>

#include "core/counters.h"
#include "core/types.h"

namespace rum {

/// A Count-Min sketch (Cormode & Muthukrishnan 2005): the lossy hash-based
/// frequency summary the paper cites among space-optimized structures.
///
/// `depth` rows of `width` counters; Estimate() never under-counts. Each
/// operation touches one counter per row (charged as auxiliary traffic).
class CountMinSketch {
 public:
  /// `counters` may be null (no accounting).
  CountMinSketch(size_t width, size_t depth, RumCounters* counters);
  ~CountMinSketch();

  CountMinSketch(const CountMinSketch&) = delete;
  CountMinSketch& operator=(const CountMinSketch&) = delete;

  /// Adds `amount` occurrences of `key`.
  void Add(Key key, uint64_t amount = 1);

  /// Upper-bounded frequency estimate (>= true count).
  uint64_t Estimate(Key key) const;

  uint64_t space_bytes() const {
    return static_cast<uint64_t>(table_.size()) * sizeof(uint64_t);
  }
  size_t width() const { return width_; }
  size_t depth() const { return depth_; }

 private:
  size_t CellIndex(size_t row, Key key) const;

  size_t width_;
  size_t depth_;
  std::vector<uint64_t> table_;  // Row-major depth x width.
  RumCounters* counters_;        // Not owned; may be null.
};

}  // namespace rum

#endif  // RUMLAB_METHODS_SKETCH_COUNT_MIN_H_

#ifndef RUMLAB_METHODS_SKETCH_BLOCKED_BLOOM_H_
#define RUMLAB_METHODS_SKETCH_BLOCKED_BLOOM_H_

#include <cstdint>
#include <vector>

#include "core/counters.h"
#include "core/types.h"

namespace rum {

/// A blocked (register/cache-line) Bloom filter: all k probes of a key land
/// in one 64-byte block chosen by hash.
///
/// This is the paper's Section-4 cache-awareness point applied to a filter:
/// the classic Bloom filter's k probes are k random memory accesses; the
/// blocked variant touches exactly one cache line per operation, trading a
/// slightly higher false-positive rate (bits cluster, so blocks saturate
/// unevenly) for a constant-access-granularity structure. In rumlab
/// accounting: one 64-byte auxiliary read per query instead of k scattered
/// byte reads.
class BlockedBloomFilter {
 public:
  /// Sizes for `expected_keys` at `bits_per_key`; `counters` may be null.
  BlockedBloomFilter(size_t expected_keys, size_t bits_per_key,
                     RumCounters* counters);
  ~BlockedBloomFilter();

  BlockedBloomFilter(const BlockedBloomFilter&) = delete;
  BlockedBloomFilter& operator=(const BlockedBloomFilter&) = delete;

  void Add(Key key);
  /// True if the key may have been added; false is definitive.
  bool MayContain(Key key) const;

  uint64_t space_bytes() const {
    return static_cast<uint64_t>(blocks_.size()) * kBlockBytes;
  }
  size_t probes() const { return probes_; }
  size_t block_count() const { return blocks_.size(); }

  static constexpr size_t kBlockBytes = 64;
  static constexpr size_t kBlockBits = kBlockBytes * 8;

 private:
  struct alignas(64) Block {
    uint64_t words[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  };

  size_t BlockFor(uint64_t h) const { return h % blocks_.size(); }

  std::vector<Block> blocks_;
  size_t probes_;
  RumCounters* counters_;  // Not owned; may be null.
};

}  // namespace rum

#endif  // RUMLAB_METHODS_SKETCH_BLOCKED_BLOOM_H_

#include "methods/sketch/bloom_filter.h"

#include <algorithm>
#include <cmath>

namespace rum {

uint64_t MixHash(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

BloomFilter::BloomFilter(size_t expected_keys, size_t bits_per_key,
                         RumCounters* counters)
    : counters_(counters) {
  size_t total_bits = std::max<size_t>(64, expected_keys * bits_per_key);
  bits_.assign((total_bits + 7) / 8, 0);
  double k = static_cast<double>(bits_per_key) * 0.6931471805599453;  // ln 2
  probes_ = std::max<size_t>(1, static_cast<size_t>(k + 0.5));
  if (counters_ != nullptr) {
    counters_->AdjustSpace(DataClass::kAux,
                           static_cast<int64_t>(bits_.size()));
  }
}

BloomFilter::BloomFilter(BloomFilter&& other) noexcept
    : bits_(std::move(other.bits_)),
      probes_(other.probes_),
      counters_(other.counters_) {
  other.bits_.clear();
  other.counters_ = nullptr;
}

BloomFilter& BloomFilter::operator=(BloomFilter&& other) noexcept {
  if (this == &other) return *this;
  if (counters_ != nullptr) {
    counters_->AdjustSpace(DataClass::kAux,
                           -static_cast<int64_t>(bits_.size()));
  }
  bits_ = std::move(other.bits_);
  probes_ = other.probes_;
  counters_ = other.counters_;
  other.bits_.clear();
  other.counters_ = nullptr;
  return *this;
}

BloomFilter::~BloomFilter() {
  if (counters_ != nullptr) {
    counters_->AdjustSpace(DataClass::kAux,
                           -static_cast<int64_t>(bits_.size()));
  }
}

uint64_t BloomFilter::BitIndex(uint64_t h1, uint64_t h2, size_t probe) const {
  return (h1 + probe * h2) % bit_count();
}

void BloomFilter::Add(Key key) {
  uint64_t h1 = MixHash(key);
  uint64_t h2 = MixHash(h1) | 1;  // Odd, so probes cycle the whole range.
  for (size_t i = 0; i < probes_; ++i) {
    uint64_t bit = BitIndex(h1, h2, i);
    bits_[bit / 8] |= static_cast<uint8_t>(1u << (bit % 8));
    if (counters_ != nullptr) counters_->OnWrite(DataClass::kAux, 1);
  }
}

bool BloomFilter::MayContain(Key key) const {
  uint64_t h1 = MixHash(key);
  uint64_t h2 = MixHash(h1) | 1;
  for (size_t i = 0; i < probes_; ++i) {
    uint64_t bit = BitIndex(h1, h2, i);
    if (counters_ != nullptr) counters_->OnRead(DataClass::kAux, 1);
    if ((bits_[bit / 8] & (1u << (bit % 8))) == 0) return false;
  }
  return true;
}

double BloomFilter::fill_ratio() const {
  uint64_t set = 0;
  for (uint8_t byte : bits_) {
    set += static_cast<uint64_t>(__builtin_popcount(byte));
  }
  return bit_count() == 0
             ? 0.0
             : static_cast<double>(set) / static_cast<double>(bit_count());
}

}  // namespace rum

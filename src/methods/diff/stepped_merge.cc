#include "methods/diff/stepped_merge.h"

#include <algorithm>
#include <unordered_map>

#include "methods/lsm/lsm_tree.h"

namespace rum {

SteppedMergeTree::SteppedMergeTree(const Options& options)
    : options_(options),
      owned_device_(
          std::make_unique<BlockDevice>(options.block_size, &counters())),
      device_(owned_device_.get()) {}

SteppedMergeTree::SteppedMergeTree(const Options& options, Device* device)
    : options_(options), device_(device) {}

SteppedMergeTree::~SteppedMergeTree() = default;

size_t SteppedMergeTree::total_runs() const {
  size_t n = 0;
  for (const auto& level : levels_) n += level.size();
  return n;
}

bool SteppedMergeTree::IsLastPopulated(size_t level) const {
  for (size_t i = level + 1; i < levels_.size(); ++i) {
    if (!levels_[i].empty()) return false;
  }
  return true;
}

Status SteppedMergeTree::Put(Key key, Value value, bool tombstone) {
  counters().OnLogicalWrite(kEntrySize);
  buffer_.push_back(
      LogRecord{key, value, tombstone ? LogOp::kDelete : LogOp::kPut});
  counters().OnWrite(DataClass::kAux, LogRecord::kWireSize);
  counters().AdjustSpace(DataClass::kAux, LogRecord::kWireSize);
  if (tombstone) {
    live_keys_.erase(key);
  } else {
    live_keys_.insert(key);
  }
  if (buffer_.size() >= options_.stepped.buffer_entries) {
    return SealBuffer();
  }
  return Status::OK();
}

Status SteppedMergeTree::Insert(Key key, Value value) {
  counters().OnInsert();
  return Put(key, value, /*tombstone=*/false);
}

Status SteppedMergeTree::Delete(Key key) {
  counters().OnDelete();
  return Put(key, 0, /*tombstone=*/true);
}

Status SteppedMergeTree::SealBuffer() {
  if (buffer_.empty()) return Status::OK();
  // Sort the buffer, newest occurrence of a key winning.
  std::stable_sort(buffer_.begin(), buffer_.end(),
                   [](const LogRecord& a, const LogRecord& b) {
                     return a.key < b.key;
                   });
  std::vector<LogRecord> records;
  records.reserve(buffer_.size());
  for (size_t i = 0; i < buffer_.size(); ++i) {
    // Stable sort keeps the newest version last within equal keys.
    if (i + 1 < buffer_.size() && buffer_[i + 1].key == buffer_[i].key) {
      continue;
    }
    records.push_back(buffer_[i]);
  }
  counters().AdjustSpace(
      DataClass::kAux,
      -static_cast<int64_t>(buffer_.size() * LogRecord::kWireSize));
  buffer_.clear();

  if (levels_.empty()) levels_.resize(1);
  if (IsLastPopulated(0) && levels_[0].empty()) {
    records.erase(std::remove_if(records.begin(), records.end(),
                                 [](const LogRecord& r) {
                                   return r.op == LogOp::kDelete;
                                 }),
                  records.end());
  }
  if (!records.empty()) {
    std::unique_ptr<SortedRun> run;
    Status s = SortedRun::Build(device_, &counters(), records,
                                /*bloom_bits_per_key=*/0, &run,
                                /*fence_entries=*/0, /*compress=*/false,
                                options_.storage.pinned_pages);
    if (!s.ok()) return s;
    levels_[0].push_back(std::move(run));
  }

  // Cascade full levels.
  for (size_t level = 0; level < levels_.size(); ++level) {
    if (levels_[level].size() < options_.stepped.runs_per_level) continue;
    std::vector<SortedRun*> inputs;
    for (size_t i = levels_[level].size(); i-- > 0;) {
      inputs.push_back(levels_[level][i].get());
    }
    std::vector<LogRecord> merged =
        LsmTree::MergeRuns(inputs, IsLastPopulated(level));
    for (auto& run : levels_[level]) {
      Status d = run->Destroy();
      if (!d.ok()) return d;
    }
    levels_[level].clear();
    if (levels_.size() <= level + 1) levels_.resize(level + 2);
    if (!merged.empty()) {
      std::unique_ptr<SortedRun> run;
      Status s = SortedRun::Build(device_, &counters(), merged,
                                  /*bloom_bits_per_key=*/0, &run,
                                  /*fence_entries=*/0, /*compress=*/false,
                                  options_.storage.pinned_pages);
      if (!s.ok()) return s;
      levels_[level + 1].push_back(std::move(run));
    }
  }
  return Status::OK();
}

Result<Value> SteppedMergeTree::Get(Key key) {
  counters().OnPointQuery();
  // Buffer first, newest wins, scanned backwards.
  counters().OnRead(DataClass::kAux,
                    static_cast<uint64_t>(buffer_.size()) *
                        LogRecord::kWireSize);
  for (size_t i = buffer_.size(); i-- > 0;) {
    if (buffer_[i].key == key) {
      if (buffer_[i].op == LogOp::kDelete) return Status::NotFound();
      counters().OnLogicalRead(kEntrySize);
      return buffer_[i].value;
    }
  }
  for (const auto& level : levels_) {
    for (size_t i = level.size(); i-- > 0;) {
      Result<std::optional<LogRecord>> hit = level[i]->Get(key);
      if (!hit.ok()) return hit.status();
      if (hit.value().has_value()) {
        if (hit.value()->op == LogOp::kDelete) return Status::NotFound();
        counters().OnLogicalRead(kEntrySize);
        return hit.value()->value;
      }
    }
  }
  return Status::NotFound();
}

Status SteppedMergeTree::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  counters().OnRangeQuery();
  std::unordered_map<Key, std::pair<Value, bool>> newest;
  counters().OnRead(DataClass::kAux,
                    static_cast<uint64_t>(buffer_.size()) *
                        LogRecord::kWireSize);
  for (size_t i = buffer_.size(); i-- > 0;) {
    const LogRecord& r = buffer_[i];
    if (r.key < lo || r.key > hi) continue;
    newest.emplace(r.key, std::make_pair(r.value, r.op == LogOp::kDelete));
  }
  for (const auto& level : levels_) {
    for (size_t i = level.size(); i-- > 0;) {
      Status s = level[i]->VisitRange(lo, hi, [&](const LogRecord& r) {
        newest.emplace(r.key,
                       std::make_pair(r.value, r.op == LogOp::kDelete));
      });
      if (!s.ok()) return s;
    }
  }
  std::vector<Entry> hits;
  for (const auto& [k, vt] : newest) {
    if (!vt.second) hits.push_back(Entry{k, vt.first});
  }
  std::sort(hits.begin(), hits.end());
  counters().OnLogicalRead(static_cast<uint64_t>(hits.size()) * kEntrySize);
  out->insert(out->end(), hits.begin(), hits.end());
  return Status::OK();
}

Status SteppedMergeTree::BulkLoad(std::span<const Entry> entries) {
  Status s = CheckBulkLoadPreconditions(entries);
  if (!s.ok()) return s;
  if (entries.empty()) return Status::OK();
  std::vector<LogRecord> records;
  records.reserve(entries.size());
  for (const Entry& e : entries) {
    records.push_back(LogRecord{e.key, e.value, LogOp::kPut});
    live_keys_.insert(e.key);
  }
  // One run at the deepest level the size warrants.
  uint64_t per_level = options_.stepped.buffer_entries;
  size_t level = 0;
  while (per_level * options_.stepped.runs_per_level < records.size()) {
    per_level *= options_.stepped.runs_per_level;
    ++level;
  }
  if (levels_.size() <= level) levels_.resize(level + 1);
  std::unique_ptr<SortedRun> run;
  s = SortedRun::Build(device_, &counters(), records,
                       /*bloom_bits_per_key=*/0, &run,
                       /*fence_entries=*/0, /*compress=*/false,
                       options_.storage.pinned_pages);
  if (!s.ok()) return s;
  levels_[level].push_back(std::move(run));
  counters().OnLogicalWrite(static_cast<uint64_t>(entries.size()) *
                            kEntrySize);
  return Status::OK();
}

Status SteppedMergeTree::Flush() { return SealBuffer(); }

CounterSnapshot SteppedMergeTree::stats() const {
  CounterSnapshot snap = AccessMethod::stats();
  uint64_t total = snap.total_space();
  uint64_t base =
      std::min(static_cast<uint64_t>(live_keys_.size()) * kEntrySize, total);
  snap.space_base = base;
  snap.space_aux = total - base;
  return snap;
}

}  // namespace rum

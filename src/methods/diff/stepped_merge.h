#ifndef RUMLAB_METHODS_DIFF_STEPPED_MERGE_H_
#define RUMLAB_METHODS_DIFF_STEPPED_MERGE_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "core/access_method.h"
#include "core/options.h"
#include "methods/lsm/sorted_run.h"
#include "storage/block_device.h"

namespace rum {

/// A stepped-merge tree (Jagadish et al., VLDB 1997) -- the differential,
/// write-optimized family of the paper's Figure 1 left corner that also
/// covers the Partitioned B-tree and MaSM: updates accumulate in an
/// unsorted in-memory buffer, seal into sorted runs, and each level holds
/// up to `stepped.runs_per_level` runs before they merge one level down.
///
/// Unlike the LSM variant it carries no Bloom filters: a point query probes
/// *every* run (fence search + one page), which is precisely the read
/// price the paper assigns to consolidating updates lazily. Removing the
/// filters isolates that effect (compare with LsmTree in the benches).
class SteppedMergeTree : public AccessMethod {
 public:
  explicit SteppedMergeTree(const Options& options);
  SteppedMergeTree(const Options& options, Device* device);

  ~SteppedMergeTree() override;

  std::string_view name() const override { return "stepped-merge"; }

  Status Insert(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  Status BulkLoad(std::span<const Entry> entries) override;
  Status Flush() override;
  size_t size() const override { return live_keys_.size(); }

  CounterSnapshot stats() const override;

  size_t level_count() const { return levels_.size(); }
  size_t runs_at(size_t level) const { return levels_[level].size(); }
  size_t total_runs() const;

 private:
  Status Put(Key key, Value value, bool tombstone);
  /// Seals the buffer into a level-0 run, cascading full levels.
  Status SealBuffer();
  bool IsLastPopulated(size_t level) const;

  Options options_;
  std::unique_ptr<BlockDevice> owned_device_;
  Device* device_;

  std::vector<LogRecord> buffer_;  // Unsorted, newest last.
  std::vector<std::vector<std::unique_ptr<SortedRun>>> levels_;
  std::unordered_set<Key> live_keys_;  // Simulator-side bookkeeping.
};

}  // namespace rum

#endif  // RUMLAB_METHODS_DIFF_STEPPED_MERGE_H_

#ifndef RUMLAB_METHODS_FACTORY_H_
#define RUMLAB_METHODS_FACTORY_H_

#include <memory>
#include <string_view>
#include <vector>

#include "core/access_method.h"
#include "core/options.h"

namespace rum {

class Device;

/// Creates an access method by name. Known names:
///   "btree", "hash", "zonemap", "lsm-leveled", "lsm-tiered",
///   "sorted-column", "unsorted-column", "skiplist", "trie",
///   "bitmap", "bitmap-delta", "cracking", "stepped-merge",
///   "bloom-zones", "absorbed-btree", "absorbed-bitmap" (UpdateAbsorber
///   wrappers), "magic-array", "pure-log", "dense-array".
/// Any name may be prefixed with "sharded-" (e.g. "sharded-btree") to wrap
/// `options.sharded.shards` instances of the inner method in a ShardedMethod
/// (hash partitioning, per-shard locking, merged stats); nesting is
/// rejected.
/// Returns null for an unknown name. ("bitmap"/"bitmap-delta" and the LSM
/// names override the corresponding Options fields; every LSM variant
/// honors `options.lsm.cross_run_index` / `cross_run_segment_entries` for
/// the one-seek range-scan view.)
std::unique_ptr<AccessMethod> MakeAccessMethod(std::string_view name,
                                               const Options& options);

/// Same, but device-backed methods store their pages on `device` (borrowed,
/// must outlive the method) instead of a private BlockDevice. This is how
/// fault-injection and cache stacks reach every method: build the stack
/// (BlockDevice -> FaultyDevice -> CachingDevice), then hand it here.
/// In-memory methods (skiplist, trie, cracking, pure-log, ...) ignore the
/// device. A "sharded-" wrapper shares the one device across all inner
/// shards, relying on the stack's internal serialization.
std::unique_ptr<AccessMethod> MakeAccessMethod(std::string_view name,
                                               const Options& options,
                                               Device* device);

/// Every name MakeAccessMethod accepts, in display order.
std::vector<std::string_view> AllAccessMethodNames();

}  // namespace rum

#endif  // RUMLAB_METHODS_FACTORY_H_

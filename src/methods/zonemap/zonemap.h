#ifndef RUMLAB_METHODS_ZONEMAP_ZONEMAP_H_
#define RUMLAB_METHODS_ZONEMAP_ZONEMAP_H_

#include <memory>
#include <vector>

#include "core/access_method.h"
#include "core/options.h"
#include "storage/block_device.h"

namespace rum {

/// ZoneMaps (a.k.a. Small Materialized Aggregates): the sparse,
/// space-optimized index of the paper's Table 1 and the "space optimized"
/// corner of Figure 1.
///
/// Base data is clustered into zones of at most `zonemap.zone_entries`
/// entries; zones partition the key space, but entries *within* a zone are
/// unsorted. The only auxiliary data is one tiny descriptor per zone
/// (lower bound, min, max, count) -- index size O(N/P) descriptors, the
/// smallest of any method in Table 1.
///
/// Every operation first scans the descriptor array (charged as auxiliary
/// byte reads), then touches only the qualifying zone's blocks:
/// O(N/P/B + P/B) block reads per point query, in contrast to the paper's
/// best case O(N/P/B) when a single partition is read.
class ZoneMapColumn : public AccessMethod {
 public:
  explicit ZoneMapColumn(const Options& options);
  ZoneMapColumn(const Options& options, Device* device);

  ~ZoneMapColumn() override;

  std::string_view name() const override { return "zonemap"; }

  Status Insert(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  Status BulkLoad(std::span<const Entry> entries) override;
  size_t size() const override { return count_; }

  size_t zone_count() const { return zones_.size(); }

 private:
  struct Zone {
    Key lo = kMinKey;   ///< Inclusive lower bound of the zone's key range.
    Key min = kMinKey;  ///< Smallest key present (meaningless if count==0).
    Key max = kMinKey;  ///< Largest key actually present.
    uint64_t count = 0;
    std::vector<PageId> pages;
  };

  /// Bytes of one persisted zone descriptor (lo, min, max, count).
  static constexpr uint64_t kDescriptorSize = 4 * sizeof(uint64_t);

  /// Charges a full descriptor-array read and returns the index of the zone
  /// whose range contains `key`.
  size_t FindZoneCharged(Key key);
  /// Charges one descriptor write and refreshes aux space.
  void TouchDescriptor();

  Status LoadZonePage(const Zone& zone, size_t page_index,
                      std::vector<Entry>* out);
  Status StoreZonePage(Zone* zone, size_t page_index,
                       const std::vector<Entry>& entries);
  /// Reads a whole zone into memory (charged).
  Status LoadZone(const Zone& zone, std::vector<Entry>* out);
  /// Rewrites a whole zone from memory (charged), freeing surplus pages.
  Status StoreZone(Zone* zone, std::vector<Entry>& entries);
  /// Splits `zone_index` at the median into two zones.
  Status SplitZone(size_t zone_index);

  void RecountAuxSpace();

  std::unique_ptr<BlockDevice> owned_device_;
  Device* device_;
  bool pinned_pages_;
  size_t page_capacity_;
  size_t zone_capacity_;
  std::vector<Zone> zones_;
  size_t count_ = 0;
};

}  // namespace rum

#endif  // RUMLAB_METHODS_ZONEMAP_ZONEMAP_H_

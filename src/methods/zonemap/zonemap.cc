#include "methods/zonemap/zonemap.h"

#include <algorithm>
#include <cassert>

#include "storage/page_format.h"

namespace rum {

ZoneMapColumn::ZoneMapColumn(const Options& options)
    : owned_device_(
          std::make_unique<BlockDevice>(options.block_size, &counters())),
      device_(owned_device_.get()),
      pinned_pages_(options.storage.pinned_pages),
      page_capacity_(PageFormat::CapacityFor(options.block_size)),
      zone_capacity_(options.zonemap.zone_entries) {
  zones_.push_back(Zone{kMinKey, kMaxKey, kMinKey, 0, {}});
  RecountAuxSpace();
}

ZoneMapColumn::ZoneMapColumn(const Options& options, Device* device)
    : device_(device),
      pinned_pages_(options.storage.pinned_pages),
      page_capacity_(PageFormat::CapacityFor(device->block_size())),
      zone_capacity_(options.zonemap.zone_entries) {
  zones_.push_back(Zone{kMinKey, kMaxKey, kMinKey, 0, {}});
  RecountAuxSpace();
}

ZoneMapColumn::~ZoneMapColumn() = default;

void ZoneMapColumn::RecountAuxSpace() {
  counters().SetSpace(DataClass::kAux,
                      static_cast<uint64_t>(zones_.size()) * kDescriptorSize);
}

size_t ZoneMapColumn::FindZoneCharged(Key key) {
  // The sparse index is scanned in full: it is small, and that is the point.
  counters().OnRead(DataClass::kAux,
                    static_cast<uint64_t>(zones_.size()) * kDescriptorSize);
  // Zones are ordered by `lo`; the key belongs to the last zone whose lower
  // bound does not exceed it.
  size_t idx = 0;
  for (size_t i = 0; i < zones_.size(); ++i) {
    if (zones_[i].lo <= key) idx = i;
  }
  return idx;
}

void ZoneMapColumn::TouchDescriptor() {
  counters().OnWrite(DataClass::kAux, kDescriptorSize);
  RecountAuxSpace();
}

Status ZoneMapColumn::LoadZonePage(const Zone& zone, size_t page_index,
                                   std::vector<Entry>* out) {
  assert(page_index < zone.pages.size());
  if (pinned_pages_) {
    PageReadGuard guard;
    Status s = device_->PinForRead(zone.pages[page_index], &guard);
    if (!s.ok()) return s;
    return PageFormat::Unpack(guard.bytes(), out);
  }
  std::vector<uint8_t> block;
  Status s = device_->Read(zone.pages[page_index], &block);
  if (!s.ok()) return s;
  return PageFormat::Unpack(block, out);
}

Status ZoneMapColumn::StoreZonePage(Zone* zone, size_t page_index,
                                    const std::vector<Entry>& entries) {
  assert(page_index < zone->pages.size());
  if (pinned_pages_) {
    PageWriteGuard guard;
    Status s = device_->PinForWrite(zone->pages[page_index], &guard);
    if (!s.ok()) return s;
    s = PageFormat::PackInto(entries, guard.bytes());
    if (!s.ok()) return s;
    guard.MarkDirty();
    return guard.Release();
  }
  std::vector<uint8_t> block;
  Status s = PageFormat::Pack(entries, device_->block_size(), &block);
  if (!s.ok()) return s;
  return device_->Write(zone->pages[page_index], block);
}

Status ZoneMapColumn::LoadZone(const Zone& zone, std::vector<Entry>* out) {
  out->clear();
  std::vector<Entry> page;
  for (size_t p = 0; p < zone.pages.size(); ++p) {
    Status s = LoadZonePage(zone, p, &page);
    if (!s.ok()) return s;
    out->insert(out->end(), page.begin(), page.end());
  }
  return Status::OK();
}

Status ZoneMapColumn::StoreZone(Zone* zone, std::vector<Entry>& entries) {
  size_t pages_needed = (entries.size() + page_capacity_ - 1) / page_capacity_;
  while (zone->pages.size() > pages_needed) {
    Status s = device_->Free(zone->pages.back());
    if (!s.ok()) return s;
    zone->pages.pop_back();
  }
  while (zone->pages.size() < pages_needed) {
    PageId page;
    Status s = device_->Allocate(DataClass::kBase, &page);
    if (!s.ok()) return s;
    zone->pages.push_back(page);
  }
  std::vector<Entry> page;
  for (size_t p = 0; p < pages_needed; ++p) {
    size_t begin = p * page_capacity_;
    size_t end = std::min(begin + page_capacity_, entries.size());
    page.assign(entries.begin() + static_cast<ptrdiff_t>(begin),
                entries.begin() + static_cast<ptrdiff_t>(end));
    Status s = StoreZonePage(zone, p, page);
    if (!s.ok()) return s;
  }
  zone->count = entries.size();
  if (!entries.empty()) {
    auto [mn, mx] = std::minmax_element(
        entries.begin(), entries.end(),
        [](const Entry& a, const Entry& b) { return a.key < b.key; });
    zone->min = mn->key;
    zone->max = mx->key;
  }
  return Status::OK();
}

Status ZoneMapColumn::SplitZone(size_t zone_index) {
  Zone& zone = zones_[zone_index];
  std::vector<Entry> entries;
  Status s = LoadZone(zone, &entries);
  if (!s.ok()) return s;
  std::sort(entries.begin(), entries.end());
  size_t half = entries.size() / 2;
  std::vector<Entry> left(entries.begin(),
                          entries.begin() + static_cast<ptrdiff_t>(half));
  std::vector<Entry> right(entries.begin() + static_cast<ptrdiff_t>(half),
                           entries.end());
  Zone new_zone;
  new_zone.lo = right.front().key;
  s = StoreZone(&zones_[zone_index], left);
  if (!s.ok()) return s;
  zones_.insert(zones_.begin() + static_cast<ptrdiff_t>(zone_index) + 1,
                std::move(new_zone));
  s = StoreZone(&zones_[zone_index + 1], right);
  if (!s.ok()) return s;
  TouchDescriptor();
  TouchDescriptor();
  return Status::OK();
}

Status ZoneMapColumn::Insert(Key key, Value value) {
  counters().OnInsert();
  counters().OnLogicalWrite(kEntrySize);
  size_t zi = FindZoneCharged(key);
  Zone& zone = zones_[zi];

  // Upsert: if the zone may contain the key, look for it first.
  if (zone.count > 0 && key >= zone.min && key <= zone.max) {
    std::vector<Entry> page;
    for (size_t p = 0; p < zone.pages.size(); ++p) {
      Status s = LoadZonePage(zone, p, &page);
      if (!s.ok()) return s;
      for (size_t i = 0; i < page.size(); ++i) {
        if (page[i].key == key) {
          page[i].value = value;
          return StoreZonePage(&zone, p, page);
        }
      }
    }
  }

  // Append into the zone's last page.
  std::vector<Entry> page;
  if (zone.pages.empty() ||
      zone.count % page_capacity_ == 0) {
    PageId tail;
    Status alloc = device_->Allocate(DataClass::kBase, &tail);
    if (!alloc.ok()) return alloc;
    zone.pages.push_back(tail);
    page.clear();
  } else {
    Status s = LoadZonePage(zone, zone.pages.size() - 1, &page);
    if (!s.ok()) return s;
  }
  page.push_back(Entry{key, value});
  Status s = StoreZonePage(&zone, zone.pages.size() - 1, page);
  if (!s.ok()) return s;
  if (zone.count == 0) {
    zone.min = key;
    zone.max = key;
  } else {
    zone.min = std::min(zone.min, key);
    zone.max = std::max(zone.max, key);
  }
  ++zone.count;
  ++count_;
  TouchDescriptor();

  if (zone.count >= zone_capacity_) {
    return SplitZone(zi);
  }
  return Status::OK();
}

Status ZoneMapColumn::Delete(Key key) {
  counters().OnDelete();
  counters().OnLogicalWrite(kEntrySize);
  size_t zi = FindZoneCharged(key);
  Zone& zone = zones_[zi];
  if (zone.count == 0 || key < zone.min || key > zone.max) {
    return Status::OK();  // Min/max pruning: nothing to do.
  }
  std::vector<Entry> entries;
  Status s = LoadZone(zone, &entries);
  if (!s.ok()) return s;
  auto it = std::find_if(entries.begin(), entries.end(),
                         [key](const Entry& e) { return e.key == key; });
  if (it == entries.end()) return Status::OK();
  *it = entries.back();
  entries.pop_back();
  s = StoreZone(&zone, entries);
  if (!s.ok()) return s;
  --count_;
  TouchDescriptor();
  return Status::OK();
}

Result<Value> ZoneMapColumn::Get(Key key) {
  counters().OnPointQuery();
  size_t zi = FindZoneCharged(key);
  Zone& zone = zones_[zi];
  if (zone.count == 0 || key < zone.min || key > zone.max) {
    return Status::NotFound();
  }
  if (pinned_pages_) {
    // Scan each pinned page in place: no entry materialization.
    for (size_t p = 0; p < zone.pages.size(); ++p) {
      PageReadGuard guard;
      Status s = device_->PinForRead(zone.pages[p], &guard);
      if (!s.ok()) return s;
      size_t n = PageFormat::PeekCount(guard.bytes());
      for (size_t i = 0; i < n; ++i) {
        Entry e = PageFormat::EntryAt(guard.bytes(), i);
        if (e.key == key) {
          counters().OnLogicalRead(kEntrySize);
          return e.value;
        }
      }
    }
    return Status::NotFound();
  }
  std::vector<Entry> page;
  for (size_t p = 0; p < zone.pages.size(); ++p) {
    Status s = LoadZonePage(zone, p, &page);
    if (!s.ok()) return s;
    for (const Entry& e : page) {
      if (e.key == key) {
        counters().OnLogicalRead(kEntrySize);
        return e.value;
      }
    }
  }
  return Status::NotFound();
}

Status ZoneMapColumn::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  counters().OnRangeQuery();
  counters().OnRead(DataClass::kAux,
                    static_cast<uint64_t>(zones_.size()) * kDescriptorSize);
  std::vector<Entry> hits;
  std::vector<Entry> page;
  for (Zone& zone : zones_) {
    if (zone.count == 0 || zone.max < lo || zone.min > hi) continue;
    for (size_t p = 0; p < zone.pages.size(); ++p) {
      Status s = LoadZonePage(zone, p, &page);
      if (!s.ok()) return s;
      for (const Entry& e : page) {
        if (e.key >= lo && e.key <= hi) hits.push_back(e);
      }
    }
  }
  std::sort(hits.begin(), hits.end());
  counters().OnLogicalRead(static_cast<uint64_t>(hits.size()) * kEntrySize);
  out->insert(out->end(), hits.begin(), hits.end());
  return Status::OK();
}

Status ZoneMapColumn::BulkLoad(std::span<const Entry> entries) {
  Status s = CheckBulkLoadPreconditions(entries);
  if (!s.ok()) return s;
  zones_.clear();
  size_t i = 0;
  while (i < entries.size()) {
    size_t end = std::min(i + zone_capacity_, entries.size());
    Zone zone;
    zone.lo = zones_.empty() ? kMinKey : entries[i].key;
    std::vector<Entry> chunk(entries.begin() + static_cast<ptrdiff_t>(i),
                             entries.begin() + static_cast<ptrdiff_t>(end));
    zones_.push_back(std::move(zone));
    s = StoreZone(&zones_.back(), chunk);
    if (!s.ok()) return s;
    counters().OnWrite(DataClass::kAux, kDescriptorSize);
    i = end;
  }
  if (zones_.empty()) {
    zones_.push_back(Zone{kMinKey, kMaxKey, kMinKey, 0, {}});
  }
  count_ = entries.size();
  counters().OnLogicalWrite(static_cast<uint64_t>(entries.size()) *
                            kEntrySize);
  RecountAuxSpace();
  return Status::OK();
}

}  // namespace rum

#include "methods/sharded/sharded_method.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "core/metrics.h"

namespace rum {

ShardedMethod::ShardedMethod(
    std::string name, std::vector<std::unique_ptr<AccessMethod>> shards)
    : name_(std::move(name)) {
  assert(!shards.empty());
  shards_.reserve(shards.size());
  for (auto& method : shards) {
    auto shard = std::make_unique<Shard>();
    shard->method = std::move(method);
    shards_.push_back(std::move(shard));
  }
}

ShardedMethod::~ShardedMethod() = default;

size_t ShardedMethod::PartitionOf(Key key) const {
  // SplitMix64 finalizer: decorrelates shard choice from key order so
  // sequential and clustered workloads still spread across shards.
  uint64_t x = key + 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  x ^= x >> 31;
  return static_cast<size_t>(x % shards_.size());
}

Status ShardedMethod::Insert(Key key, Value value) {
  Shard& shard = *shards_[PartitionOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.method->Insert(key, value);
}

Status ShardedMethod::Update(Key key, Value value) {
  Shard& shard = *shards_[PartitionOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.method->Update(key, value);
}

Status ShardedMethod::Delete(Key key) {
  Shard& shard = *shards_[PartitionOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.method->Delete(key);
}

Result<Value> ShardedMethod::Get(Key key) {
  Shard& shard = *shards_[PartitionOf(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.method->Get(key);
}

Status ShardedMethod::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) {
    return Status::InvalidArgument("Scan range is inverted");
  }
  own_.OnRangeQuery();
  std::vector<Entry> merged;
  for (auto& shard : shards_) {
    std::vector<Entry> part;
    std::lock_guard<std::mutex> lock(shard->mu);
    Status s = shard->method->Scan(lo, hi, &part);
    if (!s.ok()) return s;
    merged.insert(merged.end(), part.begin(), part.end());
  }
  // Shards hold disjoint key sets, each scanned in ascending order; one
  // sort restores the global order.
  std::sort(merged.begin(), merged.end());
  out->insert(out->end(), merged.begin(), merged.end());
  return Status::OK();
}

Status ShardedMethod::BulkLoad(std::span<const Entry> entries) {
  Status s = CheckBulkLoadPreconditions(entries);
  if (!s.ok()) return s;
  std::vector<std::vector<Entry>> parts(shards_.size());
  for (auto& part : parts) part.reserve(entries.size() / shards_.size() + 1);
  for (const Entry& e : entries) {
    parts[PartitionOf(e.key)].push_back(e);
  }
  // A subsequence of strictly-ascending entries is strictly ascending, so
  // each shard sees a valid bulk load.
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::mutex> lock(shards_[i]->mu);
    s = shards_[i]->method->BulkLoad(parts[i]);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status ShardedMethod::Flush() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    Status s = shard->method->Flush();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

size_t ShardedMethod::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->method->size();
  }
  return total;
}

CounterSnapshot ShardedMethod::stats() const {
  // A full stats() locks and merges every shard -- fine per phase, ruinous
  // per operation. The counter below is how trace_test's sampling-
  // regression check verifies the workload runner no longer does the
  // latter (the counter is cheap: one relaxed atomic add).
  static MetricsRegistry::Counter* merges =
      MetricsRegistry::Global().FindOrCreateCounter(
          "sharded_method.stats_merges");
  merges->Increment();
  CounterSnapshot out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out += shard->method->stats();
  }
  out.range_queries = own_.snapshot().range_queries;
  return out;
}

void ShardedMethod::ResetStats() {
  own_.ResetTraffic();
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->method->ResetStats();
  }
}

}  // namespace rum

#ifndef RUMLAB_METHODS_SHARDED_SHARDED_METHOD_H_
#define RUMLAB_METHODS_SHARDED_SHARDED_METHOD_H_

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/access_method.h"

namespace rum {

/// Hash-partitions the key space across N independent inner AccessMethod
/// instances, each guarded by its own mutex -- the concurrent execution
/// layer the paper's single-operation cost model leaves out. RUM overheads
/// compose additively: every inner method keeps charging its own counters,
/// and `stats()` merges them, so the sharded structure's position in RUM
/// space is the exact sum of its parts (plus N-way fixed metadata, visible
/// as slightly higher MO).
///
/// Concurrency contract:
///  - Point operations (Get/Insert/Update/Delete) lock exactly one shard.
///  - Scan visits every shard (hash partitioning scatters ranges), locking
///    one shard at a time; under concurrent writers the merged result is
///    per-shard-consistent, not a global atomic snapshot.
///  - stats()/size()/Flush()/ResetStats() also lock shard-at-a-time and are
///    exact when callers quiesce writers first (WorkloadRunner does).
class ShardedMethod : public AccessMethod, public KeyPartitioned {
 public:
  /// Takes ownership of `shards` (all built from the same inner method
  /// type); `name` is the factory name ("sharded-btree", ...).
  ShardedMethod(std::string name,
                std::vector<std::unique_ptr<AccessMethod>> shards);
  ~ShardedMethod() override;

  std::string_view name() const override { return name_; }

  Status Insert(Key key, Value value) override;
  Status Update(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  Status BulkLoad(std::span<const Entry> entries) override;
  Status Flush() override;
  size_t size() const override;

  /// Sum of inner snapshots, with range_queries rebooked to one per logical
  /// Scan (each Scan fans out to every shard; counting N would overstate
  /// the operation mix N-fold).
  CounterSnapshot stats() const override;
  void ResetStats() override;

  // KeyPartitioned:
  size_t partitions() const override { return shards_.size(); }
  size_t PartitionOf(Key key) const override;

 private:
  struct Shard {
    std::unique_ptr<AccessMethod> method;
    mutable std::mutex mu;
  };

  std::string name_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Wrapper-level op accounting written concurrently by caller threads
  /// without a shard lock -- the thread-sharded RumCounters handles that.
  RumCounters own_;
};

}  // namespace rum

#endif  // RUMLAB_METHODS_SHARDED_SHARDED_METHOD_H_

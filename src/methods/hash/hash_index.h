#ifndef RUMLAB_METHODS_HASH_HASH_INDEX_H_
#define RUMLAB_METHODS_HASH_HASH_INDEX_H_

#include <memory>
#include <vector>

#include "core/access_method.h"
#include "core/options.h"
#include "storage/block_device.h"
#include "storage/heap_file.h"

namespace rum {

/// A hash index over a heap file: the O(1)-point-query structure of the
/// paper's Table 1 ("Perfect Hash Index") and the point-read corner of
/// Figure 1.
///
/// Base data lives in a HeapFile; the auxiliary directory is an array of
/// (key, row) slots in device pages, probed linearly. A point query costs
/// one directory page plus one heap page; range queries degrade to a full
/// heap scan -- hashing destroys order, which is exactly the tradeoff
/// Table 1 shows (range query O(N/B)).
///
/// The directory doubles and rehashes when load exceeds 0.7, a realistic
/// write-amplification burst. Bulk loads size it to
/// `hash.directory_fanout` slots per key up front; with fanout >= 1/0.7
/// and no subsequent growth this behaves as Table 1's perfect hash.
class HashIndex : public AccessMethod {
 public:
  explicit HashIndex(const Options& options);
  HashIndex(const Options& options, Device* device);

  ~HashIndex() override;

  std::string_view name() const override { return "hash"; }

  Status Insert(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  Status BulkLoad(std::span<const Entry> entries) override;
  Status Flush() override;
  size_t size() const override { return live_; }

  size_t slot_count() const { return slot_count_; }
  double load_factor() const {
    return slot_count_ == 0
               ? 0.0
               : static_cast<double>(live_) / static_cast<double>(slot_count_);
  }

 private:
  // Slot states, encoded in the row field.
  static constexpr RowId kEmptySlot = kInvalidRowId;
  static constexpr RowId kTombstoneSlot = kInvalidRowId - 1;

  struct SlotRef {
    size_t page_index;
    size_t offset;
  };

  SlotRef RefFor(size_t slot) const;
  /// Reads the directory page holding `slot` into the probe cache if it is
  /// not already there (one charged page read per page transition).
  Status LoadSlotPage(size_t page_index);
  Status StoreSlotPage(size_t page_index);

  /// Probes for `key`. On return: *found_slot is the slot holding the key
  /// (when the result is true) or the first insertable slot (when false).
  Result<bool> Probe(Key key, size_t* found_slot);

  Status WriteSlot(size_t slot, Key key, RowId row);
  Status BuildDirectory(size_t slots);
  Status Rehash(size_t new_slots);

  std::unique_ptr<BlockDevice> owned_device_;
  Device* device_;
  bool pinned_pages_;
  size_t slots_per_page_;
  double fanout_;

  std::unique_ptr<HeapFile> heap_;
  std::vector<PageId> dir_pages_;
  size_t slot_count_ = 0;
  size_t live_ = 0;
  size_t used_slots_ = 0;  // Live + tombstones (drives growth).

  // Single-page probe cache (valid within one operation).
  std::vector<Entry> cached_page_;
  size_t cached_index_ = static_cast<size_t>(-1);
  bool cached_dirty_ = false;
};

}  // namespace rum

#endif  // RUMLAB_METHODS_HASH_HASH_INDEX_H_

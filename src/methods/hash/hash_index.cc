#include "methods/hash/hash_index.h"

#include <algorithm>
#include <cassert>

#include "methods/sketch/bloom_filter.h"
#include "storage/page_format.h"

namespace rum {

namespace {
constexpr double kMaxLoad = 0.7;
}  // namespace

HashIndex::HashIndex(const Options& options)
    : owned_device_(
          std::make_unique<BlockDevice>(options.block_size, &counters())),
      device_(owned_device_.get()),
      pinned_pages_(options.storage.pinned_pages),
      slots_per_page_(PageFormat::CapacityFor(options.block_size)),
      fanout_(options.hash.directory_fanout),
      heap_(std::make_unique<HeapFile>(device_, DataClass::kBase, &counters(),
                                       pinned_pages_)) {}

HashIndex::HashIndex(const Options& options, Device* device)
    : device_(device),
      pinned_pages_(options.storage.pinned_pages),
      slots_per_page_(PageFormat::CapacityFor(device->block_size())),
      fanout_(options.hash.directory_fanout),
      heap_(std::make_unique<HeapFile>(device_, DataClass::kBase, &counters(),
                                       pinned_pages_)) {}

HashIndex::~HashIndex() = default;

HashIndex::SlotRef HashIndex::RefFor(size_t slot) const {
  return SlotRef{slot / slots_per_page_, slot % slots_per_page_};
}

Status HashIndex::LoadSlotPage(size_t page_index) {
  if (cached_index_ == page_index) return Status::OK();
  Status s = StoreSlotPage(cached_index_);
  if (!s.ok()) return s;
  if (pinned_pages_) {
    PageReadGuard guard;
    s = device_->PinForRead(dir_pages_[page_index], &guard);
    if (!s.ok()) return s;
    s = PageFormat::Unpack(guard.bytes(), &cached_page_);
  } else {
    std::vector<uint8_t> block;
    s = device_->Read(dir_pages_[page_index], &block);
    if (!s.ok()) return s;
    s = PageFormat::Unpack(block, &cached_page_);
  }
  if (!s.ok()) return s;
  cached_index_ = page_index;
  cached_dirty_ = false;
  return Status::OK();
}

Status HashIndex::StoreSlotPage(size_t page_index) {
  if (page_index == static_cast<size_t>(-1) || !cached_dirty_) {
    return Status::OK();
  }
  assert(page_index == cached_index_);
  if (pinned_pages_) {
    PageWriteGuard guard;
    Status s = device_->PinForWrite(dir_pages_[page_index], &guard);
    if (!s.ok()) return s;
    s = PageFormat::PackInto(cached_page_, guard.bytes());
    if (!s.ok()) return s;
    guard.MarkDirty();
    s = guard.Release();
    if (!s.ok()) return s;
    cached_dirty_ = false;
    return Status::OK();
  }
  std::vector<uint8_t> block;
  Status s = PageFormat::Pack(cached_page_, device_->block_size(), &block);
  if (!s.ok()) return s;
  s = device_->Write(dir_pages_[page_index], block);
  if (!s.ok()) return s;
  cached_dirty_ = false;
  return Status::OK();
}

Status HashIndex::BuildDirectory(size_t slots) {
  // Round up to whole pages of empty slots.
  size_t pages = (slots + slots_per_page_ - 1) / slots_per_page_;
  pages = std::max<size_t>(pages, 1);
  slot_count_ = pages * slots_per_page_;
  dir_pages_.clear();
  std::vector<Entry> empty(slots_per_page_, Entry{0, kEmptySlot});
  if (pinned_pages_) {
    for (size_t p = 0; p < pages; ++p) {
      PageId page;
      Status s = device_->Allocate(DataClass::kAux, &page);
      if (!s.ok()) return s;
      PageWriteGuard guard;
      s = device_->PinForWrite(page, &guard);
      if (!s.ok()) return s;
      s = PageFormat::PackInto(empty, guard.bytes());
      if (!s.ok()) return s;
      guard.MarkDirty();
      s = guard.Release();
      if (!s.ok()) return s;
      dir_pages_.push_back(page);
    }
  } else {
    std::vector<uint8_t> block;
    Status s = PageFormat::Pack(empty, device_->block_size(), &block);
    if (!s.ok()) return s;
    for (size_t p = 0; p < pages; ++p) {
      PageId page;
      s = device_->Allocate(DataClass::kAux, &page);
      if (!s.ok()) return s;
      s = device_->Write(page, block);
      if (!s.ok()) return s;
      dir_pages_.push_back(page);
    }
  }
  used_slots_ = 0;
  cached_index_ = static_cast<size_t>(-1);
  cached_dirty_ = false;
  return Status::OK();
}

Result<bool> HashIndex::Probe(Key key, size_t* found_slot) {
  assert(slot_count_ > 0);
  size_t slot = static_cast<size_t>(MixHash(key) % slot_count_);
  size_t insertable = static_cast<size_t>(-1);
  for (size_t step = 0; step < slot_count_; ++step) {
    SlotRef ref = RefFor(slot);
    Status s = LoadSlotPage(ref.page_index);
    if (!s.ok()) return s;
    const Entry& e = cached_page_[ref.offset];
    if (e.value == kEmptySlot) {
      *found_slot = insertable != static_cast<size_t>(-1) ? insertable : slot;
      return false;
    }
    if (e.value == kTombstoneSlot) {
      if (insertable == static_cast<size_t>(-1)) insertable = slot;
    } else if (e.key == key) {
      *found_slot = slot;
      return true;
    }
    slot = (slot + 1) % slot_count_;
  }
  if (insertable != static_cast<size_t>(-1)) {
    *found_slot = insertable;
    return false;
  }
  return Status::ResourceExhausted("hash directory full");
}

Status HashIndex::WriteSlot(size_t slot, Key key, RowId row) {
  SlotRef ref = RefFor(slot);
  Status s = LoadSlotPage(ref.page_index);
  if (!s.ok()) return s;
  cached_page_[ref.offset] = Entry{key, row};
  cached_dirty_ = true;
  return StoreSlotPage(ref.page_index);
}

Status HashIndex::Rehash(size_t new_slots) {
  // Collect all live (key, row) pairs by scanning the old directory.
  std::vector<Entry> pairs;
  pairs.reserve(live_);
  std::vector<uint8_t> block;
  std::vector<Entry> page;
  std::vector<PageId> old_pages = dir_pages_;
  for (PageId p : old_pages) {
    Status s;
    if (pinned_pages_) {
      PageReadGuard guard;
      s = device_->PinForRead(p, &guard);
      if (!s.ok()) return s;
      s = PageFormat::Unpack(guard.bytes(), &page);
    } else {
      s = device_->Read(p, &block);
      if (!s.ok()) return s;
      s = PageFormat::Unpack(block, &page);
    }
    if (!s.ok()) return s;
    for (const Entry& e : page) {
      if (e.value != kEmptySlot && e.value != kTombstoneSlot) {
        pairs.push_back(e);
      }
    }
  }
  for (PageId p : old_pages) {
    Status s = device_->Free(p);
    if (!s.ok()) return s;
  }
  Status s = BuildDirectory(new_slots);
  if (!s.ok()) return s;
  for (const Entry& e : pairs) {
    size_t slot;
    Result<bool> found = Probe(e.key, &slot);
    if (!found.ok()) return found.status();
    assert(!found.value());
    SlotRef ref = RefFor(slot);
    s = LoadSlotPage(ref.page_index);
    if (!s.ok()) return s;
    cached_page_[ref.offset] = e;
    cached_dirty_ = true;
    ++used_slots_;
  }
  return StoreSlotPage(cached_index_);
}

Status HashIndex::Insert(Key key, Value value) {
  counters().OnInsert();
  counters().OnLogicalWrite(kEntrySize);
  if (slot_count_ == 0) {
    Status s = BuildDirectory(slots_per_page_);
    if (!s.ok()) return s;
  }
  size_t slot;
  Result<bool> found = Probe(key, &slot);
  if (!found.ok()) return found.status();
  if (found.value()) {
    SlotRef ref = RefFor(slot);
    Status s = LoadSlotPage(ref.page_index);
    if (!s.ok()) return s;
    RowId row = cached_page_[ref.offset].value;
    return heap_->Set(row, Entry{key, value});
  }
  Result<RowId> row = heap_->Append(Entry{key, value});
  if (!row.ok()) return row.status();
  Status s = WriteSlot(slot, key, row.value());
  if (!s.ok()) return s;
  ++live_;
  ++used_slots_;
  if (static_cast<double>(used_slots_) >
      kMaxLoad * static_cast<double>(slot_count_)) {
    return Rehash(slot_count_ * 2);
  }
  return Status::OK();
}

Status HashIndex::Delete(Key key) {
  counters().OnDelete();
  counters().OnLogicalWrite(kEntrySize);
  if (slot_count_ == 0) return Status::OK();
  size_t slot;
  Result<bool> found = Probe(key, &slot);
  if (!found.ok()) return found.status();
  if (!found.value()) return Status::OK();  // Idempotent.

  SlotRef ref = RefFor(slot);
  Status s = LoadSlotPage(ref.page_index);
  if (!s.ok()) return s;
  RowId row = cached_page_[ref.offset].value;
  s = WriteSlot(slot, 0, kTombstoneSlot);
  if (!s.ok()) return s;
  --live_;

  // Keep the heap dense: move the last row into the hole and repoint its
  // directory slot.
  RowId last = heap_->row_count() - 1;
  if (row != last) {
    Result<Entry> moved = heap_->At(last);
    if (!moved.ok()) return moved.status();
    s = heap_->Set(row, moved.value());
    if (!s.ok()) return s;
    size_t moved_slot;
    Result<bool> moved_found = Probe(moved.value().key, &moved_slot);
    if (!moved_found.ok()) return moved_found.status();
    assert(moved_found.value());
    s = WriteSlot(moved_slot, moved.value().key, row);
    if (!s.ok()) return s;
  }
  return heap_->PopBack();
}

Result<Value> HashIndex::Get(Key key) {
  counters().OnPointQuery();
  if (slot_count_ == 0) return Status::NotFound();
  size_t slot;
  Result<bool> found = Probe(key, &slot);
  if (!found.ok()) return found.status();
  if (!found.value()) return Status::NotFound();
  SlotRef ref = RefFor(slot);
  Status s = LoadSlotPage(ref.page_index);
  if (!s.ok()) return s;
  RowId row = cached_page_[ref.offset].value;
  Result<Entry> entry = heap_->At(row);
  if (!entry.ok()) return entry.status();
  counters().OnLogicalRead(kEntrySize);
  return entry.value().value;
}

Status HashIndex::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  counters().OnRangeQuery();
  // Hashing destroys order: the whole heap is scanned (Table 1, O(N/B)).
  std::vector<Entry> hits;
  Status s = heap_->ForEach([&](RowId, const Entry& e) {
    if (e.key >= lo && e.key <= hi) hits.push_back(e);
    return Status::OK();
  });
  if (!s.ok()) return s;
  std::sort(hits.begin(), hits.end());
  counters().OnLogicalRead(static_cast<uint64_t>(hits.size()) * kEntrySize);
  out->insert(out->end(), hits.begin(), hits.end());
  return Status::OK();
}

Status HashIndex::BulkLoad(std::span<const Entry> entries) {
  Status s = CheckBulkLoadPreconditions(entries);
  if (!s.ok()) return s;
  // Never build a directory the load limit cannot accommodate, whatever
  // the configured fanout.
  double fanout = std::max(fanout_, 1.0 / kMaxLoad + 0.05);
  size_t slots = std::max<size_t>(
      slots_per_page_,
      static_cast<size_t>(static_cast<double>(entries.size()) * fanout));
  s = BuildDirectory(slots);
  if (!s.ok()) return s;
  for (const Entry& e : entries) {
    Result<RowId> row = heap_->Append(e);
    if (!row.ok()) return row.status();
    size_t slot;
    Result<bool> found = Probe(e.key, &slot);
    if (!found.ok()) return found.status();
    SlotRef ref = RefFor(slot);
    s = LoadSlotPage(ref.page_index);
    if (!s.ok()) return s;
    cached_page_[ref.offset] = Entry{e.key, row.value()};
    cached_dirty_ = true;
    ++used_slots_;
  }
  s = StoreSlotPage(cached_index_);
  if (!s.ok()) return s;
  s = heap_->Flush();
  if (!s.ok()) return s;
  live_ = entries.size();
  counters().OnLogicalWrite(static_cast<uint64_t>(entries.size()) *
                            kEntrySize);
  return Status::OK();
}

Status HashIndex::Flush() {
  Status s = StoreSlotPage(cached_index_);
  if (!s.ok()) return s;
  return heap_->Flush();
}

}  // namespace rum

#include "methods/extremes/magic_array.h"

namespace rum {

MagicArray::MagicArray(const Options& options)
    : domain_(options.extremes.magic_array_domain) {
  slots_.assign(static_cast<size_t>(domain_), std::nullopt);
  RecountSpace();
}

Status MagicArray::CheckDomain(Key key) const {
  if (key >= domain_) {
    return Status::OutOfRange("key beyond magic-array domain");
  }
  return Status::OK();
}

void MagicArray::RecountSpace() {
  // Occupied slots are base data; empty slots are pure overhead. The whole
  // domain is materialized, which is what makes MO unbounded.
  uint64_t base = static_cast<uint64_t>(live_) * kEntrySize;
  uint64_t total = static_cast<uint64_t>(domain_) * kEntrySize;
  counters().SetSpace(DataClass::kBase, base);
  counters().SetSpace(DataClass::kAux, total - base);
}

Status MagicArray::Insert(Key key, Value value) {
  Status s = CheckDomain(key);
  if (!s.ok()) return s;
  counters().OnInsert();
  counters().OnLogicalWrite(kEntrySize);
  if (!slots_[key].has_value()) ++live_;
  slots_[key] = value;
  counters().OnWrite(DataClass::kBase, kEntrySize);
  RecountSpace();
  return Status::OK();
}

Status MagicArray::Update(Key key, Value value) {
  Status s = CheckDomain(key);
  if (!s.ok()) return s;
  counters().OnUpdate();
  counters().OnLogicalWrite(kEntrySize);
  if (!slots_[key].has_value()) ++live_;
  slots_[key] = value;
  counters().OnWrite(DataClass::kBase, kEntrySize);
  RecountSpace();
  return Status::OK();
}

Status MagicArray::Delete(Key key) {
  Status s = CheckDomain(key);
  if (!s.ok()) return s;
  counters().OnDelete();
  counters().OnLogicalWrite(kEntrySize);
  if (slots_[key].has_value()) --live_;
  slots_[key] = std::nullopt;
  counters().OnWrite(DataClass::kBase, kEntrySize);
  RecountSpace();
  return Status::OK();
}

Result<Value> MagicArray::Get(Key key) {
  Status s = CheckDomain(key);
  if (!s.ok()) return s;
  counters().OnPointQuery();
  // Exactly one slot is touched: RO = 1.0, the Prop-1 optimum.
  counters().OnRead(DataClass::kBase, kEntrySize);
  if (!slots_[key].has_value()) {
    return Status::NotFound();
  }
  counters().OnLogicalRead(kEntrySize);
  return *slots_[key];
}

Status MagicArray::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  counters().OnRangeQuery();
  Key last = hi < domain_ ? hi : (domain_ == 0 ? 0 : domain_ - 1);
  if (lo >= domain_) return Status::OK();
  uint64_t found = 0;
  for (Key k = lo; k <= last; ++k) {
    // Every slot in the range is touched, including empty ones.
    counters().OnRead(DataClass::kBase, kEntrySize);
    if (slots_[k].has_value()) {
      out->push_back(Entry{k, *slots_[k]});
      ++found;
    }
    if (k == kMaxKey) break;
  }
  counters().OnLogicalRead(found * kEntrySize);
  return Status::OK();
}

Status MagicArray::BulkLoad(std::span<const Entry> entries) {
  Status s = CheckBulkLoadPreconditions(entries);
  if (!s.ok()) return s;
  for (const Entry& e : entries) {
    s = Insert(e.key, e.value);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Status MagicArray::ChangeKey(Key old_key, Key new_key) {
  Status s = CheckDomain(old_key);
  if (!s.ok()) return s;
  s = CheckDomain(new_key);
  if (!s.ok()) return s;
  if (!slots_[old_key].has_value()) {
    return Status::NotFound("old key not present");
  }
  counters().OnUpdate();
  // One logical change of one entry...
  counters().OnLogicalWrite(kEntrySize);
  // ...costs two physical slot writes: empty the old block, fill the new
  // one. This is Proposition 1's UO = 2.0.
  Value payload = *slots_[old_key];
  slots_[old_key] = std::nullopt;
  counters().OnWrite(DataClass::kBase, kEntrySize);
  if (!slots_[new_key].has_value() && new_key != old_key) {
    // Target was empty; occupancy unchanged overall.
  } else if (new_key != old_key) {
    // Overwriting an existing entry loses it.
    --live_;
  }
  slots_[new_key] = payload;
  counters().OnWrite(DataClass::kBase, kEntrySize);
  RecountSpace();
  return Status::OK();
}

}  // namespace rum

#ifndef RUMLAB_METHODS_EXTREMES_PURE_LOG_H_
#define RUMLAB_METHODS_EXTREMES_PURE_LOG_H_

#include <unordered_map>
#include <vector>

#include "core/access_method.h"
#include "core/options.h"

namespace rum {

/// The paper's Proposition-2 structure: a pure append-only log that
/// minimizes *only* the update overhead.
///
/// "We append every update, effectively forming an ever increasing log.
/// That way we achieve the minimum UO, which is equal to 1.0, at the cost of
/// continuously increasing RO and MO" (Section 2).
///
/// Every Insert/Update/Delete appends exactly one entry's worth of bytes
/// (UO = 1.0); the log is never reorganized. Point queries scan backwards
/// from the tail until the newest version of the key is found; in the worst
/// case the whole log is read. Space grows with every operation because
/// stale versions and tombstones are never reclaimed -- those bytes are
/// accounted as auxiliary overhead over the live base data, so MO grows
/// without bound under updates.
///
/// Accounting is at byte granularity against the idealized model.
class PureLog : public AccessMethod {
 public:
  explicit PureLog(const Options& options);

  std::string_view name() const override { return "pure-log"; }

  Status Insert(Key key, Value value) override;
  Status Update(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  size_t size() const override { return live_.size(); }

  CounterSnapshot stats() const override;

  /// Total records ever appended (live + stale + tombstones).
  uint64_t record_count() const { return records_.size(); }

 private:
  struct Record {
    Key key;
    Value value;
    bool tombstone;
  };

  Status Append(Key key, Value value, bool tombstone);

  std::vector<Record> records_;
  // Simulator-side bookkeeping (not part of the structure, not accounted):
  // tracks which keys are live so size() and the base/aux space split are
  // exact.
  std::unordered_map<Key, size_t> live_;  // key -> index of newest version
};

}  // namespace rum

#endif  // RUMLAB_METHODS_EXTREMES_PURE_LOG_H_

#include "methods/extremes/dense_array.h"

#include <algorithm>

namespace rum {

DenseArray::DenseArray(const Options& options) { (void)options; }

void DenseArray::RecountSpace() {
  // MO = 1.0: base data only, not a byte of auxiliary space.
  counters().SetSpace(DataClass::kBase,
                      static_cast<uint64_t>(entries_.size()) * kEntrySize);
  counters().SetSpace(DataClass::kAux, 0);
}

size_t DenseArray::FindCharged(Key key) {
  for (size_t i = 0; i < entries_.size(); ++i) {
    counters().OnRead(DataClass::kBase, kEntrySize);
    if (entries_[i].key == key) return i;
  }
  return kNpos;
}

Status DenseArray::Insert(Key key, Value value) {
  counters().OnInsert();
  counters().OnLogicalWrite(kEntrySize);
  // Upsert semantics require locating a previous version first.
  size_t idx = FindCharged(key);
  if (idx != kNpos) {
    entries_[idx].value = value;
    counters().OnWrite(DataClass::kBase, kEntrySize);
  } else {
    entries_.push_back(Entry{key, value});
    counters().OnWrite(DataClass::kBase, kEntrySize);
  }
  RecountSpace();
  return Status::OK();
}

Status DenseArray::Update(Key key, Value value) {
  Status s = Insert(key, value);
  if (s.ok()) counters().ReclassifyInsertAsUpdate();
  return s;
}

Status DenseArray::Delete(Key key) {
  counters().OnDelete();
  counters().OnLogicalWrite(kEntrySize);
  size_t idx = FindCharged(key);
  if (idx == kNpos) {
    RecountSpace();
    return Status::OK();  // Idempotent.
  }
  // Stay dense: move the tail entry into the hole.
  if (idx != entries_.size() - 1) {
    entries_[idx] = entries_.back();
    counters().OnWrite(DataClass::kBase, kEntrySize);
  }
  entries_.pop_back();
  RecountSpace();
  return Status::OK();
}

Result<Value> DenseArray::Get(Key key) {
  counters().OnPointQuery();
  size_t idx = FindCharged(key);
  if (idx == kNpos) return Status::NotFound();
  counters().OnLogicalRead(kEntrySize);
  return entries_[idx].value;
}

Status DenseArray::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  counters().OnRangeQuery();
  // A full scan is always needed: the array is unsorted.
  counters().OnRead(DataClass::kBase,
                    static_cast<uint64_t>(entries_.size()) * kEntrySize);
  std::vector<Entry> hits;
  for (const Entry& e : entries_) {
    if (e.key >= lo && e.key <= hi) hits.push_back(e);
  }
  std::sort(hits.begin(), hits.end());
  counters().OnLogicalRead(static_cast<uint64_t>(hits.size()) * kEntrySize);
  out->insert(out->end(), hits.begin(), hits.end());
  return Status::OK();
}

Status DenseArray::BulkLoad(std::span<const Entry> entries) {
  Status s = CheckBulkLoadPreconditions(entries);
  if (!s.ok()) return s;
  entries_.assign(entries.begin(), entries.end());
  counters().OnWrite(DataClass::kBase,
                     static_cast<uint64_t>(entries.size()) * kEntrySize);
  counters().OnLogicalWrite(static_cast<uint64_t>(entries.size()) *
                            kEntrySize);
  RecountSpace();
  return Status::OK();
}

}  // namespace rum

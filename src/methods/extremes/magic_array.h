#ifndef RUMLAB_METHODS_EXTREMES_MAGIC_ARRAY_H_
#define RUMLAB_METHODS_EXTREMES_MAGIC_ARRAY_H_

#include <optional>
#include <vector>

#include "core/access_method.h"
#include "core/options.h"

namespace rum {

/// The paper's Proposition-1 structure: a direct-address array that
/// minimizes *only* the read overhead.
///
/// "We organize data in an array and we store each value in the block with
/// blkid = value" (Section 2). Here the key is the address: slot `k` of a
/// pre-allocated array over the whole key domain holds the entry for key
/// `k`, or null.
///
/// Resulting RUM profile (Prop. 1): min(RO) = 1.0 implies UO = 2.0 (for the
/// paper's "change a value" operation, see ChangeKey) and MO unbounded --
/// the array must span the key domain regardless of how few keys are live.
///
/// Accounting is at byte granularity against the idealized model: a slot is
/// one entry (kEntrySize bytes); occupied slots are base data, empty slots
/// are the structure's space overhead (auxiliary).
class MagicArray : public AccessMethod {
 public:
  explicit MagicArray(const Options& options);

  std::string_view name() const override { return "magic-array"; }

  Status Insert(Key key, Value value) override;
  Status Update(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  Status BulkLoad(std::span<const Entry> entries) override;
  size_t size() const override { return live_; }

  /// The paper's "change a value" operation: the entry at `old_key` moves to
  /// `new_key` (its payload unchanged). Two physical slot writes for one
  /// logical update -- exactly the UO = 2.0 of Proposition 1.
  Status ChangeKey(Key old_key, Key new_key);

  /// Key domain covered by the array (slots allocated).
  Key domain() const { return domain_; }

 private:
  Status CheckDomain(Key key) const;
  void RecountSpace();

  Key domain_;
  std::vector<std::optional<Value>> slots_;
  size_t live_ = 0;
};

}  // namespace rum

#endif  // RUMLAB_METHODS_EXTREMES_MAGIC_ARRAY_H_

#ifndef RUMLAB_METHODS_EXTREMES_DENSE_ARRAY_H_
#define RUMLAB_METHODS_EXTREMES_DENSE_ARRAY_H_

#include <vector>

#include "core/access_method.h"
#include "core/options.h"

namespace rum {

/// The paper's Proposition-3 structure: a dense unsorted array that
/// minimizes *only* the memory overhead.
///
/// "No auxiliary data is stored and the base data is stored as a dense
/// array. During a selection we need to scan all data...; updates are
/// performed in place" (Section 2).
///
/// MO = 1.0 exactly: the resident bytes are precisely the live entries.
/// Point queries scan from the front until the key is found (N/2 entries on
/// average, N for a miss); updates touch exactly the one entry being
/// changed (UO = 1.0). Deletes move the last entry into the hole to stay
/// dense.
///
/// Accounting is at byte granularity against the idealized model.
class DenseArray : public AccessMethod {
 public:
  explicit DenseArray(const Options& options);

  std::string_view name() const override { return "dense-array"; }

  Status Insert(Key key, Value value) override;
  Status Update(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  Status BulkLoad(std::span<const Entry> entries) override;
  size_t size() const override { return entries_.size(); }

 private:
  /// Linear scan for `key`; charges one entry read per element examined.
  /// Returns index or npos.
  size_t FindCharged(Key key);

  static constexpr size_t kNpos = static_cast<size_t>(-1);

  std::vector<Entry> entries_;

  void RecountSpace();
};

}  // namespace rum

#endif  // RUMLAB_METHODS_EXTREMES_DENSE_ARRAY_H_

#include "methods/extremes/pure_log.h"

#include <algorithm>

namespace rum {

PureLog::PureLog(const Options& options) { (void)options; }

Status PureLog::Append(Key key, Value value, bool tombstone) {
  counters().OnLogicalWrite(kEntrySize);
  // Exactly one entry is physically written: UO = 1.0, the Prop-2 optimum.
  counters().OnWrite(DataClass::kBase, kEntrySize);
  records_.push_back(Record{key, value, tombstone});
  if (tombstone) {
    live_.erase(key);
  } else {
    live_[key] = records_.size() - 1;
  }
  return Status::OK();
}

Status PureLog::Insert(Key key, Value value) {
  counters().OnInsert();
  return Append(key, value, /*tombstone=*/false);
}

Status PureLog::Update(Key key, Value value) {
  counters().OnUpdate();
  return Append(key, value, /*tombstone=*/false);
}

Status PureLog::Delete(Key key) {
  counters().OnDelete();
  return Append(key, 0, /*tombstone=*/true);
}

Result<Value> PureLog::Get(Key key) {
  counters().OnPointQuery();
  // Scan backwards from the tail: the newest version decides. The structure
  // has no index, so every record until the match is read.
  for (size_t i = records_.size(); i-- > 0;) {
    counters().OnRead(DataClass::kBase, kEntrySize);
    const Record& r = records_[i];
    if (r.key == key) {
      if (r.tombstone) return Status::NotFound();
      counters().OnLogicalRead(kEntrySize);
      return r.value;
    }
  }
  return Status::NotFound();
}

Status PureLog::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  counters().OnRangeQuery();
  // The whole log must be read: newer records shadow older ones.
  counters().OnRead(DataClass::kBase,
                    static_cast<uint64_t>(records_.size()) * kEntrySize);
  std::unordered_map<Key, std::pair<Value, bool>> newest;  // value, tombstone
  for (const Record& r : records_) {
    if (r.key < lo || r.key > hi) continue;
    newest[r.key] = {r.value, r.tombstone};
  }
  std::vector<Entry> hits;
  for (const auto& [k, vt] : newest) {
    if (!vt.second) hits.push_back(Entry{k, vt.first});
  }
  std::sort(hits.begin(), hits.end());
  counters().OnLogicalRead(static_cast<uint64_t>(hits.size()) * kEntrySize);
  out->insert(out->end(), hits.begin(), hits.end());
  return Status::OK();
}

CounterSnapshot PureLog::stats() const {
  CounterSnapshot snap = AccessMethod::stats();
  // Live entries are base data; stale versions and tombstones are the
  // ever-growing overhead of never reorganizing.
  uint64_t total = static_cast<uint64_t>(records_.size()) * kEntrySize;
  uint64_t base = static_cast<uint64_t>(live_.size()) * kEntrySize;
  snap.space_base = base;
  snap.space_aux = total - base;
  return snap;
}

}  // namespace rum

#ifndef RUMLAB_METHODS_APPROX_BLOOM_COLUMN_H_
#define RUMLAB_METHODS_APPROX_BLOOM_COLUMN_H_

#include <atomic>
#include <memory>
#include <unordered_set>
#include <vector>

#include "core/access_method.h"
#include "core/memory_budget.h"
#include "core/options.h"
#include "methods/sketch/bloom_filter.h"
#include "storage/block_device.h"
#include "storage/heap_file.h"

namespace rum {

/// An approximate index in the spirit of BF-Tree (paper reference [5]) and
/// Section 5's "approximate (tree) indexing ... absorbing updates in
/// updatable probabilistic data structures": an append-ordered column
/// chopped into zones of `approx.zone_entries` rows, each zone carrying a
/// Bloom filter of its keys instead of an exact index.
///
/// A point query probes every zone's filter (cheap auxiliary reads) and
/// scans only the zones that *may* contain the key -- typically one true
/// zone plus a handful of false positives, for a tiny fraction of a full
/// index's space. Range scans get no help (filters are orderless) and read
/// the whole column: the structure trades M down, R(point) near an index,
/// and lives with poor range reads -- a distinct point in the RUM space.
///
/// Deletes tombstone rows in a side set; filters keep the stale keys (their
/// false-positive rate degrades honestly) until a rebuild, triggered when
/// `approx.rebuild_deleted_fraction` of rows are dead.
///
/// As a MemoryPool (kind kFilter) the column's zone-filter memory is
/// arbitrable: an assigned byte budget converts to bits-per-key against
/// the published row count, effective for zones created after the call
/// (existing zones re-filter at the next Rebuild).
class BloomZoneColumn : public AccessMethod, public MemoryPool {
 public:
  explicit BloomZoneColumn(const Options& options);
  BloomZoneColumn(const Options& options, Device* device);

  ~BloomZoneColumn() override;

  std::string_view name() const override { return "bloom-zones"; }

  Status Insert(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  Status BulkLoad(std::span<const Entry> entries) override;
  Status Flush() override;
  size_t size() const override { return live_; }

  size_t zone_count() const { return zones_.size(); }
  uint64_t deleted_count() const { return deleted_rows_.size(); }

  /// The live bits-per-key knob for zones built from now on.
  void SetBitsPerKey(size_t bits) {
    bits_per_key_.store(bits, std::memory_order_relaxed);
  }
  size_t bits_per_key() const {
    return bits_per_key_.load(std::memory_order_relaxed);
  }
  /// Filter-probe outcome tally (a FindRow candidate zone that scans to
  /// nothing is one false positive; a skipped zone is one negative).
  const FilterStats& filter_stats() const { return filter_stats_; }

  // MemoryPool (see class comment):
  std::string_view pool_name() const override { return "bloom_zones"; }
  MemoryPoolKind pool_kind() const override {
    return MemoryPoolKind::kFilter;
  }
  uint64_t pool_bytes() const override {
    return filter_budget_bytes_.load(std::memory_order_relaxed);
  }
  void SetPoolBytes(uint64_t bytes) override;
  uint64_t BenefitSignal() const override {
    return filter_stats_.false_positives.load(std::memory_order_relaxed) *
           options_.block_size;
  }

 private:
  struct Zone {
    std::unique_ptr<BloomFilter> filter;
    RowId first_row;
    uint64_t rows;
  };

  /// Probes the zone filters for `key`, then scans candidate zones.
  /// Returns the live row or kInvalidRowId.
  Result<RowId> FindRow(Key key);
  /// Adds `key` for `row` into the tail zone (opening one as needed).
  void IndexAppendedRow(Key key, RowId row);
  /// Rewrites the heap without dead rows and rebuilds all zone filters.
  Status Rebuild();
  /// Registers with Options::memory.arbiter when enabled.
  void MaybeRegisterPool();
  /// Ticks the arbiter's epoch clock (no-op when arbitration is off).
  void TickRegistrar() {
    if (registrar_ != nullptr) registrar_->NotePoolOps(1);
  }

  Options options_;
  std::unique_ptr<BlockDevice> owned_device_;
  Device* device_;
  std::unique_ptr<HeapFile> heap_;
  std::vector<Zone> zones_;
  std::unordered_set<RowId> deleted_rows_;
  size_t live_ = 0;

  // Memory-arbitration state (relaxed atomics: replans may fire from
  // another component's thread; see core/memory_budget.h).
  std::atomic<size_t> bits_per_key_{0};
  std::atomic<uint64_t> approx_rows_{0};  // Published heap row count.
  std::atomic<uint64_t> filter_budget_bytes_{0};
  FilterStats filter_stats_;
  MemoryRegistrar* registrar_ = nullptr;  // Non-null once registered.
};

}  // namespace rum

#endif  // RUMLAB_METHODS_APPROX_BLOOM_COLUMN_H_

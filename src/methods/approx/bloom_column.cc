#include "methods/approx/bloom_column.h"

#include <algorithm>

namespace rum {

BloomZoneColumn::BloomZoneColumn(const Options& options)
    : options_(options),
      owned_device_(
          std::make_unique<BlockDevice>(options.block_size, &counters())),
      device_(owned_device_.get()),
      heap_(std::make_unique<HeapFile>(device_, DataClass::kBase, &counters(),
                                       options.storage.pinned_pages)) {
  MaybeRegisterPool();
}

BloomZoneColumn::BloomZoneColumn(const Options& options, Device* device)
    : options_(options),
      device_(device),
      heap_(std::make_unique<HeapFile>(device_, DataClass::kBase, &counters(),
                                       options.storage.pinned_pages)) {
  MaybeRegisterPool();
}

BloomZoneColumn::~BloomZoneColumn() {
  if (registrar_ != nullptr) registrar_->UnregisterPool(this);
}

void BloomZoneColumn::MaybeRegisterPool() {
  bits_per_key_.store(options_.approx.bits_per_key,
                      std::memory_order_relaxed);
  filter_budget_bytes_.store(
      static_cast<uint64_t>(options_.approx.bits_per_key) *
          std::max<uint64_t>(1, options_.approx.zone_entries) / 8,
      std::memory_order_relaxed);
  if (!options_.memory.enabled || options_.memory.arbiter == nullptr) return;
  registrar_ = options_.memory.arbiter;
  registrar_->RegisterPool(this);
}

void BloomZoneColumn::SetPoolBytes(uint64_t bytes) {
  filter_budget_bytes_.store(bytes, std::memory_order_relaxed);
  // Convert the budget into bits-per-key against the published row count
  // (one zone's worth stands in before any row lands). Takes effect for
  // zones created from now on; Rebuild re-filters the existing ones.
  uint64_t rows = approx_rows_.load(std::memory_order_relaxed);
  if (rows == 0) rows = std::max<uint64_t>(1, options_.approx.zone_entries);
  uint64_t bits = bytes * 8 / rows;
  if (bits > 64) bits = 64;  // Past ~20 bits/key the FP-rate gain is nil.
  SetBitsPerKey(static_cast<size_t>(bits));
}

void BloomZoneColumn::IndexAppendedRow(Key key, RowId row) {
  if (zones_.empty() || zones_.back().rows >= options_.approx.zone_entries) {
    Zone zone;
    // The *live* bits-per-key knob, not the configured value: this zone
    // boundary is exactly where an arbiter re-budget lands.
    zone.filter = std::make_unique<BloomFilter>(
        options_.approx.zone_entries, bits_per_key(), &counters());
    zone.first_row = row;
    zone.rows = 0;
    zones_.push_back(std::move(zone));
  }
  zones_.back().filter->Add(key);
  ++zones_.back().rows;
  approx_rows_.store(heap_->row_count(), std::memory_order_relaxed);
}

Result<RowId> BloomZoneColumn::FindRow(Key key) {
  RowId found = kInvalidRowId;
  for (const Zone& zone : zones_) {
    if (!zone.filter->MayContain(key)) {
      filter_stats_.negatives.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // Candidate zone: scan its rows.
    std::vector<RowId> rows;
    rows.reserve(zone.rows);
    for (uint64_t i = 0; i < zone.rows; ++i) {
      rows.push_back(zone.first_row + i);
    }
    Status s = heap_->ForRows(rows, [&](RowId row, const Entry& e) {
      if (e.key == key && deleted_rows_.find(row) == deleted_rows_.end()) {
        found = row;
      }
      return Status::OK();
    });
    if (!s.ok()) return s;
    if (found != kInvalidRowId) {
      filter_stats_.true_positives.fetch_add(1, std::memory_order_relaxed);
      return found;
    }
    // The filter said "maybe", the scan said no: a false positive -- the
    // arbiter's evidence that this column's filters are under-provisioned.
    filter_stats_.false_positives.fetch_add(1, std::memory_order_relaxed);
  }
  return found;
}

Status BloomZoneColumn::Rebuild() {
  // Read everything live, clear, and re-append -- the garbage collection a
  // filter-based index must eventually pay for deletes.
  std::vector<Entry> live;
  live.reserve(heap_->row_count());
  Status s = heap_->ForEach([&](RowId row, const Entry& e) {
    if (deleted_rows_.find(row) == deleted_rows_.end()) live.push_back(e);
    return Status::OK();
  });
  if (!s.ok()) return s;
  s = heap_->Clear();
  if (!s.ok()) return s;
  zones_.clear();  // Bloom destructors release their auxiliary space.
  counters().AdjustSpace(
      DataClass::kAux,
      -static_cast<int64_t>(deleted_rows_.size() * sizeof(RowId)));
  deleted_rows_.clear();
  for (const Entry& e : live) {
    Result<RowId> row = heap_->Append(e);
    if (!row.ok()) return row.status();
    IndexAppendedRow(e.key, row.value());
  }
  return heap_->Flush();
}

Status BloomZoneColumn::Insert(Key key, Value value) {
  TickRegistrar();
  counters().OnInsert();
  counters().OnLogicalWrite(kEntrySize);
  Result<RowId> existing = FindRow(key);
  if (!existing.ok()) return existing.status();
  if (existing.value() != kInvalidRowId) {
    return heap_->Set(existing.value(), Entry{key, value});
  }
  Result<RowId> row = heap_->Append(Entry{key, value});
  if (!row.ok()) return row.status();
  IndexAppendedRow(key, row.value());
  ++live_;
  return Status::OK();
}

Status BloomZoneColumn::Delete(Key key) {
  TickRegistrar();
  counters().OnDelete();
  counters().OnLogicalWrite(kEntrySize);
  Result<RowId> existing = FindRow(key);
  if (!existing.ok()) return existing.status();
  if (existing.value() == kInvalidRowId) return Status::OK();
  deleted_rows_.insert(existing.value());
  counters().OnWrite(DataClass::kAux, sizeof(RowId));
  counters().AdjustSpace(DataClass::kAux, sizeof(RowId));
  --live_;
  if (static_cast<double>(deleted_rows_.size()) >
      options_.approx.rebuild_deleted_fraction *
          static_cast<double>(std::max<uint64_t>(1, heap_->row_count()))) {
    return Rebuild();
  }
  return Status::OK();
}

Result<Value> BloomZoneColumn::Get(Key key) {
  TickRegistrar();
  counters().OnPointQuery();
  Result<RowId> row = FindRow(key);
  if (!row.ok()) return row.status();
  if (row.value() == kInvalidRowId) return Status::NotFound();
  Result<Entry> entry = heap_->At(row.value());
  if (!entry.ok()) return entry.status();
  counters().OnLogicalRead(kEntrySize);
  return entry.value().value;
}

Status BloomZoneColumn::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  TickRegistrar();
  counters().OnRangeQuery();
  // Filters are orderless: the whole column is scanned.
  std::vector<Entry> hits;
  Status s = heap_->ForEach([&](RowId row, const Entry& e) {
    if (e.key >= lo && e.key <= hi &&
        deleted_rows_.find(row) == deleted_rows_.end()) {
      hits.push_back(e);
    }
    return Status::OK();
  });
  if (!s.ok()) return s;
  std::sort(hits.begin(), hits.end());
  counters().OnLogicalRead(static_cast<uint64_t>(hits.size()) * kEntrySize);
  out->insert(out->end(), hits.begin(), hits.end());
  return Status::OK();
}

Status BloomZoneColumn::BulkLoad(std::span<const Entry> entries) {
  Status s = CheckBulkLoadPreconditions(entries);
  if (!s.ok()) return s;
  for (const Entry& e : entries) {
    Result<RowId> row = heap_->Append(e);
    if (!row.ok()) return row.status();
    IndexAppendedRow(e.key, row.value());
  }
  live_ = entries.size();
  counters().OnLogicalWrite(static_cast<uint64_t>(entries.size()) *
                            kEntrySize);
  return heap_->Flush();
}

Status BloomZoneColumn::Flush() { return heap_->Flush(); }

}  // namespace rum

#include "methods/approx/update_absorber.h"

#include <algorithm>
#include <bit>
#include <cassert>

namespace rum {

UpdateAbsorber::UpdateAbsorber(std::unique_ptr<AccessMethod> base,
                               const Options& options)
    : options_(options), base_(std::move(base)) {
  assert(base_ != nullptr);
  // Size the filter for the delta capacity at a comfortable load (< 0.6).
  size_t quotient_bits = std::max<size_t>(
      6, std::bit_width(options_.absorber.delta_entries * 2));
  filter_ = std::make_unique<QuotientFilter>(
      quotient_bits, options_.absorber.qf_remainder_bits, &own_);
}

UpdateAbsorber::~UpdateAbsorber() = default;

void UpdateAbsorber::RepublishDeltaSpace() {
  // Filter space is charged by the filter itself; the delta map is ours.
  own_.SetSpace(DataClass::kBase, 0);
  // AdjustSpace would drift with rehashing; publish the level directly.
  uint64_t filter_bytes = filter_->space_bytes();
  own_.SetSpace(DataClass::kAux,
                filter_bytes + static_cast<uint64_t>(delta_.size()) *
                                   kDeltaRecordSize);
}

Status UpdateAbsorber::Absorb(Key key, Value value, bool tombstone) {
  counters().OnLogicalWrite(kEntrySize);
  if (tombstone) {
    live_keys_.erase(key);
  } else {
    live_keys_.insert(key);
  }
  auto it = delta_.find(key);
  own_.OnRead(DataClass::kAux, kDeltaRecordSize);  // One bucket probe.
  if (it != delta_.end()) {
    it->second = DeltaRecord{value, tombstone};
    own_.OnWrite(DataClass::kAux, kDeltaRecordSize);
    return Status::OK();
  }
  if (!filter_->Insert(key)) {
    // Filter at load limit: drain early, then retry.
    Status s = Drain();
    if (!s.ok()) return s;
    if (!filter_->Insert(key)) {
      return Status::ResourceExhausted("quotient filter cannot admit key");
    }
  }
  delta_.emplace(key, DeltaRecord{value, tombstone});
  own_.OnWrite(DataClass::kAux, kDeltaRecordSize);
  RepublishDeltaSpace();
  if (delta_.size() >= options_.absorber.delta_entries) {
    return Drain();
  }
  return Status::OK();
}

Status UpdateAbsorber::Drain() {
  if (delta_.empty()) return Status::OK();
  // Apply in key order (friendlier to the base structure's locality).
  std::vector<std::pair<Key, DeltaRecord>> ops(delta_.begin(), delta_.end());
  std::sort(ops.begin(), ops.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  own_.OnRead(DataClass::kAux,
              static_cast<uint64_t>(ops.size()) * kDeltaRecordSize);
  for (const auto& [key, record] : ops) {
    Status s = record.tombstone ? base_->Delete(key)
                                : base_->Insert(key, record.value);
    if (!s.ok()) return s;
    (void)filter_->Delete(key);
  }
  delta_.clear();
  RepublishDeltaSpace();
  return Status::OK();
}

Status UpdateAbsorber::Insert(Key key, Value value) {
  counters().OnInsert();
  return Absorb(key, value, /*tombstone=*/false);
}

Status UpdateAbsorber::Update(Key key, Value value) {
  counters().OnUpdate();
  return Absorb(key, value, /*tombstone=*/false);
}

Status UpdateAbsorber::Delete(Key key) {
  counters().OnDelete();
  return Absorb(key, 0, /*tombstone=*/true);
}

Result<Value> UpdateAbsorber::Get(Key key) {
  counters().OnPointQuery();
  // The filter decides whether the delta must be consulted at all; for the
  // overwhelmingly common key-without-pending-update, this is the entire
  // read overhead the buffering adds.
  if (filter_->MayContain(key)) {
    own_.OnRead(DataClass::kAux, kDeltaRecordSize);
    auto it = delta_.find(key);
    if (it != delta_.end()) {
      if (it->second.tombstone) return Status::NotFound();
      counters().OnLogicalRead(kEntrySize);
      return it->second.value;
    }
  }
  Result<Value> result = base_->Get(key);
  if (result.ok()) counters().OnLogicalRead(kEntrySize);
  return result;
}

Status UpdateAbsorber::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  counters().OnRangeQuery();
  // Ranges cannot use the filter (it is orderless): merge base + delta.
  std::vector<Entry> base_hits;
  Status s = base_->Scan(lo, hi, &base_hits);
  if (!s.ok()) return s;
  own_.OnRead(DataClass::kAux,
              static_cast<uint64_t>(delta_.size()) * kDeltaRecordSize);
  std::vector<Entry> merged;
  merged.reserve(base_hits.size());
  std::unordered_map<Key, const DeltaRecord*> pending;
  for (const auto& [key, record] : delta_) {
    if (key >= lo && key <= hi) pending[key] = &record;
  }
  for (const Entry& e : base_hits) {
    auto it = pending.find(e.key);
    if (it == pending.end()) {
      merged.push_back(e);
    } else if (!it->second->tombstone) {
      merged.push_back(Entry{e.key, it->second->value});
      pending.erase(it);
    } else {
      pending.erase(it);
    }
  }
  for (const auto& [key, record] : pending) {
    if (!record->tombstone) merged.push_back(Entry{key, record->value});
  }
  std::sort(merged.begin(), merged.end());
  counters().OnLogicalRead(static_cast<uint64_t>(merged.size()) *
                           kEntrySize);
  out->insert(out->end(), merged.begin(), merged.end());
  return Status::OK();
}

Status UpdateAbsorber::BulkLoad(std::span<const Entry> entries) {
  if (!delta_.empty() || size() != 0) {
    return Status::InvalidArgument("BulkLoad requires an empty structure");
  }
  counters().OnLogicalWrite(static_cast<uint64_t>(entries.size()) *
                            kEntrySize);
  for (const Entry& e : entries) live_keys_.insert(e.key);
  return base_->BulkLoad(entries);
}

Status UpdateAbsorber::Flush() {
  Status s = Drain();
  if (!s.ok()) return s;
  return base_->Flush();
}

size_t UpdateAbsorber::size() const { return live_keys_.size(); }

CounterSnapshot UpdateAbsorber::stats() const {
  CounterSnapshot snap = base_->stats();
  snap += own_.snapshot();
  const CounterSnapshot& wrapper = AccessMethod::stats();
  snap.logical_bytes_read = wrapper.logical_bytes_read;
  snap.logical_bytes_written = wrapper.logical_bytes_written;
  snap.point_queries = wrapper.point_queries;
  snap.range_queries = wrapper.range_queries;
  snap.inserts = wrapper.inserts;
  snap.updates = wrapper.updates;
  snap.deletes = wrapper.deletes;
  return snap;
}

void UpdateAbsorber::ResetStats() {
  AccessMethod::ResetStats();
  base_->ResetStats();
  own_.ResetTraffic();
}

}  // namespace rum

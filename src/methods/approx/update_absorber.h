#ifndef RUMLAB_METHODS_APPROX_UPDATE_ABSORBER_H_
#define RUMLAB_METHODS_APPROX_UPDATE_ABSORBER_H_

#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/access_method.h"
#include "core/options.h"
#include "methods/sketch/quotient_filter.h"

namespace rum {

/// Section 5's "approximate (tree) indexing that supports updates with low
/// read performance overhead, by absorbing them in updatable probabilistic
/// data structures (like quotient filters)" -- as a generic wrapper.
///
/// Updates land in an in-memory delta buffer instead of the (expensive to
/// update) base structure. A quotient filter mirrors the delta's key set,
/// so point reads of keys with no pending update pay only a couple of
/// filter probes before going straight to the base -- the read overhead of
/// supporting updates stays near zero. The filter must be *updatable*
/// because the delta drains on every flush: a Bloom filter would rot, a
/// quotient filter deletes cleanly.
///
/// The wrapper composes with any base AccessMethod; flushes apply the
/// buffered operations in key order once `absorber.delta_entries`
/// accumulate (or on Flush()).
class UpdateAbsorber : public AccessMethod {
 public:
  /// Wraps `base` (owned). `options.absorber` sizes the delta and filter.
  UpdateAbsorber(std::unique_ptr<AccessMethod> base, const Options& options);

  ~UpdateAbsorber() override;

  std::string_view name() const override { return "update-absorber"; }
  /// The wrapped structure's name.
  std::string_view base_name() const { return base_->name(); }

  Status Insert(Key key, Value value) override;
  Status Update(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  Status BulkLoad(std::span<const Entry> entries) override;
  Status Flush() override;
  size_t size() const override;

  CounterSnapshot stats() const override;
  void ResetStats() override;

  size_t pending_updates() const { return delta_.size(); }
  const QuotientFilter& filter() const { return *filter_; }

 private:
  struct DeltaRecord {
    Value value;
    bool tombstone;
  };

  /// Approximate in-memory footprint of one buffered record (key, value,
  /// flag, hash-map overhead).
  static constexpr uint64_t kDeltaRecordSize = 32;

  /// Buffers one operation, flushing if the delta is full.
  Status Absorb(Key key, Value value, bool tombstone);
  /// Applies every buffered operation to the base and drains the filter.
  Status Drain();
  void RepublishDeltaSpace();

  Options options_;
  std::unique_ptr<AccessMethod> base_;
  RumCounters own_;  // Delta + filter traffic (filter charges into this).
  std::unique_ptr<QuotientFilter> filter_;
  std::unordered_map<Key, DeltaRecord> delta_;
  // Simulator-side bookkeeping (unaccounted): every mutation flows through
  // this wrapper, so the live-key set is tracked exactly for size().
  std::unordered_set<Key> live_keys_;
};

}  // namespace rum

#endif  // RUMLAB_METHODS_APPROX_UPDATE_ABSORBER_H_

#ifndef RUMLAB_METHODS_BTREE_BTREE_H_
#define RUMLAB_METHODS_BTREE_BTREE_H_

#include <memory>
#include <vector>

#include "core/access_method.h"
#include "core/options.h"
#include "methods/btree/btree_node.h"
#include "storage/block_device.h"

namespace rum {

/// A paged, clustered B+-Tree -- the read-optimized workhorse of the
/// paper's Figure 1 and Table 1.
///
/// Leaves hold the entries (base data) chained for range scans; inner nodes
/// hold separators (auxiliary data). Point and range queries descend
/// O(log_B N) pages; inserts split on overflow; deletes drop empty nodes.
///
/// Tunable knobs (the Section-5 "B+-Trees that have dynamically tuned
/// parameters"): `btree.node_size` (node = device block, so the tree built
/// standalone sizes its own device accordingly), `btree.bulk_fill` (leaf
/// occupancy after bulk load; <1 leaves split slack for future inserts,
/// trading MO for UO), and `btree.split_fraction` (how splits distribute
/// entries, tuning for sequential vs random insert patterns).
class BTree : public AccessMethod {
 public:
  explicit BTree(const Options& options);
  BTree(const Options& options, Device* device);

  ~BTree() override;

  std::string_view name() const override { return "btree"; }

  Status Insert(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  Status BulkLoad(std::span<const Entry> entries) override;
  size_t size() const override { return count_; }

  /// Tree height in levels (0 = empty, 1 = root is a leaf).
  size_t height() const { return height_; }
  size_t node_size() const { return node_size_; }

 private:
  struct PathStep {
    PageId page;
    size_t child_index;  // Which child we descended into.
  };

  Status LoadLeaf(PageId page, BTreeLeaf* out);
  Status StoreLeaf(PageId page, const BTreeLeaf& leaf);
  Status LoadInner(PageId page, BTreeInner* out);
  Status StoreInner(PageId page, const BTreeInner& inner);

  /// Descends from the root to the leaf that should hold `key`, recording
  /// the inner-node path. The tree must be non-empty.
  Status DescendToLeaf(Key key, std::vector<PathStep>* path, PageId* leaf_id,
                       BTreeLeaf* leaf);

  /// Inserts (separator, new_child) into the parent chain after a split of
  /// the child at path position `level`; cascades splits upward.
  Status InsertIntoParent(std::vector<PathStep>& path, size_t level,
                          Key separator, PageId new_child);

  /// Removes the child at path position `level`'s recorded index from its
  /// parent; cascades when a parent empties.
  Status RemoveFromParent(std::vector<PathStep>& path, size_t level);

  std::unique_ptr<BlockDevice> owned_device_;
  Device* device_;
  bool pinned_pages_;
  size_t node_size_;
  size_t leaf_capacity_;
  size_t inner_capacity_;
  double bulk_fill_;
  double split_fraction_;
  PageId root_ = kInvalidPageId;
  size_t height_ = 0;
  size_t count_ = 0;
};

}  // namespace rum

#endif  // RUMLAB_METHODS_BTREE_BTREE_H_

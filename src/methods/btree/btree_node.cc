#include "methods/btree/btree_node.h"

#include <algorithm>
#include <cstring>

#include "storage/page_format.h"

namespace rum {

namespace {
constexpr size_t kLeafHeader = 1 + 4 + 4;
constexpr size_t kInnerHeader = 1 + 4;
constexpr uint8_t kLeafType = 0;
constexpr uint8_t kInnerType = 1;
}  // namespace

size_t BTreeLeaf::CapacityFor(size_t node_size) {
  return (node_size - kLeafHeader) / kEntrySize;
}

Status BTreeLeaf::EncodeTo(size_t node_size, std::vector<uint8_t>* out) const {
  if (entries.size() > CapacityFor(node_size)) {
    return Status::ResourceExhausted("leaf overflow");
  }
  out->resize(node_size);
  return EncodeInto(*out);
}

Status BTreeLeaf::EncodeInto(std::span<uint8_t> block) const {
  if (entries.size() > CapacityFor(block.size())) {
    return Status::ResourceExhausted("leaf overflow");
  }
  std::memset(block.data(), 0, block.size());
  block[0] = kLeafType;
  EncodeU32(static_cast<uint32_t>(entries.size()), block.data() + 1);
  EncodeU32(next, block.data() + 5);
  uint8_t* cursor = block.data() + kLeafHeader;
  for (const Entry& e : entries) {
    EncodeU64(e.key, cursor);
    EncodeU64(e.value, cursor + 8);
    cursor += kEntrySize;
  }
  return Status::OK();
}

Status BTreeLeaf::FindInBlock(std::span<const uint8_t> block, Key key,
                              Value* value, bool* found) {
  if (block.size() < kLeafHeader || block[0] != kLeafType) {
    return Status::Corruption("not a leaf block");
  }
  uint32_t n = DecodeU32(block.data() + 1);
  if (kLeafHeader + static_cast<size_t>(n) * kEntrySize > block.size()) {
    return Status::Corruption("leaf count exceeds block");
  }
  const uint8_t* base = block.data() + kLeafHeader;
  size_t lo = 0;
  size_t hi = n;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (DecodeU64(base + mid * kEntrySize) < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo < n && DecodeU64(base + lo * kEntrySize) == key) {
    *value = DecodeU64(base + lo * kEntrySize + 8);
    *found = true;
  } else {
    *found = false;
  }
  return Status::OK();
}

Status BTreeLeaf::DecodeFrom(std::span<const uint8_t> block, BTreeLeaf* out) {
  if (block.size() < kLeafHeader || block[0] != kLeafType) {
    return Status::Corruption("not a leaf block");
  }
  uint32_t n = DecodeU32(block.data() + 1);
  if (kLeafHeader + static_cast<size_t>(n) * kEntrySize > block.size()) {
    return Status::Corruption("leaf count exceeds block");
  }
  out->next = DecodeU32(block.data() + 5);
  out->entries.clear();
  out->entries.reserve(n);
  const uint8_t* cursor = block.data() + kLeafHeader;
  for (uint32_t i = 0; i < n; ++i) {
    out->entries.push_back(Entry{DecodeU64(cursor), DecodeU64(cursor + 8)});
    cursor += kEntrySize;
  }
  return Status::OK();
}

size_t BTreeInner::CapacityFor(size_t node_size) {
  // n separators need n*8 + (n+1)*4 bytes after the header.
  return (node_size - kInnerHeader - 4) / 12;
}

Status BTreeInner::EncodeTo(size_t node_size,
                            std::vector<uint8_t>* out) const {
  if (keys.size() > CapacityFor(node_size) ||
      children.size() != keys.size() + 1) {
    return Status::ResourceExhausted("inner overflow or malformed");
  }
  out->resize(node_size);
  return EncodeInto(*out);
}

Status BTreeInner::EncodeInto(std::span<uint8_t> block) const {
  if (keys.size() > CapacityFor(block.size()) ||
      children.size() != keys.size() + 1) {
    return Status::ResourceExhausted("inner overflow or malformed");
  }
  std::memset(block.data(), 0, block.size());
  block[0] = kInnerType;
  EncodeU32(static_cast<uint32_t>(keys.size()), block.data() + 1);
  uint8_t* cursor = block.data() + kInnerHeader;
  for (PageId child : children) {
    EncodeU32(child, cursor);
    cursor += 4;
  }
  for (Key key : keys) {
    EncodeU64(key, cursor);
    cursor += 8;
  }
  return Status::OK();
}

Status BTreeInner::ChildForKey(std::span<const uint8_t> block, Key key,
                               PageId* child, size_t* index) {
  if (block.size() < kInnerHeader || block[0] != kInnerType) {
    return Status::Corruption("not an inner block");
  }
  uint32_t n = DecodeU32(block.data() + 1);
  if (kInnerHeader + (static_cast<size_t>(n) + 1) * 4 +
          static_cast<size_t>(n) * 8 >
      block.size()) {
    return Status::Corruption("inner count exceeds block");
  }
  // upper_bound over the separators, decoded lazily in place.
  const uint8_t* keys_base = block.data() + kInnerHeader + (n + 1) * 4;
  size_t lo = 0;
  size_t hi = n;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (DecodeU64(keys_base + mid * 8) <= key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  *child = DecodeU32(block.data() + kInnerHeader + lo * 4);
  if (index != nullptr) *index = lo;
  return Status::OK();
}

Status BTreeInner::DecodeFrom(std::span<const uint8_t> block,
                              BTreeInner* out) {
  if (block.size() < kInnerHeader || block[0] != kInnerType) {
    return Status::Corruption("not an inner block");
  }
  uint32_t n = DecodeU32(block.data() + 1);
  if (kInnerHeader + (static_cast<size_t>(n) + 1) * 4 +
          static_cast<size_t>(n) * 8 >
      block.size()) {
    return Status::Corruption("inner count exceeds block");
  }
  out->children.clear();
  out->children.reserve(n + 1);
  out->keys.clear();
  out->keys.reserve(n);
  const uint8_t* cursor = block.data() + kInnerHeader;
  for (uint32_t i = 0; i <= n; ++i) {
    out->children.push_back(DecodeU32(cursor));
    cursor += 4;
  }
  for (uint32_t i = 0; i < n; ++i) {
    out->keys.push_back(DecodeU64(cursor));
    cursor += 8;
  }
  return Status::OK();
}

size_t BTreeInner::ChildIndexFor(Key key) const {
  // Separator i is the smallest key of child i+1.
  auto it = std::upper_bound(keys.begin(), keys.end(), key);
  return static_cast<size_t>(it - keys.begin());
}

bool IsLeafBlock(std::span<const uint8_t> block) {
  return !block.empty() && block[0] == kLeafType;
}

}  // namespace rum

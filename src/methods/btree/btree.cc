#include "methods/btree/btree.h"

#include <algorithm>
#include <cassert>

namespace rum {

namespace {
size_t EffectiveNodeSize(const Options& options) {
  return options.btree.node_size != 0 ? options.btree.node_size
                                      : options.block_size;
}
}  // namespace

BTree::BTree(const Options& options)
    : owned_device_(std::make_unique<BlockDevice>(EffectiveNodeSize(options),
                                                  &counters())),
      device_(owned_device_.get()),
      pinned_pages_(options.storage.pinned_pages),
      node_size_(EffectiveNodeSize(options)),
      leaf_capacity_(BTreeLeaf::CapacityFor(node_size_)),
      inner_capacity_(BTreeInner::CapacityFor(node_size_)),
      bulk_fill_(options.btree.bulk_fill),
      split_fraction_(options.btree.split_fraction) {
  assert(leaf_capacity_ >= 2 && inner_capacity_ >= 2);
}

BTree::BTree(const Options& options, Device* device)
    : device_(device),
      pinned_pages_(options.storage.pinned_pages),
      node_size_(device->block_size()),
      leaf_capacity_(BTreeLeaf::CapacityFor(node_size_)),
      inner_capacity_(BTreeInner::CapacityFor(node_size_)),
      bulk_fill_(options.btree.bulk_fill),
      split_fraction_(options.btree.split_fraction) {
  assert(leaf_capacity_ >= 2 && inner_capacity_ >= 2);
}

BTree::~BTree() = default;

Status BTree::LoadLeaf(PageId page, BTreeLeaf* out) {
  if (pinned_pages_) {
    PageReadGuard guard;
    Status s = device_->PinForRead(page, &guard);
    if (!s.ok()) return s;
    return BTreeLeaf::DecodeFrom(guard.bytes(), out);
  }
  std::vector<uint8_t> block;
  Status s = device_->Read(page, &block);
  if (!s.ok()) return s;
  return BTreeLeaf::DecodeFrom(block, out);
}

Status BTree::StoreLeaf(PageId page, const BTreeLeaf& leaf) {
  if (pinned_pages_) {
    PageWriteGuard guard;
    Status s = device_->PinForWrite(page, &guard);
    if (!s.ok()) return s;
    s = leaf.EncodeInto(guard.bytes());
    if (!s.ok()) return s;  // Overflow is detected before any byte moves.
    guard.MarkDirty();
    return guard.Release();
  }
  std::vector<uint8_t> block;
  Status s = leaf.EncodeTo(node_size_, &block);
  if (!s.ok()) return s;
  return device_->Write(page, block);
}

Status BTree::LoadInner(PageId page, BTreeInner* out) {
  if (pinned_pages_) {
    PageReadGuard guard;
    Status s = device_->PinForRead(page, &guard);
    if (!s.ok()) return s;
    return BTreeInner::DecodeFrom(guard.bytes(), out);
  }
  std::vector<uint8_t> block;
  Status s = device_->Read(page, &block);
  if (!s.ok()) return s;
  return BTreeInner::DecodeFrom(block, out);
}

Status BTree::StoreInner(PageId page, const BTreeInner& inner) {
  if (pinned_pages_) {
    PageWriteGuard guard;
    Status s = device_->PinForWrite(page, &guard);
    if (!s.ok()) return s;
    s = inner.EncodeInto(guard.bytes());
    if (!s.ok()) return s;
    guard.MarkDirty();
    return guard.Release();
  }
  std::vector<uint8_t> block;
  Status s = inner.EncodeTo(node_size_, &block);
  if (!s.ok()) return s;
  return device_->Write(page, block);
}

Status BTree::DescendToLeaf(Key key, std::vector<PathStep>* path,
                            PageId* leaf_id, BTreeLeaf* leaf) {
  assert(root_ != kInvalidPageId);
  PageId page = root_;
  for (size_t level = height_; level > 1; --level) {
    if (pinned_pages_) {
      // Descend straight off the pinned inner block: no materialization.
      PageReadGuard guard;
      Status s = device_->PinForRead(page, &guard);
      if (!s.ok()) return s;
      PageId child_page;
      size_t child;
      s = BTreeInner::ChildForKey(guard.bytes(), key, &child_page, &child);
      if (!s.ok()) return s;
      if (path != nullptr) path->push_back(PathStep{page, child});
      page = child_page;
      continue;
    }
    BTreeInner inner;
    Status s = LoadInner(page, &inner);
    if (!s.ok()) return s;
    size_t child = inner.ChildIndexFor(key);
    if (path != nullptr) path->push_back(PathStep{page, child});
    page = inner.children[child];
  }
  *leaf_id = page;
  return LoadLeaf(page, leaf);
}

Status BTree::InsertIntoParent(std::vector<PathStep>& path, size_t level,
                               Key separator, PageId new_child) {
  if (level == 0) {
    // Split reached the root: grow the tree by one level.
    BTreeInner new_root;
    new_root.keys.push_back(separator);
    new_root.children.push_back(root_);
    new_root.children.push_back(new_child);
    PageId page;
    Status s = device_->Allocate(DataClass::kAux, &page);
    if (!s.ok()) return s;
    s = StoreInner(page, new_root);
    if (!s.ok()) return s;
    root_ = page;
    ++height_;
    return Status::OK();
  }
  PathStep& step = path[level - 1];
  BTreeInner inner;
  Status s = LoadInner(step.page, &inner);
  if (!s.ok()) return s;
  inner.keys.insert(
      inner.keys.begin() + static_cast<ptrdiff_t>(step.child_index),
      separator);
  inner.children.insert(
      inner.children.begin() + static_cast<ptrdiff_t>(step.child_index) + 1,
      new_child);
  if (inner.keys.size() <= inner_capacity_) {
    return StoreInner(step.page, inner);
  }
  // Split the inner node at the middle separator, which moves up.
  size_t mid = inner.keys.size() / 2;
  Key up_key = inner.keys[mid];
  BTreeInner right;
  right.keys.assign(inner.keys.begin() + static_cast<ptrdiff_t>(mid) + 1,
                    inner.keys.end());
  right.children.assign(
      inner.children.begin() + static_cast<ptrdiff_t>(mid) + 1,
      inner.children.end());
  inner.keys.resize(mid);
  inner.children.resize(mid + 1);
  PageId right_page;
  s = device_->Allocate(DataClass::kAux, &right_page);
  if (!s.ok()) return s;
  s = StoreInner(step.page, inner);
  if (!s.ok()) return s;
  s = StoreInner(right_page, right);
  if (!s.ok()) return s;
  return InsertIntoParent(path, level - 1, up_key, right_page);
}

Status BTree::Insert(Key key, Value value) {
  counters().OnInsert();
  counters().OnLogicalWrite(kEntrySize);
  if (root_ == kInvalidPageId) {
    BTreeLeaf leaf;
    leaf.entries.push_back(Entry{key, value});
    Status alloc = device_->Allocate(DataClass::kBase, &root_);
    if (!alloc.ok()) return alloc;
    height_ = 1;
    ++count_;
    return StoreLeaf(root_, leaf);
  }
  std::vector<PathStep> path;
  PageId leaf_id;
  BTreeLeaf leaf;
  Status s = DescendToLeaf(key, &path, &leaf_id, &leaf);
  if (!s.ok()) return s;

  auto it = std::lower_bound(
      leaf.entries.begin(), leaf.entries.end(), key,
      [](const Entry& e, Key k) { return e.key < k; });
  if (it != leaf.entries.end() && it->key == key) {
    it->value = value;  // Upsert in place.
    return StoreLeaf(leaf_id, leaf);
  }
  leaf.entries.insert(it, Entry{key, value});
  ++count_;
  if (leaf.entries.size() <= leaf_capacity_) {
    return StoreLeaf(leaf_id, leaf);
  }

  // Leaf split: left keeps split_fraction of the entries.
  size_t left_count = std::clamp<size_t>(
      static_cast<size_t>(static_cast<double>(leaf.entries.size()) *
                          split_fraction_),
      1, leaf.entries.size() - 1);
  BTreeLeaf right;
  right.entries.assign(
      leaf.entries.begin() + static_cast<ptrdiff_t>(left_count),
      leaf.entries.end());
  leaf.entries.resize(left_count);
  PageId right_page;
  s = device_->Allocate(DataClass::kBase, &right_page);
  if (!s.ok()) return s;
  right.next = leaf.next;
  leaf.next = right_page;
  Key separator = right.entries.front().key;
  s = StoreLeaf(leaf_id, leaf);
  if (!s.ok()) return s;
  s = StoreLeaf(right_page, right);
  if (!s.ok()) return s;
  return InsertIntoParent(path, path.size(), separator, right_page);
}

Status BTree::RemoveFromParent(std::vector<PathStep>& path, size_t level) {
  if (level == 0) {
    // The root itself vanished (its page was freed by the caller); the
    // tree is empty.
    root_ = kInvalidPageId;
    height_ = 0;
    return Status::OK();
  }
  PathStep& step = path[level - 1];
  BTreeInner inner;
  Status s = LoadInner(step.page, &inner);
  if (!s.ok()) return s;
  size_t ci = step.child_index;
  inner.children.erase(inner.children.begin() + static_cast<ptrdiff_t>(ci));
  if (!inner.keys.empty()) {
    // Drop the separator adjacent to the removed child.
    size_t ki = ci == 0 ? 0 : ci - 1;
    inner.keys.erase(inner.keys.begin() + static_cast<ptrdiff_t>(ki));
  }
  if (inner.children.empty()) {
    s = device_->Free(step.page);
    if (!s.ok()) return s;
    return RemoveFromParent(path, level - 1);
  }
  if (inner.children.size() == 1 && level == 1 && step.page == root_) {
    // Collapse a root with a single child.
    PageId only_child = inner.children[0];
    s = device_->Free(step.page);
    if (!s.ok()) return s;
    root_ = only_child;
    --height_;
    return Status::OK();
  }
  return StoreInner(step.page, inner);
}

Status BTree::Delete(Key key) {
  counters().OnDelete();
  counters().OnLogicalWrite(kEntrySize);
  if (root_ == kInvalidPageId) return Status::OK();
  std::vector<PathStep> path;
  PageId leaf_id;
  BTreeLeaf leaf;
  Status s = DescendToLeaf(key, &path, &leaf_id, &leaf);
  if (!s.ok()) return s;
  auto it = std::lower_bound(
      leaf.entries.begin(), leaf.entries.end(), key,
      [](const Entry& e, Key k) { return e.key < k; });
  if (it == leaf.entries.end() || it->key != key) return Status::OK();
  leaf.entries.erase(it);
  --count_;
  if (!leaf.entries.empty()) {
    return StoreLeaf(leaf_id, leaf);
  }
  // The leaf emptied. Unlink it from the chain by fixing the predecessor...
  // finding the predecessor would cost another descent; instead we leave
  // the empty leaf unlinked lazily: remove it from the parent and let the
  // left sibling's `next` pointer be repaired on its next store. To keep
  // scans correct we must fix the chain now, so locate the left sibling via
  // the parent when one exists.
  if (!path.empty()) {
    PathStep& step = path.back();
    BTreeInner parent;
    s = LoadInner(step.page, &parent);
    if (!s.ok()) return s;
    if (step.child_index > 0) {
      PageId left_id = parent.children[step.child_index - 1];
      // The left sibling of a leaf under the same parent is itself a leaf.
      BTreeLeaf left;
      s = LoadLeaf(left_id, &left);
      if (!s.ok()) return s;
      left.next = leaf.next;
      s = StoreLeaf(left_id, left);
      if (!s.ok()) return s;
    } else {
      // Leftmost child: the previous leaf (if any) lives under another
      // subtree. Walk the chain from the leftmost leaf of the tree.
      // This is rare (leftmost leaf of a parent emptying); a linear chain
      // walk is acceptable and fully accounted.
      PageId prev = kInvalidPageId;
      PageId cur = root_;
      for (size_t level = height_; level > 1; --level) {
        BTreeInner inner;
        s = LoadInner(cur, &inner);
        if (!s.ok()) return s;
        cur = inner.children[0];
      }
      while (cur != leaf_id && cur != kInvalidPageId) {
        BTreeLeaf walk;
        s = LoadLeaf(cur, &walk);
        if (!s.ok()) return s;
        prev = cur;
        cur = walk.next;
      }
      if (cur == leaf_id && prev != kInvalidPageId) {
        BTreeLeaf left;
        s = LoadLeaf(prev, &left);
        if (!s.ok()) return s;
        left.next = leaf.next;
        s = StoreLeaf(prev, left);
        if (!s.ok()) return s;
      }
    }
  }
  s = device_->Free(leaf_id);
  if (!s.ok()) return s;
  return RemoveFromParent(path, path.size());
}

Result<Value> BTree::Get(Key key) {
  counters().OnPointQuery();
  if (root_ == kInvalidPageId) return Status::NotFound();
  if (pinned_pages_) {
    // Fully zero-copy point lookup: binary search each pinned node in
    // place, never materializing a single entry.
    PageId page = root_;
    for (size_t level = height_; level > 1; --level) {
      PageReadGuard guard;
      Status s = device_->PinForRead(page, &guard);
      if (!s.ok()) return s;
      s = BTreeInner::ChildForKey(guard.bytes(), key, &page);
      if (!s.ok()) return s;
    }
    PageReadGuard guard;
    Status s = device_->PinForRead(page, &guard);
    if (!s.ok()) return s;
    Value value;
    bool found = false;
    s = BTreeLeaf::FindInBlock(guard.bytes(), key, &value, &found);
    if (!s.ok()) return s;
    if (!found) return Status::NotFound();
    counters().OnLogicalRead(kEntrySize);
    return value;
  }
  PageId leaf_id;
  BTreeLeaf leaf;
  Status s = DescendToLeaf(key, nullptr, &leaf_id, &leaf);
  if (!s.ok()) return s;
  auto it = std::lower_bound(
      leaf.entries.begin(), leaf.entries.end(), key,
      [](const Entry& e, Key k) { return e.key < k; });
  if (it == leaf.entries.end() || it->key != key) return Status::NotFound();
  counters().OnLogicalRead(kEntrySize);
  return it->value;
}

Status BTree::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  counters().OnRangeQuery();
  if (root_ == kInvalidPageId) return Status::OK();
  PageId leaf_id;
  BTreeLeaf leaf;
  Status s = DescendToLeaf(lo, nullptr, &leaf_id, &leaf);
  if (!s.ok()) return s;
  uint64_t found = 0;
  while (true) {
    for (const Entry& e : leaf.entries) {
      if (e.key > hi) {
        counters().OnLogicalRead(found * kEntrySize);
        return Status::OK();
      }
      if (e.key >= lo) {
        out->push_back(e);
        ++found;
      }
    }
    if (leaf.next == kInvalidPageId) break;
    s = LoadLeaf(leaf.next, &leaf);
    if (!s.ok()) return s;
  }
  counters().OnLogicalRead(found * kEntrySize);
  return Status::OK();
}

Status BTree::BulkLoad(std::span<const Entry> entries) {
  Status s = CheckBulkLoadPreconditions(entries);
  if (!s.ok()) return s;
  if (entries.empty()) return Status::OK();

  size_t per_leaf = std::clamp<size_t>(
      static_cast<size_t>(static_cast<double>(leaf_capacity_) * bulk_fill_),
      1, leaf_capacity_);

  // Build the leaf level. Each leaf's `next` pointer must name its
  // successor, so the previous leaf is held in memory and stored once its
  // successor's page id is known (every leaf is still written exactly once).
  struct ChildRef {
    Key first_key;
    PageId page;
  };
  std::vector<ChildRef> level;
  BTreeLeaf pending;
  PageId pending_page = kInvalidPageId;
  for (size_t i = 0; i < entries.size(); i += per_leaf) {
    size_t end = std::min(i + per_leaf, entries.size());
    BTreeLeaf leaf;
    leaf.entries.assign(entries.begin() + static_cast<ptrdiff_t>(i),
                        entries.begin() + static_cast<ptrdiff_t>(end));
    leaf.next = kInvalidPageId;
    PageId page;
    s = device_->Allocate(DataClass::kBase, &page);
    if (!s.ok()) return s;
    level.push_back(ChildRef{leaf.entries.front().key, page});
    if (pending_page != kInvalidPageId) {
      pending.next = page;
      s = StoreLeaf(pending_page, pending);
      if (!s.ok()) return s;
    }
    pending = std::move(leaf);
    pending_page = page;
  }
  s = StoreLeaf(pending_page, pending);
  if (!s.ok()) return s;
  count_ = entries.size();
  height_ = 1;

  // Build inner levels bottom-up. Nodes take per_inner+1 children; the
  // last node is kept at >= 2 children by borrowing one from its
  // predecessor chunk when needed.
  size_t per_inner = std::clamp<size_t>(
      static_cast<size_t>(static_cast<double>(inner_capacity_) * bulk_fill_),
      2, inner_capacity_);
  while (level.size() > 1) {
    std::vector<ChildRef> next_level;
    size_t i = 0;
    while (i < level.size()) {
      size_t take = std::min(per_inner + 1, level.size() - i);
      if (level.size() - i - take == 1) --take;
      BTreeInner inner;
      for (size_t j = i; j < i + take; ++j) {
        if (j > i) inner.keys.push_back(level[j].first_key);
        inner.children.push_back(level[j].page);
      }
      PageId page;
      s = device_->Allocate(DataClass::kAux, &page);
      if (!s.ok()) return s;
      s = StoreInner(page, inner);
      if (!s.ok()) return s;
      next_level.push_back(ChildRef{level[i].first_key, page});
      i += take;
    }
    level = std::move(next_level);
    ++height_;
  }
  root_ = level[0].page;
  counters().OnLogicalWrite(static_cast<uint64_t>(entries.size()) *
                            kEntrySize);
  return Status::OK();
}

}  // namespace rum

#ifndef RUMLAB_METHODS_BTREE_BTREE_NODE_H_
#define RUMLAB_METHODS_BTREE_BTREE_NODE_H_

#include <cstdint>
#include <span>
#include <vector>

#include "core/status.h"
#include "core/types.h"

namespace rum {

/// Serialized forms of B+-Tree nodes.
///
/// Leaf page layout:
///   [0]     node type (0 = leaf)
///   [1,5)   uint32 entry count
///   [5,9)   uint32 next-leaf page id (kInvalidPageId at the tail)
///   [9,...) count x { uint64 key, uint64 value }
///
/// Inner page layout:
///   [0]     node type (1 = inner)
///   [1,5)   uint32 separator count `n`
///   [5,...) (n+1) x uint32 child page ids, then n x uint64 separator keys
///
/// Child i holds keys < separator i; child n holds the rest (separators are
/// lower bounds of the following child: keys in child i+1 are >= key i).
struct BTreeLeaf {
  std::vector<Entry> entries;  // Sorted by key.
  PageId next = kInvalidPageId;

  /// Max entries in a leaf of `node_size` bytes.
  static size_t CapacityFor(size_t node_size);
  Status EncodeTo(size_t node_size, std::vector<uint8_t>* out) const;
  /// Encodes in place into `block` (e.g. a pinned page view), zero-filling
  /// the remainder.
  Status EncodeInto(std::span<uint8_t> block) const;
  static Status DecodeFrom(std::span<const uint8_t> block, BTreeLeaf* out);

  /// Zero-copy point lookup straight off an encoded leaf block: binary
  /// search without materializing the entries. Sets `*found` and, when
  /// found, `*value`.
  static Status FindInBlock(std::span<const uint8_t> block, Key key,
                            Value* value, bool* found);
};

struct BTreeInner {
  std::vector<Key> keys;         // n separators, sorted.
  std::vector<PageId> children;  // n + 1 children.

  /// Max separators in an inner node of `node_size` bytes.
  static size_t CapacityFor(size_t node_size);
  Status EncodeTo(size_t node_size, std::vector<uint8_t>* out) const;
  /// Encodes in place into `block`, zero-filling the remainder.
  Status EncodeInto(std::span<uint8_t> block) const;
  static Status DecodeFrom(std::span<const uint8_t> block, BTreeInner* out);

  /// Index of the child to descend into for `key`.
  size_t ChildIndexFor(Key key) const;

  /// Zero-copy descent step straight off an encoded inner block: binary
  /// search of the separators without materializing the node. `index`
  /// (optional) receives the child slot taken.
  static Status ChildForKey(std::span<const uint8_t> block, Key key,
                            PageId* child, size_t* index = nullptr);
};

/// Reads the node-type byte without a full decode.
bool IsLeafBlock(std::span<const uint8_t> block);

}  // namespace rum

#endif  // RUMLAB_METHODS_BTREE_BTREE_NODE_H_

#ifndef RUMLAB_METHODS_BTREE_BTREE_NODE_H_
#define RUMLAB_METHODS_BTREE_BTREE_NODE_H_

#include <cstdint>
#include <vector>

#include "core/status.h"
#include "core/types.h"

namespace rum {

/// Serialized forms of B+-Tree nodes.
///
/// Leaf page layout:
///   [0]     node type (0 = leaf)
///   [1,5)   uint32 entry count
///   [5,9)   uint32 next-leaf page id (kInvalidPageId at the tail)
///   [9,...) count x { uint64 key, uint64 value }
///
/// Inner page layout:
///   [0]     node type (1 = inner)
///   [1,5)   uint32 separator count `n`
///   [5,...) (n+1) x uint32 child page ids, then n x uint64 separator keys
///
/// Child i holds keys < separator i; child n holds the rest (separators are
/// lower bounds of the following child: keys in child i+1 are >= key i).
struct BTreeLeaf {
  std::vector<Entry> entries;  // Sorted by key.
  PageId next = kInvalidPageId;

  /// Max entries in a leaf of `node_size` bytes.
  static size_t CapacityFor(size_t node_size);
  Status EncodeTo(size_t node_size, std::vector<uint8_t>* out) const;
  static Status DecodeFrom(const std::vector<uint8_t>& block, BTreeLeaf* out);
};

struct BTreeInner {
  std::vector<Key> keys;         // n separators, sorted.
  std::vector<PageId> children;  // n + 1 children.

  /// Max separators in an inner node of `node_size` bytes.
  static size_t CapacityFor(size_t node_size);
  Status EncodeTo(size_t node_size, std::vector<uint8_t>* out) const;
  static Status DecodeFrom(const std::vector<uint8_t>& block, BTreeInner* out);

  /// Index of the child to descend into for `key`.
  size_t ChildIndexFor(Key key) const;
};

/// Reads the node-type byte without a full decode.
bool IsLeafBlock(const std::vector<uint8_t>& block);

}  // namespace rum

#endif  // RUMLAB_METHODS_BTREE_BTREE_NODE_H_

#include "methods/pbt/pbt.h"

#include <algorithm>
#include <unordered_map>

namespace rum {

PartitionedBTree::PartitionedBTree(const Options& options)
    : options_(options) {}

PartitionedBTree::~PartitionedBTree() = default;

BTree* PartitionedBTree::ActivePartition() {
  if (partitions_.empty() ||
      partitions_.back()->size() >= options_.pbt.partition_entries) {
    partitions_.push_back(std::make_unique<BTree>(options_));
  }
  return partitions_.back().get();
}

Status PartitionedBTree::MergeAll() {
  // Gather newest-first; the first version of a key wins.
  std::unordered_map<Key, Value> newest;
  for (size_t i = partitions_.size(); i-- > 0;) {
    std::vector<Entry> all;
    Status s = partitions_[i]->Scan(kMinKey, kMaxKey, &all);
    if (!s.ok()) return s;
    for (const Entry& e : all) {
      newest.emplace(e.key, e.value);
    }
  }
  std::vector<Entry> merged;
  merged.reserve(newest.size());
  for (const auto& [k, v] : newest) {
    merged.push_back(Entry{k, v});
  }
  std::sort(merged.begin(), merged.end());

  for (const auto& partition : partitions_) {
    CounterSnapshot snap = partition->stats();
    snap.space_base = 0;  // Space dies with the partition.
    snap.space_aux = 0;
    retired_ += snap;
  }
  partitions_.clear();
  auto fresh = std::make_unique<BTree>(options_);
  Status s = fresh->BulkLoad(merged);
  if (!s.ok()) return s;
  partitions_.push_back(std::move(fresh));
  ++merges_;
  return Status::OK();
}

Status PartitionedBTree::Insert(Key key, Value value) {
  counters().OnInsert();
  counters().OnLogicalWrite(kEntrySize);
  live_keys_.insert(key);
  Status s = ActivePartition()->Insert(key, value);
  if (!s.ok()) return s;
  if (partitions_.size() > options_.pbt.max_partitions) {
    return MergeAll();
  }
  return Status::OK();
}

Status PartitionedBTree::Delete(Key key) {
  counters().OnDelete();
  counters().OnLogicalWrite(kEntrySize);
  live_keys_.erase(key);
  // Eager delete: the key vanishes from every partition (no tombstones).
  for (auto& partition : partitions_) {
    Status s = partition->Delete(key);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

Result<Value> PartitionedBTree::Get(Key key) {
  counters().OnPointQuery();
  for (size_t i = partitions_.size(); i-- > 0;) {
    Result<Value> result = partitions_[i]->Get(key);
    if (result.ok()) {
      counters().OnLogicalRead(kEntrySize);
      return result;
    }
    if (!result.status().IsNotFound()) return result;
  }
  return Status::NotFound();
}

Status PartitionedBTree::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  if (lo > hi) return Status::InvalidArgument("lo > hi");
  counters().OnRangeQuery();
  std::unordered_map<Key, Value> newest;
  for (size_t i = partitions_.size(); i-- > 0;) {
    std::vector<Entry> part;
    Status s = partitions_[i]->Scan(lo, hi, &part);
    if (!s.ok()) return s;
    for (const Entry& e : part) {
      newest.emplace(e.key, e.value);
    }
  }
  std::vector<Entry> merged;
  merged.reserve(newest.size());
  for (const auto& [k, v] : newest) merged.push_back(Entry{k, v});
  std::sort(merged.begin(), merged.end());
  counters().OnLogicalRead(static_cast<uint64_t>(merged.size()) *
                           kEntrySize);
  out->insert(out->end(), merged.begin(), merged.end());
  return Status::OK();
}

Status PartitionedBTree::BulkLoad(std::span<const Entry> entries) {
  if (size() != 0) {
    return Status::InvalidArgument("BulkLoad requires an empty structure");
  }
  auto fresh = std::make_unique<BTree>(options_);
  Status s = fresh->BulkLoad(entries);
  if (!s.ok()) return s;
  partitions_.clear();
  partitions_.push_back(std::move(fresh));
  for (const Entry& e : entries) live_keys_.insert(e.key);
  counters().OnLogicalWrite(static_cast<uint64_t>(entries.size()) *
                            kEntrySize);
  return Status::OK();
}

Status PartitionedBTree::Flush() { return Status::OK(); }

CounterSnapshot PartitionedBTree::stats() const {
  CounterSnapshot snap = retired_;
  for (const auto& partition : partitions_) {
    snap += partition->stats();
  }
  const CounterSnapshot& wrapper = AccessMethod::stats();
  snap.logical_bytes_read = wrapper.logical_bytes_read;
  snap.logical_bytes_written = wrapper.logical_bytes_written;
  snap.point_queries = wrapper.point_queries;
  snap.range_queries = wrapper.range_queries;
  snap.inserts = wrapper.inserts;
  snap.updates = wrapper.updates;
  snap.deletes = wrapper.deletes;
  // Live entries are base data; shadowed versions in older partitions and
  // all tree structure are overhead.
  uint64_t total = snap.total_space();
  uint64_t base =
      std::min(static_cast<uint64_t>(live_keys_.size()) * kEntrySize, total);
  snap.space_base = base;
  snap.space_aux = total - base;
  return snap;
}

void PartitionedBTree::ResetStats() {
  AccessMethod::ResetStats();
  for (auto& partition : partitions_) {
    partition->ResetStats();
  }
  retired_ = CounterSnapshot();
}

}  // namespace rum

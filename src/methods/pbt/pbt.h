#ifndef RUMLAB_METHODS_PBT_PBT_H_
#define RUMLAB_METHODS_PBT_PBT_H_

#include <memory>
#include <unordered_set>
#include <vector>

#include "core/access_method.h"
#include "core/options.h"
#include "methods/btree/btree.h"

namespace rum {

/// The Partitioned B-tree (Graefe, CIDR 2003 -- paper reference [21]), one
/// of Figure 1's write-optimized differential structures.
///
/// Instead of inserting into one big tree (random leaf rewrites all over
/// the keyspace), writes fill a small *active partition* -- its working
/// set stays tiny, so per-insert page traffic is low -- which is sealed at
/// `pbt.partition_entries` and a fresh one opened. Reads probe partitions
/// newest-first (the newest version of a key shadows older partitions);
/// once `pbt.max_partitions` accumulate, all partitions merge into one
/// tree, reclaiming shadowed versions.
///
/// The structure interpolates between a B-tree (1 partition) and a
/// tiered-LSM-like shape (many partitions): the partition count is the
/// RUM dial.
class PartitionedBTree : public AccessMethod {
 public:
  explicit PartitionedBTree(const Options& options);
  ~PartitionedBTree() override;

  std::string_view name() const override { return "pbt"; }

  Status Insert(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  Status BulkLoad(std::span<const Entry> entries) override;
  Status Flush() override;
  size_t size() const override { return live_keys_.size(); }

  CounterSnapshot stats() const override;
  void ResetStats() override;

  size_t partition_count() const { return partitions_.size(); }
  uint64_t merges() const { return merges_; }

 private:
  /// Newest partition (the write target), opening one if needed.
  BTree* ActivePartition();
  /// Merges every partition into a single bulk-loaded tree.
  Status MergeAll();

  Options options_;
  // Oldest first; the last partition is the active one.
  std::vector<std::unique_ptr<BTree>> partitions_;
  CounterSnapshot retired_;  // Traffic of merged-away partitions.
  uint64_t merges_ = 0;
  // Simulator-side bookkeeping (unaccounted): exact live-key set.
  std::unordered_set<Key> live_keys_;
};

}  // namespace rum

#endif  // RUMLAB_METHODS_PBT_PBT_H_

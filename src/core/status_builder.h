#ifndef RUMLAB_CORE_STATUS_BUILDER_H_
#define RUMLAB_CORE_STATUS_BUILDER_H_

#include <string>
#include <string_view>
#include <utility>

#include "core/counters.h"
#include "core/status.h"
#include "core/types.h"

namespace rum {

/// Fluent builder attaching device context (operation, page, data class) to
/// an error Status, so a fault surfacing several layers above its origin
/// still names the op and page that failed:
///
///   return StatusBuilder(Code::kIOError, "injected device fault")
///       .Op("Write").Page(page).Class(cls);
///   // -> IOError: injected device fault (op=Write page=12 class=base)
///
/// Wrapping an existing status keeps its code and message and appends the
/// new context, so nested annotations compose:
///
///   return StatusBuilder(s).Op("EvictDownTo write-back").Page(victim);
///
/// Used at every kIOError/kCorruption construction site in the storage
/// stack; context is plain message text, so Status stays one code + one
/// string and the success path still allocates nothing.
class StatusBuilder {
 public:
  StatusBuilder(Code code, std::string_view message)
      : code_(code), message_(message) {}

  /// Wraps an existing (non-OK) status to append more context.
  explicit StatusBuilder(const Status& status)
      : code_(status.code()), message_(status.message()) {}

  /// Names the device operation that failed ("Read", "Write", "PinForRead",
  /// "Allocate", "FlushAll", "EvictDownTo write-back", ...).
  StatusBuilder& Op(std::string_view op) {
    AppendField("op", op);
    return *this;
  }

  /// Names the page the operation targeted.
  StatusBuilder& Page(PageId page) {
    AppendField("page", std::to_string(page));
    return *this;
  }

  /// Names the data class of the page (base vs auxiliary).
  StatusBuilder& Class(DataClass cls) {
    AppendField("class", cls == DataClass::kBase ? "base" : "aux");
    return *this;
  }

  /// Appends a free-form detail field.
  StatusBuilder& Detail(std::string_view detail) {
    AppendField("detail", detail);
    return *this;
  }

  /// Finalizes the status, closing any open context group.
  Status Build() const {
    std::string message = message_;
    if (has_context_) message += ")";
    return Status(code_, std::move(message));
  }

  /// Implicit conversion so `return StatusBuilder(...).Op(...).Page(p);`
  /// works anywhere a Status is expected.
  operator Status() const { return Build(); }  // NOLINT(google-explicit-*)

 private:
  void AppendField(std::string_view key, std::string_view value) {
    message_ += has_context_ ? " " : " (";
    has_context_ = true;
    message_ += key;
    message_ += "=";
    message_ += value;
  }

  Code code_;
  std::string message_;
  bool has_context_ = false;
};

}  // namespace rum

#endif  // RUMLAB_CORE_STATUS_BUILDER_H_

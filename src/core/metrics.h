#ifndef RUMLAB_CORE_METRICS_H_
#define RUMLAB_CORE_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rum {

/// A log-bucketed latency/size histogram (HDR-style): values bucket by their
/// power of two, with `kSubBuckets` linear sub-buckets per power, so relative
/// error is bounded by 1/kSubBuckets across the whole 64-bit range while the
/// footprint stays a few KB. Record() is a handful of bit operations -- cheap
/// enough for a per-operation hot loop.
///
/// Threading: a histogram instance is single-writer (one worker records into
/// its own copy); Merge() combines per-worker histograms after a
/// happens-before edge (thread join), exactly like RumCounters shards.
class LatencyHistogram {
 public:
  static constexpr size_t kSubBits = 4;
  static constexpr size_t kSubBuckets = size_t{1} << kSubBits;  // 16
  /// Buckets 0..kSubBuckets-1 are exact; each higher power of two adds
  /// kSubBuckets linear sub-buckets: (64 - kSubBits) * 16 + 16 slots total.
  static constexpr size_t kBucketCount = (64 - kSubBits + 1) * kSubBuckets;

  /// Records one value (nanoseconds, bytes, ... any uint64 measure).
  void Record(uint64_t value) {
    ++buckets_[BucketIndex(value)];
    ++count_;
    sum_ += value;
    if (value > max_) max_ = value;
    if (count_ == 1 || value < min_) min_ = value;
  }

  /// Folds another histogram into this one (exact: buckets add).
  void Merge(const LatencyHistogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Value at quantile `q` in [0, 1]: the lower bound of the bucket holding
  /// the q-th sample, so results are deterministic and never overstate.
  uint64_t Percentile(double q) const;

  /// The p999 tail (Percentile(0.999)): the quantile SLO guards watch.
  /// p99 hides one-in-a-thousand stalls (a compaction, a retry storm); at
  /// millions of requests those are every-second events.
  uint64_t p999() const { return Percentile(0.999); }

  /// Number of recorded samples whose bucket lower bound is <= `value` --
  /// i.e. samples that met a `value`-shaped SLO, up to bucket granularity
  /// (relative error bounded by 1/kSubBuckets, never undercounting a sample
  /// whose true value met the SLO). Deterministic.
  uint64_t CountAtOrBelow(uint64_t value) const;

  /// {"count":N,"mean":...,"min":...,"p50":...,"p95":...,"p99":...,
  ///  "p999":...,"max":...}
  std::string ToJson() const;

  /// Maps a value to its bucket (exposed for tests).
  static size_t BucketIndex(uint64_t value) {
    if (value < kSubBuckets) return static_cast<size_t>(value);
    int exp = std::bit_width(value) - 1;  // >= kSubBits
    size_t group = static_cast<size_t>(exp) - kSubBits + 1;
    size_t sub = static_cast<size_t>(value >> (exp - kSubBits)) - kSubBuckets;
    return group * kSubBuckets + sub;
  }

  /// Smallest value that lands in bucket `index` (exposed for tests).
  static uint64_t BucketLowerBound(size_t index) {
    if (index < kSubBuckets) return index;
    size_t group = index / kSubBuckets;
    size_t sub = index % kSubBuckets;
    return (kSubBuckets + sub) << (group - 1);
  }

 private:
  uint64_t buckets_[kBucketCount] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
};

/// A process-wide registry of named observability instruments, exported as
/// one JSON document (wired into the bench binaries and rum_explorer).
///
/// Two instrument shapes:
///  - *Owned counters*: monotone atomics the registry allocates and never
///    frees, for cross-cutting counts with no natural home (e.g. the
///    ShardedMethod stats-merge tally the sampling-regression test watches).
///    FindOrCreateCounter is always available, registry enabled or not.
///  - *Callback instruments* (gauges/histograms): closures registered by a
///    device or method instance that sample its internal state at export
///    time, so hot paths carry no extra writes. Instances register only
///    while the registry is enabled (set_enabled precedes stack
///    construction) and must unregister before they die -- MetricsGroup
///    below does both.
///
/// Thread safety: one mutex guards the instrument tables; owned counters are
/// atomics touchable without it. ToJson() invokes callbacks under the mutex,
/// so callbacks may take their owner's lock but must never call back into
/// the registry.
class MetricsRegistry {
 public:
  /// The process-wide registry every layer registers into.
  static MetricsRegistry& Global();

  class Counter {
   public:
    void Increment(uint64_t n = 1) {
      value_.fetch_add(n, std::memory_order_relaxed);
    }
    uint64_t value() const { return value_.load(std::memory_order_relaxed); }

   private:
    std::atomic<uint64_t> value_{0};
  };

  /// Master switch for callback-instrument registration. Off (the default),
  /// Register* calls are no-ops returning 0, so casual method construction
  /// (benches, tests) does not accumulate dead instruments.
  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Returns the counter named `name`, creating it on first use. The pointer
  /// stays valid for the life of the process.
  Counter* FindOrCreateCounter(const std::string& name);

  /// Registers a callback instrument; returns an id for Unregister (0 when
  /// the registry is disabled). Names need not be unique -- callers that
  /// want per-instance names use InstanceName().
  uint64_t RegisterGauge(std::string name, std::function<uint64_t()> fn);
  uint64_t RegisterHistogram(std::string name,
                             std::function<LatencyHistogram()> fn);
  void Unregister(uint64_t id);

  /// "prefix[k]" with k a process-unique sequence per prefix, so two caches
  /// in one stack export distinguishable instruments.
  std::string InstanceName(std::string_view prefix);

  /// One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}},
  /// keys sorted for deterministic output.
  std::string ToJson() const;

 private:
  MetricsRegistry() = default;

  struct GaugeEntry {
    uint64_t id;
    std::string name;
    std::function<uint64_t()> fn;
  };
  struct HistogramEntry {
    uint64_t id;
    std::string name;
    std::function<LatencyHistogram()> fn;
  };

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, std::unique_ptr<Counter>>> counters_;
  std::vector<GaugeEntry> gauges_;
  std::vector<HistogramEntry> histograms_;
  std::vector<std::pair<std::string, uint64_t>> instance_seq_;
  uint64_t next_id_ = 1;
};

/// RAII bundle of callback instruments owned by one object. Declare it as
/// the LAST member of the owning class so it unregisters (on destruction)
/// before the state its callbacks read is torn down.
class MetricsGroup {
 public:
  MetricsGroup() = default;
  ~MetricsGroup() { Reset(); }
  MetricsGroup(const MetricsGroup&) = delete;
  MetricsGroup& operator=(const MetricsGroup&) = delete;

  /// Claims an instance name under `prefix` if the registry is enabled;
  /// otherwise the group stays inert and Gauge()/Histogram() are no-ops.
  void Init(std::string_view prefix);
  bool active() const { return !instance_.empty(); }

  /// Registers "<instance>.<name>" reading `fn` at export time.
  void Gauge(std::string_view name, std::function<uint64_t()> fn);
  void Histogram(std::string_view name, std::function<LatencyHistogram()> fn);

  /// Unregisters everything (also called by the destructor).
  void Reset();

 private:
  std::string instance_;
  std::vector<uint64_t> ids_;
};

}  // namespace rum

#endif  // RUMLAB_CORE_METRICS_H_

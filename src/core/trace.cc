#include "core/trace.h"

#include <algorithm>
#include <memory>
#include <mutex>

#include "core/metrics.h"
#include "core/options.h"

namespace rum {

std::string_view TraceKindName(TraceKind kind) {
  switch (kind) {
    case TraceKind::kCacheHit: return "cache_hit";
    case TraceKind::kCacheMiss: return "cache_miss";
    case TraceKind::kCacheEvict: return "cache_evict";
    case TraceKind::kCacheWriteBack: return "cache_write_back";
    case TraceKind::kCacheWriteBackFail: return "cache_write_back_fail";
    case TraceKind::kPinAcquire: return "pin_acquire";
    case TraceKind::kPinRelease: return "pin_release";
    case TraceKind::kFaultInjected: return "fault_injected";
    case TraceKind::kTornWrite: return "torn_write";
    case TraceKind::kRetryAttempt: return "retry_attempt";
    case TraceKind::kCrash: return "crash";
    case TraceKind::kRecovery: return "recovery";
    case TraceKind::kLsmFlush: return "lsm_flush";
    case TraceKind::kLsmCompaction: return "lsm_compaction";
    case TraceKind::kSchedDispatch: return "sched_dispatch";
    case TraceKind::kSchedShed: return "sched_shed";
    case TraceKind::kSchedDeadlineMiss: return "sched_deadline_miss";
  }
  return "unknown";
}

std::string_view TraceOpName(TraceOp op) {
  switch (op) {
    case TraceOp::kNone: return "none";
    case TraceOp::kRead: return "read";
    case TraceOp::kWrite: return "write";
    case TraceOp::kPin: return "pin";
    case TraceOp::kAllocate: return "allocate";
    case TraceOp::kFree: return "free";
    case TraceOp::kFlush: return "flush";
  }
  return "unknown";
}

namespace trace_internal {
std::atomic<bool> g_enabled{false};
}  // namespace trace_internal

namespace {

/// One thread's private ring. Aligned like a counters shard so two threads'
/// hot fields never share a cache line.
struct alignas(64) Ring {
  std::vector<TraceEvent> slots;
  size_t head = 0;          ///< Next slot to write.
  uint64_t written = 0;     ///< Total events appended since Enable().
  uint64_t overwritten = 0; ///< Events lost to wraparound since Enable().
};

struct TraceState {
  std::mutex mu;  ///< Guards ring registration and Enable/Drain sweeps.
  std::vector<std::unique_ptr<Ring>> rings;
  size_t capacity = size_t{1} << 14;
  std::atomic<uint64_t> seq{0};
};

TraceState& State() {
  static TraceState* state = new TraceState();
  return *state;
}

Ring& LocalRing() {
  // Same shape as RumCounters::local(), minus the instance-id key: the trace
  // is a process singleton, so one cached pointer per thread suffices. Rings
  // are never destroyed, so the cache can never dangle.
  thread_local Ring* cached = nullptr;
  if (cached != nullptr) return *cached;
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.rings.push_back(std::make_unique<Ring>());
  cached = state.rings.back().get();
  cached->slots.resize(state.capacity);
  return *cached;
}

}  // namespace

void Trace::Enable(size_t events_per_thread) {
  if (events_per_thread == 0) events_per_thread = 1;
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  state.capacity = events_per_thread;
  for (auto& ring : state.rings) {
    ring->slots.assign(events_per_thread, TraceEvent{});
    ring->head = 0;
    ring->written = 0;
    ring->overwritten = 0;
  }
  state.seq.store(0, std::memory_order_relaxed);
  trace_internal::g_enabled.store(true, std::memory_order_release);
}

void Trace::Disable() {
  trace_internal::g_enabled.store(false, std::memory_order_release);
}

void Trace::EmitActive(TraceKind kind, TraceOp op, PageId page, DataClass cls,
                       uint64_t detail) {
  Ring& ring = LocalRing();
  TraceState& state = State();
  TraceEvent& slot = ring.slots[ring.head];
  if (ring.written >= ring.slots.size()) ++ring.overwritten;
  slot.seq = state.seq.fetch_add(1, std::memory_order_relaxed);
  slot.detail = detail;
  slot.page = page;
  slot.kind = kind;
  slot.op = op;
  slot.cls = cls;
  ring.head = (ring.head + 1) % ring.slots.size();
  ++ring.written;
}

std::vector<TraceEvent> Trace::Drain() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  std::vector<TraceEvent> out;
  for (auto& ring : state.rings) {
    size_t cap = ring->slots.size();
    size_t live = ring->written < cap ? static_cast<size_t>(ring->written) : cap;
    // Oldest surviving event first: when full, that's the slot at head
    // (about to be overwritten next); when partial, slot 0.
    size_t start = ring->written < cap ? 0 : ring->head;
    for (size_t i = 0; i < live; ++i) {
      out.push_back(ring->slots[(start + i) % cap]);
    }
    ring->head = 0;
    ring->written = 0;
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.seq < b.seq;
            });
  return out;
}

uint64_t Trace::dropped_events() {
  TraceState& state = State();
  std::lock_guard<std::mutex> lock(state.mu);
  uint64_t dropped = 0;
  for (const auto& ring : state.rings) dropped += ring->overwritten;
  return dropped;
}

void ApplyObservability(const Options& options) {
  MetricsRegistry::Global().set_enabled(options.observability.metrics);
  if (options.observability.trace) {
    Trace::Enable(options.observability.trace_events_per_thread);
  } else {
    Trace::Disable();
  }
}

}  // namespace rum

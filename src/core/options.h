#ifndef RUMLAB_CORE_OPTIONS_H_
#define RUMLAB_CORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>

#include "core/memory_budget.h"
#include "core/status.h"
#include "core/types.h"

namespace rum {

/// Compaction policy for the LSM-tree (Section 5's "dynamic merge depth"
/// knob). Each value names a `CompactionPolicy` strategy implementation
/// (methods/lsm/compaction_policy.h):
///  - kLeveled: one run per level; every flush merges eagerly (lowest read
///    amplification, highest write amplification);
///  - kTiered: up to `size_ratio` runs per level, merged only when the
///    level fills (lowest write amplification, highest read amplification);
///  - kLazyLeveled: tiered in every level except the last populated one,
///    which stays a single run -- point reads nearly as cheap as leveled
///    while upper-level writes stay tiered-cheap;
///  - kHybrid: per-level composition -- the shallowest
///    `lsm.hybrid_tiered_levels` levels merge tiered, deeper levels merge
///    leveled, placing an intermediate point on the read/write curve.
enum class LsmPolicy {
  kLeveled,
  kTiered,
  kLazyLeveled,
  kHybrid,
};

/// Tuning knobs shared by every access method plus per-method sections.
///
/// Every knob here is one of the paper's RUM dials: block size and node size
/// trade read granularity against space; fill factors trade space against
/// update cost; size ratios and run counts trade write amplification against
/// read amplification; bits-per-key trades space against read amplification.
struct Options {
  /// Simulated device block size in bytes (the paper's "minimum access
  /// granularity"). Must be a multiple of kEntrySize.
  size_t block_size = 4096;

  // --------------------------------------------------------------- Storage
  struct Storage {
    /// Access pages through zero-copy pin/unpin guards instead of
    /// whole-block Read/Write copies. Both paths produce byte-identical
    /// RUM accounting (pin_parity_test enforces this); the copy path exists
    /// as a differential-testing oracle and migration escape hatch.
    bool pinned_pages = true;

    /// Retry policy a RetryingDevice applies to fallible device operations
    /// that fail with kIOError (transient faults in the simulated fault
    /// model; kCorruption is never retried -- a checksum mismatch does not
    /// heal). Retries and the errors that triggered them are charged to the
    /// `retries`/`io_errors` counter pair; failed attempts move no bytes and
    /// are never charged as traffic.
    struct Retry {
      /// Total attempts per operation (1 = fail fast, no retry). The
      /// fallback for any op class without its own override below.
      size_t max_attempts = 1;
      /// Simulated backoff before retry k (1-based): backoff_base_us << (k-1).
      /// Deterministic -- no clock is consulted; the accumulated simulated
      /// wait is reported by the RetryingDevice, not slept.
      uint64_t backoff_base_us = 100;

      /// Per-op-class override: 0 means "inherit the shared knob". Reads
      /// are usually worth more attempts than allocations (a read retry
      /// may heal a transient; a failed allocation usually means pressure
      /// a retry will not relieve), and the service layer's deadline logic
      /// wants cheap ops to fail fast while the scan path keeps trying.
      struct OpPolicy {
        size_t max_attempts = 0;
        uint64_t backoff_base_us = 0;
      };
      OpPolicy read;      ///< Device::Read
      OpPolicy write;     ///< Device::Write
      OpPolicy pin;       ///< PinForRead / PinForWrite acquisition
      OpPolicy allocate;  ///< Device::Allocate
      OpPolicy flush;     ///< Device::FlushAll

      /// When an op class's whole attempt budget (> 1 attempts) burns down
      /// without the kIOError clearing, return kUnavailable (with the
      /// total simulated backoff attached) instead of the last kIOError:
      /// "still retrying" and "dead" become distinguishable codes, which
      /// is what the request scheduler's deadline/degrade logic keys on.
      /// Single-attempt (fail-fast) classes keep returning kIOError.
      bool unavailable_when_exhausted = true;
    } retry;
  } storage;

  // ---------------------------------------------------------------- B+-Tree
  struct BTree {
    /// Leaf/inner node size in bytes; 0 means "one device block".
    size_t node_size = 0;
    /// Target fill fraction for bulk loads, in (0, 1].
    double bulk_fill = 1.0;
    /// Nodes split when full; after a split each half holds this fraction.
    double split_fraction = 0.5;
  } btree;

  // ------------------------------------------------------------ Hash index
  struct Hash {
    /// Bucket directory slots per entry at bulk load. Larger wastes space;
    /// at or below 1/0.7 the first post-load insert triggers a rehash.
    double directory_fanout = 1.6;
  } hash;

  // -------------------------------------------------------------- ZoneMaps
  struct ZoneMap {
    /// Entries per zone (the paper's partition size P, in tuples).
    size_t zone_entries = 4096;
  } zonemap;

  // ------------------------------------------------------------------- LSM
  struct Lsm {
    /// Entries buffered in the in-memory memtable before a flush.
    size_t memtable_entries = 4096;
    /// Size ratio T between adjacent levels.
    size_t size_ratio = 4;
    /// Merge policy (see LsmPolicy above).
    LsmPolicy policy = LsmPolicy::kLeveled;
    /// kHybrid only: levels below this index merge tiered (up to
    /// `size_ratio` runs); levels at or beyond it keep one run each.
    /// 0 degenerates to leveled everywhere.
    size_t hybrid_tiered_levels = 2;
    /// Bloom-filter bits per key on every run; 0 disables filters.
    size_t bloom_bits_per_key = 10;
    /// Fence pointer granularity: one fence per this many entries.
    size_t fence_entries = 256;
    /// Delta-compress run pages (varint key deltas): the paper's Section-5
    /// "compression and computation" trade -- smaller runs (lower MO,
    /// fewer blocks per read) for encode/decode CPU.
    bool compress_runs = false;
    /// Maintain a REMIX-style cross-run sorted view (see
    /// methods/lsm/cross_run_index.h): segments of the key space store
    /// per-run cursor offsets so a range scan does one segment lookup and
    /// opens pre-positioned cursors instead of fence-searching every run.
    /// Bought MO (charged as auxiliary space) for range RO. Segments build
    /// lazily on first scan, so scan-free workloads pay nothing. Off, Scan
    /// degrades to a k-way merge with per-run fence searches; results are
    /// byte-identical either way (scan_differential_test enforces it).
    bool cross_run_index = true;
    /// Target records per cross-run-index segment: smaller segments mean
    /// more anchors (more auxiliary space, more invalidation granularity)
    /// and a shorter in-segment advance per scan.
    size_t cross_run_segment_entries = 1024;
  } lsm;

  // ------------------------------------------------- Sorted-column fences
  struct Column {
    /// Maintain an in-memory sparse index (first key per page) over the
    /// sorted column, replacing device binary search with memory probes --
    /// Figure 1's "Sparse Index".
    bool sparse_index = false;
  } column;

  // --------------------------------------------- Partitioned B-tree (PBT)
  struct Pbt {
    /// Entries per partition before a new one opens.
    size_t partition_entries = 4096;
    /// Partitions tolerated before they merge into one.
    size_t max_partitions = 4;
  } pbt;

  // ------------------------------------------------- Stepped-merge (diff/)
  struct SteppedMerge {
    /// Entries buffered before sealing an L0 run.
    size_t buffer_entries = 4096;
    /// Runs per level before they are merged into the next level.
    size_t runs_per_level = 4;
  } stepped;

  // ---------------------------------------------------------- Bitmap index
  struct Bitmap {
    /// Distinct indexed values (bitmap cardinality); keys are bucketed into
    /// this many value bins.
    size_t cardinality = 64;
    /// Key domain partitioned equally into the bins (keys beyond the domain
    /// land in the last bin).
    Key key_domain = 1u << 20;
    /// Absorb updates into uncompressed delta bitvectors and merge lazily
    /// (the paper's Section-5 "update-friendly bitmap indexes").
    bool update_friendly = true;
    /// Merge a delta bitvector into the compressed bitmap once it holds
    /// this many set bits.
    size_t delta_merge_threshold = 1024;
  } bitmap;

  // --------------------------------------------- Approximate index (Bloom)
  struct Approx {
    /// Entries per Bloom-filtered zone.
    size_t zone_entries = 4096;
    /// Bloom bits per key in each zone filter.
    size_t bits_per_key = 10;
    /// Rebuild (garbage-collect) once this fraction of rows is deleted.
    double rebuild_deleted_fraction = 0.25;
  } approx;

  // -------------------------------------------------------------- Cracking
  struct Cracking {
    /// Stop cracking a piece once it is at most this many entries.
    size_t min_piece_entries = 128;
    /// Pending inserts/deletes tolerated before they merge into the column
    /// (a merge rebuilds and re-cracks from scratch).
    size_t delta_merge_threshold = 4096;
  } cracking;

  // ----------------------------------------------------------------- Trie
  struct Trie {
    /// Bits consumed per trie level (fan-out = 2^span).
    size_t span_bits = 8;
  } trie;

  // ------------------------------------------------------------- Skiplist
  struct SkipList {
    /// Probability of promoting a node one level up.
    double promote_probability = 0.25;
    /// Hard cap on tower height.
    size_t max_height = 16;
    /// Seed for the promotion RNG (deterministic by default).
    uint64_t seed = 0x5eedULL;
  } skiplist;

  // ------------------------------------------------------------- Extremes
  struct Extremes {
    /// MagicArray capacity = max representable key + 1. Queries/inserts
    /// beyond this fail with kOutOfRange.
    Key magic_array_domain = 1u << 20;
  } extremes;

  // ------------------------------------------ Update absorber (QF-guarded)
  struct Absorber {
    /// Buffered operations before they drain into the base structure.
    size_t delta_entries = 4096;
    /// Quotient-filter remainder bits (false positives ~ load / 2^r).
    size_t qf_remainder_bits = 12;
  } absorber;

  // ---------------------------------------------------- Hot/cold steering
  struct HotCold {
    /// Maximum entries in the in-memory hot table.
    size_t hot_capacity = 4096;
    /// Sketch estimate at which a key is promoted to the hot table.
    uint64_t promote_estimate = 3;
    /// Count-Min sketch dimensions.
    size_t sketch_width = 1024;
    size_t sketch_depth = 4;
  } hot_cold;

  // ------------------------------------------------------------- Sharding
  struct Sharded {
    /// Inner AccessMethod instances a ShardedMethod hash-partitions keys
    /// across. More shards lower lock contention under concurrent load at
    /// the cost of per-shard fixed overheads (one structure's metadata per
    /// shard raises MO slightly).
    size_t shards = 4;
  } sharded;

  // --------------------------------------------------------- Observability
  struct Observability {
    /// Emit structured TraceEvents from the device stack into per-thread
    /// ring buffers (see core/trace.h). Off, the entire cost is one relaxed
    /// bool load per would-be event -- the disabled-path contract enforced
    /// by trace_test and the ci.sh bench guard.
    bool trace = false;
    /// Ring capacity per emitting thread; wraparound keeps the newest
    /// events and counts the dropped ones.
    size_t trace_events_per_thread = size_t{1} << 14;
    /// Let device/method instances register callback gauges and histograms
    /// into the process-wide MetricsRegistry for JSON export.
    bool metrics = false;
  } observability;

  // ------------------------------------------------------ Service front-end
  /// The request-scheduler service layer (src/service/): a front-end between
  /// workload drivers and access methods that absorbs overload instead of
  /// letting a fault storm or an arrival spike stretch every caller's
  /// latency without bound. Time inside the scheduler is *virtual*
  /// (microsecond ticks advanced by a deterministic cost model), so queueing
  /// dynamics, deadline misses, and admission decisions replay exactly under
  /// a fixed seed -- on any host, under any sanitizer.
  struct Service {
    /// Master switch. Off (the default), MakeAccessMethod returns the bare
    /// method and the layer does not exist: the direct-call path is
    /// byte-identical in RUM accounting (saturation_test enforces it).
    bool enabled = false;

    /// Bounded per-shard request queue; an arrival finding it full is shed
    /// immediately (kResourceExhausted, storage untouched).
    size_t queue_capacity = 1024;

    /// Group-commit window: up to this many adjacent same-kind requests
    /// (a run of mutations, or a run of reads) dispatch as one batch,
    /// paying one dispatch_overhead_us for the window.
    size_t batch_max_ops = 16;

    /// Coalesce duplicate-key Gets inside one read batch: one method call
    /// serves every waiter (physical read charged once).
    bool coalesce_reads = true;

    /// Dispatch priority-0 (high) requests before priority-1 within a
    /// shard; within a priority class the queue stays FIFO.
    bool priority_queues = true;

    /// Per-request deadline measured from arrival, in virtual microseconds;
    /// a request popped after expiry completes kDeadlineExceeded without
    /// touching the device. 0 disables deadlines.
    uint64_t deadline_us = 0;

    /// Admission control master switch (the CoDel + token-bucket pair).
    bool admission = true;
    /// CoDel queue-delay target: sustained sojourn above this for one
    /// interval puts the shard in a dropping state that sheds heads on the
    /// standard sqrt control-law schedule until delay recovers.
    uint64_t codel_target_us = 2000;
    uint64_t codel_interval_us = 20000;
    /// Token-bucket rate gate at the front door, in requests per virtual
    /// second; 0 disables the gate. Burst is the bucket depth.
    double rate_ops_per_sec = 0;
    double rate_burst_ops = 64;

    /// Virtual service-cost model: a batch window costs
    /// dispatch_overhead_us + ops_in_batch * op_cost_us (scans cost
    /// scan_cost_us each) of server time on its shard. These set the
    /// simulated capacity that open-loop arrivals saturate.
    uint64_t dispatch_overhead_us = 8;
    uint64_t op_cost_us = 2;
    uint64_t scan_cost_us = 16;

    /// Latency SLO for goodput accounting: completions within slo_us of
    /// arrival count as goodput (ServiceStats::completed_within_slo).
    /// 0 means every completion counts.
    uint64_t slo_us = 0;
  } service;

  // ------------------------------------------------------- Memory arbitration
  /// Global adaptive memory arbitration (src/adaptive/memory_arbiter.h):
  /// one byte budget dynamically split across CachingDevice capacity, LSM
  /// memtable thresholds, and bloom/sketch filter memory, re-planned every
  /// `epoch_ops` logical operations from marginal-benefit estimates (cache
  /// miss bytes, flush/merge bytes, filter false-positive bytes).
  ///
  /// Off (the default), no pool registers and every component keeps its
  /// statically configured size -- the byte-identical static path that
  /// memory_arbiter_test's differential case enforces. On, components
  /// constructed with these options register their pools with `arbiter`
  /// (the factory passes one Options to every shard, so a sharded stack
  /// registers every shard's pools with the same arbiter).
  struct Memory {
    /// Master switch; requires `arbiter` to be set.
    bool enabled = false;
    /// Logical operations between replans (the epoch tick).
    uint64_t epoch_ops = 8192;
    /// Floor share of the budget each pool *kind* keeps, so a cold
    /// component is never starved to zero and can show fresh pressure.
    double min_share = 0.05;
    /// Fraction of the budget a kind's assignment may move per replan
    /// (hysteresis: bounds thrash when signals alternate).
    double step_fraction = 0.25;
    /// The registrar components register with. Borrowed: the arbiter must
    /// outlive every method constructed with these options. The budget
    /// itself lives in the arbiter (MemoryArbiter::Config::budget_bytes).
    MemoryRegistrar* arbiter = nullptr;
  } memory;

  // -------------------------------------------------------------- Morphing
  struct Morphing {
    /// Target point in RUM space; the morphing method picks its internal
    /// shape (log / sorted runs / tree) to approach it. Range [0,1] each.
    double read_priority = 1.0 / 3;
    double write_priority = 1.0 / 3;
    double space_priority = 1.0 / 3;
    /// Entries per internal batch.
    size_t batch_entries = 4096;
  } morphing;
};

/// Checks every knob for internal consistency (sizes large enough for
/// their page formats, fractions in range, spans dividing the key width).
/// Returns the first violation found.
Status ValidateOptions(const Options& options);

}  // namespace rum

#endif  // RUMLAB_CORE_OPTIONS_H_

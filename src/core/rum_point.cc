#include "core/rum_point.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace rum {

namespace {
// Triangle corner coordinates (read top, write bottom-left, space
// bottom-right), matching the orientation of the paper's Figure 1.
constexpr double kReadX = 0.5, kReadY = 1.0;
constexpr double kWriteX = 0.0, kWriteY = 0.0;
constexpr double kSpaceX = 1.0, kSpaceY = 0.0;

double ClampAmplification(double a) { return a < 1.0 ? 1.0 : a; }
}  // namespace

std::string_view RumRegionName(RumRegion region) {
  switch (region) {
    case RumRegion::kReadOptimized:
      return "read-optimized";
    case RumRegion::kWriteOptimized:
      return "write-optimized";
    case RumRegion::kSpaceOptimized:
      return "space-optimized";
    case RumRegion::kBalanced:
      return "balanced";
  }
  return "unknown";
}

RumPoint RumPoint::FromSnapshot(const CounterSnapshot& snap) {
  RumPoint p;
  p.read_overhead = ClampAmplification(snap.read_amplification());
  p.update_overhead = ClampAmplification(snap.write_amplification());
  p.memory_overhead = ClampAmplification(snap.space_amplification());
  return p;
}

double RumPoint::read_efficiency() const {
  return 1.0 / ClampAmplification(read_overhead);
}
double RumPoint::update_efficiency() const {
  return 1.0 / ClampAmplification(update_overhead);
}
double RumPoint::memory_efficiency() const {
  return 1.0 / ClampAmplification(memory_overhead);
}

void RumPoint::BarycentricWeights(double* wr, double* wu, double* wm) const {
  double er = read_efficiency();
  double eu = update_efficiency();
  double em = memory_efficiency();
  double sum = er + eu + em;
  *wr = er / sum;
  *wu = eu / sum;
  *wm = em / sum;
}

double RumPoint::triangle_x() const {
  double wr, wu, wm;
  BarycentricWeights(&wr, &wu, &wm);
  return wr * kReadX + wu * kWriteX + wm * kSpaceX;
}

double RumPoint::triangle_y() const {
  double wr, wu, wm;
  BarycentricWeights(&wr, &wu, &wm);
  return wr * kReadY + wu * kWriteY + wm * kSpaceY;
}

RumRegion RumPoint::Classify(double margin) const {
  double wr, wu, wm;
  BarycentricWeights(&wr, &wu, &wm);
  double top = std::max({wr, wu, wm});
  // Count how many weights are within `margin` of the top; a clear winner
  // must dominate both others.
  int near_top = 0;
  for (double w : {wr, wu, wm}) {
    if (top - w <= margin) ++near_top;
  }
  if (near_top > 1) return RumRegion::kBalanced;
  if (top == wr) return RumRegion::kReadOptimized;
  if (top == wu) return RumRegion::kWriteOptimized;
  return RumRegion::kSpaceOptimized;
}

double RumPoint::TriangleDistance(const RumPoint& a, const RumPoint& b) {
  double dx = a.triangle_x() - b.triangle_x();
  double dy = a.triangle_y() - b.triangle_y();
  return std::sqrt(dx * dx + dy * dy);
}

std::string RumPoint::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "RO=%.3f UO=%.3f MO=%.3f -> (%.3f, %.3f) %s", read_overhead,
                update_overhead, memory_overhead, triangle_x(), triangle_y(),
                std::string(RumRegionName(Classify())).c_str());
  return std::string(buf);
}

}  // namespace rum

#include "core/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace rum {

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
  count_ += other.count_;
  sum_ += other.sum_;
}

uint64_t LatencyHistogram::Percentile(double q) const {
  // Empty (or merged-from-empties) histograms have no order statistics;
  // answer 0 instead of walking buckets toward max_ (which is 0 anyway) --
  // and never let the cast below see garbage.
  if (count_ == 0) return 0;
  // Clamp written so NaN fails into q = 0 rather than passing both range
  // checks and reaching the uint64_t cast (UB on NaN).
  if (!(q >= 0.0)) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-th sample, 1-based, matching CostPercentiles::From's
  // ceil(q * n) order statistic.
  uint64_t rank = static_cast<uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  if (rank > count_) rank = count_;
  uint64_t seen = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Clamp to the observed extremes so p0/p100 are exact.
      uint64_t lo = BucketLowerBound(i);
      if (lo < min_) lo = min_;
      if (lo > max_) lo = max_;
      return lo;
    }
  }
  return max_;
}

uint64_t LatencyHistogram::CountAtOrBelow(uint64_t value) const {
  // Empty and merged-empty histograms hold no samples at any bound.
  if (count_ == 0) return 0;
  // Every bucket up to and including value's own bucket: a sample in that
  // bucket has lower_bound <= value, so it is counted as meeting the bound.
  // The index is re-clamped to the array even if BucketIndex ever returned
  // an out-of-range slot for a hostile value.
  size_t last = BucketIndex(value);
  if (last >= kBucketCount) last = kBucketCount - 1;
  uint64_t seen = 0;
  for (size_t i = 0; i <= last; ++i) seen += buckets_[i];
  return seen;
}

std::string LatencyHistogram::ToJson() const {
  std::ostringstream os;
  os << "{\"count\":" << count_ << ",\"mean\":" << mean()
     << ",\"min\":" << min() << ",\"p50\":" << Percentile(0.50)
     << ",\"p95\":" << Percentile(0.95) << ",\"p99\":" << Percentile(0.99)
     << ",\"p999\":" << p999() << ",\"max\":" << max_ << "}";
  return os.str();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Counter* MetricsRegistry::FindOrCreateCounter(
    const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [existing, counter] : counters_) {
    if (existing == name) return counter.get();
  }
  counters_.emplace_back(name, std::make_unique<Counter>());
  return counters_.back().second.get();
}

uint64_t MetricsRegistry::RegisterGauge(std::string name,
                                        std::function<uint64_t()> fn) {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_id_++;
  gauges_.push_back(GaugeEntry{id, std::move(name), std::move(fn)});
  return id;
}

uint64_t MetricsRegistry::RegisterHistogram(
    std::string name, std::function<LatencyHistogram()> fn) {
  if (!enabled()) return 0;
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t id = next_id_++;
  histograms_.push_back(HistogramEntry{id, std::move(name), std::move(fn)});
  return id;
}

void MetricsRegistry::Unregister(uint64_t id) {
  if (id == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  gauges_.erase(std::remove_if(gauges_.begin(), gauges_.end(),
                               [id](const GaugeEntry& g) { return g.id == id; }),
                gauges_.end());
  histograms_.erase(
      std::remove_if(histograms_.begin(), histograms_.end(),
                     [id](const HistogramEntry& h) { return h.id == id; }),
      histograms_.end());
}

std::string MetricsRegistry::InstanceName(std::string_view prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [existing, seq] : instance_seq_) {
    if (existing == prefix) {
      std::ostringstream os;
      os << prefix << "[" << seq++ << "]";
      return os.str();
    }
  }
  instance_seq_.emplace_back(std::string(prefix), 1);
  std::ostringstream os;
  os << prefix << "[0]";
  return os.str();
}

namespace {

void AppendJsonString(std::ostringstream& os, const std::string& s) {
  os << '"';
  for (char c : s) {
    if (c == '"' || c == '\\') os << '\\';
    os << c;
  }
  os << '"';
}

}  // namespace

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, std::string>> counter_rows;
  counter_rows.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    counter_rows.emplace_back(name, std::to_string(counter->value()));
  }
  std::vector<std::pair<std::string, std::string>> gauge_rows;
  gauge_rows.reserve(gauges_.size());
  for (const auto& g : gauges_) {
    gauge_rows.emplace_back(g.name, std::to_string(g.fn()));
  }
  std::vector<std::pair<std::string, std::string>> histogram_rows;
  histogram_rows.reserve(histograms_.size());
  for (const auto& h : histograms_) {
    histogram_rows.emplace_back(h.name, h.fn().ToJson());
  }
  auto emit = [](std::ostringstream& os,
                 std::vector<std::pair<std::string, std::string>>& rows) {
    std::sort(rows.begin(), rows.end());
    os << '{';
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i) os << ',';
      AppendJsonString(os, rows[i].first);
      os << ':' << rows[i].second;
    }
    os << '}';
  };
  std::ostringstream os;
  os << "{\"counters\":";
  emit(os, counter_rows);
  os << ",\"gauges\":";
  emit(os, gauge_rows);
  os << ",\"histograms\":";
  emit(os, histogram_rows);
  os << '}';
  return os.str();
}

void MetricsGroup::Init(std::string_view prefix) {
  Reset();
  if (!MetricsRegistry::Global().enabled()) return;
  instance_ = MetricsRegistry::Global().InstanceName(prefix);
}

void MetricsGroup::Gauge(std::string_view name, std::function<uint64_t()> fn) {
  if (instance_.empty()) return;
  uint64_t id = MetricsRegistry::Global().RegisterGauge(
      instance_ + "." + std::string(name), std::move(fn));
  if (id != 0) ids_.push_back(id);
}

void MetricsGroup::Histogram(std::string_view name,
                             std::function<LatencyHistogram()> fn) {
  if (instance_.empty()) return;
  uint64_t id = MetricsRegistry::Global().RegisterHistogram(
      instance_ + "." + std::string(name), std::move(fn));
  if (id != 0) ids_.push_back(id);
}

void MetricsGroup::Reset() {
  for (uint64_t id : ids_) MetricsRegistry::Global().Unregister(id);
  ids_.clear();
  instance_.clear();
}

}  // namespace rum

#ifndef RUMLAB_CORE_ACCESS_METHOD_H_
#define RUMLAB_CORE_ACCESS_METHOD_H_

#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "core/counters.h"
#include "core/rum_point.h"
#include "core/status.h"
#include "core/types.h"

namespace rum {

/// Optional mixin for access methods that hash-partition the key space
/// across independent internal shards (ShardedMethod). WorkloadRunner uses
/// it to give each worker thread a disjoint set of partitions, which is what
/// makes concurrent RUM accounting deterministic: every partition sees a
/// reproducible operation order, so physical traffic replays exactly.
class KeyPartitioned {
 public:
  virtual ~KeyPartitioned() = default;

  /// Number of independent partitions (>= 1).
  virtual size_t partitions() const = 0;
  /// The partition a key routes to, in [0, partitions()).
  virtual size_t PartitionOf(Key key) const = 0;
};

/// The uniform interface every rumlab access method implements.
///
/// Semantics (chosen so in-place and differential structures behave
/// identically to callers, enabling differential testing):
///  - Insert(k, v) upserts: a second insert of the same key replaces the
///    value.
///  - Update(k, v) upserts too, but is accounted as an update operation.
///  - Delete(k) is idempotent; deleting an absent key succeeds.
///  - Get(k) returns kNotFound for absent or deleted keys.
///  - Scan(lo, hi) returns live entries with lo <= key <= hi in ascending
///    key order.
///  - BulkLoad(entries) requires strictly ascending keys and an empty
///    structure; it is the "bulk creation" of the paper's Table 1.
///
/// Accounting: every implementation owns a RumCounters and charges all
/// physical traffic (device blocks or in-memory bytes touched) and all
/// logical denominators to it. `stats()` exposes the cumulative snapshot;
/// `rum_point()` summarizes it as a position in the RUM space.
class AccessMethod {
 public:
  virtual ~AccessMethod() = default;

  AccessMethod(const AccessMethod&) = delete;
  AccessMethod& operator=(const AccessMethod&) = delete;

  /// Short stable identifier ("btree", "lsm-leveled", ...).
  virtual std::string_view name() const = 0;

  /// Upserts one entry.
  virtual Status Insert(Key key, Value value) = 0;

  /// Upserts one entry, accounted as an update. The default forwards to
  /// Insert and fixes up the operation counters.
  virtual Status Update(Key key, Value value);

  /// Removes a key (idempotent).
  virtual Status Delete(Key key) = 0;

  /// Point query.
  virtual Result<Value> Get(Key key) = 0;

  /// Inclusive range query; appends results to `out` in ascending key order.
  virtual Status Scan(Key lo, Key hi, std::vector<Entry>* out) = 0;

  /// Bulk-creates the structure from strictly-ascending entries. The default
  /// implementation loops Insert; structures with a cheaper path override.
  virtual Status BulkLoad(std::span<const Entry> entries);

  /// Forces buffered state (memtables, delta stores) down to its final
  /// place. Default: no-op.
  virtual Status Flush() { return Status::OK(); }

  /// Number of live entries.
  virtual size_t size() const = 0;

  /// Cumulative RUM accounting since construction or the last ResetStats.
  /// Differential structures override this to recompute the base/aux space
  /// split (live entries are base data; stale versions and tombstones are
  /// auxiliary overhead).
  virtual CounterSnapshot stats() const { return counters_.snapshot(); }

  /// Clears traffic counters; resident-space levels persist. Wrappers that
  /// delegate to an inner method override this to reach it.
  virtual void ResetStats() { counters_.ResetTraffic(); }

  /// Current position in the RUM design space.
  RumPoint rum_point() const { return RumPoint::FromSnapshot(stats()); }

 protected:
  AccessMethod() = default;

  RumCounters& counters() { return counters_; }
  const RumCounters& counters() const { return counters_; }

  /// Validates a BulkLoad input: strictly ascending keys, empty structure.
  Status CheckBulkLoadPreconditions(std::span<const Entry> entries) const;

 private:
  RumCounters counters_;
};

}  // namespace rum

#endif  // RUMLAB_CORE_ACCESS_METHOD_H_

#ifndef RUMLAB_CORE_RUM_POINT_H_
#define RUMLAB_CORE_RUM_POINT_H_

#include <string>

#include "core/counters.h"

namespace rum {

/// Which corner of the paper's Figure-1 triangle a point is closest to.
enum class RumRegion {
  kReadOptimized,
  kWriteOptimized,
  kSpaceOptimized,
  kBalanced,
};

std::string_view RumRegionName(RumRegion region);

/// A point in the three-dimensional RUM design space, plus its projection
/// onto the two-dimensional triangle of the paper's Figures 1 and 3.
///
/// Each overhead is an amplification ratio >= 1 (1.0 = theoretical optimum,
/// Section 2). The triangle projection converts each overhead into an
/// "efficiency" in (0,1] -- the reciprocal of the amplification -- and uses
/// the normalized efficiencies as barycentric coordinates:
///
///   Read corner  (top)          at (0.5, 1.0)
///   Write corner (bottom-left)  at (0.0, 0.0)
///   Space corner (bottom-right) at (1.0, 0.0)
///
/// A structure that is perfectly read-optimized but poor on the other two
/// axes lands near the top corner, mirroring Figure 1.
struct RumPoint {
  double read_overhead = 1.0;    ///< RO, read amplification (>= 1).
  double update_overhead = 1.0;  ///< UO, write amplification (>= 1).
  double memory_overhead = 1.0;  ///< MO, space amplification (>= 1).

  /// Builds a RumPoint from measured counters. Amplifications below 1.0
  /// (possible when a phase performed no logical reads/writes) are clamped
  /// to 1.0 so the projection stays inside the triangle.
  static RumPoint FromSnapshot(const CounterSnapshot& snap);

  /// Reciprocal of each overhead, in (0, 1].
  double read_efficiency() const;
  double update_efficiency() const;
  double memory_efficiency() const;

  /// Barycentric weights over (read, write, space); each in [0,1], sum 1.
  /// Stored in `wr`, `wu`, `wm`.
  void BarycentricWeights(double* wr, double* wu, double* wm) const;

  /// 2-D triangle coordinates of the projection (see class comment).
  double triangle_x() const;
  double triangle_y() const;

  /// The corner this point leans toward; kBalanced when no efficiency
  /// dominates by more than `margin` (relative weight).
  RumRegion Classify(double margin = 0.10) const;

  /// Euclidean distance between two points' triangle projections.
  static double TriangleDistance(const RumPoint& a, const RumPoint& b);

  /// "RO=... UO=... MO=... -> (x, y) region" one-liner.
  std::string ToString() const;
};

}  // namespace rum

#endif  // RUMLAB_CORE_RUM_POINT_H_

#ifndef RUMLAB_CORE_TYPES_H_
#define RUMLAB_CORE_TYPES_H_

#include <cstddef>
#include <cstdint>
#include <limits>

namespace rum {

/// Keys are fixed-width 64-bit unsigned integers, matching the paper's model
/// of "a dataset consisting of N fixed-sized elements".
using Key = uint64_t;

/// Values are fixed-width 64-bit opaque payloads.
using Value = uint64_t;

/// A key/value pair as stored by every access method.
struct Entry {
  Key key = 0;
  Value value = 0;

  friend bool operator==(const Entry& a, const Entry& b) {
    return a.key == b.key && a.value == b.value;
  }
  friend bool operator<(const Entry& a, const Entry& b) {
    return a.key < b.key;
  }
};

/// Physical size of one entry on any simulated medium: 8-byte key plus
/// 8-byte value. All space/IO accounting is expressed in real bytes of this
/// representation.
inline constexpr size_t kEntrySize = sizeof(Key) + sizeof(Value);

/// Sentinel key values.
inline constexpr Key kMinKey = 0;
inline constexpr Key kMaxKey = std::numeric_limits<Key>::max();

/// Identifies a page on a simulated block device.
using PageId = uint32_t;
inline constexpr PageId kInvalidPageId = std::numeric_limits<PageId>::max();

}  // namespace rum

#endif  // RUMLAB_CORE_TYPES_H_

#include "core/options.h"

namespace rum {

namespace {
// Smallest page any codec in rumlab can use: an 8-byte header plus a
// handful of entries.
constexpr size_t kMinPageBytes = 64;
}  // namespace

Status ValidateOptions(const Options& options) {
  if (options.block_size < kMinPageBytes) {
    return Status::InvalidArgument("block_size below minimum page size");
  }
  if (options.storage.retry.max_attempts < 1 ||
      options.storage.retry.max_attempts > 64) {
    return Status::InvalidArgument(
        "storage.retry.max_attempts must be in [1, 64]");
  }
  for (const Options::Storage::Retry::OpPolicy* p :
       {&options.storage.retry.read, &options.storage.retry.write,
        &options.storage.retry.pin, &options.storage.retry.allocate,
        &options.storage.retry.flush}) {
    if (p->max_attempts > 64) {
      return Status::InvalidArgument(
          "storage.retry per-op max_attempts must be in [0, 64] "
          "(0 = inherit)");
    }
  }
  if (options.service.enabled) {
    if (options.service.queue_capacity < 1) {
      return Status::InvalidArgument("service.queue_capacity must be >= 1");
    }
    if (options.service.batch_max_ops < 1) {
      return Status::InvalidArgument("service.batch_max_ops must be >= 1");
    }
    if (options.service.op_cost_us < 1) {
      return Status::InvalidArgument(
          "service.op_cost_us must be >= 1 (zero-cost service makes "
          "capacity infinite and queueing meaningless)");
    }
    if (options.service.admission &&
        (options.service.codel_target_us < 1 ||
         options.service.codel_interval_us < options.service.codel_target_us)) {
      return Status::InvalidArgument(
          "service.codel_target_us must be >= 1 and <= codel_interval_us");
    }
    if (options.service.rate_ops_per_sec < 0 ||
        (options.service.rate_ops_per_sec > 0 &&
         options.service.rate_burst_ops < 1)) {
      return Status::InvalidArgument(
          "service.rate_burst_ops must be >= 1 when the rate gate is on");
    }
  }
  if (options.btree.node_size != 0 &&
      options.btree.node_size < kMinPageBytes) {
    return Status::InvalidArgument("btree.node_size below minimum");
  }
  if (options.btree.bulk_fill <= 0.0 || options.btree.bulk_fill > 1.0) {
    return Status::InvalidArgument("btree.bulk_fill must be in (0, 1]");
  }
  if (options.btree.split_fraction <= 0.0 ||
      options.btree.split_fraction >= 1.0) {
    return Status::InvalidArgument("btree.split_fraction must be in (0, 1)");
  }
  if (options.hash.directory_fanout <= 0.0) {
    return Status::InvalidArgument("hash.directory_fanout must be positive");
  }
  if (options.zonemap.zone_entries < 2) {
    return Status::InvalidArgument("zonemap.zone_entries must be >= 2");
  }
  if (options.lsm.memtable_entries < 1) {
    return Status::InvalidArgument("lsm.memtable_entries must be >= 1");
  }
  if (options.lsm.size_ratio < 2) {
    return Status::InvalidArgument("lsm.size_ratio must be >= 2");
  }
  if (options.lsm.policy == LsmPolicy::kHybrid &&
      options.lsm.hybrid_tiered_levels < 1) {
    return Status::InvalidArgument(
        "lsm.hybrid_tiered_levels must be >= 1 under the hybrid policy "
        "(0 tiered levels is the leveled policy)");
  }
  if (options.lsm.cross_run_index &&
      options.lsm.cross_run_segment_entries < 16) {
    return Status::InvalidArgument(
        "lsm.cross_run_segment_entries must be >= 16 (fewer entries per "
        "segment than a page holds buys no read savings, only anchor "
        "space)");
  }
  if (options.stepped.buffer_entries < 1) {
    return Status::InvalidArgument("stepped.buffer_entries must be >= 1");
  }
  if (options.stepped.runs_per_level < 2) {
    return Status::InvalidArgument("stepped.runs_per_level must be >= 2");
  }
  if (options.bitmap.cardinality < 1) {
    return Status::InvalidArgument("bitmap.cardinality must be >= 1");
  }
  if (options.bitmap.key_domain < 1) {
    return Status::InvalidArgument("bitmap.key_domain must be >= 1");
  }
  if (options.approx.zone_entries < 1) {
    return Status::InvalidArgument("approx.zone_entries must be >= 1");
  }
  if (options.approx.rebuild_deleted_fraction <= 0.0 ||
      options.approx.rebuild_deleted_fraction > 1.0) {
    return Status::InvalidArgument(
        "approx.rebuild_deleted_fraction must be in (0, 1]");
  }
  if (options.cracking.min_piece_entries < 1) {
    return Status::InvalidArgument("cracking.min_piece_entries must be >= 1");
  }
  if (options.trie.span_bits < 1 || options.trie.span_bits > 16 ||
      64 % options.trie.span_bits != 0) {
    return Status::InvalidArgument(
        "trie.span_bits must divide 64 and be in [1, 16]");
  }
  if (options.skiplist.promote_probability <= 0.0 ||
      options.skiplist.promote_probability >= 1.0) {
    return Status::InvalidArgument(
        "skiplist.promote_probability must be in (0, 1)");
  }
  if (options.skiplist.max_height < 1 || options.skiplist.max_height > 64) {
    return Status::InvalidArgument("skiplist.max_height must be in [1, 64]");
  }
  if (options.extremes.magic_array_domain < 1) {
    return Status::InvalidArgument("magic_array_domain must be >= 1");
  }
  if (options.sharded.shards < 1 || options.sharded.shards > 256) {
    return Status::InvalidArgument("sharded.shards must be in [1, 256]");
  }
  if (options.absorber.delta_entries < 1) {
    return Status::InvalidArgument("absorber.delta_entries must be >= 1");
  }
  if (options.absorber.qf_remainder_bits < 1 ||
      options.absorber.qf_remainder_bits > 32) {
    return Status::InvalidArgument(
        "absorber.qf_remainder_bits must be in [1, 32]");
  }
  if (options.observability.trace &&
      options.observability.trace_events_per_thread < 1) {
    return Status::InvalidArgument(
        "observability.trace_events_per_thread must be >= 1 when tracing");
  }
  if (options.memory.enabled) {
    if (options.memory.arbiter == nullptr) {
      return Status::InvalidArgument(
          "memory.enabled requires memory.arbiter (the registrar the "
          "components' pools attach to)");
    }
    if (options.memory.epoch_ops < 1) {
      return Status::InvalidArgument("memory.epoch_ops must be >= 1");
    }
    if (options.memory.min_share < 0.0 ||
        options.memory.min_share > 1.0 / 3.0) {
      return Status::InvalidArgument(
          "memory.min_share must be in [0, 1/3] (three pool kinds share "
          "the budget; floors above 1/3 cannot all hold)");
    }
    if (options.memory.step_fraction <= 0.0 ||
        options.memory.step_fraction > 1.0) {
      return Status::InvalidArgument(
          "memory.step_fraction must be in (0, 1]");
    }
  }
  if (options.morphing.read_priority < 0 ||
      options.morphing.write_priority < 0 ||
      options.morphing.space_priority < 0) {
    return Status::InvalidArgument("morphing priorities must be >= 0");
  }
  return Status::OK();
}

}  // namespace rum

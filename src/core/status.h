#ifndef RUMLAB_CORE_STATUS_H_
#define RUMLAB_CORE_STATUS_H_

#include <cassert>
#include <string>
#include <string_view>
#include <utility>

namespace rum {

/// Error codes used throughout rumlab. The library does not use exceptions;
/// every fallible operation returns a Status or a Result<T>.
enum class Code {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kOutOfRange,
  kCorruption,
  kNotSupported,
  kResourceExhausted,
  kIOError,
  /// A request missed its service-layer deadline: the scheduler completed it
  /// without touching the storage stack (see src/service/).
  kDeadlineExceeded,
  /// A bounded retry budget was exhausted without the fault clearing: the
  /// target is not merely erroring, it is (for now) dead. Distinguished from
  /// kIOError so deadline/degrade logic can tell "retrying" from "gone".
  kUnavailable,
};

/// Returns a short human-readable name for a code ("OK", "NotFound", ...).
std::string_view CodeName(Code code);

/// A lightweight status object carrying a Code and an optional message.
///
/// The common success path allocates nothing. Statuses are cheap to copy and
/// move; an `ok()` status compares equal to `Status::OK()`.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(Code::kOk) {}

  /// Constructs a status with the given code and message.
  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Factory helpers, one per code.
  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg = "") {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg = "") {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg = "") {
    return Status(Code::kResourceExhausted, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg = "") {
    return Status(Code::kDeadlineExceeded, std::move(msg));
  }
  static Status Unavailable(std::string msg = "") {
    return Status(Code::kUnavailable, std::move(msg));
  }

  /// True iff the status is OK.
  bool ok() const { return code_ == Code::kOk; }
  /// True iff the status carries kNotFound.
  bool IsNotFound() const { return code_ == Code::kNotFound; }

  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "Code: message" for logging.
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  Code code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status.
///
/// Usage:
///   Result<Value> r = index.Get(k);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Constructs a failed result. `status` must not be OK.
  Result(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "Result error constructor requires non-OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  Code code() const { return status_.code(); }

  /// Accesses the value; must only be called when ok().
  const T& value() const& {
    assert(ok());
    return value_;
  }
  T& value() & {
    assert(ok());
    return value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(value_);
  }

  /// Returns the value, or `fallback` if this result holds an error.
  T value_or(T fallback) const {
    return ok() ? value_ : std::move(fallback);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace rum

#endif  // RUMLAB_CORE_STATUS_H_

#include "core/access_method.h"

namespace rum {

Status AccessMethod::Update(Key key, Value value) {
  Status s = Insert(key, value);
  if (s.ok()) {
    counters().ReclassifyInsertAsUpdate();
  }
  return s;
}

Status AccessMethod::CheckBulkLoadPreconditions(
    std::span<const Entry> entries) const {
  if (size() != 0) {
    return Status::InvalidArgument("BulkLoad requires an empty structure");
  }
  for (size_t i = 1; i < entries.size(); ++i) {
    if (entries[i - 1].key >= entries[i].key) {
      return Status::InvalidArgument(
          "BulkLoad requires strictly ascending keys");
    }
  }
  return Status::OK();
}

Status AccessMethod::BulkLoad(std::span<const Entry> entries) {
  Status s = CheckBulkLoadPreconditions(entries);
  if (!s.ok()) return s;
  for (const Entry& e : entries) {
    s = Insert(e.key, e.value);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

}  // namespace rum

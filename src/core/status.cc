#include "core/status.h"

namespace rum {

std::string_view CodeName(Code code) {
  switch (code) {
    case Code::kOk:
      return "OK";
    case Code::kNotFound:
      return "NotFound";
    case Code::kAlreadyExists:
      return "AlreadyExists";
    case Code::kInvalidArgument:
      return "InvalidArgument";
    case Code::kOutOfRange:
      return "OutOfRange";
    case Code::kCorruption:
      return "Corruption";
    case Code::kNotSupported:
      return "NotSupported";
    case Code::kResourceExhausted:
      return "ResourceExhausted";
    case Code::kIOError:
      return "IOError";
    case Code::kDeadlineExceeded:
      return "DeadlineExceeded";
    case Code::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  std::string out(CodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace rum

#ifndef RUMLAB_CORE_TRACE_H_
#define RUMLAB_CORE_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "core/counters.h"
#include "core/types.h"

namespace rum {

struct Options;

/// What happened. Kinds cover the full device stack plus the LSM background
/// machinery, so a drained trace replays a run's physical story: cache
/// dynamics, pin lifetimes, injected faults, retries, crashes, compactions.
enum class TraceKind : uint8_t {
  kCacheHit = 0,
  kCacheMiss,
  kCacheEvict,
  kCacheWriteBack,
  kCacheWriteBackFail,
  kPinAcquire,
  kPinRelease,
  kFaultInjected,
  kTornWrite,
  kRetryAttempt,
  kCrash,
  kRecovery,
  kLsmFlush,
  kLsmCompaction,
  // -- Request-scheduler service layer (src/service/).
  kSchedDispatch,      ///< One batch window dispatched (detail = batch ops).
  kSchedShed,          ///< A request shed by admission control or overflow.
  kSchedDeadlineMiss,  ///< A request expired in queue; device untouched.
};
inline constexpr size_t kTraceKindCount =
    static_cast<size_t>(TraceKind::kSchedDeadlineMiss) + 1;

/// Which device operation class the event occurred under (mirrors FaultOp,
/// plus kNone for events outside any single op and kFree for deallocation).
enum class TraceOp : uint8_t {
  kNone = 0,
  kRead,
  kWrite,
  kPin,
  kAllocate,
  kFree,
  kFlush,
};

std::string_view TraceKindName(TraceKind kind);
std::string_view TraceOpName(TraceOp op);

/// One trace record. `detail` is kind-specific:
///   kPinRelease    -> held duration in nanoseconds (wall-clock, so the
///                     determinism contract masks it)
///   kRetryAttempt  -> attempt number (2 = first re-attempt)
///   kLsmFlush      -> records flushed
///   kLsmCompaction -> destination level
///   kCacheEvict    -> 1 if the victim was dirty (written back), else 0
///   kCrash         -> cache entries dropped / pins abandoned at that layer
///   everything else -> 0
struct TraceEvent {
  uint64_t seq = 0;    ///< Global monotonic order across all threads.
  uint64_t detail = 0;
  PageId page = kInvalidPageId;
  TraceKind kind = TraceKind::kCacheHit;
  TraceOp op = TraceOp::kNone;
  DataClass cls = DataClass::kBase;
};

namespace trace_internal {
/// Read by the inline Emit guard; written only by Enable/Disable.
extern std::atomic<bool> g_enabled;
}  // namespace trace_internal

/// Process-wide structured trace: fixed-capacity per-thread ring buffers
/// behind a global registry (the RumCounters shard pattern). When disabled
/// -- the default -- Emit() is a single relaxed load and branch; no ring is
/// touched, no sequence number is drawn. When enabled, each thread appends
/// to its own ring (plain stores, no locks after first-touch registration)
/// and draws a global sequence number with one relaxed fetch_add, the only
/// cross-thread traffic on the hot path.
///
/// Rings hold the *newest* `events_per_thread` events per thread: wraparound
/// overwrites the oldest slot and bumps the dropped-event count.
///
/// Synchronization contract (same as RumCounters): threads may Emit
/// concurrently with each other, but Enable/Disable/Drain require external
/// synchronization with emitters (a join or barrier). Drain() merges every
/// ring by sequence number and clears them.
class Trace {
 public:
  /// True when tracing is on. Inline relaxed load: this is the whole
  /// disabled-path cost, per the overhead contract in DESIGN.md §3e.
  static bool enabled() {
    return trace_internal::g_enabled.load(std::memory_order_relaxed);
  }

  /// Clears all rings, resizes them to `events_per_thread` slots, resets the
  /// sequence and dropped counts, and turns tracing on. Existing rings are
  /// reshaped in place so thread-cached ring pointers stay valid.
  static void Enable(size_t events_per_thread);

  /// Turns tracing off. Ring contents survive for a later Drain().
  static void Disable();

  /// Records one event (no-op when disabled).
  static void Emit(TraceKind kind, TraceOp op, PageId page, DataClass cls,
                   uint64_t detail = 0) {
    if (!enabled()) return;
    EmitActive(kind, op, page, cls, detail);
  }

  /// Merges all rings into one sequence-ordered vector and clears them.
  /// Sequence numbers in the result are unique and increasing, with gaps
  /// where wraparound dropped older events.
  static std::vector<TraceEvent> Drain();

  /// Events overwritten by ring wraparound since Enable().
  static uint64_t dropped_events();

 private:
  static void EmitActive(TraceKind kind, TraceOp op, PageId page,
                         DataClass cls, uint64_t detail);
};

/// Applies `options.observability` to the process-wide Trace and
/// MetricsRegistry switches. Call once before building the method/device
/// stack (callback instruments only register while metrics are enabled).
void ApplyObservability(const Options& options);

}  // namespace rum

#endif  // RUMLAB_CORE_TRACE_H_

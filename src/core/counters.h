#ifndef RUMLAB_CORE_COUNTERS_H_
#define RUMLAB_CORE_COUNTERS_H_

#include <cstdint>
#include <string>

namespace rum {

/// Tags every physical access and every resident byte as belonging to the
/// *base data* (the logical dataset itself) or to *auxiliary data* (indexes,
/// filters, logs, fence pointers, ... anything an access method adds on top).
///
/// The paper's three overheads are ratios over this split (Section 2):
///  - Read Overhead  (read amplification):  total bytes read / bytes of
///    base data the operation logically retrieved.
///  - Update Overhead (write amplification): total bytes physically written
///    / bytes of the logical update.
///  - Memory Overhead (space amplification): total resident bytes / resident
///    base-data bytes.
enum class DataClass {
  kBase = 0,
  kAux = 1,
};

/// An immutable snapshot of RUM accounting state; also usable as a delta
/// (snapshot_after - snapshot_before) to measure a single operation or a
/// whole workload phase.
struct CounterSnapshot {
  // -- Physical traffic, in bytes, split by data class.
  uint64_t bytes_read_base = 0;
  uint64_t bytes_read_aux = 0;
  uint64_t bytes_written_base = 0;
  uint64_t bytes_written_aux = 0;

  // -- Physical traffic, in device blocks (0 for purely in-memory methods
  //    that account at byte granularity only).
  uint64_t blocks_read = 0;
  uint64_t blocks_written = 0;

  // -- Resident space, in bytes, split by data class. These are levels, not
  //    accumulations: a snapshot records the space in use at that instant.
  uint64_t space_base = 0;
  uint64_t space_aux = 0;

  // -- Logical denominators.
  /// Bytes of base data the caller logically asked for and received
  /// (point-query hits and scan results).
  uint64_t logical_bytes_read = 0;
  /// Bytes of base data the caller logically changed (inserts, updates,
  /// deletes; one entry each).
  uint64_t logical_bytes_written = 0;

  // -- Operation counts (for reporting per-op averages).
  uint64_t point_queries = 0;
  uint64_t range_queries = 0;
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;

  /// Total physical bytes read (base + auxiliary).
  uint64_t total_bytes_read() const { return bytes_read_base + bytes_read_aux; }
  /// Total physical bytes written (base + auxiliary).
  uint64_t total_bytes_written() const {
    return bytes_written_base + bytes_written_aux;
  }
  /// Total resident bytes (base + auxiliary).
  uint64_t total_space() const { return space_base + space_aux; }

  /// Read amplification: total bytes read / logical bytes retrieved.
  /// Returns 0 when nothing was logically read.
  double read_amplification() const;
  /// Write amplification: total bytes written / logical bytes updated.
  /// Returns 0 when nothing was logically written.
  double write_amplification() const;
  /// Space amplification: total space / base space. Returns 0 when no base
  /// data is resident.
  double space_amplification() const;

  /// Component-wise difference; space fields are taken from *this (they are
  /// levels, not accumulators).
  CounterSnapshot operator-(const CounterSnapshot& rhs) const;
  CounterSnapshot& operator+=(const CounterSnapshot& rhs);

  /// Multi-line human-readable rendering for logs and examples.
  std::string ToString() const;
};

/// Mutable accumulator fed by devices, memory trackers, and access methods.
///
/// Not thread-safe: every access method owns one and rumlab access methods
/// are single-threaded (matching the paper's single-operation cost model).
class RumCounters {
 public:
  RumCounters() = default;

  /// Records `bytes` physically read from data of class `cls`.
  void OnRead(DataClass cls, uint64_t bytes) {
    if (cls == DataClass::kBase) {
      snap_.bytes_read_base += bytes;
    } else {
      snap_.bytes_read_aux += bytes;
    }
  }

  /// Records `bytes` physically written to data of class `cls`.
  void OnWrite(DataClass cls, uint64_t bytes) {
    if (cls == DataClass::kBase) {
      snap_.bytes_written_base += bytes;
    } else {
      snap_.bytes_written_aux += bytes;
    }
  }

  /// Records a whole-block device read/write (granularity accounting).
  void OnBlockRead() { ++snap_.blocks_read; }
  void OnBlockWrite() { ++snap_.blocks_written; }

  /// Adjusts resident space of class `cls` by `delta` bytes (may shrink).
  void AdjustSpace(DataClass cls, int64_t delta);
  /// Sets resident space of class `cls` to an absolute level.
  void SetSpace(DataClass cls, uint64_t bytes) {
    if (cls == DataClass::kBase) {
      snap_.space_base = bytes;
    } else {
      snap_.space_aux = bytes;
    }
  }

  /// Records that the caller logically retrieved `bytes` of base data.
  void OnLogicalRead(uint64_t bytes) { snap_.logical_bytes_read += bytes; }
  /// Records that the caller logically updated `bytes` of base data.
  void OnLogicalWrite(uint64_t bytes) { snap_.logical_bytes_written += bytes; }

  /// Rebooks the most recent insert as an update (used by the default
  /// AccessMethod::Update, which delegates to Insert).
  void ReclassifyInsertAsUpdate() {
    if (snap_.inserts > 0) {
      --snap_.inserts;
      ++snap_.updates;
    }
  }

  void OnPointQuery() { ++snap_.point_queries; }
  void OnRangeQuery() { ++snap_.range_queries; }
  void OnInsert() { ++snap_.inserts; }
  void OnUpdate() { ++snap_.updates; }
  void OnDelete() { ++snap_.deletes; }

  /// Returns the current accounting state.
  const CounterSnapshot& snapshot() const { return snap_; }

  /// Zeroes all accumulators but preserves the space levels (resident data
  /// does not disappear when stats are reset).
  void ResetTraffic();

 private:
  CounterSnapshot snap_;
};

}  // namespace rum

#endif  // RUMLAB_CORE_COUNTERS_H_

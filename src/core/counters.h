#ifndef RUMLAB_CORE_COUNTERS_H_
#define RUMLAB_CORE_COUNTERS_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace rum {

/// Tags every physical access and every resident byte as belonging to the
/// *base data* (the logical dataset itself) or to *auxiliary data* (indexes,
/// filters, logs, fence pointers, ... anything an access method adds on top).
///
/// The paper's three overheads are ratios over this split (Section 2):
///  - Read Overhead  (read amplification):  total bytes read / bytes of
///    base data the operation logically retrieved.
///  - Update Overhead (write amplification): total bytes physically written
///    / bytes of the logical update.
///  - Memory Overhead (space amplification): total resident bytes / resident
///    base-data bytes.
enum class DataClass {
  kBase = 0,
  kAux = 1,
};

/// An immutable snapshot of RUM accounting state; also usable as a delta
/// (snapshot_after - snapshot_before) to measure a single operation or a
/// whole workload phase.
struct CounterSnapshot {
  // -- Physical traffic, in bytes, split by data class.
  uint64_t bytes_read_base = 0;
  uint64_t bytes_read_aux = 0;
  uint64_t bytes_written_base = 0;
  uint64_t bytes_written_aux = 0;

  // -- Physical traffic, in device blocks (0 for purely in-memory methods
  //    that account at byte granularity only).
  uint64_t blocks_read = 0;
  uint64_t blocks_written = 0;

  // -- Resident space, in bytes, split by data class. These are levels, not
  //    accumulations: a snapshot records the space in use at that instant.
  uint64_t space_base = 0;
  uint64_t space_aux = 0;

  // -- Logical denominators.
  /// Bytes of base data the caller logically asked for and received
  /// (point-query hits and scan results).
  uint64_t logical_bytes_read = 0;
  /// Bytes of base data the caller logically changed (inserts, updates,
  /// deletes; one entry each).
  uint64_t logical_bytes_written = 0;

  // -- Operation counts (for reporting per-op averages).
  uint64_t point_queries = 0;
  uint64_t range_queries = 0;
  uint64_t inserts = 0;
  uint64_t updates = 0;
  uint64_t deletes = 0;

  // -- Robustness accounting (the fault/recovery substrate). Failed I/O is
  //    never charged as traffic (a faulted block moves no bytes), so errors
  //    and retries get their own pair: `io_errors` counts device operations
  //    that returned kIOError, `retries` counts the re-attempts a retry
  //    policy issued in response.
  uint64_t io_errors = 0;
  uint64_t retries = 0;

  /// Total physical bytes read (base + auxiliary).
  uint64_t total_bytes_read() const { return bytes_read_base + bytes_read_aux; }
  /// Total physical bytes written (base + auxiliary).
  uint64_t total_bytes_written() const {
    return bytes_written_base + bytes_written_aux;
  }
  /// Total resident bytes (base + auxiliary).
  uint64_t total_space() const { return space_base + space_aux; }

  /// Read amplification: total bytes read / logical bytes retrieved.
  /// Returns 0 when nothing was logically read.
  double read_amplification() const;
  /// Write amplification: total bytes written / logical bytes updated.
  /// Returns 0 when nothing was logically written.
  double write_amplification() const;
  /// Space amplification: total space / base space. Returns 0 when no base
  /// data is resident.
  double space_amplification() const;

  /// Component-wise difference; space fields are taken from *this (they are
  /// levels, not accumulators).
  CounterSnapshot operator-(const CounterSnapshot& rhs) const;
  CounterSnapshot& operator+=(const CounterSnapshot& rhs);

  /// Multi-line human-readable rendering for logs and examples.
  std::string ToString() const;
};

/// Running totals of the physical traffic the *calling thread* has charged
/// to any RumCounters instance, ever. Two plain thread-local adds per
/// charge, no locks, no merging. This is the cheap sampling path the
/// workload runner uses for per-op cost deltas: on a serial run every
/// charge lands on the sampling thread, so deltas of this tally equal
/// deltas of a full `stats()` merge across every counters instance in the
/// stack -- without locking and merging N shards per operation (the
/// ShardedMethod pathology trace_test's sampling-regression check pins).
struct ThreadIoTally {
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
};

/// The calling thread's tally (monotone; never reset -- sample deltas).
inline ThreadIoTally& ThisThreadIo() {
  thread_local ThreadIoTally tally;
  return tally;
}

/// Mutable accumulator fed by devices, memory trackers, and access methods.
///
/// Threading model (see DESIGN.md "Threading model"): traffic is recorded
/// into *per-thread shards* -- every thread that touches a RumCounters gets
/// its own cache-line-aligned accumulator, so the hot path is a plain
/// (non-atomic, uncontended) integer add. `snapshot()` merges the shards
/// under a registry mutex; because every increment lands in exactly one
/// shard, the merged totals are exact, and deltas between two quiescent
/// snapshots are exact too.
///
/// Synchronization contract: concurrent threads may *record* traffic
/// concurrently with each other, but `snapshot()`, `ResetTraffic()` and
/// `SetSpace()` require external synchronization with recorders -- either a
/// happens-before edge (thread join, worker-pool barrier, as WorkloadRunner
/// establishes around a phase) or a common lock serializing all access (as
/// ShardedMethod's per-shard mutex provides for inner-method counters).
/// Under that contract the class is exact and data-race-free; it is *not* a
/// linearizable concurrent counter read mid-flight.
class RumCounters {
 public:
  RumCounters();
  ~RumCounters();

  RumCounters(const RumCounters&) = delete;
  RumCounters& operator=(const RumCounters&) = delete;

  /// Records `bytes` physically read from data of class `cls`.
  void OnRead(DataClass cls, uint64_t bytes) {
    ThisThreadIo().bytes_read += bytes;
    CounterSnapshot& s = local();
    if (cls == DataClass::kBase) {
      s.bytes_read_base += bytes;
    } else {
      s.bytes_read_aux += bytes;
    }
  }

  /// Records `bytes` physically written to data of class `cls`.
  void OnWrite(DataClass cls, uint64_t bytes) {
    ThisThreadIo().bytes_written += bytes;
    CounterSnapshot& s = local();
    if (cls == DataClass::kBase) {
      s.bytes_written_base += bytes;
    } else {
      s.bytes_written_aux += bytes;
    }
  }

  /// Records a whole-block device read/write (granularity accounting).
  void OnBlockRead() { ++local().blocks_read; }
  void OnBlockWrite() { ++local().blocks_written; }

  /// Adjusts resident space of class `cls` by `delta` bytes (may shrink).
  /// A shard's level may go transiently "negative" (two's-complement wrap)
  /// when one thread frees what another allocated; the merged sum is exact.
  void AdjustSpace(DataClass cls, int64_t delta);
  /// Sets resident space of class `cls` to an absolute level (requires the
  /// external-synchronization contract above: no concurrent recorders).
  void SetSpace(DataClass cls, uint64_t bytes);

  /// Records that the caller logically retrieved `bytes` of base data.
  void OnLogicalRead(uint64_t bytes) { local().logical_bytes_read += bytes; }
  /// Records that the caller logically updated `bytes` of base data.
  void OnLogicalWrite(uint64_t bytes) {
    local().logical_bytes_written += bytes;
  }

  /// Rebooks the most recent insert as an update (used by the default
  /// AccessMethod::Update, which delegates to Insert). The insert being
  /// reclassified always happened on the calling thread, so this touches
  /// only the local shard.
  void ReclassifyInsertAsUpdate();

  void OnPointQuery() { ++local().point_queries; }
  void OnRangeQuery() { ++local().range_queries; }
  void OnInsert() { ++local().inserts; }
  void OnUpdate() { ++local().updates; }
  void OnDelete() { ++local().deletes; }

  /// Records one device operation that failed with kIOError.
  void OnIoError() { ++local().io_errors; }
  /// Records one retry attempt issued by a retry policy.
  void OnRetry() { ++local().retries; }

  /// Returns the accounting state merged across all per-thread shards.
  CounterSnapshot snapshot() const;

  /// Zeroes all accumulators but preserves the space levels (resident data
  /// does not disappear when stats are reset).
  void ResetTraffic();

 private:
  struct Shard;

  /// The calling thread's shard, registering one on first touch.
  CounterSnapshot& local();

  /// Distinguishes instances in thread-local caches; never reused, so a
  /// destroyed RumCounters can never alias a live cache entry.
  const uint64_t id_;
  /// Guards shard registration and merged reads; recorders do not take it.
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Residue of ResetTraffic/SetSpace (space levels folded out of shards).
  CounterSnapshot base_;
};

}  // namespace rum

#endif  // RUMLAB_CORE_COUNTERS_H_

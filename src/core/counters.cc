#include "core/counters.h"

#include <cassert>
#include <cstdio>

namespace rum {

double CounterSnapshot::read_amplification() const {
  if (logical_bytes_read == 0) return 0.0;
  return static_cast<double>(total_bytes_read()) /
         static_cast<double>(logical_bytes_read);
}

double CounterSnapshot::write_amplification() const {
  if (logical_bytes_written == 0) return 0.0;
  return static_cast<double>(total_bytes_written()) /
         static_cast<double>(logical_bytes_written);
}

double CounterSnapshot::space_amplification() const {
  if (space_base == 0) return 0.0;
  return static_cast<double>(total_space()) / static_cast<double>(space_base);
}

CounterSnapshot CounterSnapshot::operator-(const CounterSnapshot& rhs) const {
  CounterSnapshot out = *this;
  out.bytes_read_base -= rhs.bytes_read_base;
  out.bytes_read_aux -= rhs.bytes_read_aux;
  out.bytes_written_base -= rhs.bytes_written_base;
  out.bytes_written_aux -= rhs.bytes_written_aux;
  out.blocks_read -= rhs.blocks_read;
  out.blocks_written -= rhs.blocks_written;
  out.logical_bytes_read -= rhs.logical_bytes_read;
  out.logical_bytes_written -= rhs.logical_bytes_written;
  out.point_queries -= rhs.point_queries;
  out.range_queries -= rhs.range_queries;
  out.inserts -= rhs.inserts;
  out.updates -= rhs.updates;
  out.deletes -= rhs.deletes;
  // Space fields stay as the left-hand (current) levels.
  return out;
}

CounterSnapshot& CounterSnapshot::operator+=(const CounterSnapshot& rhs) {
  bytes_read_base += rhs.bytes_read_base;
  bytes_read_aux += rhs.bytes_read_aux;
  bytes_written_base += rhs.bytes_written_base;
  bytes_written_aux += rhs.bytes_written_aux;
  blocks_read += rhs.blocks_read;
  blocks_written += rhs.blocks_written;
  space_base += rhs.space_base;
  space_aux += rhs.space_aux;
  logical_bytes_read += rhs.logical_bytes_read;
  logical_bytes_written += rhs.logical_bytes_written;
  point_queries += rhs.point_queries;
  range_queries += rhs.range_queries;
  inserts += rhs.inserts;
  updates += rhs.updates;
  deletes += rhs.deletes;
  return *this;
}

std::string CounterSnapshot::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "read: %llu B base + %llu B aux (%llu blocks)\n"
      "write: %llu B base + %llu B aux (%llu blocks)\n"
      "space: %llu B base + %llu B aux\n"
      "logical: %llu B read, %llu B written\n"
      "RO=%.3f UO=%.3f MO=%.3f",
      static_cast<unsigned long long>(bytes_read_base),
      static_cast<unsigned long long>(bytes_read_aux),
      static_cast<unsigned long long>(blocks_read),
      static_cast<unsigned long long>(bytes_written_base),
      static_cast<unsigned long long>(bytes_written_aux),
      static_cast<unsigned long long>(blocks_written),
      static_cast<unsigned long long>(space_base),
      static_cast<unsigned long long>(space_aux),
      static_cast<unsigned long long>(logical_bytes_read),
      static_cast<unsigned long long>(logical_bytes_written),
      read_amplification(), write_amplification(), space_amplification());
  return std::string(buf);
}

void RumCounters::AdjustSpace(DataClass cls, int64_t delta) {
  uint64_t& field =
      (cls == DataClass::kBase) ? snap_.space_base : snap_.space_aux;
  if (delta < 0) {
    uint64_t dec = static_cast<uint64_t>(-delta);
    assert(field >= dec && "space accounting went negative");
    field -= dec;
  } else {
    field += static_cast<uint64_t>(delta);
  }
}

void RumCounters::ResetTraffic() {
  uint64_t base = snap_.space_base;
  uint64_t aux = snap_.space_aux;
  snap_ = CounterSnapshot();
  snap_.space_base = base;
  snap_.space_aux = aux;
}

}  // namespace rum

#include "core/counters.h"

#include <atomic>
#include <cassert>
#include <cstdio>
#include <unordered_map>

namespace rum {

double CounterSnapshot::read_amplification() const {
  if (logical_bytes_read == 0) return 0.0;
  return static_cast<double>(total_bytes_read()) /
         static_cast<double>(logical_bytes_read);
}

double CounterSnapshot::write_amplification() const {
  if (logical_bytes_written == 0) return 0.0;
  return static_cast<double>(total_bytes_written()) /
         static_cast<double>(logical_bytes_written);
}

double CounterSnapshot::space_amplification() const {
  if (space_base == 0) return 0.0;
  return static_cast<double>(total_space()) / static_cast<double>(space_base);
}

CounterSnapshot CounterSnapshot::operator-(const CounterSnapshot& rhs) const {
  CounterSnapshot out = *this;
  out.bytes_read_base -= rhs.bytes_read_base;
  out.bytes_read_aux -= rhs.bytes_read_aux;
  out.bytes_written_base -= rhs.bytes_written_base;
  out.bytes_written_aux -= rhs.bytes_written_aux;
  out.blocks_read -= rhs.blocks_read;
  out.blocks_written -= rhs.blocks_written;
  out.logical_bytes_read -= rhs.logical_bytes_read;
  out.logical_bytes_written -= rhs.logical_bytes_written;
  out.point_queries -= rhs.point_queries;
  out.range_queries -= rhs.range_queries;
  out.inserts -= rhs.inserts;
  out.updates -= rhs.updates;
  out.deletes -= rhs.deletes;
  out.io_errors -= rhs.io_errors;
  out.retries -= rhs.retries;
  // Space fields stay as the left-hand (current) levels.
  return out;
}

CounterSnapshot& CounterSnapshot::operator+=(const CounterSnapshot& rhs) {
  bytes_read_base += rhs.bytes_read_base;
  bytes_read_aux += rhs.bytes_read_aux;
  bytes_written_base += rhs.bytes_written_base;
  bytes_written_aux += rhs.bytes_written_aux;
  blocks_read += rhs.blocks_read;
  blocks_written += rhs.blocks_written;
  space_base += rhs.space_base;
  space_aux += rhs.space_aux;
  logical_bytes_read += rhs.logical_bytes_read;
  logical_bytes_written += rhs.logical_bytes_written;
  point_queries += rhs.point_queries;
  range_queries += rhs.range_queries;
  inserts += rhs.inserts;
  updates += rhs.updates;
  deletes += rhs.deletes;
  io_errors += rhs.io_errors;
  retries += rhs.retries;
  return *this;
}

std::string CounterSnapshot::ToString() const {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "read: %llu B base + %llu B aux (%llu blocks)\n"
      "write: %llu B base + %llu B aux (%llu blocks)\n"
      "space: %llu B base + %llu B aux\n"
      "logical: %llu B read, %llu B written\n"
      "errors: %llu io, %llu retries\n"
      "RO=%.3f UO=%.3f MO=%.3f",
      static_cast<unsigned long long>(bytes_read_base),
      static_cast<unsigned long long>(bytes_read_aux),
      static_cast<unsigned long long>(blocks_read),
      static_cast<unsigned long long>(bytes_written_base),
      static_cast<unsigned long long>(bytes_written_aux),
      static_cast<unsigned long long>(blocks_written),
      static_cast<unsigned long long>(space_base),
      static_cast<unsigned long long>(space_aux),
      static_cast<unsigned long long>(logical_bytes_read),
      static_cast<unsigned long long>(logical_bytes_written),
      static_cast<unsigned long long>(io_errors),
      static_cast<unsigned long long>(retries),
      read_amplification(), write_amplification(), space_amplification());
  return std::string(buf);
}

/// One thread's private accumulator. Cache-line aligned so two threads'
/// shards never share a line (the whole point of sharding: plain adds, no
/// coherence traffic, no atomics).
struct alignas(64) RumCounters::Shard {
  CounterSnapshot snap;
};

namespace {
/// Instance ids start at 1 so 0 can mean "no cached shard" in thread-locals.
std::atomic<uint64_t> g_next_counters_id{1};
}  // namespace

RumCounters::RumCounters()
    : id_(g_next_counters_id.fetch_add(1, std::memory_order_relaxed)) {}

RumCounters::~RumCounters() = default;

CounterSnapshot& RumCounters::local() {
  // Fast path: the thread re-touches the counters it touched last.
  thread_local uint64_t cached_id = 0;
  thread_local CounterSnapshot* cached_snap = nullptr;
  if (cached_id == id_) return *cached_snap;
  // Slow path: find or register this thread's shard. Keyed by the unique
  // instance id, so entries for destroyed counters are dead weight but can
  // never be revived by a new instance at the same address.
  thread_local std::unordered_map<uint64_t, CounterSnapshot*> registered;
  auto it = registered.find(id_);
  if (it == registered.end()) {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.push_back(std::make_unique<Shard>());
    it = registered.emplace(id_, &shards_.back()->snap).first;
  }
  cached_id = id_;
  cached_snap = it->second;
  return *cached_snap;
}

void RumCounters::AdjustSpace(DataClass cls, int64_t delta) {
  CounterSnapshot& s = local();
  uint64_t& field = (cls == DataClass::kBase) ? s.space_base : s.space_aux;
  // Two's-complement wrap: a shard may go "negative" when this thread frees
  // space another thread allocated; the modular sum across shards is exact.
  field += static_cast<uint64_t>(delta);
}

void RumCounters::SetSpace(DataClass cls, uint64_t bytes) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& shard : shards_) {
    uint64_t& field = (cls == DataClass::kBase) ? shard->snap.space_base
                                                : shard->snap.space_aux;
    field = 0;
  }
  uint64_t& field =
      (cls == DataClass::kBase) ? base_.space_base : base_.space_aux;
  field = bytes;
}

void RumCounters::ReclassifyInsertAsUpdate() {
  CounterSnapshot& s = local();
  if (s.inserts > 0) {
    --s.inserts;
    ++s.updates;
    return;
  }
  // The insert may have been folded into base_ by a ResetTraffic since this
  // thread last recorded one; fix the merged residue instead.
  std::lock_guard<std::mutex> lock(mu_);
  if (base_.inserts > 0) {
    --base_.inserts;
    ++base_.updates;
  }
}

CounterSnapshot RumCounters::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  CounterSnapshot out = base_;
  for (const auto& shard : shards_) {
    out += shard->snap;
  }
  // Merged space must be a real level; a set top bit means frees outran
  // allocations somewhere (the old single-threaded assert, at merge time).
  assert(!(out.space_base >> 63) && "base space accounting went negative");
  assert(!(out.space_aux >> 63) && "aux space accounting went negative");
  return out;
}

void RumCounters::ResetTraffic() {
  std::lock_guard<std::mutex> lock(mu_);
  CounterSnapshot merged = base_;
  for (auto& shard : shards_) {
    merged += shard->snap;
    shard->snap = CounterSnapshot();
  }
  base_ = CounterSnapshot();
  base_.space_base = merged.space_base;
  base_.space_aux = merged.space_aux;
}

}  // namespace rum

#ifndef RUMLAB_CORE_MEMORY_BUDGET_H_
#define RUMLAB_CORE_MEMORY_BUDGET_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace rum {

/// The three memory consumers the global arbiter splits one byte budget
/// across -- Figure 2's hierarchy levels made explicit. Each kind buys down
/// a different overhead at the level below it:
///  - kCache:    cache capacity buys physical read traffic (RO at level n);
///  - kMemtable: write-buffer size buys flush/merge volume (UO below);
///  - kFilter:   bloom/sketch bits buy false-positive page reads (RO below).
enum class MemoryPoolKind {
  kCache = 0,
  kMemtable = 1,
  kFilter = 2,
};

inline std::string_view MemoryPoolKindName(MemoryPoolKind kind) {
  switch (kind) {
    case MemoryPoolKind::kCache:
      return "cache";
    case MemoryPoolKind::kMemtable:
      return "memtable";
    case MemoryPoolKind::kFilter:
      return "filter";
  }
  return "unknown";
}

/// One resizable memory consumer registered with a MemoryRegistrar.
///
/// Contract:
///  - pool_bytes() is the budget currently assigned to this pool, in bytes.
///    It must be the value of the last SetPoolBytes call (or the
///    construction-time configuration before any call) -- NOT instantaneous
///    residency, which may transiently overshoot (pinned cache pages) or
///    undershoot (a just-flushed memtable).
///  - SetPoolBytes(bytes) retargets the pool. Resizing is asynchronous by
///    design: a cache trims overshoot as pins release, a memtable applies
///    the new threshold at the next flush boundary, a filter re-budgets at
///    the next (re)build. The pool must converge toward the target without
///    wedging on transient pins or in-flight operations.
///  - BenefitSignal() is a monotone counter estimating the *bytes of
///    avoidable downstream traffic* attributable to this pool's scarcity
///    (cache: miss bytes; memtable: flush+merge bytes; filter:
///    false-positive page bytes). The arbiter differences it per epoch, so
///    only deltas matter; units must be bytes so kinds are comparable.
///
/// Thread safety: pool_bytes/BenefitSignal/SetPoolBytes may be called from
/// whatever thread trips the arbiter's epoch, concurrently with the owner's
/// operations. Implementations use their own lock or relaxed atomics. A pool
/// must never call back into its registrar from inside these methods.
class MemoryPool {
 public:
  virtual ~MemoryPool() = default;

  virtual std::string_view pool_name() const = 0;
  virtual MemoryPoolKind pool_kind() const = 0;
  virtual uint64_t pool_bytes() const = 0;
  virtual void SetPoolBytes(uint64_t bytes) = 0;
  virtual uint64_t BenefitSignal() const = 0;
};

/// A snapshot of how the global budget is currently split across kinds.
struct MemorySplit {
  uint64_t budget_bytes = 0;
  uint64_t cache_bytes = 0;
  uint64_t memtable_bytes = 0;
  uint64_t filter_bytes = 0;
  /// Replans executed since construction (0 = still the seeded split).
  uint64_t replans = 0;

  uint64_t assigned_total() const {
    return cache_bytes + memtable_bytes + filter_bytes;
  }
  std::string ToString() const {
    std::string s = "split{cache=" + std::to_string(cache_bytes) +
                    " memtable=" + std::to_string(memtable_bytes) +
                    " filter=" + std::to_string(filter_bytes) +
                    " budget=" + std::to_string(budget_bytes) +
                    " replans=" + std::to_string(replans) + "}";
    return s;
  }
};

/// The registration surface components see (the arbiter implements it in
/// src/adaptive/; this interface lives in core/ so storage and method
/// layers can hold a pointer without a link-time dependency on adaptive/).
///
/// Lifetime: the registrar must outlive every registered pool's
/// registration window -- pools unregister in their destructors, so in
/// practice the arbiter is declared before (destroyed after) the stack it
/// arbitrates. Options::memory carries a non-owning pointer to one.
class MemoryRegistrar {
 public:
  virtual ~MemoryRegistrar() = default;

  virtual void RegisterPool(MemoryPool* pool) = 0;
  virtual void UnregisterPool(MemoryPool* pool) = 0;

  /// Advances the epoch clock by `ops` logical operations. Components call
  /// this OUTSIDE their own locks (a replan triggered here calls back into
  /// SetPoolBytes, which takes component locks).
  virtual void NotePoolOps(uint64_t ops) = 0;

  /// The current split (per-kind totals over registered pools).
  virtual MemorySplit split() const = 0;
};

}  // namespace rum

#endif  // RUMLAB_CORE_MEMORY_BUDGET_H_

#ifndef RUMLAB_ADAPTIVE_WIZARD_H_
#define RUMLAB_ADAPTIVE_WIZARD_H_

#include <string>
#include <vector>

#include "core/options.h"
#include "core/status.h"
#include "workload/spec.h"

namespace rum {

/// One wizard recommendation: an access method, its predicted per-operation
/// cost under the workload, and the reasoning.
struct Recommendation {
  std::string method;
  double predicted_cost = 0;  ///< Weighted blocks/op + space penalty.
  double read_cost = 0;       ///< Predicted blocks per point query.
  double scan_cost = 0;       ///< Predicted blocks per range scan.
  double write_cost = 0;      ///< Predicted blocks per insert (amortized).
  double space_blocks = 0;    ///< Predicted resident blocks.
  std::string rationale;
};

/// The paper's Section-5 "access method wizard": given a workload profile,
/// a dataset size, and a relative weight on space, rank candidate access
/// methods by a closed-form cost model derived from Table 1.
///
/// The model works in block I/Os with B entries per block and N resident
/// entries:
///   btree:           point log_B N, range log_B N + m/B, insert log_B N
///   hash:            point ~2, range N/B, insert ~2
///   zonemap:         point Z/B' + P/B, insert Z/B' + P/B (Z zones)
///   lsm-leveled:     point ~#levels x filter-miss + 1, insert T/B x levels
///   lsm-tiered:      point ~T x levels, insert levels/B
///   stepped-merge:   point runs, insert ~levels/B
///   sorted-column:   point log2(N/B), insert N/B/2
///   unsorted-column: point N/2B, insert 1/B
///   bitmap:          point (compressed bits + N/C rows)/B, insert C/31/B
///   bloom-zones:     point ~1 + fp x zones, insert 1/B
///   skiplist/trie:   point O(log N)/O(depth) memory probes (cheap reads,
///                    heavy space)
///   cracking:        point amortizes from N/2B toward log; insert cheap
///                    until merge
///
/// `space_weight` converts resident blocks into cost units so callers can
/// express how scarce storage is.
class RumWizard {
 public:
  explicit RumWizard(const Options& options) : options_(options) {}

  /// Ranks all factory methods (cheapest predicted cost first).
  std::vector<Recommendation> Rank(const WorkloadSpec& workload,
                                   size_t resident_entries,
                                   double space_weight = 0.0) const;

  /// The single best method for the workload.
  Recommendation Recommend(const WorkloadSpec& workload,
                           size_t resident_entries,
                           double space_weight = 0.0) const;

  /// Predicts one method's costs; unknown names get +inf cost.
  Recommendation Predict(std::string_view method,
                         const WorkloadSpec& workload,
                         size_t resident_entries,
                         double space_weight) const;

 private:
  Options options_;
};

}  // namespace rum

#endif  // RUMLAB_ADAPTIVE_WIZARD_H_

#ifndef RUMLAB_ADAPTIVE_TUNER_H_
#define RUMLAB_ADAPTIVE_TUNER_H_

#include <string>

#include "core/options.h"
#include "core/rum_point.h"

namespace rum {

/// A proposed knob change from the online tuner.
struct TuningAction {
  bool changed = false;
  Options options;      ///< The adjusted options (== input when !changed).
  std::string reason;   ///< Human-readable explanation.
};

/// The paper's "dynamic RUM balance" (Section 5): watch a running access
/// method's measured RUM point drift from a target and nudge its tuning
/// knobs back toward it.
///
/// The tuner is a pure decision function -- observe(measured, target) ->
/// new Options -- so callers control when and how re-tuning is applied
/// (rebuild, morph, or next instance). Supported knobs:
///   - LSM: size ratio (down when reads hurt, up when writes hurt) and
///     merge policy (leveled when reads dominate the pain, tiered for
///     writes), bloom bits (up when reads hurt and space allows);
///   - B+-Tree: node size (up when reads hurt: shallower tree; down when
///     updates hurt: cheaper page rewrites);
///   - ZoneMaps: zone size (down when reads hurt, up when space hurts);
///   - Bitmap: delta threshold (up when updates hurt, down when reads do).
class OnlineTuner {
 public:
  /// Relative tolerance before any knob moves (e.g. 0.2 = 20%).
  explicit OnlineTuner(double tolerance = 0.2) : tolerance_(tolerance) {}

  /// Proposes new options for `method_name` given the measured and target
  /// RUM points.
  TuningAction Observe(std::string_view method_name, const Options& current,
                       const RumPoint& measured,
                       const RumPoint& target) const;

 private:
  double tolerance_;
};

}  // namespace rum

#endif  // RUMLAB_ADAPTIVE_TUNER_H_

#include "adaptive/wizard.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "methods/factory.h"
#include "storage/page_format.h"

namespace rum {

namespace {
double Log(double base, double x) {
  if (x <= 1) return 1;
  return std::log(x) / std::log(base);
}
}  // namespace

Recommendation RumWizard::Predict(std::string_view method,
                                  const WorkloadSpec& workload,
                                  size_t resident_entries,
                                  double space_weight) const {
  Recommendation rec;
  rec.method = std::string(method);

  double N = std::max<double>(1, static_cast<double>(resident_entries));
  double B = static_cast<double>(PageFormat::CapacityFor(options_.block_size));
  double blocks = std::max(1.0, N / B);
  double m = std::max(1.0, static_cast<double>(workload.key_range) *
                               workload.scan_selectivity);
  double T = static_cast<double>(options_.lsm.size_ratio);
  double levels = std::max(
      1.0, Log(T, N / static_cast<double>(options_.lsm.memtable_entries)));
  double zones =
      std::max(1.0, N / static_cast<double>(options_.zonemap.zone_entries));
  double zone_blocks =
      std::max(1.0, static_cast<double>(options_.zonemap.zone_entries) / B);
  double cardinality = static_cast<double>(options_.bitmap.cardinality);
  // Per-run positioning cost of an LSM range scan, in block I/Os. With the
  // cross-run index a cursor opens directly at its stored (page, slot)
  // offset -- one block per run; without it each run pays a fence search
  // landing at a fence-group start, (g-1)/2 slack blocks before the range
  // on average (g = pages per fence group).
  double fence_group = std::max(
      1.0, std::ceil(static_cast<double>(options_.lsm.fence_entries) / B));
  double lsm_seek =
      options_.lsm.cross_run_index ? 1.0 : 1.0 + (fence_group - 1.0) / 2.0;

  // Defaults; each branch fills read/scan/write cost in block I/Os and
  // space in blocks.
  if (method == "btree") {
    double h = std::max(1.0, Log(B, N));
    rec.read_cost = h;
    rec.scan_cost = h + m / B;
    rec.write_cost = h + 1;
    rec.space_blocks = blocks * 1.45;  // Inner nodes + ~70% leaf occupancy.
    rec.rationale = "log_B(N) probes; fastest ranges; index space";
  } else if (method == "hash") {
    rec.read_cost = 2;
    rec.scan_cost = blocks;
    rec.write_cost = 2;
    rec.space_blocks = blocks * (1.0 + 0.5);  // Heap + directory.
    rec.rationale = "O(1) point ops; ranges degrade to full scans";
  } else if (method == "zonemap") {
    double meta = zones * 32 / static_cast<double>(options_.block_size);
    rec.read_cost = meta + zone_blocks;
    rec.scan_cost = meta + zone_blocks + m / B;
    rec.write_cost = meta + zone_blocks;
    rec.space_blocks = blocks + std::max(0.1, meta);
    rec.rationale = "tiny sparse index; every op pays a zone scan";
  } else if (method == "lsm-leveled") {
    double fp = options_.lsm.bloom_bits_per_key > 0 ? 0.01 : 1.0;
    rec.read_cost = 1 + fp * levels;
    rec.scan_cost = lsm_seek * levels + m / B;
    rec.write_cost = (T * levels) / B;
    rec.space_blocks = blocks * 1.30;
    rec.rationale = "filtered runs: cheap reads, merge-amplified writes";
  } else if (method == "lsm-tiered") {
    double fp = options_.lsm.bloom_bits_per_key > 0 ? 0.01 : 1.0;
    double runs = T * levels;
    rec.read_cost = 1 + fp * runs + 0.2 * runs;
    rec.scan_cost = lsm_seek * runs + m / B;
    rec.write_cost = levels / B;
    rec.space_blocks = blocks * 1.60;
    rec.rationale = "lazy merging: cheapest writes, more runs to read";
  } else if (method == "lsm-lazy") {
    double fp = options_.lsm.bloom_bits_per_key > 0 ? 0.01 : 1.0;
    // Dostoevsky: up to T runs per upper level, a single run at the bottom.
    double upper = T * std::max(0.0, levels - 1);
    rec.read_cost = 1 + fp * (upper + 1) + 0.1 * upper;
    rec.scan_cost = lsm_seek * (upper + 1) + m / B;
    rec.write_cost = (std::max(0.0, levels - 1) + (T + 1) / 2) / B;
    rec.space_blocks = blocks * 1.40;
    rec.rationale = "tiered upper levels, one-run bottom: balanced RUM";
  } else if (method == "lsm-hybrid") {
    double fp = options_.lsm.bloom_bits_per_key > 0 ? 0.01 : 1.0;
    double k = std::min(
        static_cast<double>(options_.lsm.hybrid_tiered_levels), levels);
    double runs = T * k + (levels - k);
    rec.read_cost = 1 + fp * runs + 0.1 * runs;
    rec.scan_cost = lsm_seek * runs + m / B;
    rec.write_cost = (k + (levels - k) * (T + 1) / 2) / B;
    rec.space_blocks = blocks * 1.45;
    rec.rationale = "tiered shallow levels, leveled deep: tunable midpoint";
  } else if (method == "stepped-merge") {
    double runs =
        static_cast<double>(options_.stepped.runs_per_level) * levels;
    rec.read_cost = runs;
    rec.scan_cost = runs + m / B;
    rec.write_cost = levels / B;
    rec.space_blocks = blocks * 1.40;
    rec.rationale = "unfiltered runs: cheap writes, every run probed";
  } else if (method == "sorted-column") {
    rec.read_cost = Log(2, blocks);
    rec.scan_cost = Log(2, blocks) + m / B;
    rec.write_cost = blocks / 2;
    rec.space_blocks = blocks;
    rec.rationale = "no index: binary search, linear in-place updates";
  } else if (method == "unsorted-column") {
    rec.read_cost = blocks / 2;
    rec.scan_cost = blocks;
    // Upsert semantics scan for a previous version before appending.
    rec.write_cost = blocks / 2 + 1.0 / B;
    rec.space_blocks = blocks;
    rec.rationale = "no structure: O(1) appends, scans for everything";
  } else if (method == "bitmap" || method == "bitmap-delta") {
    double rows_per_bin = N / cardinality;
    rec.read_cost = 0.2 + rows_per_bin / B;
    rec.scan_cost = 0.2 * cardinality + m / B;
    // Upsert semantics probe the bin before writing.
    rec.write_cost = rec.read_cost +
                     (method == "bitmap" ? cardinality / 31 / B + 0.5
                                         : 1.0 / B);
    rec.space_blocks = blocks * 1.05;
    rec.rationale = "compressed bins; updates hurt unless delta-buffered";
  } else if (method == "bloom-zones") {
    double z = std::max(1.0, N / static_cast<double>(
                                   options_.approx.zone_entries));
    double zb =
        std::max(1.0, static_cast<double>(options_.approx.zone_entries) / B);
    rec.read_cost = zb * (1 + 0.01 * z);
    rec.scan_cost = blocks;
    // Upsert semantics pay the existence probe on every insert.
    rec.write_cost = rec.read_cost + 1.0 / B;
    rec.space_blocks = blocks * 1.02;
    rec.rationale = "filters instead of an index: near-index point reads";
  } else if (method == "skiplist") {
    // Memory-resident probes touch tens of bytes per hop, not blocks.
    double hop = 40.0 / static_cast<double>(options_.block_size);
    rec.read_cost = hop * Log(2, N);
    rec.scan_cost = hop * Log(2, N) + m / B;
    rec.write_cost = hop * Log(2, N);
    rec.space_blocks = blocks * 2.0;
    rec.rationale = "memory-resident; pointer towers double the footprint";
  } else if (method == "trie") {
    double hop = 40.0 / static_cast<double>(options_.block_size);
    rec.read_cost = hop * 8;
    rec.scan_cost = hop * 8 + m / B;
    rec.write_cost = hop * 8;
    rec.space_blocks = blocks * 6.0;
    rec.rationale = "constant-depth probes; node arrays devour space";
  } else if (method == "cracking") {
    rec.read_cost = Log(2, blocks) + 2;
    rec.scan_cost = Log(2, blocks) + m / B + 2;
    rec.write_cost = 1.0 / B + 0.5;
    rec.space_blocks = blocks * 1.10;
    rec.rationale = "adapts toward sorted; update merges reset progress";
  } else if (method == "magic-array" || method == "pure-log" ||
             method == "dense-array") {
    // The theoretical extremes are illustrations, not recommendations.
    rec.read_cost = method == "magic-array" ? 1.0 / B : blocks;
    rec.scan_cost = blocks;
    rec.write_cost = method == "pure-log" ? 1.0 / B : 1;
    rec.space_blocks = method == "dense-array"
                           ? blocks
                           : blocks * 64;
    rec.rationale = "theoretical extreme (Propositions 1-3)";
  } else {
    rec.predicted_cost = std::numeric_limits<double>::infinity();
    rec.rationale = "unknown method";
    return rec;
  }

  double get_f = 1.0 - workload.insert_fraction - workload.update_fraction -
                 workload.delete_fraction - workload.scan_fraction;
  double write_f = workload.insert_fraction + workload.update_fraction +
                   workload.delete_fraction;
  rec.predicted_cost = get_f * rec.read_cost +
                       workload.scan_fraction * rec.scan_cost +
                       write_f * rec.write_cost +
                       space_weight * rec.space_blocks / blocks;
  return rec;
}

std::vector<Recommendation> RumWizard::Rank(const WorkloadSpec& workload,
                                            size_t resident_entries,
                                            double space_weight) const {
  std::vector<Recommendation> recs;
  for (std::string_view name : AllAccessMethodNames()) {
    if (name == "magic-array" || name == "pure-log" ||
        name == "dense-array") {
      continue;  // Theoretical extremes are not practical candidates.
    }
    if (name.substr(0, 8) == "sharded-") {
      continue;  // Concurrency wrappers have the inner method's RUM shape.
    }
    recs.push_back(Predict(name, workload, resident_entries, space_weight));
  }
  std::sort(recs.begin(), recs.end(),
            [](const Recommendation& a, const Recommendation& b) {
              return a.predicted_cost < b.predicted_cost;
            });
  return recs;
}

Recommendation RumWizard::Recommend(const WorkloadSpec& workload,
                                    size_t resident_entries,
                                    double space_weight) const {
  return Rank(workload, resident_entries, space_weight).front();
}

}  // namespace rum

#ifndef RUMLAB_ADAPTIVE_MORPHING_H_
#define RUMLAB_ADAPTIVE_MORPHING_H_

#include <memory>
#include <string>
#include <vector>

#include "core/access_method.h"
#include "core/options.h"

namespace rum {

/// The internal shapes a MorphingAccessMethod can take, ordered roughly
/// write-optimized to read-optimized to space-optimized.
enum class MorphShape {
  kWriteLog,    ///< Tiered stepped runs: minimum update overhead.
  kBalanced,    ///< Leveled LSM with filters: balanced R/U at some M.
  kReadTree,    ///< B+-Tree: minimum read overhead, pays on updates.
  kSpaceDense,  ///< Zone-mapped dense column: minimum memory overhead.
};

std::string_view MorphShapeName(MorphShape shape);

/// The paper's Figure-3 vision made concrete: a single access method that
/// *morphs* between write-, read-, and space-optimized shapes as its RUM
/// priorities move, migrating its data between internal representations.
///
/// `SetPriorities(read, write, space)` (each >= 0, interpreted relatively)
/// picks the shape deterministically:
///   - space strictly dominant        -> kSpaceDense
///   - write strictly dominant        -> kWriteLog
///   - read strictly dominant         -> kReadTree
///   - read/write within 25% of each other and both above space
///                                    -> kBalanced
/// A shape change drains the current representation through a full scan and
/// bulk-loads the next one -- the morph cost is real, measured traffic, not
/// an accounting fiction. Traffic of retired shapes is carried forward so
/// stats() reflect the method's whole life.
class MorphingAccessMethod : public AccessMethod {
 public:
  explicit MorphingAccessMethod(const Options& options);

  std::string_view name() const override { return "morphing"; }

  Status Insert(Key key, Value value) override;
  Status Update(Key key, Value value) override;
  Status Delete(Key key) override;
  Result<Value> Get(Key key) override;
  Status Scan(Key lo, Key hi, std::vector<Entry>* out) override;
  Status BulkLoad(std::span<const Entry> entries) override;
  Status Flush() override;
  size_t size() const override;

  CounterSnapshot stats() const override;
  void ResetStats() override;

  /// Re-targets the method in RUM space, morphing when the preferred shape
  /// changes. Returns the traffic the morph cost (zero if no change).
  Status SetPriorities(double read, double write, double space);

  MorphShape shape() const { return shape_; }
  /// How many shape changes have occurred.
  size_t morph_count() const { return morph_count_; }

  /// Shape selection rule, exposed for tests.
  static MorphShape ChooseShape(double read, double write, double space);

 private:
  std::unique_ptr<AccessMethod> MakeDelegate(MorphShape shape) const;
  Status Morph(MorphShape next);

  Options options_;
  MorphShape shape_;
  std::unique_ptr<AccessMethod> delegate_;
  CounterSnapshot carried_;  // Traffic of retired delegates.
  size_t morph_count_ = 0;
};

}  // namespace rum

#endif  // RUMLAB_ADAPTIVE_MORPHING_H_

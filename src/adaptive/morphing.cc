#include "adaptive/morphing.h"

#include <algorithm>

#include "methods/btree/btree.h"
#include "methods/diff/stepped_merge.h"
#include "methods/lsm/lsm_tree.h"
#include "methods/zonemap/zonemap.h"

namespace rum {

std::string_view MorphShapeName(MorphShape shape) {
  switch (shape) {
    case MorphShape::kWriteLog:
      return "write-log";
    case MorphShape::kBalanced:
      return "balanced";
    case MorphShape::kReadTree:
      return "read-tree";
    case MorphShape::kSpaceDense:
      return "space-dense";
  }
  return "unknown";
}

MorphShape MorphingAccessMethod::ChooseShape(double read, double write,
                                             double space) {
  double sum = read + write + space;
  if (sum <= 0) return MorphShape::kBalanced;
  double r = read / sum;
  double u = write / sum;
  double m = space / sum;
  if (m > r && m > u) return MorphShape::kSpaceDense;
  // Read and write within 25% of each other: balanced shape.
  if (std::max(r, u) <= 1.25 * std::min(r, u)) return MorphShape::kBalanced;
  return u > r ? MorphShape::kWriteLog : MorphShape::kReadTree;
}

MorphingAccessMethod::MorphingAccessMethod(const Options& options)
    : options_(options),
      shape_(ChooseShape(options.morphing.read_priority,
                         options.morphing.write_priority,
                         options.morphing.space_priority)),
      delegate_(MakeDelegate(shape_)) {}

std::unique_ptr<AccessMethod> MorphingAccessMethod::MakeDelegate(
    MorphShape shape) const {
  Options opts = options_;
  switch (shape) {
    case MorphShape::kWriteLog: {
      opts.stepped.buffer_entries = options_.morphing.batch_entries;
      return std::make_unique<SteppedMergeTree>(opts);
    }
    case MorphShape::kBalanced: {
      opts.lsm.policy = LsmPolicy::kLeveled;
      opts.lsm.memtable_entries = options_.morphing.batch_entries;
      return std::make_unique<LsmTree>(opts);
    }
    case MorphShape::kReadTree:
      return std::make_unique<BTree>(opts);
    case MorphShape::kSpaceDense:
      return std::make_unique<ZoneMapColumn>(opts);
  }
  return nullptr;
}

Status MorphingAccessMethod::Morph(MorphShape next) {
  if (next == shape_ && delegate_ != nullptr) return Status::OK();
  // Drain the old shape through a full scan (charged reads) and bulk-load
  // the new one (charged writes).
  std::vector<Entry> everything;
  if (delegate_ != nullptr && delegate_->size() > 0) {
    Status s = delegate_->Scan(kMinKey, kMaxKey, &everything);
    if (!s.ok()) return s;
  }
  if (delegate_ != nullptr) {
    carried_ += delegate_->stats();
    // Space of the retired delegate disappears with it.
    carried_.space_base = 0;
    carried_.space_aux = 0;
  }
  shape_ = next;
  delegate_ = MakeDelegate(next);
  if (!everything.empty()) {
    Status s = delegate_->BulkLoad(everything);
    if (!s.ok()) return s;
    s = delegate_->Flush();
    if (!s.ok()) return s;
  }
  ++morph_count_;
  return Status::OK();
}

Status MorphingAccessMethod::SetPriorities(double read, double write,
                                           double space) {
  options_.morphing.read_priority = read;
  options_.morphing.write_priority = write;
  options_.morphing.space_priority = space;
  MorphShape next = ChooseShape(read, write, space);
  if (next != shape_) {
    return Morph(next);
  }
  return Status::OK();
}

Status MorphingAccessMethod::Insert(Key key, Value value) {
  return delegate_->Insert(key, value);
}
Status MorphingAccessMethod::Update(Key key, Value value) {
  return delegate_->Update(key, value);
}
Status MorphingAccessMethod::Delete(Key key) { return delegate_->Delete(key); }
Result<Value> MorphingAccessMethod::Get(Key key) {
  return delegate_->Get(key);
}
Status MorphingAccessMethod::Scan(Key lo, Key hi, std::vector<Entry>* out) {
  return delegate_->Scan(lo, hi, out);
}
Status MorphingAccessMethod::BulkLoad(std::span<const Entry> entries) {
  return delegate_->BulkLoad(entries);
}
Status MorphingAccessMethod::Flush() { return delegate_->Flush(); }
size_t MorphingAccessMethod::size() const { return delegate_->size(); }

CounterSnapshot MorphingAccessMethod::stats() const {
  CounterSnapshot snap = delegate_->stats();
  snap += carried_;
  return snap;
}

void MorphingAccessMethod::ResetStats() {
  AccessMethod::ResetStats();
  delegate_->ResetStats();
  carried_ = CounterSnapshot();
}

}  // namespace rum

#include "adaptive/tuner.h"

#include <algorithm>

#include "adaptive/cost_model.h"

namespace rum {

namespace {

std::string_view PolicyName(LsmPolicy policy) {
  switch (policy) {
    case LsmPolicy::kLeveled:
      return "leveled";
    case LsmPolicy::kTiered:
      return "tiered";
    case LsmPolicy::kLazyLeveled:
      return "lazy-leveled";
    case LsmPolicy::kHybrid:
      return "hybrid";
  }
  return "?";
}

}  // namespace

TuningAction OnlineTuner::Observe(std::string_view method_name,
                                  const Options& current,
                                  const RumPoint& measured,
                                  const RumPoint& target) const {
  TuningAction action;
  action.options = current;

  double read_excess = measured.read_overhead /
                       std::max(1.0, target.read_overhead);
  double write_excess = measured.update_overhead /
                        std::max(1.0, target.update_overhead);
  double space_excess = measured.memory_overhead /
                        std::max(1.0, target.memory_overhead);
  double threshold = 1.0 + tolerance_;

  bool reads_hurt = read_excess > threshold;
  bool writes_hurt = write_excess > threshold;
  bool space_hurts = space_excess > threshold;

  // The most-excessive overhead drives the adjustment: the RUM Conjecture
  // says we cannot fix all three, so we move along the tradeoff curve.
  double worst = std::max({read_excess, write_excess, space_excess});
  if (worst <= threshold) {
    action.reason = "within tolerance of target";
    return action;
  }

  if (method_name == "lsm-leveled" || method_name == "lsm-tiered" ||
      method_name == "lsm-lazy" || method_name == "lsm-hybrid") {
    if (reads_hurt && writes_hurt) {
      // Mixed pain: no single directional rule wins, so rank all four
      // policies under the analytical model, weighted by how far each axis
      // is over target. This is where lazy leveling and the hybrid earn
      // their keep. Sized for a mid-life tree (a few populated levels).
      uint64_t nominal = current.lsm.memtable_entries;
      for (int i = 0; i < 3; ++i) nominal *= current.lsm.size_ratio;
      LsmPolicy pick = PickLsmPolicy(
          nominal, current, std::max(0.0, read_excess - 1.0),
          std::max(0.0, write_excess - 1.0),
          std::max(0.0, space_excess - 1.0));
      if (pick != current.lsm.policy) {
        action.options.lsm.policy = pick;
        action.reason = std::string("read+write pain: cost model picks ") +
                        std::string(PolicyName(pick)) + " merging";
        action.changed = true;
        return action;
      }
      // Already on the model's choice; fall through to the knob rules.
    }
    if (reads_hurt && worst == read_excess) {
      if (current.lsm.policy != LsmPolicy::kLeveled) {
        action.options.lsm.policy = LsmPolicy::kLeveled;
        action.reason = "reads over target: switch to leveled merging";
      } else if (current.lsm.bloom_bits_per_key < 16 && !space_hurts) {
        action.options.lsm.bloom_bits_per_key =
            current.lsm.bloom_bits_per_key + 2;
        action.reason = "reads over target: spend space on filter bits";
      } else if (current.lsm.size_ratio > 2) {
        action.options.lsm.size_ratio = current.lsm.size_ratio - 1;
        action.reason = "reads over target: shrink size ratio";
      } else {
        action.reason = "reads over target: no knob left";
        return action;
      }
      action.changed = true;
    } else if (writes_hurt && worst == write_excess) {
      if (current.lsm.policy != LsmPolicy::kTiered) {
        action.options.lsm.policy = LsmPolicy::kTiered;
        action.reason = "writes over target: switch to tiered merging";
      } else {
        action.options.lsm.size_ratio = current.lsm.size_ratio + 2;
        action.reason = "writes over target: grow size ratio";
      }
      action.changed = true;
    } else {
      if (current.lsm.bloom_bits_per_key > 2) {
        action.options.lsm.bloom_bits_per_key =
            current.lsm.bloom_bits_per_key - 2;
        action.reason = "space over target: shed filter bits";
        action.changed = true;
      } else {
        action.reason = "space over target: no knob left";
      }
    }
    return action;
  }

  if (method_name == "btree") {
    size_t node = current.btree.node_size != 0 ? current.btree.node_size
                                               : current.block_size;
    if (reads_hurt && worst == read_excess && node < (1u << 16)) {
      action.options.btree.node_size = node * 2;
      action.reason = "reads over target: larger nodes, shallower tree";
      action.changed = true;
    } else if (writes_hurt && worst == write_excess && node > 512) {
      action.options.btree.node_size = node / 2;
      action.reason = "writes over target: smaller nodes, cheaper rewrites";
      action.changed = true;
    } else if (space_hurts && current.btree.bulk_fill < 1.0) {
      action.options.btree.bulk_fill = 1.0;
      action.reason = "space over target: pack leaves full";
      action.changed = true;
    } else {
      action.reason = "no applicable b-tree knob";
    }
    return action;
  }

  if (method_name == "zonemap") {
    if (reads_hurt && worst == read_excess &&
        current.zonemap.zone_entries > 256) {
      action.options.zonemap.zone_entries =
          current.zonemap.zone_entries / 2;
      action.reason = "reads over target: smaller zones";
      action.changed = true;
    } else if (space_hurts && worst == space_excess) {
      action.options.zonemap.zone_entries =
          current.zonemap.zone_entries * 2;
      action.reason = "space over target: larger zones, fewer descriptors";
      action.changed = true;
    } else {
      action.reason = "no applicable zonemap knob";
    }
    return action;
  }

  if (method_name == "bitmap" || method_name == "bitmap-delta") {
    if (writes_hurt && worst == write_excess) {
      action.options.bitmap.update_friendly = true;
      action.options.bitmap.delta_merge_threshold =
          current.bitmap.delta_merge_threshold * 2;
      action.reason = "writes over target: buffer more deltas";
      action.changed = true;
    } else if (reads_hurt && worst == read_excess &&
               current.bitmap.delta_merge_threshold > 64) {
      action.options.bitmap.delta_merge_threshold =
          current.bitmap.delta_merge_threshold / 2;
      action.reason = "reads over target: merge deltas sooner";
      action.changed = true;
    } else {
      action.reason = "no applicable bitmap knob";
    }
    return action;
  }

  action.reason = "method has no tunable knobs registered";
  return action;
}

}  // namespace rum

#include "adaptive/memory_arbiter.h"

#include <algorithm>
#include <cmath>

namespace rum {
namespace {

constexpr size_t kKindCount = 3;

size_t KindIndex(MemoryPoolKind kind) { return static_cast<size_t>(kind); }

/// budget * part / total without uint64 overflow (both can be large).
uint64_t ScaleShare(uint64_t budget, uint64_t part, uint64_t total) {
  if (total == 0) return 0;
  return static_cast<uint64_t>(
      (static_cast<unsigned __int128>(budget) * part) / total);
}

}  // namespace

MemoryArbiter::MemoryArbiter(const Config& config)
    : config_(Config{
          config.budget_bytes,
          std::max<uint64_t>(1, config.epoch_ops),
          std::clamp(config.min_share, 0.0, 1.0 / kKindCount),
          std::clamp(config.step_fraction, 1e-6, 1.0),
      }) {}

MemoryArbiter::~MemoryArbiter() = default;

void MemoryArbiter::RegisterPool(MemoryPool* pool) {
  std::lock_guard<std::mutex> lock(mu_);
  PoolState state;
  state.pool = pool;
  state.assigned = 0;
  // Snapshot the pool's *configured* size before this arbiter ever touches
  // it: seeding must be proportional to the static shape, not to whatever
  // an earlier seed already assigned (registration order must not skew).
  state.configured = pool->pool_bytes();
  state.last_signal = pool->BenefitSignal();
  pools_.push_back(state);
  SeedSplitLocked();
}

void MemoryArbiter::UnregisterPool(MemoryPool* pool) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < pools_.size(); ++i) {
    if (pools_[i].pool == pool) {
      pools_.erase(pools_.begin() + static_cast<ptrdiff_t>(i));
      break;
    }
  }
  // Survivors inherit the freed bytes (mid-teardown this resizes only
  // still-registered pools, which are by contract still alive).
  if (!pools_.empty()) SeedSplitLocked();
}

void MemoryArbiter::NotePoolOps(uint64_t ops) {
  if (ops == 0) return;
  // Lock-free epoch clock: the thread whose add crosses an epoch_ops
  // multiple runs the replan. No per-op mutex, no missed epochs.
  uint64_t before = ops_.fetch_add(ops, std::memory_order_relaxed);
  if (before / config_.epoch_ops != (before + ops) / config_.epoch_ops) {
    Replan();
  }
}

void MemoryArbiter::Replan() {
  std::lock_guard<std::mutex> lock(mu_);
  ReplanLocked();
}

size_t MemoryArbiter::pool_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return pools_.size();
}

uint64_t MemoryArbiter::replans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replans_;
}

MemorySplit MemoryArbiter::split() const {
  std::lock_guard<std::mutex> lock(mu_);
  MemorySplit s;
  s.budget_bytes = config_.budget_bytes;
  s.replans = replans_;
  for (const PoolState& p : pools_) {
    switch (p.pool->pool_kind()) {
      case MemoryPoolKind::kCache:
        s.cache_bytes += p.assigned;
        break;
      case MemoryPoolKind::kMemtable:
        s.memtable_bytes += p.assigned;
        break;
      case MemoryPoolKind::kFilter:
        s.filter_bytes += p.assigned;
        break;
    }
  }
  return s;
}

void MemoryArbiter::SeedSplitLocked() {
  if (pools_.empty()) return;
  // Proportional to each pool's registration-time configured size: the
  // seeded split is the static configuration's *shape* rescaled to the
  // global budget. In particular, budget == sum(configured) seeds every
  // pool at exactly its static size (the disabled-differential identity).
  uint64_t total = 0;
  for (const PoolState& p : pools_) total += p.configured;
  uint64_t handed_out = 0;
  for (PoolState& p : pools_) {
    p.assigned = total == 0
                     ? config_.budget_bytes / pools_.size()
                     : ScaleShare(config_.budget_bytes, p.configured, total);
    handed_out += p.assigned;
  }
  // Exact-integer conservation: leftover floor-division bytes go to the
  // earliest-registered pools, one each.
  uint64_t remainder = config_.budget_bytes - handed_out;
  for (size_t i = 0; remainder > 0 && i < pools_.size(); ++i, --remainder) {
    ++pools_[i].assigned;
  }
  for (PoolState& p : pools_) p.pool->SetPoolBytes(p.assigned);
}

void MemoryArbiter::ReplanLocked() {
  if (pools_.empty()) return;

  // Per-kind signal deltas and currently-assigned bytes.
  uint64_t delta[kKindCount] = {0, 0, 0};
  uint64_t assigned[kKindCount] = {0, 0, 0};
  size_t pool_count[kKindCount] = {0, 0, 0};
  for (PoolState& p : pools_) {
    size_t k = KindIndex(p.pool->pool_kind());
    uint64_t signal = p.pool->BenefitSignal();
    // Signals are contractually monotone; a pool that resets anyway (e.g.
    // across a crash simulation) contributes zero rather than wrapping.
    if (signal > p.last_signal) delta[k] += signal - p.last_signal;
    p.last_signal = signal;
    assigned[k] += p.assigned;
    ++pool_count[k];
  }

  // A dead-quiet epoch is evidence of nothing: keep the current split.
  if (delta[0] + delta[1] + delta[2] == 0) return;

  // Marginal utility: avoidable downstream traffic per byte already
  // spent. Dividing by the assignment is what makes a small pool with a
  // modest delta outrank a huge pool with a slightly larger one.
  size_t present = 0;
  double utility[kKindCount] = {0.0, 0.0, 0.0};
  double utility_sum = 0.0;
  for (size_t k = 0; k < kKindCount; ++k) {
    if (pool_count[k] == 0) continue;
    ++present;
    utility[k] = static_cast<double>(delta[k]) /
                 static_cast<double>(std::max<uint64_t>(1, assigned[k]));
    utility_sum += utility[k];
  }
  if (utility_sum <= 0.0) return;

  // Target shares: every present kind keeps min_share (a starved pool
  // stops generating the very signal that would rescue it); the rest of
  // the budget follows the utilities.
  const double budget = static_cast<double>(config_.budget_bytes);
  const double floor_share = config_.min_share;
  const double free_mass =
      1.0 - static_cast<double>(present) * floor_share;
  double desired[kKindCount] = {0.0, 0.0, 0.0};
  for (size_t k = 0; k < kKindCount; ++k) {
    if (pool_count[k] == 0) continue;
    desired[k] =
        (floor_share + free_mass * (utility[k] / utility_sum)) * budget;
  }

  // Clamp total movement to step_fraction * budget per replan: adaptation
  // is a sequence of bounded steps, not a slam to the epoch's winner.
  double grow_total = 0.0;
  for (size_t k = 0; k < kKindCount; ++k) {
    double diff = desired[k] - static_cast<double>(assigned[k]);
    if (diff > 0.0) grow_total += diff;
  }
  const double max_move = config_.step_fraction * budget;
  const double scale = grow_total > max_move ? max_move / grow_total : 1.0;

  uint64_t kind_bytes[kKindCount] = {0, 0, 0};
  for (size_t k = 0; k < kKindCount; ++k) {
    if (pool_count[k] == 0) continue;
    double moved = static_cast<double>(assigned[k]) +
                   (desired[k] - static_cast<double>(assigned[k])) * scale;
    kind_bytes[k] = static_cast<uint64_t>(std::max(0.0, moved));
  }

  ApplyKindTargetsLocked(kind_bytes);
  ++replans_;
}

void MemoryArbiter::ApplyKindTargetsLocked(const uint64_t kind_bytes[3]) {
  // Exact-integer renormalization: floating-point targets drift a few
  // bytes off the budget; hand the difference to present kinds in fixed
  // kind order so the assigned total is always exactly the budget.
  uint64_t target[kKindCount];
  size_t pool_count[kKindCount] = {0, 0, 0};
  for (const PoolState& p : pools_) {
    ++pool_count[KindIndex(p.pool->pool_kind())];
  }
  uint64_t total = 0;
  for (size_t k = 0; k < kKindCount; ++k) {
    target[k] = pool_count[k] == 0 ? 0 : kind_bytes[k];
    total += target[k];
  }
  if (total > config_.budget_bytes) {
    uint64_t excess = total - config_.budget_bytes;
    for (size_t k = 0; k < kKindCount && excess > 0; ++k) {
      uint64_t cut = std::min(excess, target[k]);
      target[k] -= cut;
      excess -= cut;
    }
  } else {
    uint64_t shortfall = config_.budget_bytes - total;
    for (size_t k = 0; k < kKindCount && shortfall > 0; ++k) {
      if (pool_count[k] == 0) continue;
      target[k] += shortfall;
      shortfall = 0;
    }
  }

  // Within a kind: equal division in registration order, remainder bytes
  // one each to the earliest pools (sharded symmetry + determinism).
  size_t seen[kKindCount] = {0, 0, 0};
  for (PoolState& p : pools_) {
    size_t k = KindIndex(p.pool->pool_kind());
    uint64_t per = target[k] / pool_count[k];
    uint64_t rem = target[k] % pool_count[k];
    uint64_t bytes = per + (seen[k] < rem ? 1 : 0);
    ++seen[k];
    if (bytes != p.assigned) {
      p.assigned = bytes;
      p.pool->SetPoolBytes(bytes);
    } else {
      p.assigned = bytes;
    }
  }
}

}  // namespace rum

#ifndef RUMLAB_ADAPTIVE_COST_MODEL_H_
#define RUMLAB_ADAPTIVE_COST_MODEL_H_

#include <cstdint>
#include <string>

#include "core/options.h"
#include "core/rum_point.h"

namespace rum {

/// One policy's predicted amplification triple under the canonical LSM
/// workload (insert `entries` unique keys, then uniform point reads with an
/// empty memtable). All three are the ratios CounterSnapshot measures, so
/// cost_model_test can pin prediction against measurement directly.
struct LsmCostPrediction {
  /// Window of the canonical range scan the range-RO term models.
  static constexpr uint64_t kRangeScanRecords = 128;

  LsmPolicy policy = LsmPolicy::kLeveled;
  double levels = 0;      ///< Populated levels after the load.
  double runs = 0;        ///< Total resident runs after the load.
  double read_amp = 1;    ///< RO: bytes read per uniform point hit / entry.
  double update_amp = 1;  ///< UO: bytes written per insert / entry.
  double memory_amp = 1;  ///< MO: resident bytes / live base bytes.
  /// RO of a kRangeScanRecords-wide scan at a uniform start key, with every
  /// run overlapping the window (the shuffled-insert worst case): bytes
  /// read / bytes returned. Honors Options::lsm.cross_run_index -- with
  /// the index on, a scan pays one charged segment search plus exact
  /// cursor positioning per run; off, it pays a fence search plus
  /// fence-group start slack per run. Steady state: segment (re)build
  /// costs are amortized out.
  double range_read_amp = 1;

  /// The prediction as a point in the paper's RUM space.
  RumPoint AsRumPoint() const;

  /// "policy L=.. runs=.. RO=.. UO=.. MO=.." one-liner for tables.
  std::string ToString() const;
};

/// Predicts the RUM amplifications an LsmTree with `policy` reaches after
/// inserting `entries` distinct keys (VAT / "How to Grow an LSM-tree" style,
/// specialized to this simulator's accounting).
///
/// The model has two layers:
///  1. *Structure*: an exact record-count recurrence of the policy's flush
///     cascade (`entries / memtable_entries` flushes through the same
///     trigger rules CompactionPolicy implements) yields per-level run
///     sizes and the total records every run build wrote. Closed forms for
///     the totals are the classic ones -- with L = log_T(N/M) levels,
///     records are rewritten ~L(T+1)/2 times under leveled, ~L under
///     tiered, ~(L-1) + (T+1)/2 under lazy leveling, and
///     ~k + (L-k)(T+1)/2 under a hybrid with k tiered levels -- the
///     recurrence just also captures partially-filled levels exactly.
///  2. *Accounting*: structure maps to bytes with the simulator's charge
///     rates: records pack (block_size-8)/17 per block and builds charge
///     whole blocks; Bloom construction charges one auxiliary byte per
///     probe (ln2 * bits_per_key probes/key); a negative filter check
///     charges ~(1-f^k)/(1-f) bytes at fill f and passes with probability
///     f^k; fence search charges 8 bytes per binary-search probe; a probed
///     run reads (g+1)/2 blocks of its fence group (g pages per group);
///     memtable inserts charge 16 base bytes plus two 8-byte pointer
///     splices per expected tower level 1/(1-p).
///
/// Assumptions (stated so the validation tolerance is honest): keys are
/// distinct and uniformly distributed, reads run against a flushed (empty)
/// memtable, and bulk loads are not modeled.
LsmCostPrediction PredictLsmCost(LsmPolicy policy, uint64_t entries,
                                 const Options& options);

/// Ranks all four policies by the weighted sum of their predicted
/// amplifications (each axis normalized by the best policy's value so the
/// weights compare like with like) and returns the cheapest. Weights are
/// relative pain, e.g. the tuner's measured/target excess ratios.
/// `scan_weight` prices range-scan pain via the range_read_amp term --
/// scan-heavy workloads push toward policies with fewer runs (and benefit
/// most from the cross-run index, which the term also honors).
LsmPolicy PickLsmPolicy(uint64_t entries, const Options& options,
                        double read_weight, double write_weight,
                        double space_weight, double scan_weight = 0.0);

}  // namespace rum

#endif  // RUMLAB_ADAPTIVE_COST_MODEL_H_

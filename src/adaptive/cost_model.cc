#include "adaptive/cost_model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "core/types.h"
#include "storage/append_log.h"

namespace rum {

namespace {

/// Record-count shadow of the LSM level structure: levels[i] holds the
/// record count of each run at level i, newest last. Mirrors the trigger
/// rules in methods/lsm/compaction_policy.cc exactly (for distinct keys a
/// merge's output size is the sum of its inputs, so record arithmetic is
/// exact structure).
struct SimState {
  std::vector<std::vector<uint64_t>> levels;
  uint64_t built_records = 0;  ///< Records written across all run builds.
  uint64_t built_blocks = 0;   ///< Whole blocks those builds charged.
};

struct SimParams {
  uint64_t memtable = 0;
  uint64_t ratio = 0;
  size_t records_per_page = 0;
  size_t tiered_levels = 0;  ///< Leveled/tiered boundary for ComposedPolicy.
};

uint64_t LevelTargetOf(const SimParams& p, size_t level) {
  uint64_t target = p.memtable;
  for (size_t i = 0; i <= level; ++i) target *= p.ratio;
  return target;
}

bool SimIsLastPopulated(const SimState& s, size_t level) {
  for (size_t i = level + 1; i < s.levels.size(); ++i) {
    if (!s.levels[i].empty()) return false;
  }
  return true;
}

size_t SimLastPopulated(const SimState& s) {
  for (size_t i = s.levels.size(); i-- > 0;) {
    if (!s.levels[i].empty()) return i;
  }
  return s.levels.size();
}

void SimBuild(SimState* s, const SimParams& p, size_t level, uint64_t n) {
  if (s->levels.size() <= level) s->levels.resize(level + 1);
  if (n == 0) return;
  s->built_records += n;
  s->built_blocks += (n + p.records_per_page - 1) / p.records_per_page;
  s->levels[level].push_back(n);
}

uint64_t SimDrainLevel(SimState* s, size_t level) {
  uint64_t n = 0;
  for (uint64_t run : s->levels[level]) n += run;
  s->levels[level].clear();
  return n;
}

/// One flush under the composed (leveled/tiered/hybrid) discipline.
void SimComposedFlush(SimState* s, const SimParams& p) {
  auto tiered = [&](size_t level) { return level < p.tiered_levels; };
  if (s->levels.empty()) s->levels.resize(1);
  if (tiered(0)) {
    SimBuild(s, p, 0, p.memtable);
  } else {
    uint64_t merged = p.memtable + SimDrainLevel(s, 0);
    SimBuild(s, p, 0, merged);
  }
  for (size_t level = 0; level < s->levels.size(); ++level) {
    if (s->levels[level].empty()) continue;
    if (tiered(level)) {
      if (s->levels[level].size() < p.ratio) continue;
      uint64_t merged = SimDrainLevel(s, level);
      if (s->levels.size() <= level + 1) s->levels.resize(level + 2);
      if (!tiered(level + 1)) merged += SimDrainLevel(s, level + 1);
      SimBuild(s, p, level + 1, merged);
    } else {
      if (s->levels[level].back() <= LevelTargetOf(p, level)) continue;
      uint64_t merged = SimDrainLevel(s, level);
      if (s->levels.size() <= level + 1) s->levels.resize(level + 2);
      merged += SimDrainLevel(s, level + 1);
      SimBuild(s, p, level + 1, merged);
    }
  }
}

/// One flush under lazy leveling.
void SimLazyFlush(SimState* s, const SimParams& p) {
  if (s->levels.empty()) s->levels.resize(1);
  SimBuild(s, p, 0, p.memtable);
  for (size_t level = 0; level < s->levels.size(); ++level) {
    if (s->levels[level].size() < p.ratio) continue;
    uint64_t merged = SimDrainLevel(s, level);
    if (s->levels.size() <= level + 1) s->levels.resize(level + 2);
    if (!s->levels[level + 1].empty() && SimIsLastPopulated(*s, level + 1)) {
      merged += SimDrainLevel(s, level + 1);
    }
    SimBuild(s, p, level + 1, merged);
  }
  // Normalize: the last populated level holds exactly one run.
  while (true) {
    size_t last = SimLastPopulated(*s);
    if (last >= s->levels.size() || s->levels[last].size() <= 1) break;
    uint64_t merged = SimDrainLevel(s, last);
    SimBuild(s, p, last, merged);
  }
  // Relocate an oversized bottom run (pointer move: nothing charged).
  for (size_t last = SimLastPopulated(*s); last < s->levels.size(); ++last) {
    if (s->levels[last].size() != 1 ||
        s->levels[last].back() <= LevelTargetOf(p, last)) {
      break;
    }
    uint64_t run = s->levels[last].back();
    s->levels[last].clear();
    if (s->levels.size() <= last + 1) s->levels.resize(last + 2);
    s->levels[last + 1].push_back(run);
  }
}

size_t CeilDiv(uint64_t a, uint64_t b) {
  return static_cast<size_t>((a + b - 1) / b);
}

size_t Log2Probes(size_t n) {
  // Probe count of the fence binary search over n fences.
  size_t probes = 0;
  while (n > 0) {
    ++probes;
    n >>= 1;
  }
  return probes;
}

}  // namespace

RumPoint LsmCostPrediction::AsRumPoint() const {
  RumPoint point;
  point.read_overhead = std::max(1.0, read_amp);
  point.update_overhead = std::max(1.0, update_amp);
  point.memory_overhead = std::max(1.0, memory_amp);
  return point;
}

std::string LsmCostPrediction::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "L=%.0f runs=%.0f RO=%.1f rangeRO=%.2f UO=%.2f MO=%.3f",
                levels, runs, read_amp, range_read_amp, update_amp,
                memory_amp);
  return buf;
}

LsmCostPrediction PredictLsmCost(LsmPolicy policy, uint64_t entries,
                                 const Options& options) {
  const Options::Lsm& lsm = options.lsm;
  LsmCostPrediction out;
  out.policy = policy;
  if (entries == 0) return out;

  SimParams p;
  p.memtable = lsm.memtable_entries;
  p.ratio = lsm.size_ratio;
  p.records_per_page =
      (options.block_size - sizeof(uint64_t)) / LogRecord::kWireSize;
  switch (policy) {
    case LsmPolicy::kLeveled:
      p.tiered_levels = 0;
      break;
    case LsmPolicy::kTiered:
      p.tiered_levels = static_cast<size_t>(-1);
      break;
    case LsmPolicy::kHybrid:
      p.tiered_levels = lsm.hybrid_tiered_levels;
      break;
    case LsmPolicy::kLazyLeveled:
      break;  // Own flush routine below.
  }

  // ---- Structure layer: replay the flush cascade in record counts.
  SimState s;
  uint64_t flushes = entries / p.memtable;
  for (uint64_t f = 0; f < flushes; ++f) {
    if (policy == LsmPolicy::kLazyLeveled) {
      SimLazyFlush(&s, p);
    } else {
      SimComposedFlush(&s, p);
    }
  }

  uint64_t resident = 0;
  size_t populated_levels = 0;
  std::vector<uint64_t> run_sizes;  // Probe order: level-major, newest first.
  for (const auto& level : s.levels) {
    if (!level.empty()) ++populated_levels;
    for (size_t i = level.size(); i-- > 0;) run_sizes.push_back(level[i]);
    for (uint64_t n : level) resident += n;
  }
  out.levels = static_cast<double>(populated_levels);
  out.runs = static_cast<double>(run_sizes.size());
  if (resident == 0) return out;

  // ---- Accounting layer: map structure to the simulator's charge rates.
  const double block = static_cast<double>(options.block_size);
  const size_t bits_per_key = lsm.bloom_bits_per_key;
  const size_t bloom_probes =
      bits_per_key == 0
          ? 0
          : std::max<size_t>(
                1, static_cast<size_t>(bits_per_key * 0.6931471805599453 +
                                       0.5));
  const size_t pages_per_fence = std::max<size_t>(
      1, CeilDiv(lsm.fence_entries, p.records_per_page));

  // Update amplification. Every insert pays the memtable (entry bytes plus
  // two 8-byte pointer splices per expected tower level 1/(1-p)), then its
  // share of the run builds: whole blocks plus one Bloom byte per probe.
  const double expect_height =
      1.0 / (1.0 - std::min(0.99, options.skiplist.promote_probability));
  const double memtable_bytes = kEntrySize + 16.0 * expect_height;
  double written =
      static_cast<double>(entries) * memtable_bytes +
      static_cast<double>(s.built_blocks) * block +
      static_cast<double>(s.built_records) * static_cast<double>(bloom_probes);
  out.update_amp = written / (static_cast<double>(entries) * kEntrySize);

  // Read amplification for a uniform point hit: each resident run before
  // the containing one is filtered out (or false-positives into a fence
  // group scan); the containing run pays filter + fence search + half a
  // fence group of whole-block reads.
  double prefix_negative = 8.0;  // Empty-memtable probe: one pointer read.
  double expected_read = 0;
  for (uint64_t n : run_sizes) {
    size_t pages = CeilDiv(n, p.records_per_page);
    size_t group = std::min(pages_per_fence, pages);
    size_t fences = CeilDiv(pages, pages_per_fence);
    double fence_bytes = 8.0 * static_cast<double>(Log2Probes(fences));
    double scan_bytes = (static_cast<double>(group) + 1.0) / 2.0 * block;
    double positive =
        static_cast<double>(bloom_probes) + fence_bytes + scan_bytes;
    double negative;
    if (bits_per_key == 0) {
      negative = fence_bytes + scan_bytes;  // No filter: full miss scan.
    } else {
      double bits = static_cast<double>(
          std::max<uint64_t>(64, n * bits_per_key));
      double fill = 1.0 - std::exp(-static_cast<double>(bloom_probes) *
                                   static_cast<double>(n) / bits);
      double fp = std::pow(fill, static_cast<double>(bloom_probes));
      // Expected probe bytes until the first unset bit, capped at k.
      double probe_bytes = fill >= 1.0
                               ? static_cast<double>(bloom_probes)
                               : (1.0 - fp) / (1.0 - fill);
      negative = probe_bytes + fp * (fence_bytes + scan_bytes);
    }
    double weight = static_cast<double>(n) / static_cast<double>(resident);
    expected_read += weight * (prefix_negative + positive);
    prefix_negative += negative;
  }
  out.read_amp = expected_read / kEntrySize;

  // Range read amplification: a kRangeScanRecords-wide window at a uniform
  // start key, every run overlapping (shuffled-insert worst case), empty
  // memtable. Each overlapping run contributes its expected share of the
  // window (w_r = W * n / resident records) and the cost of getting a
  // cursor to the window start.
  {
    const double window = static_cast<double>(
        std::min<uint64_t>(LsmCostPrediction::kRangeScanRecords, resident));
    const double rpp = static_cast<double>(p.records_per_page);
    double scan_read = 8.0;  // Empty-memtable window visit: one pointer.
    if (lsm.cross_run_index) {
      // One charged segment binary search, one offset-table consult, then
      // per run: the stored offset's page plus the in-segment advance
      // (half a segment's worth of the run's records) plus the window.
      uint64_t segments = std::max<uint64_t>(
          1, resident / std::max<size_t>(1, lsm.cross_run_segment_entries));
      scan_read += 8.0 * static_cast<double>(Log2Probes(segments));
      scan_read += 16.0 * out.runs;  // Offset entries consulted.
      for (uint64_t n : run_sizes) {
        double share = static_cast<double>(n) / static_cast<double>(resident);
        double w_r = window * share;
        double advance =
            static_cast<double>(lsm.cross_run_segment_entries) * share / 2.0;
        scan_read += (1.0 + (advance + w_r) / rpp) * block;
      }
    } else {
      // Per run: fence binary search, then the walk starts at the fence
      // group's first page -- (g-1)/2 slack pages before lo on average.
      for (uint64_t n : run_sizes) {
        size_t pages = CeilDiv(n, p.records_per_page);
        size_t group = std::min(pages_per_fence, pages);
        size_t fences = CeilDiv(pages, pages_per_fence);
        double w_r =
            window * static_cast<double>(n) / static_cast<double>(resident);
        scan_read += 8.0 * static_cast<double>(Log2Probes(fences));
        scan_read += ((static_cast<double>(group) - 1.0) / 2.0 + 1.0 +
                      w_r / rpp) *
                     block;
      }
    }
    out.range_read_amp = scan_read / (window * kEntrySize);
  }

  // Memory amplification: whole pages (wire inflation + block slack) plus
  // Bloom bytes and in-memory fences, over live entry bytes.
  double space = 0;
  for (uint64_t n : run_sizes) {
    size_t pages = CeilDiv(n, p.records_per_page);
    size_t fences = CeilDiv(pages, pages_per_fence);
    space += static_cast<double>(pages) * block;
    if (bits_per_key > 0) {
      space += static_cast<double>(
                   std::max<uint64_t>(64, n * bits_per_key) + 7) /
               8.0;
    }
    space += static_cast<double>(fences) * 8.0;
  }
  out.memory_amp =
      space / (static_cast<double>(entries) * kEntrySize);
  return out;
}

LsmPolicy PickLsmPolicy(uint64_t entries, const Options& options,
                        double read_weight, double write_weight,
                        double space_weight, double scan_weight) {
  constexpr LsmPolicy kAll[] = {LsmPolicy::kLeveled, LsmPolicy::kTiered,
                                LsmPolicy::kLazyLeveled, LsmPolicy::kHybrid};
  LsmCostPrediction preds[4];
  double best_ro = 0, best_uo = 0, best_mo = 0, best_so = 0;
  for (size_t i = 0; i < 4; ++i) {
    preds[i] = PredictLsmCost(kAll[i], entries, options);
    if (i == 0 || preds[i].read_amp < best_ro) best_ro = preds[i].read_amp;
    if (i == 0 || preds[i].update_amp < best_uo) best_uo = preds[i].update_amp;
    if (i == 0 || preds[i].memory_amp < best_mo) best_mo = preds[i].memory_amp;
    if (i == 0 || preds[i].range_read_amp < best_so) {
      best_so = preds[i].range_read_amp;
    }
  }
  LsmPolicy best = LsmPolicy::kLeveled;
  double best_score = 0;
  for (size_t i = 0; i < 4; ++i) {
    // Normalize each axis by the best policy's value so a weight of 1 means
    // "one relative unit of pain" on every axis.
    double score = read_weight * preds[i].read_amp / std::max(1e-9, best_ro) +
                   write_weight * preds[i].update_amp / std::max(1e-9, best_uo) +
                   space_weight * preds[i].memory_amp / std::max(1e-9, best_mo) +
                   scan_weight * preds[i].range_read_amp /
                       std::max(1e-9, best_so);
    if (i == 0 || score < best_score) {
      best_score = score;
      best = kAll[i];
    }
  }
  return best;
}

}  // namespace rum

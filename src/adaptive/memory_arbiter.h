#ifndef RUMLAB_ADAPTIVE_MEMORY_ARBITER_H_
#define RUMLAB_ADAPTIVE_MEMORY_ARBITER_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "core/memory_budget.h"

namespace rum {

/// The global adaptive memory arbiter -- one byte budget, dynamically split
/// across every registered MemoryPool (cache capacities, memtable
/// thresholds, filter bits).
///
/// The RUM conjecture's Figure 2 reading: memory overhead spent at one
/// hierarchy level buys down read or update overhead at the level below it.
/// A static split fixes that trade at configuration time; the arbiter
/// re-fits it to the observed workload, epoch by epoch, from each kind's
/// marginal benefit:
///
///   benefit delta[k] = bytes of downstream traffic kind k's scarcity cost
///                      this epoch (cache miss bytes, flush+merge bytes,
///                      filter false-positive page bytes)
///   utility u[k]     = delta[k] / max(1, assigned[k])
///                      -- traffic avoided per byte already spent, the
///                      discrete marginal-benefit estimate
///   share[k]         = min_share + (1 - n*min_share) * u[k] / sum(u)
///
/// Movement per replan is clamped to step_fraction * budget so one noisy
/// epoch cannot slam a pool to its floor, and every kind keeps a min_share
/// so its benefit signal stays measurable (a starved pool generates no
/// evidence it deserves more). Within a kind the bytes split equally across
/// pools in registration order (remainder bytes to the earliest), which is
/// what makes sharded stacks symmetric.
///
/// Determinism: the replan is pure integer/double arithmetic over the
/// signal deltas -- same registration order + same metrics trajectory +
/// same epoch boundaries gives byte-identical splits (pinned by
/// memory_arbiter_test's determinism tier).
///
/// Thread safety: one internal mutex serializes registration and replans;
/// the op clock is a lock-free atomic so NotePoolOps stays cheap off the
/// epoch boundary. Pools must never call back into the arbiter from their
/// MemoryPool methods (see core/memory_budget.h); components tick the clock
/// only with their own locks released.
///
/// Lifetime: declare the arbiter before the stack it arbitrates -- pools
/// unregister in their destructors.
class MemoryArbiter : public MemoryRegistrar {
 public:
  struct Config {
    /// The one global byte budget split across all registered pools.
    uint64_t budget_bytes = 0;
    /// Logical ops (summed over all components) per replan epoch.
    uint64_t epoch_ops = 8192;
    /// Floor share each *present* kind keeps (<= 1/3; see Options::Memory).
    double min_share = 0.05;
    /// Cap on total bytes moved per replan, as a fraction of the budget.
    double step_fraction = 0.25;
  };

  explicit MemoryArbiter(const Config& config);
  ~MemoryArbiter() override;

  // MemoryRegistrar:
  /// Registering (or unregistering) a pool re-seeds the split: the budget
  /// is redistributed across the now-registered pools proportionally to
  /// their current pool_bytes (equal split when all report zero), so the
  /// arbitrated stack starts from a scaled version of its static shape.
  void RegisterPool(MemoryPool* pool) override;
  void UnregisterPool(MemoryPool* pool) override;
  void NotePoolOps(uint64_t ops) override;
  MemorySplit split() const override;

  /// Forces a replan now (tests drive epochs explicitly through this).
  void Replan();

  const Config& config() const { return config_; }
  size_t pool_count() const;
  /// Replans executed (epoch-triggered + explicit) since construction.
  uint64_t replans() const;

 private:
  struct PoolState {
    MemoryPool* pool = nullptr;
    /// Bytes this arbiter last assigned via SetPoolBytes.
    uint64_t assigned = 0;
    /// The pool's registration-time (static-configuration) size; seeding
    /// splits the budget proportionally to these.
    uint64_t configured = 0;
    /// BenefitSignal value at the last replan (deltas, not levels, drive
    /// the utilities).
    uint64_t last_signal = 0;
  };

  /// Redistributes the budget proportionally to current pool_bytes and
  /// applies it. Call with mu_ held.
  void SeedSplitLocked();
  /// The marginal-benefit replan described above. Call with mu_ held.
  void ReplanLocked();
  /// Applies per-kind byte targets: exact-integer renormalization to the
  /// budget, then equal within-kind division in registration order.
  void ApplyKindTargetsLocked(const uint64_t kind_bytes[3]);

  const Config config_;
  mutable std::mutex mu_;
  std::vector<PoolState> pools_;  // Registration order (determinism).
  uint64_t replans_ = 0;
  /// Lock-free epoch clock; the thread whose add crosses an epoch_ops
  /// multiple runs the replan.
  std::atomic<uint64_t> ops_{0};
};

}  // namespace rum

#endif  // RUMLAB_ADAPTIVE_MEMORY_ARBITER_H_

#ifndef RUMLAB_STORAGE_FAULTY_DEVICE_H_
#define RUMLAB_STORAGE_FAULTY_DEVICE_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/metrics.h"
#include "core/status.h"
#include "core/types.h"
#include "storage/device.h"
#include "storage/fault.h"

namespace rum {

/// A fault-injecting decorator over any Device, driven by a FaultPlan.
///
/// Faults are injected *between* the caller and the wrapped device, so they
/// compose with the whole Figure-2 stack: wrap a BlockDevice and stack a
/// CachingDevice (and ShardedMethod workers) on top, and every layer above
/// sees realistic failures without any layer carrying test hooks of its own.
/// This replaces the legacy InjectFailureAfter budget that used to live
/// inside BlockDevice; `InjectFailureAfter`/`ClearFaults`/`fault_active`
/// survive here as thin adapters over `FaultPlan::FailAfter`.
///
/// Charging contract (mirrors the device contract): a faulted operation
/// moves no bytes and charges nothing -- the injected error returns before
/// the wrapped device is touched. The permanent-fault budget counts exactly
/// the charged I/Os the legacy budget counted: block reads, block writes,
/// pin-read acquisitions, and dirty pin releases.
///
/// Pin path: the decorator hands out its own guards backed by pins it holds
/// on the wrapped device, so a dirty release routes through the plan's
/// write-class faults. A faulted dirty release leaves the caller's in-place
/// mutations visible and uncharged (the simulated torn write of the pin
/// contract); when the torn draw also hits, the block's tail bytes are
/// flipped and the page is *poisoned*: every subsequent Read/PinForRead
/// answers kCorruption -- the checksum model -- until a successful full
/// rewrite or reallocation of the page clears it. Methods above therefore
/// can never silently serve a torn block.
///
/// Thread safety: one internal mutex serializes every operation (including
/// calls into the wrapped device), so a FaultyDevice may sit under a shared
/// CachingDevice in concurrent tests. Fault decisions are deterministic in
/// the sequence of operations; concurrent callers that interleave
/// differently draw differently, so replay guarantees need a serial driver.
class FaultyDevice : public Device {
 public:
  /// Wraps `base` (borrowed, must outlive this) with no faults armed.
  explicit FaultyDevice(Device* base);
  FaultyDevice(Device* base, FaultPlan plan);

  /// Replaces the fault policy. Draw indices and the permanent budget reset
  /// (a new plan replays from its beginning); pages already torn stay
  /// poisoned -- the damage is on the "disk", not in the policy.
  void SetPlan(FaultPlan plan);
  const FaultPlan& plan() const;

  /// Legacy budget adapter: after `ops` more charged I/Os, everything
  /// fails until ClearFaults(). Equivalent to SetPlan(FaultPlan::FailAfter).
  void InjectFailureAfter(uint64_t ops) { SetPlan(FaultPlan::FailAfter(ops)); }
  /// Disarms all fault injection (torn pages stay poisoned).
  void ClearFaults() { SetPlan(FaultPlan::None()); }
  /// True once the permanent-fault budget has been exhausted.
  bool fault_active() const;

  // -- Observability (tests and error reports).
  uint64_t faults_injected() const;
  uint64_t faults_injected(FaultOp op) const;
  uint64_t torn_writes() const;
  bool page_torn(PageId page) const;
  size_t pinned_pages() const;

  // -- Device interface.
  Status Allocate(DataClass cls, PageId* out) override;
  Status Free(PageId page) override;
  Status Read(PageId page, std::vector<uint8_t>* out) override;
  Status Write(PageId page, const std::vector<uint8_t>& data) override;
  Status FlushAll() override;
  Status PinForRead(PageId page, PageReadGuard* out) override;
  Status PinForWrite(PageId page, PageWriteGuard* out) override;
  void Crash() override;
  size_t block_size() const override { return base_->block_size(); }
  size_t live_pages() const override { return base_->live_pages(); }

 protected:
  void UnpinRead(PageId page) override;
  Status UnpinWrite(PageId page, bool dirty) override;

 private:
  /// Base-device pins backing this decorator's outstanding guards.
  struct PagePins {
    std::vector<PageReadGuard> read_guards;
    std::vector<PageWriteGuard> write_guards;
  };

  /// Draws the fault decision for one attempt of `op` (mu_ held). Returns
  /// the injected error, or OK -- in which case, when `counts_io` is set,
  /// one unit of the permanent budget has been consumed.
  Status MaybeFault(FaultOp op, PageId page, bool counts_io);
  /// Draws the torn decision for a write-class fault (mu_ held).
  bool DrawTorn();
  /// Flips the plan's tail-byte window of `bytes` (the torn write itself).
  void FlipTail(std::span<uint8_t> bytes);
  /// kCorruption for a poisoned page (checksum mismatch on read).
  Status TornStatus(PageId page, const char* op) const;

  Device* base_;  // Not owned.
  mutable std::mutex mu_;  // Guards everything below (and base_ calls).
  FaultPlan plan_;
  uint64_t io_budget_left_ = FaultPlan::kNever;
  std::array<uint64_t, kFaultOpCount> draw_index_{};
  uint64_t torn_draw_index_ = 0;
  std::array<uint64_t, kFaultOpCount> injected_{};
  uint64_t torn_writes_ = 0;
  std::unordered_set<PageId> torn_;
  std::unordered_map<PageId, PagePins> pins_;
  size_t pins_outstanding_ = 0;
  /// Last member: unregisters before any state its callbacks read dies.
  MetricsGroup metrics_;
};

}  // namespace rum

#endif  // RUMLAB_STORAGE_FAULTY_DEVICE_H_

#ifndef RUMLAB_STORAGE_RETRY_DEVICE_H_
#define RUMLAB_STORAGE_RETRY_DEVICE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/counters.h"
#include "core/metrics.h"
#include "core/options.h"
#include "core/status.h"
#include "core/trace.h"
#include "core/types.h"
#include "storage/device.h"

namespace rum {

/// A retry/degradation decorator over any Device, driven by
/// Options::Storage::Retry.
///
/// Each fallible operation (Allocate/Read/Write/FlushAll and pin
/// acquisitions) is attempted up to `max_attempts` times; the per-op-class
/// policies (retry.read/write/pin/allocate/flush) override the global
/// attempts and backoff base for their class when non-zero (0 = inherit),
/// so a stack can retry reads hard while failing writes fast. Only kIOError
/// is retried: a transient fault may clear on re-attempt, but kCorruption
/// is a checksum mismatch on durable bytes and does not heal, and argument
/// errors are the caller's bug. Every attempt that failed *with kIOError* charges
/// one `io_errors` tick and every re-attempt one `retries` tick on the
/// counters supplied at construction (so `io_errors - retries` equals the
/// number of operations that ultimately failed with kIOError, and wrapping
/// a FaultyDevice directly makes io_errors equal its faults_injected());
/// non-kIOError failures charge nothing here. Failed attempts never charge
/// traffic (the device contract: a faulted op moves no bytes).
///
/// Backoff is simulated, not slept: before retry k (1-based) the decorator
/// adds `backoff_base_us << (k-1)` to an accumulated virtual wait readable
/// via simulated_backoff_us(). This keeps chaos runs fast and replays
/// deterministic.
///
/// Exhausting a real retry budget (effective attempts > 1) without the
/// fault clearing returns kUnavailable wrapping the last kIOError message,
/// with the attempt count and total simulated backoff attached -- a
/// terminal "kept trying and gave up" signal distinct from a fail-fast
/// kIOError (policies with 1 attempt keep the raw code). Disable via
/// retry.unavailable_when_exhausted = false.
///
/// Pin guards are forwarded straight from the wrapped device: acquisition
/// failures retry here, but a guard's dirty-release fault surfaces to the
/// caller unretried -- the caller's in-place mutations may already be torn,
/// so blind re-release would hide a torn write. Callers that want release
/// retries must re-pin and rewrite.
class RetryingDevice : public Device {
 public:
  /// Wraps `base` (borrowed, must outlive this), charging error/retry ticks
  /// to `counters` (borrowed). Policy is copied out of `options`.
  RetryingDevice(Device* base, const Options& options, RumCounters* counters);

  /// Total simulated backoff accumulated across all retries, in
  /// microseconds. Deterministic for a deterministic op/fault sequence.
  uint64_t simulated_backoff_us() const;

  // -- Device interface.
  Status Allocate(DataClass cls, PageId* out) override;
  Status Free(PageId page) override;
  Status Read(PageId page, std::vector<uint8_t>* out) override;
  Status Write(PageId page, const std::vector<uint8_t>& data) override;
  Status FlushAll() override;
  Status PinForRead(PageId page, PageReadGuard* out) override;
  Status PinForWrite(PageId page, PageWriteGuard* out) override;
  void Crash() override { base_->Crash(); }
  size_t block_size() const override { return base_->block_size(); }
  size_t live_pages() const override { return base_->live_pages(); }

 protected:
  // Guards are handed out by the wrapped device, so releases never route
  // through this decorator.
  void UnpinRead(PageId) override {}
  Status UnpinWrite(PageId, bool) override { return Status::OK(); }

 private:
  /// The policy in force for one op class after per-class overrides.
  struct Effective {
    size_t attempts;
    uint64_t backoff_base_us;
  };
  Effective PolicyFor(TraceOp op) const;

  /// Runs `op()` with the retry policy; `op` must be re-invocable.
  /// `traced_op`/`page` label the kRetryAttempt trace events.
  template <typename Op>
  Status WithRetries(TraceOp traced_op, PageId page, Op&& op);

  Device* base_;           // Not owned.
  RumCounters* counters_;  // Not owned.
  Options::Storage::Retry policy_;
  std::atomic<uint64_t> backoff_us_{0};
  /// Last member: unregisters before any state its callbacks read dies.
  MetricsGroup metrics_;
};

}  // namespace rum

#endif  // RUMLAB_STORAGE_RETRY_DEVICE_H_

#include "storage/heap_file.h"

#include <algorithm>
#include <cassert>

#include "storage/page_format.h"

namespace rum {

HeapFile::HeapFile(Device* device, DataClass cls, RumCounters* counters,
                   bool pinned_pages)
    : device_(device),
      cls_(cls),
      counters_(counters),
      pinned_pages_(pinned_pages) {
  assert(device_ != nullptr && counters_ != nullptr);
  rows_per_page_ = PageFormat::CapacityFor(device_->block_size());
  assert(rows_per_page_ > 0);
}

HeapFile::~HeapFile() = default;

Status HeapFile::WriteTail() {
  if (tail_page_ == kInvalidPageId) return Status::OK();
  if (pinned_pages_) {
    PageWriteGuard guard;
    Status s = device_->PinForWrite(tail_page_, &guard);
    if (!s.ok()) return s;
    s = PageFormat::PackInto(tail_, guard.bytes());
    if (!s.ok()) return s;
    guard.MarkDirty();
    return guard.Release();
  }
  std::vector<uint8_t> block;
  Status s = PageFormat::Pack(tail_, device_->block_size(), &block);
  if (!s.ok()) return s;
  return device_->Write(tail_page_, block);
}

Status HeapFile::LoadPage(size_t page_index, std::vector<Entry>* out) {
  assert(page_index < sealed_.size());
  if (pinned_pages_) {
    PageReadGuard guard;
    Status s = device_->PinForRead(sealed_[page_index], &guard);
    if (!s.ok()) return s;
    return PageFormat::Unpack(guard.bytes(), out);
  }
  std::vector<uint8_t> block;
  Status s = device_->Read(sealed_[page_index], &block);
  if (!s.ok()) return s;
  return PageFormat::Unpack(block, out);
}

Result<RowId> HeapFile::Append(const Entry& entry) {
  if (tail_page_ == kInvalidPageId) {
    Status s = device_->Allocate(cls_, &tail_page_);
    if (!s.ok()) return s;
  }
  tail_.push_back(entry);
  RowId row = row_count_++;
  if (tail_.size() == rows_per_page_) {
    Status s = WriteTail();
    if (!s.ok()) return s;
    sealed_.push_back(tail_page_);
    tail_page_ = kInvalidPageId;
    tail_.clear();
  }
  return row;
}

Result<Entry> HeapFile::At(RowId row) {
  if (row >= row_count_) return Status::OutOfRange("row beyond heap");
  size_t page_index = static_cast<size_t>(row / rows_per_page_);
  size_t slot = static_cast<size_t>(row % rows_per_page_);
  if (page_index < sealed_.size()) {
    if (pinned_pages_) {
      // Single-slot read straight off the pinned page: no materialization.
      PageReadGuard guard;
      Status s = device_->PinForRead(sealed_[page_index], &guard);
      if (!s.ok()) return s;
      if (slot >= PageFormat::PeekCount(guard.bytes())) {
        return Status::Corruption("slot beyond page");
      }
      return PageFormat::EntryAt(guard.bytes(), slot);
    }
    std::vector<Entry> entries;
    Status s = LoadPage(page_index, &entries);
    if (!s.ok()) return s;
    if (slot >= entries.size()) return Status::Corruption("slot beyond page");
    return entries[slot];
  }
  // Tail row, served from the buffered image.
  counters_->OnRead(cls_, kEntrySize);
  if (slot >= tail_.size()) return Status::Corruption("slot beyond tail");
  return tail_[slot];
}

Status HeapFile::Set(RowId row, const Entry& entry) {
  if (row >= row_count_) return Status::OutOfRange("row beyond heap");
  size_t page_index = static_cast<size_t>(row / rows_per_page_);
  size_t slot = static_cast<size_t>(row % rows_per_page_);
  if (page_index < sealed_.size()) {
    if (pinned_pages_) {
      // In-place single-slot update: a charged read pin validates the slot,
      // and the overlapping write pin (taken while the read pin is still
      // held, so caching devices keep the faulted-in entry) rewrites just
      // the 16 modified bytes. Charges match the copy path's read+write.
      PageReadGuard read_guard;
      Status s = device_->PinForRead(sealed_[page_index], &read_guard);
      if (!s.ok()) return s;
      if (slot >= PageFormat::PeekCount(read_guard.bytes())) {
        return Status::Corruption("slot beyond page");
      }
      PageWriteGuard write_guard;
      s = device_->PinForWrite(sealed_[page_index], &write_guard);
      if (!s.ok()) return s;
      read_guard.Release();
      PageFormat::SetEntryAt(write_guard.bytes(), slot, entry);
      write_guard.MarkDirty();
      return write_guard.Release();
    }
    std::vector<Entry> entries;
    Status s = LoadPage(page_index, &entries);
    if (!s.ok()) return s;
    if (slot >= entries.size()) return Status::Corruption("slot beyond page");
    entries[slot] = entry;
    std::vector<uint8_t> block;
    s = PageFormat::Pack(entries, device_->block_size(), &block);
    if (!s.ok()) return s;
    return device_->Write(sealed_[page_index], block);
  }
  if (slot >= tail_.size()) return Status::Corruption("slot beyond tail");
  counters_->OnWrite(cls_, kEntrySize);
  tail_[slot] = entry;
  return Status::OK();
}

Status HeapFile::PopBack() {
  if (row_count_ == 0) return Status::OutOfRange("heap is empty");
  if (tail_.empty()) {
    // Unseal the last full page back into the tail.
    assert(!sealed_.empty());
    PageId last = sealed_.back();
    if (pinned_pages_) {
      PageReadGuard guard;
      Status s = device_->PinForRead(last, &guard);
      if (!s.ok()) return s;
      s = PageFormat::Unpack(guard.bytes(), &tail_);
      if (!s.ok()) return s;
    } else {
      std::vector<uint8_t> block;
      Status s = device_->Read(last, &block);
      if (!s.ok()) return s;
      s = PageFormat::Unpack(block, &tail_);
      if (!s.ok()) return s;
    }
    sealed_.pop_back();
    tail_page_ = last;
  }
  tail_.pop_back();
  --row_count_;
  if (tail_.empty() && tail_page_ != kInvalidPageId) {
    Status s = device_->Free(tail_page_);
    if (!s.ok()) return s;
    tail_page_ = kInvalidPageId;
  }
  return Status::OK();
}

Status HeapFile::ForEach(
    const std::function<Status(RowId, const Entry&)>& visit) {
  RowId row = 0;
  std::vector<Entry> entries;
  for (size_t p = 0; p < sealed_.size(); ++p) {
    Status s = LoadPage(p, &entries);
    if (!s.ok()) return s;
    for (const Entry& e : entries) {
      s = visit(row++, e);
      if (!s.ok()) return s;
    }
  }
  if (!tail_.empty()) {
    counters_->OnRead(cls_, static_cast<uint64_t>(tail_.size()) * kEntrySize);
    for (const Entry& e : tail_) {
      Status s = visit(row++, e);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

Status HeapFile::ForRows(
    const std::vector<RowId>& rows,
    const std::function<Status(RowId, const Entry&)>& visit) {
  assert(std::is_sorted(rows.begin(), rows.end()));
  std::vector<Entry> entries;
  size_t loaded_page = static_cast<size_t>(-1);
  for (RowId row : rows) {
    if (row >= row_count_) return Status::OutOfRange("row beyond heap");
    size_t page_index = static_cast<size_t>(row / rows_per_page_);
    size_t slot = static_cast<size_t>(row % rows_per_page_);
    if (page_index < sealed_.size()) {
      if (page_index != loaded_page) {
        Status s = LoadPage(page_index, &entries);
        if (!s.ok()) return s;
        loaded_page = page_index;
      }
      if (slot >= entries.size()) {
        return Status::Corruption("slot beyond page");
      }
      Status s = visit(row, entries[slot]);
      if (!s.ok()) return s;
    } else {
      counters_->OnRead(cls_, kEntrySize);
      if (slot >= tail_.size()) return Status::Corruption("slot beyond tail");
      Status s = visit(row, tail_[slot]);
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

Status HeapFile::Flush() { return WriteTail(); }

Status HeapFile::Clear() {
  for (PageId page : sealed_) {
    Status s = device_->Free(page);
    if (!s.ok()) return s;
  }
  sealed_.clear();
  if (tail_page_ != kInvalidPageId) {
    Status s = device_->Free(tail_page_);
    if (!s.ok()) return s;
    tail_page_ = kInvalidPageId;
  }
  tail_.clear();
  row_count_ = 0;
  return Status::OK();
}

}  // namespace rum
